package libshalom

import (
	"context"

	"libshalom/internal/core"
)

// SBatchEntry is one independent FP32 GEMM of a batch call.
type SBatchEntry = core.BatchEntry[float32]

// DBatchEntry is one independent FP64 GEMM of a batch call.
type DBatchEntry = core.BatchEntry[float64]

// SGEMMBatch executes many independent small FP32 GEMMs under one mode,
// spreading entries across the context's worker pool. This is the paper's
// small-GEMM parallelization model (§7.4): each problem runs the
// single-threaded driver; parallelism comes from problem independence —
// the pattern CP2K's block-sparse multiplications use.
//
// Entries must not write overlapping C storage; CheckSBatchAliasing checks
// that, and a Context built WithAliasCheck validates it on every batch call.
func (c *Context) SGEMMBatch(mode Mode, batch []SBatchEntry) error {
	//shalom:allow ctxflow — the no-context convenience API is itself the root
	return c.SGEMMBatchCtx(context.Background(), mode, batch)
}

// DGEMMBatch is the FP64 counterpart of SGEMMBatch.
func (c *Context) DGEMMBatch(mode Mode, batch []DBatchEntry) error {
	//shalom:allow ctxflow — the no-context convenience API is itself the root
	return c.DGEMMBatchCtx(context.Background(), mode, batch)
}

// SGEMMBatchCtx is SGEMMBatch with cooperative cancellation: the runtime
// observes ctx between entries (an entry runs whole or not at all) and a
// cancelled context aborts the rest of the batch with a *BatchCancelError —
// errors.Is(err, context.Canceled) holds, Completed counts entries whose
// results are exactly those of an uncancelled run.
func (c *Context) SGEMMBatchCtx(ctx context.Context, mode Mode, batch []SBatchEntry) error {
	return core.SGEMMBatchCtx(ctx, c.config(batchWidth(c, batch)), mode, batch)
}

// DGEMMBatchCtx is the FP64 counterpart of SGEMMBatchCtx.
func (c *Context) DGEMMBatchCtx(ctx context.Context, mode Mode, batch []DBatchEntry) error {
	return core.DGEMMBatchCtx(ctx, c.config(batchWidth(c, batch)), mode, batch)
}

// batchThreads is the automatic policy for batch calls: one thread for a
// single entry, otherwise up to one worker per entry bounded by the
// machine's parallelism.
func batchThreads(entries int) int {
	if entries < 2 {
		return 1
	}
	if p := gomaxprocs(); entries > p {
		return p
	}
	return entries
}

// batchWidth resolves the thread width of one batch call and records the
// decision in the thread-policy telemetry, mirroring chooseThreads for the
// single-call path. The degenerate clamp overrides even a configured width:
// a batch whose every entry fits inside one micro-tile (m, n ≤ 4) carries so
// little work per entry that task dispatch would dominate — such a batch
// never spins up the pool, whatever width was requested.
func batchWidth[T core.Float](c *Context, batch []core.BatchEntry[T]) int {
	chosen := c.threads
	if chosen == 0 {
		chosen = batchThreads(len(batch))
	}
	if chosen > 1 && allDegenerate(batch) {
		chosen = 1
	}
	if c.tel != nil {
		requested := c.threads
		if requested == 0 {
			requested = gomaxprocs()
		}
		c.tel.ThreadChoice(requested, chosen)
	}
	return chosen
}

// allDegenerate reports whether every entry of a non-empty batch is
// micro-tile-degenerate (the same m, n ≤ 4 bound threadsFor clamps on).
func allDegenerate[T core.Float](batch []core.BatchEntry[T]) bool {
	if len(batch) == 0 {
		return false
	}
	for _, e := range batch {
		if e.M > 4 || e.N > 4 {
			return false
		}
	}
	return true
}
