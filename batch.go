package libshalom

import "libshalom/internal/core"

// SBatchEntry is one independent FP32 GEMM of a batch call.
type SBatchEntry = core.BatchEntry[float32]

// DBatchEntry is one independent FP64 GEMM of a batch call.
type DBatchEntry = core.BatchEntry[float64]

// SGEMMBatch executes many independent small FP32 GEMMs under one mode,
// spreading entries across the context's worker pool. This is the paper's
// small-GEMM parallelization model (§7.4): each problem runs the
// single-threaded driver; parallelism comes from problem independence —
// the pattern CP2K's block-sparse multiplications use.
//
// Entries must not write overlapping C storage; CheckBatchAliasing from
// the same package family is available through core for debug use.
func (c *Context) SGEMMBatch(mode Mode, batch []SBatchEntry) error {
	threads := c.threads
	if threads == 0 {
		threads = batchThreads(len(batch))
	}
	cfg := core.Config{Plat: c.plat, Threads: threads, Pool: c.ensurePool(threads)}
	return core.SGEMMBatch(cfg, mode, batch)
}

// DGEMMBatch is the FP64 counterpart of SGEMMBatch.
func (c *Context) DGEMMBatch(mode Mode, batch []DBatchEntry) error {
	threads := c.threads
	if threads == 0 {
		threads = batchThreads(len(batch))
	}
	cfg := core.Config{Plat: c.plat, Threads: threads, Pool: c.ensurePool(threads)}
	return core.DGEMMBatch(cfg, mode, batch)
}

// batchThreads is the automatic policy for batch calls: one thread for a
// single entry, otherwise up to one worker per entry bounded by the
// machine's parallelism.
func batchThreads(entries int) int {
	if entries < 2 {
		return 1
	}
	if p := gomaxprocs(); entries > p {
		return p
	}
	return entries
}
