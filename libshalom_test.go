package libshalom

import (
	"testing"
	"testing/quick"

	"libshalom/internal/mat"
)

func TestSGEMMQuickstartShape(t *testing.T) {
	// The 8x8x8 NekBox-style kernel from the paper's introduction.
	rng := mat.NewRNG(1)
	a := mat.RandomF32(8, 8, rng)
	b := mat.RandomF32(8, 8, rng)
	c := mat.NewF32(8, 8)
	if err := SGEMM(NN, 8, 8, 8, 1, a.Data, 8, b.Data, 8, 0, c.Data, 8); err != nil {
		t.Fatal(err)
	}
	want := mat.NewF32(8, 8)
	mat.RefGEMMF32(mat.NoTrans, mat.NoTrans, 1, a, b, 0, want)
	if !c.Equal(want, 1e-3) {
		t.Fatalf("max diff %g", c.MaxDiff(want))
	}
}

func TestContextAllModesProperty(t *testing.T) {
	ctx := New(WithPlatform(Phytium2000()), WithThreads(2))
	defer ctx.Close()
	f := func(seed uint32) bool {
		rng := mat.NewRNG(uint64(seed) + 1)
		m, n, k := rng.Intn(60)+1, rng.Intn(60)+1, rng.Intn(40)+1
		mode := []Mode{NN, NT, TN, TT}[rng.Intn(4)]
		la := mat.RandomF32(m, k, rng)
		lb := mat.RandomF32(k, n, rng)
		a, b := la, lb
		ta, tb := mat.NoTrans, mat.NoTrans
		if mode.TransA() {
			a, ta = la.Transpose(), mat.Transpose
		}
		if mode.TransB() {
			b, tb = lb.Transpose(), mat.Transpose
		}
		c := mat.RandomF32(m, n, rng)
		want := c.Clone()
		mat.RefGEMMF32(ta, tb, 1.25, a, b, -0.75, want)
		if err := ctx.SGEMM(mode, m, n, k, 1.25, a.Data, a.Stride, b.Data, b.Stride, -0.75, c.Data, c.Stride); err != nil {
			return false
		}
		return c.Equal(want, 1e-2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDGEMMDefault(t *testing.T) {
	rng := mat.NewRNG(2)
	a := mat.RandomF64(23, 23, rng)
	b := mat.RandomF64(23, 23, rng)
	c := mat.NewF64(23, 23)
	if err := DGEMM(NN, 23, 23, 23, 1, a.Data, 23, b.Data, 23, 0, c.Data, 23); err != nil {
		t.Fatal(err)
	}
	want := mat.NewF64(23, 23)
	mat.RefGEMMF64(mat.NoTrans, mat.NoTrans, 1, a, b, 0, want)
	if !c.Equal(want, 1e-10) {
		t.Fatal("DGEMM wrong")
	}
}

func TestAutoThreadPolicy(t *testing.T) {
	ctx := New()
	if ctx.threadsFor(8, 8, 8) != 1 {
		t.Fatal("small GEMM must run single-threaded (§7.4)")
	}
	if ctx.threadsFor(100, 100, 100) != 1 {
		t.Fatal("mid-small GEMM must run single-threaded")
	}
	if ctx.threadsFor(64, 50176, 576) < 1 {
		t.Fatal("irregular GEMM should be eligible for parallelism")
	}
	if ctx.threadsFor(2048, 2048, 2048) < 1 {
		t.Fatal("large GEMM should be eligible for parallelism")
	}
	fixed := New(WithThreads(3))
	if fixed.threadsFor(8, 8, 8) != 3 {
		t.Fatal("explicit thread count must win")
	}
}

func TestIrregularParallelCorrect(t *testing.T) {
	ctx := New(WithThreads(8))
	defer ctx.Close()
	rng := mat.NewRNG(3)
	m, n, k := 32, 2048, 64
	a := mat.RandomF32(m, k, rng)
	bt := mat.RandomF32(n, k, rng) // stored transposed for NT
	c := mat.NewF32(m, n)
	if err := ctx.SGEMM(NT, m, n, k, 1, a.Data, a.Stride, bt.Data, bt.Stride, 0, c.Data, c.Stride); err != nil {
		t.Fatal(err)
	}
	want := mat.NewF32(m, n)
	mat.RefGEMMF32(mat.NoTrans, mat.Transpose, 1, a, bt, 0, want)
	if !c.Equal(want, 1e-2) {
		t.Fatalf("parallel NT wrong: %g", c.MaxDiff(want))
	}
}

func TestAnalyticExports(t *testing.T) {
	if tl := MicroKernelTile(4); tl.MR != 7 || tl.NR != 12 {
		t.Fatal("FP32 tile export wrong")
	}
	if tl := MicroKernelTile(8); tl.MR != 7 || tl.NR != 6 {
		t.Fatal("FP64 tile export wrong")
	}
	blk := BlockingFor(KP920(), 4)
	if blk.KC < 32 || blk.MC < 7 || blk.NC < 12 {
		t.Fatalf("blocking export implausible: %+v", blk)
	}
	p := PartitionFor(2048, 256, 64)
	if p.TM != 16 || p.TN != 4 {
		t.Fatal("partition export wrong (paper example)")
	}
}

func TestParseModeExport(t *testing.T) {
	m, err := ParseMode("NT")
	if err != nil || m != NT {
		t.Fatal("ParseMode export broken")
	}
}

func TestPredict(t *testing.T) {
	pred, err := Predict(ImplLibShalom(), Phytium2000(), NN, 32, 32, 32, 4, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if pred.GFLOPS <= 0 || pred.PercentOfPeak <= 0 || pred.PercentOfPeak > 100 {
		t.Fatalf("prediction implausible: %+v", pred)
	}
	// Paper's headline: LibShalom beats every baseline on small GEMM.
	for _, impl := range []Implementation{ImplOpenBLAS(), ImplBLIS(), ImplARMPL(), ImplBLASFEO(), ImplLIBXSMM()} {
		alt, err := Predict(impl, Phytium2000(), NN, 32, 32, 32, 4, 1, true)
		if err != nil {
			t.Fatal(err)
		}
		if alt.GFLOPS > pred.GFLOPS {
			t.Fatalf("%s predicted above LibShalom on small GEMM", impl.Name)
		}
	}
	if _, err := Predict(ImplLibShalom(), KP920(), NN, 8, 8, 8, 3, 1, true); err == nil {
		t.Fatal("bad element size accepted")
	}
	if _, err := Predict(ImplLibShalom(), KP920(), NN, 0, 8, 8, 4, 1, true); err == nil {
		t.Fatal("zero dimension accepted")
	}
}

func TestContextCloseReuse(t *testing.T) {
	ctx := New(WithThreads(4))
	rng := mat.NewRNG(4)
	a := mat.RandomF32(32, 32, rng)
	b := mat.RandomF32(32, 2048, rng)
	c := mat.NewF32(32, 2048)
	if err := ctx.SGEMM(NN, 32, 2048, 32, 1, a.Data, 32, b.Data, 2048, 0, c.Data, 2048); err != nil {
		t.Fatal(err)
	}
	ctx.Close()
	// Context must restart its pool on demand after Close.
	if err := ctx.SGEMM(NN, 32, 2048, 32, 1, a.Data, 32, b.Data, 2048, 0, c.Data, 2048); err != nil {
		t.Fatal(err)
	}
	ctx.Close()
}

func TestPlanForExport(t *testing.T) {
	ctx := New(WithPlatform(Phytium2000()))
	p := ctx.PlanFor(NN, 32, 32, 32, 4)
	if p.Tile.MR != 7 || p.Tile.NR != 12 || p.Threads != 1 {
		t.Fatalf("plan export wrong: %+v", p)
	}
	ctx2 := New(WithThreads(64))
	pp := ctx2.PlanFor(NT, 64, 50176, 576, 4)
	if pp.Threads != 64 || pp.Partition.TN < pp.Partition.TM {
		t.Fatalf("parallel plan export wrong: %+v", pp)
	}
	if pp.String() == "" {
		t.Fatal("plan must render")
	}
}

func TestTuneTileExport(t *testing.T) {
	best, analyticTile := TuneTile(KP920(), 4)
	if analyticTile.MR != 7 || analyticTile.NR != 12 {
		t.Fatal("analytic tile export wrong")
	}
	if best.MR < 1 || best.NR < 4 {
		t.Fatalf("searched tile implausible: %+v", best)
	}
}
