package libshalom

// Integration tests of the telemetry layer through the public API: metric
// exactness (snapshot and Prometheus counts match the calls issued), trace
// structure (phase spans nest correctly under each GEMM call), the
// disabled-path allocation contract, and the thread-policy regression that
// a degenerate GEMM never spins up the worker pool.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"libshalom/internal/mat"
	"libshalom/internal/telemetry"
)

func runSGEMM(t *testing.T, ctx *Context, mode Mode, m, n, k int) {
	t.Helper()
	rng := mat.NewRNG(uint64(m*1000003 + n*1009 + k))
	ar, ac := m, k
	if mode.TransA() {
		ar, ac = k, m
	}
	br, bc := k, n
	if mode.TransB() {
		br, bc = n, k
	}
	A := mat.RandomF32(ar, ac, rng)
	B := mat.RandomF32(br, bc, rng)
	C := mat.NewF32(m, n)
	if err := ctx.SGEMM(mode, m, n, k, 1, A.Data, A.Stride, B.Data, B.Stride, 0, C.Data, C.Stride); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotCountsExact issues a known mix of calls and requires the
// per-shape-class call counts in both the Snapshot and the Prometheus
// rendering to match the calls issued exactly.
func TestSnapshotCountsExact(t *testing.T) {
	ctx := New(WithThreads(1), WithTelemetry())
	defer ctx.Close()

	issued := map[string]uint64{}
	run := func(mode Mode, m, n, k, times int) {
		for i := 0; i < times; i++ {
			runSGEMM(t, ctx, mode, m, n, k)
		}
		issued[ClassifyShape(m, n, k).String()] += uint64(times)
	}
	run(NN, 8, 8, 8, 3)       // tiny
	run(NT, 64, 64, 64, 4)    // small
	run(TN, 64, 64, 64, 2)    // small, second key
	run(TT, 160, 160, 160, 1) // medium

	snap := ctx.Snapshot()
	var total uint64
	for class, want := range issued {
		if got := snap.CallsTotal(class); got != want {
			t.Errorf("snapshot %s calls = %d, want %d", class, got, want)
		}
		total += want
	}
	if got := snap.CallsTotal(""); got != total {
		t.Errorf("snapshot total calls = %d, want %d", got, total)
	}
	for _, c := range snap.Calls {
		if c.Outcome != "ok" || c.Kernel != "fast" {
			t.Errorf("unexpected key in healthy run: %+v", c)
		}
	}

	// The Prometheus rendering must agree line-for-line with the snapshot.
	var buf bytes.Buffer
	if err := ctx.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	promByClass := map[string]uint64{}
	for _, line := range strings.Split(buf.String(), "\n") {
		if !strings.HasPrefix(line, "libshalom_gemm_calls_total{") {
			continue
		}
		var count uint64
		if _, err := fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%d", &count); err != nil {
			t.Fatalf("unparseable line %q: %v", line, err)
		}
		start := strings.Index(line, `shape_class="`) + len(`shape_class="`)
		class := line[start : start+strings.IndexByte(line[start:], '"')]
		promByClass[class] += count
	}
	if len(promByClass) != len(issued) {
		t.Fatalf("prometheus classes %v, want %v", promByClass, issued)
	}
	for class, want := range issued {
		if promByClass[class] != want {
			t.Errorf("prometheus %s calls = %d, want %d", class, promByClass[class], want)
		}
	}
}

// TestTraceNesting runs one single-threaded TN call (the mode that also
// exercises the A-gather pack phase) and checks the exported Chrome trace:
// valid per ValidateTrace, and with plan, block, pack and kernel-batch
// spans correctly nested under the gemm call span.
func TestTraceNesting(t *testing.T) {
	ctx := New(WithThreads(1), WithTelemetry())
	defer ctx.Close()
	runSGEMM(t, ctx, TN, 64, 64, 64)

	var buf bytes.Buffer
	if err := ctx.ExportTrace(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if err := telemetry.ValidateTrace(bytes.NewReader(raw)); err != nil {
		t.Fatalf("exported trace invalid: %v", err)
	}

	var tf struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			TID  int32  `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &tf); err != nil {
		t.Fatal(err)
	}
	// Replay the single-threaded lane's stack and record each span's parent.
	base := func(name string) string {
		if i := strings.IndexByte(name, ' '); i >= 0 {
			return name[:i]
		}
		return name
	}
	parents := map[string]map[string]bool{} // phase -> set of parent phases
	var stack []string
	for _, ev := range tf.TraceEvents {
		switch ev.Ph {
		case "B":
			parent := "root"
			if len(stack) > 0 {
				parent = stack[len(stack)-1]
			}
			p := parents[base(ev.Name)]
			if p == nil {
				p = map[string]bool{}
				parents[base(ev.Name)] = p
			}
			p[parent] = true
			stack = append(stack, base(ev.Name))
		case "E":
			stack = stack[:len(stack)-1]
		}
	}
	want := map[string]string{
		"plan":         "gemm",
		"block":        "gemm",
		"pack":         "block",
		"kernel-batch": "block",
	}
	if len(parents["gemm"]) != 1 || !parents["gemm"]["root"] {
		t.Errorf("gemm span parents = %v, want top-level only", parents["gemm"])
	}
	for phase, wantParent := range want {
		got := parents[phase]
		if len(got) == 0 {
			t.Errorf("no %s span in trace", phase)
			continue
		}
		if len(got) != 1 || !got[wantParent] {
			t.Errorf("%s span parents = %v, want only %q", phase, got, wantParent)
		}
	}
}

// TestTelemetryOffHotPathAllocs asserts the disabled-path contract: a
// context built without WithTelemetry performs zero allocations per GEMM
// call (the telemetryprobe build tag additionally proves zero atomic
// writes; see telemetry_probe_test.go).
func TestTelemetryOffHotPathAllocs(t *testing.T) {
	ctx := New(WithThreads(1))
	defer ctx.Close()
	rng := mat.NewRNG(7)
	A := mat.RandomF32(64, 64, rng)
	B := mat.RandomF32(64, 64, rng)
	C := mat.NewF32(64, 64)
	allocs := testing.AllocsPerRun(100, func() {
		if err := ctx.SGEMM(NN, 64, 64, 64, 1, A.Data, A.Stride, B.Data, B.Stride, 0, C.Data, C.Stride); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("telemetry-off SGEMM allocates %v objects per call, want 0", allocs)
	}
}

// TestTelemetryOnAttribSketchAllocs pins the attribution sketch's hot-path
// budget: with telemetry enabled (CallDone now also feeds the per-key
// attribution counters and the fine GFLOPS histogram) a GEMM call still
// performs zero allocations. The attribution *engine* polls those counters
// off-path on its own goroutine; nothing it needs may cost the caller an
// allocation.
func TestTelemetryOnAttribSketchAllocs(t *testing.T) {
	ctx := New(WithThreads(1), WithTelemetry())
	defer ctx.Close()
	rng := mat.NewRNG(7)
	A := mat.RandomF32(64, 64, rng)
	B := mat.RandomF32(64, 64, rng)
	C := mat.NewF32(64, 64)
	allocs := testing.AllocsPerRun(100, func() {
		if err := ctx.SGEMM(NN, 64, 64, 64, 1, A.Data, A.Stride, B.Data, B.Stride, 0, C.Data, C.Stride); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("telemetry-on SGEMM allocates %v objects per call, want 0", allocs)
	}
	if got := ctx.Snapshot(); len(got.Attrib) == 0 {
		t.Fatal("attribution sketch recorded nothing")
	}
}

// TestDegenerateGEMMNeverStartsPool is the thread-policy regression: a
// 1x1x1 GEMM must not spin up the worker pool, whatever width was
// requested, and the clamp must be visible in the telemetry snapshot.
func TestDegenerateGEMMNeverStartsPool(t *testing.T) {
	for _, width := range []int{0, 8} {
		ctx := New(WithThreads(width), WithTelemetry())
		runSGEMM(t, ctx, NN, 1, 1, 1)
		if ctx.pool != nil {
			t.Fatalf("WithThreads(%d): 1x1x1 GEMM started the worker pool", width)
		}
		snap := ctx.Snapshot()
		if snap.Threads.Calls != 1 || snap.Threads.ChosenSum != 1 {
			t.Fatalf("WithThreads(%d): thread stats = %+v, want 1 call with chosen width 1", width, snap.Threads)
		}
		if width > 1 && snap.Threads.ClampedCalls != 1 {
			t.Fatalf("WithThreads(%d): clamp not recorded: %+v", width, snap.Threads)
		}
		if snap.Pool.TasksQueued != 0 {
			t.Fatalf("WithThreads(%d): pool saw %d tasks for a degenerate GEMM", width, snap.Pool.TasksQueued)
		}
		ctx.Close()
	}
}

// TestThreadChoiceRecorded checks requested-vs-chosen accounting through
// the public API under the automatic policy.
func TestThreadChoiceRecorded(t *testing.T) {
	ctx := New(WithTelemetry()) // automatic §7.4 policy
	defer ctx.Close()
	runSGEMM(t, ctx, NN, 64, 64, 64) // small: policy clamps to 1
	snap := ctx.Snapshot()
	if snap.Threads.Calls != 1 {
		t.Fatalf("thread policy calls = %d, want 1", snap.Threads.Calls)
	}
	if snap.Threads.ChosenSum != 1 {
		t.Fatalf("small GEMM chosen width = %d, want 1", snap.Threads.ChosenSum)
	}
	if snap.Threads.RequestedSum < 1 {
		t.Fatalf("requested width sum = %d, want >= 1", snap.Threads.RequestedSum)
	}
}

// TestTelemetryDisabledSurface checks the public API's behavior without
// WithTelemetry: zero-value snapshot, trace export error, no handler.
func TestTelemetryDisabledSurface(t *testing.T) {
	ctx := New(WithThreads(1))
	defer ctx.Close()
	if ctx.TelemetryEnabled() {
		t.Fatal("TelemetryEnabled without WithTelemetry")
	}
	runSGEMM(t, ctx, NN, 8, 8, 8)
	if snap := ctx.Snapshot(); len(snap.Calls) != 0 || snap.CallsTotal("") != 0 {
		t.Fatalf("disabled snapshot not zero: %+v", snap)
	}
	if err := ctx.ExportTrace(&bytes.Buffer{}); err == nil {
		t.Fatal("ExportTrace should error with telemetry disabled")
	}
	if _, ok := ctx.TelemetryHandler(); ok {
		t.Fatal("TelemetryHandler should report false with telemetry disabled")
	}
	if ctx.PublishExpvar("should-not-publish") {
		t.Fatal("PublishExpvar should report false with telemetry disabled")
	}
}

// TestBatchTelemetry checks per-entry accounting through the batch API:
// every entry lands in the snapshot with the right shape class.
func TestBatchTelemetry(t *testing.T) {
	ctx := New(WithThreads(2), WithTelemetry())
	defer ctx.Close()
	rng := mat.NewRNG(3)
	var batch []SBatchEntry
	for i := 0; i < 6; i++ {
		A := mat.RandomF32(8, 8, rng)
		B := mat.RandomF32(8, 8, rng)
		C := mat.NewF32(8, 8)
		batch = append(batch, SBatchEntry{
			M: 8, N: 8, K: 8, Alpha: 1,
			A: A.Data, LDA: 8, B: B.Data, LDB: 8, Beta: 0, C: C.Data, LDC: 8,
		})
	}
	if err := ctx.SGEMMBatch(NN, batch); err != nil {
		t.Fatal(err)
	}
	snap := ctx.Snapshot()
	if got := snap.CallsTotal("tiny"); got != 6 {
		t.Fatalf("batch recorded %d tiny calls, want 6", got)
	}
	if snap.Pool.TasksQueued == 0 {
		t.Fatal("threaded batch recorded no pool tasks")
	}
	if snap.Pool.TasksDone != snap.Pool.TasksQueued || snap.Pool.InFlight != 0 {
		t.Fatalf("pool accounting unbalanced: %+v", snap.Pool)
	}
}
