package libshalom

// Runtime telemetry. A Context built WithTelemetry instruments the whole
// execution path — dispatch, thread policy, packing, micro-kernel batches,
// pool scheduling, guard demotions and fault injections — at near-zero
// cost: metrics are sharded atomic counters and log-bucketed histograms,
// traces go into a fixed-size ring buffer, and a Context without telemetry
// performs zero additional atomic writes and zero additional allocations on
// the hot path (probe-verified; see DESIGN.md §8).

import (
	"io"
	"net/http"

	"libshalom/internal/telemetry"
)

// TelemetrySnapshot is an aggregated copy of a context's metrics: per-
// (precision, mode, shape class, kernel, outcome) call counts with latency
// and achieved-GFLOPS histograms, pool scheduling gauges, thread-policy
// accounting, and degradation/fault event counters.
type TelemetrySnapshot = telemetry.Snapshot

// TelemetryCallStat is one aggregated (precision, mode, shape class,
// kernel, outcome) row of a TelemetrySnapshot.
type TelemetryCallStat = telemetry.CallStat

// ShapeClass is the low-cardinality workload regime metrics are keyed by:
// empty, tiny, small (the §7.2 small-GEMM regime), medium, large, or
// irregular (the §6 regime).
type ShapeClass = telemetry.ShapeClass

// ClassifyShape reports the shape class of an M×N×K problem — the same
// classification PlanFor records in Plan.ShapeClass.
func ClassifyShape(m, n, k int) ShapeClass { return telemetry.ClassifyShape(m, n, k) }

// TelemetryOptions configures the telemetry layer.
type TelemetryOptions = telemetry.Options

// WithTelemetry enables runtime telemetry on the context: metrics always,
// plus phase-span tracing into a ring buffer of the default capacity
// (8192 spans). Use WithTelemetryOptions to size or disable the trace ring.
func WithTelemetry() Option {
	return func(c *Context) { c.tel = telemetry.New(telemetry.Options{}) }
}

// WithTelemetryOptions enables runtime telemetry with explicit options.
func WithTelemetryOptions(o TelemetryOptions) Option {
	return func(c *Context) { c.tel = telemetry.New(o) }
}

// TelemetryEnabled reports whether the context records telemetry.
func (c *Context) TelemetryEnabled() bool { return c.tel != nil }

// TelemetryRecorder exposes the context's recorder to in-module subsystems
// (internal/server) that record their own events — admission, shedding,
// coalescing — next to the driver's, so one scrape shows the whole pipeline.
// Returns nil when telemetry is disabled; every recorder method no-ops on a
// nil receiver, so callers need not check.
func (c *Context) TelemetryRecorder() *telemetry.Recorder { return c.tel }

// Snapshot aggregates the context's telemetry into an exposition-ready
// value; Snapshot on a context without telemetry returns the zero value.
// Safe to call while GEMM traffic is in flight.
func (c *Context) Snapshot() TelemetrySnapshot { return c.tel.Snapshot() }

// WritePrometheus renders the context's telemetry in the Prometheus text
// exposition format.
func (c *Context) WritePrometheus(w io.Writer) error {
	return c.tel.Snapshot().WritePrometheus(w)
}

// ExportTrace writes the buffered phase spans as Chrome trace_event JSON,
// loadable in chrome://tracing or ui.perfetto.dev. Returns an error when
// telemetry or tracing is disabled.
func (c *Context) ExportTrace(w io.Writer) error {
	_, err := c.tel.WriteTrace(w)
	return err
}

// TelemetryHandler returns the opt-in live-exposition HTTP endpoint
// (GET /metrics, /snapshot, /trace) for the context, and false when
// telemetry is disabled. The library never opens a listener itself; mount
// the handler wherever service policy allows:
//
//	if h, ok := ctx.TelemetryHandler(); ok {
//		go http.ListenAndServe("localhost:9090", h)
//	}
func (c *Context) TelemetryHandler() (http.Handler, bool) {
	if c.tel == nil {
		return nil, false
	}
	return c.tel.Handler(), true
}

// PublishExpvar publishes the context's live telemetry snapshot under the
// given expvar name (served by the standard /debug/vars endpoint). expvar
// panics on duplicate names, so publish once per process per name; returns
// false without publishing when telemetry is disabled.
func (c *Context) PublishExpvar(name string) bool {
	if c.tel == nil {
		return false
	}
	telemetry.PublishExpvar(name, c.tel)
	return true
}
