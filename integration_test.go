package libshalom

// End-to-end integration tests: moderately large problems through the full
// public API, strided views, mixed precisions, batches, and the col-major
// wrappers — the flows a downstream adopter exercises on day one.

import (
	"fmt"
	"testing"

	"libshalom/internal/mat"
)

func TestIntegrationLargeAllModes(t *testing.T) {
	if testing.Short() {
		t.Skip("large integration test")
	}
	ctx := New(WithThreads(4))
	defer ctx.Close()
	rng := mat.NewRNG(2024)
	m, n, k := 211, 307, 157 // primes: exercise every edge path
	la := mat.RandomF32(m, k, rng)
	lb := mat.RandomF32(k, n, rng)
	for _, mode := range []Mode{NN, NT, TN, TT} {
		a, b := la, lb
		ta, tb := mat.NoTrans, mat.NoTrans
		if mode.TransA() {
			a, ta = la.Transpose(), mat.Transpose
		}
		if mode.TransB() {
			b, tb = lb.Transpose(), mat.Transpose
		}
		c := mat.RandomF32(m, n, rng)
		want := c.Clone()
		mat.RefGEMMF32(ta, tb, 0.75, a, b, 1.25, want)
		if err := ctx.SGEMM(mode, m, n, k, 0.75, a.Data, a.Stride, b.Data, b.Stride, 1.25, c.Data, c.Stride); err != nil {
			t.Fatal(err)
		}
		if !c.Equal(want, 5e-2) {
			t.Fatalf("%v: max diff %g", mode, c.MaxDiff(want))
		}
	}
}

func TestIntegrationStridedViews(t *testing.T) {
	// Operate on sub-matrices of larger allocations, BLAS-style.
	ctx := New(WithThreads(2))
	defer ctx.Close()
	rng := mat.NewRNG(9)
	bigA := mat.RandomF32(100, 120, rng)
	bigB := mat.RandomF32(110, 140, rng)
	bigC := mat.RandomF32(90, 130, rng)
	m, n, k := 61, 73, 47
	a := bigA.View(13, 17, m, k)
	b := bigB.View(5, 29, k, n)
	c := bigC.View(11, 31, m, n)
	frame := bigC.Clone() // everything outside the view must stay intact
	want := c.Clone()
	mat.RefGEMMF32(mat.NoTrans, mat.NoTrans, -1, a, b, 2, want)
	if err := ctx.SGEMM(NN, m, n, k, -1, a.Data, a.Stride, b.Data, b.Stride, 2, c.Data, c.Stride); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			d := float64(c.At(i, j)) - float64(want.At(i, j))
			if d > 2e-2 || d < -2e-2 {
				t.Fatalf("view C(%d,%d) wrong", i, j)
			}
		}
	}
	// Check the frame: rows/columns outside the view unchanged.
	for i := 0; i < bigC.Rows; i++ {
		for j := 0; j < bigC.Cols; j++ {
			inside := i >= 11 && i < 11+m && j >= 31 && j < 31+n
			if !inside && bigC.At(i, j) != frame.At(i, j) {
				t.Fatalf("GEMM wrote outside its C view at (%d,%d)", i, j)
			}
		}
	}
}

func TestIntegrationColMajorMatchesRowMajor(t *testing.T) {
	// The same logical problem through both layout APIs must agree.
	rng := mat.NewRNG(31)
	m, n, k := 33, 29, 41
	// Row-major logical operands.
	a := mat.RandomF32(m, k, rng)
	b := mat.RandomF32(k, n, rng)
	cRow := mat.NewF32(m, n)
	if err := SGEMM(NN, m, n, k, 1, a.Data, a.Stride, b.Data, b.Stride, 0, cRow.Data, cRow.Stride); err != nil {
		t.Fatal(err)
	}
	// Column-major copies of the same logical matrices.
	aCol := make([]float32, m*k)
	for i := 0; i < m; i++ {
		for p := 0; p < k; p++ {
			aCol[p*m+i] = a.At(i, p)
		}
	}
	bCol := make([]float32, k*n)
	for p := 0; p < k; p++ {
		for j := 0; j < n; j++ {
			bCol[j*k+p] = b.At(p, j)
		}
	}
	cCol := make([]float32, m*n)
	if err := SGEMMColMajor(false, false, m, n, k, 1, aCol, m, bCol, k, 0, cCol, m); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			d := cCol[j*m+i] - cRow.At(i, j)
			if d > 1e-4 || d < -1e-4 {
				t.Fatalf("layouts disagree at (%d,%d): %v vs %v", i, j, cCol[j*m+i], cRow.At(i, j))
			}
		}
	}
}

func TestIntegrationMixedBatchAndSingle(t *testing.T) {
	// Interleave batch and single calls on one context; the shared pool
	// must serve both.
	ctx := New(WithThreads(4))
	defer ctx.Close()
	rng := mat.NewRNG(77)
	for round := 0; round < 3; round++ {
		a := mat.RandomF32(23, 23, rng)
		b := mat.RandomF32(23, 23, rng)
		c := mat.NewF32(23, 23)
		if err := ctx.SGEMM(NN, 23, 23, 23, 1, a.Data, 23, b.Data, 23, 0, c.Data, 23); err != nil {
			t.Fatal(err)
		}
		entries := make([]SBatchEntry, 8)
		wants := make([]*mat.F32, 8)
		for i := range entries {
			ea := mat.RandomF32(9, 9, rng)
			eb := mat.RandomF32(9, 9, rng)
			ec := mat.NewF32(9, 9)
			w := mat.NewF32(9, 9)
			mat.RefGEMMF32(mat.NoTrans, mat.NoTrans, 1, ea, eb, 0, w)
			wants[i] = w
			entries[i] = SBatchEntry{M: 9, N: 9, K: 9, Alpha: 1, A: ea.Data, LDA: 9, B: eb.Data, LDB: 9, C: ec.Data, LDC: 9}
		}
		if err := ctx.SGEMMBatch(NN, entries); err != nil {
			t.Fatal(err)
		}
		for i, e := range entries {
			got := &mat.F32{Rows: 9, Cols: 9, Stride: 9, Data: e.C}
			if !got.Equal(wants[i], 1e-3) {
				t.Fatalf("round %d entry %d wrong", round, i)
			}
		}
	}
}

func TestIntegrationConcurrentContext(t *testing.T) {
	// One shared context serving simultaneous parallel GEMMs from several
	// goroutines: results must stay correct (the pool joins per call).
	ctx := New(WithThreads(4))
	defer ctx.Close()
	rng := mat.NewRNG(404)
	a := mat.RandomF32(32, 64, rng)
	b := mat.RandomF32(64, 1536, rng)
	want := mat.NewF32(32, 1536)
	mat.RefGEMMF32(mat.NoTrans, mat.NoTrans, 1, a, b, 0, want)
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			c := mat.NewF32(32, 1536)
			if err := ctx.SGEMM(NN, 32, 1536, 64, 1, a.Data, a.Stride, b.Data, b.Stride, 0, c.Data, c.Stride); err != nil {
				errs <- err
				return
			}
			if !c.Equal(want, 1e-2) {
				errs <- errConcurrent
				return
			}
			errs <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

var errConcurrent = fmt.Errorf("concurrent GEMM produced a wrong result")
