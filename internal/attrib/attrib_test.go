package attrib

import (
	"strings"
	"testing"
	"time"

	"libshalom/internal/perfsim"
	"libshalom/internal/platform"
	"libshalom/internal/telemetry"
)

// feedCalls drives n synthetic clean calls of one key into the recorder
// through the same CallDone entry point the driver uses, so the sketch
// path under test is the production one. Each call's reported duration is
// derived from the key's own model prediction scaled by hostScale, which
// makes the measured/predicted ratio of the key exactly hostScale — the
// quantity the calibrated drift detector scores.
func feedCalls(tel *telemetry.Recorder, mode, class, kernel uint8, n int, hostScale float64) {
	m, nn, k := telemetry.RepresentativeShape(telemetry.ShapeClass(class))
	flops := 2 * float64(m) * float64(nn) * float64(k)
	pred := perfsim.ClassPrediction(platform.KP920(), 4, mode, class, kernel, 1)
	durNs := flops / (pred * hostScale) // GFLOPS = flops/ns
	for i := 0; i < n; i++ {
		start := tel.Now() - int64(durNs)
		tel.CallDone(telemetry.PrecF32, mode, class, kernel, telemetry.OutcomeOK, start, flops)
	}
}

func newTestEngine(t *testing.T, tel *telemetry.Recorder, k int) *Engine {
	t.Helper()
	e := New(Config{
		Recorder:       tel,
		Platform:       platform.KP920(),
		Window:         100 * time.Millisecond,
		Margin:         0.35,
		DriftWindows:   k,
		MinWindowCalls: 4,
	})
	if e == nil {
		t.Fatal("New returned nil with a live recorder")
	}
	return e
}

func TestNilEngineIsDisabled(t *testing.T) {
	var e *Engine
	e.Start()
	e.Step()
	e.Close()
	if e.Feed() != nil || e.DriftTotal() != 0 || e.Windows() != 0 {
		t.Fatal("nil engine returned live data")
	}
	if err := e.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatalf("nil WritePrometheus: %v", err)
	}
	if New(Config{}) != nil {
		t.Fatal("New without a recorder must return the disabled (nil) engine")
	}
}

// The calibration contract: two keys whose measured/predicted ratios match
// sit at par together; no drift fires even though the host runs far below
// the modeled ARM platform.
func TestCalibrationAbsorbsHostScale(t *testing.T) {
	tel := telemetry.New(telemetry.Options{})
	e := newTestEngine(t, tel, 2)
	small := uint8(telemetry.ShapeSmall)
	tiny := uint8(telemetry.ShapeTiny)
	for w := 0; w < 6; w++ {
		// Both classes 50× slower than the model, but equally so — a slow
		// host, not a regression.
		feedCalls(tel, 0, small, 0, 8, 0.02)
		feedCalls(tel, 0, tiny, 0, 8, 0.02)
		e.Step()
	}
	if got := e.DriftTotal(); got != 0 {
		t.Fatalf("calibrated equal-ratio keys drifted %d times", got)
	}
	feed := e.Feed()
	if len(feed) != 2 {
		t.Fatalf("feed has %d entries, want 2", len(feed))
	}
	for _, c := range feed {
		if c.RelEff <= 0 {
			t.Fatalf("%s/%s: no relative efficiency scored: %+v", c.ShapeClass, c.Kernel, c)
		}
	}
}

// The drift contract: a key whose measured rate collapses relative to the
// others crosses the margin for K consecutive windows, fires exactly one
// drift event (latched), bumps the telemetry counter, invokes OnDrift, and
// tops the candidate feed; recovery un-latches it.
func TestSeededSlowClassDriftsAndRanksFirst(t *testing.T) {
	tel := telemetry.New(telemetry.Options{})
	e := newTestEngine(t, tel, 2)
	var events []DriftEvent
	e.cfg.OnDrift = func(ev DriftEvent) { events = append(events, ev) }
	small := uint8(telemetry.ShapeSmall)
	tiny := uint8(telemetry.ShapeTiny)

	healthy := func() {
		feedCalls(tel, 0, small, 0, 8, 0.02)
		feedCalls(tel, 0, tiny, 0, 8, 0.02)
		e.Step()
	}
	slowed := func() {
		// The small class collapses 10×; tiny keeps the calibration anchored.
		feedCalls(tel, 0, small, 0, 8, 0.002)
		feedCalls(tel, 0, tiny, 0, 8, 0.02)
		e.Step()
	}

	for i := 0; i < 3; i++ {
		healthy()
	}
	if e.DriftTotal() != 0 {
		t.Fatalf("healthy warmup drifted: %d", e.DriftTotal())
	}
	slowed() // window 1 below par: streak, no event yet (K=2)
	if e.DriftTotal() != 0 {
		t.Fatal("drift fired before K consecutive windows")
	}
	slowed() // window 2: fires
	if e.DriftTotal() != 1 {
		t.Fatalf("drift events = %d, want 1 after K windows", e.DriftTotal())
	}
	slowed() // latched: no second event while still drifting
	if e.DriftTotal() != 1 {
		t.Fatalf("latched drift re-fired: %d", e.DriftTotal())
	}
	if len(events) != 1 {
		t.Fatalf("OnDrift calls = %d, want 1", len(events))
	}
	ev := events[0]
	if ev.ShapeClass != "small" || ev.Kernel != "fast" || ev.Precision != "f32" {
		t.Fatalf("drift event names the wrong key: %+v", ev)
	}
	if ev.RelEff >= 1-e.cfg.Margin {
		t.Fatalf("drift event rel-eff %v not below the margin", ev.RelEff)
	}
	if got := tel.AttribDriftCount(small); got != 1 {
		t.Fatalf("telemetry drift counter = %d, want 1", got)
	}
	snap := tel.Snapshot()
	if len(snap.AttribDrift) != 1 || snap.AttribDrift[0].Name != "small" {
		t.Fatalf("snapshot attrib drift = %+v", snap.AttribDrift)
	}
	if snap.AttribWindows == 0 {
		t.Fatal("snapshot records no attribution windows")
	}

	feed := e.Feed()
	if feed[0].ShapeClass != "small" || !feed[0].Drifting {
		t.Fatalf("top candidate = %+v, want the drifting small class", feed[0])
	}
	if feed[0].Score <= feed[1].Score {
		t.Fatalf("ranking broken: %v <= %v", feed[0].Score, feed[1].Score)
	}
	if feed[0].PredictedGFLOPS <= 0 || feed[0].PeakGFLOPS <= 0 || feed[0].RooflineGFLOPS <= 0 {
		t.Fatalf("model columns missing: %+v", feed[0])
	}

	// Recovery: back at par for one window clears the latch.
	healthy()
	for _, c := range e.Feed() {
		if c.ShapeClass == "small" && c.Drifting {
			t.Fatalf("small class still drifting after recovery: %+v", c)
		}
	}
	if e.DriftTotal() != 1 {
		t.Fatalf("recovery changed the event count: %d", e.DriftTotal())
	}
}

// Windows below the qualification floor must freeze accounts: no scoring,
// no drift, but also no decay of previously scored state.
func TestSparseWindowsFreezeAccounts(t *testing.T) {
	tel := telemetry.New(telemetry.Options{})
	e := newTestEngine(t, tel, 1)
	small := uint8(telemetry.ShapeSmall)
	for i := 0; i < 3; i++ {
		feedCalls(tel, 0, small, 0, 8, 0.02)
		e.Step()
	}
	want := e.Feed()[0].MeasuredGFLOPS
	// Two calls (< MinWindowCalls=4), grotesquely slow: must not score.
	feedCalls(tel, 0, small, 0, 2, 0.0001)
	e.Step()
	got := e.Feed()[0]
	if got.MeasuredGFLOPS != want {
		t.Fatalf("sparse window rescored the account: %v -> %v", want, got.MeasuredGFLOPS)
	}
	if e.DriftTotal() != 0 {
		t.Fatal("sparse window triggered drift")
	}
	// An idle window (no calls at all) likewise leaves everything frozen.
	e.Step()
	if e.Feed()[0].MeasuredGFLOPS != want {
		t.Fatal("idle window mutated the account")
	}
}

func TestReportAndPrometheusExposition(t *testing.T) {
	tel := telemetry.New(telemetry.Options{})
	e := newTestEngine(t, tel, 1)
	feedCalls(tel, 1, uint8(telemetry.ShapeSmall), 0, 8, 0.05)
	e.Step()
	rep := e.Report()
	if rep.Platform != "Kunpeng 920" && rep.Platform == "" {
		t.Fatalf("report platform = %q", rep.Platform)
	}
	if rep.Windows != 1 || len(rep.Candidates) != 1 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Candidates[0].Mode != "NT" {
		t.Fatalf("candidate mode = %q, want NT", rep.Candidates[0].Mode)
	}
	var sb strings.Builder
	if err := e.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"libshalom_attrib_rel_efficiency{precision=\"f32\",mode=\"NT\",shape_class=\"small\",kernel=\"fast\"}",
		"libshalom_attrib_candidate_score",
		"libshalom_attrib_calibration",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

// The ticker goroutine closes windows on its own and shuts down cleanly.
func TestStartCloseLifecycle(t *testing.T) {
	tel := telemetry.New(telemetry.Options{})
	e := New(Config{Recorder: tel, Window: 5 * time.Millisecond, MinWindowCalls: 1})
	e.Start()
	e.Start() // idempotent
	deadline := time.Now().Add(2 * time.Second)
	for e.Windows() == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	e.Close()
	e.Close() // idempotent
	if e.Windows() == 0 {
		t.Fatal("ticker never closed a window")
	}
}
