// Package attrib is the live performance-attribution engine: it joins the
// telemetry stream's per-(precision, mode, shape class, kernel) achieved
// GFLOPS with the models the repository already has — the analytic
// roofline ceiling (internal/analytic) and the uarch scoreboard prediction
// (internal/perfsim) — into rolling-window efficiency accounts, detects
// when a class drifts a configured margin below its model prediction, and
// ranks hot × underperforming keys into the tuning-candidate feed the
// ROADMAP's autotuner item consumes.
//
// Calibration. The serving runtime executes portable Go kernels on
// whatever host it lands on, while the models predict the ARM platform
// persona — so the absolute measured/predicted ratio is an arbitrary host
// constant. The engine therefore scores each key *relatively*: a global
// calibration factor (an EWMA of the best measured/predicted ratio across
// active keys) absorbs the host scale, and a key drifts when its own ratio
// falls Margin below that calibrated par for DriftWindows consecutive
// qualifying windows. On real ARM hardware the calibration converges near
// 1 and the comparison becomes the paper's Fig-6 efficiency reading;
// Calibrate=false pins the factor to 1 for that case.
//
// The engine is strictly off the GEMM hot path: the recorder's sketch is
// updated by CallDone, and the engine only polls cumulative counters on
// its window tick. A nil *Engine is the disabled layer — every exported
// method no-ops, a contract enforced by shalom-vet's telemetrypure
// analyzer alongside telemetry.Recorder and journal.Writer.
package attrib

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"libshalom/internal/analytic"
	"libshalom/internal/perfsim"
	"libshalom/internal/platform"
	"libshalom/internal/telemetry"
)

// Config parameterises an Engine.
type Config struct {
	// Recorder is the telemetry stream to attribute; required.
	Recorder *telemetry.Recorder
	// Platform is the modeled platform; nil defaults to Kunpeng 920.
	Platform *platform.Platform
	// Threads is the per-call width the predictions model. The serving
	// batch path runs every entry single-threaded (§7.4), so servers pass
	// 1 (the default).
	Threads int
	// Window is the rolling accounting period; default 1s.
	Window time.Duration
	// Alpha is the EWMA weight of a new window; default 0.3.
	Alpha float64
	// Margin is the relative shortfall below calibrated par that counts as
	// drifting, in (0,1); default 0.35.
	Margin float64
	// DriftWindows (K) is how many consecutive qualifying windows a key
	// must stay below par before one drift event fires; default 3.
	DriftWindows int
	// MinWindowCalls is the qualification threshold: windows with fewer
	// clean calls on a key leave that key's account frozen; default 16.
	MinWindowCalls uint64
	// Calibrate enables the global host-scale calibration described in the
	// package comment. Servers leave it on; set CalibrateOff to disable.
	CalibrateOff bool
	// OnDrift, when non-nil, receives every drift event (after the
	// telemetry counter is bumped). Called on the engine's tick goroutine.
	OnDrift func(DriftEvent)
}

// DriftEvent is the typed event the drift detector emits.
type DriftEvent struct {
	Precision  string  `json:"precision"`
	Mode       string  `json:"mode"`
	ShapeClass string  `json:"shape_class"`
	Kernel     string  `json:"kernel"`
	Measured   float64 `json:"measured_gflops"`  // window EWMA
	Predicted  float64 `json:"predicted_gflops"` // model, uncalibrated
	RelEff     float64 `json:"rel_efficiency"`   // measured/predicted vs calibrated par
	Windows    int     `json:"windows_below"`    // consecutive windows below par
}

// Candidate is one ranked entry of the tuning-candidate feed — the schema
// the future autotuner consumes; keep it stable.
type Candidate struct {
	Precision  string `json:"precision"`
	Mode       string `json:"mode"`
	ShapeClass string `json:"shape_class"`
	Kernel     string `json:"kernel"`

	// Calls and Windows count clean calls ever observed on the key and
	// qualifying windows scored.
	Calls   uint64 `json:"calls"`
	Windows uint64 `json:"windows"`

	// Measured is the EWMA of window mean GFLOPS; P50/P99 come from the
	// latest qualifying window's sketch.
	MeasuredGFLOPS  float64 `json:"measured_gflops"`
	P50GFLOPS       float64 `json:"p50_gflops"`
	P99GFLOPS       float64 `json:"p99_gflops"`
	PredictedGFLOPS float64 `json:"predicted_gflops"`
	PeakGFLOPS      float64 `json:"peak_gflops"`
	RooflineGFLOPS  float64 `json:"roofline_gflops"`

	// RelEff is measured/predicted against calibrated par (1.0 = on
	// model); Efficiency is the raw measured/roofline Fig-6 reading.
	RelEff     float64 `json:"rel_efficiency"`
	Efficiency float64 `json:"roofline_efficiency"`

	// HotShare is the key's fraction of recent flops traffic; Shortfall is
	// max(0, 1-RelEff); Score = HotShare × Shortfall ranks the feed.
	HotShare  float64 `json:"hot_share"`
	Shortfall float64 `json:"shortfall"`
	Score     float64 `json:"score"`

	Drifting    bool   `json:"drifting"`
	DriftEvents uint64 `json:"drift_events"`
}

// Report is the /attrib endpoint's JSON body.
type Report struct {
	Platform    string        `json:"platform"`
	WindowMs    float64       `json:"window_ms"`
	Windows     uint64        `json:"windows"`
	Calibration float64       `json:"calibration"`
	DriftTotal  uint64        `json:"drift_events_total"`
	Candidates  []Candidate   `json:"candidates"`
	Events      []DriftEvent  `json:"recent_drift_events,omitempty"`
	GeneratedAt time.Time     `json:"generated_at"`
	Window      time.Duration `json:"-"`
}

// account is one key's rolling state.
type account struct {
	prev telemetry.AttribCell // cumulative totals at the last window edge

	calls   uint64 // clean calls ever observed
	windows uint64 // qualifying windows scored

	ewma     float64 // EWMA of window mean GFLOPS
	hotRate  float64 // EWMA of window flops/sec (hotness)
	p50, p99 float64 // latest qualifying window

	predicted float64 // model GFLOPS (lazy, memoised here per key)
	peak      float64
	roofline  float64
	havePred  bool

	relEff      float64
	badStreak   int
	drifting    bool
	driftEvents uint64
}

// Engine computes attribution accounts from a Recorder. A nil Engine is
// the disabled layer; every exported method no-ops.
type Engine struct {
	cfg  Config
	plat *platform.Platform

	mu       sync.Mutex
	cells    [telemetry.NumAttribKeys]telemetry.AttribCell
	accounts [telemetry.NumAttribKeys]account
	cal      float64 // calibrated host scale (EWMA), 0 until first estimate
	windows  uint64
	drifts   uint64
	recent   []DriftEvent // bounded ring of recent drift events

	stop chan struct{}
	done chan struct{}
}

// maxRecentDrift bounds the recent-events list in the report.
const maxRecentDrift = 16

// New builds an Engine. Nil is returned when cfg.Recorder is nil — an
// engine without a stream is the disabled layer, and callers thread the
// nil through untouched.
func New(cfg Config) *Engine {
	if cfg.Recorder == nil {
		return nil
	}
	if cfg.Platform == nil {
		cfg.Platform = platform.KP920()
	}
	if cfg.Threads < 1 {
		cfg.Threads = 1
	}
	if cfg.Window <= 0 {
		cfg.Window = time.Second
	}
	if cfg.Alpha <= 0 || cfg.Alpha > 1 {
		cfg.Alpha = 0.3
	}
	if cfg.Margin <= 0 || cfg.Margin >= 1 {
		cfg.Margin = 0.35
	}
	if cfg.DriftWindows < 1 {
		cfg.DriftWindows = 3
	}
	if cfg.MinWindowCalls == 0 {
		cfg.MinWindowCalls = 16
	}
	return &Engine{cfg: cfg, plat: cfg.Platform}
}

// Start launches the window ticker goroutine. Safe on nil; Close stops it.
func (e *Engine) Start() {
	if e == nil {
		return
	}
	e.mu.Lock()
	if e.stop != nil {
		e.mu.Unlock()
		return
	}
	e.stop = make(chan struct{})
	e.done = make(chan struct{})
	stop, done := e.stop, e.done
	e.mu.Unlock()
	go func() {
		defer close(done)
		t := time.NewTicker(e.cfg.Window)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				e.Step()
			}
		}
	}()
}

// Close stops the ticker goroutine, if one is running. Safe on nil.
func (e *Engine) Close() {
	if e == nil {
		return
	}
	e.mu.Lock()
	stop, done := e.stop, e.done
	e.stop, e.done = nil, nil
	e.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// Step closes one accounting window: it differences the recorder's
// cumulative sketch against the previous edge, rescores every qualifying
// key, updates the calibration, and runs the drift detector. The ticker
// calls it on Window boundaries; tests call it directly for determinism.
func (e *Engine) Step() {
	if e == nil {
		return
	}
	e.mu.Lock()
	rec := e.cfg.Recorder
	rec.ReadAttrib(&e.cells)

	type winRow struct {
		idx    int
		calls  uint64
		gflops float64
		flops  uint64
		hist   [telemetry.NumAttribBuckets]uint64
	}
	var rows []winRow
	for i := 0; i < telemetry.NumAttribKeys; i++ {
		cur, prev := &e.cells[i], &e.accounts[i].prev
		dCalls := cur.Count - prev.Count
		if dCalls == 0 {
			continue
		}
		dDur := cur.DurNs - prev.DurNs
		dFlops := cur.Flops - prev.Flops
		e.accounts[i].calls = cur.Count
		if dCalls < e.cfg.MinWindowCalls || dDur == 0 {
			// Below the qualification floor: absorb the delta without
			// scoring, so idle keys never decay into false drift.
			e.accounts[i].prev = *cur
			continue
		}
		row := winRow{idx: i, calls: dCalls, gflops: float64(dFlops) / float64(dDur), flops: dFlops}
		for b := range row.hist {
			row.hist[b] = cur.Hist[b] - prev.Hist[b]
		}
		rows = append(rows, row)
		e.accounts[i].prev = *cur
	}

	// Lazy model lookups for newly active keys, and this window's best
	// measured/predicted ratio — the calibration observation.
	bestRatio := 0.0
	for _, row := range rows {
		a := &e.accounts[row.idx]
		if !a.havePred {
			prec, mode, class, kernel := telemetry.AttribKeyAt(row.idx)
			elem := 4
			if prec == telemetry.PrecF64 {
				elem = 8
			}
			m, n, k := telemetry.RepresentativeShape(telemetry.ShapeClass(class))
			a.predicted = perfsim.ClassPrediction(e.plat, elem, mode, class, kernel, e.cfg.Threads)
			rf := analytic.RooflineFor(e.plat, m, n, k, elem, e.cfg.Threads)
			a.peak = rf.PeakGFLOPS
			a.roofline = rf.Attainable()
			a.havePred = true
		}
		if a.predicted > 0 {
			if r := row.gflops / a.predicted; r > bestRatio {
				bestRatio = r
			}
		}
	}
	if !e.cfg.CalibrateOff && bestRatio > 0 {
		if e.cal == 0 {
			e.cal = bestRatio
		} else {
			e.cal += e.cfg.Alpha * (bestRatio - e.cal)
		}
	}
	cal := e.cal
	if e.cfg.CalibrateOff || cal == 0 {
		cal = 1
	}

	winSec := e.cfg.Window.Seconds()
	var fired []DriftEvent
	for _, row := range rows {
		a := &e.accounts[row.idx]
		a.windows++
		if a.ewma == 0 {
			a.ewma = row.gflops
		} else {
			a.ewma += e.cfg.Alpha * (row.gflops - a.ewma)
		}
		rate := float64(row.flops) / winSec
		if a.hotRate == 0 {
			a.hotRate = rate
		} else {
			a.hotRate += e.cfg.Alpha * (rate - a.hotRate)
		}
		a.p50 = telemetry.AttribQuantile(&row.hist, 0.50)
		a.p99 = telemetry.AttribQuantile(&row.hist, 0.99)
		if a.predicted <= 0 {
			continue
		}
		a.relEff = row.gflops / a.predicted / cal
		if a.relEff < 1-e.cfg.Margin {
			a.badStreak++
			if a.badStreak >= e.cfg.DriftWindows && !a.drifting {
				a.drifting = true
				a.driftEvents++
				e.drifts++
				prec, mode, class, kernel := telemetry.AttribKeyLabels(row.idx)
				_, _, classIdx, _ := telemetry.AttribKeyAt(row.idx)
				rec.AttribDriftEvent(classIdx)
				ev := DriftEvent{
					Precision: prec, Mode: mode, ShapeClass: class, Kernel: kernel,
					Measured: a.ewma, Predicted: a.predicted,
					RelEff: a.relEff, Windows: a.badStreak,
				}
				e.recent = append(e.recent, ev)
				if len(e.recent) > maxRecentDrift {
					e.recent = e.recent[len(e.recent)-maxRecentDrift:]
				}
				fired = append(fired, ev)
			}
		} else {
			// A compliant window clears the streak and un-latches drift —
			// the detector reports recovery the same way breakers re-close.
			a.badStreak = 0
			a.drifting = false
		}
	}
	e.windows++
	rec.AttribWindowDone()
	onDrift := e.cfg.OnDrift
	e.mu.Unlock()

	if onDrift != nil {
		for _, ev := range fired {
			onDrift(ev)
		}
	}
}

// Feed returns the ranked tuning-candidate feed: every scored key, ordered
// by Score (hot × underperforming) descending with deterministic
// tie-breaking on the dense key order.
func (e *Engine) Feed() []Candidate {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.feedLocked()
}

func (e *Engine) feedLocked() []Candidate {
	var totalRate float64
	for i := range e.accounts {
		totalRate += e.accounts[i].hotRate
	}
	var out []Candidate
	for i := range e.accounts {
		a := &e.accounts[i]
		if a.windows == 0 {
			continue
		}
		prec, mode, class, kernel := telemetry.AttribKeyLabels(i)
		c := Candidate{
			Precision: prec, Mode: mode, ShapeClass: class, Kernel: kernel,
			Calls: a.calls, Windows: a.windows,
			MeasuredGFLOPS: a.ewma, P50GFLOPS: a.p50, P99GFLOPS: a.p99,
			PredictedGFLOPS: a.predicted, PeakGFLOPS: a.peak, RooflineGFLOPS: a.roofline,
			RelEff:   a.relEff,
			Drifting: a.drifting, DriftEvents: a.driftEvents,
		}
		if a.roofline > 0 {
			c.Efficiency = a.ewma / a.roofline
		}
		if totalRate > 0 {
			c.HotShare = a.hotRate / totalRate
		}
		if c.RelEff < 1 {
			c.Shortfall = 1 - c.RelEff
		}
		c.Score = c.HotShare * c.Shortfall
		out = append(out, c)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	return out
}

// Report assembles the /attrib JSON body. Safe on nil (zero report).
func (e *Engine) Report() Report {
	if e == nil {
		return Report{}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	cal := e.cal
	if e.cfg.CalibrateOff || cal == 0 {
		cal = 1
	}
	r := Report{
		Platform:    e.plat.Name,
		WindowMs:    float64(e.cfg.Window) / float64(time.Millisecond),
		Window:      e.cfg.Window,
		Windows:     e.windows,
		Calibration: cal,
		DriftTotal:  e.drifts,
		Candidates:  e.feedLocked(),
		GeneratedAt: time.Now(),
	}
	r.Events = append(r.Events, e.recent...)
	return r
}

// DriftTotal returns the cumulative drift events. Safe on nil.
func (e *Engine) DriftTotal() uint64 {
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.drifts
}

// Windows returns the number of closed accounting windows. Safe on nil.
func (e *Engine) Windows() uint64 {
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.windows
}

// WritePrometheus renders the engine's gauge family: per-key relative
// efficiency, roofline efficiency, candidate score and hot share, plus the
// global calibration factor. Counter-shaped series (drift events, windows)
// are exposed by the telemetry snapshot, not here, so the combined
// exposition never duplicates a series. Safe on nil (writes nothing).
func (e *Engine) WritePrometheus(w io.Writer) error {
	if e == nil {
		return nil
	}
	rep := e.Report()
	var b []byte
	labels := func(c Candidate) string {
		return fmt.Sprintf(`{precision=%q,mode=%q,shape_class=%q,kernel=%q}`,
			c.Precision, c.Mode, c.ShapeClass, c.Kernel)
	}
	b = append(b, "# HELP libshalom_attrib_rel_efficiency Measured/predicted GFLOPS against calibrated par (1.0 = on model).\n"...)
	b = append(b, "# TYPE libshalom_attrib_rel_efficiency gauge\n"...)
	for _, c := range rep.Candidates {
		b = append(b, fmt.Sprintf("libshalom_attrib_rel_efficiency%s %g\n", labels(c), c.RelEff)...)
	}
	b = append(b, "# HELP libshalom_attrib_roofline_efficiency Measured GFLOPS over the analytic roofline ceiling.\n"...)
	b = append(b, "# TYPE libshalom_attrib_roofline_efficiency gauge\n"...)
	for _, c := range rep.Candidates {
		b = append(b, fmt.Sprintf("libshalom_attrib_roofline_efficiency%s %g\n", labels(c), c.Efficiency)...)
	}
	b = append(b, "# HELP libshalom_attrib_candidate_score Tuning-candidate rank score: hot share times shortfall.\n"...)
	b = append(b, "# TYPE libshalom_attrib_candidate_score gauge\n"...)
	for _, c := range rep.Candidates {
		b = append(b, fmt.Sprintf("libshalom_attrib_candidate_score%s %g\n", labels(c), c.Score)...)
	}
	b = append(b, "# HELP libshalom_attrib_hot_share Key share of recent flops traffic.\n"...)
	b = append(b, "# TYPE libshalom_attrib_hot_share gauge\n"...)
	for _, c := range rep.Candidates {
		b = append(b, fmt.Sprintf("libshalom_attrib_hot_share%s %g\n", labels(c), c.HotShare)...)
	}
	b = append(b, fmt.Sprintf("# HELP libshalom_attrib_calibration Global host-scale calibration factor (measured/predicted par).\n# TYPE libshalom_attrib_calibration gauge\nlibshalom_attrib_calibration %g\n", rep.Calibration)...)
	_, err := w.Write(b)
	return err
}

// Handler serves the report as JSON — the /attrib endpoint body.
// Safe on nil: serves 404 when the engine is disabled.
func (e *Engine) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		if e == nil {
			http.Error(w, "attribution disabled", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(e.Report())
	})
}
