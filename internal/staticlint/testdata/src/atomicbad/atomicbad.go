// Package atomicbad is a staticlint fixture for the atomicdiscipline
// analyzer: one mixed atomic/plain field, one misaligned 64-bit atomic.
package atomicbad

import "sync/atomic"

type stats struct {
	hits uint64
}

// Mixed reads s.hits plainly while Bump below accesses it atomically:
// finding at the plain read (line 16).
func Mixed(s *stats) uint64 {
	atomic.AddUint64(&s.hits, 1)
	return s.hits
}

type counters struct {
	pad uint32
	n   uint64 // offset 4 under 32-bit layout: not 8-aligned
}

// Bump64 uses a 64-bit atomic on a misaligned field: finding at the call.
func Bump64(c *counters) {
	atomic.AddUint64(&c.n, 1)
}
