// Package hotbad is a staticlint fixture: every annotated function below
// violates the class it claims, one way per function, at a known line.
package hotbad

import (
	"sync"
	"time"
)

var mu sync.Mutex

//shalom:hotpath noalloc
func Alloc(n int) []int {
	return make([]int, n) // line 14: builtin make
}

//shalom:hotpath noalloc
func Boxes(v int) any {
	return v // line 19: interface boxing on return
}

//shalom:hotpath nolock
func Locks() {
	mu.Lock() // line 24: mutex acquisition
	mu.Unlock()
}

//shalom:hotpath noblock
func Blocks(c chan int) int {
	return <-c // line 30: channel receive
}

//shalom:hotpath notime
func Clock() int64 {
	return time.Now().UnixNano() // line 35: clock read
}

//shalom:hotpath noalloc
func Transitive(n int) []int {
	return helper(n) // clean itself; helper allocates
}

func helper(n int) []int {
	return make([]int, n) // line 44: flagged via Transitive's annotation
}

//shalom:hotpath noalloc
func Allowed(n int) []int {
	//shalom:allow hotpath -- fixture: amortized growth, measured cold path
	return make([]int, n) // suppressed by the allow above
}
