// Package ctxbad is a staticlint fixture for the ctxflow analyzer: one
// bare context root, one justified with an allow.
package ctxbad

import "context"

// Root mints a context in library code: finding at line 9.
func Root() context.Context {
	return context.Background()
}

// Documented is a deliberate root with its justification on record.
func Documented() context.Context {
	//shalom:allow ctxflow -- fixture: detached audit-log writes outlive the request
	return context.TODO()
}
