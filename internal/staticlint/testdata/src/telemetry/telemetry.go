// Package telemetry is a staticlint fixture for the telemetrypure
// analyzer: a Recorder with one guarded writer, two unguarded writers, and
// one read-only method.
package telemetry

import "sync/atomic"

// Recorder mirrors the real recorder's nil-receiver contract.
type Recorder struct {
	calls atomic.Uint64
	gauge int64
}

// Guarded opens with the nil guard: clean.
func (r *Recorder) Guarded() {
	if r == nil {
		return
	}
	r.calls.Add(1)
}

// GuardedDisjunct keeps the guard as the first || disjunct: clean.
func (r *Recorder) GuardedDisjunct(skip bool) {
	if r == nil || skip {
		return
	}
	r.calls.Add(1)
}

// Unguarded writes atomically without the guard: finding at line 32.
func (r *Recorder) Unguarded() {
	r.calls.Add(1)
}

// PlainWrite assigns receiver state without the guard: finding at line 37.
func (r *Recorder) PlainWrite(v int64) {
	r.gauge = v
}

// ReadOnly never writes; no guard required.
func (r *Recorder) ReadOnly() uint64 {
	return r.calls.Load()
}
