// Package journal is a staticlint fixture for the telemetrypure analyzer's
// journal target: a Writer with a guarded exported writer, an unguarded
// exported writer, and an unguarded unexported locked helper that the
// exported-only rule must skip.
package journal

import "sync"

// Writer mirrors the real journal writer's nil-receiver contract.
type Writer struct {
	mu  sync.Mutex
	seq uint64
}

// Guarded opens with the nil guard: clean.
func (w *Writer) Guarded() uint64 {
	if w == nil {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.seq++
	return w.seq
}

// Unguarded writes receiver state without the guard: finding at line 27.
func (w *Writer) Unguarded() {
	w.seq++
}

// appendLocked writes unguarded, but is unexported: the exported-only rule
// for the journal target must not flag it.
func (w *Writer) appendLocked() {
	w.seq++
}
