// Package hotclean is a staticlint fixture: fully annotated, fully clean.
package hotclean

//shalom:hotpath noalloc,nolock,noblock,notime
func Dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

//shalom:hotpath noalloc,nolock,noblock,notime
func Scale(dst []float64, alpha float64) {
	for i := range dst {
		dst[i] *= alpha
	}
}
