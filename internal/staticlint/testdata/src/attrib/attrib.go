// Package attrib is a staticlint fixture for the telemetrypure analyzer's
// attribution-engine target: a nil Engine is the disabled layer, so every
// exported method that mutates engine state must open with the nil guard,
// while unexported locked helpers (reached only through guarded exported
// methods) are exempt.
package attrib

import "sync"

// Engine mirrors the real attribution engine's nil-receiver contract.
type Engine struct {
	mu      sync.Mutex
	windows uint64
}

// Step opens with the nil guard: clean.
func (e *Engine) Step() {
	if e == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.windows++
}

// Unguarded mutates engine state without the guard: finding at line 27.
func (e *Engine) Unguarded() {
	e.windows++
}

// stepLocked writes unguarded, but is unexported: the exported-only rule
// must not flag it.
func (e *Engine) stepLocked() {
	e.windows++
}

// Windows only reads: clean without a guard (the real method guards anyway,
// but reads are not the analyzer's business).
func (e *Engine) Windows() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.windows
}
