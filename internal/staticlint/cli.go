package staticlint

import (
	"flag"
	"fmt"
	"io"
)

// Exit codes shared by shalom-vet and the analyzer tests.
const (
	ExitClean    = 0 // no findings
	ExitFindings = 1 // at least one diagnostic
	ExitUsage    = 2 // bad flags, load failure, or type errors
)

// Main is the shalom-vet entry point, factored out of package main so CLI
// behaviour (flag parsing, exit codes, output shape) is testable in-process.
func Main(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("shalom-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		tags     = fs.String("tags", "", "build tags to pass to the loader (comma-separated)")
		dir      = fs.String("dir", ".", "directory to resolve patterns from")
		analyzer = fs.String("analyzers", "", "comma-separated analyzer subset (default: all)")
		list     = fs.Bool("list", false, "list available analyzers and exit")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: shalom-vet [flags] [packages]\n\n")
		fmt.Fprintf(stderr, "Runs the shalom static analyzers over the given package patterns\n")
		fmt.Fprintf(stderr, "(default ./...). Exit codes: %d clean, %d findings, %d usage/load error.\n\n",
			ExitClean, ExitFindings, ExitUsage)
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return ExitUsage
	}

	if *list {
		for _, a := range All() {
			fmt.Fprintf(stdout, "%-18s %s\n", a.Name, a.Doc)
		}
		return ExitClean
	}

	analyzers := All()
	if *analyzer != "" {
		sel, err := ByNames(*analyzer)
		if err != nil {
			fmt.Fprintf(stderr, "shalom-vet: %v\n", err)
			return ExitUsage
		}
		analyzers = sel
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	prog, err := Load(Config{Dir: *dir, Patterns: patterns, Tags: *tags})
	if err != nil {
		fmt.Fprintf(stderr, "shalom-vet: %v\n", err)
		return ExitUsage
	}

	diags := RunAnalyzers(prog, analyzers)
	for _, d := range diags {
		fmt.Fprintln(stdout, d.String())
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "shalom-vet: %d finding(s)\n", len(diags))
		return ExitFindings
	}
	return ExitClean
}
