package staticlint

import (
	"go/ast"
	"go/types"
)

// FuncInfo pairs a module function's type object with its declaration.
type FuncInfo struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
}

// Index is the module-wide function table hotpath's transitive proof walks.
type Index struct {
	funcs map[*types.Func]*FuncInfo
}

func buildIndex(prog *Program) *Index {
	idx := &Index{funcs: map[*types.Func]*FuncInfo{}}
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					idx.funcs[fn] = &FuncInfo{Fn: fn, Decl: fd, Pkg: pkg}
				}
			}
		}
	}
	return idx
}

// Lookup returns the declaration info for a module function, or nil for
// imported/synthetic ones.
func (idx *Index) Lookup(fn *types.Func) *FuncInfo { return idx.funcs[fn] }

// CalleeKind classifies a call site's resolution.
type CalleeKind int

const (
	// CalleeStatic: the target is a concrete *types.Func.
	CalleeStatic CalleeKind = iota
	// CalleeDynamic: a func value or interface method — no static target.
	CalleeDynamic
	// CalleeBuiltin: len, cap, make, append, panic, ...
	CalleeBuiltin
	// CalleeConversion: T(x) — a type conversion, not a call.
	CalleeConversion
)

// Callee resolves one call expression within pkg.
type Callee struct {
	Kind    CalleeKind
	Fn      *types.Func    // Kind == CalleeStatic
	Builtin *types.Builtin // Kind == CalleeBuiltin
	// Iface is true for a dynamic call through an interface method (as
	// opposed to a func value).
	Iface bool
}

// ResolveCall classifies call and finds its static target when one exists.
func ResolveCall(pkg *Package, call *ast.CallExpr) Callee {
	fun := ast.Unparen(call.Fun)
	if tv, ok := pkg.Info.Types[fun]; ok && tv.IsType() {
		return Callee{Kind: CalleeConversion}
	}
	switch f := fun.(type) {
	case *ast.Ident:
		switch obj := pkg.Info.Uses[f].(type) {
		case *types.Func:
			return Callee{Kind: CalleeStatic, Fn: obj}
		case *types.Builtin:
			return Callee{Kind: CalleeBuiltin, Builtin: obj}
		}
		return Callee{Kind: CalleeDynamic}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[f]; ok {
			// Method or field call through a selection.
			if fn, ok := sel.Obj().(*types.Func); ok {
				iface := types.IsInterface(sel.Recv())
				if iface {
					return Callee{Kind: CalleeDynamic, Iface: true}
				}
				return Callee{Kind: CalleeStatic, Fn: fn}
			}
			return Callee{Kind: CalleeDynamic} // func-typed field
		}
		// Package-qualified reference: pkg.Func.
		switch obj := pkg.Info.Uses[f.Sel].(type) {
		case *types.Func:
			return Callee{Kind: CalleeStatic, Fn: obj}
		case *types.Builtin:
			return Callee{Kind: CalleeBuiltin, Builtin: obj}
		}
		return Callee{Kind: CalleeDynamic}
	}
	return Callee{Kind: CalleeDynamic}
}

// FuncPkgPath returns the import path of the package defining fn ("" for
// builtins/universe).
func FuncPkgPath(fn *types.Func) string {
	if fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// RecvNamed returns the named type of fn's receiver, unwrapping pointers,
// or nil for plain functions.
func RecvNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}
