package staticlint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// The annotation grammar (DESIGN.md §11):
//
//	//shalom:hotpath <class>[,<class>...]   on a function declaration
//	//shalom:allow <analyzer>               on or above an offending line
//
// Classes name the operation families a hot path must be free of:
//
//	noalloc  heap allocation and interface boxing (make, new, append,
//	         reference literals, closures, go statements, string building,
//	         fmt, boxing conversions)
//	nolock   mutex/locking primitives and channel operations
//	noblock  calls that can park the goroutine (Sleep, Wait, channel ops,
//	         select without default)
//	notime   clock reads (time.Now, time.Since)
const (
	ClassNoAlloc = "noalloc"
	ClassNoLock  = "nolock"
	ClassNoBlock = "noblock"
	ClassNoTime  = "notime"
)

var validClasses = map[string]bool{
	ClassNoAlloc: true, ClassNoLock: true, ClassNoBlock: true, ClassNoTime: true,
}

// ClassSet is the set of classes one hotpath annotation demands.
type ClassSet map[string]bool

func (c ClassSet) String() string {
	names := make([]string, 0, len(c))
	for n := range c {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ",")
}

// union returns c ∪ o, reusing c when possible.
func (c ClassSet) union(o ClassSet) ClassSet {
	grew := false
	for n := range o {
		if !c[n] {
			grew = true
			break
		}
	}
	if !grew {
		return c
	}
	out := ClassSet{}
	for n := range c {
		out[n] = true
	}
	for n := range o {
		out[n] = true
	}
	return out
}

func (c ClassSet) contains(o ClassSet) bool {
	for n := range o {
		if !c[n] {
			return false
		}
	}
	return true
}

// HotpathDecl is one annotated function.
type HotpathDecl struct {
	Fn      *types.Func
	Decl    *ast.FuncDecl
	Pkg     *Package
	Classes ClassSet
	// BadSpec carries the malformed-annotation message when parsing failed
	// (unknown class, empty class list); the hotpath analyzer reports it.
	BadSpec string
}

// Annotations is the per-program annotation index.
type Annotations struct {
	// allow: file → line → analyzer names suppressed on that line. A
	// standalone `//shalom:allow x` comment suppresses its own line and the
	// next, so it can sit above the statement it excuses.
	allow map[string]map[int]map[string]bool
	// hotpaths in declaration order (file, then position).
	hotpaths []HotpathDecl
}

// Hotpaths returns the annotated functions in source order.
func (a *Annotations) Hotpaths() []HotpathDecl { return a.hotpaths }

func (a *Annotations) allowed(analyzer string, pos token.Position) bool {
	lines := a.allow[pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		if lines[line][analyzer] {
			return true
		}
	}
	return false
}

func collectAnnotations(prog *Program) *Annotations {
	a := &Annotations{allow: map[string]map[int]map[string]bool{}}
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, "//shalom:allow")
					if !ok {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					lines := a.allow[pos.Filename]
					if lines == nil {
						lines = map[int]map[string]bool{}
						a.allow[pos.Filename] = lines
					}
					set := lines[pos.Line]
					if set == nil {
						set = map[string]bool{}
						lines[pos.Line] = set
					}
					for _, name := range strings.Fields(rest) {
						// A "--" or "—" field starts the free-text
						// justification; everything after it is prose.
						if name == "--" || name == "—" {
							break
						}
						set[name] = true
					}
				}
			}
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Doc == nil {
					continue
				}
				for _, c := range fd.Doc.List {
					spec, ok := strings.CutPrefix(c.Text, "//shalom:hotpath")
					if !ok {
						continue
					}
					hd := HotpathDecl{Decl: fd, Pkg: pkg, Classes: ClassSet{}}
					if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
						hd.Fn = obj
					}
					fields := strings.FieldsFunc(spec, func(r rune) bool {
						return r == ',' || r == ' ' || r == '\t'
					})
					if len(fields) == 0 {
						hd.BadSpec = "shalom:hotpath annotation names no classes (want noalloc,nolock,noblock,notime)"
					}
					for _, cl := range fields {
						if !validClasses[cl] {
							hd.BadSpec = "shalom:hotpath names unknown class " + strconv.Quote(cl)
							continue
						}
						hd.Classes[cl] = true
					}
					a.hotpaths = append(a.hotpaths, hd)
					break
				}
			}
		}
	}
	return a
}
