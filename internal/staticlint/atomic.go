package staticlint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// AtomicDiscipline enforces the two field-level rules the Go memory model
// demands of sync/atomic users:
//
//  1. A field accessed through the old-style atomic functions
//     (atomic.AddUint64(&s.f, …)) must never also be accessed plainly — a
//     mixed read tears on 32-bit platforms and races everywhere.
//  2. A raw int64/uint64 field used with 64-bit atomics must sit at an
//     8-aligned offset under 32-bit struct layout (GOARCH=arm), where the
//     compiler only guarantees 4-byte alignment for 8-byte integers. The
//     typed atomic.Int64/Uint64 wrappers are aligned by construction and
//     are the recommended fix.
//
// The catalogue of atomically-accessed fields is built module-wide first,
// so a field written atomically in one package and read plainly in another
// is still caught.
var AtomicDiscipline = &Analyzer{
	Name: "atomicdiscipline",
	Doc:  "no mixed atomic/plain field access; 64-bit atomics alignment-safe on 32-bit layouts",
	Run:  runAtomicDiscipline,
}

// oldAtomicOps maps sync/atomic package functions to the index of their
// address argument.
func oldAtomicAddrArg(name string) (int, bool) {
	for _, prefix := range []string{"Add", "Load", "Store", "Swap", "CompareAndSwap", "Or", "And"} {
		if strings.HasPrefix(name, prefix) && name != prefix {
			return 0, true
		}
	}
	return 0, false
}

type atomicUse struct {
	field *types.Var
	pos   token.Pos
	is64  bool
	// recv/index locate the field within its outermost struct for the
	// 32-bit offset computation.
	recv  types.Type
	index []int
}

func runAtomicDiscipline(prog *Program, rep *Reporter) {
	// Pass 1: collect every field reached through an old-style atomic call,
	// remembering which selector nodes the atomic calls themselves consume.
	uses := map[*types.Var]*atomicUse{}
	consumed := map[*ast.SelectorExpr]bool{}
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := ResolveCall(pkg, call)
				if callee.Kind != CalleeStatic || FuncPkgPath(callee.Fn) != "sync/atomic" {
					return true
				}
				if RecvNamed(callee.Fn) != nil {
					return true // typed atomic.Int64 etc.: safe by construction
				}
				arg, ok := oldAtomicAddrArg(callee.Fn.Name())
				if !ok || arg >= len(call.Args) {
					return true
				}
				ue, ok := ast.Unparen(call.Args[arg]).(*ast.UnaryExpr)
				if !ok || ue.Op != token.AND {
					return true
				}
				sel, ok := ast.Unparen(ue.X).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				selection, ok := pkg.Info.Selections[sel]
				if !ok || selection.Kind() != types.FieldVal {
					return true
				}
				field, ok := selection.Obj().(*types.Var)
				if !ok {
					return true
				}
				consumed[sel] = true
				u := uses[field]
				if u == nil {
					u = &atomicUse{field: field, pos: call.Pos(),
						recv: selection.Recv(), index: selection.Index()}
					uses[field] = u
				}
				if strings.Contains(callee.Fn.Name(), "64") {
					u.is64 = true
				}
				return true
			})
		}
	}
	if len(uses) == 0 {
		return
	}

	// Pass 2: any other selection of those fields is a mixed access.
	type mixed struct {
		pos   token.Pos
		field *types.Var
	}
	var mixes []mixed
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || consumed[sel] {
					return true
				}
				selection, ok := pkg.Info.Selections[sel]
				if !ok || selection.Kind() != types.FieldVal {
					return true
				}
				if field, ok := selection.Obj().(*types.Var); ok && uses[field] != nil {
					mixes = append(mixes, mixed{pos: sel.Pos(), field: field})
				}
				return true
			})
		}
	}
	sort.Slice(mixes, func(i, j int) bool { return mixes[i].pos < mixes[j].pos })
	for _, m := range mixes {
		rep.Reportf(m.pos,
			"field %s is accessed atomically elsewhere (%s); this plain access races with it",
			m.field.Name(), prog.Fset.Position(uses[m.field].pos))
	}

	// Pass 3: 64-bit atomics on raw integer fields must be 8-aligned under
	// the 32-bit layout rules.
	sizes := types.SizesFor("gc", "arm")
	fields := make([]*types.Var, 0, len(uses))
	for f := range uses {
		fields = append(fields, f)
	}
	sort.Slice(fields, func(i, j int) bool { return uses[fields[i]].pos < uses[fields[j]].pos })
	for _, f := range fields {
		u := uses[f]
		if !u.is64 {
			continue
		}
		off, ok := fieldOffset32(sizes, u.recv, u.index)
		if !ok {
			continue
		}
		if off%8 != 0 {
			rep.Reportf(u.pos,
				"64-bit atomic access to %s at 32-bit struct offset %d (not 8-aligned); move the field first or use atomic.%s",
				f.Name(), off, atomicTypeFor(f))
		}
	}
}

// fieldOffset32 computes the byte offset of a (possibly promoted) field
// under the given layout, following the selection index path.
func fieldOffset32(sizes types.Sizes, recv types.Type, index []int) (int64, bool) {
	var off int64
	t := recv
	for _, idx := range index {
		if p, ok := t.Underlying().(*types.Pointer); ok {
			// A pointer hop resets the offset chain: the pointee is its own
			// allocation, 8-aligned at its start on all platforms.
			t = p.Elem()
			off = 0
		}
		st, ok := t.Underlying().(*types.Struct)
		if !ok || idx >= st.NumFields() {
			return 0, false
		}
		flds := make([]*types.Var, st.NumFields())
		for i := range flds {
			flds[i] = st.Field(i)
		}
		off += sizes.Offsetsof(flds)[idx]
		t = st.Field(idx).Type()
	}
	return off, true
}

func atomicTypeFor(f *types.Var) string {
	if b, ok := f.Type().Underlying().(*types.Basic); ok && b.Kind() == types.Uint64 {
		return "Uint64"
	}
	return "Int64"
}
