package staticlint

import (
	"bytes"
	"sort"
	"strings"
	"testing"
)

func loadFixture(t *testing.T, pkgs ...string) *Program {
	t.Helper()
	patterns := make([]string, len(pkgs))
	for i, p := range pkgs {
		patterns[i] = "./testdata/src/" + p
	}
	prog, err := Load(Config{Dir: ".", Patterns: patterns})
	if err != nil {
		t.Fatalf("Load(%v): %v", pkgs, err)
	}
	return prog
}

// expectAt asserts some diagnostic of the given analyzer anchors at
// file:line.
func expectAt(t *testing.T, diags []Diagnostic, analyzer, file string, line int) {
	t.Helper()
	for _, d := range diags {
		if d.Analyzer == analyzer && d.Pos.Line == line && strings.HasSuffix(d.Pos.Filename, file) {
			return
		}
	}
	t.Errorf("no %s finding at %s:%d; got:\n%s", analyzer, file, line, renderDiags(diags))
}

func forbidAt(t *testing.T, diags []Diagnostic, file string, line int) {
	t.Helper()
	for _, d := range diags {
		if d.Pos.Line == line && strings.HasSuffix(d.Pos.Filename, file) {
			t.Errorf("unexpected finding at %s:%d: %s", file, line, d.String())
		}
	}
}

func renderDiags(diags []Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		b.WriteString("  " + d.String() + "\n")
	}
	return b.String()
}

func TestHotpathFixture(t *testing.T) {
	prog := loadFixture(t, "hotbad")
	diags := RunAnalyzers(prog, []*Analyzer{Hotpath})
	const f = "hotbad/hotbad.go"
	expectAt(t, diags, "hotpath", f, 14) // make in Alloc
	expectAt(t, diags, "hotpath", f, 19) // boxing return in Boxes
	expectAt(t, diags, "hotpath", f, 24) // mu.Lock in Locks
	expectAt(t, diags, "hotpath", f, 30) // channel receive in Blocks
	expectAt(t, diags, "hotpath", f, 35) // time.Now in Clock
	expectAt(t, diags, "hotpath", f, 44) // make in helper, via Transitive
	forbidAt(t, diags, f, 50)            // //shalom:allow hotpath suppresses

	// The transitive finding names both the callee and the annotated root.
	var transitive bool
	for _, d := range diags {
		if d.Pos.Line == 44 && strings.Contains(d.Message, "helper") &&
			strings.Contains(d.Message, "Transitive") {
			transitive = true
		}
	}
	if !transitive {
		t.Errorf("line 44 finding does not attribute the annotated root:\n%s", renderDiags(diags))
	}
}

func TestHotpathCleanFixture(t *testing.T) {
	prog := loadFixture(t, "hotclean")
	if diags := RunAnalyzers(prog, All()); len(diags) != 0 {
		t.Errorf("clean fixture produced findings:\n%s", renderDiags(diags))
	}
}

func TestTelemetryPureFixture(t *testing.T) {
	prog := loadFixture(t, "telemetry")
	diags := RunAnalyzers(prog, []*Analyzer{TelemetryPure})
	var got []string
	for _, d := range diags {
		got = append(got, d.Message)
	}
	joined := strings.Join(got, "\n")
	for _, want := range []string{"Unguarded", "PlainWrite"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing finding for %s:\n%s", want, renderDiags(diags))
		}
	}
	for _, clean := range []string{"Guarded writes", "GuardedDisjunct", "ReadOnly"} {
		if strings.Contains(joined, clean) {
			t.Errorf("false positive on %s:\n%s", clean, renderDiags(diags))
		}
	}
	if len(diags) != 2 {
		t.Errorf("want exactly 2 findings, got %d:\n%s", len(diags), renderDiags(diags))
	}
}

// TestTelemetryPureJournalFixture covers the analyzer's second target: the
// journal Writer's exported methods carry the same nil-guard discipline,
// while its unexported *Locked helpers (guarded by their exported callers)
// are exempt.
func TestTelemetryPureJournalFixture(t *testing.T) {
	prog := loadFixture(t, "journal")
	diags := RunAnalyzers(prog, []*Analyzer{TelemetryPure})
	const f = "journal/journal.go"
	expectAt(t, diags, "telemetrypure", f, 27) // Unguarded exported writer
	if len(diags) != 1 {
		t.Errorf("want exactly 1 finding (Guarded and appendLocked are clean), got %d:\n%s",
			len(diags), renderDiags(diags))
	}
}

// TestTelemetryPureAttribFixture covers the analyzer's third target: the
// attribution engine's exported methods carry the nil-guard discipline (a
// nil *Engine is "attribution off"), with the same exported-only exemption
// for locked helpers as the journal writer.
func TestTelemetryPureAttribFixture(t *testing.T) {
	prog := loadFixture(t, "attrib")
	diags := RunAnalyzers(prog, []*Analyzer{TelemetryPure})
	const f = "attrib/attrib.go"
	expectAt(t, diags, "telemetrypure", f, 27) // Unguarded exported mutator
	if len(diags) != 1 {
		t.Errorf("want exactly 1 finding (Step, stepLocked and Windows are clean), got %d:\n%s",
			len(diags), renderDiags(diags))
	}
}

func TestCtxFlowFixture(t *testing.T) {
	prog := loadFixture(t, "ctxbad")
	diags := RunAnalyzers(prog, []*Analyzer{CtxFlow})
	if len(diags) != 1 {
		t.Fatalf("want exactly 1 finding (the allow suppresses the other), got %d:\n%s",
			len(diags), renderDiags(diags))
	}
	expectAt(t, diags, "ctxflow", "ctxbad/ctxbad.go", 9)
}

func TestAtomicDisciplineFixture(t *testing.T) {
	prog := loadFixture(t, "atomicbad")
	diags := RunAnalyzers(prog, []*Analyzer{AtomicDiscipline})
	var mixed, misaligned bool
	for _, d := range diags {
		if strings.Contains(d.Message, "plain access") && strings.Contains(d.Message, "hits") {
			mixed = true
		}
		if strings.Contains(d.Message, "not 8-aligned") && strings.Contains(d.Message, "offset 4") {
			misaligned = true
		}
	}
	if !mixed {
		t.Errorf("missing mixed-access finding:\n%s", renderDiags(diags))
	}
	if !misaligned {
		t.Errorf("missing 32-bit alignment finding:\n%s", renderDiags(diags))
	}
}

func TestDiagnosticsSorted(t *testing.T) {
	prog := loadFixture(t, "hotbad", "telemetry", "ctxbad", "atomicbad")
	diags := RunAnalyzers(prog, All())
	if len(diags) < 4 {
		t.Fatalf("expected findings across fixtures, got %d", len(diags))
	}
	sorted := sort.SliceIsSorted(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Pos.Column <= b.Pos.Column
	})
	if !sorted {
		t.Errorf("diagnostics not sorted:\n%s", renderDiags(diags))
	}
}

func TestMainExitCodes(t *testing.T) {
	run := func(args ...string) (int, string, string) {
		var out, errb bytes.Buffer
		code := Main(args, &out, &errb)
		return code, out.String(), errb.String()
	}

	if code, out, _ := run("-dir", ".", "./testdata/src/hotclean"); code != ExitClean || out != "" {
		t.Errorf("clean fixture: code %d, out %q", code, out)
	}
	code, out, errb := run("-dir", ".", "./testdata/src/hotbad")
	if code != ExitFindings {
		t.Errorf("hotbad fixture: code %d, stderr %q", code, errb)
	}
	if !strings.Contains(out, "hotpath:") || !strings.Contains(out, "hotbad.go:14") {
		t.Errorf("hotbad output missing expected findings:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if !sort.StringsAreSorted(lines) {
		t.Errorf("output lines not sorted:\n%s", out)
	}

	if code, _, _ := run("-nosuchflag"); code != ExitUsage {
		t.Errorf("bad flag: code %d", code)
	}
	if code, _, _ := run("-analyzers", "nosuch", "-dir", ".", "./testdata/src/hotclean"); code != ExitUsage {
		t.Errorf("unknown analyzer: code %d", code)
	}
	if code, _, _ := run("-dir", ".", "./testdata/src/doesnotexist"); code != ExitUsage {
		t.Errorf("unloadable pattern: code %d", code)
	}
	if code, out, _ := run("-list"); code != ExitClean || !strings.Contains(out, "hotpath") {
		t.Errorf("-list: code %d, out %q", code, out)
	}

	// Analyzer subsetting: only ctxflow runs, so hotbad's hotpath findings
	// vanish while ctxbad's remain.
	if code, out, _ := run("-analyzers", "ctxflow", "-dir", ".", "./testdata/src/hotbad"); code != ExitClean || out != "" {
		t.Errorf("-analyzers ctxflow on hotbad: code %d, out %q", code, out)
	}
}
