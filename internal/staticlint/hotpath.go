package staticlint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Hotpath proves `//shalom:hotpath` annotations: the annotated function and
// every statically-resolved module callee must be free of the annotated
// operation classes. The proof is conservative — a construct that cannot be
// shown safe (a dynamic call, a call into an unvetted stdlib function) is a
// violation, with `//shalom:allow hotpath` as the per-line escape hatch for
// cases the human has argued.
var Hotpath = &Analyzer{
	Name: "hotpath",
	Doc:  "functions annotated //shalom:hotpath are transitively free of the banned operation classes",
	Run:  runHotpath,
}

// noallocAllow lists stdlib calls proven not to allocate: "pkg.Func" for
// package functions, "pkg.Type.Method" for methods. Whole packages are
// allowed via the "pkg.*" form.
var noallocAllow = map[string]bool{
	"math.*": true, "math/bits.*": true, "sync/atomic.*": true, "unsafe.*": true,
	"time.Now": true, "time.Since": true, "time.Sleep": true,
	"time.Time.Sub": true, "time.Time.IsZero": true, "time.Time.After": true,
	"time.Time.Before": true, "time.Time.Equal": true, "time.Time.UnixNano": true,
	"time.Duration.Microseconds": true, "time.Duration.Milliseconds": true,
	"time.Duration.Nanoseconds": true, "time.Duration.Seconds": true,
	"sync.Mutex.Lock": true, "sync.Mutex.Unlock": true, "sync.Mutex.TryLock": true,
	"sync.RWMutex.Lock": true, "sync.RWMutex.Unlock": true,
	"sync.RWMutex.RLock": true, "sync.RWMutex.RUnlock": true,
	"sync.WaitGroup.Add": true, "sync.WaitGroup.Done": true, "sync.WaitGroup.Wait": true,
}

// lockRecvTypes are the sync types whose method calls violate nolock.
var lockRecvTypes = map[string]bool{
	"sync.Mutex": true, "sync.RWMutex": true, "sync.Once": true,
	"sync.Map": true, "sync.Cond": true,
}

// blockingCalls violate noblock; clockCalls violate notime.
var blockingCalls = map[string]bool{
	"time.Sleep": true, "sync.WaitGroup.Wait": true, "sync.Cond.Wait": true,
	"runtime.Gosched": true,
}
var clockCalls = map[string]bool{
	"time.Now": true, "time.Since": true, "time.After": true, "time.Tick": true,
}

// callKey renders fn as "pkg.Func" or "pkg.Type.Method" for the tables.
func callKey(fn *types.Func) string {
	pkg := FuncPkgPath(fn)
	if named := RecvNamed(fn); named != nil {
		return pkg + "." + named.Obj().Name() + "." + fn.Name()
	}
	return pkg + "." + fn.Name()
}

func runHotpath(prog *Program, rep *Reporter) {
	idx := prog.Index()

	type work struct {
		info    *FuncInfo
		classes ClassSet
		root    string // annotation origin, for transitive findings
	}
	required := map[*types.Func]ClassSet{}
	var queue []work

	for _, hd := range prog.Annots.Hotpaths() {
		if hd.BadSpec != "" {
			rep.Reportf(hd.Decl.Pos(), "%s", hd.BadSpec)
			continue
		}
		if hd.Fn == nil {
			continue
		}
		info := idx.Lookup(hd.Fn)
		if info == nil || info.Decl.Body == nil {
			rep.Reportf(hd.Decl.Pos(), "//shalom:hotpath on %s: no body to verify", hd.Fn.Name())
			continue
		}
		queue = append(queue, work{info: info, classes: hd.Classes, root: hd.Fn.FullName()})
	}

	for len(queue) > 0 {
		w := queue[0]
		queue = queue[1:]
		have := required[w.info.Fn]
		if have != nil && have.contains(w.classes) {
			continue
		}
		required[w.info.Fn] = have.union(w.classes)

		c := &hotpathChecker{
			prog: prog, rep: rep, idx: idx,
			pkg: w.info.Pkg, fn: w.info.Fn, classes: w.classes, root: w.root,
		}
		c.check(w.info.Decl)
		for _, callee := range c.callees {
			queue = append(queue, work{info: callee, classes: w.classes, root: w.root})
		}
	}
}

// hotpathChecker walks one function body under one class-set requirement.
type hotpathChecker struct {
	prog    *Program
	rep     *Reporter
	idx     *Index
	pkg     *Package
	fn      *types.Func
	classes ClassSet
	root    string
	callees []*FuncInfo
}

func (c *hotpathChecker) violate(pos token.Pos, class, format string, args ...any) {
	if !c.classes[class] {
		return
	}
	msg := fmt.Sprintf(format, args...)
	where := ""
	if c.fn.FullName() != c.root {
		where = fmt.Sprintf(" (in %s, required by //shalom:hotpath on %s)", c.fn.FullName(), c.root)
	}
	c.rep.Reportf(pos, "%s: %s%s", class, msg, where)
}

func (c *hotpathChecker) typeOf(e ast.Expr) types.Type {
	if tv, ok := c.pkg.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune)
}

func isChan(t types.Type) bool {
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// boxes reports whether assigning from to to boxes a concrete value into an
// interface (an allocation for non-pointer-shaped values).
func (c *hotpathChecker) boxes(to types.Type, from ast.Expr) bool {
	if to == nil || !types.IsInterface(to) {
		return false
	}
	tv, ok := c.pkg.Info.Types[from]
	if !ok || tv.Type == nil {
		return false
	}
	if tv.IsNil() || types.IsInterface(tv.Type) {
		return false
	}
	return true
}

func (c *hotpathChecker) check(decl *ast.FuncDecl) {
	sig, _ := c.fn.Type().(*types.Signature)
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			c.checkCall(n)
		case *ast.CompositeLit:
			switch c.typeOf(n).Underlying().(type) {
			case *types.Map:
				c.violate(n.Pos(), ClassNoAlloc, "map literal allocates")
			case *types.Slice:
				c.violate(n.Pos(), ClassNoAlloc, "slice literal allocates")
			}
		case *ast.UnaryExpr:
			switch n.Op {
			case token.AND:
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					c.violate(n.Pos(), ClassNoAlloc, "address-taken composite literal escapes to the heap")
				}
			case token.ARROW:
				c.violate(n.Pos(), ClassNoLock, "channel receive")
				c.violate(n.Pos(), ClassNoBlock, "channel receive can block")
			}
		case *ast.FuncLit:
			c.violate(n.Pos(), ClassNoAlloc, "function literal may allocate a closure")
			return false
		case *ast.GoStmt:
			c.violate(n.Pos(), ClassNoAlloc, "go statement allocates a goroutine")
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if t := c.typeOf(n); t != nil && isString(t) {
					c.violate(n.Pos(), ClassNoAlloc, "string concatenation allocates")
				}
			}
		case *ast.SendStmt:
			c.violate(n.Pos(), ClassNoLock, "channel send")
			c.violate(n.Pos(), ClassNoBlock, "channel send can block")
		case *ast.SelectStmt:
			c.violate(n.Pos(), ClassNoLock, "select statement synchronizes on channels")
			hasDefault := false
			for _, cl := range n.Body.List {
				if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				c.violate(n.Pos(), ClassNoBlock, "select without default can block")
			}
		case *ast.RangeStmt:
			if t := c.typeOf(n.X); t != nil && isChan(t) {
				c.violate(n.Pos(), ClassNoLock, "range over channel")
				c.violate(n.Pos(), ClassNoBlock, "range over channel can block")
			}
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					if c.boxes(c.typeOf(n.Lhs[i]), n.Rhs[i]) {
						c.violate(n.Rhs[i].Pos(), ClassNoAlloc, "assignment boxes a concrete value into an interface")
					}
				}
			}
		case *ast.ReturnStmt:
			if sig != nil && len(n.Results) == sig.Results().Len() {
				for i, res := range n.Results {
					if c.boxes(sig.Results().At(i).Type(), res) {
						c.violate(res.Pos(), ClassNoAlloc, "return boxes a concrete value into an interface")
					}
				}
			}
		}
		return true
	})
}

func (c *hotpathChecker) checkCall(call *ast.CallExpr) {
	callee := ResolveCall(c.pkg, call)
	switch callee.Kind {
	case CalleeConversion:
		to := c.typeOf(call.Fun)
		if len(call.Args) == 1 && to != nil {
			from := c.typeOf(call.Args[0])
			switch {
			case from == nil:
			case isString(to) && isByteOrRuneSlice(from),
				isByteOrRuneSlice(to) && isString(from):
				c.violate(call.Pos(), ClassNoAlloc, "string/slice conversion allocates")
			case c.boxes(to, call.Args[0]):
				c.violate(call.Pos(), ClassNoAlloc, "conversion boxes a concrete value into an interface")
			}
		}
		return
	case CalleeBuiltin:
		switch callee.Builtin.Name() {
		case "make", "new", "append":
			c.violate(call.Pos(), ClassNoAlloc, "builtin %s allocates", callee.Builtin.Name())
		}
		return
	case CalleeDynamic:
		kind := "dynamic call through a func value"
		if callee.Iface {
			kind = "interface method call"
		}
		for _, cl := range []string{ClassNoAlloc, ClassNoLock, ClassNoBlock, ClassNoTime} {
			c.violate(call.Pos(), cl, "%s cannot be proven %s-safe", kind, cl)
		}
		return
	}

	// Static call: box-check the arguments against the signature, then
	// classify the target.
	fn := callee.Fn
	if sig, ok := fn.Type().(*types.Signature); ok && c.classes[ClassNoAlloc] {
		params := sig.Params()
		for i, arg := range call.Args {
			var pt types.Type
			switch {
			case sig.Variadic() && i >= params.Len()-1:
				if call.Ellipsis == token.NoPos {
					pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
					// Passing through variadic also allocates the backing
					// slice at the call site.
					if i == params.Len()-1 {
						c.violate(call.Pos(), ClassNoAlloc, "variadic call to %s allocates its argument slice", callKey(fn))
					}
				} else {
					pt = params.At(params.Len() - 1).Type()
				}
			case i < params.Len():
				pt = params.At(i).Type()
			}
			if c.boxes(pt, arg) {
				c.violate(arg.Pos(), ClassNoAlloc, "argument to %s boxes a concrete value into an interface", callKey(fn))
			}
		}
	}

	if info := c.idx.Lookup(fn); info != nil {
		if info.Decl.Body == nil {
			c.violate(call.Pos(), ClassNoAlloc, "call to bodyless %s cannot be verified", callKey(fn))
			return
		}
		c.callees = append(c.callees, info)
		return
	}

	// Imported call: vet against the class tables.
	key := callKey(fn)
	pkgStar := FuncPkgPath(fn) + ".*"
	if clockCalls[key] {
		c.violate(call.Pos(), ClassNoTime, "%s reads the clock", key)
	}
	if blockingCalls[key] {
		c.violate(call.Pos(), ClassNoBlock, "%s can block", key)
	}
	if named := RecvNamed(fn); named != nil && named.Obj().Pkg() != nil {
		if lockRecvTypes[named.Obj().Pkg().Path()+"."+named.Obj().Name()] {
			c.violate(call.Pos(), ClassNoLock, "%s is a locking primitive", key)
		}
	}
	if !noallocAllow[key] && !noallocAllow[pkgStar] {
		c.violate(call.Pos(), ClassNoAlloc, "call to %s is not on the noalloc allowlist", key)
	}
}
