package staticlint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// TelemetryPure is the static twin of `make probe`: the off-switch types —
// telemetry's *Recorder and the journal's *Writer — are handed out possibly
// nil, and the disabled path's whole contract is that a nil receiver writes
// nothing. The dynamic probe counts atomic writes at runtime under the
// telemetryprobe tag; this analyzer proves the guard discipline at compile
// time — every targeted method that writes through its receiver must begin
// with the nil-receiver guard (`if r == nil { return }`, possibly with
// extra `||` disjuncts).
var TelemetryPure = &Analyzer{
	Name: "telemetrypure",
	Doc:  "nil-disableable types (telemetry Recorder, journal Writer) must open writing methods with the nil-receiver guard",
	Run:  runTelemetryPure,
}

// nilGuardTargets lists the (package, type) pairs whose nil receiver means
// "feature off". ExportedOnly limits the check to the type's public API:
// the journal Writer's unexported *Locked helpers write unguarded by design
// — they are reachable only from guarded exported methods that already hold
// the receiver non-nil (and its mutex).
var nilGuardTargets = []struct {
	Pkg, Type    string
	ExportedOnly bool
}{
	{Pkg: "telemetry", Type: "Recorder"},
	{Pkg: "journal", Type: "Writer", ExportedOnly: true},
	{Pkg: "attrib", Type: "Engine", ExportedOnly: true},
	{Pkg: "autotune", Type: "Engine", ExportedOnly: true},
}

// atomicWriteMethods are the sync/atomic value-type methods that mutate.
var atomicWriteMethods = map[string]bool{
	"Add": true, "Store": true, "Swap": true, "CompareAndSwap": true,
	"Or": true, "And": true,
}

func runTelemetryPure(prog *Program, rep *Reporter) {
	for _, pkg := range prog.Packages {
		for _, target := range nilGuardTargets {
			if pkg.Name != target.Pkg {
				continue
			}
			for _, f := range pkg.Files {
				for _, decl := range f.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok || fd.Recv == nil || fd.Body == nil {
						continue
					}
					if target.ExportedOnly && !fd.Name.IsExported() {
						continue
					}
					fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
					if !ok {
						continue
					}
					named := RecvNamed(fn)
					if named == nil || named.Obj().Name() != target.Type {
						continue
					}
					recv := recvObj(pkg, fd)
					wpos, writes := findRecorderWrite(pkg, fd, recv)
					if !writes {
						continue
					}
					if !opensWithNilGuard(pkg, fd, recv) {
						rep.Reportf(fd.Pos(),
							"(*%s).%s writes (first write at %s) but does not open with the nil-receiver guard — the disabled %s path must be write-free",
							target.Type, fd.Name.Name, prog.Fset.Position(wpos), target.Pkg)
					}
				}
			}
		}
	}
}

// recvObj returns the receiver variable's object, or nil for unnamed
// receivers.
func recvObj(pkg *Package, fd *ast.FuncDecl) types.Object {
	if len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	return pkg.Info.Defs[fd.Recv.List[0].Names[0]]
}

// rootedAtRecv reports whether expr is a selector/index chain starting at
// the receiver variable.
func rootedAtRecv(pkg *Package, recv types.Object, expr ast.Expr) bool {
	if recv == nil {
		return false
	}
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.Ident:
			return pkg.Info.Uses[e] == recv
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		default:
			return false
		}
	}
}

// findRecorderWrite locates the first receiver-rooted write in the body:
// an assignment through the receiver, a mutating sync/atomic method call on
// receiver state, an old-style atomic.XxxYyy(&r.field, ...) call, or the
// probe marker probeAtomicWrite().
func findRecorderWrite(pkg *Package, fd *ast.FuncDecl, recv types.Object) (token.Pos, bool) {
	var pos token.Pos
	found := false
	mark := func(p token.Pos) {
		if !found {
			pos, found = p, true
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if rootedAtRecv(pkg, recv, lhs) {
					mark(lhs.Pos())
				}
			}
		case *ast.IncDecStmt:
			if rootedAtRecv(pkg, recv, n.X) {
				mark(n.Pos())
			}
		case *ast.CallExpr:
			callee := ResolveCall(pkg, n)
			if callee.Kind != CalleeStatic {
				return true
			}
			fn := callee.Fn
			if fn.Name() == "probeAtomicWrite" && FuncPkgPath(fn) == pkg.Path {
				mark(n.Pos())
				return true
			}
			if FuncPkgPath(fn) == "sync/atomic" {
				if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
					// Method form: r.counter.Add(1).
					if atomicWriteMethods[fn.Name()] && rootedAtRecv(pkg, recv, sel.X) {
						mark(n.Pos())
						return true
					}
				}
				// Function form: atomic.AddUint64(&r.field, 1).
				if len(n.Args) > 0 {
					if ue, ok := ast.Unparen(n.Args[0]).(*ast.UnaryExpr); ok &&
						ue.Op == token.AND && rootedAtRecv(pkg, recv, ue.X) {
						mark(n.Pos())
					}
				}
			}
		}
		return true
	})
	return pos, found
}

// opensWithNilGuard reports whether the body's first statement is
// `if r == nil { return ... }` (the condition may carry extra `||`
// disjuncts after the nil test).
func opensWithNilGuard(pkg *Package, fd *ast.FuncDecl, recv types.Object) bool {
	if recv == nil || len(fd.Body.List) == 0 {
		return false
	}
	ifs, ok := fd.Body.List[0].(*ast.IfStmt)
	if !ok || ifs.Init != nil || ifs.Else != nil {
		return false
	}
	if len(ifs.Body.List) != 1 {
		return false
	}
	if _, ok := ifs.Body.List[0].(*ast.ReturnStmt); !ok {
		return false
	}
	return condHasNilTest(pkg, recv, ifs.Cond)
}

func condHasNilTest(pkg *Package, recv types.Object, cond ast.Expr) bool {
	switch e := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LOR:
			return condHasNilTest(pkg, recv, e.X) || condHasNilTest(pkg, recv, e.Y)
		case token.EQL:
			return isRecvNilPair(pkg, recv, e.X, e.Y) || isRecvNilPair(pkg, recv, e.Y, e.X)
		}
	}
	return false
}

func isRecvNilPair(pkg *Package, recv types.Object, a, b ast.Expr) bool {
	id, ok := ast.Unparen(a).(*ast.Ident)
	if !ok || pkg.Info.Uses[id] != recv {
		return false
	}
	if tv, ok := pkg.Info.Types[ast.Unparen(b)]; ok {
		return tv.IsNil()
	}
	return false
}
