package staticlint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Config selects what to load and under which build configuration.
type Config struct {
	// Dir is the working directory for the go tool; empty means the
	// process's.
	Dir string
	// Patterns are go-list package patterns (./..., explicit dirs). An
	// explicit path may point inside a testdata tree — the go tool only
	// skips testdata during wildcard expansion — which is how the analyzer
	// fixtures load.
	Patterns []string
	// Tags is the build-tag list handed to the go tool (e.g.
	// "telemetryprobe"), so tag-gated files are analyzed too.
	Tags string
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	Imports    []string
	ImportMap  map[string]string
	Standard   bool
	Error      *struct{ Err string }
	DepsErrors []*struct{ Err string }
}

// Load builds the analysis program for the given patterns: one
// `go list -export -deps -json` invocation resolves the import graph and
// compiles export data (offline — no module fetching happens for a
// dependency-free module), then every non-standard package is parsed and
// type-checked from source in dependency order while standard-library
// imports come from their compiled export files.
func Load(cfg Config) (*Program, error) {
	if len(cfg.Patterns) == 0 {
		cfg.Patterns = []string{"./..."}
	}
	args := []string{"list", "-export", "-deps", "-json"}
	if cfg.Tags != "" {
		args = append(args, "-tags", cfg.Tags)
	}
	args = append(args, cfg.Patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = cfg.Dir
	var stderr strings.Builder
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("staticlint: go list %s: %v\n%s",
			strings.Join(cfg.Patterns, " "), err, strings.TrimSpace(stderr.String()))
	}

	var order []string
	pkgs := map[string]*listPkg{}
	dec := json.NewDecoder(strings.NewReader(string(out)))
	for {
		lp := new(listPkg)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("staticlint: decoding go list output: %v", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("staticlint: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		pkgs[lp.ImportPath] = lp
		order = append(order, lp.ImportPath)
	}

	prog := &Program{Fset: token.NewFileSet()}
	ld := &loader{
		fset:   prog.Fset,
		list:   pkgs,
		source: map[string]*types.Package{},
	}
	ld.gc = importer.ForCompiler(ld.fset, "gc", ld.lookup)

	// `go list -deps` emits dependencies before dependents, so a single
	// forward walk type-checks every source package after its imports.
	for _, path := range order {
		lp := pkgs[path]
		if lp.Standard {
			continue
		}
		p, err := ld.check(lp)
		if err != nil {
			return nil, err
		}
		prog.Packages = append(prog.Packages, p)
	}
	sort.Slice(prog.Packages, func(i, j int) bool {
		return prog.Packages[i].Path < prog.Packages[j].Path
	})
	prog.Annots = collectAnnotations(prog)
	return prog, nil
}

// loader resolves imports during type-checking: source-checked module
// packages by identity, everything else through gc export data located by
// the go list run.
type loader struct {
	fset   *token.FileSet
	list   map[string]*listPkg
	source map[string]*types.Package
	gc     types.Importer
	// from is the package whose file is being checked, for ImportMap
	// (vendoring) resolution.
	from *listPkg
}

func (ld *loader) lookup(path string) (io.ReadCloser, error) {
	lp := ld.list[path]
	if lp == nil || lp.Export == "" {
		return nil, fmt.Errorf("no export data for %q", path)
	}
	return os.Open(lp.Export)
}

func (ld *loader) Import(path string) (*types.Package, error) {
	if ld.from != nil {
		if mapped, ok := ld.from.ImportMap[path]; ok {
			path = mapped
		}
	}
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := ld.source[path]; ok {
		return p, nil
	}
	return ld.gc.Import(path)
}

func (ld *loader) check(lp *listPkg) (*Package, error) {
	files := make([]*ast.File, 0, len(lp.GoFiles))
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(ld.fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("staticlint: %v", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	ld.from = lp
	conf := types.Config{
		Importer: ld,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(lp.ImportPath, ld.fset, files, info)
	ld.from = nil
	if err != nil {
		return nil, fmt.Errorf("staticlint: type-checking %s: %v", lp.ImportPath, err)
	}
	ld.source[lp.ImportPath] = tpkg
	return &Package{
		Path:  lp.ImportPath,
		Name:  tpkg.Name(),
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}
