package staticlint

import (
	"go/ast"
)

// CtxFlow enforces context propagation through the batch runtime: the
// parallel pool, SGEMMBatchCtx/DGEMMBatchCtx and the server flush path all
// accept a caller context, and minting context.Background()/context.TODO()
// inside library code severs the caller's deadline and cancellation from
// everything downstream (the PR-4 per-call deadlines and the PR-5 drain
// protocol both ride on that chain). Main packages are the legitimate
// context roots and are exempt; a library-level default must carry
// `//shalom:allow ctxflow` with its justification.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "library code must propagate caller contexts, not mint context.Background()/TODO()",
	Run:  runCtxFlow,
}

func runCtxFlow(prog *Program, rep *Reporter) {
	for _, pkg := range prog.Packages {
		if pkg.Name == "main" {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := ResolveCall(pkg, call)
				if callee.Kind != CalleeStatic || FuncPkgPath(callee.Fn) != "context" {
					return true
				}
				if name := callee.Fn.Name(); name == "Background" || name == "TODO" {
					rep.Reportf(call.Pos(),
						"context.%s() in library code severs caller cancellation and deadlines; plumb the caller's context through", name)
				}
				return true
			})
		}
	}
}
