// Package staticlint is shalom-vet's analysis engine: a small, self-hosted
// go/analysis-style framework (the module is dependency-free, so the real
// golang.org/x/tools machinery is off the table) plus the four analyzers
// that prove LibShalom's runtime invariants statically:
//
//   - hotpath: functions annotated `//shalom:hotpath noalloc,nolock,...`
//     and their transitive module callees are proven free of the banned
//     operation classes (heap allocation and interface boxing; mutex and
//     channel operations; blocking calls; clock reads).
//   - telemetrypure: every telemetry Recorder method — and every exported
//     journal Writer method — that performs writes opens with the
//     nil-receiver guard, so the disabled paths are provably write-free —
//     the static twin of `make probe`.
//   - ctxflow: library code must propagate caller contexts; minting
//     context.Background()/TODO() outside main packages breaks deadline and
//     cancellation flow into the batch runtime.
//   - atomicdiscipline: no field is accessed both atomically and plainly,
//     and raw 64-bit fields used with 64-bit atomics sit at 8-aligned
//     offsets under 32-bit layout rules.
//
// Unlike go/analysis, analyzers here see the whole loaded program at once
// (hotpath's transitive proof spans packages), and suppression is by
// source annotation only: `//shalom:allow <analyzer>` on or immediately
// above the offending line.
package staticlint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Package is one loaded, type-checked module package.
type Package struct {
	Path  string
	Name  string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Program is the unit of analysis: every module package of one Load call,
// sharing a FileSet and the annotation index.
type Program struct {
	Fset     *token.FileSet
	Packages []*Package
	Annots   *Annotations

	index *Index
}

// Index returns the module-wide function index, built on first use.
func (p *Program) Index() *Index {
	if p.index == nil {
		p.index = buildIndex(p)
	}
	return p.index
}

// Diagnostic is one finding: where, which analyzer, what.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one named check over a whole Program.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Program, *Reporter)
}

// Reporter collects one analyzer's diagnostics, dropping those the source
// suppresses with `//shalom:allow <name>`.
type Reporter struct {
	prog     *Program
	analyzer string
	diags    []Diagnostic
}

// Reportf records a diagnostic at pos unless an allow annotation covers it.
func (r *Reporter) Reportf(pos token.Pos, format string, args ...any) {
	p := r.prog.Fset.Position(pos)
	if r.prog.Annots.allowed(r.analyzer, p) {
		return
	}
	r.diags = append(r.diags, Diagnostic{Pos: p, Analyzer: r.analyzer, Message: fmt.Sprintf(format, args...)})
}

// All returns the four shalom-vet analyzers in their canonical order.
func All() []*Analyzer {
	return []*Analyzer{Hotpath, TelemetryPure, CtxFlow, AtomicDiscipline}
}

// ByNames resolves a comma-separated analyzer selection ("" = all).
func ByNames(sel string) ([]*Analyzer, error) {
	if sel == "" {
		return All(), nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, name := range strings.Split(sel, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// RunAnalyzers executes the analyzers over the program and returns the
// merged diagnostics, deterministically sorted by position, analyzer and
// message.
func RunAnalyzers(prog *Program, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		rep := &Reporter{prog: prog, analyzer: a.Name}
		a.Run(prog, rep)
		diags = append(diags, rep.diags...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return diags
}
