// Package cachemodel is the blocking-level analytic memory-traffic model.
// Per-access trace simulation of the paper's irregular shapes (e.g. B with
// N=50176, K=3744) is infeasible, so — in the spirit of the paper's own
// analytic methodology and of Low et al.'s analytical BLIS modeling — this
// package derives per-level miss-line counts from the GEMM blocking
// structure: which streams are touched, how many passes each makes, and
// whether each stream's reuse footprint fits a given cache level.
//
// The model is deliberately term-by-term so tests can check each stream's
// contribution, and internal/cache cross-validates it on reduced shapes.
package cachemodel

import (
	"libshalom/internal/analytic"
	"libshalom/internal/platform"
)

// Shape is the GEMM problem seen by one thread.
type Shape struct {
	M, N, K   int
	ElemBytes int
}

// Strategy captures the data-movement plan of a GEMM implementation; the
// flags correspond directly to the behaviours §3.2/§4 contrast.
type Strategy struct {
	// PackASeq: A blocks are packed into Ac in a separate pass, re-packed
	// for every jj panel (classic Goto order; OpenBLAS/BLIS/ARMPL/BLASFEO).
	PackASeq bool
	// PackBSeq: B panels are packed into a kc×nc Bc buffer in a separate
	// pass (conventional libraries).
	PackBSeq bool
	// PackBOverlapSliver: B is packed inside the micro-kernel into a
	// kc×nr sliver that stays L1-resident (LibShalom §5.3); the B source
	// is re-read once per mc block of M.
	PackBOverlapSliver bool
	// NoPackB: B is consumed in place (LibShalom's small-B NN path §4.2).
	NoPackB bool
	// GatherA: the TN/TT data layout (A stored K×M): LibShalom gathers
	// each mc×kc block of the transposed A into a row-major buffer
	// (§4.3), re-done once per (ii, kk) block but reused across the whole
	// nc panel's slivers.
	GatherA bool
	// TransB: the NT data layout (B stored N×K, walked along K).
	TransB bool
}

// Traffic reports modeled miss line counts per level and DRAM volume.
// Lines are cache lines; a platform without L3 reports LLCMissLines equal
// to L2MissLines (its L2 is the LLC).
type Traffic struct {
	L1MissLines  float64
	L2MissLines  float64
	LLCMissLines float64
	DRAMBytes    float64
	// PackStoreLines counts packing-buffer store traffic (lines), used by
	// the time model to charge sequential packing.
	PackStoreLines float64
	// PackLoadElems counts elements read by sequential packing passes.
	PackLoadElems float64
}

// missFraction smoothly maps a working-set footprint against a capacity:
// 0 when the set fits comfortably (≤ half the capacity), 1 when it clearly
// does not (≥ twice the capacity), linear in between. The ramp avoids the
// unrealistic step cliffs of a pure capacity model.
func missFraction(footprintBytes, capBytes float64) float64 {
	if capBytes <= 0 {
		return 1
	}
	lo, hi := 0.5*capBytes, 2*capBytes
	switch {
	case footprintBytes <= lo:
		return 0
	case footprintBytes >= hi:
		return 1
	default:
		return (footprintBytes - lo) / (hi - lo)
	}
}

// stream describes one logical data stream's traffic: total distinct lines
// per pass, the number of passes, and the reuse footprint that must survive
// between passes for later passes to hit.
type stream struct {
	linesPerPass float64
	passes       float64
	footprint    float64 // bytes that must stay resident for inter-pass reuse
	alwaysMissL1 bool    // streams far larger than L1 (true for all sources)
	// distinct is the number of distinct lines the stream ever touches;
	// zero means linesPerPass (a pass over a large matrix touches each of
	// its lines once). Packing buffers are far smaller than their traffic:
	// a kc×nc Bc is rewritten for every panel, so only footprint-many
	// lines exist and only those can miss compulsorily.
	distinct float64
}

// missesAt returns the miss lines of the stream at a level of capacity cap:
// the distinct lines miss compulsorily (unless warm-resident), and traffic
// beyond them misses according to the reuse-footprint fit.
func (s stream) missesAt(capBytes float64, warmFirstPass bool) float64 {
	distinct := s.distinct
	if distinct == 0 {
		distinct = s.linesPerPass
	}
	comp := distinct
	if warmFirstPass {
		comp = distinct * missFraction(s.footprint, capBytes)
	}
	rep := (s.linesPerPass*s.passes - distinct) * missFraction(s.footprint, capBytes)
	if rep < 0 {
		rep = 0
	}
	return comp + rep
}

// Estimate computes the traffic of one thread's GEMM under the strategy.
// warm indicates the paper's warm-cache methodology (Fig 7): operands are
// already resident in whatever levels they fit, so compulsory misses are
// charged only against levels they exceed.
func Estimate(s Strategy, plat *platform.Platform, sh Shape, blk analytic.Blocking, warm bool) Traffic {
	lineB := float64(plat.L1.LineBytes)
	le := lineB / float64(sh.ElemBytes) // elements per line
	m, n, k := float64(sh.M), float64(sh.N), float64(sh.K)
	mc, kc, nc := float64(blk.MC), float64(blk.KC), float64(blk.NC)
	eb := float64(sh.ElemBytes)

	ceilDiv := func(a, b float64) float64 {
		d := a / b
		if d < 1 {
			return 1
		}
		// fractional passes are fine for the analytic model
		return d
	}

	var streams []stream
	var t Traffic

	// --- C: read+write once per kc block of K.
	cPasses := ceilDiv(k, kc)
	streams = append(streams, stream{
		linesPerPass: m * n / le * 2, // read + write-allocate
		passes:       cPasses,
		footprint:    m * n * eb,
		alwaysMissL1: true,
	})

	// --- A source: read once per jj panel of N.
	aPasses := ceilDiv(n, nc)
	streams = append(streams, stream{
		linesPerPass: m * k / le,
		passes:       aPasses,
		footprint:    m * k * eb,
		alwaysMissL1: true,
	})

	// --- B source and packing buffers.
	bLines := n * k / le
	switch {
	case s.NoPackB:
		// B consumed in place once per mr-row of each mc block: footprint
		// n*k (≤ L1 by the §4.2 decision rule) so re-reads hit L1; model a
		// single miss pass.
		streams = append(streams, stream{linesPerPass: bLines, passes: 1, footprint: n * k * eb})
	case s.PackBOverlapSliver:
		// LibShalom: B source re-read once per mc block (the overlap pack
		// kernel re-packs per ii block); the Bc sliver (kc×nr) lives in L1
		// and contributes no traffic beyond it.
		streams = append(streams, stream{
			linesPerPass: bLines,
			passes:       ceilDiv(m, mc),
			footprint:    n * k * eb,
			alwaysMissL1: true,
		})
	case s.PackBSeq:
		// Conventional: B source read once by the packing pass...
		streams = append(streams, stream{linesPerPass: bLines, passes: 1, footprint: n * k * eb, alwaysMissL1: true})
		// ...Bc written once per panel (the buffer itself is only kc×nc,
		// so only that many lines exist to miss compulsorily)...
		bcFootprint := kc * nc * eb
		bcDistinct := bcFootprint / lineB
		if bcDistinct > bLines {
			bcDistinct = bLines
		}
		streams = append(streams, stream{linesPerPass: bLines, passes: 1, footprint: bcFootprint, alwaysMissL1: true, distinct: bcDistinct})
		// ...and read back by the kernel once per mc block.
		streams = append(streams, stream{
			linesPerPass: bLines,
			passes:       ceilDiv(m, mc),
			footprint:    bcFootprint,
			alwaysMissL1: true,
			distinct:     bcDistinct,
		})
		t.PackStoreLines += bLines
		t.PackLoadElems += n * k
	}

	// --- Ac gather for the transposed-A modes (LibShalom TN/TT, §4.3):
	// the stored K×M block is gathered into a row-major mc×kc buffer once
	// per (ii, kk, jj); the buffer's footprint bounds its compulsory
	// misses.
	if s.GatherA {
		acFootprint := mc * kc * eb
		acDistinct := acFootprint / lineB
		if acDistinct > m*k/le {
			acDistinct = m * k / le
		}
		// gather writes + kernel reads of the buffer
		streams = append(streams, stream{linesPerPass: m * k / le, passes: aPasses, footprint: acFootprint, distinct: acDistinct})
		t.PackStoreLines += m * k / le * aPasses
		t.PackLoadElems += m * k * aPasses
	}

	// --- Ac (sequential A packing): written and read back once per jj
	// panel (classic Goto re-packs A for every jj).
	if s.PackASeq {
		acFootprint := mc * kc * eb
		acDistinct := acFootprint / lineB
		if acDistinct > m*k/le {
			acDistinct = m * k / le
		}
		streams = append(streams, stream{linesPerPass: m * k / le, passes: aPasses, footprint: acFootprint, alwaysMissL1: true, distinct: acDistinct})
		streams = append(streams, stream{linesPerPass: m * k / le, passes: aPasses, footprint: acFootprint, distinct: acDistinct})
		t.PackStoreLines += m * k / le * aPasses
		t.PackLoadElems += m * k * aPasses
	}

	// Accumulate per-level misses. The per-core share of shared caches
	// bounds the usable capacity.
	l1 := float64(plat.L1.SizeBytes)
	l2 := float64(plat.L2.SizeBytes)
	if plat.L2.Shared && plat.L2.SharedBy > 1 {
		l2 /= float64(plat.L2.SharedBy)
	}
	l3 := float64(plat.L3.SizeBytes)
	if plat.L3.SizeBytes > 0 && plat.L3.Shared && plat.L3.SharedBy > 1 {
		l3 /= float64(plat.L3.SharedBy)
	}

	for _, st := range streams {
		warmL1 := warm && !st.alwaysMissL1
		t.L1MissLines += st.missesAt(l1, warmL1)
		t.L2MissLines += st.missesAt(l2, warm)
		if plat.L3.SizeBytes > 0 {
			t.LLCMissLines += st.missesAt(l3, warm)
		}
	}
	if plat.L3.SizeBytes == 0 {
		t.LLCMissLines = t.L2MissLines
	}
	t.DRAMBytes = t.LLCMissLines * lineB
	return t
}

// LibShalomStrategy returns the strategy LibShalom's driver actually uses
// for the given mode and B footprint (§4.2–4.3).
func LibShalomStrategy(transB bool, sizeBBytes, l1Bytes int) Strategy {
	if transB {
		return Strategy{PackBOverlapSliver: true, TransB: true}
	}
	if sizeBBytes <= l1Bytes {
		return Strategy{NoPackB: true}
	}
	return Strategy{PackBOverlapSliver: true}
}

// ConventionalStrategy returns the always-pack-both plan of the baseline
// libraries.
func ConventionalStrategy(transB bool) Strategy {
	return Strategy{PackASeq: true, PackBSeq: true, TransB: transB}
}
