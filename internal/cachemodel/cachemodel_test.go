package cachemodel

import (
	"testing"

	"libshalom/internal/analytic"
	"libshalom/internal/platform"
)

func kp() *platform.Platform { return platform.KP920() }

func blkFor(p *platform.Platform) analytic.Blocking { return analytic.BlockingFor(p, 4) }

// TestLibShalomBeatsConventionalL2 is the Fig 12 direction: on the NT
// irregular shape, LibShalom's plan (no Ac, L1-resident Bc sliver) must
// produce fewer L2 misses than the conventional always-pack plan.
func TestLibShalomBeatsConventionalL2(t *testing.T) {
	// §8.4 measures on KP920 and ThunderX2 (the platforms whose counters
	// perf can read); Phytium's cluster-shared L2 leaves little headroom
	// either way, so only the measured platforms get the magnitude band.
	for _, p := range []*platform.Platform{platform.KP920(), platform.ThunderX2()} {
		sh := Shape{M: 64, N: 50176, K: 1600, ElemBytes: 4}
		blk := analytic.BlockingFor(p, 4)
		ls := Estimate(LibShalomStrategy(true, sh.N*sh.K*4, p.L1.SizeBytes), p, sh, blk, false)
		conv := Estimate(ConventionalStrategy(true), p, sh, blk, false)
		if ls.L2MissLines >= conv.L2MissLines {
			t.Errorf("%s: LibShalom L2 misses %.0f not below conventional %.0f", p.Name, ls.L2MissLines, conv.L2MissLines)
		}
		red := 1 - ls.L2MissLines/conv.L2MissLines
		if red <= 0.01 || red >= 0.6 {
			t.Errorf("%s: L2 miss reduction %.1f%% implausible vs Fig 12", p.Name, red*100)
		}
	}
}

// TestFig12PlatformOrdering: the paper measures a much larger reduction on
// KP920 (~20%) than on ThunderX2 (~4%).
func TestFig12PlatformOrdering(t *testing.T) {
	red := func(p *platform.Platform) float64 {
		sh := Shape{M: 64, N: 50176, K: 1600, ElemBytes: 4}
		blk := analytic.BlockingFor(p, 4)
		ls := Estimate(LibShalomStrategy(true, sh.N*sh.K*4, p.L1.SizeBytes), p, sh, blk, false)
		conv := Estimate(ConventionalStrategy(true), p, sh, blk, false)
		return 1 - ls.L2MissLines/conv.L2MissLines
	}
	if red(platform.KP920()) <= red(platform.ThunderX2()) {
		t.Errorf("KP920 reduction %.1f%% should exceed TX2 %.1f%% (Fig 12)",
			red(platform.KP920())*100, red(platform.ThunderX2())*100)
	}
}

func TestPackingAddsTraffic(t *testing.T) {
	sh := Shape{M: 256, N: 256, K: 256, ElemBytes: 4}
	p := kp()
	blk := blkFor(p)
	noPack := Estimate(Strategy{NoPackB: true}, p, sh, blk, false)
	seq := Estimate(Strategy{PackASeq: true, PackBSeq: true}, p, sh, blk, false)
	if seq.L1MissLines <= noPack.L1MissLines {
		t.Fatal("sequential packing must add L1 traffic")
	}
	if seq.PackStoreLines == 0 || seq.PackLoadElems == 0 {
		t.Fatal("sequential packing must report pack traffic")
	}
	if noPack.PackStoreLines != 0 {
		t.Fatal("no-pack plan must report zero pack traffic")
	}
}

func TestWarmCacheReducesMisses(t *testing.T) {
	sh := Shape{M: 64, N: 64, K: 64, ElemBytes: 4} // fits L2 on KP920
	p := kp()
	blk := blkFor(p)
	s := Strategy{NoPackB: true}
	cold := Estimate(s, p, sh, blk, false)
	warmT := Estimate(s, p, sh, blk, true)
	if warmT.L2MissLines >= cold.L2MissLines {
		t.Fatal("warm cache must reduce L2 misses for an L2-resident problem")
	}
}

func TestNoL3PlatformLLCEqualsL2(t *testing.T) {
	sh := Shape{M: 128, N: 128, K: 128, ElemBytes: 4}
	p := platform.Phytium2000()
	tr := Estimate(Strategy{NoPackB: true}, p, sh, blkFor(p), false)
	if tr.LLCMissLines != tr.L2MissLines {
		t.Fatal("Phytium (no L3) must report LLC misses == L2 misses")
	}
	if tr.DRAMBytes != tr.LLCMissLines*64 {
		t.Fatal("DRAM bytes must equal LLC miss lines × line size")
	}
}

func TestMissFractionRamp(t *testing.T) {
	if missFraction(10, 100) != 0 {
		t.Fatal("small footprint must not miss")
	}
	if missFraction(300, 100) != 1 {
		t.Fatal("huge footprint must fully miss")
	}
	mid := missFraction(125, 100)
	if mid <= 0 || mid >= 1 {
		t.Fatalf("ramp value %v out of (0,1)", mid)
	}
	if missFraction(10, 0) != 1 {
		t.Fatal("absent level must miss")
	}
}

func TestBiggerKMoreMisses(t *testing.T) {
	p := kp()
	blk := blkFor(p)
	s := ConventionalStrategy(true)
	small := Estimate(s, p, Shape{M: 64, N: 50176, K: 576, ElemBytes: 4}, blk, false)
	large := Estimate(s, p, Shape{M: 64, N: 50176, K: 3744, ElemBytes: 4}, blk, false)
	if large.L2MissLines <= small.L2MissLines {
		t.Fatal("larger K must produce more misses")
	}
}

func TestStrategyConstructors(t *testing.T) {
	l1 := 32 << 10
	if !LibShalomStrategy(false, l1, l1).NoPackB {
		t.Fatal("small NN B must map to NoPackB")
	}
	if !LibShalomStrategy(false, l1*2, l1).PackBOverlapSliver {
		t.Fatal("large NN B must map to overlap pack")
	}
	nt := LibShalomStrategy(true, 100, l1)
	if !nt.PackBOverlapSliver || !nt.TransB {
		t.Fatal("NT must always overlap-pack (§4.3)")
	}
	conv := ConventionalStrategy(false)
	if !conv.PackASeq || !conv.PackBSeq {
		t.Fatal("conventional plan must pack both")
	}
}

// TestCrossValidateAgainstTraceSim checks the analytic model's directional
// agreement with the trace-driven simulator on a reduced shape: the
// conventional plan's extra packing traffic must show up in both.
func TestCrossValidateAgainstTraceSim(t *testing.T) {
	// This is validated end-to-end in internal/cache tests; here we assert
	// the analytic model's term structure: conventional − libshalom ≥ the
	// Ac store traffic alone.
	p := kp()
	sh := Shape{M: 512, N: 2048, K: 512, ElemBytes: 4}
	blk := blkFor(p)
	conv := Estimate(ConventionalStrategy(false), p, sh, blk, false)
	ls := Estimate(LibShalomStrategy(false, sh.N*sh.K*4, p.L1.SizeBytes), p, sh, blk, false)
	if conv.L1MissLines-ls.L1MissLines < float64(sh.M*sh.K)/16 {
		t.Fatal("conventional plan's L1 traffic surplus smaller than its Ac stores alone")
	}
}
