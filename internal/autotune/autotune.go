// Package autotune is the traffic-adaptive kernel tuning loop: it closes
// the circle between the live performance-attribution engine (which ranks
// hot × underperforming shape classes) and the dispatch-override machinery
// (which can hot-swap a tuned register tile behind a canary breaker).
//
// The loop per class is a one-way state machine:
//
//	idle → searching → proving → canary → promoted
//	                 ↘ rejected          ↘ reverted
//
// searching enumerates every register tile inside the proven generator
// family's symbolic domain and scores it on the uarch scoreboard model;
// proving runs the full static gate — the isacheck contract passes and the
// symbolic family footprint proof, then vexec-vs-reference numeric
// validation of the exact program that would serve — on the ranked
// survivors; canary installs the first proved winner as a dispatch override
// behind a probing breaker minted for it alone, so live traffic shadow-
// checks every canaried call against the reference kernel. The breaker
// decides the endgame: it closes (promoted — the tile serves unshadowed) or
// trips (reverted — the override is atomically evicted and the incumbent
// restored before any wrong result reaches a client).
//
// Nothing in this package executes on the GEMM hot path. The loop runs on
// its own goroutine; the hot path only ever sees the finished product — a
// one-atomic-load override lookup (guard.OverrideFor).
package autotune

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"libshalom/internal/attrib"
	"libshalom/internal/guard"
	"libshalom/internal/heal"
	"libshalom/internal/journal"
	"libshalom/internal/platform"
	"libshalom/internal/telemetry"
)

// State is one class's position in the tuning lifecycle.
type State string

// Lifecycle states, in order.
const (
	StateIdle      State = "idle"
	StateSearching State = "searching"
	StateProving   State = "proving"
	StateCanary    State = "canary"
	StatePromoted  State = "promoted"
	StateRejected  State = "rejected"
	StateReverted  State = "reverted"
)

// Config is the tuning-loop policy. Zero fields select the documented
// defaults.
type Config struct {
	// Recorder receives the autotune lifecycle counters and the breaker
	// gauge rebalances. Nil disables the engine: New returns nil, and the
	// nil engine's whole method set is a no-op (the same off-path contract
	// as telemetry and attribution).
	Recorder *telemetry.Recorder
	// Attrib is the candidate feed: the loop tunes the top-ranked
	// hot × underperforming class. Nil means no automatic candidate intake
	// (Step still polls canaries, and TuneNow still works — the offline and
	// operator-driven entry points).
	Attrib *attrib.Engine
	// Platform is the machine model searched and proved against. Default
	// KP920.
	Platform *platform.Platform
	// Interval is the loop period. Default 2s.
	Interval time.Duration
	// Margin is the required modeled-throughput improvement over the
	// incumbent tile before a candidate is worth canarying: candidate ≥
	// incumbent × (1 + Margin). Default 0.10.
	Margin float64
	// MinScore is the attribution-score floor (hot share × shortfall) below
	// which a feed candidate is not worth tuning. Default 0.01.
	MinScore float64
	// MaxAttempts bounds how many ranked candidates one search will push
	// through the proof gate before giving up. Default 3.
	MaxAttempts int
	// Journal, when non-nil, records every promotion and revert as
	// tamper-evident tune records, so replay reproduces the tuning
	// decisions. Nil-safe.
	Journal *journal.Writer
}

func (c Config) withDefaults() Config {
	if c.Platform == nil {
		c.Platform = platform.KP920()
	}
	if c.Interval <= 0 {
		c.Interval = 2 * time.Second
	}
	if c.Margin <= 0 {
		c.Margin = 0.10
	}
	if c.MinScore <= 0 {
		c.MinScore = 0.01
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	return c
}

// classKey identifies one tuned unit: element size × shape class.
type classKey struct {
	elem  int
	class telemetry.ShapeClass
}

// classState is the engine's book on one class.
type classState struct {
	state     State
	incumbent Candidate
	cand      Candidate
	path      string // override breaker path while canary/promoted
	detail    string
	updated   time.Time
}

// Engine is the closed-loop autotuner.
type Engine struct {
	cfg Config

	mu      sync.Mutex
	classes map[classKey]*classState
	// Lifetime counters, indexed like the telemetry event kinds.
	searched, proved, rejected, canaried, promoted, reverted uint64

	stop chan struct{}
	done chan struct{}
}

// New builds an engine over the recorder, or nil when the recorder is nil
// (autotuning off). Every method of the nil engine is a no-op.
func New(cfg Config) *Engine {
	if cfg.Recorder == nil {
		return nil
	}
	return &Engine{cfg: cfg.withDefaults(), classes: map[classKey]*classState{}}
}

// Start launches the tuning loop goroutine. Safe to call on a nil engine;
// a second Start is a no-op.
func (e *Engine) Start() {
	if e == nil || e.stop != nil {
		return
	}
	e.stop = make(chan struct{})
	e.done = make(chan struct{})
	go func() {
		defer close(e.done)
		t := time.NewTicker(e.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-e.stop:
				return
			case <-t.C:
				e.Step()
			}
		}
	}()
}

// Close stops the loop and waits for it. Installed overrides stay: a
// promoted tile outlives the loop that found it.
func (e *Engine) Close() {
	if e == nil || e.stop == nil {
		return
	}
	close(e.stop)
	<-e.done
	e.stop, e.done = nil, nil
}

// Step runs one loop iteration synchronously: settle every in-flight
// canary and watched promotion against the breaker registry, then — if no
// canary is in flight — pull the top attribution candidate and tune it.
// Exported so tests and the offline CLI can drive the machine
// deterministically.
func (e *Engine) Step() {
	if e == nil {
		return
	}
	e.poll()
	if e.canaryInFlight() {
		return
	}
	k, ok := e.pick()
	if !ok {
		return
	}
	e.tune(k)
}

// poll settles canaried and promoted classes against ground truth: the
// override table (a trip evicts the override atomically) and the breaker
// state (probing → still canarying, healthy → promoted).
func (e *Engine) poll() {
	plat := e.cfg.Platform.Name
	e.mu.Lock()
	defer e.mu.Unlock()
	for key, cs := range e.classes {
		if cs.state != StateCanary && cs.state != StatePromoted {
			continue
		}
		ov, ok := guard.OverrideFor(key.elem, uint8(key.class))
		if !ok || ov.Path != cs.path {
			e.revertLocked(key, cs)
			continue
		}
		switch guard.StateOf(plat, cs.path) {
		case guard.StateHealthy:
			if cs.state == StateCanary {
				e.promoteLocked(key, cs)
			}
		case guard.StateOpen:
			// A trip evicts the override before recording, so this branch
			// only fires if the poll raced the eviction; treat it as the
			// revert it is about to become.
			e.revertLocked(key, cs)
		}
	}
}

// promoteLocked records a canary→promoted transition. Callers hold e.mu.
func (e *Engine) promoteLocked(key classKey, cs *classState) {
	cs.state = StatePromoted
	cs.detail = ""
	cs.updated = time.Now()
	e.promoted++
	e.cfg.Recorder.TuneEvent(telemetry.TunePromoted)
	e.cfg.Journal.TunePromote(e.cfg.Platform.Name, classLabel(key), cs.cand.Kernel,
		cs.cand.MR, cs.cand.NR, cs.cand.KC, cs.cand.GFLOPS)
}

// revertLocked records a canary/promoted→reverted transition: the override
// is already gone (the trip evicted it), so this is pure bookkeeping — the
// journal record, the lifecycle counter, the overrides gauge, retiring the
// candidate's private breaker record, and rebalancing the breaker state
// gauges the install skewed. Callers hold e.mu.
func (e *Engine) revertLocked(key classKey, cs *classState) {
	plat := e.cfg.Platform.Name
	detail := "override cleared"
	if d, ok := guard.Demotion(plat, cs.path); ok {
		detail = fmt.Sprintf("%s: %s", d.Reason, d.Detail)
	}
	switch guard.StateOf(plat, cs.path) {
	case guard.StateOpen:
		e.cfg.Recorder.BreakerTransition(telemetry.BreakerOpen, telemetry.BreakerHealthy)
	case guard.StateProbing:
		e.cfg.Recorder.BreakerTransition(telemetry.BreakerProbing, telemetry.BreakerHealthy)
	}
	guard.Forget(plat, cs.path)
	cs.state = StateReverted
	cs.detail = detail
	cs.updated = time.Now()
	e.reverted++
	e.cfg.Recorder.TuneEvent(telemetry.TuneReverted)
	e.cfg.Recorder.TuneOverrides(-1)
	e.cfg.Journal.TuneRevert(plat, classLabel(key), cs.cand.Kernel,
		cs.cand.MR, cs.cand.NR, cs.cand.KC, detail)
}

// canaryInFlight reports whether any class is currently canarying. The loop
// tunes one candidate at a time: a second install would dilute the canary
// traffic and make a trip ambiguous to attribute.
func (e *Engine) canaryInFlight() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, cs := range e.classes {
		if cs.state == StateCanary {
			return true
		}
	}
	return false
}

// pick selects the next class to tune from the attribution feed: the
// top-ranked candidate whose score clears the floor and whose class is
// still idle. Rejected and reverted classes are terminal for the automatic
// loop — retuning a class that just failed would ping-pong.
func (e *Engine) pick() (classKey, bool) {
	feed := e.cfg.Attrib.Feed()
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, c := range feed {
		if c.Score < e.cfg.MinScore {
			break // feed is sorted by score descending
		}
		k, ok := keyFor(c.Precision, c.ShapeClass)
		if !ok {
			continue
		}
		cs := e.classes[k]
		if cs != nil && cs.state != StateIdle {
			continue
		}
		return k, true
	}
	return classKey{}, false
}

// tune runs one class through search → prove → install.
func (e *Engine) tune(k classKey) {
	cs := e.transition(k, StateSearching, "")
	e.mu.Lock()
	e.searched++
	e.mu.Unlock()
	e.cfg.Recorder.TuneEvent(telemetry.TuneSearch)

	sr := Search(e.cfg.Platform, k.elem, k.class)
	e.mu.Lock()
	cs.incumbent = sr.Incumbent
	e.mu.Unlock()
	floor := sr.Incumbent.GFLOPS * (1 + e.cfg.Margin)
	var worthy []Candidate
	for _, c := range sr.Candidates {
		if c.GFLOPS >= floor {
			worthy = append(worthy, c)
		}
	}
	if len(worthy) == 0 {
		e.reject(k, fmt.Sprintf("no candidate beats incumbent %s (%.1f GFLOPS) by %.0f%%",
			sr.Incumbent.Kernel, sr.Incumbent.GFLOPS, e.cfg.Margin*100))
		return
	}
	if len(worthy) > e.cfg.MaxAttempts {
		worthy = worthy[:e.cfg.MaxAttempts]
	}

	e.transition(k, StateProving, "")
	for _, c := range worthy {
		if err := Prove(e.cfg.Platform, k.elem, c); err != nil {
			e.setDetail(k, fmt.Sprintf("candidate %s failed proof: %v", c.Kernel, err))
			continue
		}
		e.mu.Lock()
		e.proved++
		e.mu.Unlock()
		e.cfg.Recorder.TuneEvent(telemetry.TuneProved)
		e.install(k, c)
		return
	}
	e.reject(k, fmt.Sprintf("none of %d worthy candidates survived the proof gate", len(worthy)))
}

// install hot-swaps a proved candidate in as the class's dispatch override,
// behind a freshly minted probing breaker: every canaried call is shadowed
// against the reference kernel until the breaker closes or trips.
func (e *Engine) install(k classKey, c Candidate) {
	plat := e.cfg.Platform.Name
	path := guard.MintOverridePath(k.elem, k.class.String())
	guard.SetOverride(k.elem, uint8(k.class), guard.TileOverride{
		MR: c.MR, NR: c.NR, KC: c.KC, Kernel: c.Kernel, Path: path,
	})
	heal.BeginProbation(plat, path)
	e.cfg.Recorder.BreakerTransition(telemetry.BreakerHealthy, telemetry.BreakerProbing)
	e.cfg.Recorder.TuneEvent(telemetry.TuneCanary)
	e.cfg.Recorder.TuneOverrides(1)

	e.mu.Lock()
	cs := e.stateLocked(k)
	cs.state = StateCanary
	cs.cand = c
	cs.path = path
	cs.detail = ""
	cs.updated = time.Now()
	e.canaried++
	e.mu.Unlock()
}

// reject ends a search with no install.
func (e *Engine) reject(k classKey, detail string) {
	e.transition(k, StateRejected, detail)
	e.mu.Lock()
	e.rejected++
	e.mu.Unlock()
	e.cfg.Recorder.TuneEvent(telemetry.TuneRejected)
}

// transition moves a class to a new state and returns its record.
func (e *Engine) transition(k classKey, s State, detail string) *classState {
	e.mu.Lock()
	defer e.mu.Unlock()
	cs := e.stateLocked(k)
	cs.state = s
	cs.detail = detail
	cs.updated = time.Now()
	return cs
}

func (e *Engine) setDetail(k classKey, detail string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.stateLocked(k).detail = detail
}

// stateLocked returns (creating if needed) the class record. Callers hold
// e.mu.
func (e *Engine) stateLocked(k classKey) *classState {
	cs := e.classes[k]
	if cs == nil {
		cs = &classState{state: StateIdle}
		e.classes[k] = cs
	}
	return cs
}

// TuneNow runs one full search → prove → install pass for a named class,
// bypassing the attribution feed — the operator and offline entry point.
// It refuses while that class is already canarying or mid-tune.
func (e *Engine) TuneNow(precision, class string) error {
	if e == nil {
		return fmt.Errorf("autotune: engine disabled")
	}
	k, ok := keyFor(precision, class)
	if !ok {
		return fmt.Errorf("autotune: unknown class %s/%s", precision, class)
	}
	e.mu.Lock()
	if cs := e.classes[k]; cs != nil &&
		(cs.state == StateSearching || cs.state == StateProving || cs.state == StateCanary) {
		st := cs.state
		e.mu.Unlock()
		return fmt.Errorf("autotune: class %s/%s is busy (%s)", precision, class, st)
	}
	// Re-arm a settled class so the operator can retune it.
	e.stateLocked(k).state = StateIdle
	e.mu.Unlock()
	e.tune(k)
	return nil
}

// keyFor parses an attribution key's precision and shape-class labels.
func keyFor(precision, class string) (classKey, bool) {
	var elem int
	switch precision {
	case "f32":
		elem = 4
	case "f64":
		elem = 8
	default:
		return classKey{}, false
	}
	for _, sc := range telemetry.ShapeClasses() {
		if sc.String() == class && sc != telemetry.ShapeEmpty {
			return classKey{elem: elem, class: sc}, true
		}
	}
	return classKey{}, false
}

// classLabel renders a key as the journal's precision/class label.
func classLabel(k classKey) string {
	p := "f32"
	if k.elem == 8 {
		p = "f64"
	}
	return p + "/" + k.class.String()
}

// sortedKeys returns the tracked class keys in deterministic order.
func (e *Engine) sortedKeys() []classKey {
	keys := make([]classKey, 0, len(e.classes))
	for k := range e.classes {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].elem != keys[j].elem {
			return keys[i].elem < keys[j].elem
		}
		return keys[i].class < keys[j].class
	})
	return keys
}
