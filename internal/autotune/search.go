package autotune

import (
	"fmt"
	"math/rand/v2"
	"sort"

	"libshalom/internal/analytic"
	"libshalom/internal/guard"
	"libshalom/internal/heal"
	"libshalom/internal/isa"
	"libshalom/internal/isacheck"
	"libshalom/internal/kernels"
	"libshalom/internal/platform"
	"libshalom/internal/telemetry"
	"libshalom/internal/uarch"
	"libshalom/internal/vexec"
)

// Candidate is one tuned-tile candidate: the register tile and panel depth,
// its minted kernel identity, and its modeled steady-state throughput on
// the target platform.
type Candidate struct {
	MR, NR, KC int
	Kernel     string
	// GFLOPS is the uarch scoreboard model's steady-state throughput with
	// L1-resident operands — the same figure of merit tuner.SearchTile uses.
	GFLOPS float64
}

// SearchResult is one completed class search.
type SearchResult struct {
	// Incumbent is the tile currently serving the class — the installed
	// override if one exists (e.g. an operator-seeded detuned tile, or a
	// previous promotion), otherwise the Eq. 1–2 analytic solution —
	// evaluated through the same model as the candidates.
	Incumbent Candidate
	// Candidates are every feasible tile inside the generator family's
	// proven symbolic domain, sorted by modeled throughput descending.
	Candidates []Candidate
}

// familyFor names the symbolic generator family a tuned main kernel of an
// element size must prove membership in.
func familyFor(elemBytes int) string {
	if elemBytes == 8 {
		return "main-pipelined-f64"
	}
	return "main-pipelined-f32"
}

// mainMaxLoadPressure is the pressure ceiling the registered pipelined main
// entries claim (measured worst window 1.12 on Phytium, pinned at 1.15):
// a tuned candidate is held to the same schedule discipline as the
// hand-registered catalogue.
const mainMaxLoadPressure = 1.15

// inRange reports whether v lies on the range's lattice (Step 0 means 1).
func inRange(v int, r isacheck.Range) bool {
	step := r.Step
	if step == 0 {
		step = 1
	}
	return v >= r.Min && v <= r.Max && (v-r.Min)%step == 0
}

// kernelTag mints the tuned kernel identity string recorded in overrides,
// demotion history, and journal records.
func kernelTag(mr, nr, kc int) string {
	return fmt.Sprintf("tuned-%dx%d-kc%d-pipelined", mr, nr, kc)
}

// Search enumerates and scores every candidate tile for one (element size,
// shape class) key. The space is the intersection of Eq. 1 feasibility and
// the generator family's symbolic domain — only tiles the family proof
// quantifies over are admissible, because Prove will demand membership.
func Search(p *platform.Platform, elemBytes int, class telemetry.ShapeClass) SearchResult {
	lanes := 16 / elemBytes
	cfg := uarch.FromPlatform(p)
	fam, _ := isacheck.FamilyByName(familyFor(elemBytes))

	eval := func(mr, nr int) float64 {
		if !analytic.Feasible(mr, nr, lanes, analytic.RegisterBudget) {
			return 0
		}
		build := func(kc int) *isa.Program {
			if kc%lanes != 0 {
				kc += lanes - kc%lanes
			}
			return kernels.BuildMain(kernels.MainSpec{
				Elem: elemBytes, MR: mr, NR: nr, KC: kc,
				LDA: kc, LDB: nr, LDC: nr, Schedule: kernels.Pipelined,
			})
		}
		cpi := uarch.SteadyStateCPI(build, cfg, 32, 64) // cycles per K step
		return 2 * float64(mr) * float64(nr) / cpi * p.FreqGHz
	}

	// Panel depth: the deepest KC the family domain admits that does not
	// exceed the platform's cache-derived blocking (it never does today —
	// analytic KC floors at 32, the domains top out at 16 — but the clamp
	// keeps the choice honest if either side moves).
	blk := analytic.BlockingFor(p, elemBytes)
	kc := fam.Domain.KC.Max
	for kc > fam.Domain.KC.Min && kc > blk.KC {
		kc -= fam.Domain.KC.Step
	}

	var r SearchResult
	nrr, mrr := fam.Domain.NR, fam.Domain.MR
	for mr := mrr.Min; mr <= mrr.Max; mr++ {
		if !inRange(mr, mrr) {
			continue
		}
		step := nrr.Step
		if step == 0 {
			step = 1
		}
		for nr := nrr.Min; nr <= nrr.Max; nr += step {
			if !analytic.Feasible(mr, nr, lanes, analytic.RegisterBudget) {
				continue
			}
			r.Candidates = append(r.Candidates, Candidate{
				MR: mr, NR: nr, KC: kc,
				Kernel: kernelTag(mr, nr, kc),
				GFLOPS: eval(mr, nr),
			})
		}
	}
	sort.Slice(r.Candidates, func(i, j int) bool {
		a, b := r.Candidates[i], r.Candidates[j]
		if a.GFLOPS != b.GFLOPS {
			return a.GFLOPS > b.GFLOPS
		}
		if ca, cb := analytic.CMR(a.MR, a.NR), analytic.CMR(b.MR, b.NR); ca != cb {
			return ca > cb
		}
		if a.NR != b.NR {
			return a.NR > b.NR
		}
		return a.MR > b.MR
	})

	if ov, ok := guard.OverrideFor(elemBytes, uint8(class)); ok {
		r.Incumbent = Candidate{
			MR: ov.MR, NR: ov.NR, KC: ov.KC,
			Kernel: ov.Kernel,
			GFLOPS: eval(ov.MR, ov.NR),
		}
	} else {
		at := analytic.SolveForElem(elemBytes)
		r.Incumbent = Candidate{
			MR: at.MR, NR: at.NR, KC: blk.KC,
			Kernel: fmt.Sprintf("analytic-%dx%d", at.MR, at.NR),
			GFLOPS: eval(at.MR, at.NR),
		}
	}
	return r
}

// Prove runs the full admission gate on one candidate — nothing serves
// traffic without passing all of it:
//
//  1. family-domain membership: the tile must lie inside the symbolic
//     domain the family proof quantifies over;
//  2. the isacheck passes (dataflow, footprint, depdist, pressure, tiling)
//     against the family-derived contract with the catalogue's pipelined
//     schedule thresholds, plus the memoized symbolic family proof;
//  3. vexec-vs-reference numeric validation: the exact program that would
//     serve, executed functionally on pseudorandom operands and compared
//     element-wise against a straightforward reference within the canary
//     tolerance, twice with independent seeds.
//
// A nil error means the candidate is admissible for canary installation.
func Prove(p *platform.Platform, elemBytes int, c Candidate) error {
	fam, ok := isacheck.FamilyByName(familyFor(elemBytes))
	if !ok {
		return fmt.Errorf("autotune: family %s not registered", familyFor(elemBytes))
	}
	shape := isacheck.Shape{MR: c.MR, NR: c.NR, KC: c.KC}
	if !inRange(c.MR, fam.Domain.MR) || !inRange(c.NR, fam.Domain.NR) || !inRange(c.KC, fam.Domain.KC) {
		return fmt.Errorf("autotune: tile %dx%d kc %d outside family %s domain",
			c.MR, c.NR, c.KC, fam.Name)
	}

	contract := fam.ContractAt(shape)
	contract.Pipelined = true
	contract.MaxLoadPressure = mainMaxLoadPressure
	entry := isacheck.Entry{
		Name:      "autotune/" + c.Kernel,
		Family:    "autotune",
		SymFamily: fam.Name,
		SymShape:  shape,
		Contract:  contract,
		Build:     func() *isa.Program { return fam.BuildAt(shape) },
	}
	kr := isacheck.Run(entry, p)
	if !kr.OK {
		fs := kr.Findings()
		if len(fs) > 0 {
			return fmt.Errorf("autotune: isacheck rejected %s: %s", c.Kernel, fs[0].Msg)
		}
		return fmt.Errorf("autotune: isacheck rejected %s", c.Kernel)
	}

	prog := fam.BuildAt(shape)
	for seed := uint64(1); seed <= 2; seed++ {
		if err := validate(prog, elemBytes, c, seed); err != nil {
			return err
		}
	}
	return nil
}

// validate executes prog functionally on seeded pseudorandom operands and
// compares against the reference accumulation C += A·B (the family contract
// is Accumulate). Stream order mirrors BuildMain: A, B, C.
func validate(prog *isa.Program, elemBytes int, c Candidate, seed uint64) error {
	rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
	mr, nr, kc := c.MR, c.NR, c.KC
	if elemBytes == 8 {
		a := randF64(rng, mr*kc)
		b := randF64(rng, kc*nr)
		cb := randF64(rng, mr*nr)
		want := append([]float64(nil), cb...)
		for i := 0; i < mr; i++ {
			for j := 0; j < nr; j++ {
				for k := 0; k < kc; k++ {
					want[i*nr+j] += a[i*kc+k] * b[k*nr+j]
				}
			}
		}
		if err := vexec.RunF64(prog, a, b, cb); err != nil {
			return fmt.Errorf("autotune: vexec %s: %w", c.Kernel, err)
		}
		if !heal.Agrees(cb, nr, want, nr, mr, nr, heal.Tolerance(8)) {
			return fmt.Errorf("autotune: %s disagrees with reference (seed %d)", c.Kernel, seed)
		}
		return nil
	}
	a := randF32(rng, mr*kc)
	b := randF32(rng, kc*nr)
	cb := randF32(rng, mr*nr)
	want := append([]float32(nil), cb...)
	for i := 0; i < mr; i++ {
		for j := 0; j < nr; j++ {
			var acc float32
			for k := 0; k < kc; k++ {
				acc += a[i*kc+k] * b[k*nr+j]
			}
			want[i*nr+j] += acc
		}
	}
	if err := vexec.RunF32(prog, a, b, cb); err != nil {
		return fmt.Errorf("autotune: vexec %s: %w", c.Kernel, err)
	}
	if !heal.Agrees(cb, nr, want, nr, mr, nr, heal.Tolerance(4)) {
		return fmt.Errorf("autotune: %s disagrees with reference (seed %d)", c.Kernel, seed)
	}
	return nil
}

func randF32(rng *rand.Rand, n int) []float32 {
	v := make([]float32, n)
	for i := range v {
		v[i] = float32(rng.Float64()*2 - 1)
	}
	return v
}

func randF64(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.Float64()*2 - 1
	}
	return v
}
