package autotune

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// ClassReport is one class's row in the /tune report.
type ClassReport struct {
	Precision  string `json:"precision"`
	ShapeClass string `json:"shape_class"`
	// State is the lifecycle position: idle, searching, proving, canary,
	// promoted, rejected, reverted.
	State string `json:"state"`
	// Kernel is the candidate's minted identity once one is canarying or
	// promoted (e.g. "tuned-5x12-kc8-pipelined").
	Kernel string `json:"kernel,omitempty"`
	MR     int    `json:"mr,omitempty"`
	NR     int    `json:"nr,omitempty"`
	KC     int    `json:"kc,omitempty"`
	// IncumbentKernel and the two GFLOPS figures are the search's modeled
	// comparison: what the class was serving vs what the candidate models.
	IncumbentKernel string  `json:"incumbent_kernel,omitempty"`
	IncumbentGFLOPS float64 `json:"incumbent_gflops,omitempty"`
	CandidateGFLOPS float64 `json:"candidate_gflops,omitempty"`
	// Detail carries the last rejection or revert reason.
	Detail    string    `json:"detail,omitempty"`
	UpdatedAt time.Time `json:"updated_at"`
}

// Report is the full /tune document.
type Report struct {
	Platform string  `json:"platform"`
	Margin   float64 `json:"margin"`
	// Lifetime counters across every class.
	Searched  uint64        `json:"searched"`
	Proved    uint64        `json:"proved"`
	Rejected  uint64        `json:"rejected"`
	Canaried  uint64        `json:"canaried"`
	Promoted  uint64        `json:"promoted"`
	Reverted  uint64        `json:"reverted"`
	Classes   []ClassReport `json:"classes,omitempty"`
	Generated time.Time     `json:"generated_at"`
}

// Report snapshots the engine. Safe on a nil engine (zero report).
func (e *Engine) Report() Report {
	if e == nil {
		return Report{}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	rep := Report{
		Platform: e.cfg.Platform.Name,
		Margin:   e.cfg.Margin,
		Searched: e.searched, Proved: e.proved, Rejected: e.rejected,
		Canaried: e.canaried, Promoted: e.promoted, Reverted: e.reverted,
		Generated: time.Now(),
	}
	for _, k := range e.sortedKeys() {
		cs := e.classes[k]
		cr := ClassReport{
			Precision:  classLabel(k)[:3],
			ShapeClass: k.class.String(),
			State:      string(cs.state),
			Detail:     cs.detail,
			UpdatedAt:  cs.updated,
		}
		if cs.incumbent.Kernel != "" {
			cr.IncumbentKernel = cs.incumbent.Kernel
			cr.IncumbentGFLOPS = cs.incumbent.GFLOPS
		}
		if cs.cand.Kernel != "" {
			cr.Kernel = cs.cand.Kernel
			cr.MR, cr.NR, cr.KC = cs.cand.MR, cs.cand.NR, cs.cand.KC
			cr.CandidateGFLOPS = cs.cand.GFLOPS
		}
		rep.Classes = append(rep.Classes, cr)
	}
	return rep
}

// Handler serves the report as JSON. A nil engine answers 404, mirroring
// the /attrib off-path contract.
func (e *Engine) Handler() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if e == nil {
			http.Error(w, "autotuning disabled", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(e.Report())
	}
}

// WritePrometheus appends the engine's per-class gauge family to a
// /metrics exposition. Nil-safe: a nil engine writes nothing. The series
// complement (never duplicate) the recorder's libshalom_autotune_events_total
// counters and overrides gauge.
func (e *Engine) WritePrometheus(w io.Writer) error {
	if e == nil {
		return nil
	}
	rep := e.Report()
	var b []byte
	b = append(b, "# HELP libshalom_autotune_class_state Tuning lifecycle state per shape class (1 = current state).\n"...)
	b = append(b, "# TYPE libshalom_autotune_class_state gauge\n"...)
	for _, c := range rep.Classes {
		b = append(b, fmt.Sprintf("libshalom_autotune_class_state{precision=%q,shape_class=%q,state=%q} 1\n",
			c.Precision, c.ShapeClass, c.State)...)
	}
	b = append(b, "# HELP libshalom_autotune_class_candidate_gflops Modeled throughput of the class's tuned candidate.\n"...)
	b = append(b, "# TYPE libshalom_autotune_class_candidate_gflops gauge\n"...)
	for _, c := range rep.Classes {
		if c.Kernel == "" {
			continue
		}
		b = append(b, fmt.Sprintf("libshalom_autotune_class_candidate_gflops{precision=%q,shape_class=%q,kernel=%q} %g\n",
			c.Precision, c.ShapeClass, c.Kernel, c.CandidateGFLOPS)...)
	}
	b = append(b, "# HELP libshalom_autotune_class_incumbent_gflops Modeled throughput of the tile the class was serving at search time.\n"...)
	b = append(b, "# TYPE libshalom_autotune_class_incumbent_gflops gauge\n"...)
	for _, c := range rep.Classes {
		if c.IncumbentKernel == "" {
			continue
		}
		b = append(b, fmt.Sprintf("libshalom_autotune_class_incumbent_gflops{precision=%q,shape_class=%q,kernel=%q} %g\n",
			c.Precision, c.ShapeClass, c.IncumbentKernel, c.IncumbentGFLOPS)...)
	}
	_, err := w.Write(b)
	return err
}
