package autotune

import (
	"math/rand/v2"
	"net/http/httptest"
	"strings"
	"testing"

	"libshalom/internal/core"
	"libshalom/internal/guard"
	"libshalom/internal/heal"
	"libshalom/internal/journal"
	"libshalom/internal/platform"
	"libshalom/internal/telemetry"
)

// resetWorld clears the cross-package globals every test leans on: the
// breaker registry (which also clears the override table) and the heal
// policy.
func resetWorld(t *testing.T) {
	t.Helper()
	guard.Reset()
	prev := heal.Configure(heal.Config{})
	t.Cleanup(func() {
		guard.Reset()
		heal.Configure(prev)
	})
}

func TestSearchWellTunedClass(t *testing.T) {
	resetWorld(t)
	sr := Search(platform.KP920(), 4, telemetry.ShapeSmall)
	if sr.Incumbent.Kernel != "analytic-7x12" {
		t.Fatalf("incumbent = %q, want the analytic solution", sr.Incumbent.Kernel)
	}
	if len(sr.Candidates) == 0 {
		t.Fatal("search found no candidates")
	}
	for i := 1; i < len(sr.Candidates); i++ {
		if sr.Candidates[i].GFLOPS > sr.Candidates[i-1].GFLOPS {
			t.Fatalf("candidates not sorted descending at %d", i)
		}
	}
	// The paper's implicit claim (and tuner.SearchTile's test): the analytic
	// tile is at or within noise of the searched optimum, so a well-tuned
	// class never finds a candidate worth a 10% margin.
	floor := sr.Incumbent.GFLOPS * 1.10
	if best := sr.Candidates[0]; best.GFLOPS >= floor {
		t.Fatalf("candidate %s models %.1f GFLOPS ≥ %.1f — the analytic incumbent should be unbeatable by margin",
			best.Kernel, best.GFLOPS, floor)
	}
	for _, c := range sr.Candidates {
		if c.MR < 1 || c.MR > 7 || c.NR%4 != 0 || c.NR < 4 || c.NR > 12 {
			t.Fatalf("candidate %s outside the f32 family domain", c.Kernel)
		}
	}
}

func TestProveGate(t *testing.T) {
	resetWorld(t)
	sr := Search(platform.KP920(), 4, telemetry.ShapeSmall)
	if err := Prove(platform.KP920(), 4, sr.Candidates[0]); err != nil {
		t.Fatalf("top candidate %s failed the proof gate: %v", sr.Candidates[0].Kernel, err)
	}
	bad := Candidate{MR: 9, NR: 12, KC: 8, Kernel: "tuned-9x12-kc8-pipelined"}
	if err := Prove(platform.KP920(), 4, bad); err == nil {
		t.Fatal("out-of-domain tile passed the proof gate")
	} else if !strings.Contains(err.Error(), "outside family") {
		t.Fatalf("wrong rejection: %v", err)
	}
	srF64 := Search(platform.KP920(), 8, telemetry.ShapeMedium)
	if err := Prove(platform.KP920(), 8, srF64.Candidates[0]); err != nil {
		t.Fatalf("top f64 candidate failed the proof gate: %v", err)
	}
}

// seedDetuned installs a deliberately bad serving tile on (f32, small) —
// the shape the operator's -detune-class flag produces — with a healthy
// breaker so it serves traffic unshadowed.
func seedDetuned(t *testing.T) {
	t.Helper()
	path := guard.MintOverridePath(4, telemetry.ShapeSmall.String())
	if !guard.SetOverride(4, uint8(telemetry.ShapeSmall), guard.TileOverride{
		MR: 1, NR: 4, KC: 8, Kernel: "detuned-1x4", Path: path,
	}) {
		t.Fatal("seeding the detuned override failed")
	}
}

// driveClass runs n guarded f32 GEMM calls on the small-class
// representative shape, giving the canary machinery live traffic.
func driveClass(t *testing.T, tel *telemetry.Recorder, n int) {
	t.Helper()
	m, nn, k := telemetry.RepresentativeShape(telemetry.ShapeSmall)
	rng := rand.New(rand.NewPCG(7, 7))
	a := make([]float32, m*k)
	b := make([]float32, k*nn)
	for i := range a {
		a[i] = float32(rng.Float64()*2 - 1)
	}
	for i := range b {
		b[i] = float32(rng.Float64()*2 - 1)
	}
	cfg := core.Config{Plat: platform.KP920(), Threads: 1, NumericGuard: true, Tel: tel}
	for i := 0; i < n; i++ {
		c := make([]float32, m*nn)
		if err := core.SGEMM(cfg, core.NN, m, nn, k, 1, a, k, b, nn, 0, c, nn); err != nil {
			t.Fatalf("guarded call %d errored: %v", i, err)
		}
	}
}

func TestTuneNowPromotesDetunedClass(t *testing.T) {
	resetWorld(t)
	heal.Configure(heal.Config{CanaryStride: 1})
	seedDetuned(t)

	dir := t.TempDir()
	jw, err := journal.Open(journal.Options{Dir: dir})
	if err != nil {
		t.Fatalf("journal open: %v", err)
	}
	tel := telemetry.New(telemetry.Options{})
	eng := New(Config{Recorder: tel, Platform: platform.KP920(), Journal: jw})
	if err := eng.TuneNow("f32", "small"); err != nil {
		t.Fatalf("TuneNow: %v", err)
	}

	rep := eng.Report()
	if len(rep.Classes) != 1 || rep.Classes[0].State != string(StateCanary) {
		t.Fatalf("after TuneNow report = %+v, want one class in canary", rep.Classes)
	}
	cand := rep.Classes[0]
	if cand.IncumbentKernel != "detuned-1x4" {
		t.Fatalf("incumbent = %q, want the seeded detuned tile", cand.IncumbentKernel)
	}
	if cand.CandidateGFLOPS < cand.IncumbentGFLOPS*(1+rep.Margin) {
		t.Fatalf("candidate %.1f GFLOPS does not clear incumbent %.1f by the margin",
			cand.CandidateGFLOPS, cand.IncumbentGFLOPS)
	}
	ov, ok := guard.OverrideFor(4, uint8(telemetry.ShapeSmall))
	if !ok || ov.Kernel != cand.Kernel {
		t.Fatalf("override = %+v, %v; want the canaried candidate installed", ov, ok)
	}
	if st := guard.StateOf(platform.KP920().Name, ov.Path); st != guard.StateProbing {
		t.Fatalf("candidate breaker = %s, want probing", st)
	}
	snap := tel.Snapshot()
	for _, want := range []string{"search", "proved", "canary"} {
		if snap.Autotune.Count(want) != 1 {
			t.Fatalf("autotune event %q = %d, want 1", want, snap.Autotune.Count(want))
		}
	}
	if snap.Autotune.Overrides != 1 {
		t.Fatalf("overrides gauge = %d, want 1", snap.Autotune.Overrides)
	}

	// Live traffic agrees with the reference on every canaried call: the
	// breaker closes at the canary target, and the next Step promotes.
	driveClass(t, tel, int(heal.Current().CanaryTarget)+2)
	if st := guard.StateOf(platform.KP920().Name, ov.Path); st != guard.StateHealthy {
		t.Fatalf("after agreeing canaries breaker = %s, want healthy", st)
	}
	eng.Step()
	rep = eng.Report()
	if rep.Classes[0].State != string(StatePromoted) || rep.Promoted != 1 {
		t.Fatalf("after close report = %+v, want promoted", rep.Classes[0])
	}
	if tel.Snapshot().Autotune.Count("promoted") != 1 {
		t.Fatal("promoted event not recorded")
	}

	// The journal carries the promotion as a tamper-evident tune record.
	if err := jw.Close(); err != nil {
		t.Fatalf("journal close: %v", err)
	}
	events, err := journal.ReadDir(dir)
	if err != nil {
		t.Fatalf("journal read: %v", err)
	}
	var promotes int
	for _, ev := range events {
		if ev.Kind == journal.KindTunePromote {
			promotes++
			if ev.Class != "f32/small" || ev.Kernel != cand.Kernel ||
				int(ev.MR) != cand.MR || int(ev.NR) != cand.NR || int(ev.KC) != cand.KC {
				t.Fatalf("promote record = %+v, want the promoted candidate", ev)
			}
		}
	}
	if promotes != 1 {
		t.Fatalf("journal has %d promote records, want 1", promotes)
	}
}

func TestStepRevertsTrippedCanary(t *testing.T) {
	resetWorld(t)
	heal.Configure(heal.Config{CanaryStride: 1})
	seedDetuned(t)

	dir := t.TempDir()
	jw, err := journal.Open(journal.Options{Dir: dir})
	if err != nil {
		t.Fatalf("journal open: %v", err)
	}
	tel := telemetry.New(telemetry.Options{})
	eng := New(Config{Recorder: tel, Platform: platform.KP920(), Journal: jw})
	if err := eng.TuneNow("f32", "small"); err != nil {
		t.Fatalf("TuneNow: %v", err)
	}
	ov, ok := guard.OverrideFor(4, uint8(telemetry.ShapeSmall))
	if !ok {
		t.Fatal("candidate not installed")
	}

	// A canary mismatch trips the candidate's private breaker, which evicts
	// the override atomically; the next Step books the revert.
	heal.ReportMismatch(platform.KP920().Name, ov.Path, "injected mismatch", "NN 64x64x64")
	if _, still := guard.OverrideFor(4, uint8(telemetry.ShapeSmall)); still {
		t.Fatal("trip did not evict the override")
	}
	eng.Step()
	rep := eng.Report()
	if rep.Classes[0].State != string(StateReverted) || rep.Reverted != 1 {
		t.Fatalf("after trip report = %+v, want reverted", rep.Classes[0])
	}
	if !strings.Contains(rep.Classes[0].Detail, "injected mismatch") {
		t.Fatalf("revert detail = %q, want the trip reason", rep.Classes[0].Detail)
	}
	snap := tel.Snapshot()
	if snap.Autotune.Count("reverted") != 1 || snap.Autotune.Overrides != 0 {
		t.Fatalf("autotune stats = %+v, want one revert and gauge back to 0", snap.Autotune)
	}
	// The private breaker record is retired: generation-counted paths are
	// never reused, so nothing should linger in the registry.
	if st := guard.StateOf(platform.KP920().Name, ov.Path); st != guard.StateHealthy {
		t.Fatalf("retired breaker = %s, want forgotten (healthy)", st)
	}
	// A second Step is idempotent — no double bookkeeping.
	eng.Step()
	if rep := eng.Report(); rep.Reverted != 1 {
		t.Fatalf("second Step double-booked the revert: %d", rep.Reverted)
	}

	if err := jw.Close(); err != nil {
		t.Fatalf("journal close: %v", err)
	}
	events, err := journal.ReadDir(dir)
	if err != nil {
		t.Fatalf("journal read: %v", err)
	}
	var reverts int
	for _, ev := range events {
		if ev.Kind == journal.KindTuneRevert {
			reverts++
			if !strings.Contains(ev.Detail, "injected mismatch") {
				t.Fatalf("revert record detail = %q", ev.Detail)
			}
		}
	}
	if reverts != 1 {
		t.Fatalf("journal has %d revert records, want 1", reverts)
	}
}

func TestWellTunedClassIsRejected(t *testing.T) {
	resetWorld(t)
	tel := telemetry.New(telemetry.Options{})
	eng := New(Config{Recorder: tel, Platform: platform.KP920()})
	if err := eng.TuneNow("f32", "small"); err != nil {
		t.Fatalf("TuneNow: %v", err)
	}
	rep := eng.Report()
	if rep.Classes[0].State != string(StateRejected) || rep.Rejected != 1 {
		t.Fatalf("report = %+v, want rejected (analytic incumbent unbeatable)", rep.Classes[0])
	}
	if guard.Overrides() != nil {
		t.Fatal("a rejected search must install nothing")
	}
	if tel.Snapshot().Autotune.Count("rejected") != 1 {
		t.Fatal("rejected event not recorded")
	}
}

func TestNilEngineIsInert(t *testing.T) {
	eng := New(Config{})
	if eng != nil {
		t.Fatal("New without a recorder must return nil")
	}
	eng.Start()
	eng.Step()
	eng.Close()
	if rep := eng.Report(); len(rep.Classes) != 0 {
		t.Fatal("nil engine report not empty")
	}
	if err := eng.TuneNow("f32", "small"); err == nil {
		t.Fatal("nil engine TuneNow must refuse")
	}
	rr := httptest.NewRecorder()
	eng.Handler()(rr, httptest.NewRequest("GET", "/tune", nil))
	if rr.Code != 404 {
		t.Fatalf("nil engine /tune = %d, want 404", rr.Code)
	}
	var sb strings.Builder
	if err := eng.WritePrometheus(&sb); err != nil || sb.Len() != 0 {
		t.Fatalf("nil engine exposition = %q, %v", sb.String(), err)
	}
}

func TestReportSurfaces(t *testing.T) {
	resetWorld(t)
	heal.Configure(heal.Config{CanaryStride: 1})
	seedDetuned(t)
	tel := telemetry.New(telemetry.Options{})
	eng := New(Config{Recorder: tel, Platform: platform.KP920()})
	if err := eng.TuneNow("f32", "small"); err != nil {
		t.Fatalf("TuneNow: %v", err)
	}

	rr := httptest.NewRecorder()
	eng.Handler()(rr, httptest.NewRequest("GET", "/tune", nil))
	if rr.Code != 200 {
		t.Fatalf("/tune = %d", rr.Code)
	}
	body := rr.Body.String()
	for _, want := range []string{`"state": "canary"`, `"shape_class": "small"`, `"incumbent_kernel": "detuned-1x4"`} {
		if !strings.Contains(body, want) {
			t.Fatalf("/tune body missing %s:\n%s", want, body)
		}
	}

	var sb strings.Builder
	if err := eng.WritePrometheus(&sb); err != nil {
		t.Fatalf("exposition: %v", err)
	}
	expo := sb.String()
	for _, want := range []string{
		`libshalom_autotune_class_state{precision="f32",shape_class="small",state="canary"} 1`,
		`libshalom_autotune_class_incumbent_gflops{precision="f32",shape_class="small",kernel="detuned-1x4"}`,
	} {
		if !strings.Contains(expo, want) {
			t.Fatalf("exposition missing %s:\n%s", want, expo)
		}
	}
}
