package kernels

import (
	"testing"
	"testing/quick"

	"libshalom/internal/isa"
	"libshalom/internal/mat"
	"libshalom/internal/vexec"
)

// TestFuzzMainSpecs drives BuildMain through random feasible specs and, for
// each, (a) runs the static analyzer's kernel invariants and (b) executes
// the program functionally against the Go micro-kernel.
func TestFuzzMainSpecs(t *testing.T) {
	f := func(seed uint32) bool {
		rng := mat.NewRNG(uint64(seed) + 12345)
		elem := []int{4, 8}[rng.Intn(2)]
		lanes := 16 / elem
		// Random feasible tile.
		var mr, nr int
		for {
			mr = rng.Intn(10) + 1
			nr = (rng.Intn(4) + 1) * lanes
			nb := nr / lanes
			if mr+nb+mr*nb <= 32 {
				break
			}
		}
		kc := (rng.Intn(6) + 1) * lanes
		lda := kc + rng.Intn(8)
		ldb := nr + rng.Intn(8)
		ldc := nr + rng.Intn(8)
		spec := MainSpec{
			Elem: elem, MR: mr, NR: nr, KC: kc,
			LDA: lda, LDB: ldb, LDC: ldc,
			Accumulate: rng.Intn(2) == 0,
			PackB:      rng.Intn(2) == 0,
			Schedule:   Schedule(rng.Intn(2)),
		}
		p := BuildMain(spec)
		rep, err := isa.Analyze(p)
		if err != nil {
			t.Logf("spec %+v: analyze: %v", spec, err)
			return false
		}
		// The pipelined tail may reload up to mr + nr/lanes registers that
		// the truncated final iteration never consumes.
		budget := mr + nr/lanes
		if err := rep.CheckKernelInvariants(budget); err != nil {
			t.Logf("spec %+v: %v", spec, err)
			return false
		}

		// Functional check against the Go kernel.
		if elem == 4 {
			a := fillRand32((mr-1)*lda+kc, rng)
			b := fillRand32((kc-1)*ldb+nr, rng)
			c := fillRand32((mr-1)*ldc+nr, rng)
			cISA := append([]float32(nil), c...)
			streams := [][]float32{a, b, cISA}
			if spec.PackB {
				streams = append(streams, make([]float32, kc*nr))
			}
			m, err := vexec.NewMachine(p, streams, nil)
			if err != nil {
				t.Logf("spec %+v: bind: %v", spec, err)
				return false
			}
			m.Run()
			beta := float32(0)
			if spec.Accumulate {
				beta = 1
			}
			SGEMMMicro(mr, nr, kc, 1, a, lda, b, ldb, beta, c, ldc)
			for i := 0; i < mr; i++ {
				for j := 0; j < nr; j++ {
					d := cISA[i*ldc+j] - c[i*ldc+j]
					if d > 1e-3 || d < -1e-3 {
						t.Logf("spec %+v: C(%d,%d) diff %g", spec, i, j, d)
						return false
					}
				}
			}
		} else {
			a := fillRand64((mr-1)*lda+kc, rng)
			b := fillRand64((kc-1)*ldb+nr, rng)
			c := fillRand64((mr-1)*ldc+nr, rng)
			cISA := append([]float64(nil), c...)
			streams := [][]float64{a, b, cISA}
			if spec.PackB {
				streams = append(streams, make([]float64, kc*nr))
			}
			m, err := vexec.NewMachine(p, nil, streams)
			if err != nil {
				return false
			}
			m.Run()
			beta := float64(0)
			if spec.Accumulate {
				beta = 1
			}
			DGEMMMicro(mr, nr, kc, 1, a, lda, b, ldb, beta, c, ldc)
			for i := 0; i < mr; i++ {
				for j := 0; j < nr; j++ {
					d := cISA[i*ldc+j] - c[i*ldc+j]
					if d > 1e-12 || d < -1e-12 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestFuzzNTPackSpecs drives BuildNTPack through random feasible specs with
// the same analyzer + functional checks.
func TestFuzzNTPackSpecs(t *testing.T) {
	f := func(seed uint32) bool {
		rng := mat.NewRNG(uint64(seed)*7 + 99)
		elem := []int{4, 8}[rng.Intn(2)]
		lanes := 16 / elem
		var mr, nb int
		for {
			mr = rng.Intn(8) + 1
			nb = rng.Intn(3) + 1
			if mr+nb+mr*nb <= 31 {
				break
			}
		}
		kc := (rng.Intn(4) + 1) * lanes
		groups := rng.Intn(3) + 1
		nrTotal := nb * groups
		jOff := nb * rng.Intn(groups)
		spec := NTPackSpec{
			Elem: elem, MR: mr, NB: nb, KC: kc,
			LDA: kc + rng.Intn(4), LDBT: kc + rng.Intn(4), LDC: nrTotal + rng.Intn(4),
			NRTotal: nrTotal, JOff: jOff, Accum: rng.Intn(2) == 0,
		}
		p := BuildNTPack(spec)
		rep, err := isa.Analyze(p)
		if err != nil {
			return false
		}
		if err := rep.CheckKernelInvariants(0); err != nil {
			t.Logf("spec %+v: %v", spec, err)
			return false
		}
		if elem != 4 {
			return true // functional FP64 parity is covered in isa_test.go
		}
		a := fillRand32((mr-1)*spec.LDA+kc, rng)
		bT := fillRand32((nb-1)*spec.LDBT+kc, rng)
		c := fillRand32((mr-1)*spec.LDC+jOff+nb, rng)
		cISA := append([]float32(nil), c...)
		bc := make([]float32, (kc-1)*nrTotal+jOff+nb)
		bcGo := append([]float32(nil), bc...)
		if err := vexec.RunF32(p, a, bT, cISA, bc); err != nil {
			return false
		}
		beta := float32(0)
		if spec.Accum {
			beta = 1
		}
		SGEMMMicroNTPack(mr, nb, kc, 1, a, spec.LDA, bT, spec.LDBT, beta, c[jOff:], spec.LDC, bcGo, nrTotal, jOff)
		for i := 0; i < mr; i++ {
			for j := 0; j < nb; j++ {
				d := cISA[i*spec.LDC+jOff+j] - c[jOff+i*spec.LDC+j]
				if d > 1e-3 || d < -1e-3 {
					return false
				}
			}
		}
		for k := 0; k < kc; k++ {
			for j := 0; j < nb; j++ {
				if bc[k*nrTotal+jOff+j] != bT[j*spec.LDBT+k] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestAnalyzerOnEdgeKernels applies the invariants to both Fig 6 variants.
func TestAnalyzerOnEdgeKernels(t *testing.T) {
	for _, sched := range []Schedule{Batch, Pipelined} {
		p := BuildEdge8x4(EdgeSpec{Elem: 4, KC: 16, LDAp: 8, LDB: 4, LDC: 4, Schedule: sched})
		rep, err := isa.Analyze(p)
		if err != nil {
			t.Fatal(err)
		}
		// The pipelined variant's final double-buffer reloads are dead.
		if err := rep.CheckKernelInvariants(4); err != nil {
			t.Fatalf("%v edge kernel: %v", sched, err)
		}
		if rep.PeakLive > 32 {
			t.Fatalf("%v edge kernel peak live %d", sched, rep.PeakLive)
		}
	}
}
