// Package kernels contains every micro-kernel of the reproduction, in two
// synchronized forms:
//
//   - portable Go compute kernels (this file and go64.go) used by the real
//     GEMM drivers in internal/core and internal/baselines, and
//   - virtual-NEON ISA programs (main_isa.go, ntpack_isa.go, edge_isa.go)
//     that express the paper's register-level designs — the 7×12 / 7×6 main
//     micro-kernel (Alg 2), the packing micro-kernels that fold packing
//     loads/stores into the FMA stream (Fig 4/5, Alg 3), and the batch- vs
//     interleaved-scheduled edge kernels of Fig 6 — for the timing model and
//     for functional cross-validation.
//
// Tests assert that for identical tiles the Go kernels, the ISA programs
// executed by internal/vexec, and the naive reference in internal/mat all
// agree.
package kernels

// SGEMMMicro computes the mr×nr FP32 tile
//
//	c[i*ldc+j] = alpha * Σ_k a[i*lda+k]·b[k*ldb+j] + beta*c[i*ldc+j]
//
// for 0 ≤ i < mr, 0 ≤ j < nr, 0 ≤ k < kc. Both operands are addressed
// row-major through explicit leading dimensions, which covers every operand
// layout the drivers use: an unpacked A sliver (lda = the matrix stride), a
// packed A sliver (lda = kc), an unpacked B block (ldb = the matrix stride)
// and the packed linear buffer Bc (ldb = nr). beta == 0 overwrites C without
// reading it. Accumulation is performed in float32, k-innermost, matching
// the lane-wise semantics of the virtual-NEON kernels.
//
//shalom:hotpath noalloc,nolock,noblock,notime
func SGEMMMicro(mr, nr, kc int, alpha float32, a []float32, lda int, b []float32, ldb int, beta float32, c []float32, ldc int) {
	if mr == 7 && nr == 12 {
		sgemmMicro7x12(kc, alpha, a, lda, b, ldb, beta, c, ldc)
		return
	}
	for i := 0; i < mr; i++ {
		ar := a[i*lda:]
		for j := 0; j < nr; j++ {
			var acc float32
			for k := 0; k < kc; k++ {
				acc += ar[k] * b[k*ldb+j]
			}
			if beta == 0 {
				c[i*ldc+j] = alpha * acc
			} else {
				c[i*ldc+j] = alpha*acc + beta*c[i*ldc+j]
			}
		}
	}
}

// sgemmMicro7x12 is the specialized main micro-kernel (§5.2.3: mr=7, nr=12).
// Twelve-wide accumulator rows are kept in three 4-lane blocks, mirroring
// the three 128-bit B registers (V7–V9) of the assembly design.
func sgemmMicro7x12(kc int, alpha float32, a []float32, lda int, b []float32, ldb int, beta float32, c []float32, ldc int) {
	var acc [7][12]float32
	a0, a1, a2 := a[0*lda:], a[1*lda:], a[2*lda:]
	a3, a4, a5 := a[3*lda:], a[4*lda:], a[5*lda:]
	a6 := a[6*lda:]
	for k := 0; k < kc; k++ {
		br := b[k*ldb : k*ldb+12]
		av := [7]float32{a0[k], a1[k], a2[k], a3[k], a4[k], a5[k], a6[k]}
		for i := 0; i < 7; i++ {
			s := av[i]
			row := &acc[i]
			for j := 0; j < 12; j++ {
				row[j] += s * br[j]
			}
		}
	}
	for i := 0; i < 7; i++ {
		cr := c[i*ldc : i*ldc+12]
		if beta == 0 {
			for j := 0; j < 12; j++ {
				cr[j] = alpha * acc[i][j]
			}
		} else {
			for j := 0; j < 12; j++ {
				cr[j] = alpha*acc[i][j] + beta*cr[j]
			}
		}
	}
}

// SGEMMMicroPackB behaves like SGEMMMicro for an mr×nr tile reading B from
// its strided source, and simultaneously packs the kc×nr B sliver into the
// linear buffer bc (row-major, leading dimension nrTotal, starting at column
// jOff). This is the Go counterpart of the NN-mode packing micro-kernel
// (Alg 1 lines 6–8): the first sliver of every mc-panel packs B while it
// updates C, and subsequent slivers reuse bc.
//
//shalom:hotpath noalloc,nolock,noblock,notime
func SGEMMMicroPackB(mr, nr, kc int, alpha float32, a []float32, lda int, b []float32, ldb int, beta float32, c []float32, ldc int, bc []float32, nrTotal, jOff int) {
	for k := 0; k < kc; k++ {
		copy(bc[k*nrTotal+jOff:k*nrTotal+jOff+nr], b[k*ldb:k*ldb+nr])
	}
	SGEMMMicro(mr, nr, kc, alpha, a, lda, b, ldb, beta, c, ldc)
}

// SGEMMMicroNT computes an mr×nr FP32 tile under the NT data layout: bT is
// the transposed operand as stored (N×K row-major), so element B(k, j) of
// the logical K×N operand is bT[j*ldbT + k]. Used by the NT-mode inner-
// product packing kernel and by NT edge tiles that bypass the packed buffer.
//
//shalom:hotpath noalloc,nolock,noblock,notime
func SGEMMMicroNT(mr, nr, kc int, alpha float32, a []float32, lda int, bT []float32, ldbT int, beta float32, c []float32, ldc int) {
	for i := 0; i < mr; i++ {
		ar := a[i*lda:]
		for j := 0; j < nr; j++ {
			br := bT[j*ldbT:]
			var acc float32
			for k := 0; k < kc; k++ {
				acc += ar[k] * br[k]
			}
			if beta == 0 {
				c[i*ldc+j] = alpha * acc
			} else {
				c[i*ldc+j] = alpha*acc + beta*c[i*ldc+j]
			}
		}
	}
}

// SGEMMMicroNTPack is the Go counterpart of the NT packing micro-kernel
// (Fig 5 / Alg 3): it updates an mr×nr C tile from A and the stored-
// transposed bT using the inner-product formulation, and scatters the same
// kc×nr sliver of B into the linear buffer bc (row-major kc×nrTotal at
// column jOff) so later tiles can run the 7×12 outer-product main kernel.
//
//shalom:hotpath noalloc,nolock,noblock,notime
func SGEMMMicroNTPack(mr, nr, kc int, alpha float32, a []float32, lda int, bT []float32, ldbT int, beta float32, c []float32, ldc int, bc []float32, nrTotal, jOff int) {
	for j := 0; j < nr; j++ {
		br := bT[j*ldbT:]
		for k := 0; k < kc; k++ {
			bc[k*nrTotal+jOff+j] = br[k]
		}
	}
	SGEMMMicroNT(mr, nr, kc, alpha, a, lda, bT, ldbT, beta, c, ldc)
}

// SScaleRows scales the mr×nr tile of C by beta in place (used when a
// driver must apply beta to tiles no kernel will touch, e.g. zero-K edge).
//
//shalom:hotpath noalloc,nolock,noblock,notime
func SScaleRows(mr, nr int, beta float32, c []float32, ldc int) {
	for i := 0; i < mr; i++ {
		row := c[i*ldc : i*ldc+nr]
		if beta == 0 {
			for j := range row {
				row[j] = 0
			}
		} else {
			for j := range row {
				row[j] *= beta
			}
		}
	}
}
