package kernels

import (
	"testing"

	"libshalom/internal/isa"
	"libshalom/internal/mat"
	"libshalom/internal/platform"
	"libshalom/internal/uarch"
	"libshalom/internal/vexec"
)

func defaultCfg() uarch.Config {
	return uarch.Config{
		IssueWidth: 4, FMAPipes: 1, LoadPipes: 2, StorePipes: 1,
		Window: 16, FMALatency: 7, LoadLatency: 4, StoreLatency: 1, MiscLatency: 3,
	}
}

// runMain executes a BuildMain program functionally and compares against the
// Go micro-kernel on the same operands.
func runMainAndCompare(t *testing.T, spec MainSpec) {
	t.Helper()
	p := BuildMain(spec)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	rng := mat.NewRNG(uint64(spec.MR*100 + spec.NR))
	if spec.Elem == 4 {
		a := fillRand32((spec.MR-1)*spec.LDA+spec.KC, rng)
		b := fillRand32((spec.KC-1)*spec.LDB+spec.NR, rng)
		c := fillRand32((spec.MR-1)*spec.LDC+spec.NR, rng)
		cISA := append([]float32(nil), c...)
		bc := make([]float32, spec.KC*spec.NR)
		streams := [][]float32{a, b, cISA}
		if spec.PackB {
			streams = append(streams, bc)
		}
		m, err := vexec.NewMachine(p, streams, nil)
		if err != nil {
			t.Fatal(err)
		}
		m.Run()
		beta := float32(0)
		if spec.Accumulate {
			beta = 1
		}
		SGEMMMicro(spec.MR, spec.NR, spec.KC, 1, a, spec.LDA, b, spec.LDB, beta, c, spec.LDC)
		for i := 0; i < spec.MR; i++ {
			for j := 0; j < spec.NR; j++ {
				got, want := cISA[i*spec.LDC+j], c[i*spec.LDC+j]
				d := got - want
				if d > 1e-4 || d < -1e-4 {
					t.Fatalf("%s: C(%d,%d) ISA %v vs Go %v", p.Name, i, j, got, want)
				}
			}
		}
		if spec.PackB {
			for k := 0; k < spec.KC; k++ {
				for j := 0; j < spec.NR; j++ {
					if bc[k*spec.NR+j] != b[k*spec.LDB+j] {
						t.Fatalf("%s: Bc(%d,%d) not packed", p.Name, k, j)
					}
				}
			}
		}
	} else {
		a := fillRand64((spec.MR-1)*spec.LDA+spec.KC, rng)
		b := fillRand64((spec.KC-1)*spec.LDB+spec.NR, rng)
		c := fillRand64((spec.MR-1)*spec.LDC+spec.NR, rng)
		cISA := append([]float64(nil), c...)
		streams := [][]float64{a, b, cISA}
		bc := make([]float64, spec.KC*spec.NR)
		if spec.PackB {
			streams = append(streams, bc)
		}
		m, err := vexec.NewMachine(p, nil, streams)
		if err != nil {
			t.Fatal(err)
		}
		m.Run()
		beta := float64(0)
		if spec.Accumulate {
			beta = 1
		}
		DGEMMMicro(spec.MR, spec.NR, spec.KC, 1, a, spec.LDA, b, spec.LDB, beta, c, spec.LDC)
		for i := 0; i < spec.MR; i++ {
			for j := 0; j < spec.NR; j++ {
				d := cISA[i*spec.LDC+j] - c[i*spec.LDC+j]
				if d > 1e-12 || d < -1e-12 {
					t.Fatalf("%s: FP64 C(%d,%d) mismatch", p.Name, i, j)
				}
			}
		}
	}
}

func TestMainISAAgainstGo(t *testing.T) {
	for _, spec := range []MainSpec{
		{Elem: 4, MR: 7, NR: 12, KC: 16, LDA: 16, LDB: 12, LDC: 12},
		{Elem: 4, MR: 7, NR: 12, KC: 8, LDA: 24, LDB: 40, LDC: 20, Accumulate: true},
		{Elem: 4, MR: 7, NR: 12, KC: 8, LDA: 8, LDB: 40, LDC: 12, PackB: true},
		{Elem: 4, MR: 7, NR: 12, KC: 8, LDA: 8, LDB: 40, LDC: 12, PackB: true, Schedule: Batch},
		{Elem: 4, MR: 8, NR: 4, KC: 12, LDA: 12, LDB: 4, LDC: 4},
		{Elem: 4, MR: 4, NR: 16, KC: 8, LDA: 8, LDB: 16, LDC: 16, Schedule: Batch},
		{Elem: 8, MR: 7, NR: 6, KC: 8, LDA: 8, LDB: 6, LDC: 6},
		{Elem: 8, MR: 7, NR: 6, KC: 6, LDA: 10, LDB: 9, LDC: 7, Accumulate: true, Schedule: Batch},
		{Elem: 8, MR: 4, NR: 4, KC: 4, LDA: 4, LDB: 4, LDC: 4, PackB: true},
	} {
		runMainAndCompare(t, spec)
	}
}

func TestMainCMRMatchesEq2(t *testing.T) {
	// Steady-state instruction mix of the 7×12 kernel: per j=4 k-steps,
	// mr+nr = 19 loads and mr*nr = 84 by-element FMAs (Eq. 2 counts 2 flops
	// per FMA: CMR = 2*84/19 per 4 steps ≡ 2*7*12/(7+12)).
	kc := 32
	p := BuildMain(MainSpec{Elem: 4, MR: 7, NR: 12, KC: kc, LDA: kc, LDB: 12, LDC: 12})
	c := p.Count()
	iters := kc / 4
	wantLoads := 19*iters + 0 // prologue A+B loads are part of the first iteration's 19
	if c.Loads != wantLoads {
		t.Fatalf("loads = %d, want %d", c.Loads, wantLoads)
	}
	if c.FMAs != 84*iters {
		t.Fatalf("FMAs = %d, want %d", c.FMAs, 84*iters)
	}
	// Eq. 2 in flops per element: 2*84/19 per unrolled block.
	gotCMR := 2 * float64(c.FMAs) / float64(c.Loads)
	wantCMR := 2 * 7.0 * 12.0 / 19.0
	if diff := gotCMR - wantCMR; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("CMR = %v, want %v", gotCMR, wantCMR)
	}
}

func TestMainRegisterBudget(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("8x16 FP32 (needs 8+4+32 regs) accepted")
		}
	}()
	BuildMain(MainSpec{Elem: 4, MR: 8, NR: 16, KC: 4, LDA: 4, LDB: 16, LDC: 16})
}

func TestMainRejectsUnalignedKC(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("KC not multiple of lanes accepted")
		}
	}()
	BuildMain(MainSpec{Elem: 4, MR: 7, NR: 12, KC: 6, LDA: 6, LDB: 12, LDC: 12})
}

func TestNTPackISAAgainstGo(t *testing.T) {
	for _, spec := range []NTPackSpec{
		{Elem: 4, MR: 7, NB: 3, KC: 8, LDA: 8, LDBT: 8, LDC: 12, NRTotal: 12, JOff: 0},
		{Elem: 4, MR: 7, NB: 3, KC: 8, LDA: 8, LDBT: 8, LDC: 12, NRTotal: 12, JOff: 9},
		{Elem: 4, MR: 7, NB: 3, KC: 8, LDA: 12, LDBT: 10, LDC: 16, NRTotal: 12, JOff: 3, Accum: true},
		{Elem: 4, MR: 2, NB: 3, KC: 8, LDA: 8, LDBT: 8, LDC: 3, NRTotal: 3, JOff: 0}, // MR < lanes exercises the scatter tail
		{Elem: 8, MR: 7, NB: 3, KC: 6, LDA: 6, LDBT: 6, LDC: 6, NRTotal: 6, JOff: 3},
	} {
		p := BuildNTPack(spec)
		rng := mat.NewRNG(uint64(spec.JOff + 77))
		if spec.Elem == 4 {
			a := fillRand32((spec.MR-1)*spec.LDA+spec.KC, rng)
			bT := fillRand32((spec.NB-1)*spec.LDBT+spec.KC, rng)
			c := fillRand32((spec.MR-1)*spec.LDC+spec.JOff+spec.NB, rng)
			cISA := append([]float32(nil), c...)
			bc := make([]float32, (spec.KC-1)*spec.NRTotal+spec.JOff+spec.NB)
			bcISA := append([]float32(nil), bc...)
			if err := vexec.RunF32(p, a, bT, cISA, bcISA); err != nil {
				t.Fatal(err)
			}
			beta := float32(0)
			if spec.Accum {
				beta = 1
			}
			// Go counterpart: C written at column offset JOff.
			SGEMMMicroNTPack(spec.MR, spec.NB, spec.KC, 1, a, spec.LDA, bT, spec.LDBT, beta, c[spec.JOff:], spec.LDC, bc, spec.NRTotal, spec.JOff)
			for i := 0; i < spec.MR; i++ {
				for j := 0; j < spec.NB; j++ {
					got := cISA[i*spec.LDC+spec.JOff+j]
					want := c[spec.JOff+i*spec.LDC+j]
					d := got - want
					if d > 1e-4 || d < -1e-4 {
						t.Fatalf("%s: C(%d,%d) ISA %v vs Go %v", p.Name, i, j, got, want)
					}
				}
			}
			for k := 0; k < spec.KC; k++ {
				for j := 0; j < spec.NB; j++ {
					if bcISA[k*spec.NRTotal+spec.JOff+j] != bT[j*spec.LDBT+k] {
						t.Fatalf("%s: Bc scatter (%d,%d) wrong", p.Name, k, j)
					}
				}
			}
		} else {
			a := fillRand64((spec.MR-1)*spec.LDA+spec.KC, rng)
			bT := fillRand64((spec.NB-1)*spec.LDBT+spec.KC, rng)
			cISA := fillRand64((spec.MR-1)*spec.LDC+spec.JOff+spec.NB, rng)
			cGo := append([]float64(nil), cISA...)
			bcISA := make([]float64, (spec.KC-1)*spec.NRTotal+spec.JOff+spec.NB)
			bcGo := append([]float64(nil), bcISA...)
			if err := vexec.RunF64(p, a, bT, cISA, bcISA); err != nil {
				t.Fatal(err)
			}
			DGEMMMicroNTPack(spec.MR, spec.NB, spec.KC, 1, a, spec.LDA, bT, spec.LDBT, 0, cGo[spec.JOff:], spec.LDC, bcGo, spec.NRTotal, spec.JOff)
			for i := 0; i < spec.MR; i++ {
				for j := 0; j < spec.NB; j++ {
					d := cISA[i*spec.LDC+spec.JOff+j] - cGo[spec.JOff+i*spec.LDC+j]
					if d > 1e-12 || d < -1e-12 {
						t.Fatalf("%s: FP64 C(%d,%d) mismatch", p.Name, i, j)
					}
				}
			}
		}
	}
}

func TestEdgeKernelsComputeSameResult(t *testing.T) {
	kc := 16
	rng := mat.NewRNG(31)
	ap := fillRand32(kc*8, rng) // packed column-major sliver: A(i,k) at k*8+i
	bp := fillRand32(kc*4, rng)
	for _, sched := range []Schedule{Batch, Pipelined} {
		p := BuildEdge8x4(EdgeSpec{Elem: 4, KC: kc, LDAp: 8, LDB: 4, LDC: 4, Schedule: sched})
		c := make([]float32, 8*4)
		if err := vexec.RunF32(p, ap, bp, c); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 8; i++ {
			for j := 0; j < 4; j++ {
				var acc float32
				for k := 0; k < kc; k++ {
					acc += ap[k*8+i] * bp[k*4+j]
				}
				d := c[i*4+j] - acc
				if d > 1e-4 || d < -1e-4 {
					t.Fatalf("%s: C(%d,%d)=%v want %v", p.Name, i, j, c[i*4+j], acc)
				}
			}
		}
	}
}

// TestEdgeSchedulingFig6 verifies the paper's Fig 6 claim under the timing
// model: the interleaved LibShalom schedule beats the batch OpenBLAS
// schedule for the same 8×4 tile whenever loads are not pure L1 hits.
func TestEdgeSchedulingFig6(t *testing.T) {
	build := func(sched Schedule) func(int) *isa.Program {
		return func(kc int) *isa.Program {
			return BuildEdge8x4(EdgeSpec{Elem: 4, KC: kc, LDAp: 8, LDB: 4, LDC: 4, Schedule: sched})
		}
	}
	cfg := defaultCfg()
	cfg.LoadLatency = 12 // edge-case operands rarely sit in L1
	cfg.Window = 12
	batch := uarch.SteadyStateCPI(build(Batch), cfg, 32, 64)
	pipe := uarch.SteadyStateCPI(build(Pipelined), cfg, 32, 64)
	if pipe >= batch {
		t.Fatalf("pipelined CPI %.2f not better than batch %.2f", pipe, batch)
	}
}

// TestMainSchedulePipelinedNotWorse checks the main kernel's schedule is
// never slower than the batch emission under every platform config.
func TestMainSchedulePipelinedNotWorse(t *testing.T) {
	build := func(sched Schedule) func(int) *isa.Program {
		return func(kc int) *isa.Program {
			return BuildMain(MainSpec{Elem: 4, MR: 7, NR: 12, KC: kc, LDA: kc, LDB: 12, LDC: 12, Schedule: sched})
		}
	}
	cfg := defaultCfg()
	cfg.LoadLatency = 10
	cfg.Window = 12
	pipe := uarch.SteadyStateCPI(build(Pipelined), cfg, 16, 32)
	batch := uarch.SteadyStateCPI(build(Batch), cfg, 16, 32)
	if pipe > batch+1e-9 {
		t.Fatalf("pipelined CPI %.2f worse than batch %.2f", pipe, batch)
	}
}

func TestEdgeSpecValidation(t *testing.T) {
	for _, bad := range []EdgeSpec{
		{Elem: 8, KC: 8, LDAp: 8, LDB: 4, LDC: 4},
		{Elem: 4, KC: 7, LDAp: 8, LDB: 4, LDC: 4},
		{Elem: 4, KC: 8, LDAp: 4, LDB: 4, LDC: 4},
	} {
		func() {
			defer func() { recover() }()
			BuildEdge8x4(bad)
			t.Fatalf("bad spec %+v accepted", bad)
		}()
	}
}

func TestNTPackSpecValidation(t *testing.T) {
	for _, bad := range []NTPackSpec{
		{Elem: 4, MR: 7, NB: 4, KC: 8, LDA: 8, LDBT: 8, LDC: 12, NRTotal: 12}, // 7+4+28 > 31
		{Elem: 4, MR: 7, NB: 3, KC: 8, LDA: 8, LDBT: 8, LDC: 12, NRTotal: 12, JOff: 10},
		{Elem: 4, MR: 7, NB: 3, KC: 5, LDA: 8, LDBT: 8, LDC: 12, NRTotal: 12},
	} {
		func() {
			defer func() { recover() }()
			BuildNTPack(bad)
			t.Fatalf("bad spec %+v accepted", bad)
		}()
	}
}

// TestPackOverlapIsNearlyFree is the instruction-level core of §5.3: the
// NN packing micro-kernel (main kernel + interleaved Bc stores) must cost
// almost the same cycles as the plain main kernel — the stores hide under
// the FMA stream on every platform model.
func TestPackOverlapIsNearlyFree(t *testing.T) {
	for _, pl := range platform.All() {
		cfg := uarch.FromPlatform(pl)
		build := func(packB bool) func(int) *isa.Program {
			return func(kc int) *isa.Program {
				return BuildMain(MainSpec{
					Elem: 4, MR: 7, NR: 12, KC: kc,
					LDA: kc, LDB: 64, LDC: 64, PackB: packB, Schedule: Pipelined,
				})
			}
		}
		plain := uarch.SteadyStateCPI(build(false), cfg, 16, 32)
		packed := uarch.SteadyStateCPI(build(true), cfg, 16, 32)
		if packed > plain*1.05 {
			t.Errorf("%s: overlapped packing costs %.1f%% (CPI %.2f vs %.2f); §5.3 claims it hides",
				pl.Name, 100*(packed/plain-1), packed, plain)
		}
	}
}

// TestNTPackKernelEfficiency: the 7×3 inner-product packing kernel (Alg 3)
// must sustain a large fraction of the FMA pipes' throughput despite its
// scatter stores — the design exists precisely to keep packing on the FMA
// critical path rather than as a memory-only pass.
func TestNTPackKernelEfficiency(t *testing.T) {
	for _, pl := range platform.All() {
		cfg := uarch.FromPlatform(pl)
		build := func(kc int) *isa.Program {
			return BuildNTPack(NTPackSpec{
				Elem: 4, MR: 7, NB: 3, KC: kc,
				LDA: kc, LDBT: kc, LDC: 12, NRTotal: 12, JOff: 0,
			})
		}
		cpi := uarch.SteadyStateCPI(build, cfg, 16, 32) // cycles per K step
		// 21 vector FMAs per 4 K steps = 5.25 FMA/step on FMAPipes pipes.
		ideal := 5.25 / float64(pl.FMAPipes)
		if cpi > ideal*1.6 {
			t.Errorf("%s: NT pack kernel CPI %.2f vs ideal %.2f — scatter stores not overlapping", pl.Name, cpi, ideal)
		}
	}
}
