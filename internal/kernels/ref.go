package kernels

// Reference GEMM path: the demotion target of the hardened runtime's
// fallback chain (internal/guard). When a generated fast-path kernel fails
// its static contract, panics, or trips the numeric guard, the driver
// retires the whole kernel family for that (platform, precision) and
// answers through this plain, allocation-free triple loop instead — the
// degradation model generator-backed libraries use: a proven portable
// kernel behind every generated one.
//
// Accumulation is performed in float64 for both precisions (like the
// internal/mat oracle), and beta == 0 overwrites C without reading it,
// matching the driver's semantics for uninitialised output buffers.

type float interface {
	~float32 | ~float64
}

// SGEMMRef computes C = alpha*op(A)*op(B) + beta*C in single precision
// through the portable reference path. op(A) is m×k and op(B) is k×n;
// transposed operands are supplied as stored (A: K×M, B: N×K, row-major),
// exactly as the driver receives them.
func SGEMMRef(transA, transB bool, m, n, k int, alpha float32, a []float32, lda int, b []float32, ldb int, beta float32, c []float32, ldc int) {
	gemmRef(transA, transB, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
}

// DGEMMRef is the double-precision counterpart of SGEMMRef.
func DGEMMRef(transA, transB bool, m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
	gemmRef(transA, transB, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
}

func gemmRef[T float](transA, transB bool, m, n, k int, alpha T, a []T, lda int, b []T, ldb int, beta T, c []T, ldc int) {
	at := func(i, p int) T {
		if transA {
			return a[p*lda+i]
		}
		return a[i*lda+p]
	}
	bt := func(p, j int) T {
		if transB {
			return b[j*ldb+p]
		}
		return b[p*ldb+j]
	}
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var acc float64
			for p := 0; p < k; p++ {
				acc += float64(at(i, p)) * float64(bt(p, j))
			}
			if beta == 0 {
				c[i*ldc+j] = alpha * T(acc)
			} else {
				c[i*ldc+j] = alpha*T(acc) + beta*c[i*ldc+j]
			}
		}
	}
}
