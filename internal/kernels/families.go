package kernels

import (
	"libshalom/internal/isa"
	"libshalom/internal/isacheck"
)

// The generator families: what isacheck's symbolic footprint pass (#6)
// quantifies over. Each registered kernel entry is ONE shape of one of these
// families; the family declares the whole (mr, nr, kc) domain its generator
// admits, the leading-dimension laws tying the operand layouts to the shape,
// and — written from the generator's loop structure, not copied from the
// contract — the symbolic spans its loads and stores cover. The pass proves
// containment and coverage for every shape in the domain and anchors the
// declared model against the real generator at the domain corners.
//
// Domains are chosen so every lattice point is feasible under the
// generator's own validation (register budget, lane congruences): the main
// FP32 box tops out at 7×12 (Eq. 1's 31-register optimum), the FP64 box at
// 7×6, the NT pack box at 7×3 (+1 reduce register), and the edge family
// fixes the 8×4 tile and varies only the panel depth.

// mainModel is the emission model shared by every BuildMain schedule: the
// k-block A reloads tile [0, kc) per row at stride LDA, the per-row B loads
// tile [0, nr) per k at stride LDB, the C tile is loaded (when accumulating)
// and stored once, and the folded packing stores the consumed B sliver
// densely at stride nr.
func mainModel(lda, ldb, ldc isacheck.Expr, accumulate, packB bool) map[isa.StreamKind]isacheck.SymFootprint {
	zero, mr, nr, kc := isacheck.EConst(0), isacheck.EMR(), isacheck.ENR(), isacheck.EKC()
	m := map[isa.StreamKind]isacheck.SymFootprint{
		isa.StreamA: {Reads: []isacheck.SymSpan{{Lo: zero, Hi: kc, Stride: lda, Count: mr}}},
		isa.StreamB: {Reads: []isacheck.SymSpan{{Lo: zero, Hi: nr, Stride: ldb, Count: kc}}},
	}
	cTile := isacheck.SymSpan{Lo: zero, Hi: nr, Stride: ldc, Count: mr}
	cf := isacheck.SymFootprint{Writes: []isacheck.SymSpan{cTile}}
	if accumulate {
		cf.Reads = []isacheck.SymSpan{cTile}
	}
	m[isa.StreamC] = cf
	if packB {
		m[isa.StreamBc] = isacheck.SymFootprint{
			Writes: []isacheck.SymSpan{{Lo: zero, Hi: nr, Stride: nr, Count: kc}}}
	}
	return m
}

// ntpackModel is BuildNTPack's emission model: vector loads tile A and the
// stored-transposed B along K, the scatter stores land on columns
// [joff, joff+nb) of the KC×NRTotal Bc panel, and the reduce epilogue writes
// the same column group of the C tile.
func ntpackModel(lda, ldb, ldc, nrTotal, joff isacheck.Expr) map[isa.StreamKind]isacheck.SymFootprint {
	zero, mr, nr, kc := isacheck.EConst(0), isacheck.EMR(), isacheck.ENR(), isacheck.EKC()
	jHi := joff.Add(nr)
	return map[isa.StreamKind]isacheck.SymFootprint{
		isa.StreamA:  {Reads: []isacheck.SymSpan{{Lo: zero, Hi: kc, Stride: lda, Count: mr}}},
		isa.StreamB:  {Reads: []isacheck.SymSpan{{Lo: zero, Hi: kc, Stride: ldb, Count: nr}}},
		isa.StreamC:  {Writes: []isacheck.SymSpan{{Lo: joff, Hi: jHi, Stride: ldc, Count: mr}}},
		isa.StreamBc: {Writes: []isacheck.SymSpan{{Lo: joff, Hi: jHi, Stride: nrTotal, Count: kc}}},
	}
}

// edgeModel is BuildEdge8x4's emission model, both schedules: per k the A
// column pair covers [0, 8) at stride LDAp, B covers [0, 4) at stride LDB
// (one vector load pipelined, two scalar pairs batched — same elements), and
// the lane stores cover the 8×4 C tile.
func edgeModel(lda, ldb, ldc isacheck.Expr) map[isa.StreamKind]isacheck.SymFootprint {
	zero, mr, nr, kc := isacheck.EConst(0), isacheck.EMR(), isacheck.ENR(), isacheck.EKC()
	return map[isa.StreamKind]isacheck.SymFootprint{
		isa.StreamA: {Reads: []isacheck.SymSpan{{Lo: zero, Hi: mr, Stride: lda, Count: kc}}},
		isa.StreamB: {Reads: []isacheck.SymSpan{{Lo: zero, Hi: nr, Stride: ldb, Count: kc}}},
		isa.StreamC: {Writes: []isacheck.SymSpan{{Lo: zero, Hi: nr, Stride: ldc, Count: mr}}},
	}
}

func init() {
	kc, nr := isacheck.EKC(), isacheck.ENR()

	// Main outer-product families: dense A slivers (LDA = kc), packed B
	// (LDB = nr), tight C (LDC = nr). The FP32 box admits every tile up to
	// the 7×12 optimum; FP64 up to 7×6.
	mainF32 := isacheck.Domain{
		MR: isacheck.Range{Min: 1, Max: 7},
		NR: isacheck.Range{Min: 4, Max: 12, Step: 4},
		KC: isacheck.Range{Min: 4, Max: 16, Step: 4},
	}
	buildMainAt := func(elem int, packB bool, sched Schedule) func(isacheck.Shape) *isa.Program {
		return func(s isacheck.Shape) *isa.Program {
			return BuildMain(MainSpec{Elem: elem, MR: s.MR, NR: s.NR, KC: s.KC,
				LDA: s.KC, LDB: s.NR, LDC: s.NR,
				Accumulate: true, PackB: packB, Schedule: sched})
		}
	}
	isacheck.RegisterFamily(isacheck.Family{
		Name: "main-pipelined-f32", Elem: 4, Kind: isacheck.KindMain,
		Domain: mainF32, LDA: kc, LDB: nr, LDC: nr, Accumulate: true,
		Model:   mainModel(kc, nr, nr, true, false),
		BuildAt: buildMainAt(4, false, Pipelined),
	})
	isacheck.RegisterFamily(isacheck.Family{
		Name: "packmain-pipelined-f32", Elem: 4, Kind: isacheck.KindMain,
		Domain: mainF32, LDA: kc, LDB: nr, LDC: nr, Accumulate: true, PackB: true,
		Model:   mainModel(kc, nr, nr, true, true),
		BuildAt: buildMainAt(4, true, Pipelined),
	})
	isacheck.RegisterFamily(isacheck.Family{
		Name: "main-pipelined-f64", Elem: 8, Kind: isacheck.KindMain,
		Domain: isacheck.Domain{
			MR: isacheck.Range{Min: 1, Max: 7},
			NR: isacheck.Range{Min: 2, Max: 6, Step: 2},
			KC: isacheck.Range{Min: 2, Max: 8, Step: 2},
		},
		LDA: kc, LDB: nr, LDC: nr, Accumulate: true,
		Model:   mainModel(kc, nr, nr, true, false),
		BuildAt: buildMainAt(8, false, Pipelined),
	})
	// The batch-scheduled main family covers the OpenBLAS 8×4 and ARMPL 8×8
	// baseline shapes: same footprint law, Fig 6a instruction order.
	isacheck.RegisterFamily(isacheck.Family{
		Name: "main-batch-f32", Elem: 4, Kind: isacheck.KindMain,
		Domain: isacheck.Domain{
			MR: isacheck.Range{Min: 1, Max: 8},
			NR: isacheck.Range{Min: 4, Max: 8, Step: 4},
			KC: isacheck.Range{Min: 4, Max: 8, Step: 4},
		},
		LDA: kc, LDB: nr, LDC: nr, Accumulate: true,
		Model:   mainModel(kc, nr, nr, true, false),
		BuildAt: buildMainAt(4, false, Batch),
	})

	// NT-mode packing families: dense A and stored-transposed B along K
	// (LDA = LDBT = kc), with the Bc panel and C sized for the full
	// NRTotal/nb call sequence — NRTotal = 4·nb (FP32, filling the 7×12
	// main kernel's panel) or 2·nb (FP64, the 7×6 panel).
	ntpackAt := func(elem, widen int) func(isacheck.Shape) *isa.Program {
		return func(s isacheck.Shape) *isa.Program {
			return BuildNTPack(NTPackSpec{Elem: elem, MR: s.MR, NB: s.NR, KC: s.KC,
				LDA: s.KC, LDBT: s.KC, LDC: widen * s.NR,
				NRTotal: widen * s.NR, JOff: 0})
		}
	}
	isacheck.RegisterFamily(isacheck.Family{
		Name: "ntpack-f32", Elem: 4, Kind: isacheck.KindNTPack,
		Domain: isacheck.Domain{
			MR: isacheck.Range{Min: 1, Max: 7},
			NR: isacheck.Range{Min: 1, Max: 3},
			KC: isacheck.Range{Min: 4, Max: 8, Step: 4},
		},
		LDA: kc, LDB: kc, LDC: nr.MulC(4), NRTotal: nr.MulC(4),
		Model:   ntpackModel(kc, kc, nr.MulC(4), nr.MulC(4), isacheck.EConst(0)),
		BuildAt: ntpackAt(4, 4),
	})
	isacheck.RegisterFamily(isacheck.Family{
		Name: "ntpack-f64", Elem: 8, Kind: isacheck.KindNTPack,
		Domain: isacheck.Domain{
			MR: isacheck.Range{Min: 1, Max: 7},
			NR: isacheck.Range{Min: 1, Max: 3},
			KC: isacheck.Range{Min: 2, Max: 8, Step: 2},
		},
		LDA: kc, LDB: kc, LDC: nr.MulC(2), NRTotal: nr.MulC(2),
		Model:   ntpackModel(kc, kc, nr.MulC(2), nr.MulC(2), isacheck.EConst(0)),
		BuildAt: ntpackAt(8, 2),
	})

	// Edge families: the 8×4 tile is fixed (Fig 6's register plan), the
	// panel depth varies. Packed operands: LDAp = 8, LDB = LDC = 4.
	edgeDomain := isacheck.Domain{
		MR: isacheck.Range{Min: 8, Max: 8},
		NR: isacheck.Range{Min: 4, Max: 4},
		KC: isacheck.Range{Min: 4, Max: 16, Step: 4},
	}
	c8, c4 := isacheck.EConst(8), isacheck.EConst(4)
	edgeAt := func(sched Schedule) func(isacheck.Shape) *isa.Program {
		return func(s isacheck.Shape) *isa.Program {
			return BuildEdge8x4(EdgeSpec{Elem: 4, KC: s.KC,
				LDAp: 8, LDB: 4, LDC: 4, Schedule: sched})
		}
	}
	isacheck.RegisterFamily(isacheck.Family{
		Name: "edge-pipelined-f32", Elem: 4, Kind: isacheck.KindEdge,
		Domain: edgeDomain, LDA: c8, LDB: c4, LDC: c4,
		Model:   edgeModel(c8, c4, c4),
		BuildAt: edgeAt(Pipelined),
	})
	isacheck.RegisterFamily(isacheck.Family{
		Name: "edge-batch-f32", Elem: 4, Kind: isacheck.KindEdge,
		Domain: edgeDomain, LDA: c8, LDB: c4, LDC: c4,
		Model:   edgeModel(c8, c4, c4),
		BuildAt: edgeAt(Batch),
	})
}
