package kernels

import (
	"libshalom/internal/isa"
	"libshalom/internal/isacheck"
)

// The LibShalom kernel catalogue: every generator self-registers with the
// contract it claims, so shalom-lint and the verifier tests see each emitted
// program without a hand-maintained list. KC values are representative
// panel depths (any multiple of the lane count produces the same schedule
// pattern); the schedule thresholds are pinned to the measured steady-state
// metrics of these programs with a little headroom, so a generator
// regression that batches loads or shortens a load→use distance trips the
// depdist/pressure passes.
func init() {
	// Main outer-product micro-kernel, FP32 7×12 (§5.2's Eq. 1 optimum),
	// pipelined schedule, consuming a packed B (LDB = NR).
	isacheck.Register(isacheck.Entry{
		Name:      "libshalom/main-7x12-f32",
		Family:    "libshalom",
		SymFamily: "main-pipelined-f32",
		SymShape:  isacheck.Shape{MR: 7, NR: 12, KC: 8},
		Contract: isacheck.Contract{
			Kind: isacheck.KindMain, Elem: 4,
			MR: 7, NR: 12, KC: 8,
			LDA: 8, LDB: 12, LDC: 12,
			Accumulate: true,
			Pipelined:  true,
			// Once per lane-block the kernel reloads all MR A registers,
			// alternating load/FMA; a window catching that burst sees
			// ~50% loads — exactly Phytium's 2-of-4 issue-slot capacity.
			// Measured worst window: 1.12 (9 loads / capacity 8).
			MaxLoadPressure: 1.15,
		},
		Build: func() *isa.Program {
			return BuildMain(MainSpec{Elem: 4, MR: 7, NR: 12, KC: 8,
				LDA: 8, LDB: 12, LDC: 12, Accumulate: true, Schedule: Pipelined})
		},
	})
	// The same kernel with the folded B packing of §5.3: the consumed B
	// sliver is stored into Bc between the FMAs.
	isacheck.Register(isacheck.Entry{
		Name:      "libshalom/packmain-7x12-f32",
		Family:    "libshalom",
		SymFamily: "packmain-pipelined-f32",
		SymShape:  isacheck.Shape{MR: 7, NR: 12, KC: 8},
		Contract: isacheck.Contract{
			Kind: isacheck.KindMain, Elem: 4,
			MR: 7, NR: 12, KC: 8,
			LDA: 8, LDB: 12, LDC: 12,
			Accumulate: true, PackB: true,
			Pipelined: true,
			// The folded Bc stores spread the A-reload burst out a little;
			// measured worst window on Phytium is exactly saturated (1.00).
			MaxLoadPressure: 1.05,
		},
		Build: func() *isa.Program {
			return BuildMain(MainSpec{Elem: 4, MR: 7, NR: 12, KC: 8,
				LDA: 8, LDB: 12, LDC: 12, Accumulate: true, PackB: true, Schedule: Pipelined})
		},
	})
	// FP64 main kernel, 7×6 (two lanes per register, Eq. 1's FP64 optimum).
	isacheck.Register(isacheck.Entry{
		Name:      "libshalom/main-7x6-f64",
		Family:    "libshalom",
		SymFamily: "main-pipelined-f64",
		SymShape:  isacheck.Shape{MR: 7, NR: 6, KC: 8},
		Contract: isacheck.Contract{
			Kind: isacheck.KindMain, Elem: 8,
			MR: 7, NR: 6, KC: 8,
			LDA: 8, LDB: 6, LDC: 6,
			Accumulate: true,
			Pipelined:  true,
			// Same A-reload burst as the FP32 main kernel (measured 1.12).
			MaxLoadPressure: 1.15,
		},
		Build: func() *isa.Program {
			return BuildMain(MainSpec{Elem: 8, MR: 7, NR: 6, KC: 8,
				LDA: 8, LDB: 6, LDC: 6, Accumulate: true, Schedule: Pipelined})
		},
	})
	// NT-mode inner-product packing micro-kernel (Fig 5, Alg 3), FP32 7×3,
	// filling columns 0–2 of a KC×12 Bc panel. An inner-product kernel
	// legitimately batches its MR+NB operand loads at the top of each
	// K-block — the §5.4 pipelined discipline does not apply — so the
	// contract declares the honest batched-load ceilings instead.
	isacheck.Register(isacheck.Entry{
		Name:      "libshalom/ntpack-7x3-f32",
		Family:    "libshalom",
		SymFamily: "ntpack-f32",
		SymShape:  isacheck.Shape{MR: 7, NR: 3, KC: 8},
		Contract: isacheck.Contract{
			Kind: isacheck.KindNTPack, Elem: 4,
			MR: 7, NR: 3, KC: 8,
			LDA: 8, LDB: 8, LDC: 12,
			NRTotal: 12, JOff: 0,
			MinLoadUseDist:  1,
			MaxLoadRun:      10,
			MaxLoadPressure: 2.0,
		},
		Build: func() *isa.Program {
			return BuildNTPack(NTPackSpec{Elem: 4, MR: 7, NB: 3, KC: 8,
				LDA: 8, LDBT: 8, LDC: 12, NRTotal: 12, JOff: 0})
		},
	})
	// FP64 NT packing kernel filling a KC×6 panel.
	isacheck.Register(isacheck.Entry{
		Name:      "libshalom/ntpack-7x3-f64",
		Family:    "libshalom",
		SymFamily: "ntpack-f64",
		SymShape:  isacheck.Shape{MR: 7, NR: 3, KC: 8},
		Contract: isacheck.Contract{
			Kind: isacheck.KindNTPack, Elem: 8,
			MR: 7, NR: 3, KC: 8,
			LDA: 8, LDB: 8, LDC: 6,
			NRTotal: 6, JOff: 0,
			MinLoadUseDist:  1,
			MaxLoadRun:      10,
			MaxLoadPressure: 2.0,
		},
		Build: func() *isa.Program {
			return BuildNTPack(NTPackSpec{Elem: 8, MR: 7, NB: 3, KC: 8,
				LDA: 8, LDBT: 8, LDC: 6, NRTotal: 6, JOff: 0})
		},
	})
	// The 8×4 edge kernel in LibShalom's pipelined arrangement (Fig 6b):
	// the §5.4 claim this verifier makes static.
	isacheck.Register(isacheck.Entry{
		Name:      "libshalom/edge-8x4-pipelined-f32",
		Family:    "libshalom",
		SymFamily: "edge-pipelined-f32",
		SymShape:  isacheck.Shape{MR: 8, NR: 4, KC: 16},
		Contract: isacheck.Contract{
			Kind: isacheck.KindEdge, Elem: 4,
			MR: 8, NR: 4, KC: 16,
			LDA: 8, LDB: 4, LDC: 4,
			Pipelined: true,
		},
		Build: func() *isa.Program {
			return BuildEdge8x4(EdgeSpec{Elem: 4, KC: 16,
				LDAp: 8, LDB: 4, LDC: 4, Schedule: Pipelined})
		},
	})
}
