package kernels

import (
	"testing"
	"testing/quick"

	"libshalom/internal/mat"
)

// refTile computes the mr×nr tile oracle in float64.
func refTile32(mr, nr, kc int, alpha float32, a []float32, lda int, b []float32, ldb int, beta float32, c []float32, ldc int) []float32 {
	out := make([]float32, mr*nr)
	for i := 0; i < mr; i++ {
		for j := 0; j < nr; j++ {
			var acc float64
			for k := 0; k < kc; k++ {
				acc += float64(a[i*lda+k]) * float64(b[k*ldb+j])
			}
			v := float64(alpha) * acc
			if beta != 0 {
				v += float64(beta) * float64(c[i*ldc+j])
			}
			out[i*nr+j] = float32(v)
		}
	}
	return out
}

func fillRand32(n int, rng *mat.RNG) []float32 {
	s := make([]float32, n)
	for i := range s {
		s[i] = rng.Float32() - 0.5
	}
	return s
}

func fillRand64(n int, rng *mat.RNG) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = rng.Float64() - 0.5
	}
	return s
}

func TestSGEMMMicroMatchesRef(t *testing.T) {
	rng := mat.NewRNG(1)
	for _, tc := range []struct{ mr, nr, kc, lda, ldb, ldc int }{
		{7, 12, 16, 16, 12, 12}, // specialized path, packed-like strides
		{7, 12, 8, 20, 30, 40},  // specialized path, loose strides
		{3, 5, 7, 9, 6, 8},      // generic edge tile
		{1, 1, 1, 1, 1, 1},
		{8, 4, 12, 12, 4, 4},
	} {
		a := fillRand32(tc.mr*tc.lda, rng)
		b := fillRand32(tc.kc*tc.ldb, rng)
		c := fillRand32(tc.mr*tc.ldc, rng)
		for _, ab := range []struct{ alpha, beta float32 }{{1, 0}, {1, 1}, {2.5, -0.5}, {0, 2}} {
			cc := append([]float32(nil), c...)
			want := refTile32(tc.mr, tc.nr, tc.kc, ab.alpha, a, tc.lda, b, tc.ldb, ab.beta, cc, tc.ldc)
			SGEMMMicro(tc.mr, tc.nr, tc.kc, ab.alpha, a, tc.lda, b, tc.ldb, ab.beta, cc, tc.ldc)
			for i := 0; i < tc.mr; i++ {
				for j := 0; j < tc.nr; j++ {
					got, w := cc[i*tc.ldc+j], want[i*tc.nr+j]
					if diff := got - w; diff > 1e-4 || diff < -1e-4 {
						t.Fatalf("tile %dx%dx%d α=%v β=%v: C(%d,%d)=%v want %v", tc.mr, tc.nr, tc.kc, ab.alpha, ab.beta, i, j, got, w)
					}
				}
			}
		}
	}
}

func TestSGEMMMicroBetaZeroIgnoresGarbage(t *testing.T) {
	// C pre-filled with NaN-like garbage must be fully overwritten.
	a := []float32{1, 2}
	b := []float32{3, 4}
	c := []float32{9e30, 9e30}
	SGEMMMicro(1, 1, 2, 1, a, 2, b, 1, 0, c, 1)
	if c[0] != 11 {
		t.Fatalf("c[0] = %v, want 11", c[0])
	}
	if c[1] != 9e30 {
		t.Fatal("kernel wrote outside its tile")
	}
}

func TestSpecialized7x12EqualsGeneric(t *testing.T) {
	f := func(seed uint16) bool {
		rng := mat.NewRNG(uint64(seed) + 7)
		kc := 4 * (rng.Intn(8) + 1)
		a := fillRand32(7*kc, rng)
		b := fillRand32(kc*12, rng)
		c1 := fillRand32(7*12, rng)
		c2 := append([]float32(nil), c1...)
		sgemmMicro7x12(kc, 1.5, a, kc, b, 12, 0.5, c1, 12)
		// Force the generic path with a shape the dispatcher won't special-case
		// by calling the scalar loop inline.
		for i := 0; i < 7; i++ {
			for j := 0; j < 12; j++ {
				var acc float32
				for k := 0; k < kc; k++ {
					acc += a[i*kc+k] * b[k*12+j]
				}
				c2[i*12+j] = 1.5*acc + 0.5*c2[i*12+j]
			}
		}
		for i := range c1 {
			d := c1[i] - c2[i]
			if d > 1e-4 || d < -1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDGEMMMicroMatchesRef(t *testing.T) {
	rng := mat.NewRNG(3)
	for _, tc := range []struct{ mr, nr, kc int }{{7, 6, 8}, {7, 6, 2}, {4, 3, 5}, {2, 6, 10}} {
		lda, ldb, ldc := tc.kc+2, tc.nr+1, tc.nr+3
		a := fillRand64(tc.mr*lda, rng)
		b := fillRand64(tc.kc*ldb, rng)
		c := fillRand64(tc.mr*ldc, rng)
		want := make([]float64, tc.mr*tc.nr)
		for i := 0; i < tc.mr; i++ {
			for j := 0; j < tc.nr; j++ {
				var acc float64
				for k := 0; k < tc.kc; k++ {
					acc += a[i*lda+k] * b[k*ldb+j]
				}
				want[i*tc.nr+j] = 2*acc - c[i*ldc+j]
			}
		}
		DGEMMMicro(tc.mr, tc.nr, tc.kc, 2, a, lda, b, ldb, -1, c, ldc)
		for i := 0; i < tc.mr; i++ {
			for j := 0; j < tc.nr; j++ {
				d := c[i*ldc+j] - want[i*tc.nr+j]
				if d > 1e-12 || d < -1e-12 {
					t.Fatalf("FP64 tile %dx%dx%d C(%d,%d)=%v want %v", tc.mr, tc.nr, tc.kc, i, j, c[i*ldc+j], want[i*tc.nr+j])
				}
			}
		}
	}
}

func TestPackBKernelsPackAndCompute(t *testing.T) {
	rng := mat.NewRNG(9)
	mr, nr, kc, nrTotal, jOff := 7, 12, 8, 24, 12
	a := fillRand32(mr*kc, rng)
	b := fillRand32(kc*40, rng)
	ldb := 40
	c := fillRand32(mr*nr, rng)
	cc := append([]float32(nil), c...)
	bc := make([]float32, kc*nrTotal)
	SGEMMMicroPackB(mr, nr, kc, 1, a, kc, b, ldb, 1, cc, nr, bc, nrTotal, jOff)
	// Compute must match the plain kernel.
	SGEMMMicro(mr, nr, kc, 1, a, kc, b, ldb, 1, c, nr)
	for i := range c {
		if c[i] != cc[i] {
			t.Fatal("PackB kernel computed different C")
		}
	}
	// Packed layout: bc[k*nrTotal + jOff + j] == b[k*ldb + j].
	for k := 0; k < kc; k++ {
		for j := 0; j < nr; j++ {
			if bc[k*nrTotal+jOff+j] != b[k*ldb+j] {
				t.Fatalf("Bc(%d,%d) misplaced", k, j)
			}
		}
	}
}

func TestNTKernelsMatchTransposedRef(t *testing.T) {
	rng := mat.NewRNG(12)
	mr, nr, kc := 7, 3, 8
	a := fillRand32(mr*kc, rng)
	bT := fillRand32(nr*kc, rng) // stored N×K
	c := make([]float32, mr*nr)
	SGEMMMicroNT(mr, nr, kc, 1, a, kc, bT, kc, 0, c, nr)
	for i := 0; i < mr; i++ {
		for j := 0; j < nr; j++ {
			var acc float32
			for k := 0; k < kc; k++ {
				acc += a[i*kc+k] * bT[j*kc+k]
			}
			d := c[i*nr+j] - acc
			if d > 1e-4 || d < -1e-4 {
				t.Fatalf("NT C(%d,%d)=%v want %v", i, j, c[i*nr+j], acc)
			}
		}
	}
}

func TestNTPackScatterLayout(t *testing.T) {
	rng := mat.NewRNG(13)
	mr, nb, kc, nrTotal := 7, 3, 8, 12
	a := fillRand32(mr*kc, rng)
	c := make([]float32, mr*nrTotal)
	bc := make([]float32, kc*nrTotal)
	// Fill the full 12-wide Bc with four 3-column calls, as §5.3.2 says.
	fullBT := fillRand32(nrTotal*kc, rng)
	for jOff := 0; jOff < nrTotal; jOff += nb {
		SGEMMMicroNTPack(mr, nb, kc, 1, a, kc, fullBT[jOff*kc:], kc, 0, c[jOff:], nrTotal, bc, nrTotal, jOff)
	}
	// Bc must now be the row-major K×N image of the transposed operand.
	for k := 0; k < kc; k++ {
		for j := 0; j < nrTotal; j++ {
			if bc[k*nrTotal+j] != fullBT[j*kc+k] {
				t.Fatalf("Bc(%d,%d) = %v, want B^T element %v", k, j, bc[k*nrTotal+j], fullBT[j*kc+k])
			}
		}
	}
	// And the packed buffer must now drive the main kernel to the same C.
	c2 := make([]float32, mr*nrTotal)
	SGEMMMicro(mr, nrTotal, kc, 1, a, kc, bc, nrTotal, 0, c2, nrTotal)
	for i := range c2 {
		d := c2[i] - c[i]
		if d > 1e-4 || d < -1e-4 {
			t.Fatalf("main kernel on packed Bc diverges at %d: %v vs %v", i, c2[i], c[i])
		}
	}
}

func TestDGEMMMicroNTPackParity(t *testing.T) {
	rng := mat.NewRNG(21)
	mr, nb, kc, nrTotal := 7, 3, 6, 6
	a := fillRand64(mr*kc, rng)
	bT := fillRand64(nrTotal*kc, rng)
	c := make([]float64, mr*nrTotal)
	bc := make([]float64, kc*nrTotal)
	for jOff := 0; jOff < nrTotal; jOff += nb {
		DGEMMMicroNTPack(mr, nb, kc, 1, a, kc, bT[jOff*kc:], kc, 0, c[jOff:], nrTotal, bc, nrTotal, jOff)
	}
	c2 := make([]float64, mr*nrTotal)
	DGEMMMicro(mr, nrTotal, kc, 1, a, kc, bc, nrTotal, 0, c2, nrTotal)
	for i := range c2 {
		d := c2[i] - c[i]
		if d > 1e-12 || d < -1e-12 {
			t.Fatal("FP64 NT pack path diverges from main kernel on packed buffer")
		}
	}
}

func TestScaleRows(t *testing.T) {
	c := []float32{1, 2, 3, 4, 5, 6}
	SScaleRows(2, 2, 2, c, 3) // scales (0,0),(0,1),(1,0),(1,1)
	want := []float32{2, 4, 3, 8, 10, 6}
	for i := range want {
		if c[i] != want[i] {
			t.Fatalf("c = %v", c)
		}
	}
	SScaleRows(2, 2, 0, c, 3)
	if c[0] != 0 || c[1] != 0 || c[2] != 3 {
		t.Fatal("beta=0 scale wrong")
	}
	d := []float64{1, 2}
	DScaleRows(1, 2, 3, d, 2)
	if d[0] != 3 || d[1] != 6 {
		t.Fatal("FP64 scale wrong")
	}
	DScaleRows(1, 2, 0, d, 2)
	if d[0] != 0 || d[1] != 0 {
		t.Fatal("FP64 beta=0 scale wrong")
	}
}
