package kernels

import (
	"os"
	"path/filepath"
	"testing"
)

// The golden listings in testdata/ are this repository's analogue of the
// paper's published assembly (Alg 2/3, Fig 6a/6b): they document the exact
// instruction streams the generators emit and pin them against accidental
// regression. Regenerate deliberately if the design changes (the test
// failure message shows the diff location).
func TestGoldenListings(t *testing.T) {
	cases := []struct {
		file  string
		build func() string
	}{
		{"main_7x12_kc4.txt", func() string {
			return BuildMain(MainSpec{Elem: 4, MR: 7, NR: 12, KC: 4, LDA: 4, LDB: 12, LDC: 12, Accumulate: true, Schedule: Pipelined}).Disassemble()
		}},
		{"ntpack_7x3_kc4.txt", func() string {
			return BuildNTPack(NTPackSpec{Elem: 4, MR: 7, NB: 3, KC: 4, LDA: 4, LDBT: 4, LDC: 12, NRTotal: 12, JOff: 0}).Disassemble()
		}},
		{"edge8x4_batch_kc4.txt", func() string {
			return BuildEdge8x4(EdgeSpec{Elem: 4, KC: 4, LDAp: 8, LDB: 4, LDC: 4, Schedule: Batch}).Disassemble()
		}},
		{"edge8x4_pipelined_kc4.txt", func() string {
			return BuildEdge8x4(EdgeSpec{Elem: 4, KC: 4, LDAp: 8, LDB: 4, LDC: 4, Schedule: Pipelined}).Disassemble()
		}},
	}
	for _, c := range cases {
		want, err := os.ReadFile(filepath.Join("testdata", c.file))
		if err != nil {
			t.Fatalf("%s: %v", c.file, err)
		}
		got := c.build()
		if got != string(want) {
			line := firstDiffLine(got, string(want))
			t.Errorf("%s: emitted listing diverged from golden at line %d", c.file, line)
		}
	}
}

func firstDiffLine(a, b string) int {
	line := 1
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return line
		}
		if a[i] == '\n' {
			line++
		}
	}
	return line
}

// TestGoldenBatchMatchesFig6a sanity-checks that the batch golden listing
// carries the structural signature of the paper's Fig 6a: two ldp pairs and
// two ldr q loads immediately before the eight fmla of each iteration.
func TestGoldenBatchMatchesFig6a(t *testing.T) {
	p := BuildEdge8x4(EdgeSpec{Elem: 4, KC: 4, LDAp: 8, LDB: 4, LDC: 4, Schedule: Batch})
	// Skip the 8 accumulator zeroes; then each iteration must be
	// [ldp ldp ldr ldr fmla×8].
	code := p.Code[8:]
	for it := 0; it < 4; it++ {
		base := it * 12
		ops := []string{"ldp.s", "ldp.s", "ldr.q", "ldr.q"}
		for i, want := range ops {
			if code[base+i].Op.String() != want {
				t.Fatalf("iteration %d slot %d = %s, want %s", it, i, code[base+i].Op, want)
			}
		}
		for i := 4; i < 12; i++ {
			if code[base+i].Op.String() != "fmla.elem" {
				t.Fatalf("iteration %d slot %d = %s, want fmla.elem", it, i, code[base+i].Op)
			}
		}
	}
}

// TestGoldenPipelinedInterleaves checks the Fig 6b signature: loads appear
// between the FMAs of an iteration, never as a leading batch.
func TestGoldenPipelinedInterleaves(t *testing.T) {
	p := BuildEdge8x4(EdgeSpec{Elem: 4, KC: 8, LDAp: 8, LDB: 4, LDC: 4, Schedule: Pipelined})
	// After the prologue (8 zeroes + 3 loads), scan the steady state: no
	// two consecutive loads.
	body := p.Code[11:]
	run := 0
	for _, in := range body {
		if in.Op.IsLoad() {
			run++
			if run >= 2 {
				t.Fatal("pipelined edge kernel emits a load batch")
			}
		} else {
			run = 0
		}
	}
}
