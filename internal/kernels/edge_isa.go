package kernels

import (
	"fmt"

	"libshalom/internal/isa"
)

// EdgeSpec configures the 8×4 edge-case micro-kernel pair of Fig 6. Both
// variants compute the same C(0:8, 0:4) += A·B tile over KC rank-1 updates;
// they differ only in instruction selection and scheduling:
//
//   - Batch (Fig 6a, the OpenBLAS ARMv8 kernel): B elements arrive through
//     `ldp s` scalar-pair loads and A through `ldr q` loads emitted in a
//     batch at the top of each iteration, immediately ahead of the FMAs
//     that consume them.
//   - Pipelined (Fig 6b, LibShalom): B arrives as one `ldr q` vector whose
//     lanes feed the FMAs via by-element addressing, and the loads for the
//     next iteration are interleaved between the current FMAs, giving every
//     producer→consumer pair a full iteration of distance.
//
// A is addressed column-major within the sliver (a packed M-direction panel:
// A(i,k) at k·LDAp+i), matching the `ldr q4/q5, [pA]` column loads of the
// figure. B is the packed row-major KC×4 sliver.
type EdgeSpec struct {
	Elem     int
	KC       int
	LDAp     int // packed A leading dimension (≥ 8): A(i,k) at k*LDAp+i
	LDB      int // packed B leading dimension (≥ 4): B(k,j) at k*LDB+j
	LDC      int
	Schedule Schedule
}

const (
	edgeMR = 8
	edgeNR = 4
)

func (s EdgeSpec) validate() error {
	l := 16 / s.Elem
	if s.Elem != 4 {
		return fmt.Errorf("kernels: edge kernel pair is defined for FP32 (got elem %d)", s.Elem)
	}
	if s.KC < 1 || s.KC%l != 0 {
		return fmt.Errorf("kernels: edge KC %d must be a positive multiple of %d", s.KC, l)
	}
	if s.LDAp < edgeMR || s.LDB < edgeNR || s.LDC < edgeNR {
		return fmt.Errorf("kernels: edge leading dimensions too small")
	}
	return nil
}

// BuildEdge8x4 emits one of the Fig 6 kernels. Register plan mirrors the
// figure: V4/V5 (and V6/V7 for the pipelined double buffer) hold the A
// column halves, V12–V15 (batch) or V0/V1 (pipelined) hold B, and
// V16,17,20,21,24,25,28,29 are the eight accumulators.
func BuildEdge8x4(spec EdgeSpec) *isa.Program {
	if err := spec.validate(); err != nil {
		panic(err)
	}
	b := isa.NewBuilder(fmt.Sprintf("edge8x4_kc%d_%s", spec.KC, spec.Schedule), spec.Elem)
	sA := b.Stream("A", isa.StreamA, (spec.KC-1)*spec.LDAp+edgeMR, spec.LDAp == edgeMR)
	sB := b.Stream("B", isa.StreamB, (spec.KC-1)*spec.LDB+edgeNR, spec.LDB == edgeNR)
	sC := b.Stream("C", isa.StreamC, (edgeMR-1)*spec.LDC+edgeNR, false)

	acc := [8]int{16, 17, 20, 21, 24, 25, 28, 29} // acc[2j+h]: C(4h:4h+4, j)
	for _, r := range acc {
		b.Zero(r)
	}

	if spec.Schedule == Batch {
		// Fig 6a: per iteration, two ldp pairs for B, two ldr q for A,
		// then the eight FMAs.
		for k := 0; k < spec.KC; k++ {
			b.LdScalarPair(12, 13, sB, k*spec.LDB)
			b.LdScalarPair(14, 15, sB, k*spec.LDB+2)
			b.LdVec(4, sA, k*spec.LDAp)
			b.LdVec(5, sA, k*spec.LDAp+4)
			for j := 0; j < 4; j++ {
				b.FmlaElem(acc[2*j], 4, 12+j, 0)
				b.FmlaElem(acc[2*j+1], 5, 12+j, 0)
			}
		}
	} else {
		// Fig 6b: B as one vector load; A double-buffered in V4/V5 vs
		// V6/V7 and B in V0 vs V1, with the next iteration's loads
		// interleaved between the FMAs.
		b.LdVec(4, sA, 0)
		b.LdVec(5, sA, 4)
		b.LdVec(0, sB, 0)
		for k := 0; k < spec.KC; k++ {
			cur := (k % 2) * 2 // A regs 4/5 or 6/7
			curB := k % 2      // B reg 0 or 1
			nxt, nxtB := 2-cur, 1-curB
			hasNext := k+1 < spec.KC
			for j := 0; j < 4; j++ {
				b.FmlaElem(acc[2*j], 4+cur, curB, j)
				b.FmlaElem(acc[2*j+1], 5+cur, curB, j)
				if hasNext {
					switch j {
					case 0:
						b.LdVec(4+nxt, sA, (k+1)*spec.LDAp)
					case 1:
						b.LdVec(5+nxt, sA, (k+1)*spec.LDAp+4)
					case 2:
						b.LdVec(nxtB, sB, (k+1)*spec.LDB)
					}
				}
			}
		}
	}

	for j := 0; j < 4; j++ {
		for h := 0; h < 2; h++ {
			r := acc[2*j+h]
			for lane := 0; lane < 4; lane++ {
				b.StLane(r, lane, sC, (4*h+lane)*spec.LDC+j)
			}
		}
	}
	return b.MustBuild()
}
