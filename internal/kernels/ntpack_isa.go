package kernels

import (
	"fmt"

	"libshalom/internal/isa"
)

// NTPackSpec configures the NT-mode packing micro-kernel generator (Fig 5,
// Alg 3). The kernel computes an MR×NB tile of C with the inner-product
// formulation (vector–vector FMA along K) while scattering the consumed
// NB×KC sliver of the stored-transposed B into the linear buffer Bc, laid
// out row-major KC×NRTotal so the 7×12 main kernel can consume it. Calling
// it NRTotal/NB times (JOff = 0, NB, 2·NB, …) fills a complete Bc panel, as
// §5.3.2 describes (“we need to call the packing micro-kernel four times
// (12/3)”).
type NTPackSpec struct {
	Elem    int
	MR      int // rows of A/C processed (7 in the paper)
	NB      int // columns per call (3 in the paper)
	KC      int
	LDA     int // A(i,k) at i*LDA+k
	LDBT    int // stored-transposed B: B(k, JOff+j) at j*LDBT+k
	LDC     int
	NRTotal int // width of the Bc panel being filled (12 in the paper)
	JOff    int // which NB-column group of Bc/C this call covers
	Accum   bool
}

func (s NTPackSpec) lanes() int { return 16 / s.Elem }

func (s NTPackSpec) validate() error {
	l := s.lanes()
	if s.Elem != 4 && s.Elem != 8 {
		return fmt.Errorf("kernels: elem %d", s.Elem)
	}
	if s.MR < 1 || s.NB < 1 || s.KC < 1 || s.KC%l != 0 {
		return fmt.Errorf("kernels: bad NT pack shape mr=%d nb=%d kc=%d", s.MR, s.NB, s.KC)
	}
	if s.MR+s.NB+s.MR*s.NB > 31 {
		return fmt.Errorf("kernels: NT pack %dx%d needs %d registers (+1 reduce)", s.MR, s.NB, s.MR+s.NB+s.MR*s.NB)
	}
	if s.JOff < 0 || s.JOff+s.NB > s.NRTotal {
		return fmt.Errorf("kernels: JOff %d + NB %d exceeds NRTotal %d", s.JOff, s.NB, s.NRTotal)
	}
	if s.LDA < s.KC || s.LDBT < s.KC || s.LDC < s.JOff+s.NB {
		return fmt.Errorf("kernels: NT pack leading dimensions too small")
	}
	return nil
}

// BuildNTPack emits the NT packing micro-kernel. Register plan for the 7×3
// FP32 instance of Fig 5: V0–V6 hold A rows (four K elements each), V7–V9
// hold B rows, V10–V30 are the 21 inner-product accumulators, and the B
// registers are reused as reduction scratch in the epilogue (they are dead
// by then). Scatter stores place element (k+l) of B row j at
// Bc[(k+l)·NRTotal + JOff + j], producing exactly the layout of Fig 4/5:
// elements of one vector land NRTotal apart, same-position elements of
// different vectors land adjacent.
func BuildNTPack(spec NTPackSpec) *isa.Program {
	if err := spec.validate(); err != nil {
		panic(err)
	}
	l := spec.lanes()
	aReg := func(i int) int { return i }
	bReg := func(j int) int { return spec.MR + j }
	cReg := func(i, j int) int { return spec.MR + spec.NB + i*spec.NB + j }

	b := isa.NewBuilder(fmt.Sprintf("ntpack_%dx%d_e%d_kc%d_j%d", spec.MR, spec.NB, spec.Elem, spec.KC, spec.JOff), spec.Elem)
	sA := b.Stream("A", isa.StreamA, (spec.MR-1)*spec.LDA+spec.KC, spec.LDA == spec.KC)
	sBT := b.Stream("Bt", isa.StreamB, (spec.NB-1)*spec.LDBT+spec.KC, false)
	sC := b.Stream("C", isa.StreamC, (spec.MR-1)*spec.LDC+spec.JOff+spec.NB, false)
	sBc := b.Stream("Bc", isa.StreamBc, (spec.KC-1)*spec.NRTotal+spec.JOff+spec.NB, false)

	for i := 0; i < spec.MR; i++ {
		for j := 0; j < spec.NB; j++ {
			b.Zero(cReg(i, j))
		}
	}
	for k := 0; k < spec.KC; k += l {
		// Loads: MR vector loads of A, NB vector loads of B (each register
		// carries `lanes` consecutive K elements).
		for i := 0; i < spec.MR; i++ {
			b.LdVec(aReg(i), sA, i*spec.LDA+k)
		}
		for j := 0; j < spec.NB; j++ {
			b.LdVec(bReg(j), sBT, j*spec.LDBT+k)
		}
		// Vector–vector FMAs with the scatter stores of the consumed B
		// vectors interleaved between them (Alg 3: “the vector-vector FMAs
		// and scatter instructions occur interchangeably”).
		for j := 0; j < spec.NB; j++ {
			for i := 0; i < spec.MR; i++ {
				b.FmlaVec(cReg(i, j), aReg(i), bReg(j))
				if i < l {
					b.StLane(bReg(j), i, sBc, (k+i)*spec.NRTotal+spec.JOff+j)
				}
			}
			// When MR < lanes the loop above did not cover every lane of
			// bReg(j); finish the scatter here.
			for i := spec.MR; i < l; i++ {
				b.StLane(bReg(j), i, sBc, (k+i)*spec.NRTotal+spec.JOff+j)
			}
		}
	}
	// Epilogue: reduce each accumulator's lanes to a scalar and store it to
	// C. The B registers are dead, so bReg(0) is the reduce target; each
	// accumulator register is itself dead after its Reduce, so it stages
	// the loaded C value when accumulating.
	red := bReg(0)
	for i := 0; i < spec.MR; i++ {
		for j := 0; j < spec.NB; j++ {
			b.Reduce(red, cReg(i, j))
			off := i*spec.LDC + spec.JOff + j
			if spec.Accum {
				b.LdScalar(cReg(i, j), sC, off)
				b.FaddVec(red, red, cReg(i, j))
			}
			b.StLane(red, 0, sC, off)
		}
	}
	return b.MustBuild()
}
