package kernels

import (
	"strings"
	"testing"

	"libshalom/internal/isa"
	"libshalom/internal/isacheck"
)

// adversarialFamily is a main-style generator with a deliberate off-by-one:
// after the real emission it reads A element kc. With LDA = kc that aliases
// row 1, column 0 — a legitimate panel element whenever mr >= 2 — and
// escapes the panel exactly when mr == 1. A concrete footprint sweep at the
// registered shape (mr = 2) is therefore clean; only quantifying over the
// whole domain exposes the bug.
func adversarialFamily() isacheck.Family {
	kc, nr := isacheck.EKC(), isacheck.ENR()
	model := mainModel(kc, nr, nr, true, false)
	a := model[isa.StreamA]
	a.Reads = append(a.Reads, isacheck.SymSpan{
		Lo: kc, Hi: kc.AddC(1), Stride: isacheck.EConst(1), Count: isacheck.EConst(1)})
	model[isa.StreamA] = a
	return isacheck.Family{
		Name: "adversarial-main-f32", Elem: 4, Kind: isacheck.KindMain,
		Domain: isacheck.Domain{
			MR: isacheck.Range{Min: 1, Max: 2},
			NR: isacheck.Range{Min: 4, Max: 4},
			KC: isacheck.Range{Min: 4, Max: 4},
		},
		LDA: kc, LDB: nr, LDC: nr, Accumulate: true,
		Model: model,
		BuildAt: func(s isacheck.Shape) *isa.Program {
			p := BuildMain(MainSpec{Elem: 4, MR: s.MR, NR: s.NR, KC: s.KC,
				LDA: s.KC, LDB: s.NR, LDC: s.NR,
				Accumulate: true, Schedule: Pipelined})
			aIdx, dst := -1, -1
			for _, in := range p.Code {
				if in.Op.IsLoad() && p.Streams[in.Mem.Stream].Kind == isa.StreamA {
					aIdx, dst = in.Mem.Stream, in.Dst
				}
			}
			if p.Streams[aIdx].MinLen < s.KC+1 {
				p.Streams[aIdx].MinLen = s.KC + 1
			}
			p.Code = append(p.Code, isa.Instr{
				Op: isa.LdScalar, Dst: dst,
				Mem: isa.MemRef{Stream: aIdx, Off: s.KC}})
			return p
		},
	}
}

// TestAdversarialSweepVsSymbolic is the reason pass #6 exists: the sampled
// concrete sweep at the registered shape passes, the symbolic proof over
// the whole domain does not. The family is deliberately NOT registered —
// it would fail every build.
func TestAdversarialSweepVsSymbolic(t *testing.T) {
	f := adversarialFamily()

	// The "registered" shape: mr = 2, where the rogue read aliases a
	// legitimate element. The concrete sweep is clean here.
	reg := isacheck.Shape{MR: 2, NR: 4, KC: 4}
	prog := f.BuildAt(reg)
	rep, err := isa.Analyze(prog)
	if err != nil {
		t.Fatalf("Analyze at %s: %v", reg, err)
	}
	if fs := isacheck.CheckFootprint(prog, f.ContractAt(reg), rep); len(fs) != 0 {
		t.Fatalf("concrete sweep at %s should be clean, got: %v", reg, fs)
	}

	// The symbolic pass quantifies over mr ∈ {1, 2} and must disprove
	// containment, naming the mr = 1 witness the sweep never sampled.
	fs := isacheck.CheckSymbolicFootprint(f)
	if len(fs) == 0 {
		t.Fatal("symbolic pass missed the off-by-one read")
	}
	var escape, witness bool
	for _, fd := range fs {
		if strings.Contains(fd.Msg, "symbolic:") && strings.Contains(fd.Msg, "escapes") {
			escape = true
			if strings.Contains(fd.Msg, "mr=1") {
				witness = true
			}
		}
	}
	if !escape {
		t.Errorf("no symbolic escape finding; got: %v", fs)
	}
	if !witness {
		t.Errorf("symbolic escape finding does not name the mr=1 witness; got: %v", fs)
	}
}

// TestAdversarialCleanWithoutRogueRead sanity-checks the harness: removing
// the rogue read (model and emission) makes the whole family prove.
func TestAdversarialCleanWithoutRogueRead(t *testing.T) {
	f := adversarialFamily()
	kc, nr := isacheck.EKC(), isacheck.ENR()
	f.Model = mainModel(kc, nr, nr, true, false)
	f.BuildAt = func(s isacheck.Shape) *isa.Program {
		return BuildMain(MainSpec{Elem: 4, MR: s.MR, NR: s.NR, KC: s.KC,
			LDA: s.KC, LDB: s.NR, LDC: s.NR,
			Accumulate: true, Schedule: Pipelined})
	}
	if fs := isacheck.CheckSymbolicFootprint(f); len(fs) != 0 {
		t.Fatalf("clean family should prove, got: %v", fs)
	}
}
