package kernels

import (
	"math"
	"testing"

	"libshalom/internal/mat"
)

// The reference path is the demotion target of the fallback chain, so its
// own correctness is load-bearing: cross-check it against the internal/mat
// oracle over every mode, with strided operands and both beta semantics.
func TestGEMMRefMatchesOracleF32(t *testing.T) {
	rng := mat.NewRNG(7)
	for _, tr := range []struct{ ta, tb bool }{{false, false}, {false, true}, {true, false}, {true, true}} {
		for _, beta := range []float32{0, 1, -0.5} {
			m, n, k := 13, 9, 17
			arows, acols := m, k
			if tr.ta {
				arows, acols = k, m
			}
			brows, bcols := k, n
			if tr.tb {
				brows, bcols = n, k
			}
			a := mat.RandomF32(arows, acols, rng)
			b := mat.RandomF32(brows, bcols, rng)
			c := mat.RandomF32(m, n, rng)
			want := c.Clone()
			mat.RefGEMMF32(mat.Trans(tr.ta), mat.Trans(tr.tb), 1.25, a, b, beta, want)
			SGEMMRef(tr.ta, tr.tb, m, n, k, 1.25, a.Data, a.Stride, b.Data, b.Stride, beta, c.Data, c.Stride)
			for i := 0; i < m; i++ {
				for j := 0; j < n; j++ {
					got, exp := c.At(i, j), want.At(i, j)
					if math.Abs(float64(got-exp)) > 1e-4 {
						t.Fatalf("ta=%v tb=%v beta=%v: C(%d,%d) = %v, want %v", tr.ta, tr.tb, beta, i, j, got, exp)
					}
				}
			}
		}
	}
}

func TestGEMMRefMatchesOracleF64(t *testing.T) {
	rng := mat.NewRNG(11)
	m, n, k := 8, 15, 6
	a := mat.RandomF64(k, m, rng) // TA stored K×M
	b := mat.RandomF64(n, k, rng) // TB stored N×K
	c := mat.RandomF64(m, n, rng)
	want := c.Clone()
	mat.RefGEMMF64(mat.Transpose, mat.Transpose, -0.75, a, b, 2, want)
	DGEMMRef(true, true, m, n, k, -0.75, a.Data, a.Stride, b.Data, b.Stride, 2, c.Data, c.Stride)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			if math.Abs(c.At(i, j)-want.At(i, j)) > 1e-12 {
				t.Fatalf("C(%d,%d) = %v, want %v", i, j, c.At(i, j), want.At(i, j))
			}
		}
	}
}

// beta == 0 must overwrite C without reading it: NaN garbage in an
// uninitialised output buffer must not leak into the result.
func TestGEMMRefBetaZeroOverwritesNaN(t *testing.T) {
	m, n, k := 3, 4, 5
	a := make([]float32, m*k)
	b := make([]float32, k*n)
	c := make([]float32, m*n)
	for i := range a {
		a[i] = 1
	}
	for i := range b {
		b[i] = 2
	}
	for i := range c {
		c[i] = float32(math.NaN())
	}
	SGEMMRef(false, false, m, n, k, 1, a, k, b, n, 0, c, n)
	for i, v := range c {
		if v != float32(2*k) {
			t.Fatalf("c[%d] = %v, want %v", i, v, float32(2*k))
		}
	}
}
