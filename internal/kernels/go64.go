package kernels

// FP64 counterparts of the Go compute micro-kernels. The solved FP64 tile is
// 7×6 (internal/analytic, j=2 lanes per 128-bit register), so the fast path
// specializes that shape.

// DGEMMMicro computes the mr×nr FP64 tile
// c = alpha*(a·b) + beta*c with row-major operands and explicit leading
// dimensions; see SGEMMMicro for the layout conventions.
//
//shalom:hotpath noalloc,nolock,noblock,notime
func DGEMMMicro(mr, nr, kc int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
	if mr == 7 && nr == 6 {
		dgemmMicro7x6(kc, alpha, a, lda, b, ldb, beta, c, ldc)
		return
	}
	for i := 0; i < mr; i++ {
		ar := a[i*lda:]
		for j := 0; j < nr; j++ {
			var acc float64
			for k := 0; k < kc; k++ {
				acc += ar[k] * b[k*ldb+j]
			}
			if beta == 0 {
				c[i*ldc+j] = alpha * acc
			} else {
				c[i*ldc+j] = alpha*acc + beta*c[i*ldc+j]
			}
		}
	}
}

// dgemmMicro7x6 is the specialized FP64 main micro-kernel (mr=7, nr=6).
func dgemmMicro7x6(kc int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
	var acc [7][6]float64
	for k := 0; k < kc; k++ {
		br := b[k*ldb : k*ldb+6]
		for i := 0; i < 7; i++ {
			s := a[i*lda+k]
			row := &acc[i]
			for j := 0; j < 6; j++ {
				row[j] += s * br[j]
			}
		}
	}
	for i := 0; i < 7; i++ {
		cr := c[i*ldc : i*ldc+6]
		if beta == 0 {
			for j := 0; j < 6; j++ {
				cr[j] = alpha * acc[i][j]
			}
		} else {
			for j := 0; j < 6; j++ {
				cr[j] = alpha*acc[i][j] + beta*cr[j]
			}
		}
	}
}

// DGEMMMicroPackB is the FP64 NN packing micro-kernel: update C and pack the
// kc×nr B sliver into bc (see SGEMMMicroPackB).
//
//shalom:hotpath noalloc,nolock,noblock,notime
func DGEMMMicroPackB(mr, nr, kc int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int, bc []float64, nrTotal, jOff int) {
	for k := 0; k < kc; k++ {
		copy(bc[k*nrTotal+jOff:k*nrTotal+jOff+nr], b[k*ldb:k*ldb+nr])
	}
	DGEMMMicro(mr, nr, kc, alpha, a, lda, b, ldb, beta, c, ldc)
}

// DGEMMMicroNT computes an mr×nr FP64 tile with B supplied as stored-
// transposed (N×K row-major); see SGEMMMicroNT.
//
//shalom:hotpath noalloc,nolock,noblock,notime
func DGEMMMicroNT(mr, nr, kc int, alpha float64, a []float64, lda int, bT []float64, ldbT int, beta float64, c []float64, ldc int) {
	for i := 0; i < mr; i++ {
		ar := a[i*lda:]
		for j := 0; j < nr; j++ {
			br := bT[j*ldbT:]
			var acc float64
			for k := 0; k < kc; k++ {
				acc += ar[k] * br[k]
			}
			if beta == 0 {
				c[i*ldc+j] = alpha * acc
			} else {
				c[i*ldc+j] = alpha*acc + beta*c[i*ldc+j]
			}
		}
	}
}

// DGEMMMicroNTPack is the FP64 NT packing micro-kernel (Fig 5 / Alg 3):
// inner-product C update plus scatter of the sliver into bc.
//
//shalom:hotpath noalloc,nolock,noblock,notime
func DGEMMMicroNTPack(mr, nr, kc int, alpha float64, a []float64, lda int, bT []float64, ldbT int, beta float64, c []float64, ldc int, bc []float64, nrTotal, jOff int) {
	for j := 0; j < nr; j++ {
		br := bT[j*ldbT:]
		for k := 0; k < kc; k++ {
			bc[k*nrTotal+jOff+j] = br[k]
		}
	}
	DGEMMMicroNT(mr, nr, kc, alpha, a, lda, bT, ldbT, beta, c, ldc)
}

// DScaleRows scales the mr×nr tile of C by beta in place.
//
//shalom:hotpath noalloc,nolock,noblock,notime
func DScaleRows(mr, nr int, beta float64, c []float64, ldc int) {
	for i := 0; i < mr; i++ {
		row := c[i*ldc : i*ldc+nr]
		if beta == 0 {
			for j := range row {
				row[j] = 0
			}
		} else {
			for j := range row {
				row[j] *= beta
			}
		}
	}
}
