package kernels

import (
	"fmt"

	"libshalom/internal/isa"
)

// Schedule selects the instruction-ordering style of an emitted kernel.
type Schedule int

const (
	// Pipelined is LibShalom's style (§5.3–5.4, Fig 6b): each operand
	// register is reloaded for the next step immediately after its last
	// consumer, spreading loads between FMAs so the bounded OoO window
	// always sees independent work.
	Pipelined Schedule = iota
	// Batch is the strawman style of Fig 6a (OpenBLAS edge kernels): all
	// loads of a step are emitted together, followed by all FMAs.
	Batch
)

// String names the schedule.
func (s Schedule) String() string {
	if s == Batch {
		return "batch"
	}
	return "pipelined"
}

// MainSpec configures the main outer-product micro-kernel generator
// (Alg 2). The generated program computes, for an mr×nr tile,
// C += A·B over KC rank-1 updates (or C = A·B when Accumulate is false),
// optionally packing the B sliver into Bc as it goes (the NN-mode packing
// micro-kernel of Alg 1 lines 6–8).
type MainSpec struct {
	Elem       int // 4 (FP32) or 8 (FP64)
	MR, NR, KC int
	LDA        int // A sliver leading dimension (elements); A(i,k) at i*LDA+k
	LDB        int // B leading dimension; B(k,j) at k*LDB+j (use NR for packed Bc)
	LDC        int
	Accumulate bool // load C tile first instead of zeroing
	PackB      bool // also store each B row into the Bc stream (row-major KC×NR)
	Schedule   Schedule
}

func (s MainSpec) lanes() int { return 16 / s.Elem }

func (s MainSpec) validate() error {
	l := s.lanes()
	if s.Elem != 4 && s.Elem != 8 {
		return fmt.Errorf("kernels: elem %d", s.Elem)
	}
	if s.MR < 1 || s.NR < l || s.NR%l != 0 {
		return fmt.Errorf("kernels: bad tile %dx%d for %d lanes", s.MR, s.NR, l)
	}
	if s.KC < 1 || s.KC%l != 0 {
		return fmt.Errorf("kernels: KC %d must be a positive multiple of %d", s.KC, l)
	}
	nb := s.NR / l
	if s.MR+nb+s.MR*nb > 32 {
		return fmt.Errorf("kernels: tile %dx%d needs %d registers", s.MR, s.NR, s.MR+nb+s.MR*nb)
	}
	if s.LDA < s.KC || s.LDB < s.NR || s.LDC < s.NR {
		return fmt.Errorf("kernels: leading dimensions too small")
	}
	return nil
}

// BuildMain emits the main micro-kernel program for spec. Register plan for
// the 7×12 FP32 instance: V0–V6 hold A rows (each register carries `lanes`
// consecutive K elements of one row), V7–V9 hold the current B row, and
// V10–V30 are the 21 accumulators — the layout of Fig 3 and Alg 2.
func BuildMain(spec MainSpec) *isa.Program {
	if err := spec.validate(); err != nil {
		panic(err)
	}
	l := spec.lanes()
	nb := spec.NR / l
	aReg := func(i int) int { return i }
	bReg := func(jb int) int { return spec.MR + jb }
	cReg := func(i, jb int) int { return spec.MR + nb + i*nb + jb }

	name := fmt.Sprintf("main_%dx%d_e%d_kc%d_%s", spec.MR, spec.NR, spec.Elem, spec.KC, spec.Schedule)
	if spec.PackB {
		name = "pack" + name
	}
	b := isa.NewBuilder(name, spec.Elem)
	sA := b.Stream("A", isa.StreamA, (spec.MR-1)*spec.LDA+spec.KC, spec.LDA == spec.KC)
	sB := b.Stream("B", isa.StreamB, (spec.KC-1)*spec.LDB+spec.NR, spec.LDB == spec.NR)
	sC := b.Stream("C", isa.StreamC, (spec.MR-1)*spec.LDC+spec.NR, false)
	sBc := -1
	if spec.PackB {
		sBc = b.Stream("Bc", isa.StreamBc, spec.KC*spec.NR, true)
	}

	// Prologue: C accumulators.
	for i := 0; i < spec.MR; i++ {
		for jb := 0; jb < nb; jb++ {
			if spec.Accumulate {
				b.LdVec(cReg(i, jb), sC, i*spec.LDC+jb*l)
			} else {
				b.Zero(cReg(i, jb))
			}
		}
	}
	// First A loads, and the B registers for row 0.
	for i := 0; i < spec.MR; i++ {
		b.LdVec(aReg(i), sA, i*spec.LDA)
	}
	loadB := func(jb, k int) { b.LdVec(bReg(jb), sB, k*spec.LDB+jb*l) }
	for jb := 0; jb < nb; jb++ {
		loadB(jb, 0)
	}

	for kk := 0; kk < spec.KC; kk++ {
		lane := kk % l
		if spec.Schedule == Batch && kk > 0 {
			// Fig 6a style: the whole row's loads land immediately before
			// their dependent FMAs.
			for jb := 0; jb < nb; jb++ {
				loadB(jb, kk)
			}
			if lane == 0 {
				for i := 0; i < spec.MR; i++ {
					b.LdVec(aReg(i), sA, i*spec.LDA+kk)
				}
			}
		}
		for jb := 0; jb < nb; jb++ {
			for i := 0; i < spec.MR; i++ {
				b.FmlaElem(cReg(i, jb), bReg(jb), aReg(i), lane)
				// Pipelined: reload aReg(i) for the next k-block right
				// after this row's final consumer of it (lane l-1 of the
				// last jb group), interleaving the loads between FMAs.
				if spec.Schedule == Pipelined && lane == l-1 && jb == nb-1 {
					if nk := kk + 1; nk < spec.KC {
						b.LdVec(aReg(i), sA, i*spec.LDA+nk)
					}
				}
			}
			if spec.PackB {
				// Pack the consumed sliver into Bc; in the pipelined
				// schedule the store overlaps the FMAs of later groups
				// (§5.3), in the batch schedule it simply follows them.
				b.StVec(bReg(jb), sBc, kk*spec.NR+jb*l)
			}
			if spec.Schedule == Pipelined && kk+1 < spec.KC {
				// bReg(jb) is dead until row kk+1: reload it now, a full
				// (nb-1)-group distance ahead of its next consumer.
				loadB(jb, kk+1)
			}
		}
	}

	// Epilogue: store the C tile.
	for i := 0; i < spec.MR; i++ {
		for jb := 0; jb < nb; jb++ {
			b.StVec(cReg(i, jb), sC, i*spec.LDC+jb*l)
		}
	}
	return b.MustBuild()
}
