// Package bench is the experiment harness: for every table and figure in
// the paper's evaluation (§7–8) it regenerates the corresponding rows or
// series from this reproduction's models and prints them in a layout that
// mirrors what the paper reports. cmd/shalom-bench exposes each experiment
// by id; the root-level bench_test.go wraps them as testing.B benchmarks.
package bench

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"libshalom/internal/baselines"
	"libshalom/internal/perfsim"
	"libshalom/internal/platform"
	"libshalom/internal/workloads"
)

// Series is one labeled curve of an experiment.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Experiment is a runnable reproduction of one paper table or figure.
type Experiment struct {
	ID    string
	Title string
	// Paper summarizes what the original figure shows, for side-by-side
	// reading in EXPERIMENTS.md.
	Paper string
	Run   func(w io.Writer)
}

// Libraries used across experiments, in the paper's legend order.
func evalLibs() []perfsim.Library {
	return []perfsim.Library{
		perfsim.Baseline(baselines.BLIS),
		perfsim.Baseline(baselines.OpenBLAS),
		perfsim.Baseline(baselines.ARMPL),
		perfsim.Baseline(baselines.LIBXSMM),
		perfsim.Baseline(baselines.BLASFEO),
		perfsim.LibShalom(),
	}
}

func parallelLibs() []perfsim.Library {
	return []perfsim.Library{
		perfsim.Baseline(baselines.OpenBLAS),
		perfsim.Baseline(baselines.ARMPL),
		perfsim.Baseline(baselines.BLIS),
		perfsim.LibShalom(),
	}
}

// All returns the experiment registry in paper order.
func All() []Experiment {
	return []Experiment{
		{ID: "table1", Title: "Table 1: hardware evaluation platforms",
			Paper: "Phytium 2000+ / KP920 / ThunderX2 specification table", Run: Table1},
		{ID: "fig2a", Title: "Fig 2a: motivation, small square GEMM (% of peak, Phytium)",
			Paper: "existing libraries reach <60% of peak below size 32, >80% above 256", Run: Fig2a},
		{ID: "fig2b", Title: "Fig 2b: motivation, irregular GEMM (% of peak, Phytium, N=K=10000)",
			Paper: "all libraries below 40% of peak for M<128", Run: Fig2b},
		{ID: "fig6", Title: "Fig 6: edge micro-kernel schedules (cycles per iteration)",
			Paper: "interleaved schedule beats OpenBLAS batch loads", Run: Fig6},
		{ID: "fig7", Title: "Fig 7: small GEMM, warm cache (GFLOPS, NN and NT)",
			Paper: "LibShalom 1.05-2x over best alternative on all three platforms", Run: Fig7},
		{ID: "fig8", Title: "Fig 8: small GEMM, cold cache (GFLOPS, NN and NT)",
			Paper: "same trend; near-ties with BLASFEO at multiples of 8", Run: Fig8},
		{ID: "fig9", Title: "Fig 9: parallel irregular NT GEMM on Phytium 2000+ (K=5000)",
			Paper: "LibShalom ~1.8x over BLIS on average, 2.6x at M=32", Run: Fig9},
		{ID: "fig10", Title: "Fig 10: parallel irregular GEMM on KP920 and ThunderX2 (K=5000)",
			Paper: "1.6x (KP920) and 1.3x (TX2) over best baseline", Run: Fig10},
		{ID: "fig11", Title: "Fig 11: scalability on the VGG conv1.2 kernel",
			Paper: "max speedup 49x Phytium, 82x KP920, 35x TX2 vs OpenBLAS 1T", Run: Fig11},
		{ID: "fig12", Title: "Fig 12: L2 miss reduction vs OpenBLAS (irregular NT)",
			Paper: "~20% reduction on KP920, smaller on TX2", Run: Fig12},
		{ID: "fig13", Title: "Fig 13: optimization breakdown (single-thread irregular NT)",
			Paper: "packing overlap dominates; 1.25x/1.6x total at M=20 (Phytium/KP920)", Run: Fig13},
		{ID: "fig14", Title: "Fig 14: CP2K FP64 small kernels",
			Paper: "LibShalom best; up to 2x over LIBXSMM at 5x5x5", Run: Fig14},
		{ID: "fig15", Title: "Fig 15: VGG FP32 conv layers, all cores",
			Paper: "LibShalom best on every layer; up to 1.6x on conv1.2/conv5.2", Run: Fig15},
		{ID: "ablation", Title: "Ablation: each design decision of DESIGN.md §3 reverted in isolation",
			Paper: "(not a paper figure; quantifies §4-§6 decisions individually)", Run: Ablation},
	}
}

// ByID returns the experiment with the given id, or nil.
func ByID(id string) *Experiment {
	for _, e := range All() {
		if e.ID == id {
			e := e
			return &e
		}
	}
	return nil
}

func newTab(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
}

// Table1 prints the platform table.
func Table1(w io.Writer) {
	tw := newTab(w)
	fmt.Fprintln(tw, "\tPhytium 2000+\tKP920\tThunderX2")
	plats := platform.All()
	row := func(name string, f func(*platform.Platform) string) {
		fmt.Fprintf(tw, "%s", name)
		for _, p := range plats {
			fmt.Fprintf(tw, "\t%s", f(p))
		}
		fmt.Fprintln(tw)
	}
	row("Peak perf. (FP32 GFLOPS)", func(p *platform.Platform) string { return fmt.Sprintf("%.1f", p.PeakGFLOPS(4)) })
	row("Number of Cores", func(p *platform.Platform) string { return fmt.Sprint(p.Cores) })
	row("Frequency", func(p *platform.Platform) string { return fmt.Sprintf("%.1f GHz", p.FreqGHz) })
	row("L1 cache", func(p *platform.Platform) string { return fmt.Sprintf("%dKB", p.L1.SizeBytes>>10) })
	row("L2 cache", func(p *platform.Platform) string {
		if p.L2.SizeBytes >= 1<<20 {
			return fmt.Sprintf("%dMB", p.L2.SizeBytes>>20)
		}
		return fmt.Sprintf("%dKB", p.L2.SizeBytes>>10)
	})
	row("L3 cache", func(p *platform.Platform) string {
		if p.L3.SizeBytes == 0 {
			return "None"
		}
		return fmt.Sprintf("%dMB", p.L3.SizeBytes>>20)
	})
	row("RAM", func(p *platform.Platform) string { return fmt.Sprintf("%dGB", p.RAMBytes>>30) })
	tw.Flush()
}

func printSeries(w io.Writer, xLabel string, series []Series) {
	tw := newTab(w)
	fmt.Fprintf(tw, "%s", xLabel)
	for _, s := range series {
		fmt.Fprintf(tw, "\t%s", s.Label)
	}
	fmt.Fprintln(tw)
	if len(series) == 0 || len(series[0].X) == 0 {
		tw.Flush()
		return
	}
	for i := range series[0].X {
		fmt.Fprintf(tw, "%g", series[0].X[i])
		for _, s := range series {
			fmt.Fprintf(tw, "\t%.1f", s.Y[i])
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}

// Fig2aSeries computes the Fig 2a data: % of single-core peak vs size for
// the pre-existing libraries on Phytium 2000+.
func Fig2aSeries() []Series {
	p := platform.Phytium2000()
	libs := []perfsim.Library{
		perfsim.Baseline(baselines.BLIS), perfsim.Baseline(baselines.ARMPL),
		perfsim.Baseline(baselines.OpenBLAS), perfsim.Baseline(baselines.BLASFEO),
	}
	peak := p.PeakCoreGFLOPS(4)
	var out []Series
	for _, l := range libs {
		s := Series{Label: l.Name}
		for _, sh := range workloads.MotivationSquareSweep() {
			r := perfsim.Run(l, p, perfsim.Workload{M: sh.M, N: sh.N, K: sh.K, ElemBytes: 4, Threads: 1, Warm: true})
			s.X = append(s.X, float64(sh.M))
			s.Y = append(s.Y, 100*r.GFLOPS/peak)
		}
		out = append(out, s)
	}
	return out
}

// Fig2a prints the motivation square sweep.
func Fig2a(w io.Writer) {
	fmt.Fprintln(w, "% of peak FLOPS, small/large square GEMM, Phytium 2000+ (1 thread)")
	printSeries(w, "M=N=K", Fig2aSeries())
}

// Fig2bSeries computes Fig 2b: % of chip peak vs M for N=K=10000, all
// cores (BLASFEO excluded: no multi-threading, §3.1 footnote).
func Fig2bSeries() []Series {
	p := platform.Phytium2000()
	libs := []perfsim.Library{
		perfsim.Baseline(baselines.OpenBLAS), perfsim.Baseline(baselines.ARMPL),
		perfsim.Baseline(baselines.BLIS),
	}
	peak := p.PeakGFLOPS(4)
	var out []Series
	for _, l := range libs {
		s := Series{Label: l.Name}
		for _, sh := range workloads.MotivationIrregularSweep() {
			r := perfsim.Run(l, p, perfsim.Workload{M: sh.M, N: sh.N, K: sh.K, ElemBytes: 4, Threads: p.Cores})
			s.X = append(s.X, float64(sh.M))
			s.Y = append(s.Y, 100*r.GFLOPS/peak)
		}
		out = append(out, s)
	}
	return out
}

// Fig2b prints the motivation irregular sweep.
func Fig2b(w io.Writer) {
	fmt.Fprintln(w, "% of peak FLOPS, irregular GEMM M x 10000 x 10000, Phytium 2000+ (64 threads)")
	printSeries(w, "M", Fig2bSeries())
}

// Fig7Series computes the small-GEMM sweep for one platform/mode/cache
// state, one series per library.
func Fig7Series(p *platform.Platform, transB, warm bool) []Series {
	var out []Series
	for _, l := range evalLibs() {
		s := Series{Label: l.Name}
		for _, sh := range workloads.SmallSquareSweep() {
			r := perfsim.Run(l, p, perfsim.Workload{M: sh.M, N: sh.N, K: sh.K, ElemBytes: 4, TransB: transB, Threads: 1, Warm: warm})
			s.X = append(s.X, float64(sh.M))
			s.Y = append(s.Y, r.GFLOPS)
		}
		out = append(out, s)
	}
	return out
}

func smallGEMMFigure(w io.Writer, warm bool) {
	state := "warm"
	if !warm {
		state = "cold"
	}
	for _, p := range platform.All() {
		for _, mode := range []struct {
			name   string
			transB bool
		}{{"NN", false}, {"NT", true}} {
			fmt.Fprintf(w, "-- %s, %s mode, %s cache (GFLOPS FP32, 1 thread) --\n", p.Name, mode.name, state)
			printSeries(w, "M=N=K", Fig7Series(p, mode.transB, warm))
		}
	}
}

// Fig7 prints the warm-cache small GEMM comparison (three platforms, NN+NT).
func Fig7(w io.Writer) { smallGEMMFigure(w, true) }

// Fig8 prints the cold-cache variant.
func Fig8(w io.Writer) { smallGEMMFigure(w, false) }

// Fig9Series computes one Fig 9 subplot: GFLOPS vs the swept dimension.
func Fig9Series(p *platform.Platform, shapes []workloads.Shape, xFromN bool, transB bool) []Series {
	var out []Series
	for _, l := range parallelLibs() {
		s := Series{Label: l.Name}
		for _, sh := range shapes {
			r := perfsim.Run(l, p, perfsim.Workload{M: sh.M, N: sh.N, K: sh.K, ElemBytes: 4, TransB: transB, Threads: p.Cores})
			x := float64(sh.M)
			if xFromN {
				x = float64(sh.N)
			}
			s.X = append(s.X, x)
			s.Y = append(s.Y, r.GFLOPS)
		}
		out = append(out, s)
	}
	return out
}

// Fig9 prints the Phytium NT irregular panels (top row: N swept for fixed
// M; bottom row: M swept for fixed N).
func Fig9(w io.Writer) {
	p := platform.Phytium2000()
	for _, m := range workloads.Fig9MValues() {
		fmt.Fprintf(w, "-- Phytium 2000+, NT, M=%d, K=5000 (GFLOPS FP32, 64 threads) --\n", m)
		printSeries(w, "N", Fig9Series(p, workloads.IrregularNSweep(m), true, true))
	}
	for _, n := range workloads.Fig9MValues() {
		fmt.Fprintf(w, "-- Phytium 2000+, NT, N=%d, K=5000 (GFLOPS FP32, 64 threads) --\n", n)
		printSeries(w, "M", Fig9Series(p, workloads.IrregularMSweep(n), false, true))
	}
}

// Fig10 prints the KP920 and ThunderX2 irregular panels under NN and NT.
func Fig10(w io.Writer) {
	for _, p := range []*platform.Platform{platform.KP920(), platform.ThunderX2()} {
		for _, m := range []int{32, 128} {
			for _, mode := range []struct {
				name   string
				transB bool
			}{{"NN", false}, {"NT", true}} {
				fmt.Fprintf(w, "-- %s, %s, M=%d, K=5000 (GFLOPS FP32, %d threads) --\n", p.Name, mode.name, m, p.Cores)
				printSeries(w, "N", Fig9Series(p, workloads.IrregularNSweep(m), true, mode.transB))
			}
		}
	}
}

// Fig11Series computes one platform's speedup-vs-threads curves, normalized
// to single-threaded OpenBLAS (§8.3).
func Fig11Series(p *platform.Platform) []Series {
	sh := workloads.ScalabilityKernel()
	base := perfsim.Run(perfsim.Baseline(baselines.OpenBLAS), p,
		perfsim.Workload{M: sh.M, N: sh.N, K: sh.K, ElemBytes: 4, TransB: true, Threads: 1}).Seconds
	var threads []int
	for t := 1; t <= p.Cores; t *= 2 {
		threads = append(threads, t)
	}
	var out []Series
	for _, l := range parallelLibs() {
		s := Series{Label: l.Name}
		for _, t := range threads {
			r := perfsim.Run(l, p, perfsim.Workload{M: sh.M, N: sh.N, K: sh.K, ElemBytes: 4, TransB: true, Threads: t})
			s.X = append(s.X, float64(t))
			s.Y = append(s.Y, base/r.Seconds)
		}
		out = append(out, s)
	}
	return out
}

// Fig11 prints the scalability curves for all platforms.
func Fig11(w io.Writer) {
	for _, p := range platform.All() {
		fmt.Fprintf(w, "-- %s, VGG conv1.2 64x50176x576, speedup vs OpenBLAS 1 thread --\n", p.Name)
		printSeries(w, "threads", Fig11Series(p))
	}
}

// Fig12Series computes the L2-miss reduction (%) over OpenBLAS per K.
func Fig12Series(p *platform.Platform) []Series {
	libs := []perfsim.Library{
		perfsim.Baseline(baselines.BLIS), perfsim.Baseline(baselines.ARMPL), perfsim.LibShalom(),
	}
	var out []Series
	for _, l := range libs {
		s := Series{Label: l.Name}
		for _, sh := range workloads.Fig12KSweep() {
			// §8.4 reads per-core hardware counters; the comparison is a
			// single core's misses under each library's data-movement plan.
			w := perfsim.Workload{M: sh.M, N: sh.N, K: sh.K, ElemBytes: 4, TransB: true, Threads: 1}
			ob := perfsim.Run(perfsim.Baseline(baselines.OpenBLAS), p, w).L2Misses
			r := perfsim.Run(l, p, w).L2Misses
			s.X = append(s.X, float64(sh.K))
			s.Y = append(s.Y, 100*(1-r/ob))
		}
		out = append(out, s)
	}
	return out
}

// Fig12 prints the miss-reduction sweep for KP920 and ThunderX2 (the
// platforms whose counters the paper could read).
func Fig12(w io.Writer) {
	for _, p := range []*platform.Platform{platform.KP920(), platform.ThunderX2()} {
		fmt.Fprintf(w, "-- %s: reduction of L2 cache misses vs OpenBLAS (%%), NT M=64 N=50176 --\n", p.Name)
		printSeries(w, "K", Fig12Series(p))
	}
}

// Fig13Series computes the optimization breakdown: three GFLOPS series
// (baseline, +edge, +packing) over the M sweep.
func Fig13Series(p *platform.Platform) []Series {
	variants := []perfsim.Library{
		perfsim.Baseline(baselines.OpenBLAS),
		perfsim.BaselinePlusEdgeOpt(),
		perfsim.LibShalom(),
	}
	names := []string{"baseline", "+edge-case optimization", "+packing optimization"}
	var out []Series
	for i, v := range variants {
		s := Series{Label: names[i]}
		for _, sh := range workloads.Fig13MSweep() {
			r := perfsim.Run(v, p, perfsim.Workload{M: sh.M, N: sh.N, K: sh.K, ElemBytes: 4, TransB: true, Threads: 1})
			s.X = append(s.X, float64(sh.M))
			s.Y = append(s.Y, r.GFLOPS)
		}
		out = append(out, s)
	}
	return out
}

// Fig13 prints the breakdown for all platforms.
func Fig13(w io.Writer) {
	for _, p := range platform.All() {
		fmt.Fprintf(w, "-- %s: single-thread NT, N=50176, K=576 (GFLOPS FP32) --\n", p.Name)
		printSeries(w, "M", Fig13Series(p))
	}
}

// Fig14Series computes the CP2K FP64 bars for one platform.
func Fig14Series(p *platform.Platform) []Series {
	shapes := workloads.CP2K()
	var out []Series
	for _, l := range evalLibs() {
		s := Series{Label: l.Name}
		for i, sh := range shapes {
			r := perfsim.Run(l, p, perfsim.Workload{M: sh.M, N: sh.N, K: sh.K, ElemBytes: 8, Threads: 1, Warm: true})
			s.X = append(s.X, float64(i))
			s.Y = append(s.Y, r.GFLOPS)
		}
		out = append(out, s)
	}
	return out
}

// Fig14 prints the CP2K bars.
func Fig14(w io.Writer) {
	for _, p := range platform.All() {
		fmt.Fprintf(w, "-- %s: CP2K FP64 kernels (GFLOPS, 1 thread) --\n", p.Name)
		tw := newTab(w)
		fmt.Fprint(tw, "kernel")
		series := Fig14Series(p)
		for _, s := range series {
			fmt.Fprintf(tw, "\t%s", s.Label)
		}
		fmt.Fprintln(tw)
		for i, sh := range workloads.CP2K() {
			fmt.Fprintf(tw, "%dx%dx%d", sh.M, sh.N, sh.K)
			for _, s := range series {
				fmt.Fprintf(tw, "\t%.1f", s.Y[i])
			}
			fmt.Fprintln(tw)
		}
		tw.Flush()
	}
}

// Fig15Series computes the VGG layer bars for one platform (all cores).
func Fig15Series(p *platform.Platform) []Series {
	layers := workloads.VGG()
	var out []Series
	for _, l := range parallelLibs() {
		s := Series{Label: l.Name}
		for i, lay := range layers {
			r := perfsim.Run(l, p, perfsim.Workload{M: lay.M, N: lay.N, K: lay.K, ElemBytes: 4, TransB: true, Threads: p.Cores})
			s.X = append(s.X, float64(i))
			s.Y = append(s.Y, r.GFLOPS)
		}
		out = append(out, s)
	}
	return out
}

// Fig15 prints the VGG bars.
func Fig15(w io.Writer) {
	for _, p := range platform.All() {
		fmt.Fprintf(w, "-- %s: VGG conv layers (GFLOPS FP32, %d threads) --\n", p.Name, p.Cores)
		tw := newTab(w)
		fmt.Fprint(tw, "layer")
		series := Fig15Series(p)
		for _, s := range series {
			fmt.Fprintf(tw, "\t%s", s.Label)
		}
		fmt.Fprintln(tw)
		for i, lay := range workloads.VGG() {
			fmt.Fprintf(tw, "%s", lay.Name)
			for _, s := range series {
				fmt.Fprintf(tw, "\t%.0f", s.Y[i])
			}
			fmt.Fprintln(tw)
		}
		tw.Flush()
	}
}

// IDs returns the sorted experiment ids.
func IDs() []string {
	var ids []string
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return ids
}
