package bench

import (
	"fmt"
	"io"

	"libshalom/internal/baselines"
	"libshalom/internal/perfsim"
	"libshalom/internal/platform"
)

// AblationCase pairs a design decision from DESIGN.md §3 with the workload
// where the paper shows it mattering and the ablated persona.
type AblationCase struct {
	Decision string
	Workload perfsim.Workload
	Ablated  perfsim.Library
}

// AblationCases returns the ablation suite: each of LibShalom's design
// decisions reverted in isolation, on the workload class the paper uses to
// motivate it.
func AblationCases() []AblationCase {
	smallNN := perfsim.Workload{M: 32, N: 32, K: 32, ElemBytes: 4, Threads: 1, Warm: true}
	irregularNT1T := perfsim.Workload{M: 20, N: 50176, K: 576, ElemBytes: 4, TransB: true, Threads: 1}
	irregularPar := perfsim.Workload{M: 32, N: 10240, K: 5000, ElemBytes: 4, TransB: true, Threads: 64}
	return []AblationCase{
		{
			// Reverting both §4.2 and §5.3 yields the conventional
			// always-sequential-pack behaviour on a small input.
			Decision: "§4.2+§5.3 reverted: sequential always-pack on small GEMM",
			Workload: smallNN,
			Ablated: perfsim.LibShalomVariant("seq-always-pack",
				perfsim.WithForceAlwaysPack(), perfsim.WithSequentialPack()),
		},
		{
			// Reverting only the decision while keeping the overlap shows
			// §5.3's point from the other side: overlapped packing is
			// nearly free, so the cost of a wrong decision collapses.
			Decision: "§4.2 reverted alone (overlap retained): pack B even when it fits L1",
			Workload: smallNN,
			Ablated:  perfsim.LibShalomVariant("always-pack", perfsim.WithForceAlwaysPack()),
		},
		{
			Decision: "packing overlapped with FMAs (§5.3): pack sequentially instead",
			Workload: irregularNT1T,
			Ablated:  perfsim.LibShalomVariant("sequential-pack", perfsim.WithSequentialPack()),
		},
		{
			Decision: "analytic 7x12 tile (§5.2): use OpenBLAS's 8x4 tile",
			Workload: perfsim.Workload{M: 23, N: 23, K: 23, ElemBytes: 4, Threads: 1, Warm: true},
			Ablated:  perfsim.LibShalomVariant("tile-8x4", perfsim.WithTile(8, 4)),
		},
		{
			Decision: "analytic 7x12 tile (§5.2): use an 8x8 tile",
			Workload: irregularNT1T,
			Ablated:  perfsim.LibShalomVariant("tile-8x8", perfsim.WithTile(8, 8)),
		},
		{
			Decision: "scheduled edge kernels (§5.4): batch loads (Fig 6a)",
			Workload: perfsim.Workload{M: 20, N: 20, K: 20, ElemBytes: 4, Threads: 1, Warm: true},
			Ablated:  perfsim.LibShalomVariant("batch-edges", perfsim.WithBatchEdges()),
		},
		{
			Decision: "shape-aware partition (§6): 1-D M split (OpenBLAS-like)",
			Workload: irregularPar,
			Ablated:  perfsim.LibShalomVariant("m-split", perfsim.WithPartition(baselines.SchemeMSplit)),
		},
		{
			Decision: "shape-aware partition (§6): square grid",
			Workload: irregularPar,
			Ablated:  perfsim.LibShalomVariant("square-grid", perfsim.WithPartition(baselines.SchemeGrid)),
		},
	}
}

// Ablation runs the suite on every platform, printing the full design's
// throughput, the ablated variant's, and the resulting slowdown.
func Ablation(w io.Writer) {
	full := perfsim.LibShalom()
	for _, p := range platform.All() {
		fmt.Fprintf(w, "-- %s --\n", p.Name)
		tw := newTab(w)
		fmt.Fprintln(tw, "decision reverted\tworkload\tfull GF\tablated GF\tcost")
		for _, c := range AblationCases() {
			f := perfsim.Run(full, p, c.Workload)
			a := perfsim.Run(c.Ablated, p, c.Workload)
			mode := "NN"
			if c.Workload.TransB {
				mode = "NT"
			}
			fmt.Fprintf(tw, "%s\t%dx%dx%d %s t%d\t%.1f\t%.1f\t%.2fx\n",
				c.Decision, c.Workload.M, c.Workload.N, c.Workload.K, mode, c.Workload.Threads,
				f.GFLOPS, a.GFLOPS, f.GFLOPS/a.GFLOPS)
		}
		tw.Flush()
	}
}
