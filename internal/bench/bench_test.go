package bench

import (
	"bytes"
	"strings"
	"testing"

	"libshalom/internal/platform"
	"libshalom/internal/workloads"
)

func TestRegistryCompleteAndUnique(t *testing.T) {
	// Every table/figure of the paper's evaluation must be present.
	want := []string{"table1", "fig2a", "fig2b", "fig6", "fig7", "fig8",
		"fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "ablation"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(want))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if seen[e.ID] {
			t.Fatalf("duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
		if e.Title == "" || e.Paper == "" || e.Run == nil {
			t.Fatalf("experiment %q incomplete", e.ID)
		}
	}
	for _, id := range want {
		if !seen[id] {
			t.Fatalf("experiment %q missing", id)
		}
	}
	if len(IDs()) != len(want) {
		t.Fatal("IDs() inconsistent with All()")
	}
}

func TestByID(t *testing.T) {
	if e := ByID("fig7"); e == nil || e.ID != "fig7" {
		t.Fatal("ByID lookup failed")
	}
	if ByID("nope") != nil {
		t.Fatal("unknown id resolved")
	}
}

func TestEveryExperimentProducesOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness sweep is slow")
	}
	for _, e := range All() {
		var buf bytes.Buffer
		e.Run(&buf)
		if buf.Len() < 40 {
			t.Errorf("experiment %s produced only %d bytes", e.ID, buf.Len())
		}
	}
}

func TestTable1Rows(t *testing.T) {
	var buf bytes.Buffer
	Table1(&buf)
	out := buf.String()
	for _, frag := range []string{"1126.4", "2662.4", "1280.0", "None", "64MB", "2.6 GHz"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("Table 1 output missing %q:\n%s", frag, out)
		}
	}
}

func TestFig2aSeriesShape(t *testing.T) {
	s := Fig2aSeries()
	if len(s) != 4 {
		t.Fatalf("Fig 2a must compare the four pre-existing libraries, got %d", len(s))
	}
	sweep := workloads.MotivationSquareSweep()
	for _, ser := range s {
		if len(ser.X) != len(sweep) || len(ser.Y) != len(sweep) {
			t.Fatalf("series %s has wrong length", ser.Label)
		}
		// % of peak must be in (0, 100].
		for i, y := range ser.Y {
			if y <= 0 || y > 100 {
				t.Fatalf("series %s point %d = %v%% of peak", ser.Label, i, y)
			}
		}
		// Large sizes must beat tiny sizes (the motivation's whole point).
		if ser.Y[len(ser.Y)-1] < 2*ser.Y[0] {
			t.Fatalf("series %s: efficiency at 4096 (%.0f%%) not well above size 8 (%.0f%%)", ser.Label, ser.Y[len(ser.Y)-1], ser.Y[0])
		}
	}
}

func TestFig7SeriesLibShalomOnTop(t *testing.T) {
	series := Fig7Series(platform.KP920(), false, true)
	if len(series) != 6 {
		t.Fatalf("Fig 7 compares six libraries, got %d", len(series))
	}
	var ls *Series
	for i := range series {
		if series[i].Label == "LibShalom" {
			ls = &series[i]
		}
	}
	if ls == nil {
		t.Fatal("LibShalom series missing")
	}
	for _, other := range series {
		if other.Label == "LibShalom" {
			continue
		}
		for i := range ls.Y {
			if ls.Y[i] < other.Y[i]*0.97 {
				t.Errorf("size %g: LibShalom %.1f below %s %.1f", ls.X[i], ls.Y[i], other.Label, other.Y[i])
			}
		}
	}
}

func TestFig11SeriesNormalization(t *testing.T) {
	series := Fig11Series(platform.ThunderX2())
	for _, s := range series {
		if s.Label == "OpenBLAS" {
			if s.X[0] != 1 || s.Y[0] < 0.99 || s.Y[0] > 1.01 {
				t.Fatalf("OpenBLAS 1-thread point must be 1.0 (normalization anchor), got %v", s.Y[0])
			}
		}
		if s.Label == "LibShalom" {
			last := s.Y[len(s.Y)-1]
			if last < 20 || last > 50 {
				t.Fatalf("TX2 LibShalom max speedup %.1f outside the plausible band (paper: 35)", last)
			}
		}
	}
}

func TestFig12SeriesPositiveForLibShalom(t *testing.T) {
	for _, p := range []*platform.Platform{platform.KP920(), platform.ThunderX2()} {
		series := Fig12Series(p)
		for _, s := range series {
			if s.Label != "LibShalom" {
				continue
			}
			for i, y := range s.Y {
				if y <= 0 {
					t.Fatalf("%s: LibShalom reduction at K=%g is %.1f%%, must be positive", p.Name, s.X[i], y)
				}
			}
		}
	}
}

func TestFig13SeriesMonotone(t *testing.T) {
	series := Fig13Series(platform.KP920())
	if len(series) != 3 {
		t.Fatalf("Fig 13 has three variants, got %d", len(series))
	}
	base, edge, full := series[0], series[1], series[2]
	for i := range base.Y {
		if !(base.Y[i] <= edge.Y[i] && edge.Y[i] <= full.Y[i]) {
			t.Fatalf("M=%g: breakdown not monotone: %.1f / %.1f / %.1f", base.X[i], base.Y[i], edge.Y[i], full.Y[i])
		}
	}
}

func TestFig14SeriesFiveKernels(t *testing.T) {
	series := Fig14Series(platform.Phytium2000())
	for _, s := range series {
		if len(s.Y) != 5 {
			t.Fatalf("CP2K series %s has %d kernels, want 5", s.Label, len(s.Y))
		}
	}
}

func TestFig15LibShalomWinsEveryLayer(t *testing.T) {
	for _, p := range platform.All() {
		series := Fig15Series(p)
		var ls *Series
		for i := range series {
			if series[i].Label == "LibShalom" {
				ls = &series[i]
			}
		}
		for _, other := range series {
			if other.Label == "LibShalom" {
				continue
			}
			for i := range ls.Y {
				// 3% slack: the paper's conv4.2 bars are near-ties with
				// the second-best library.
				if ls.Y[i] < other.Y[i]*0.97 {
					t.Errorf("%s layer %d: %s (%.0f) beats LibShalom (%.0f)", p.Name, i, other.Label, other.Y[i], ls.Y[i])
				}
			}
		}
	}
}

func TestFig6CPIDirection(t *testing.T) {
	for _, p := range platform.All() {
		batch, inter := Fig6CPI(p, p.L2.LatencyCy)
		if inter > batch+1e-9 {
			t.Errorf("%s: interleaved CPI %.2f worse than batch %.2f at L2 latency", p.Name, inter, batch)
		}
	}
	// At least one platform must show a strict win (the Fig 6 claim).
	strict := false
	for _, p := range platform.All() {
		if b, i := Fig6CPI(p, p.L2.LatencyCy); i < b-1e-9 {
			strict = true
		}
	}
	if !strict {
		t.Fatal("no platform shows the Fig 6 scheduling win")
	}
}

func TestPrintSeriesLayout(t *testing.T) {
	var buf bytes.Buffer
	printSeries(&buf, "x", []Series{{Label: "a", X: []float64{1, 2}, Y: []float64{3.25, 4}}, {Label: "b", X: []float64{1, 2}, Y: []float64{5, 6}}})
	out := buf.String()
	if !strings.Contains(out, "a") || !strings.Contains(out, "b") || !strings.Contains(out, "3.2") {
		t.Fatalf("printSeries output wrong:\n%s", out)
	}
	buf.Reset()
	printSeries(&buf, "x", nil) // must not panic
}
