package bench

import (
	"fmt"
	"io"

	"libshalom/internal/isa"
	"libshalom/internal/kernels"
	"libshalom/internal/platform"
	"libshalom/internal/uarch"
)

// Fig6CPI returns the steady-state cycles per K iteration of the 8×4 edge
// micro-kernel pair of §5.4 on a platform, at the given operand load
// latency: the OpenBLAS batch schedule (Fig 6a) and LibShalom's interleaved
// schedule (Fig 6b).
func Fig6CPI(p *platform.Platform, loadLat int) (batch, interleaved float64) {
	cfg := uarch.FromPlatform(p)
	cfg.LoadLatency = loadLat
	build := func(sched kernels.Schedule) func(int) *isa.Program {
		return func(kc int) *isa.Program {
			if kc%4 != 0 {
				kc += 4 - kc%4
			}
			return kernels.BuildEdge8x4(kernels.EdgeSpec{
				Elem: 4, KC: kc, LDAp: 8, LDB: 4, LDC: 4, Schedule: sched,
			})
		}
	}
	batch = uarch.SteadyStateCPI(build(kernels.Batch), cfg, 32, 64)
	interleaved = uarch.SteadyStateCPI(build(kernels.Pipelined), cfg, 32, 64)
	return batch, interleaved
}

// Fig6 reproduces the instruction-scheduling comparison of §5.4: the
// OpenBLAS 8×4 edge micro-kernel with batch loads (Fig 6a) against
// LibShalom's interleaved schedule (Fig 6b), timed by the scoreboard model
// on every platform at L1- and L2-class operand latencies.
func Fig6(w io.Writer) {
	tw := newTab(w)
	fmt.Fprintln(tw, "platform\toperand latency\tbatch (Fig 6a) cy/iter\tinterleaved (Fig 6b) cy/iter\tspeedup")
	for _, p := range platform.All() {
		for _, lat := range []struct {
			name string
			cy   int
		}{{"L1-resident", p.L1.LatencyCy}, {"L2-resident", p.L2.LatencyCy}} {
			b, i := Fig6CPI(p, lat.cy)
			fmt.Fprintf(tw, "%s\t%s (%d cy)\t%.2f\t%.2f\t%.2fx\n", p.Name, lat.name, lat.cy, b, i, b/i)
		}
	}
	tw.Flush()
}
