package perfsim

import (
	"fmt"

	"libshalom/internal/baselines"
	"libshalom/internal/kernels"
)

// Variant options build LibShalom ablations: the full design with exactly
// one decision reverted, used by the `ablation` experiment to quantify each
// of DESIGN.md §3's choices.
type variantSpec struct {
	forceAlwaysPack bool
	sequentialPack  bool
	tileMR, tileNR  int
	batchEdges      bool
	partition       baselines.ParallelScheme // used when shapeAware disabled
	noShapeAware    bool
}

// VariantOpt mutates one aspect of the LibShalom persona.
type VariantOpt func(*variantSpec)

// WithForceAlwaysPack disables the §4.2 runtime packing decision: B is
// packed even when it fits L1 (the conventional-library behaviour).
func WithForceAlwaysPack() VariantOpt {
	return func(v *variantSpec) { v.forceAlwaysPack = true }
}

// WithSequentialPack replaces the §5.3 overlapped packing micro-kernels
// with a separate sequential packing pass.
func WithSequentialPack() VariantOpt {
	return func(v *variantSpec) { v.sequentialPack = true }
}

// WithTile overrides the analytic 7×12 / 7×6 register tile (Eq. 1–2
// ablation; e.g. 8×4 or 8×8).
func WithTile(mr, nr int) VariantOpt {
	return func(v *variantSpec) { v.tileMR, v.tileNR = mr, nr }
}

// WithBatchEdges reverts the §5.4 edge-kernel rescheduling to the batch
// load order of Fig 6a.
func WithBatchEdges() VariantOpt {
	return func(v *variantSpec) { v.batchEdges = true }
}

// WithPartition replaces the §6 shape-aware Tn = ⌈√(T·N/M)⌉ partition with
// a fixed scheme.
func WithPartition(s baselines.ParallelScheme) VariantOpt {
	return func(v *variantSpec) { v.partition = s; v.noShapeAware = true }
}

// LibShalomVariant returns a LibShalom persona with the given ablations
// applied. With no options it equals LibShalom().
func LibShalomVariant(name string, opts ...VariantOpt) Library {
	v := &variantSpec{}
	for _, o := range opts {
		o(v)
	}
	return Library{Name: name, kind: kindLibShalomVariant, variant: v}
}

func variantPersona(lib Library, elemBytes int) persona {
	p := personaFor(LibShalom(), elemBytes)
	p.name = lib.Name
	v := lib.variant
	if v == nil {
		return p
	}
	if v.forceAlwaysPack {
		p.noPackDecision = false
	}
	if v.sequentialPack {
		p.overlapPack = false
		p.seqPackA = false // LibShalom still never packs A under NN/NT (§4.2)
		p.seqPackB = true
	}
	if v.tileMR > 0 {
		lanes := 16 / elemBytes
		p.mr = v.tileMR
		p.nr = feasibleNR(v.tileMR, v.tileNR, lanes)
	}
	if v.batchEdges {
		p.edgeScheduled = false
		p.schedule = kernels.Batch
	}
	if v.noShapeAware {
		p.shapeAware = false
		p.parallel = v.partition
	}
	return p
}

// String names the variant.
func (l Library) String() string { return l.Name }

func init() {
	// Guard: a no-op variant must behave identically to the real persona.
	a := personaFor(LibShalom(), 4)
	b := variantPersona(LibShalomVariant("check"), 4)
	b.name = a.name
	if fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", b) {
		panic("perfsim: LibShalomVariant() drifted from LibShalom()")
	}
}
