package perfsim

import (
	"testing"

	"libshalom/internal/baselines"
	"libshalom/internal/platform"
)

func allLibs() []Library {
	return []Library{
		LibShalom(),
		Baseline(baselines.OpenBLAS), Baseline(baselines.BLIS), Baseline(baselines.ARMPL),
		Baseline(baselines.BLASFEO), Baseline(baselines.LIBXSMM),
	}
}

func TestRunBasicSanity(t *testing.T) {
	for _, p := range platform.All() {
		for _, l := range allLibs() {
			r := Run(l, p, Workload{M: 32, N: 32, K: 32, ElemBytes: 4, Threads: 1, Warm: true})
			if r.Seconds <= 0 || r.GFLOPS <= 0 {
				t.Fatalf("%s/%s: non-positive result %+v", l.Name, p.Name, r)
			}
			if r.GFLOPS > p.PeakCoreGFLOPS(4) {
				t.Fatalf("%s/%s: %f GFLOPS exceeds single-core peak %f", l.Name, p.Name, r.GFLOPS, p.PeakCoreGFLOPS(4))
			}
			if r.ActiveThreads != 1 {
				t.Fatalf("single-thread run reported %d active threads", r.ActiveThreads)
			}
		}
	}
}

func TestParallelNeverExceedsChipPeak(t *testing.T) {
	for _, p := range platform.All() {
		r := Run(LibShalom(), p, Workload{M: 256, N: 10240, K: 5000, ElemBytes: 4, TransB: true, Threads: p.Cores})
		if r.GFLOPS > p.PeakGFLOPS(4) {
			t.Fatalf("%s: parallel %f exceeds chip peak %f", p.Name, r.GFLOPS, p.PeakGFLOPS(4))
		}
		if r.GFLOPS < 0.25*p.PeakGFLOPS(4) {
			t.Fatalf("%s: LibShalom parallel irregular only %f of peak %f", p.Name, r.GFLOPS, p.PeakGFLOPS(4))
		}
	}
}

// TestFig7SmallGEMMLibShalomWins: §8.1 — warm-cache small square GEMM,
// LibShalom delivers the highest throughput across sizes and platforms
// (1.05–2× over the best alternative).
func TestFig7SmallGEMMLibShalomWins(t *testing.T) {
	for _, p := range platform.All() {
		for sz := 8; sz <= 120; sz += 8 {
			w := Workload{M: sz, N: sz, K: sz, ElemBytes: 4, Threads: 1, Warm: true}
			ls := Run(LibShalom(), p, w).GFLOPS
			for _, l := range allLibs()[1:] {
				alt := Run(l, p, w).GFLOPS
				if ls < alt*0.97 { // small slack: the paper's own Fig 8 shows near-ties
					t.Errorf("%s size %d: LibShalom %.1f below %s %.1f", p.Name, sz, ls, l.Name, alt)
				}
			}
		}
	}
}

// TestFig7Size8Advantage: §8.1 — at M=N=K=8 LibShalom delivers roughly 2×
// the throughput of the best alternative (conventional libraries are far
// behind; BLASFEO/LIBXSMM closer).
func TestFig7Size8Advantage(t *testing.T) {
	p := platform.Phytium2000()
	w := Workload{M: 8, N: 8, K: 8, ElemBytes: 4, Threads: 1, Warm: true}
	ls := Run(LibShalom(), p, w).GFLOPS
	conventionalBest := 0.0
	for _, b := range []baselines.Lib{baselines.OpenBLAS, baselines.BLIS, baselines.ARMPL} {
		if g := Run(Baseline(b), p, w).GFLOPS; g > conventionalBest {
			conventionalBest = g
		}
	}
	if ls < 1.8*conventionalBest {
		t.Fatalf("size-8 advantage over conventional libraries %f, want ≈2×", ls/conventionalBest)
	}
	blasfeo := Run(Baseline(baselines.BLASFEO), p, w).GFLOPS
	if ls < 1.3*blasfeo {
		t.Fatalf("size-8 advantage over BLASFEO only %.2fx", ls/blasfeo)
	}
}

// TestFig2MotivationShape: §3.1 — conventional libraries are fine on large
// GEMM (>70% of peak at ≥256) but poor on small (<25% at 8).
func TestFig2MotivationShape(t *testing.T) {
	p := platform.Phytium2000()
	peak := p.PeakCoreGFLOPS(4)
	small := Run(Baseline(baselines.OpenBLAS), p, Workload{M: 8, N: 8, K: 8, ElemBytes: 4, Threads: 1, Warm: true})
	if small.GFLOPS/peak > 0.25 {
		t.Fatalf("OpenBLAS at size 8 reaches %.0f%% of peak; motivation requires <25%%", 100*small.GFLOPS/peak)
	}
	large := Run(Baseline(baselines.OpenBLAS), p, Workload{M: 1024, N: 1024, K: 1024, ElemBytes: 4, Threads: 1})
	if large.GFLOPS/peak < 0.7 {
		t.Fatalf("OpenBLAS at 1024 reaches only %.0f%% of peak; should exceed 70%%", 100*large.GFLOPS/peak)
	}
}

// TestFig9IrregularParallel: §8.2 — parallel irregular NT GEMM on Phytium:
// LibShalom beats BLIS (second best) by ≈1.8× on average and ≈2.6× at M=32;
// OpenBLAS's M-split collapses to a few percent of peak.
func TestFig9IrregularParallel(t *testing.T) {
	p := platform.Phytium2000()
	ratioAt := func(m int) float64 {
		w := Workload{M: m, N: 10240, K: 5000, ElemBytes: 4, TransB: true, Threads: 64}
		return Run(LibShalom(), p, w).GFLOPS / Run(Baseline(baselines.BLIS), p, w).GFLOPS
	}
	if r := ratioAt(32); r < 2.0 || r > 3.5 {
		t.Fatalf("M=32 LibShalom/BLIS = %.2f, paper reports ≈2.6", r)
	}
	sum := 0.0
	ms := []int{32, 64, 128, 256}
	for _, m := range ms {
		sum += ratioAt(m)
	}
	if avg := sum / float64(len(ms)); avg < 1.4 || avg > 2.6 {
		t.Fatalf("average LibShalom/BLIS = %.2f, paper reports ≈1.8", avg)
	}
	// OpenBLAS at M=32 uses only M/mr threads and lands in single-digit
	// percent of peak (§3.2 reports 6%).
	ob := Run(Baseline(baselines.OpenBLAS), p, Workload{M: 32, N: 10240, K: 5000, ElemBytes: 4, TransB: true, Threads: 64})
	if ob.ActiveThreads > 8 {
		t.Fatalf("OpenBLAS M-split used %d threads for M=32", ob.ActiveThreads)
	}
	if frac := ob.GFLOPS / p.PeakGFLOPS(4); frac > 0.10 {
		t.Fatalf("OpenBLAS at M=32 reaches %.1f%% of peak; paper reports ≈6%%", 100*frac)
	}
}

// TestFig11Scalability: §8.3 — maximum speedup over single-threaded
// OpenBLAS on the VGG kernel is ≈49× (Phytium), ≈82× (KP920), ≈35× (TX2),
// with KP920 clearly ahead.
func TestFig11Scalability(t *testing.T) {
	want := map[string]float64{"Phytium 2000+": 49, "Kunpeng 920": 82, "ThunderX2": 35}
	got := map[string]float64{}
	for _, p := range platform.All() {
		w := Workload{M: 64, N: 50176, K: 576, ElemBytes: 4, TransB: true}
		w.Threads = 1
		base := Run(Baseline(baselines.OpenBLAS), p, w).Seconds
		w.Threads = p.Cores
		sp := base / Run(LibShalom(), p, w).Seconds
		got[p.Name] = sp
		if sp < want[p.Name]*0.75 || sp > want[p.Name]*1.25 {
			t.Errorf("%s max speedup %.1f, paper reports ≈%.0f", p.Name, sp, want[p.Name])
		}
	}
	if !(got["Kunpeng 920"] > got["Phytium 2000+"] && got["Phytium 2000+"] > got["ThunderX2"]) {
		t.Errorf("speedup ordering wrong: %v (paper: KP920 > Phytium > TX2)", got)
	}
}

// TestFig11MonotoneScaling: speedup must increase with thread count.
func TestFig11MonotoneScaling(t *testing.T) {
	p := platform.KP920()
	prev := 0.0
	for _, th := range []int{1, 2, 4, 8, 16, 32, 64} {
		r := Run(LibShalom(), p, Workload{M: 64, N: 50176, K: 576, ElemBytes: 4, TransB: true, Threads: th})
		sp := 1 / r.Seconds
		if sp <= prev {
			t.Fatalf("throughput not monotone at %d threads", th)
		}
		prev = sp
	}
}

// TestFig13Breakdown: §8.5 — each optimization contributes: baseline <
// +edge < +packing, with the packing overlap the dominant term, and the
// KP920 total gain exceeding Phytium's (the paper reports 1.25× vs 1.6× at
// M=20).
func TestFig13Breakdown(t *testing.T) {
	gains := map[string]float64{}
	for _, p := range platform.All() {
		w := Workload{M: 20, N: 50176, K: 576, ElemBytes: 4, TransB: true, Threads: 1}
		base := Run(Baseline(baselines.OpenBLAS), p, w).GFLOPS
		edge := Run(BaselinePlusEdgeOpt(), p, w).GFLOPS
		full := Run(LibShalom(), p, w).GFLOPS
		if !(base < edge && edge < full) {
			t.Errorf("%s: breakdown not monotone: %.1f / %.1f / %.1f", p.Name, base, edge, full)
		}
		if (full - edge) < (edge - base) {
			t.Errorf("%s: packing contribution should dominate (edge +%.1f, pack +%.1f)", p.Name, edge-base, full-edge)
		}
		g := full / base
		gains[p.Name] = g
		if g < 1.15 || g > 3.0 {
			t.Errorf("%s: total gain %.2f out of plausible range (paper: 1.25–1.6 at M=20)", p.Name, g)
		}
	}
	if gains["Kunpeng 920"] <= gains["Phytium 2000+"] {
		t.Errorf("KP920 gain %.2f should exceed Phytium %.2f (§8.5)", gains["Kunpeng 920"], gains["Phytium 2000+"])
	}
}

// TestFig14CP2K: §8.6 — FP64 CP2K kernels: LibShalom best everywhere, and
// roughly 2× LIBXSMM at 5×5×5.
func TestFig14CP2K(t *testing.T) {
	shapes := [][3]int{{5, 5, 5}, {13, 5, 13}, {13, 13, 13}, {23, 23, 23}, {26, 26, 13}}
	for _, p := range platform.All() {
		for _, s := range shapes {
			w := Workload{M: s[0], N: s[1], K: s[2], ElemBytes: 8, Threads: 1, Warm: true}
			ls := Run(LibShalom(), p, w).GFLOPS
			for _, l := range allLibs()[1:] {
				if alt := Run(l, p, w).GFLOPS; ls < alt {
					t.Errorf("%s %v: %s (%.2f) beats LibShalom (%.2f)", p.Name, s, l.Name, alt, ls)
				}
			}
		}
	}
	w5 := Workload{M: 5, N: 5, K: 5, ElemBytes: 8, Threads: 1, Warm: true}
	kp := platform.KP920()
	ratio := Run(LibShalom(), kp, w5).GFLOPS / Run(Baseline(baselines.LIBXSMM), kp, w5).GFLOPS
	if ratio < 1.5 || ratio > 3.0 {
		t.Errorf("5x5x5 LibShalom/LIBXSMM = %.2f, paper reports up to 2×", ratio)
	}
}

// TestFig12L2MissReduction: §8.4 — LibShalom reduces chip L2 misses versus
// OpenBLAS for the irregular NT sweep, more on KP920 (≈20%) than TX2 (≈4%).
func TestFig12L2MissReduction(t *testing.T) {
	red := func(p *platform.Platform, k int) float64 {
		w := Workload{M: 64, N: 50176, K: k, ElemBytes: 4, TransB: true, Threads: 1}
		ls := Run(LibShalom(), p, w).L2Misses
		ob := Run(Baseline(baselines.OpenBLAS), p, w).L2Misses
		return 1 - ls/ob
	}
	for _, k := range []int{576, 1600, 3744} {
		kpRed := red(platform.KP920(), k)
		txRed := red(platform.ThunderX2(), k)
		if kpRed <= 0 || txRed <= 0 {
			t.Fatalf("K=%d: miss reductions must be positive (kp %.2f tx %.2f)", k, kpRed, txRed)
		}
		if kpRed <= txRed {
			t.Errorf("K=%d: KP920 reduction %.1f%% should exceed TX2 %.1f%%", k, kpRed*100, txRed*100)
		}
	}
}

// TestNTvsNNIrregular: §8.2 — for parallel irregular GEMM LibShalom is
// faster under NT than NN (B's K-contiguous layout feeds the pack kernel).
func TestWarmVsCold(t *testing.T) {
	p := platform.KP920()
	warm := Run(LibShalom(), p, Workload{M: 24, N: 24, K: 24, ElemBytes: 4, Threads: 1, Warm: true})
	cold := Run(LibShalom(), p, Workload{M: 24, N: 24, K: 24, ElemBytes: 4, Threads: 1, Warm: false})
	if warm.GFLOPS <= cold.GFLOPS {
		t.Fatalf("warm run (%.1f) must beat cold run (%.1f)", warm.GFLOPS, cold.GFLOPS)
	}
}

func TestFP64HalfThroughput(t *testing.T) {
	// §8.1: FP64 throughput is roughly half of FP32 across methods.
	p := platform.KP920()
	f32 := Run(LibShalom(), p, Workload{M: 64, N: 64, K: 64, ElemBytes: 4, Threads: 1, Warm: true}).GFLOPS
	f64 := Run(LibShalom(), p, Workload{M: 64, N: 64, K: 64, ElemBytes: 8, Threads: 1, Warm: true}).GFLOPS
	if ratio := f32 / f64; ratio < 1.6 || ratio > 2.6 {
		t.Fatalf("FP32/FP64 throughput ratio %.2f, want ≈2", ratio)
	}
}

func TestBLASFEOIgnoresThreads(t *testing.T) {
	p := platform.KP920()
	w := Workload{M: 64, N: 4096, K: 512, ElemBytes: 4, Threads: 64}
	r := Run(Baseline(baselines.BLASFEO), p, w)
	if r.ActiveThreads != 1 {
		t.Fatal("BLASFEO must stay single-threaded (§7.4)")
	}
}

func TestComponentsPresent(t *testing.T) {
	r := Run(Baseline(baselines.OpenBLAS), platform.KP920(), Workload{M: 100, N: 100, K: 100, ElemBytes: 4, Threads: 1})
	for _, key := range []string{"kernel", "edge", "pack", "mem", "overhead"} {
		if _, ok := r.Components[key]; !ok {
			t.Fatalf("component %q missing", key)
		}
	}
	if r.Components["pack"] <= 0 {
		t.Fatal("sequential packer must report pack time")
	}
	ls := Run(LibShalom(), platform.KP920(), Workload{M: 100, N: 100, K: 100, ElemBytes: 4, Threads: 1})
	if ls.Components["pack"] != 0 {
		t.Fatal("LibShalom must report zero sequential pack time (overlapped)")
	}
}

func TestDegenerateWorkload(t *testing.T) {
	r := Run(LibShalom(), platform.KP920(), Workload{M: 0, N: 10, K: 10, ElemBytes: 4, Threads: 1})
	if r.Seconds != 0 {
		// zero-work GEMM models as zero kernel time; GFLOPS undefined but
		// must not be NaN-propagating for callers
		t.Logf("zero-M workload: %+v", r)
	}
}

// TestNTvsNNByRegime: §8.1 — LibShalom's NN beats its NT on small GEMM (no
// packing when B fits L1); §8.2 — NT beats NN on parallel irregular GEMM
// (the NN sliver pack walks B rows a page apart).
func TestNTvsNNByRegime(t *testing.T) {
	for _, p := range platform.All() {
		small := Workload{M: 32, N: 32, K: 32, ElemBytes: 4, Threads: 1, Warm: true}
		nnS := Run(LibShalom(), p, small).GFLOPS
		small.TransB = true
		ntS := Run(LibShalom(), p, small).GFLOPS
		if nnS < ntS {
			t.Errorf("%s small: NN (%.1f) below NT (%.1f); §8.1 says NN wins when B fits L1", p.Name, nnS, ntS)
		}
		irr := Workload{M: 32, N: 10240, K: 5000, ElemBytes: 4, Threads: p.Cores}
		nnI := Run(LibShalom(), p, irr).GFLOPS
		irr.TransB = true
		ntI := Run(LibShalom(), p, irr).GFLOPS
		if ntI < nnI {
			t.Errorf("%s irregular: NT (%.0f) below NN (%.0f); §8.2 says NT wins", p.Name, ntI, nnI)
		}
	}
}

// TestTransAModesCostModeled: TN must cost a bounded amount over NN (the A
// gather is a per-block pass), and TT relates to NT the same way — §8.1/8.2
// note the T-mode trends mirror NN/NT.
func TestTransAModesCostModeled(t *testing.T) {
	p := platform.KP920()
	for _, w := range []Workload{
		{M: 64, N: 64, K: 64, ElemBytes: 4, Threads: 1, Warm: true},
		{M: 20, N: 50176, K: 576, ElemBytes: 4, Threads: 1},
	} {
		nn := Run(LibShalom(), p, w).GFLOPS
		wTA := w
		wTA.TransA = true
		tn := Run(LibShalom(), p, wTA).GFLOPS
		if tn >= nn {
			t.Errorf("TN (%.1f) not below NN (%.1f): the A gather must cost", tn, nn)
		}
		if tn < nn*0.5 {
			t.Errorf("TN (%.1f) implausibly far below NN (%.1f)", tn, nn)
		}
	}
}

// TestFig8ColdCacheClaims: §8.1 — cold-cache runs are slower than warm
// ones, and LibShalom's margin over BLASFEO shrinks at multiples of
// BLASFEO's 8×8 kernel (where BLASFEO has no edge cases and LibShalom's
// 7×12 tile does).
func TestFig8ColdCacheClaims(t *testing.T) {
	p := platform.Phytium2000()
	margin := func(sz int) float64 {
		w := Workload{M: sz, N: sz, K: sz, ElemBytes: 4, Threads: 1, Warm: false}
		return Run(LibShalom(), p, w).GFLOPS / Run(Baseline(baselines.BLASFEO), p, w).GFLOPS
	}
	// Margin at a multiple of 8 vs a non-multiple nearby.
	at64, at60 := margin(64), margin(60)
	if at64 >= at60 {
		t.Errorf("margin at 64 (%.2f) should shrink below 60 (%.2f): BLASFEO is edge-free at 8-multiples", at64, at60)
	}
	for _, sz := range []int{16, 40, 88} {
		w := Workload{M: sz, N: sz, K: sz, ElemBytes: 4, Threads: 1}
		w.Warm = true
		warm := Run(LibShalom(), p, w).GFLOPS
		w.Warm = false
		cold := Run(LibShalom(), p, w).GFLOPS
		if cold >= warm {
			t.Errorf("size %d: cold (%.1f) not below warm (%.1f)", sz, cold, warm)
		}
	}
}

// TestComponentsSumToTotal: the serial components must account for the
// whole single-thread critical path.
func TestComponentsSumToTotal(t *testing.T) {
	r := Run(Baseline(baselines.OpenBLAS), platform.ThunderX2(), Workload{M: 100, N: 333, K: 77, ElemBytes: 4, Threads: 1})
	sum := 0.0
	for _, v := range r.Components {
		sum += v
	}
	if d := sum/r.Seconds - 1; d > 1e-9 || d < -1e-9 {
		t.Fatalf("components sum to %.3g of %.3g seconds", sum, r.Seconds)
	}
}

// TestRunConcurrencySafe: Run memoizes micro-kernel simulations behind a
// mutex; concurrent evaluations must race-free produce identical results.
func TestRunConcurrencySafe(t *testing.T) {
	p := platform.KP920()
	w := Workload{M: 48, N: 96, K: 72, ElemBytes: 4, Threads: 1, Warm: true}
	want := Run(LibShalom(), p, w).GFLOPS
	done := make(chan float64, 8)
	for i := 0; i < 8; i++ {
		go func() { done <- Run(LibShalom(), p, w).GFLOPS }()
	}
	for i := 0; i < 8; i++ {
		if got := <-done; got != want {
			t.Fatalf("concurrent Run diverged: %v vs %v", got, want)
		}
	}
}
