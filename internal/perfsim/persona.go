// Package perfsim is the end-to-end performance model of the reproduction:
// it combines instruction-level micro-kernel timing (internal/uarch over the
// ISA programs of internal/kernels), the analytic memory-traffic model
// (internal/cachemodel) and the parallel partition models into GFLOPS, cache
// miss and speedup estimates for every (library, platform, workload) point
// the paper's figures report. Absolute numbers are model outputs; tests and
// EXPERIMENTS.md validate the paper's *shapes*: who wins, by what factor,
// and where the crossovers fall.
package perfsim

import (
	"libshalom/internal/baselines"
	"libshalom/internal/kernels"
)

// Library identifies one modeled implementation, including LibShalom's
// ablation variants (Fig 13).
type Library struct {
	Name string
	// kind discriminates the persona construction below.
	kind libKind
	base baselines.Lib
	// variant holds ablation overrides for kindLibShalomVariant.
	variant *variantSpec
}

type libKind int

const (
	kindLibShalom libKind = iota
	kindBaseline
	// kindBaselinePlusEdge is the Fig 13 middle bar: the conventional data
	// flow with only LibShalom's edge-kernel rescheduling applied.
	kindBaselinePlusEdge
	// kindLibShalomVariant is a LibShalom ablation (variants.go).
	kindLibShalomVariant
)

// LibShalom returns the full LibShalom persona.
func LibShalom() Library { return Library{Name: "LibShalom", kind: kindLibShalom} }

// Baseline returns the persona of one comparison library.
func Baseline(b baselines.Lib) Library {
	return Library{Name: b.String(), kind: kindBaseline, base: b}
}

// BaselinePlusEdgeOpt returns the Fig 13 ablation: OpenBLAS's strategy with
// LibShalom's edge-case instruction scheduling only.
func BaselinePlusEdgeOpt() Library {
	return Library{Name: "+edge-case optimization", kind: kindBaselinePlusEdge, base: baselines.OpenBLAS}
}

// persona is the resolved timing character of a library.
type persona struct {
	name string
	// mr/nr is the micro-kernel tile for the element size.
	mr, nr int
	// schedule of the main kernel's instruction stream.
	schedule kernels.Schedule
	// edgeScheduled: edge kernels use LibShalom's interleaved schedule
	// (§5.4); otherwise the batch schedule of Fig 6a.
	edgeScheduled bool
	// edgePad: edge tiles are charged full-tile cost (BLIS zero-padding).
	edgePad bool
	// packPolicy
	seqPackA, seqPackB bool // conventional sequential packing
	overlapPack        bool // LibShalom micro-kernel packing
	noPackDecision     bool // LibShalom skips packing for L1-resident B (§4.2)
	// parallel
	parallel   baselines.ParallelScheme
	shapeAware bool // LibShalom's Tn = ⌈√(T·N/M)⌉ partition
	// quality and overheads
	eff          float64 // steady-state kernel quality multiplier (≤ 1 divides speed)
	callOverhead float64 // cycles per GEMM invocation (dispatch, buffers)
	// smallDirectCube: LIBXSMM's JIT scope; within it the persona runs
	// unpacked specialized kernels with no edge penalty.
	smallDirectCube int
	// panelUpfront: BLASFEO converts whole operands before computing.
	panelUpfront bool
}

// personaFor resolves a Library into its timing character for an element
// size. Baseline tiles follow baselines.SpecFor; tile shapes that exceed
// the 32-register NEON file (BLIS's 8×12) are simulated at the nearest
// feasible shape and compensated through eff.
func personaFor(lib Library, elemBytes int) persona {
	lanes := 16 / elemBytes
	switch lib.kind {
	case kindLibShalom:
		p := persona{
			name: lib.Name, schedule: kernels.Pipelined, edgeScheduled: true,
			overlapPack: true, noPackDecision: true, shapeAware: true,
			parallel: baselines.SchemeGrid, eff: 0.95, callOverhead: 60,
		}
		if elemBytes == 4 {
			p.mr, p.nr = 7, 12
		} else {
			p.mr, p.nr = 7, 6
		}
		return p
	case kindBaselinePlusEdge:
		p := baselinePersona(lib.base, elemBytes, lanes)
		p.name = lib.Name
		p.edgeScheduled = true
		return p
	case kindLibShalomVariant:
		return variantPersona(lib, elemBytes)
	default:
		return baselinePersona(lib.base, elemBytes, lanes)
	}
}

func baselinePersona(b baselines.Lib, elemBytes, lanes int) persona {
	spec := baselines.SpecFor(b)
	p := persona{
		name:     spec.Name,
		mr:       spec.MR,
		nr:       feasibleNR(spec.MR, spec.NR, lanes),
		schedule: kernels.Batch,
		edgePad:  spec.Edge == baselines.EdgePad,
		seqPackA: true, seqPackB: true,
		parallel:        spec.Parallel,
		eff:             spec.KernelEfficiency,
		callOverhead:    500,
		smallDirectCube: spec.SmallDirectCube,
		panelUpfront:    spec.PanelMajorUpfront,
	}
	switch b {
	case baselines.BLASFEO:
		// BLASFEO's small-matrix kernels are carefully scheduled; its
		// weakness is the up-front panel-major conversion of both operands
		// and the L2-resident design scope, not the instruction stream.
		p.schedule = kernels.Pipelined
		p.callOverhead = 300
		p.eff = 0.92
	case baselines.LIBXSMM:
		// JIT code is close to optimal within scope, but dispatch (code-
		// cache lookup) costs more than a plain call and generated code
		// trails hand-scheduled assembly slightly.
		p.schedule = kernels.Pipelined
		p.callOverhead = 280
		p.eff = 0.85
	}
	return p
}

// feasibleNR shrinks nr until the (mr, nr) tile fits the 32-register file
// for the ISA simulation (BLIS's published 8×12 FP32 tile relies on
// register reuse tricks the virtual ISA does not model).
func feasibleNR(mr, nr, lanes int) int {
	for nr > lanes {
		nb := nr / lanes
		if mr+nb+mr*nb <= 32 {
			return nr
		}
		nr -= lanes
	}
	return lanes
}
