package perfsim

import (
	"testing"

	"libshalom/internal/platform"
	"libshalom/internal/telemetry"
)

func TestClassPredictionCoversEveryKey(t *testing.T) {
	p := platform.KP920()
	for class := uint8(0); class < 6; class++ {
		for mode := uint8(0); mode < 4; mode++ {
			for _, elem := range []int{4, 8} {
				for kernel := uint8(0); kernel < 2; kernel++ {
					v := ClassPrediction(p, elem, mode, class, kernel, 1)
					if class == uint8(telemetry.ShapeEmpty) {
						if v != 0 {
							t.Fatalf("empty class predicted %v, want 0", v)
						}
						continue
					}
					if v <= 0 {
						t.Fatalf("class %v mode %d elem %d kernel %d: prediction %v, want > 0",
							telemetry.ShapeClass(class), mode, elem, kernel, v)
					}
					if peak := p.PeakGFLOPS(elem); v > peak {
						t.Fatalf("class %v prediction %v exceeds chip peak %v",
							telemetry.ShapeClass(class), v, peak)
					}
				}
			}
		}
	}
}

func TestClassPredictionRefBelowFast(t *testing.T) {
	p := platform.KP920()
	for class := uint8(1); class < 6; class++ {
		fast := ClassPrediction(p, 4, 0, class, 0, 1)
		ref := ClassPrediction(p, 4, 0, class, 1, 1)
		if ref >= fast {
			t.Fatalf("class %v: ref prediction %v not below fast %v",
				telemetry.ShapeClass(class), ref, fast)
		}
		if ref != fast*RefKernelFactor {
			t.Fatalf("class %v: ref prediction %v, want fast×%v", telemetry.ShapeClass(class), ref, RefKernelFactor)
		}
	}
}

func TestClassPredictionMemoised(t *testing.T) {
	p := platform.KP920()
	a := ClassPrediction(p, 4, 1, uint8(telemetry.ShapeSmall), 0, 4)
	b := ClassPrediction(p, 4, 1, uint8(telemetry.ShapeSmall), 0, 4)
	if a != b {
		t.Fatalf("memoised prediction changed: %v then %v", a, b)
	}
	classPredMu.Lock()
	_, ok := classPredCache[classPredKey{p.Name, 4, 1, uint8(telemetry.ShapeSmall), 0, 4}]
	classPredMu.Unlock()
	if !ok {
		t.Fatal("prediction not cached")
	}
}

func TestRepresentativeShapesRoundTrip(t *testing.T) {
	for class := telemetry.ShapeTiny; class <= telemetry.ShapeIrregular; class++ {
		m, n, k := telemetry.RepresentativeShape(class)
		if got := telemetry.ClassifyShape(m, n, k); got != class {
			t.Fatalf("RepresentativeShape(%v) = %d×%d×%d classifies as %v", class, m, n, k, got)
		}
	}
}
