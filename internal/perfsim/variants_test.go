package perfsim

import (
	"testing"

	"libshalom/internal/baselines"
	"libshalom/internal/platform"
)

func TestVariantNoOpEqualsFull(t *testing.T) {
	p := platform.KP920()
	w := Workload{M: 48, N: 48, K: 48, ElemBytes: 4, Threads: 1, Warm: true}
	full := Run(LibShalom(), p, w)
	noop := Run(LibShalomVariant("noop"), p, w)
	if full.GFLOPS != noop.GFLOPS {
		t.Fatalf("no-op variant differs: %.2f vs %.2f", noop.GFLOPS, full.GFLOPS)
	}
}

// TestAblationSequentialPackHurtsIrregular: reverting §5.3 must cost
// throughput on the irregular NT workload.
func TestAblationSequentialPackHurtsIrregular(t *testing.T) {
	w := Workload{M: 20, N: 50176, K: 576, ElemBytes: 4, TransB: true, Threads: 1}
	for _, p := range platform.All() {
		full := Run(LibShalom(), p, w).GFLOPS
		abl := Run(LibShalomVariant("seq", WithSequentialPack()), p, w).GFLOPS
		if abl >= full {
			t.Errorf("%s: sequential packing (%.1f) not slower than overlapped (%.1f)", p.Name, abl, full)
		}
	}
}

// TestAblationOverlapMakesForcedPackCheap: §5.3's complementary claim —
// with overlapped packing, even packing an L1-resident B costs almost
// nothing (< 3%), whereas sequential always-pack costs more.
func TestAblationOverlapMakesForcedPackCheap(t *testing.T) {
	p := platform.Phytium2000()
	w := Workload{M: 32, N: 32, K: 32, ElemBytes: 4, Threads: 1, Warm: true}
	full := Run(LibShalom(), p, w).GFLOPS
	forced := Run(LibShalomVariant("forced", WithForceAlwaysPack()), p, w).GFLOPS
	if forced < full*0.97 {
		t.Fatalf("forced overlapped packing costs %.1f%%, should be <3%%", 100*(1-forced/full))
	}
	seq := Run(LibShalomVariant("seqforced", WithForceAlwaysPack(), WithSequentialPack()), p, w).GFLOPS
	if seq >= forced {
		t.Fatalf("sequential always-pack (%.1f) not slower than overlapped always-pack (%.1f)", seq, forced)
	}
}

// TestAblationBatchEdgesHurtSmall: reverting §5.4 must cost on small GEMM
// with heavy edge fractions.
func TestAblationBatchEdgesHurtSmall(t *testing.T) {
	w := Workload{M: 20, N: 20, K: 20, ElemBytes: 4, Threads: 1, Warm: true}
	for _, p := range platform.All() {
		full := Run(LibShalom(), p, w).GFLOPS
		abl := Run(LibShalomVariant("batch", WithBatchEdges()), p, w).GFLOPS
		if abl >= full {
			t.Errorf("%s: batch edges (%.1f) not slower than scheduled (%.1f)", p.Name, abl, full)
		}
	}
}

// TestAblationPartitionDominates: reverting §6 must be the most expensive
// ablation on parallel irregular GEMM — the paper's ≥2.6× BLIS gap at M=32
// is built on it.
func TestAblationPartitionDominates(t *testing.T) {
	p := platform.Phytium2000()
	w := Workload{M: 32, N: 10240, K: 5000, ElemBytes: 4, TransB: true, Threads: 64}
	full := Run(LibShalom(), p, w).GFLOPS
	msplit := Run(LibShalomVariant("msplit", WithPartition(baselines.SchemeMSplit)), p, w)
	if msplit.GFLOPS > full/4 {
		t.Fatalf("M-split ablation only %.1fx slower; should collapse (few active threads)", full/msplit.GFLOPS)
	}
	if msplit.ActiveThreads > 8 {
		t.Fatalf("M-split on M=32 used %d threads", msplit.ActiveThreads)
	}
	grid := Run(LibShalomVariant("grid", WithPartition(baselines.SchemeGrid)), p, w).GFLOPS
	if grid >= full {
		t.Fatal("square grid not slower than shape-aware partition")
	}
}

// TestAblationTileMattersOnIrregular: the 8×8 tile's lower CMR must cost
// on the irregular NT workload.
func TestAblationTileMattersOnIrregular(t *testing.T) {
	p := platform.KP920()
	w := Workload{M: 20, N: 50176, K: 576, ElemBytes: 4, TransB: true, Threads: 1}
	full := Run(LibShalom(), p, w).GFLOPS
	abl := Run(LibShalomVariant("t88", WithTile(8, 8)), p, w).GFLOPS
	if abl >= full {
		t.Fatalf("8x8 tile (%.1f) not slower than 7x12 (%.1f)", abl, full)
	}
}

func TestVariantStringAndFeasibleNR(t *testing.T) {
	v := LibShalomVariant("my-variant", WithTile(8, 12))
	if v.String() != "my-variant" {
		t.Fatal("variant name lost")
	}
	// 8x12 FP32 is register-infeasible; the persona must shrink NR.
	p := variantPersona(v, 4)
	if p.mr != 8 || p.nr != 8 {
		t.Fatalf("infeasible tile not shrunk: %dx%d", p.mr, p.nr)
	}
}
