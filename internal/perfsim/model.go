package perfsim

import (
	"fmt"
	"math"
	"sync"

	"libshalom/internal/analytic"
	"libshalom/internal/baselines"
	"libshalom/internal/cachemodel"
	"libshalom/internal/kernels"
	"libshalom/internal/parallel"
	"libshalom/internal/platform"
	"libshalom/internal/uarch"
)

// Workload is one modeled GEMM invocation.
type Workload struct {
	M, N, K   int
	ElemBytes int  // 4 or 8
	TransA    bool // TN/TT data layout (A stored K×M)
	TransB    bool // NT data layout (the figures evaluate NN and NT)
	Threads   int
	Warm      bool // warm-cache methodology of Fig 7 (vs cold, Fig 8)
}

// Flops returns the floating-point operation count of the workload.
func (w Workload) Flops() float64 { return 2 * float64(w.M) * float64(w.N) * float64(w.K) }

// Result is the model's output for one (library, platform, workload) point.
type Result struct {
	Seconds  float64
	GFLOPS   float64
	L2Misses float64 // chip-total modeled L2 miss lines
	// Components decomposes the per-thread critical path in seconds:
	// "kernel", "edge", "pack", "mem", "overhead", "forkjoin".
	Components map[string]float64
	// ActiveThreads is how many threads received work under the persona's
	// partition (§3.2's third missed opportunity shows up here).
	ActiveThreads int
}

// Run evaluates the model.
func Run(lib Library, plat *platform.Platform, w Workload) Result {
	p := personaFor(lib, w.ElemBytes)
	freqHz := plat.FreqGHz * 1e9

	threads := w.Threads
	if threads < 1 {
		threads = 1
	}
	if p.parallel == baselines.SchemeNone {
		threads = 1
	}

	if threads == 1 {
		st := singleThread(p, plat, w.M, w.N, w.K, w.ElemBytes, w.TransA, w.TransB, w.Warm, plat.DRAMBandwidthGB/4, w.N)
		sec := st.cycles / freqHz
		comps := st.components(freqHz)
		return Result{
			Seconds:       sec,
			GFLOPS:        w.Flops() / sec / 1e9,
			L2Misses:      st.traffic.L2MissLines,
			Components:    comps,
			ActiveThreads: 1,
		}
	}

	// --- parallel path ---
	var part analytic.Partition
	if p.shapeAware {
		part = analytic.PartitionFor(w.M, w.N, threads)
	} else {
		switch p.parallel {
		case baselines.SchemeMSplit:
			part = analytic.Partition{TM: threads, TN: 1}
		case baselines.SchemeNSplit:
			part = analytic.Partition{TM: 1, TN: threads}
		case baselines.SchemeGridM:
			part = baselines.GridMPartition(threads)
		default:
			tm := int(math.Sqrt(float64(threads)))
			for threads%tm != 0 {
				tm--
			}
			part = analytic.Partition{TM: tm, TN: threads / tm}
		}
	}
	blocks := parallel.Blocks(w.M, w.N, part, p.mr, p.nr)
	active := len(blocks)
	// Critical path: the largest block.
	var worst parallel.Block
	for _, b := range blocks {
		if b.M*b.N > worst.M*worst.N {
			worst = b
		}
	}
	// A thread's share of the memory system shrinks as active threads grow
	// (a single core can stream about a quarter of the chip bandwidth).
	// When the chip has a shared L3, the TM threads of one column group
	// read the same B slice: one DRAM fetch serves all of them, which
	// effectively multiplies each thread's bandwidth (capped — the L3
	// cannot broadcast indefinitely). Phytium 2000+ has no L3, so every
	// thread pays for its own copy — one reason its irregular-GEMM
	// baselines collapse harder (Fig 9 vs Fig 10).
	share := 1
	if plat.L3.SizeBytes > 0 && part.TM > 1 {
		share = part.TM
		if share > 8 {
			share = 8
		}
		if share > active {
			share = active
		}
	}
	bwShare := plat.DRAMBandwidthGB / float64(maxI(4, active)) * float64(share)
	// The per-thread block still walks B at the original matrix's row
	// stride.
	st := singleThread(p, plat, worst.M, worst.N, w.K, w.ElemBytes, w.TransA, w.TransB, w.Warm, bwShare, w.N)
	fj := float64(plat.ForkJoinBaseCy + plat.ForkJoinPerThreadCy*threads)
	// Critical-path friction: contention and stragglers grow with the
	// number of active threads (see platform.StragglerFrac).
	straggle := 1 + plat.StragglerFrac*math.Log2(float64(maxI(2, active)))
	perThreadSec := (st.cycles*straggle + fj) / freqHz

	// Chip-level DRAM bandwidth floor: every block's traffic shares the
	// memory system.
	chipBytes := st.traffic.DRAMBytes * float64(active) / float64(share)
	bwFloor := chipBytes / (plat.DRAMBandwidthGB * 1e9)
	sec := perThreadSec
	if bwFloor > sec {
		sec = bwFloor
	}
	comps := st.components(freqHz)
	comps["forkjoin"] = fj / freqHz
	if bwFloor > perThreadSec {
		comps["bandwidth"] = bwFloor - perThreadSec
	}
	return Result{
		Seconds:       sec,
		GFLOPS:        w.Flops() / sec / 1e9,
		L2Misses:      st.traffic.L2MissLines * float64(active),
		Components:    comps,
		ActiveThreads: active,
	}
}

// stResult is the single-thread model decomposition (cycles).
type stResult struct {
	cycles     float64
	kernelFull float64
	kernelEdge float64
	packCycles float64
	memCycles  float64
	overhead   float64
	traffic    cachemodel.Traffic
}

func (s stResult) components(freqHz float64) map[string]float64 {
	return map[string]float64{
		"kernel":   s.kernelFull / freqHz,
		"edge":     s.kernelEdge / freqHz,
		"pack":     s.packCycles / freqHz,
		"mem":      s.memCycles / freqHz,
		"overhead": s.overhead / freqHz,
	}
}

// singleThread models one thread's GEMM of shape m×n×k.
func singleThread(p persona, plat *platform.Platform, m, n, k, elem int, transA, transB, warm bool, bwGBs float64, ldbElems int) stResult {
	var r stResult
	if m <= 0 || n <= 0 || k <= 0 {
		return r
	}
	lanes := 16 / elem
	blk := analytic.BlockingFor(plat, elem)
	cfg := uarch.FromPlatform(plat)

	// LIBXSMM's JIT scope: direct unpacked kernels, specialized edges.
	direct := p.smallDirectCube > 0 && cbrtI(m, n, k) <= p.smallDirectCube && !transB

	// --- memory traffic ---
	var strat cachemodel.Strategy
	switch {
	case direct:
		strat = cachemodel.Strategy{NoPackB: true}
	case p.overlapPack && !p.noPackDecision:
		// Ablation: the §4.2 decision disabled — overlap-pack B always.
		strat = cachemodel.Strategy{PackBOverlapSliver: true, TransB: transB}
	case p.overlapPack:
		strat = cachemodel.LibShalomStrategy(transB, n*k*elem, plat.L1.SizeBytes)
	case p.seqPackB && !p.seqPackA:
		// Ablation: sequential B packing but no A packing.
		strat = cachemodel.Strategy{PackBSeq: true, TransB: transB}
	default:
		strat = cachemodel.ConventionalStrategy(transB)
	}
	if transA && p.overlapPack {
		// LibShalom TN/TT gathers A blocks (§4.3); conventional personas
		// already pack A unconditionally (PackASeq).
		strat.GatherA = true
	}
	sh := cachemodel.Shape{M: m, N: n, K: k, ElemBytes: elem}
	r.traffic = cachemodel.Estimate(strat, plat, sh, blk, warm)
	if p.panelUpfront {
		// BLASFEO converts each operand exactly once instead of per panel.
		r.traffic.PackLoadElems = float64(m*k + n*k)
	}

	// --- kernel cycles from tile-level instruction simulation ---
	kc := blk.KC
	mr, nr := p.mr, p.nr
	fullKB := k / kc
	remK := k % kc

	mEff := m
	if mEff > blk.MC {
		mEff = blk.MC
	}
	rowTilesPerBlock := ceilI(mEff, mr)
	packFrac := 0.0
	if p.overlapPack && (strat.PackBOverlapSliver || transB) {
		packFrac = 1 / float64(rowTilesPerBlock)
	}

	kcCost := func(kcb int) (full, edge float64) {
		if kcb <= 0 {
			return 0, 0
		}
		kcSim := roundUp(kcb, lanes)
		// Full tiles.
		mainCy := simMain(p, plat, cfg, elem, mr, nr, kcSim, false, cfg.LoadLatency)
		packCy := mainCy
		if packFrac > 0 {
			if transB {
				packCy = simNTPack(p, plat, cfg, elem, mr, nr, kcSim)
			} else {
				packCy = simMain(p, plat, cfg, elem, mr, nr, kcSim, true, cfg.LoadLatency)
			}
		}
		fullTileCy := (1-packFrac)*mainCy + packFrac*packCy

		em, en := m%mr, n%nr
		nFullR, nFullC := m/mr, n/nr
		full = float64(nFullR*nFullC) * fullTileCy

		// Edge tiles: simulated with L2-class load latency (edge operands
		// rarely sit packed in L1); LibShalom's rescheduled edge kernels
		// prefetch the next iteration's elements (§5.4) and therefore see
		// the planned latency, while batch-scheduled edge kernels expose
		// the raw, unprefetched latency (Fig 6a). An edge tile never costs
		// more than a full tile — every library guarantees that by
		// construction — so the simulated cost is capped.
		edgeLat := plat.L2.LatencyCy
		edgeCost := func(tm, tn int) float64 {
			if p.edgePad {
				return fullTileCy // BLIS: full-tile work for partial output
			}
			lat := edgeLat
			if direct {
				// JIT-specialized edges: same latency class as main tiles.
				lat = cfg.LoadLatency
			} else if !p.edgeScheduled && p.schedule == kernels.Batch {
				lat = 3 * edgeLat // unprefetched edge operands miss deeper
			}
			c := simEdge(p, plat, cfg, elem, tm, tn, kcSim, lat)
			if cap := 1.3 * fullTileCy; c > cap {
				c = cap
			}
			return c
		}
		if en > 0 {
			edge += float64(nFullR) * edgeCost(mr, en)
		}
		if em > 0 {
			edge += float64(nFullC) * edgeCost(em, nr)
		}
		if em > 0 && en > 0 {
			edge += edgeCost(em, en)
		}
		return full, edge
	}

	f1, e1 := kcCost(kc)
	r.kernelFull += float64(fullKB) * f1
	r.kernelEdge += float64(fullKB) * e1
	if remK > 0 {
		f2, e2 := kcCost(remK)
		r.kernelFull += f2
		r.kernelEdge += e2
	}
	// Kernel quality scaling.
	r.kernelFull /= p.eff
	r.kernelEdge /= p.eff

	// --- transposed-A gather cycles (TN/TT) ---
	if strat.GatherA {
		// The gather reads the stored K×M block row-contiguously but
		// scatters into the row-major buffer; charge one element per
		// store-pipe slot with a scatter penalty.
		aPasses := math.Max(1, float64(n)/float64(blk.NC))
		r.packCycles += float64(m) * float64(k) * aPasses / float64(lanes) * 2
	}

	// --- sequential packing cycles ---
	if r.traffic.PackLoadElems > 0 && !p.overlapPack {
		// Vectorized copy sustains ≈ lanes elements per cycle through the
		// store pipe; charge cycles plus the streaming-bandwidth cost of
		// pulling the source through the hierarchy (prefetch-friendly for
		// row-major sources, strided for transposed gathers).
		copyCy := r.traffic.PackLoadElems / float64(lanes)
		gatherPenalty := 1.0
		if transB {
			gatherPenalty = 1.3 // transpose gather defeats unit-stride stores
		}
		if p.panelUpfront {
			gatherPenalty = 3.0 // panel-major interleaving is a scatter
		}
		r.packCycles = copyCy * gatherPenalty
	}

	// --- memory stalls ---
	l2lat := float64(plat.L2.LatencyCy)
	l3lat := float64(plat.DRAMLatencyCy)
	if plat.L3.SizeBytes > 0 {
		l3lat = float64(plat.L3.LatencyCy)
	}
	servedL2 := math.Max(0, r.traffic.L1MissLines-r.traffic.L2MissLines)
	servedL3 := math.Max(0, r.traffic.L2MissLines-r.traffic.LLCMissLines)
	servedDRAM := r.traffic.LLCMissLines
	latTerm := servedL2*l2lat + servedL3*l3lat + servedDRAM*float64(plat.DRAMLatencyCy)
	// Exposure: the fraction of miss latency the schedule cannot hide.
	// GEMM streams are prefetch-friendly, so most of it is hidden; batch
	// schedules expose more of it (Fig 6a), and the exposure grows with
	// the core's FMA throughput — §8.5: a faster FP engine drains the
	// in-flight work sooner, so the same scheduling slack hides less.
	exposure := 0.015 + 0.022*float64(plat.FMAPipes)
	if p.schedule == kernels.Pipelined {
		exposure = 0.02
	}
	// Streaming bandwidth cost overlaps with computation up to ~80%
	// (hardware prefetch runs ahead of the FMA stream); only the excess
	// is serial time.
	bwTerm := r.traffic.DRAMBytes / (bwGBs * 1e9) * plat.FreqGHz * 1e9
	bwExcess := math.Max(0, bwTerm-0.8*(r.kernelFull+r.kernelEdge))
	r.memCycles = latTerm*exposure + bwExcess

	// --- TLB cost of the NN-mode sliver pack (§8.2) ---
	// Under NN, LibShalom's overlap pack reads B(k, j..j+nr) down the K
	// direction: consecutive k rows sit a full row stride apart, so for
	// irregular N each access lands on a different page. When the kc rows
	// exceed the TLB and the row stride exceeds a page, every sliver pays
	// kc page walks — the reason the paper measures NT above NN for
	// irregular inputs (B is K-contiguous as stored under NT).
	if strat.PackBOverlapSliver && !transB {
		rowStrideBytes := ldbElems * elem
		if rowStrideBytes >= plat.PageBytes && kc > plat.TLBEntrs {
			slivers := float64(ceilI(n, nr)) * float64(fullKB+signI(remK)) * float64(ceilI(m, blk.MC))
			const walkCycles = 12
			kcAvg := float64(k) / float64(fullKB+signI(remK))
			r.memCycles += slivers * kcAvg * walkCycles
		}
	}

	// --- fixed overheads ---
	tiles := float64(ceilI(m, mr) * ceilI(n, nr) * maxI(1, fullKB+signI(remK)))
	r.overhead = p.callOverhead + 12*tiles

	r.cycles = r.kernelFull + r.kernelEdge + r.packCycles + r.memCycles + r.overhead
	return r
}

// --- micro-kernel simulation memoization ---

var (
	simMu    sync.Mutex
	simCache = map[string]float64{}
)

func simKey(parts ...interface{}) string { return fmt.Sprint(parts...) }

// simMain returns the simulated cycle count of one main micro-kernel
// invocation (an mr×nr tile over kc rank-1 updates), including prologue and
// epilogue.
func simMain(p persona, plat *platform.Platform, cfg uarch.Config, elem, mr, nr, kc int, packB bool, loadLat int) float64 {
	nr = roundUp(nr, 16/elem)
	key := simKey("main", plat.Name, elem, mr, nr, kc, p.schedule, packB, loadLat)
	simMu.Lock()
	if v, ok := simCache[key]; ok {
		simMu.Unlock()
		return v
	}
	simMu.Unlock()
	prog := kernels.BuildMain(kernels.MainSpec{
		Elem: elem, MR: mr, NR: nr, KC: kc,
		LDA: kc, LDB: maxI(nr, 64), LDC: maxI(nr, 64),
		Accumulate: true, PackB: packB, Schedule: p.schedule,
	})
	c := cfg
	c.LoadLatency = loadLat
	v := float64(uarch.Simulate(prog, c).Cycles)
	simMu.Lock()
	simCache[key] = v
	simMu.Unlock()
	return v
}

// simEdge simulates an edge tile of shape tm×tn; tn is rounded up to the
// vector width (masked tails cost a full lane).
func simEdge(p persona, plat *platform.Platform, cfg uarch.Config, elem, tm, tn, kc, loadLat int) float64 {
	lanes := 16 / elem
	tn = roundUp(tn, lanes)
	tm = clampTileMR(tm, tn, lanes)
	sched := kernels.Batch
	if p.edgeScheduled || p.schedule == kernels.Pipelined {
		sched = kernels.Pipelined
	}
	key := simKey("edge", plat.Name, elem, tm, tn, kc, sched, loadLat)
	simMu.Lock()
	if v, ok := simCache[key]; ok {
		simMu.Unlock()
		return v
	}
	simMu.Unlock()
	prog := kernels.BuildMain(kernels.MainSpec{
		Elem: elem, MR: tm, NR: tn, KC: kc,
		LDA: kc, LDB: maxI(tn, 64), LDC: maxI(tn, 64),
		Accumulate: true, Schedule: sched,
	})
	c := cfg
	c.LoadLatency = loadLat
	v := float64(uarch.Simulate(prog, c).Cycles)
	simMu.Lock()
	simCache[key] = v
	simMu.Unlock()
	return v
}

// simNTPack simulates the NT packing micro-kernel covering a full mr×nr
// tile: the 7×3 kernel is invoked nr/3 times (§5.3.2).
func simNTPack(p persona, plat *platform.Platform, cfg uarch.Config, elem, mr, nr, kc int) float64 {
	nb := 3
	// The packing kernel's own register tile must fit the file regardless
	// of the main tile (mr + nb + mr·nb + 1 reduce ≤ 32); the paper's is
	// 7×3. Ablated personas with wider mr shrink to the feasible shape.
	for mr > 1 && mr+nb+mr*nb > 31 {
		mr--
	}
	calls := ceilI(nr, nb)
	key := simKey("ntpack", plat.Name, elem, mr, nr, kc)
	simMu.Lock()
	if v, ok := simCache[key]; ok {
		simMu.Unlock()
		return v * float64(calls)
	}
	simMu.Unlock()
	prog := kernels.BuildNTPack(kernels.NTPackSpec{
		Elem: elem, MR: mr, NB: nb, KC: kc,
		LDA: kc, LDBT: maxI(kc, 64), LDC: maxI(nr, 64),
		NRTotal: nr, JOff: 0,
	})
	v := float64(uarch.Simulate(prog, cfg).Cycles)
	simMu.Lock()
	simCache[key] = v
	simMu.Unlock()
	return v * float64(calls)
}

// clampTileMR shrinks tm until the tile fits the register file.
func clampTileMR(tm, tn, lanes int) int {
	nb := tn / lanes
	for tm > 1 && tm+nb+tm*nb > 32 {
		tm--
	}
	return tm
}

func ceilI(a, b int) int { return (a + b - 1) / b }

func roundUp(a, b int) int {
	if a <= 0 {
		return b
	}
	return ceilI(a, b) * b
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func signI(a int) int {
	if a > 0 {
		return 1
	}
	return 0
}

func cbrtI(m, n, k int) int {
	return int(math.Cbrt(float64(m) * float64(n) * float64(k)))
}
