package perfsim

import (
	"sync"

	"libshalom/internal/platform"
	"libshalom/internal/telemetry"
)

// Class-keyed model predictions for the attribution engine: one expected
// GFLOPS figure per (platform, element size, mode, shape class, kernel
// path, threads). The engine compares live per-class measurements against
// these, so the lookup models the class's representative shape
// (telemetry.RepresentativeShape) rather than re-simulating every observed
// shape — class membership is the telemetry key, and the drift detector
// normalises away the absolute scale anyway (see internal/attrib).

// RefKernelFactor scales a fast-path prediction down to the portable
// reference path: a scalar triple loop retires one FMA per element per
// cycle at best, against the micro-kernel's full vector tile. The measured
// fast/ref ratio on the reproduction's portable kernels sits near 8×; the
// model only needs the order of magnitude because drift is judged per key
// against its own prediction.
const RefKernelFactor = 0.125

// classPredKey memoises ClassPrediction: the simulation underneath walks
// the uarch scoreboard and is far too slow to run per attribution window.
type classPredKey struct {
	plat    string
	elem    int
	mode    uint8
	class   uint8
	kernel  uint8
	threads int
}

var (
	classPredMu    sync.Mutex
	classPredCache = map[classPredKey]float64{}
)

// ClassPrediction returns the modeled GFLOPS of the LibShalom persona for
// one attribution key on a platform. mode is the telemetry mode index
// (NN/NT/TN/TT), class a telemetry.ShapeClass, kernel the telemetry kernel
// path (fast/ref). Zero for the empty class.
func ClassPrediction(plat *platform.Platform, elemBytes int, mode, class, kernel uint8, threads int) float64 {
	m, n, k := telemetry.RepresentativeShape(telemetry.ShapeClass(class))
	if m == 0 || n == 0 || k == 0 {
		return 0
	}
	if threads < 1 {
		threads = 1
	}
	key := classPredKey{plat.Name, elemBytes, mode, class, kernel, threads}
	classPredMu.Lock()
	if v, ok := classPredCache[key]; ok {
		classPredMu.Unlock()
		return v
	}
	classPredMu.Unlock()

	w := Workload{
		M: m, N: n, K: k,
		ElemBytes: elemBytes,
		TransA:    mode == 2 || mode == 3, // TN, TT
		TransB:    mode == 1 || mode == 3, // NT, TT
		Threads:   threads,
		Warm:      true, // serving traffic re-touches the same panels
	}
	v := Run(LibShalom(), plat, w).GFLOPS
	if kernel == 1 { // telemetry.KernelRef
		v *= RefKernelFactor
	}

	classPredMu.Lock()
	classPredCache[key] = v
	classPredMu.Unlock()
	return v
}
