package isacheck

import (
	"fmt"
	"sort"
	"sync"

	"libshalom/internal/isa"
)

// Entry is one registered kernel: a name, the family it belongs to, the
// contract its generator declares, and a builder producing a fresh program.
// Generators self-register from init functions (internal/kernels,
// internal/baselines), so any binary importing those packages — shalom-lint,
// the tests — sees the full catalogue without a hand-maintained list.
type Entry struct {
	Name     string // unique, e.g. "libshalom/main-7x12-f32"
	Family   string // "libshalom" or "baseline"
	Contract Contract
	Build    func() *isa.Program

	// SymFamily names the generator family (RegisterFamily) this entry is
	// one instance of, and SymShape the shape instantiating it. When set,
	// the runner adds the symbolic footprint pass (#6), which proves the
	// family's panel containment for every shape in its domain — not just
	// this one — and checks that ContractAt(SymShape) agrees with Contract.
	SymFamily string
	SymShape  Shape
}

var (
	regMu    sync.Mutex
	registry = map[string]Entry{}
)

// Register adds a kernel to the catalogue. It panics on a duplicate name, a
// nil builder, or an inconsistent contract — registration happens at init
// time, where a loud failure is the only useful one.
func Register(e Entry) {
	if e.Name == "" || e.Build == nil {
		panic("isacheck: Register needs a name and a builder")
	}
	if err := e.Contract.Validate(); err != nil {
		panic(fmt.Sprintf("isacheck: Register(%s): %v", e.Name, err))
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[e.Name]; dup {
		panic(fmt.Sprintf("isacheck: Register(%s): duplicate kernel name", e.Name))
	}
	registry[e.Name] = e
}

// Registered returns the catalogue sorted by name.
func Registered() []Entry {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]Entry, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Lookup returns the entry with the given name.
func Lookup(name string) (Entry, bool) {
	regMu.Lock()
	defer regMu.Unlock()
	e, ok := registry[name]
	return e, ok
}
