package isacheck_test

import (
	"testing"

	"libshalom/internal/bench"
	"libshalom/internal/isa"
	"libshalom/internal/isacheck"
	"libshalom/internal/kernels"
	"libshalom/internal/platform"
)

// TestStaticVerdictAgreesWithUarchSimulator is the regression cross-check of
// the two §5.4 oracles: for the 8×4 edge-kernel pair (Fig 6), the static
// dependency-distance analysis must rank the schedules the same way the
// scoreboard simulator's stall model does, on every platform.
//
// Static claim: the batch schedule has shorter load→use distances, longer
// load runs and higher window load pressure than the interleaved schedule.
// Dynamic claim: the batch schedule's steady-state cycles per iteration are
// higher whenever operand loads miss L1. If these ever disagree, one of the
// two models has drifted.
func TestStaticVerdictAgreesWithUarchSimulator(t *testing.T) {
	build := func(s kernels.Schedule) *isa.Program {
		return kernels.BuildEdge8x4(kernels.EdgeSpec{Elem: 4, KC: 16,
			LDAp: 8, LDB: 4, LDC: 4, Schedule: s})
	}
	batchProg, pipeProg := build(kernels.Batch), build(kernels.Pipelined)
	for _, p := range platform.All() {
		batch := isacheck.AnalyzeSchedule(batchProg, p)
		pipe := isacheck.AnalyzeSchedule(pipeProg, p)

		// Static ranking: batch is the worse schedule on every metric.
		if batch.MinLoadUseDist >= pipe.MinLoadUseDist {
			t.Errorf("%s: static min load→use dist batch=%d pipelined=%d, expected batch shorter",
				p.Name, batch.MinLoadUseDist, pipe.MinLoadUseDist)
		}
		if batch.MaxLoadRun <= pipe.MaxLoadRun {
			t.Errorf("%s: static max load run batch=%d pipelined=%d, expected batch longer",
				p.Name, batch.MaxLoadRun, pipe.MaxLoadRun)
		}
		if batch.LoadPressure <= pipe.LoadPressure {
			t.Errorf("%s: static load pressure batch=%.2f pipelined=%.2f, expected batch higher",
				p.Name, batch.LoadPressure, pipe.LoadPressure)
		}

		// Contract verdicts: the pipelined contract accepts the pipelined
		// program and rejects the batch one.
		c := isacheck.Contract{Kind: isacheck.KindEdge, Elem: 4,
			MR: 8, NR: 4, KC: 16, LDA: 8, LDB: 4, LDC: 4, Pipelined: true}
		if fs := isacheck.CheckDepDist(pipe, c); len(fs) != 0 {
			t.Errorf("%s: depdist rejected the pipelined schedule: %v", p.Name, fs)
		}
		if fs := isacheck.CheckDepDist(batch, c); len(fs) == 0 {
			t.Errorf("%s: depdist accepted the batch schedule", p.Name)
		}

		// Dynamic ranking from the scoreboard simulator at L2-class operand
		// latency (the regime Fig 6 is about). A deep OoO window can hide
		// the batch schedule's latency entirely (ThunderX2's 28-entry
		// window ties at L2 latency), so the per-platform agreement is
		// "never the other way around", with a strict win required on at
		// least one platform below.
		bCPI, iCPI := bench.Fig6CPI(p, p.L2.LatencyCy)
		if iCPI > bCPI+1e-9 {
			t.Errorf("%s: simulator ranks interleaved (%.2f cy/iter) above batch (%.2f) — static and dynamic oracles disagree",
				p.Name, iCPI, bCPI)
		}
	}

	// The Fig 6 claim itself: somewhere the static defect costs real cycles.
	strict := false
	for _, p := range platform.All() {
		if b, i := bench.Fig6CPI(p, p.L2.LatencyCy); i < b-1e-9 {
			strict = true
		}
	}
	if !strict {
		t.Fatal("no platform shows the batch-schedule stall the static analysis predicts")
	}
}
