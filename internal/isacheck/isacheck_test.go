package isacheck_test

import (
	"strings"
	"testing"

	_ "libshalom/internal/baselines" // register baseline kernels
	"libshalom/internal/isa"
	"libshalom/internal/isacheck"
	"libshalom/internal/kernels"
	"libshalom/internal/platform"
)

// TestRegisteredKernelsPassAllPlatforms is the acceptance gate: every kernel
// the generators register must clear all five passes on all three platforms.
func TestRegisteredKernelsPassAllPlatforms(t *testing.T) {
	entries := isacheck.Registered()
	if len(entries) < 9 {
		t.Fatalf("only %d registered kernels, expected the full catalogue", len(entries))
	}
	results := isacheck.RunAll(platform.All())
	if want := len(entries) * len(platform.All()); len(results) != want {
		t.Fatalf("RunAll produced %d results, want %d", len(results), want)
	}
	for _, r := range results {
		if !r.OK {
			t.Errorf("%s on %s failed: %v", r.Kernel, r.Platform, r.Findings())
		}
	}
}

// pipelinedEdgeEntry fetches the registered LibShalom edge kernel, whose
// contract the broken-kernel tests reuse.
func pipelinedEdgeEntry(t *testing.T) isacheck.Entry {
	t.Helper()
	e, ok := isacheck.Lookup("libshalom/edge-8x4-pipelined-f32")
	if !ok {
		t.Fatal("libshalom edge kernel not registered")
	}
	return e
}

func passResult(t *testing.T, kr isacheck.KernelResult, pass string) isacheck.PassResult {
	t.Helper()
	for _, pr := range kr.Passes {
		if pr.Pass == pass {
			return pr
		}
	}
	t.Fatalf("pass %q missing from result", pass)
	return isacheck.PassResult{}
}

// TestBatchScheduleRejectedByDepDist seeds the Fig 6a defect: a
// batch-scheduled edge program presented under the pipelined contract must
// be rejected by the depdist pass — and only by it; the batch kernel's
// footprint and tiling are correct.
func TestBatchScheduleRejectedByDepDist(t *testing.T) {
	e := pipelinedEdgeEntry(t)
	broken := e
	broken.Build = func() *isa.Program {
		return kernels.BuildEdge8x4(kernels.EdgeSpec{Elem: 4, KC: 16,
			LDAp: 8, LDB: 4, LDC: 4, Schedule: kernels.Batch})
	}
	for _, p := range platform.All() {
		kr := isacheck.Run(broken, p)
		if kr.OK {
			t.Fatalf("batch schedule under pipelined contract accepted on %s", p.Name)
		}
		dd := passResult(t, kr, "depdist")
		if dd.OK {
			t.Errorf("%s: depdist pass did not own the rejection: %v", p.Name, kr.Findings())
		}
		for _, name := range []string{"dataflow", "footprint", "tiling"} {
			if pr := passResult(t, kr, name); !pr.OK {
				t.Errorf("%s: pass %s failed on a kernel whose %s is correct: %v",
					p.Name, name, name, pr.Findings)
			}
		}
	}
}

// TestCTileGapRejectedByFootprint seeds a C-tile gap: the edge kernel with
// its final StLane removed misses exactly one C element, and the footprint
// pass must name it.
func TestCTileGapRejectedByFootprint(t *testing.T) {
	e := pipelinedEdgeEntry(t)
	broken := e
	broken.Build = func() *isa.Program {
		p := e.Build()
		last := p.Code[len(p.Code)-1]
		if !last.Op.IsStore() {
			t.Fatalf("expected the edge kernel to end with a store, got op %v", last.Op)
		}
		p.Code = p.Code[:len(p.Code)-1]
		return p
	}
	kr := isacheck.Run(broken, platform.KP920())
	if kr.OK {
		t.Fatal("C-tile gap accepted")
	}
	fp := passResult(t, kr, "footprint")
	if fp.OK {
		t.Fatalf("footprint pass did not own the rejection: %v", kr.Findings())
	}
	// The removed store was C(7,3): offset 7*LDC+3 = 31.
	found := false
	for _, f := range fp.Findings {
		if strings.Contains(f.Msg, "misses") {
			if len(f.Offsets) != 1 || f.Offsets[0] != 31 {
				t.Errorf("gap reported at offsets %v, want [31]", f.Offsets)
			}
			found = true
		}
	}
	if !found {
		t.Errorf("no missing-element finding: %v", fp.Findings)
	}
	if dd := passResult(t, kr, "depdist"); !dd.OK {
		t.Errorf("depdist pass failed on a correctly scheduled kernel: %v", dd.Findings)
	}
}

// TestOverBudgetTilingRejected seeds an infeasible register tiling: a
// contract claiming the 8×12 tile needs 35 registers under Eq. 1, which the
// tiling pass must reject outright.
func TestOverBudgetTilingRejected(t *testing.T) {
	prog := kernels.BuildMain(kernels.MainSpec{Elem: 4, MR: 8, NR: 8, KC: 8,
		LDA: 8, LDB: 8, LDC: 8, Accumulate: true, Schedule: kernels.Batch})
	rep, err := isa.Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	c := isacheck.Contract{Kind: isacheck.KindMain, Elem: 4,
		MR: 8, NR: 12, KC: 8, LDA: 8, LDB: 12, LDC: 12}
	fs := isacheck.CheckTiling(prog, c, rep)
	if len(fs) == 0 {
		t.Fatal("infeasible 8x12 tiling accepted")
	}
	if !strings.Contains(fs[0].Msg, "infeasible") {
		t.Errorf("finding %q does not call the tiling infeasible", fs[0].Msg)
	}
}

// TestPeakLiveMismatchRejected: a kernel whose measured register pressure
// differs from the Eq. 1 prediction for its declared tile is not the tile it
// claims to be.
func TestPeakLiveMismatchRejected(t *testing.T) {
	// A genuine 7×12 program (peak 31 registers) under a contract claiming
	// the 8×8 tile (Eq. 1 predicts 26).
	prog := kernels.BuildMain(kernels.MainSpec{Elem: 4, MR: 7, NR: 12, KC: 8,
		LDA: 8, LDB: 12, LDC: 12, Accumulate: true, Schedule: kernels.Pipelined})
	rep, err := isa.Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	c := isacheck.Contract{Kind: isacheck.KindMain, Elem: 4,
		MR: 8, NR: 8, KC: 8, LDA: 8, LDB: 8, LDC: 8}
	fs := isacheck.CheckTiling(prog, c, rep)
	if len(fs) == 0 {
		t.Fatal("peak-live mismatch accepted")
	}
	if !strings.Contains(fs[0].Msg, "peak live") {
		t.Errorf("finding %q is not a peak-live mismatch", fs[0].Msg)
	}
}

// TestFootprintCatchesOverlappingStores: a duplicated C store must be
// reported as an overlap, not silently accepted as coverage.
func TestFootprintCatchesOverlappingStores(t *testing.T) {
	e := pipelinedEdgeEntry(t)
	broken := e
	broken.Build = func() *isa.Program {
		p := e.Build()
		p.Code = append(p.Code, p.Code[len(p.Code)-1]) // store C(7,3) twice
		return p
	}
	kr := isacheck.Run(broken, platform.KP920())
	fp := passResult(t, kr, "footprint")
	if fp.OK {
		t.Fatalf("double store accepted: %v", kr.Findings())
	}
	found := false
	for _, f := range fp.Findings {
		if strings.Contains(f.Msg, "more than once") && len(f.Offsets) == 1 && f.Offsets[0] == 31 {
			found = true
		}
	}
	if !found {
		t.Errorf("no overlap finding for offset 31: %v", fp.Findings)
	}
}

// TestPackReadBeforeWriteRejected: a kernel that consumes its pack buffer
// before producing it violates the §5.3 folded-packing contract.
func TestPackReadBeforeWriteRejected(t *testing.T) {
	e, ok := isacheck.Lookup("libshalom/packmain-7x12-f32")
	if !ok {
		t.Fatal("packmain kernel not registered")
	}
	broken := e
	broken.Contract.MaxDeadWrites = 1 // the injected load is dead; isolate the footprint verdict
	broken.Build = func() *isa.Program {
		p := e.Build()
		var bc int
		for i, s := range p.Streams {
			if s.Kind == isa.StreamBc {
				bc = i
			}
		}
		// Prepend a load from the not-yet-written pack buffer.
		in := isa.Instr{Op: isa.LdVec, Dst: 7, Src1: isa.NoReg, Src2: isa.NoReg,
			Mem: isa.MemRef{Stream: bc, Off: 0}}
		p.Code = append([]isa.Instr{in}, p.Code...)
		return p
	}
	kr := isacheck.Run(broken, platform.KP920())
	fp := passResult(t, kr, "footprint")
	if fp.OK {
		t.Fatalf("pack read-before-write accepted: %v", kr.Findings())
	}
	found := false
	for _, f := range fp.Findings {
		if strings.Contains(f.Msg, "before writing") {
			found = true
		}
	}
	if !found {
		t.Errorf("no write-before-read finding: %v", fp.Findings)
	}
}
