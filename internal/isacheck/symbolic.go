// Pass #6 (symfoot): symbolic footprint verification over a whole shape
// domain. The concrete footprint pass (footprint.go) enumerates the element
// offsets of ONE registered (mr, nr, kc) instance; this pass proves the
// containment property for EVERY shape a generator family admits.
//
// The object of proof is a Family: a kernel generator together with
//
//   - a box Domain over the shape variables (mr, nr, kc), with per-variable
//     step congruences for lane-multiple constraints,
//   - leading-dimension expressions (LDA, LDB, ... as polynomials over the
//     shape variables), from which the per-shape Contract is derived, and
//   - a declared emission model: per stream, the symbolic spans
//     {r·Stride + c : 0 ≤ r < Count, Lo ≤ c < Hi} the generator claims its
//     loads and stores cover, written from the generator's loop structure.
//
// The pass discharges three obligations:
//
//  1. Containment, symbolically: every model span embeds into the contract's
//     span set for all shapes in the domain. An embedding shifts the model
//     span by q whole target rows (q a small constant) and reduces to
//     polynomial inequalities over (mr, nr, kc). Each inequality is decided
//     exactly: the polynomials in play are multilinear (degree ≤ 1 per
//     variable), so their extrema over the box lie at its corners; a
//     non-multilinear expression falls back to a full sweep of the finite
//     shape lattice, which is still a complete proof, just slower. A failed
//     proof is reported with a concrete witness shape when one exists — the
//     off-by-one shape a sampled sweep never visited.
//  2. Coverage, symbolically: every contract span embeds into the model's
//     span set, so the proof of "no gaps" also holds for all shapes.
//  3. Anchoring, concretely: the declared model is only trustworthy if it is
//     what the generator actually emits. At every corner of the domain the
//     program is built, analyzed, and its per-stream access sets compared
//     element-for-element against the model; the concrete footprint pass
//     also runs at each corner. A model that diverges from the generator
//     anywhere on the probe set fails the pass.
//
// Green therefore means: the emission model equals the generator's behaviour
// on the probe set, and the model provably stays inside (and covers) the
// contract panels at every shape in the domain — not just swept ones.
package isacheck

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"libshalom/internal/isa"
)

// Shape is one point of a family's domain: the register tile and K extent a
// generator is instantiated at.
type Shape struct {
	MR, NR, KC int
}

func (s Shape) String() string { return fmt.Sprintf("(mr=%d,nr=%d,kc=%d)", s.MR, s.NR, s.KC) }

// mono is one monomial mr^M · nr^N · kc^K.
type mono struct {
	m, n, k uint8
}

// Expr is a polynomial over the shape variables with integer coefficients.
// The zero value is the constant 0. Expressions are immutable; operations
// return new values.
type Expr struct {
	t map[mono]int
}

// EConst returns the constant expression c.
func EConst(c int) Expr { return Expr{}.addTerm(mono{}, c) }

// EMR, ENR and EKC return the shape-variable expressions.
func EMR() Expr { return Expr{}.addTerm(mono{m: 1}, 1) }
func ENR() Expr { return Expr{}.addTerm(mono{n: 1}, 1) }
func EKC() Expr { return Expr{}.addTerm(mono{k: 1}, 1) }

func (e Expr) addTerm(mo mono, c int) Expr {
	out := Expr{t: make(map[mono]int, len(e.t)+1)}
	for k, v := range e.t {
		out.t[k] = v
	}
	out.t[mo] += c
	if out.t[mo] == 0 {
		delete(out.t, mo)
	}
	return out
}

// Add returns e + o.
func (e Expr) Add(o Expr) Expr {
	out := e
	for mo, c := range o.t {
		out = out.addTerm(mo, c)
	}
	return out
}

// Sub returns e - o.
func (e Expr) Sub(o Expr) Expr {
	out := e
	for mo, c := range o.t {
		out = out.addTerm(mo, -c)
	}
	return out
}

// MulC returns e scaled by the constant c.
func (e Expr) MulC(c int) Expr {
	out := Expr{t: map[mono]int{}}
	if c == 0 {
		return out
	}
	for mo, v := range e.t {
		out.t[mo] = v * c
	}
	return out
}

// Mul returns the product e·o.
func (e Expr) Mul(o Expr) Expr {
	out := Expr{t: map[mono]int{}}
	for a, ca := range e.t {
		for b, cb := range o.t {
			p := mono{m: a.m + b.m, n: a.n + b.n, k: a.k + b.k}
			out.t[p] += ca * cb
			if out.t[p] == 0 {
				delete(out.t, p)
			}
		}
	}
	return out
}

// AddC returns e + c.
func (e Expr) AddC(c int) Expr { return e.addTerm(mono{}, c) }

// Eval evaluates the polynomial at shape s.
func (e Expr) Eval(s Shape) int {
	total := 0
	for mo, c := range e.t {
		v := c
		for i := uint8(0); i < mo.m; i++ {
			v *= s.MR
		}
		for i := uint8(0); i < mo.n; i++ {
			v *= s.NR
		}
		for i := uint8(0); i < mo.k; i++ {
			v *= s.KC
		}
		total += v
	}
	return total
}

// Equal reports exact polynomial identity.
func (e Expr) Equal(o Expr) bool {
	if len(e.t) != len(o.t) {
		return false
	}
	for mo, c := range e.t {
		if o.t[mo] != c {
			return false
		}
	}
	return true
}

// IsConst reports whether e is a constant, and its value.
func (e Expr) IsConst() (int, bool) {
	switch len(e.t) {
	case 0:
		return 0, true
	case 1:
		if c, ok := e.t[mono{}]; ok {
			return c, true
		}
	}
	return 0, false
}

// multilinear reports whether no variable appears with exponent > 1 —
// the condition under which box extrema are attained at corners.
func (e Expr) multilinear() bool {
	for mo := range e.t {
		if mo.m > 1 || mo.n > 1 || mo.k > 1 {
			return false
		}
	}
	return true
}

// String renders the polynomial deterministically for findings.
func (e Expr) String() string {
	if len(e.t) == 0 {
		return "0"
	}
	type term struct {
		mo mono
		c  int
	}
	terms := make([]term, 0, len(e.t))
	for mo, c := range e.t {
		terms = append(terms, term{mo, c})
	}
	sort.Slice(terms, func(i, j int) bool {
		a, b := terms[i].mo, terms[j].mo
		if a.m != b.m {
			return a.m > b.m
		}
		if a.n != b.n {
			return a.n > b.n
		}
		return a.k > b.k
	})
	var b strings.Builder
	for i, t := range terms {
		var vars strings.Builder
		appendVar := func(name string, p uint8) {
			for j := uint8(0); j < p; j++ {
				if vars.Len() > 0 {
					vars.WriteString("·")
				}
				vars.WriteString(name)
			}
		}
		appendVar("mr", t.mo.m)
		appendVar("nr", t.mo.n)
		appendVar("kc", t.mo.k)
		c := t.c
		if i > 0 {
			if c < 0 {
				b.WriteString(" - ")
				c = -c
			} else {
				b.WriteString(" + ")
			}
		}
		switch {
		case vars.Len() == 0:
			fmt.Fprintf(&b, "%d", c)
		case c == 1:
			b.WriteString(vars.String())
		case c == -1 && i == 0:
			b.WriteString("-" + vars.String())
		default:
			fmt.Fprintf(&b, "%d·%s", c, vars.String())
		}
	}
	return b.String()
}

// Range is one inclusive shape-variable range with a step congruence:
// admitted values are Min, Min+Step, …, Max. Step ≤ 1 means every integer.
type Range struct {
	Min, Max, Step int
}

func (r Range) step() int {
	if r.Step < 1 {
		return 1
	}
	return r.Step
}

func (r Range) validate(name string) error {
	if r.Min < 1 || r.Max < r.Min {
		return fmt.Errorf("isacheck: family range %s=[%d,%d] invalid", name, r.Min, r.Max)
	}
	if s := r.step(); (r.Max-r.Min)%s != 0 {
		return fmt.Errorf("isacheck: family range %s=[%d,%d] step %d does not land on Max", name, r.Min, r.Max, s)
	}
	return nil
}

func (r Range) count() int { return (r.Max-r.Min)/r.step() + 1 }

// Domain is the box of shapes a family admits.
type Domain struct {
	MR, NR, KC Range
}

func (d Domain) validate() error {
	if err := d.MR.validate("mr"); err != nil {
		return err
	}
	if err := d.NR.validate("nr"); err != nil {
		return err
	}
	return d.KC.validate("kc")
}

// size is the number of lattice points.
func (d Domain) size() int { return d.MR.count() * d.NR.count() * d.KC.count() }

// corners returns the (up to 8) corner shapes of the box, deduplicated.
func (d Domain) corners() []Shape {
	var out []Shape
	seen := map[Shape]bool{}
	for _, m := range ends(d.MR) {
		for _, n := range ends(d.NR) {
			for _, k := range ends(d.KC) {
				s := Shape{MR: m, NR: n, KC: k}
				if !seen[s] {
					seen[s] = true
					out = append(out, s)
				}
			}
		}
	}
	return out
}

func ends(r Range) []int {
	if r.Min == r.Max {
		return []int{r.Min}
	}
	return []int{r.Min, r.Max}
}

// each calls f for every lattice point until f returns false.
func (d Domain) each(f func(Shape) bool) {
	for m := d.MR.Min; m <= d.MR.Max; m += d.MR.step() {
		for n := d.NR.Min; n <= d.NR.Max; n += d.NR.step() {
			for k := d.KC.Min; k <= d.KC.Max; k += d.KC.step() {
				if !f(Shape{MR: m, NR: n, KC: k}) {
					return
				}
			}
		}
	}
}

// SymSpan is a symbolic access span: the element set
// {r·Stride + c : 0 ≤ r < Count, Lo ≤ c < Hi}, every bound a polynomial over
// the shape variables.
type SymSpan struct {
	Lo, Hi, Stride, Count Expr
}

func (s SymSpan) String() string {
	return fmt.Sprintf("{cols [%s,%s) × %s rows @ stride %s}", s.Lo, s.Hi, s.Count, s.Stride)
}

// at instantiates the span at a concrete shape.
func (s SymSpan) at(sh Shape) span {
	return span{Lo: s.Lo.Eval(sh), Hi: s.Hi.Eval(sh), Stride: s.Stride.Eval(sh), Count: s.Count.Eval(sh)}
}

// SymFootprint is a declared per-stream access model.
type SymFootprint struct {
	Reads, Writes []SymSpan
}

// Family is one registered generator family: the unit pass #6 proves.
type Family struct {
	Name   string
	Elem   int // element bytes: 4 or 8
	Kind   Kind
	Domain Domain

	// Leading-dimension and panel expressions over (mr, nr, kc). LDA, LDB
	// and LDC are required; NRTotal and JOff only for KindNTPack (JOff
	// defaults to 0 when unset).
	LDA, LDB, LDC Expr
	NRTotal, JOff Expr
	Accumulate    bool
	PackB         bool

	// Model is the declared emission footprint, written from the
	// generator's loop structure (NOT copied from the contract twin — the
	// redundancy is the proof).
	Model map[isa.StreamKind]SymFootprint

	// BuildAt instantiates the generator at one shape of the domain.
	BuildAt func(Shape) *isa.Program
}

// ContractAt derives the concrete per-shape contract the family claims.
// Only the structural fields are populated — schedule thresholds are the
// depdist/pressure passes' concern and stay per-entry.
func (f Family) ContractAt(s Shape) Contract {
	c := Contract{
		Kind: f.Kind, Elem: f.Elem,
		MR: s.MR, NR: s.NR, KC: s.KC,
		LDA: f.LDA.Eval(s), LDB: f.LDB.Eval(s), LDC: f.LDC.Eval(s),
		Accumulate: f.Accumulate, PackB: f.PackB,
	}
	if f.Kind == KindNTPack {
		c.NRTotal = f.NRTotal.Eval(s)
		c.JOff = f.JOff.Eval(s)
	}
	return c
}

func (f Family) validate() error {
	if f.Name == "" || f.BuildAt == nil {
		return fmt.Errorf("isacheck: family needs a name and a builder")
	}
	if f.Elem != 4 && f.Elem != 8 {
		return fmt.Errorf("isacheck: family %s: elem %d not 4 or 8", f.Name, f.Elem)
	}
	if err := f.Domain.validate(); err != nil {
		return fmt.Errorf("family %s: %w", f.Name, err)
	}
	for _, ld := range []struct {
		name string
		e    Expr
	}{{"LDA", f.LDA}, {"LDB", f.LDB}, {"LDC", f.LDC}} {
		if len(ld.e.t) == 0 {
			return fmt.Errorf("isacheck: family %s: %s expression unset", f.Name, ld.name)
		}
	}
	if f.Kind == KindNTPack && len(f.NRTotal.t) == 0 {
		return fmt.Errorf("isacheck: family %s: ntpack needs an NRTotal expression", f.Name)
	}
	if len(f.Model) == 0 {
		return fmt.Errorf("isacheck: family %s: no emission model declared", f.Name)
	}
	return nil
}

// Family registry. Families register at init time from the kernel packages,
// like entries do.

var (
	famMu    sync.Mutex
	families = map[string]Family{}
	symMemo  = map[string][]Finding{}
)

// RegisterFamily adds a generator family to the catalogue, panicking on
// duplicates or inconsistent declarations (init-time, loud failure only).
func RegisterFamily(f Family) {
	if err := f.validate(); err != nil {
		panic(err.Error())
	}
	famMu.Lock()
	defer famMu.Unlock()
	if _, dup := families[f.Name]; dup {
		panic(fmt.Sprintf("isacheck: RegisterFamily(%s): duplicate family name", f.Name))
	}
	families[f.Name] = f
}

// FamilyByName returns the registered family with the given name.
func FamilyByName(name string) (Family, bool) {
	famMu.Lock()
	defer famMu.Unlock()
	f, ok := families[name]
	return f, ok
}

// Families returns the registered families sorted by name.
func Families() []Family {
	famMu.Lock()
	defer famMu.Unlock()
	out := make([]Family, 0, len(families))
	for _, f := range families {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// checkFamilyMemo runs CheckSymbolicFootprint once per family name and
// caches the verdict — the proof is platform-independent, and the runner
// would otherwise redo it for every (kernel, platform) pair.
func checkFamilyMemo(f Family) []Finding {
	famMu.Lock()
	if fs, ok := symMemo[f.Name]; ok {
		famMu.Unlock()
		return fs
	}
	famMu.Unlock()
	fs := CheckSymbolicFootprint(f)
	famMu.Lock()
	symMemo[f.Name] = fs
	famMu.Unlock()
	return fs
}

// symContractFootprint is the symbolic twin of expectedFootprint: the
// contract's per-stream span sets with every bound a polynomial.
func symContractFootprint(f Family) map[isa.StreamKind]SymFootprint {
	zero, mr, nr, kc := EConst(0), EMR(), ENR(), EKC()
	fp := map[isa.StreamKind]SymFootprint{}
	switch f.Kind {
	case KindMain:
		fp[isa.StreamA] = SymFootprint{Reads: []SymSpan{{Lo: zero, Hi: kc, Stride: f.LDA, Count: mr}}}
		fp[isa.StreamB] = SymFootprint{Reads: []SymSpan{{Lo: zero, Hi: nr, Stride: f.LDB, Count: kc}}}
		cTile := SymSpan{Lo: zero, Hi: nr, Stride: f.LDC, Count: mr}
		cf := SymFootprint{Writes: []SymSpan{cTile}}
		if f.Accumulate {
			cf.Reads = []SymSpan{cTile}
		}
		fp[isa.StreamC] = cf
		if f.PackB {
			fp[isa.StreamBc] = SymFootprint{Writes: []SymSpan{{Lo: zero, Hi: nr, Stride: nr, Count: kc}}}
		}
	case KindEdge:
		fp[isa.StreamA] = SymFootprint{Reads: []SymSpan{{Lo: zero, Hi: mr, Stride: f.LDA, Count: kc}}}
		fp[isa.StreamB] = SymFootprint{Reads: []SymSpan{{Lo: zero, Hi: nr, Stride: f.LDB, Count: kc}}}
		fp[isa.StreamC] = SymFootprint{Writes: []SymSpan{{Lo: zero, Hi: nr, Stride: f.LDC, Count: mr}}}
	case KindNTPack:
		jHi := f.jOff().Add(nr)
		fp[isa.StreamA] = SymFootprint{Reads: []SymSpan{{Lo: zero, Hi: kc, Stride: f.LDA, Count: mr}}}
		fp[isa.StreamB] = SymFootprint{Reads: []SymSpan{{Lo: zero, Hi: kc, Stride: f.LDB, Count: nr}}}
		cTile := SymSpan{Lo: f.jOff(), Hi: jHi, Stride: f.LDC, Count: mr}
		cf := SymFootprint{Writes: []SymSpan{cTile}}
		if f.Accumulate {
			cf.Reads = []SymSpan{cTile}
		}
		fp[isa.StreamC] = cf
		fp[isa.StreamBc] = SymFootprint{Writes: []SymSpan{{Lo: f.jOff(), Hi: jHi, Stride: f.NRTotal, Count: kc}}}
	}
	return fp
}

func (f Family) jOff() Expr {
	if len(f.JOff.t) == 0 {
		return EConst(0)
	}
	return f.JOff
}

// proof is the three-valued verdict of the symbolic decision procedure.
type proof int

const (
	proven proof = iota
	disproven
	unknown
)

// maxLatticeSweep bounds the fallback lattice sweep; domains are validated
// small enough in practice (a few thousand points).
const maxLatticeSweep = 1 << 20

// proveNonneg decides e ≥ 0 for every shape in d. Multilinear polynomials
// are decided exactly at the box corners; anything else sweeps the finite
// lattice (a complete proof too — the domain is finite — just slower), and
// gives up past maxLatticeSweep points.
func proveNonneg(e Expr, d Domain) (proof, Shape) {
	if c, ok := e.IsConst(); ok {
		if c >= 0 {
			return proven, Shape{}
		}
		return disproven, Shape{MR: d.MR.Min, NR: d.NR.Min, KC: d.KC.Min}
	}
	if e.multilinear() {
		for _, s := range d.corners() {
			if e.Eval(s) < 0 {
				return disproven, s
			}
		}
		return proven, Shape{}
	}
	if d.size() > maxLatticeSweep {
		return unknown, Shape{}
	}
	verdict, witness := proven, Shape{}
	d.each(func(s Shape) bool {
		if e.Eval(s) < 0 {
			verdict, witness = disproven, s
			return false
		}
		return true
	})
	return verdict, witness
}

// maxRowShift bounds the row-shift constant the embedding prover tries: a
// model span whose base sits q whole target rows into the panel.
const maxRowShift = 4

// proveSpanIn proves m ⊆ ∪targets for every shape in d. It returns proven,
// or disproven with a witness (shape, offset) found by a lattice sweep, or
// unknown when neither an embedding nor a witness exists within bounds.
func proveSpanIn(m SymSpan, targets []SymSpan, d Domain) (proof, Shape, int) {
	width := m.Hi.Sub(m.Lo)
	// An empty span (no rows, or an empty column range, everywhere) is
	// vacuously contained.
	if p, _ := proveNonneg(EConst(0).Sub(m.Count), d); p == proven {
		return proven, Shape{}, 0
	}
	if p, _ := proveNonneg(EConst(0).Sub(width), d); p == proven {
		return proven, Shape{}, 0
	}
	mCount, mCountConst := m.Count.IsConst()
	for _, t := range targets {
		for q := 0; q <= maxRowShift; q++ {
			// Row-compatibility: either the strides agree polynomially, or
			// the model span is a single row (stride then irrelevant).
			if !(m.Stride.Equal(t.Stride) || (mCountConst && mCount == 1)) {
				break
			}
			rem := m.Lo.Sub(t.Stride.MulC(q))
			conds := []Expr{
				rem.Sub(t.Lo),                 // rem ≥ t.Lo
				t.Hi.Sub(rem).Sub(width),      // rem + width ≤ t.Hi
				t.Count.Sub(m.Count).AddC(-q), // q + m.Count ≤ t.Count
			}
			ok := true
			for _, c := range conds {
				if p, _ := proveNonneg(c, d); p != proven {
					ok = false
					break
				}
			}
			if ok {
				return proven, Shape{}, 0
			}
		}
	}
	// No embedding: hunt for a concrete counterexample on the lattice.
	if d.size() <= maxLatticeSweep {
		var wShape Shape
		wOff := -1
		d.each(func(s Shape) bool {
			tset := map[int]bool{}
			for _, t := range targets {
				for _, off := range t.at(s).offsets() {
					tset[off] = true
				}
			}
			for _, off := range m.at(s).offsets() {
				if !tset[off] {
					wShape, wOff = s, off
					return false
				}
			}
			return true
		})
		if wOff >= 0 {
			return disproven, wShape, wOff
		}
	}
	return unknown, Shape{}, 0
}

// CheckSymbolicFootprint runs pass #6 for one family. An empty finding list
// means the emission model is anchored to the generator on the probe set and
// provably contained in — and covering — the contract panels for every shape
// in the domain.
func CheckSymbolicFootprint(f Family) []Finding {
	const pass = "symfoot"
	if err := f.validate(); err != nil {
		return []Finding{{Pass: pass, Msg: err.Error()}}
	}
	var fs []Finding
	want := symContractFootprint(f)

	kinds := make([]isa.StreamKind, 0, len(want))
	for k := range want {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })

	prove := func(kind isa.StreamKind, dir string, spans, into []SymSpan, fromModel bool) {
		for _, m := range spans {
			p, wShape, wOff := proveSpanIn(m, into, f.Domain)
			switch {
			case p == proven:
			case p == disproven && fromModel:
				fs = append(fs, Finding{Pass: pass, Msg: fmt.Sprintf(
					"symbolic: model %s %s span %s escapes the contract panel at shape %s (element %d)",
					kind, dir, m, wShape, wOff), Offsets: []int{wOff}})
			case p == disproven:
				fs = append(fs, Finding{Pass: pass, Msg: fmt.Sprintf(
					"symbolic: contract %s %s span %s not covered by the emission model at shape %s (element %d)",
					kind, dir, m, wShape, wOff), Offsets: []int{wOff}})
			case fromModel:
				fs = append(fs, Finding{Pass: pass, Msg: fmt.Sprintf(
					"symbolic: cannot prove model %s %s span %s inside the contract panel over the domain",
					kind, dir, m)})
			default:
				fs = append(fs, Finding{Pass: pass, Msg: fmt.Sprintf(
					"symbolic: cannot prove contract %s %s span %s covered by the emission model over the domain",
					kind, dir, m)})
			}
		}
	}

	seen := map[isa.StreamKind]bool{}
	for _, kind := range kinds {
		seen[kind] = true
		model, ok := f.Model[kind]
		if !ok {
			fs = append(fs, Finding{Pass: pass, Msg: fmt.Sprintf(
				"symbolic: contract expects a %s stream the emission model does not declare", kind)})
			continue
		}
		w := want[kind]
		prove(kind, "read", model.Reads, w.Reads, true)
		prove(kind, "write", model.Writes, w.Writes, true)
		prove(kind, "read", w.Reads, model.Reads, false)
		prove(kind, "write", w.Writes, model.Writes, false)
	}
	for kind := range f.Model {
		if !seen[kind] {
			fs = append(fs, Finding{Pass: pass, Msg: fmt.Sprintf(
				"symbolic: emission model declares a %s stream the contract has no panel for", kind)})
		}
	}

	// Anchor the model: at every corner of the domain, the generator's
	// actual access sets must equal the model's, and the concrete footprint
	// pass must hold.
	for _, s := range f.Domain.corners() {
		fs = append(fs, probeShape(f, s)...)
	}
	return fs
}

// probeShape builds the family at one shape and compares reality against
// the declared model and the concrete contract footprint.
func probeShape(f Family, s Shape) (fs []Finding) {
	const pass = "symfoot"
	c := f.ContractAt(s)
	if err := c.Validate(); err != nil {
		return []Finding{{Pass: pass, Msg: fmt.Sprintf("probe %s: derived contract invalid: %v", s, err)}}
	}
	prog, err := buildAtSafe(f, s)
	if err != nil {
		return []Finding{{Pass: pass, Msg: fmt.Sprintf("probe %s: %v", s, err)}}
	}
	rep, err := isa.Analyze(prog)
	if err != nil {
		return []Finding{{Pass: pass, Msg: fmt.Sprintf("probe %s: analyze: %v", s, err)}}
	}
	byKind := map[isa.StreamKind]int{}
	for i, st := range prog.Streams {
		if _, dup := byKind[st.Kind]; !dup {
			byKind[st.Kind] = i
		}
	}
	kinds := make([]isa.StreamKind, 0, len(f.Model))
	for k := range f.Model {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, kind := range kinds {
		model := f.Model[kind]
		idx, ok := byKind[kind]
		if !ok {
			fs = append(fs, Finding{Pass: pass, Msg: fmt.Sprintf(
				"probe %s: model declares a %s stream the program does not", s, kind)})
			continue
		}
		sr := rep.Streams[idx]
		fs = append(fs, diffModel(s, kind, "reads", model.Reads, sr.LoadCover)...)
		fs = append(fs, diffModel(s, kind, "writes", model.Writes, sr.StoreCover)...)
	}
	// The concrete footprint pass is the sampled sweep, run at the corners.
	for _, cf := range CheckFootprint(prog, c, rep) {
		fs = append(fs, Finding{Pass: pass, Msg: fmt.Sprintf("probe %s: %s", s, cf.Msg), Offsets: cf.Offsets})
	}
	return fs
}

func buildAtSafe(f Family, s Shape) (p *isa.Program, err error) {
	defer func() {
		if r := recover(); r != nil {
			p, err = nil, fmt.Errorf("generator panicked: %v", r)
		}
	}()
	p = f.BuildAt(s)
	if p == nil {
		return nil, fmt.Errorf("generator returned nil program")
	}
	return p, nil
}

// diffModel compares one direction of the declared model, instantiated at a
// concrete shape, against the program's measured coverage.
func diffModel(s Shape, kind isa.StreamKind, what string, spans []SymSpan, cover isa.Coverage) []Finding {
	const pass = "symfoot"
	modelSet := map[int]bool{}
	for _, sp := range spans {
		for _, off := range sp.at(s).offsets() {
			modelSet[off] = true
		}
	}
	var missing, extra []int
	for off := range modelSet {
		if !cover.Has(off) {
			missing = append(missing, off)
		}
	}
	for off := 0; off < cover.Len(); off++ {
		if cover.Has(off) && !modelSet[off] {
			extra = append(extra, off)
		}
	}
	sort.Ints(missing)
	var fs []Finding
	if len(missing) > 0 {
		fs = append(fs, Finding{Pass: pass, Msg: fmt.Sprintf(
			"probe %s: model claims %d %s %s the generator does not emit", s, len(missing), kind, what),
			Offsets: missing})
	}
	if len(extra) > 0 {
		fs = append(fs, Finding{Pass: pass, Msg: fmt.Sprintf(
			"probe %s: generator emits %d %s %s outside the declared model", s, len(extra), kind, what),
			Offsets: extra})
	}
	return fs
}
