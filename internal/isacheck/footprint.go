package isacheck

import (
	"fmt"
	"sort"

	"libshalom/internal/isa"
)

// expectedSpans returns, per stream kind, the element spans the contract
// says the kernel reads and writes. A span is [Lo, Hi) at each of Count rows
// spaced Stride apart.
type span struct {
	Lo, Hi, Stride, Count int
}

func (s span) offsets() []int {
	out := make([]int, 0, (s.Hi-s.Lo)*s.Count)
	for r := 0; r < s.Count; r++ {
		base := r * s.Stride
		for off := s.Lo; off < s.Hi; off++ {
			out = append(out, base+off)
		}
	}
	sort.Ints(out)
	return out
}

// footprint is the contract's expected access sets for one stream.
type footprint struct {
	reads, writes []int // sorted element offsets; nil = must not touch
}

// expectedFootprint derives the per-stream-kind contract footprint
// (DESIGN.md §6): exactly which elements of A, B, C and Bc the declared tile
// shape touches.
func expectedFootprint(c Contract) map[isa.StreamKind]footprint {
	fp := map[isa.StreamKind]footprint{}
	switch c.Kind {
	case KindMain:
		// A: mr rows of kc elements at LDA stride; B: kc rows of nr
		// elements at LDB stride; C: the mr×nr tile at LDC stride.
		fp[isa.StreamA] = footprint{reads: span{0, c.KC, c.LDA, c.MR}.offsets()}
		fp[isa.StreamB] = footprint{reads: span{0, c.NR, c.LDB, c.KC}.offsets()}
		cTile := span{0, c.NR, c.LDC, c.MR}.offsets()
		cf := footprint{writes: cTile}
		if c.Accumulate {
			cf.reads = cTile
		}
		fp[isa.StreamC] = cf
		if c.PackB {
			// Folded packing (§5.3): the consumed B panel lands densely in
			// the row-major KC×NR buffer.
			fp[isa.StreamBc] = footprint{writes: span{0, c.NR, c.NR, c.KC}.offsets()}
		}
	case KindEdge:
		// Packed-A column slivers (Fig 6): kc columns of 8 elements at
		// LDAp stride; packed-B rows of 4 at LDB stride.
		fp[isa.StreamA] = footprint{reads: span{0, c.MR, c.LDA, c.KC}.offsets()}
		fp[isa.StreamB] = footprint{reads: span{0, c.NR, c.LDB, c.KC}.offsets()}
		fp[isa.StreamC] = footprint{writes: span{0, c.NR, c.LDC, c.MR}.offsets()}
	case KindNTPack:
		// A: mr rows of kc; Bt: nb stored-transposed rows of kc at LDBT
		// stride; C: columns [JOff, JOff+nb) of mr rows; Bc: the same
		// columns of all kc rows of the KC×NRTotal panel (Fig 4/5 layout).
		fp[isa.StreamA] = footprint{reads: span{0, c.KC, c.LDA, c.MR}.offsets()}
		fp[isa.StreamB] = footprint{reads: span{0, c.KC, c.LDB, c.NR}.offsets()}
		cTile := span{c.JOff, c.JOff + c.NR, c.LDC, c.MR}.offsets()
		cf := footprint{writes: cTile}
		if c.Accumulate {
			cf.reads = cTile
		}
		fp[isa.StreamC] = cf
		fp[isa.StreamBc] = footprint{writes: span{c.JOff, c.JOff + c.NR, c.NRTotal, c.KC}.offsets()}
	}
	return fp
}

// CheckFootprint proves the program's element-level access sets against the
// contract: no gaps, no out-of-contract accesses, no double-stores, pack
// buffers written before read per element, and (when accumulating) every C
// element loaded before it is stored.
func CheckFootprint(p *isa.Program, c Contract, rep *isa.Report) []Finding {
	const pass = "footprint"
	var fs []Finding
	want := expectedFootprint(c)

	// Resolve each expected stream kind to the program's stream index.
	byKind := map[isa.StreamKind]int{}
	for i, s := range p.Streams {
		if _, dup := byKind[s.Kind]; dup {
			fs = append(fs, Finding{Pass: pass, Msg: fmt.Sprintf("stream kind %s declared twice", s.Kind)})
			continue
		}
		byKind[s.Kind] = i
	}

	kinds := make([]isa.StreamKind, 0, len(want))
	for k := range want {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })

	for _, kind := range kinds {
		exp := want[kind]
		idx, ok := byKind[kind]
		if !ok {
			fs = append(fs, Finding{Pass: pass, Msg: fmt.Sprintf("contract expects a %s stream the program does not declare", kind)})
			continue
		}
		sr := rep.Streams[idx]
		fs = append(fs, diffCover(pass, sr.Name, "reads", sr.LoadCover, exp.reads)...)
		fs = append(fs, diffCover(pass, sr.Name, "writes", sr.StoreCover, exp.writes)...)
		if len(exp.writes) > 0 && len(sr.OverlapStores) > 0 {
			fs = append(fs, Finding{Pass: pass,
				Msg:     fmt.Sprintf("stream %s stores %d element(s) more than once", sr.Name, len(sr.OverlapStores)),
				Offsets: sr.OverlapStores})
		}
	}
	// A program stream the contract has no business with (scratch) is
	// allowed; input-stream stores are the dataflow pass's concern.

	fs = append(fs, checkAccessOrder(p, c)...)
	return fs
}

// diffCover compares an observed coverage bitmap against the expected sorted
// offset set and reports missing and out-of-contract elements.
func diffCover(pass, stream, what string, cover isa.Coverage, want []int) []Finding {
	var fs []Finding
	wantSet := make(map[int]bool, len(want))
	var missing []int
	for _, off := range want {
		wantSet[off] = true
		if !cover.Has(off) {
			missing = append(missing, off)
		}
	}
	var extra []int
	for off := 0; off < cover.Len(); off++ {
		if cover.Has(off) && !wantSet[off] {
			extra = append(extra, off)
		}
	}
	if len(missing) > 0 {
		fs = append(fs, Finding{Pass: pass,
			Msg:     fmt.Sprintf("stream %s misses %d of %d contracted %s", stream, len(missing), len(want), what),
			Offsets: missing})
	}
	if len(extra) > 0 {
		fs = append(fs, Finding{Pass: pass,
			Msg:     fmt.Sprintf("stream %s %s %d element(s) outside the contract", stream, what, len(extra)),
			Offsets: extra})
	}
	return fs
}

// checkAccessOrder walks the instruction stream once and proves the
// per-element ordering contracts: pack-buffer elements are written before
// any read (§5.3's folded packing produces, never consumes), and when the
// kernel accumulates, every C element is loaded before it is stored.
func checkAccessOrder(p *isa.Program, c Contract) []Finding {
	const pass = "footprint"
	lanes := p.Lanes()
	type state struct{ loaded, stored map[int]bool }
	st := make([]state, len(p.Streams))
	for i := range st {
		st[i] = state{loaded: map[int]bool{}, stored: map[int]bool{}}
	}
	packReadFirst := map[int]bool{} // Bc offsets read before written
	cStoreFirst := map[int]bool{}   // C offsets stored before loaded (Accumulate only)
	for _, in := range p.Code {
		n := in.AccessWidth(lanes)
		if n == 0 {
			continue
		}
		kind := p.Streams[in.Mem.Stream].Kind
		s := st[in.Mem.Stream]
		for off := in.Mem.Off; off < in.Mem.Off+n; off++ {
			if in.Op.IsLoad() {
				if kind == isa.StreamBc && !s.stored[off] {
					packReadFirst[off] = true
				}
				s.loaded[off] = true
			} else {
				if kind == isa.StreamC && c.Accumulate && !s.loaded[off] {
					cStoreFirst[off] = true
				}
				s.stored[off] = true
			}
		}
	}
	var fs []Finding
	if len(packReadFirst) > 0 {
		fs = append(fs, Finding{Pass: pass,
			Msg:     fmt.Sprintf("pack buffer reads %d element(s) before writing them", len(packReadFirst)),
			Offsets: sortedIntKeys(packReadFirst)})
	}
	if len(cStoreFirst) > 0 {
		fs = append(fs, Finding{Pass: pass,
			Msg:     fmt.Sprintf("accumulating kernel stores %d C element(s) it never loaded first", len(cStoreFirst)),
			Offsets: sortedIntKeys(cStoreFirst)})
	}
	return fs
}

func sortedIntKeys(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
