package isacheck_test

import (
	"testing"

	_ "libshalom/internal/baselines" // register baseline kernels
	"libshalom/internal/isacheck"
	_ "libshalom/internal/kernels" // register libshalom kernels
)

// TestEveryKernelDeclaresAFamily enforces the pass-#6 coverage floor: every
// registered kernel names a registered generator family, sits inside its
// domain, and registers a contract the family derivation agrees with — so
// the symbolic proof quantifies over every kernel the catalogue ships.
func TestEveryKernelDeclaresAFamily(t *testing.T) {
	entries := isacheck.Registered()
	if len(entries) == 0 {
		t.Fatal("no kernels registered")
	}
	for _, e := range entries {
		if e.SymFamily == "" {
			t.Errorf("%s: no SymFamily — the symbolic footprint pass cannot cover it", e.Name)
			continue
		}
		f, ok := isacheck.FamilyByName(e.SymFamily)
		if !ok {
			t.Errorf("%s: SymFamily %q is not registered", e.Name, e.SymFamily)
			continue
		}
		got := f.ContractAt(e.SymShape)
		want := e.Contract
		if got.Elem != want.Elem || got.MR != want.MR || got.NR != want.NR ||
			got.KC != want.KC || got.LDA != want.LDA || got.LDB != want.LDB ||
			got.LDC != want.LDC || got.NRTotal != want.NRTotal || got.JOff != want.JOff ||
			got.Kind != want.Kind || got.Accumulate != want.Accumulate || got.PackB != want.PackB {
			t.Errorf("%s: contract drift: family %s at %s derives %+v, entry declares %+v",
				e.Name, f.Name, e.SymShape, got, want)
		}
	}
}

// TestEveryFamilyProves runs the symbolic pass over the whole registered
// catalogue of families — the same proofs `make check` gates on.
func TestEveryFamilyProves(t *testing.T) {
	fams := isacheck.Families()
	if len(fams) == 0 {
		t.Fatal("no families registered")
	}
	for _, f := range fams {
		if fs := isacheck.CheckSymbolicFootprint(f); len(fs) != 0 {
			t.Errorf("family %s: %d finding(s): %v", f.Name, len(fs), fs)
		}
	}
}
