package isacheck

import (
	"fmt"

	"libshalom/internal/isa"
	"libshalom/internal/platform"
)

// PassResult is one pass's verdict for one (kernel, platform) pair.
type PassResult struct {
	Pass     string    `json:"pass"`
	OK       bool      `json:"ok"`
	Findings []Finding `json:"findings,omitempty"`
}

// KernelResult is the full verdict for one (kernel, platform) pair.
type KernelResult struct {
	Kernel   string       `json:"kernel"`
	Family   string       `json:"family"`
	Platform string       `json:"platform"`
	OK       bool         `json:"ok"`
	Passes   []PassResult `json:"passes"`
	// Metrics surfaces the measured quantities the passes judged, for the
	// lint table and for pinning contract thresholds: peak live registers,
	// steady-state load→use distance, load run, window pressures.
	Metrics map[string]float64 `json:"metrics"`
}

// Findings flattens every failing pass's findings.
func (kr KernelResult) Findings() []Finding {
	var fs []Finding
	for _, pr := range kr.Passes {
		fs = append(fs, pr.Findings...)
	}
	return fs
}

// Run executes the verifier passes for one kernel on one platform: the five
// concrete passes always, plus the symbolic footprint pass (#6) when the
// entry names its generator family.
func Run(e Entry, plat *platform.Platform) KernelResult {
	kr := KernelResult{Kernel: e.Name, Family: e.Family, Platform: plat.Name,
		Metrics: map[string]float64{}}
	c := e.Contract
	prog := e.Build()

	// dataflow: the isa analyzer's own invariants.
	rep, err := isa.Analyze(prog)
	if err != nil {
		kr.Passes = append(kr.Passes, PassResult{Pass: "dataflow", OK: false,
			Findings: []Finding{{Pass: "dataflow", Msg: err.Error()}}})
		kr.OK = false
		return kr
	}
	var dataflow []Finding
	if err := rep.CheckKernelInvariants(c.MaxDeadWrites); err != nil {
		dataflow = append(dataflow, Finding{Pass: "dataflow", Msg: err.Error()})
	}
	kr.Passes = append(kr.Passes, PassResult{Pass: "dataflow", OK: len(dataflow) == 0, Findings: dataflow})
	kr.Metrics["peakLive"] = float64(rep.PeakLive)
	kr.Metrics["deadWrites"] = float64(len(rep.DeadWrites))

	// footprint: element-level access sets vs the contract.
	fp := CheckFootprint(prog, c, rep)
	kr.Passes = append(kr.Passes, PassResult{Pass: "footprint", OK: len(fp) == 0, Findings: fp})

	// depdist + pressure: steady-state schedule analysis on this platform.
	srep := AnalyzeSchedule(prog, plat)
	dd := CheckDepDist(srep, c)
	kr.Passes = append(kr.Passes, PassResult{Pass: "depdist", OK: len(dd) == 0, Findings: dd})
	pr := CheckPressure(srep, c)
	kr.Passes = append(kr.Passes, PassResult{Pass: "pressure", OK: len(pr) == 0, Findings: pr})
	kr.Metrics["minLoadUseDist"] = float64(srep.MinLoadUseDist)
	kr.Metrics["maxLoadRun"] = float64(srep.MaxLoadRun)
	kr.Metrics["windowCovered"] = float64(srep.WindowCovered)
	kr.Metrics["loadPressure"] = srep.LoadPressure
	kr.Metrics["storePressure"] = srep.StorePressure

	// tiling: Eq. 1 conformance.
	tl := CheckTiling(prog, c, rep)
	kr.Passes = append(kr.Passes, PassResult{Pass: "tiling", OK: len(tl) == 0, Findings: tl})

	// symfoot: whole-domain symbolic footprint proof, for entries that name
	// their generator family. The family proof is platform-independent and
	// memoized; what is per-entry is the consistency of this entry's
	// contract with the family's derived contract at its shape.
	if e.SymFamily != "" {
		sf := runSymFoot(e)
		kr.Passes = append(kr.Passes, PassResult{Pass: "symfoot", OK: len(sf) == 0, Findings: sf})
	}

	kr.OK = true
	for _, p := range kr.Passes {
		kr.OK = kr.OK && p.OK
	}
	return kr
}

// runSymFoot executes pass #6 for one entry: the (memoized) family-wide
// symbolic proof plus this entry's shape-membership and contract-agreement
// checks.
func runSymFoot(e Entry) []Finding {
	const pass = "symfoot"
	f, ok := FamilyByName(e.SymFamily)
	if !ok {
		return []Finding{{Pass: pass, Msg: fmt.Sprintf(
			"entry %s names unregistered family %q", e.Name, e.SymFamily)}}
	}
	var fs []Finding
	if !shapeInDomain(e.SymShape, f.Domain) {
		fs = append(fs, Finding{Pass: pass, Msg: fmt.Sprintf(
			"entry %s shape %s outside family %s domain", e.Name, e.SymShape, f.Name)})
	} else if d := contractDrift(f.ContractAt(e.SymShape), e.Contract); d != "" {
		fs = append(fs, Finding{Pass: pass, Msg: fmt.Sprintf(
			"entry %s contract disagrees with family %s at %s: %s", e.Name, f.Name, e.SymShape, d)})
	}
	return append(fs, checkFamilyMemo(f)...)
}

func shapeInDomain(s Shape, d Domain) bool {
	in := func(v int, r Range) bool {
		return v >= r.Min && v <= r.Max && (v-r.Min)%r.step() == 0
	}
	return in(s.MR, d.MR) && in(s.NR, d.NR) && in(s.KC, d.KC)
}

// contractDrift compares the structural fields of a family-derived contract
// against an entry's registered one (schedule thresholds are per-entry and
// not compared). Empty string means agreement.
func contractDrift(got, want Contract) string {
	type field struct {
		name   string
		gv, wv int
	}
	checks := []field{
		{"Elem", got.Elem, want.Elem},
		{"MR", got.MR, want.MR}, {"NR", got.NR, want.NR}, {"KC", got.KC, want.KC},
		{"LDA", got.LDA, want.LDA}, {"LDB", got.LDB, want.LDB}, {"LDC", got.LDC, want.LDC},
		{"NRTotal", got.NRTotal, want.NRTotal}, {"JOff", got.JOff, want.JOff},
	}
	for _, f := range checks {
		if f.gv != f.wv {
			return fmt.Sprintf("%s: family derives %d, entry declares %d", f.name, f.gv, f.wv)
		}
	}
	if got.Kind != want.Kind {
		return fmt.Sprintf("Kind: family derives %v, entry declares %v", got.Kind, want.Kind)
	}
	if got.Accumulate != want.Accumulate {
		return "Accumulate flag disagrees"
	}
	if got.PackB != want.PackB {
		return "PackB flag disagrees"
	}
	return ""
}

// RunAll verifies every registered kernel on every given platform.
func RunAll(plats []*platform.Platform) []KernelResult {
	var out []KernelResult
	for _, e := range Registered() {
		for _, p := range plats {
			out = append(out, Run(e, p))
		}
	}
	return out
}

// Summarize returns pass/fail counts for a result set.
func Summarize(results []KernelResult) (ok, fail int) {
	for _, r := range results {
		if r.OK {
			ok++
		} else {
			fail++
		}
	}
	return ok, fail
}
