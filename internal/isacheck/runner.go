package isacheck

import (
	"libshalom/internal/isa"
	"libshalom/internal/platform"
)

// PassResult is one pass's verdict for one (kernel, platform) pair.
type PassResult struct {
	Pass     string    `json:"pass"`
	OK       bool      `json:"ok"`
	Findings []Finding `json:"findings,omitempty"`
}

// KernelResult is the full verdict for one (kernel, platform) pair.
type KernelResult struct {
	Kernel   string       `json:"kernel"`
	Family   string       `json:"family"`
	Platform string       `json:"platform"`
	OK       bool         `json:"ok"`
	Passes   []PassResult `json:"passes"`
	// Metrics surfaces the measured quantities the passes judged, for the
	// lint table and for pinning contract thresholds: peak live registers,
	// steady-state load→use distance, load run, window pressures.
	Metrics map[string]float64 `json:"metrics"`
}

// Findings flattens every failing pass's findings.
func (kr KernelResult) Findings() []Finding {
	var fs []Finding
	for _, pr := range kr.Passes {
		fs = append(fs, pr.Findings...)
	}
	return fs
}

// Run executes all five verifier passes for one kernel on one platform.
func Run(e Entry, plat *platform.Platform) KernelResult {
	kr := KernelResult{Kernel: e.Name, Family: e.Family, Platform: plat.Name,
		Metrics: map[string]float64{}}
	c := e.Contract
	prog := e.Build()

	// dataflow: the isa analyzer's own invariants.
	rep, err := isa.Analyze(prog)
	if err != nil {
		kr.Passes = append(kr.Passes, PassResult{Pass: "dataflow", OK: false,
			Findings: []Finding{{Pass: "dataflow", Msg: err.Error()}}})
		kr.OK = false
		return kr
	}
	var dataflow []Finding
	if err := rep.CheckKernelInvariants(c.MaxDeadWrites); err != nil {
		dataflow = append(dataflow, Finding{Pass: "dataflow", Msg: err.Error()})
	}
	kr.Passes = append(kr.Passes, PassResult{Pass: "dataflow", OK: len(dataflow) == 0, Findings: dataflow})
	kr.Metrics["peakLive"] = float64(rep.PeakLive)
	kr.Metrics["deadWrites"] = float64(len(rep.DeadWrites))

	// footprint: element-level access sets vs the contract.
	fp := CheckFootprint(prog, c, rep)
	kr.Passes = append(kr.Passes, PassResult{Pass: "footprint", OK: len(fp) == 0, Findings: fp})

	// depdist + pressure: steady-state schedule analysis on this platform.
	srep := AnalyzeSchedule(prog, plat)
	dd := CheckDepDist(srep, c)
	kr.Passes = append(kr.Passes, PassResult{Pass: "depdist", OK: len(dd) == 0, Findings: dd})
	pr := CheckPressure(srep, c)
	kr.Passes = append(kr.Passes, PassResult{Pass: "pressure", OK: len(pr) == 0, Findings: pr})
	kr.Metrics["minLoadUseDist"] = float64(srep.MinLoadUseDist)
	kr.Metrics["maxLoadRun"] = float64(srep.MaxLoadRun)
	kr.Metrics["windowCovered"] = float64(srep.WindowCovered)
	kr.Metrics["loadPressure"] = srep.LoadPressure
	kr.Metrics["storePressure"] = srep.StorePressure

	// tiling: Eq. 1 conformance.
	tl := CheckTiling(prog, c, rep)
	kr.Passes = append(kr.Passes, PassResult{Pass: "tiling", OK: len(tl) == 0, Findings: tl})

	kr.OK = true
	for _, p := range kr.Passes {
		kr.OK = kr.OK && p.OK
	}
	return kr
}

// RunAll verifies every registered kernel on every given platform.
func RunAll(plats []*platform.Platform) []KernelResult {
	var out []KernelResult
	for _, e := range Registered() {
		for _, p := range plats {
			out = append(out, Run(e, p))
		}
	}
	return out
}

// Summarize returns pass/fail counts for a result set.
func Summarize(results []KernelResult) (ok, fail int) {
	for _, r := range results {
		if r.OK {
			ok++
		} else {
			fail++
		}
	}
	return ok, fail
}
