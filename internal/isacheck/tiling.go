package isacheck

import (
	"fmt"

	"libshalom/internal/analytic"
	"libshalom/internal/isa"
)

// CheckTiling enforces the §5.2 register-tiling conformance: the declared
// (mr, nr, j) must be feasible under Eq. 1, and the peak register pressure
// the liveness analysis measures must equal the model's prediction — a kernel
// using fewer registers than Eq. 1 says wastes tile capacity, one using more
// is not the tile it claims to be.
func CheckTiling(p *isa.Program, c Contract, rep *isa.Report) []Finding {
	const pass = "tiling"
	var fs []Finding
	if p.ElemBytes != c.Elem {
		fs = append(fs, Finding{Pass: pass,
			Msg: fmt.Sprintf("program element size %dB does not match the contract's %dB", p.ElemBytes, c.Elem)})
		return fs
	}
	exp := c.ExpectedRegs()
	if exp > 32 {
		fs = append(fs, Finding{Pass: pass,
			Msg: fmt.Sprintf("declared %dx%d tile needs %d registers (Eq. 1) — infeasible on a 32-register file",
				c.MR, c.NR, exp)})
		return fs
	}
	if c.Kind == KindMain && c.Pipelined && exp > analytic.RegisterBudget {
		fs = append(fs, Finding{Pass: pass,
			Msg: fmt.Sprintf("pipelined main tile needs %d registers, over the Eq. 1 budget of %d (one reserved for prefetch)",
				exp, analytic.RegisterBudget)})
	}
	if rep.PeakLive != exp {
		fs = append(fs, Finding{Pass: pass,
			Msg: fmt.Sprintf("peak live registers %d, but Eq. 1 predicts %d for the declared %dx%d tile",
				rep.PeakLive, exp, c.MR, c.NR)})
	}
	return fs
}
