package isacheck_test

import (
	"sort"
	"strings"
	"testing"

	"libshalom/internal/isa"
	"libshalom/internal/isacheck"
)

func validEntry(name string) isacheck.Entry {
	return isacheck.Entry{
		Name:   name,
		Family: "test",
		Contract: isacheck.Contract{Kind: isacheck.KindMain, Elem: 4,
			MR: 1, NR: 4, KC: 4, LDA: 4, LDB: 4, LDC: 4},
		Build: func() *isa.Program {
			return isa.NewBuilder("t", 4).MustBuild()
		},
	}
}

func expectPanic(t *testing.T, want string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no panic, want one mentioning %q", want)
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, want) {
			t.Fatalf("panic %v, want one mentioning %q", r, want)
		}
	}()
	fn()
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	isacheck.Register(validEntry("test/dup-probe"))
	expectPanic(t, "duplicate", func() {
		isacheck.Register(validEntry("test/dup-probe"))
	})
}

func TestRegisterRejectsInvalidContract(t *testing.T) {
	e := validEntry("test/bad-contract")
	e.Contract.Elem = 3
	expectPanic(t, "elem", func() { isacheck.Register(e) })
}

func TestRegisterRejectsMissingBuilder(t *testing.T) {
	e := validEntry("test/no-builder")
	e.Build = nil
	expectPanic(t, "builder", func() { isacheck.Register(e) })
}

func TestRegisteredSortedAndComplete(t *testing.T) {
	entries := isacheck.Registered()
	names := make([]string, len(entries))
	families := map[string]int{}
	for i, e := range entries {
		names[i] = e.Name
		families[e.Family]++
	}
	if !sort.StringsAreSorted(names) {
		t.Errorf("Registered() not sorted: %v", names)
	}
	if families["libshalom"] < 6 {
		t.Errorf("only %d libshalom kernels registered, want the full catalogue", families["libshalom"])
	}
	if families["baseline"] < 3 {
		t.Errorf("only %d baseline kernels registered, want the full catalogue", families["baseline"])
	}
	if _, ok := isacheck.Lookup("libshalom/main-7x12-f32"); !ok {
		t.Error("Lookup failed for the paper's headline kernel")
	}
	if _, ok := isacheck.Lookup("no/such-kernel"); ok {
		t.Error("Lookup invented a kernel")
	}
}
