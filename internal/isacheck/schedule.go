package isacheck

import (
	"fmt"

	"libshalom/internal/isa"
	"libshalom/internal/platform"
)

// RAWPair is one load→first-consumer dependence in the steady-state region.
type RAWPair struct {
	Producer int `json:"producer"` // instruction index of the load
	Consumer int `json:"consumer"` // instruction index of the first reader
	Reg      int `json:"reg"`      // the register carrying the dependence
	Dist     int `json:"dist"`     // Consumer - Producer in program order
	// InWindow marks pairs closer than the platform's OoO window: the
	// core must find independent work inside the window to hide the load
	// latency of these pairs (the §5.4 / Fig 6 mechanism).
	InWindow bool `json:"inWindow"`
}

// ScheduleReport is the result of the depdist and pressure passes for one
// (program, platform) pair.
type ScheduleReport struct {
	// WarmupLen is the prologue/epilogue margin excluded from the
	// steady-state metrics (a quarter of the program at each end), so the
	// necessarily-adjacent prologue load→use pairs and the epilogue store
	// burst do not drown the loop body the §5.4 claim is about.
	WarmupLen int `json:"warmupLen"`

	// Pairs lists every steady-state load→first-consumer RAW pair.
	Pairs []RAWPair `json:"pairs,omitempty"`
	// MinLoadUseDist is the smallest steady-state load→use distance
	// (0 when the region has no such pairs).
	MinLoadUseDist int `json:"minLoadUseDist"`
	// WindowCovered counts pairs with Dist < the platform's OoO window.
	WindowCovered int `json:"windowCovered"`
	// MaxLoadRun is the longest run of consecutive load instructions in
	// the steady-state region (Fig 6a's batched loads).
	MaxLoadRun int `json:"maxLoadRun"`

	// Issue-pressure metrics: for every OoO-window-sized slice of the
	// steady-state region, the op mix is compared against the pipe
	// capacity the window's issue slots provide. Pressure 1.0 means the
	// class's pipes are exactly saturated over the worst window.
	LoadCapacityPerWindow  int     `json:"loadCapacityPerWindow"`
	StoreCapacityPerWindow int     `json:"storeCapacityPerWindow"`
	MaxLoadsPerWindow      int     `json:"maxLoadsPerWindow"`
	MaxStoresPerWindow     int     `json:"maxStoresPerWindow"`
	LoadPressure           float64 `json:"loadPressure"`
	StorePressure          float64 `json:"storePressure"`
	FMAPressure            float64 `json:"fmaPressure"`
}

// AnalyzeSchedule runs the dependency-distance and issue-pressure analyses
// of a program against one platform's core parameters.
func AnalyzeSchedule(p *isa.Program, plat *platform.Platform) ScheduleReport {
	n := len(p.Code)
	rep := ScheduleReport{WarmupLen: n / 4}
	lo, hi := rep.WarmupLen, n-rep.WarmupLen

	// --- load→first-consumer RAW pairs ---
	lastWriter := make([]int, 32)
	firstUseFound := make([]bool, 32)
	for i := range lastWriter {
		lastWriter[i] = -1
	}
	for i, in := range p.Code {
		for _, u := range in.Uses() {
			w := lastWriter[u]
			if w >= 0 && !firstUseFound[u] && p.Code[w].Op.IsLoad() {
				firstUseFound[u] = true
				if w >= lo && w < hi {
					pair := RAWPair{Producer: w, Consumer: i, Reg: u, Dist: i - w,
						InWindow: i-w < plat.OoOWindow}
					rep.Pairs = append(rep.Pairs, pair)
					if rep.MinLoadUseDist == 0 || pair.Dist < rep.MinLoadUseDist {
						rep.MinLoadUseDist = pair.Dist
					}
					if pair.InWindow {
						rep.WindowCovered++
					}
				}
			}
		}
		for _, d := range in.Defs() {
			lastWriter[d] = i
			firstUseFound[d] = false
		}
	}

	// --- load runs ---
	run := 0
	for i := lo; i < hi; i++ {
		if p.Code[i].Op.IsLoad() {
			run++
			if run > rep.MaxLoadRun {
				rep.MaxLoadRun = run
			}
		} else {
			run = 0
		}
	}

	// --- sliding-window issue pressure ---
	w := plat.OoOWindow
	if w < 1 {
		w = 1
	}
	issueCycles := w / plat.IssueWidth
	if issueCycles < 1 {
		issueCycles = 1
	}
	rep.LoadCapacityPerWindow = issueCycles * plat.LoadPipes
	rep.StoreCapacityPerWindow = issueCycles * plat.StorePipes
	fmaCapacity := issueCycles * plat.FMAPipes
	loads, stores, fmas := 0, 0, 0
	maxFMAs := 0
	for i := lo; i < hi; i++ {
		switch {
		case p.Code[i].Op.IsLoad():
			loads++
		case p.Code[i].Op.IsStore():
			stores++
		case p.Code[i].Op.IsFMA():
			fmas++
		}
		if i-lo >= w { // slide: drop the instruction leaving the window
			switch {
			case p.Code[i-w].Op.IsLoad():
				loads--
			case p.Code[i-w].Op.IsStore():
				stores--
			case p.Code[i-w].Op.IsFMA():
				fmas--
			}
		}
		if i-lo >= w-1 || i == hi-1 { // full window (or the final partial one)
			if loads > rep.MaxLoadsPerWindow {
				rep.MaxLoadsPerWindow = loads
			}
			if stores > rep.MaxStoresPerWindow {
				rep.MaxStoresPerWindow = stores
			}
			if fmas > maxFMAs {
				maxFMAs = fmas
			}
		}
	}
	rep.LoadPressure = float64(rep.MaxLoadsPerWindow) / float64(rep.LoadCapacityPerWindow)
	rep.StorePressure = float64(rep.MaxStoresPerWindow) / float64(rep.StoreCapacityPerWindow)
	rep.FMAPressure = float64(maxFMAs) / float64(fmaCapacity)
	return rep
}

// CheckDepDist enforces the contract's dependency-distance floors against
// the steady-state RAW analysis (the §5.4 invariant).
func CheckDepDist(rep ScheduleReport, c Contract) []Finding {
	const pass = "depdist"
	c = c.normalized()
	var fs []Finding
	if c.MinLoadUseDist > 0 && len(rep.Pairs) > 0 && rep.MinLoadUseDist < c.MinLoadUseDist {
		var worst []int
		for _, p := range rep.Pairs {
			if p.Dist < c.MinLoadUseDist {
				worst = append(worst, p.Producer)
			}
		}
		fs = append(fs, Finding{Pass: pass,
			Msg: fmt.Sprintf("steady-state load→use distance %d below the contract floor %d (%d pair(s) too close)",
				rep.MinLoadUseDist, c.MinLoadUseDist, len(worst)),
			Offsets: worst})
	}
	if c.MaxLoadRun > 0 && rep.MaxLoadRun > c.MaxLoadRun {
		fs = append(fs, Finding{Pass: pass,
			Msg: fmt.Sprintf("steady-state run of %d consecutive loads exceeds the contract ceiling %d (batched loads, Fig 6a)",
				rep.MaxLoadRun, c.MaxLoadRun)})
	}
	return fs
}

// CheckPressure enforces the contract's sliding-window pipe-pressure
// ceilings.
func CheckPressure(rep ScheduleReport, c Contract) []Finding {
	const pass = "pressure"
	c = c.normalized()
	const eps = 1e-9
	var fs []Finding
	if c.MaxLoadPressure > 0 && rep.LoadPressure > c.MaxLoadPressure+eps {
		fs = append(fs, Finding{Pass: pass,
			Msg: fmt.Sprintf("load-pipe pressure %.2f (%d loads in an OoO window with capacity %d) exceeds the contract ceiling %.2f",
				rep.LoadPressure, rep.MaxLoadsPerWindow, rep.LoadCapacityPerWindow, c.MaxLoadPressure)})
	}
	if c.MaxStorePressure > 0 && rep.StorePressure > c.MaxStorePressure+eps {
		fs = append(fs, Finding{Pass: pass,
			Msg: fmt.Sprintf("store-pipe pressure %.2f (%d stores in an OoO window with capacity %d) exceeds the contract ceiling %.2f",
				rep.StorePressure, rep.MaxStoresPerWindow, rep.StoreCapacityPerWindow, c.MaxStorePressure)})
	}
	return fs
}
