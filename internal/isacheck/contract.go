// Package isacheck is the static kernel verifier of the reproduction: a
// multi-pass analysis that proves, without executing a program, that an
// emitted virtual-NEON micro-kernel (internal/isa) satisfies the contract its
// generator declared. LibShalom's core claims are properties of the emitted
// instruction streams — packing folded into the FMA stream (§5.3), dependent
// instructions spread far enough apart for the bounded OoO window to hide
// load latency in the edge kernels (§5.4, Fig 6), and register tilings that
// exactly satisfy Eq. 1 — and before this package those properties were only
// checked dynamically (vexec execution, uarch simulation) or not at all.
//
// Six passes run per (kernel, platform):
//
//   - dataflow: the internal/isa analyzer's invariants (no undefined register
//     reads, bounded dead writes, peak pressure within the register file,
//     input streams never stored).
//   - footprint: every stream's element-level access set must match the
//     contract exactly — A reads mr·kc elements and nothing else, C covers
//     the mr×nr tile with no gaps and no double-stores, pack buffers are
//     written densely and write-before-read per element (§5.3).
//   - depdist: dependency-distance analysis of load→consumer RAW pairs in
//     the steady-state region — the §5.4 discipline, checked statically
//     instead of only via the uarch scoreboard. RAW pairs closer than the
//     platform's OoO window are counted (the window must reorder around
//     them); the contract's declared floors on load→use distance and load
//     batching are enforced.
//   - pressure: a sliding OoO-window issue-pressure pass comparing the op
//     mix inside every window against the platform's FMA/load/store pipe
//     counts; flags windows whose load (or store) demand oversubscribes the
//     pipes beyond the contract's ceiling.
//   - tiling: the peak register pressure measured by liveness analysis must
//     equal the Eq. 1 model's prediction for the declared (mr, nr, j), and
//     the declared tiling itself must be feasible (§5.2).
//   - symfoot: the symbolic footprint proof (symbolic.go). Where the
//     footprint pass enumerates the access set of the one registered
//     (mr, nr, kc) instance, this pass proves panel containment and
//     coverage for EVERY shape in the generator family's domain, by
//     reducing span inclusion to polynomial inequalities over (mr, nr, kc)
//     decided exactly at the domain box's corners, and anchors the declared
//     emission model to the real generator at the corners. Runs for entries
//     that name their family (Entry.SymFamily).
//
// Kernel generators in internal/kernels and internal/baselines self-register
// (Register) with their contracts; cmd/shalom-lint runs every pass over every
// registered kernel on every platform and is wired into `make check` as a
// build gate.
package isacheck

import (
	"fmt"

	"libshalom/internal/analytic"
)

// Kind identifies which generator family a contract describes; it selects
// the expected-footprint shape and the Eq. 1 register prediction.
type Kind int

const (
	// KindMain is the outer-product main micro-kernel (Alg 2), optionally
	// with the folded B packing of §5.3 (PackB).
	KindMain Kind = iota
	// KindEdge is the 8×4 edge-kernel pair of Fig 6 (§5.4).
	KindEdge
	// KindNTPack is the NT-mode inner-product packing micro-kernel
	// (Fig 5, Alg 3): NR is the per-call column count NB, and the scatter
	// stores fill columns [JOff, JOff+NR) of a KC×NRTotal Bc panel.
	KindNTPack
)

var kindNames = [...]string{"main", "edge", "ntpack"}

// String names the contract kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Contract is what a kernel generator declares about the program it emits.
// The verifier proves the program against it; it never trusts the program.
type Contract struct {
	Kind Kind
	Elem int // element bytes: 4 (FP32) or 8 (FP64)

	// Register tile and K extent. For KindNTPack, NR is the per-call NB.
	MR, NR, KC int

	// Leading dimensions, in elements, of the declared operand layouts.
	// For KindEdge LDA is the packed-A leading dimension (LDAp); for
	// KindNTPack LDB is the stored-transposed leading dimension (LDBT).
	LDA, LDB, LDC int

	// NRTotal and JOff describe the Bc panel a KindNTPack call fills
	// (§5.3.2): columns [JOff, JOff+NR) of a row-major KC×NRTotal buffer.
	NRTotal, JOff int

	Accumulate bool // the kernel loads the C tile before accumulating
	PackB      bool // KindMain only: the kernel also packs B into Bc

	// Pipelined claims the §5.4 scheduling discipline: operand loads are
	// interleaved between FMAs rather than batched. When set, unset
	// schedule thresholds below default to the strict pipelined floors
	// (MinLoadUseDist ≥ 2, MaxLoadRun ≤ 2, MaxLoadPressure ≤ 0.9).
	Pipelined bool

	// MinLoadUseDist is the declared floor on the program-order distance
	// between a load and its first consumer in the steady-state region.
	// Zero means "do not enforce" (unless Pipelined defaults it).
	MinLoadUseDist int
	// MaxLoadRun is the declared ceiling on consecutive load instructions
	// in the steady-state region (batched loads are the Fig 6a defect).
	// Zero means "do not enforce" (unless Pipelined defaults it).
	MaxLoadRun int
	// MaxLoadPressure / MaxStorePressure are declared ceilings on the
	// sliding-window pipe oversubscription ratio (1.0 = the window's load
	// or store pipes are exactly saturated). Zero means "do not enforce"
	// (unless Pipelined defaults the load ceiling).
	MaxLoadPressure  float64
	MaxStorePressure float64

	// MaxDeadWrites tolerates the dead tail writes a software-pipelined
	// body may legally emit (the dataflow pass's budget).
	MaxDeadWrites int

	// ExpectRegs overrides the Eq. 1 register prediction when non-zero;
	// zero derives it from Kind via ExpectedRegs.
	ExpectRegs int
}

// Lanes returns the vector lane count for the contract's element size.
func (c Contract) Lanes() int { return 16 / c.Elem }

// ExpectedRegs returns the register-pressure prediction the tiling pass
// enforces: the Eq. 1 left-hand side for the declared tile.
func (c Contract) ExpectedRegs() int {
	if c.ExpectRegs != 0 {
		return c.ExpectRegs
	}
	switch c.Kind {
	case KindMain:
		return analytic.RegistersNeeded(c.MR, c.NR, c.Lanes())
	case KindNTPack:
		return analytic.InnerProductRegisters(c.MR, c.NR)
	case KindEdge:
		// Fig 6 register plan, both variants: 8 accumulators plus 6
		// operand registers (batch: 2 A vectors + 4 B scalars; pipelined:
		// double-buffered 2×2 A vectors + 2×1 B vectors).
		return 14
	}
	return 0
}

// normalized applies the Pipelined defaults to unset schedule thresholds.
func (c Contract) normalized() Contract {
	if c.Pipelined {
		if c.MinLoadUseDist == 0 {
			c.MinLoadUseDist = 2
		}
		if c.MaxLoadRun == 0 {
			c.MaxLoadRun = 2
		}
		if c.MaxLoadPressure == 0 {
			c.MaxLoadPressure = 0.9
		}
	}
	return c
}

// Validate checks the contract's own consistency (not the program's).
func (c Contract) Validate() error {
	if c.Elem != 4 && c.Elem != 8 {
		return fmt.Errorf("isacheck: contract elem %d not 4 or 8", c.Elem)
	}
	if c.MR < 1 || c.NR < 1 || c.KC < 1 {
		return fmt.Errorf("isacheck: contract tile %dx%d kc=%d invalid", c.MR, c.NR, c.KC)
	}
	if c.LDA < 1 || c.LDB < 1 || c.LDC < 1 {
		return fmt.Errorf("isacheck: contract leading dimensions invalid")
	}
	if c.Kind == KindNTPack {
		if c.NRTotal < 1 || c.JOff < 0 || c.JOff+c.NR > c.NRTotal {
			return fmt.Errorf("isacheck: ntpack contract joff=%d nb=%d nrtotal=%d inconsistent",
				c.JOff, c.NR, c.NRTotal)
		}
	}
	if c.Kind == KindEdge && (c.MR != 8 || c.NR != 4) {
		return fmt.Errorf("isacheck: edge contract must declare the 8x4 tile, got %dx%d", c.MR, c.NR)
	}
	return nil
}

// Finding is one verified defect: which pass owns it, what is wrong, and the
// element offsets or instruction indices that witness it (sorted, truncated
// to a readable prefix by the reporter, never by the analysis).
type Finding struct {
	Pass    string `json:"pass"`
	Msg     string `json:"msg"`
	Offsets []int  `json:"offsets,omitempty"`
}

func (f Finding) String() string {
	if len(f.Offsets) == 0 {
		return fmt.Sprintf("[%s] %s", f.Pass, f.Msg)
	}
	const maxShown = 8
	offs := f.Offsets
	suffix := ""
	if len(offs) > maxShown {
		offs = offs[:maxShown]
		suffix = fmt.Sprintf(" …(+%d more)", len(f.Offsets)-maxShown)
	}
	return fmt.Sprintf("[%s] %s at %v%s", f.Pass, f.Msg, offs, suffix)
}
