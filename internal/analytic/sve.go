package analytic

// SVE generalization (§5.5): the paper notes that its analytic method
// carries to the ARM Scalable Vector Extension by recomputing (mr, nr) for
// the implementation's vector length — any multiple of 128 bits up to 2048.
// This file implements exactly that: Eq. 1–2 parameterized by vector width.
//
// The register-tile constraint is unchanged in structure — mr registers of
// broadcast A values, nr/j registers of B, mr·nr/j accumulators, one
// register reserved for prefetch — only the lane count j = bits/8/elem
// changes.

import "fmt"

// SVELanes returns the elements per vector register for a vector width in
// bits and element size in bytes.
func SVELanes(vectorBits, elemBytes int) (int, error) {
	if vectorBits < 128 || vectorBits > 2048 || vectorBits%128 != 0 {
		return 0, fmt.Errorf("analytic: SVE vector length %d not a multiple of 128 in [128, 2048]", vectorBits)
	}
	if elemBytes != 4 && elemBytes != 8 {
		return 0, fmt.Errorf("analytic: element size %d", elemBytes)
	}
	return vectorBits / 8 / elemBytes, nil
}

// SolveForVector maximizes CMR under Eq. 1 for an arbitrary SVE vector
// width. 128 bits reproduces the NEON tiles (7×12 FP32, 7×6 FP64).
func SolveForVector(vectorBits, elemBytes int) (Tile, error) {
	j, err := SVELanes(vectorBits, elemBytes)
	if err != nil {
		return Tile{}, err
	}
	return Solve(j, RegisterBudget), nil
}

// VectorSweep solves the tile for every legal SVE width, for the vector-
// length scaling analysis the paper sketches in §5.5.
func VectorSweep(elemBytes int) []struct {
	Bits int
	Tile Tile
} {
	var out []struct {
		Bits int
		Tile Tile
	}
	for bits := 128; bits <= 2048; bits *= 2 {
		t, err := SolveForVector(bits, elemBytes)
		if err != nil {
			continue
		}
		out = append(out, struct {
			Bits int
			Tile Tile
		}{bits, t})
	}
	return out
}
