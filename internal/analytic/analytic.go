// Package analytic implements the paper's analytic methods: the register-file
// constraint and CMR objective that determine the micro-kernel tile (mr, nr)
// (§5.2, Eq. 1–2), the cache-capacity-driven blocking parameters (mc, kc, nc)
// (§5.5), and the two-level parallel work partition Tn = ⌈√(T·N/M)⌉ (§6,
// Eq. 3–4). The paper solves Eq. 1–2 with a Lagrange-multiplier argument and
// rounds to integers; an exact enumeration over the (small) feasible set
// finds the same optimum and is what Solve uses, with a test pinning the
// published result mr=7, nr=12 for FP32 (and mr=7, nr=6 for FP64).
package analytic

import (
	"fmt"
	"math"

	"libshalom/internal/platform"
)

// CMR returns the computation-to-memory ratio of an mr×nr outer-product
// micro-kernel as defined by Eq. 2: 2·mr·nr floating point operations per
// (mr + nr) element loads per unrolled K step.
func CMR(mr, nr int) float64 {
	if mr+nr == 0 {
		return 0
	}
	return 2 * float64(mr) * float64(nr) / float64(mr+nr)
}

// RegistersNeeded returns the vector registers an mr×nr micro-kernel
// requires with j elements per register: mr for broadcast A elements, nr/j
// for the B sliver and mr·nr/j accumulators (left side of Eq. 1).
func RegistersNeeded(mr, nr, j int) int {
	return mr + nr/j + mr*nr/j
}

// InnerProductRegisters returns the vector registers the NT inner-product
// packing micro-kernel (Fig 5, Alg 3) requires for an mr×nb tile: mr A-row
// registers, nb B-row registers and mr·nb accumulators. The epilogue's
// reduction scratch reuses a dead B register (Fig 5's register plan), so no
// additional register is charged.
func InnerProductRegisters(mr, nb int) int {
	return mr + nb + mr*nb
}

// Feasible reports whether (mr, nr) satisfies Eq. 1 for lane count j and the
// given register budget (the paper reserves one of the 32 NEON registers for
// prefetching, leaving 31).
func Feasible(mr, nr, j, budget int) bool {
	return mr >= 1 && nr >= j && nr%j == 0 && RegistersNeeded(mr, nr, j) <= budget
}

// Tile is a solved micro-kernel shape.
type Tile struct {
	MR, NR int
	CMR    float64
	Regs   int
}

// RegisterBudget is the usable vector-register count: 32 minus the one the
// paper reserves for prefetching (§5.2.1).
const RegisterBudget = 31

// Solve maximizes CMR subject to Eq. 1 by exact enumeration. j is the lane
// count (4 for FP32, 2 for FP64 on 128-bit NEON). Ties prefer the larger nr
// (wider B slivers amortize the per-iteration loop overhead), then larger mr.
func Solve(j, budget int) Tile {
	best := Tile{}
	for mr := 1; mr <= budget; mr++ {
		for nr := j; RegistersNeeded(mr, nr, j) <= budget; nr += j {
			if !Feasible(mr, nr, j, budget) {
				continue
			}
			c := CMR(mr, nr)
			if c > best.CMR+1e-12 ||
				(math.Abs(c-best.CMR) <= 1e-12 && (nr > best.NR || (nr == best.NR && mr > best.MR))) {
				best = Tile{MR: mr, NR: nr, CMR: c, Regs: RegistersNeeded(mr, nr, j)}
			}
		}
	}
	return best
}

// SolveForElem returns the micro-kernel tile for the element size in bytes
// (4 → FP32 lanes j=4 → 7×12; 8 → FP64 lanes j=2 → 7×6).
func SolveForElem(elemBytes int) Tile {
	return Solve(platform.VectorLanes(elemBytes), RegisterBudget)
}

// Blocking holds the cache blocking parameters of the Goto loop nest.
type Blocking struct {
	MC, KC, NC int
}

// BlockingFor derives (mc, kc, nc) from a platform's cache capacities in the
// standard analytic way (§5.5, citing Low et al.): the kc×nr B sliver plus
// the mr×kc A sliver live in L1 (half of it, leaving room for C and the
// stream of A), the mc×kc A block occupies half of L2, and the kc×nc B panel
// occupies half of the LLC. Results are rounded down to multiples of the
// micro-kernel tile and floored at one tile.
func BlockingFor(p *platform.Platform, elemBytes int) Blocking {
	t := SolveForElem(elemBytes)
	// kc from L1: kc*(nr+mr)*elem ≤ L1/2.
	kc := p.L1.SizeBytes / 2 / ((t.NR + t.MR) * elemBytes)
	if kc < 32 {
		kc = 32
	}
	if kc > 512 {
		kc = 512 // cap: beyond this the C-tile residency in L1 suffers
	}
	// mc from L2 (per-core share when shared): mc*kc*elem ≤ L2share/2.
	l2 := p.L2.SizeBytes
	if p.L2.Shared && p.L2.SharedBy > 1 {
		l2 /= p.L2.SharedBy
	}
	mc := l2 / 2 / (kc * elemBytes)
	mc -= mc % t.MR
	if mc < t.MR {
		mc = t.MR
	}
	// nc from the memory hierarchy: kc*nc*elem ≤ cap/2, where cap is the
	// smaller of the per-core LLC share and twice the per-core L2 share —
	// production libraries size the Bc panel so its kernel re-reads are
	// served near the private L2, not just somewhere in a huge shared LLC.
	llc := p.LLC()
	llcBytes := llc.SizeBytes
	if llc.Shared && llc.SharedBy > 1 {
		llcBytes /= llc.SharedBy
	}
	if cap2 := 2 * l2; cap2 < llcBytes {
		llcBytes = cap2
	}
	nc := llcBytes / 2 / (kc * elemBytes)
	nc -= nc % t.NR
	if nc < t.NR {
		nc = t.NR
	}
	return Blocking{MC: mc, KC: kc, NC: nc}
}

// Partition is a two-level parallel work split: TM×TN = T threads, TM along
// the M dimension and TN along N.
type Partition struct {
	TM, TN int
}

// ParallelCMR evaluates Eq. 3: the computation-to-memory ratio of one
// thread's sub-block when C is divided into a TM×TN grid.
func ParallelCMR(m, n, t int, tn int) float64 {
	if tn <= 0 || t <= 0 {
		return 0
	}
	denom := float64(m)*float64(tn) + float64(n)*float64(t)/float64(tn)
	if denom == 0 {
		return 0
	}
	return float64(m) * float64(n) / denom
}

// PartitionFor computes the paper's partition (§6.1): Tn = ⌈√(T·N/M)⌉
// rounded up to the nearest divisor of T so the cores divide evenly
// (T mod Tn = 0), clamped to [1, T]. The paper's worked example — M=2048,
// N=256, T=64 → Tn=4, Tm=16 — is pinned by a test.
func PartitionFor(m, n, t int) Partition {
	if t <= 1 || m <= 0 || n <= 0 {
		return Partition{TM: max(1, t), TN: 1}
	}
	ideal := math.Sqrt(float64(t) * float64(n) / float64(m))
	tn := int(math.Ceil(ideal - 1e-9))
	if tn < 1 {
		tn = 1
	}
	if tn > t {
		tn = t
	}
	// Round up to the nearest divisor of t.
	for t%tn != 0 {
		tn++
	}
	return Partition{TM: t / tn, TN: tn}
}

// Validate checks a partition against its thread count.
func (p Partition) Validate(t int) error {
	if p.TM < 1 || p.TN < 1 || p.TM*p.TN != t {
		return fmt.Errorf("analytic: partition %dx%d does not use exactly %d threads", p.TM, p.TN, t)
	}
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
