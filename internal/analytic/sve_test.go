package analytic

import (
	"testing"

	"libshalom/internal/platform"
)

func TestSVELanes(t *testing.T) {
	cases := []struct {
		bits, elem, want int
	}{
		{128, 4, 4}, {128, 8, 2}, {256, 4, 8}, {512, 4, 16}, {512, 8, 8}, {2048, 8, 32},
	}
	for _, c := range cases {
		got, err := SVELanes(c.bits, c.elem)
		if err != nil || got != c.want {
			t.Fatalf("SVELanes(%d,%d) = %d, %v", c.bits, c.elem, got, err)
		}
	}
	for _, bad := range [][2]int{{96, 4}, {192, 4}, {4096, 4}, {512, 3}} {
		if _, err := SVELanes(bad[0], bad[1]); err == nil {
			t.Fatalf("SVELanes(%d,%d) accepted", bad[0], bad[1])
		}
	}
}

// TestSolveForVector128MatchesNEON: the SVE solver at 128 bits must
// reproduce the paper's NEON tiles exactly.
func TestSolveForVector128MatchesNEON(t *testing.T) {
	t32, err := SolveForVector(128, 4)
	if err != nil || t32.MR != 7 || t32.NR != 12 {
		t.Fatalf("SVE-128 FP32 tile %dx%d (err %v), want 7x12", t32.MR, t32.NR, err)
	}
	t64, err := SolveForVector(128, 8)
	if err != nil || t64.MR != 7 || t64.NR != 6 {
		t.Fatalf("SVE-128 FP64 tile %dx%d, want 7x6", t64.MR, t64.NR)
	}
}

// TestSolveForVectorWiderTiles pins the solved tiles for the SVE widths
// §5.5 mentions, and checks the structural invariants: feasibility, CMR
// growth with width, and optimality within the enumerated space.
func TestSolveForVectorWiderTiles(t *testing.T) {
	prev := 0.0
	for _, bits := range []int{128, 256, 512, 1024, 2048} {
		tile, err := SolveForVector(bits, 4)
		if err != nil {
			t.Fatal(err)
		}
		j := bits / 8 / 4
		if !Feasible(tile.MR, tile.NR, j, RegisterBudget) {
			t.Fatalf("SVE-%d tile %dx%d infeasible", bits, tile.MR, tile.NR)
		}
		if tile.CMR < prev {
			t.Fatalf("SVE-%d CMR %.2f below narrower width's %.2f (wider vectors must not hurt the model)", bits, tile.CMR, prev)
		}
		prev = tile.CMR
		// Exhaustive optimality check.
		for mr := 1; mr <= 31; mr++ {
			for nr := j; nr <= 31*j; nr += j {
				if Feasible(mr, nr, j, RegisterBudget) && CMR(mr, nr) > tile.CMR+1e-9 {
					t.Fatalf("SVE-%d: %dx%d beats solver's %dx%d", bits, mr, nr, tile.MR, tile.NR)
				}
			}
		}
	}
}

func TestVectorSweep(t *testing.T) {
	sweep := VectorSweep(4)
	if len(sweep) != 5 { // 128, 256, 512, 1024, 2048
		t.Fatalf("sweep has %d entries", len(sweep))
	}
	if sweep[0].Bits != 128 || sweep[len(sweep)-1].Bits != 2048 {
		t.Fatal("sweep endpoints wrong")
	}
}

// TestA64FXPlatform sanity-checks the SVE-512 demonstration platform.
func TestA64FXPlatform(t *testing.T) {
	p := platform.A64FX()
	if p.SIMDBits != 512 || p.Lanes(4) != 16 || p.Lanes(8) != 8 {
		t.Fatal("A64FX lane counts wrong")
	}
	// 48 × 2.2 × 2 × 16 × 2 = 6758.4 GFLOPS FP32.
	if got := p.PeakGFLOPS(4); got < 6758 || got > 6759 {
		t.Fatalf("A64FX FP32 peak %f", got)
	}
	// NEON platforms must be unaffected by the SIMDBits addition.
	if platform.KP920().Lanes(4) != 4 {
		t.Fatal("NEON platform lane count changed")
	}
}
