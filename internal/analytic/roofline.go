// Roofline accounting for the attribution engine: how fast *should* an
// M×N×K GEMM on a given platform have been, independent of any library's
// schedule. The paper's Fig 6 efficiency study plots measured GFLOPS
// against exactly this ceiling; internal/attrib reuses it as the "peak"
// column of every efficiency account.

package analytic

import "libshalom/internal/platform"

// ArithmeticIntensity returns the flops-per-byte of an M×N×K GEMM with the
// minimal (compulsory) traffic: each operand read once, C read and written
// once. 2mnk flops over (mk + kn + 2mn)·elem bytes.
func ArithmeticIntensity(m, n, k, elemBytes int) float64 {
	if m <= 0 || n <= 0 || k <= 0 {
		return 0
	}
	flops := 2 * float64(m) * float64(n) * float64(k)
	bytes := float64(m*k+k*n+2*m*n) * float64(elemBytes)
	return flops / bytes
}

// Roofline is the attainable-performance ceiling of one shape on one
// platform: min(compute peak, AI × DRAM bandwidth), the classic model.
type Roofline struct {
	// PeakGFLOPS is the compute ceiling for the modeled thread count.
	PeakGFLOPS float64
	// MemGFLOPS is the bandwidth ceiling: AI × chip DRAM bandwidth.
	MemGFLOPS float64
	// Intensity is the shape's arithmetic intensity in flops/byte.
	Intensity float64
}

// Attainable returns the roofline ceiling in GFLOPS.
func (r Roofline) Attainable() float64 {
	if r.MemGFLOPS > 0 && r.MemGFLOPS < r.PeakGFLOPS {
		return r.MemGFLOPS
	}
	return r.PeakGFLOPS
}

// ComputeBound reports whether the shape sits on the flat (compute) part of
// the roof — true for every cache-resident small GEMM.
func (r Roofline) ComputeBound() bool { return r.MemGFLOPS == 0 || r.MemGFLOPS >= r.PeakGFLOPS }

// RooflineFor evaluates the model for an M×N×K GEMM run on `threads` cores
// of the platform. threads < 1 means the whole chip.
func RooflineFor(p *platform.Platform, m, n, k, elemBytes, threads int) Roofline {
	if threads < 1 || threads > p.Cores {
		threads = p.Cores
	}
	r := Roofline{
		PeakGFLOPS: p.PeakCoreGFLOPS(elemBytes) * float64(threads),
		Intensity:  ArithmeticIntensity(m, n, k, elemBytes),
	}
	r.MemGFLOPS = r.Intensity * p.DRAMBandwidthGB
	return r
}
