package analytic

import (
	"testing"

	"libshalom/internal/platform"
)

func TestArithmeticIntensity(t *testing.T) {
	// 64³ f32: 2·64³ flops over (64²+64²+2·64²)·4 bytes = 8 flops/byte.
	if got := ArithmeticIntensity(64, 64, 64, 4); got != 8 {
		t.Fatalf("AI(64^3, f32) = %v, want 8", got)
	}
	if got := ArithmeticIntensity(0, 64, 64, 4); got != 0 {
		t.Fatalf("AI of empty shape = %v, want 0", got)
	}
	// Doubling the element size halves the intensity.
	if ArithmeticIntensity(64, 64, 64, 8) != 4 {
		t.Fatal("AI(64^3, f64) != 4")
	}
}

func TestRooflineSmallShapesAreComputeBound(t *testing.T) {
	p := platform.KP920()
	r := RooflineFor(p, 64, 64, 64, 4, 1)
	if !r.ComputeBound() {
		t.Fatalf("64^3 f32 on one KP920 core should be compute bound: %+v", r)
	}
	if want := p.PeakCoreGFLOPS(4); r.Attainable() != want {
		t.Fatalf("attainable = %v, want single-core peak %v", r.Attainable(), want)
	}
}

func TestRooflineIrregularShapesHitBandwidth(t *testing.T) {
	p := platform.KP920()
	// A rank-ish slab with k=1 has AI < 1 flop/byte: the full chip's peak is
	// far above what DRAM can feed, so the roof must be the bandwidth slope.
	r := RooflineFor(p, 4096, 4096, 1, 8, 0)
	if r.ComputeBound() {
		t.Fatalf("k=1 slab on the whole chip should be memory bound: %+v", r)
	}
	if r.Attainable() >= r.PeakGFLOPS {
		t.Fatalf("attainable %v not below compute peak %v", r.Attainable(), r.PeakGFLOPS)
	}
}

func TestRooflineThreadScaling(t *testing.T) {
	p := platform.KP920()
	one := RooflineFor(p, 512, 512, 512, 4, 1)
	four := RooflineFor(p, 512, 512, 512, 4, 4)
	if four.PeakGFLOPS != 4*one.PeakGFLOPS {
		t.Fatalf("compute peak does not scale with threads: %v vs %v", one.PeakGFLOPS, four.PeakGFLOPS)
	}
	// threads out of range clamps to the chip.
	chip := RooflineFor(p, 512, 512, 512, 4, 10*p.Cores)
	if chip.PeakGFLOPS != p.PeakGFLOPS(4) {
		t.Fatalf("overwide thread count did not clamp to chip peak")
	}
}
