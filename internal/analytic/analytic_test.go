package analytic

import (
	"math"
	"testing"
	"testing/quick"

	"libshalom/internal/platform"
)

// TestSolveMatchesPaperFP32 pins the published solution of Eq. 1–2:
// mr=7, nr=12 for FP32 (§5.2.3).
func TestSolveMatchesPaperFP32(t *testing.T) {
	tile := SolveForElem(4)
	if tile.MR != 7 || tile.NR != 12 {
		t.Fatalf("FP32 tile = %dx%d, paper says 7x12", tile.MR, tile.NR)
	}
	if tile.Regs > RegisterBudget {
		t.Fatalf("tile uses %d registers, budget %d", tile.Regs, RegisterBudget)
	}
	if tile.Regs != 31 { // 7 + 3 + 21
		t.Fatalf("7x12 FP32 should use exactly 31 registers, got %d", tile.Regs)
	}
}

// TestSolveFP64 pins the FP64 solution: with j=2 the same constraint yields
// mr=7, nr=6 (§5.2.3 notes the method applies to FP64 alike).
func TestSolveFP64(t *testing.T) {
	tile := SolveForElem(8)
	if tile.MR != 7 || tile.NR != 6 {
		t.Fatalf("FP64 tile = %dx%d, want 7x6", tile.MR, tile.NR)
	}
	if RegistersNeeded(7, 6, 2) != 31 {
		t.Fatal("7x6 FP64 register count must be 31")
	}
}

func TestCMRFormula(t *testing.T) {
	if got := CMR(7, 12); math.Abs(got-2*7*12/19.0) > 1e-12 {
		t.Fatalf("CMR(7,12) = %v", got)
	}
	if CMR(0, 0) != 0 {
		t.Fatal("CMR(0,0) must be 0")
	}
	// The paper's claim: outer product beats inner product.
	// An 8x4 kernel has lower CMR than 7x12.
	if CMR(8, 4) >= CMR(7, 12) {
		t.Fatal("8x4 CMR should be below 7x12")
	}
}

// Property: no feasible tile has higher CMR than the solver's answer.
func TestSolveIsOptimal(t *testing.T) {
	for _, j := range []int{2, 4} {
		best := Solve(j, RegisterBudget)
		for mr := 1; mr <= 31; mr++ {
			for nr := j; nr <= 31*j; nr += j {
				if Feasible(mr, nr, j, RegisterBudget) && CMR(mr, nr) > best.CMR+1e-9 {
					t.Fatalf("j=%d: %dx%d beats solver's %dx%d", j, mr, nr, best.MR, best.NR)
				}
			}
		}
	}
}

func TestFeasibleRules(t *testing.T) {
	if !Feasible(7, 12, 4, 31) {
		t.Fatal("paper tile must be feasible")
	}
	if Feasible(8, 12, 4, 31) {
		t.Fatal("8x12 needs 35 regs, must be infeasible")
	}
	if Feasible(7, 10, 4, 31) {
		t.Fatal("nr=10 violates nr % j == 0")
	}
	if Feasible(0, 4, 4, 31) {
		t.Fatal("mr=0 must be infeasible")
	}
}

func TestPartitionPaperExample(t *testing.T) {
	// §6.1 worked example: M=2048, N=256, T=64 → Tn=4, Tm=16.
	p := PartitionFor(2048, 256, 64)
	if p.TN != 4 || p.TM != 16 {
		t.Fatalf("partition = %dx%d, paper says Tm=16, Tn=4", p.TM, p.TN)
	}
}

func TestPartitionIrregularShapes(t *testing.T) {
	// Tall-skinny C (N >> M) must put most threads on N.
	p := PartitionFor(32, 10240, 64)
	if p.TN < p.TM {
		t.Fatalf("N-dominant shape partitioned %dx%d", p.TM, p.TN)
	}
	// And the transpose shape flips it.
	q := PartitionFor(10240, 32, 64)
	if q.TM < q.TN {
		t.Fatalf("M-dominant shape partitioned %dx%d", q.TM, q.TN)
	}
}

func TestPartitionProperty(t *testing.T) {
	f := func(mRaw, nRaw, tRaw uint16) bool {
		m := int(mRaw%8192) + 1
		n := int(nRaw%8192) + 1
		threads := []int{1, 2, 4, 8, 16, 32, 64}[tRaw%7]
		p := PartitionFor(m, n, threads)
		if p.Validate(threads) != nil {
			return false
		}
		// Tn must be ≥ the ideal square-root value (the paper takes the
		// upper bound) whenever it is reachable.
		ideal := math.Sqrt(float64(threads) * float64(n) / float64(m))
		return float64(p.TN) >= math.Min(ideal-1e-9, float64(threads))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParallelCMRMaximizedNearIdeal(t *testing.T) {
	// Eq. 4: CMR is maximized at Tn = sqrt(T*N/M); check our chosen divisor
	// beats other divisors of T no further from the ideal.
	m, n, threads := 64, 50176, 64
	chosen := PartitionFor(m, n, threads)
	got := ParallelCMR(m, n, threads, chosen.TN)
	for tn := 1; tn <= threads; tn++ {
		if threads%tn != 0 {
			continue
		}
		if c := ParallelCMR(m, n, threads, tn); c > got*1.02 {
			t.Fatalf("Tn=%d CMR %.2f beats chosen Tn=%d CMR %.2f", tn, c, chosen.TN, got)
		}
	}
}

func TestParallelCMRDegenerate(t *testing.T) {
	if ParallelCMR(10, 10, 0, 0) != 0 || ParallelCMR(10, 10, 4, 0) != 0 {
		t.Fatal("degenerate ParallelCMR must be 0")
	}
}

func TestPartitionSingleThread(t *testing.T) {
	p := PartitionFor(100, 100, 1)
	if p.TM != 1 || p.TN != 1 {
		t.Fatalf("single-thread partition = %+v", p)
	}
}

func TestBlockingRespectsCaches(t *testing.T) {
	for _, p := range platform.All() {
		for _, eb := range []int{4, 8} {
			tile := SolveForElem(eb)
			b := BlockingFor(p, eb)
			if b.KC < 32 {
				t.Fatalf("%s: kc = %d too small", p.Name, b.KC)
			}
			if b.MC%tile.MR != 0 || b.MC < tile.MR {
				t.Fatalf("%s: mc = %d not aligned to mr=%d", p.Name, b.MC, tile.MR)
			}
			if b.NC%tile.NR != 0 || b.NC < tile.NR {
				t.Fatalf("%s: nc = %d not aligned to nr=%d", p.Name, b.NC, tile.NR)
			}
			// The A block must fit its L2 share.
			l2 := p.L2.SizeBytes
			if p.L2.Shared {
				l2 /= p.L2.SharedBy
			}
			if b.MC*b.KC*eb > l2 {
				t.Fatalf("%s: mc*kc block (%d B) exceeds L2 share (%d B)", p.Name, b.MC*b.KC*eb, l2)
			}
		}
	}
}

func TestBlockingKP920LargerL1GivesLargerKC(t *testing.T) {
	// KP920 has a 64KB L1 vs 32KB on the others → larger kc.
	kp := BlockingFor(platform.KP920(), 4)
	ph := BlockingFor(platform.Phytium2000(), 4)
	if kp.KC <= ph.KC {
		t.Fatalf("KP920 kc (%d) should exceed Phytium kc (%d)", kp.KC, ph.KC)
	}
}

func TestValidate(t *testing.T) {
	if (Partition{TM: 2, TN: 2}).Validate(4) != nil {
		t.Fatal("valid partition rejected")
	}
	if (Partition{TM: 2, TN: 3}).Validate(4) == nil {
		t.Fatal("invalid partition accepted")
	}
}
