package server

import (
	"bytes"
	"testing"

	"libshalom/internal/mat"
)

// FuzzDecodeRequest drives the wire decoder with arbitrary bytes. The
// decoder's contract under hostile input: never panic, never allocate
// operands beyond what a validated header implies (the fuzz limits cap that
// at a few KiB), and when it does accept, the request must be internally
// consistent — stored operand lengths exactly matching the header's
// dimensions.
func FuzzDecodeRequest(f *testing.F) {
	rng := mat.NewRNG(7)
	seed := func(h Header, a32, b32, c32 []float32, a64, b64, c64 []float64) {
		var buf bytes.Buffer
		if err := EncodeRequest(&buf, h, a32, b32, c32, a64, b64, c64); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	a := mat.RandomF32(3, 2, rng).Data
	b := mat.RandomF32(2, 4, rng).Data
	c := mat.RandomF32(3, 4, rng).Data
	seed(Header{Precision: "f32", Mode: "NN", M: 3, N: 4, K: 2, Alpha: 1}, a, b, nil, nil, nil, nil)
	seed(Header{Precision: "f32", Mode: "NN", M: 3, N: 4, K: 2, Alpha: 1, Beta: 0.5}, a, b, c, nil, nil, nil)
	a64 := mat.RandomF64(2, 3, rng).Data
	b64 := mat.RandomF64(4, 2, rng).Data
	seed(Header{Precision: "f64", Mode: "TT", M: 3, N: 4, K: 2, Alpha: -2, TimeoutMS: 5}, nil, nil, nil, a64, b64, nil)
	// Hostile headers: length lies, non-finite scalars, negative dims,
	// truncations. The JSON layer rejects some, the validators the rest;
	// either way the property below must hold.
	f.Add([]byte(`{"precision":"f32","mode":"NN","m":3,"n":4,"k":2,"alpha":1}` + "\n"))
	f.Add([]byte(`{"precision":"f32","mode":"NN","m":-3,"n":4,"k":2,"alpha":1}` + "\n" + "xxxx"))
	f.Add([]byte(`{"precision":"f64","mode":"NN","m":3,"n":4,"k":2,"alpha":NaN}` + "\n"))
	f.Add([]byte(`{"precision":"f32","mode":"NN","m":3,"n":4,"k":2,"beta":1e999}` + "\n"))
	f.Add([]byte(`{"precision":"f32","mode":"NN","m":1000000,"n":1000000,"k":1000000,"alpha":1}` + "\n"))
	f.Add([]byte("\n"))
	f.Add([]byte("{}\n"))

	const maxDim, maxPayload = 16, 1 << 12
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeRequest(bytes.NewReader(data), maxDim, maxPayload)
		if err != nil {
			return
		}
		if req.M <= 0 || req.N <= 0 || req.K <= 0 ||
			req.M > maxDim || req.N > maxDim || req.K > maxDim {
			t.Fatalf("accepted out-of-bounds dims %dx%dx%d", req.M, req.N, req.K)
		}
		if badScalar(req.Alpha) || badScalar(req.Beta) {
			t.Fatalf("accepted non-finite scalars %v, %v", req.Alpha, req.Beta)
		}
		if req.Timeout < 0 {
			t.Fatalf("accepted negative timeout %v", req.Timeout)
		}
		aR, aC, bR, bC := storedDims(req.Mode, req.M, req.N, req.K)
		if req.F64 {
			if len(req.A64) != aR*aC || len(req.B64) != bR*bC || len(req.C64) != req.M*req.N {
				t.Fatalf("inconsistent f64 operands: %d/%d/%d for %dx%dx%d %v",
					len(req.A64), len(req.B64), len(req.C64), req.M, req.N, req.K, req.Mode)
			}
		} else {
			if len(req.A32) != aR*aC || len(req.B32) != bR*bC || len(req.C32) != req.M*req.N {
				t.Fatalf("inconsistent f32 operands: %d/%d/%d for %dx%dx%d %v",
					len(req.A32), len(req.B32), len(req.C32), req.M, req.N, req.K, req.Mode)
			}
		}
	})
}
