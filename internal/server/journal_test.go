package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"libshalom"
	"libshalom/internal/faults"
	"libshalom/internal/guard"
	"libshalom/internal/journal"
	"libshalom/internal/server"
)

// journaledEnv is a serving stack with the tamper-evident journal attached:
// the env plus its writer and directory, torn down in dependency order
// (drain first, then the writer's sealing close).
type journaledEnv struct {
	dir string
	jw  *journal.Writer
	lib *libshalom.Context
	srv *server.Server
	ts  *httptest.Server
}

func newJournaledEnv(t *testing.T, cfg server.Config) *journaledEnv {
	t.Helper()
	dir := t.TempDir()
	jw, err := journal.Open(journal.Options{Dir: dir, CapturePayloads: true})
	if err != nil {
		t.Fatalf("journal.Open: %v", err)
	}
	guard.SetTransitionObserver(jw.GuardObserver())
	cfg.Journal = jw
	e := &journaledEnv{dir: dir, jw: jw, lib: libshalom.New(libshalom.WithTelemetry(), libshalom.WithNumericGuard())}
	e.srv = server.New(e.lib, cfg)
	e.ts = httptest.NewServer(e.srv)
	return e
}

// shutdown drains, closes the stack, and seals the journal; safe to call
// once per env.
func (e *journaledEnv) shutdown(t *testing.T) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := e.srv.Drain(ctx); err != nil {
		t.Errorf("drain: %v", err)
	}
	e.ts.Close()
	e.lib.Close()
	guard.SetTransitionObserver(nil)
	if err := e.jw.Close(); err != nil {
		t.Errorf("journal close: %v", err)
	}
}

// postOK posts one body and returns the decoded m×n f32 result.
func (e *journaledEnv) postOK(t *testing.T, p *problem) []float32 {
	t.Helper()
	resp, err := http.Post(e.ts.URL+"/v1/gemm", "application/octet-stream", bytes.NewReader(p.body))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("HTTP %d: %s", resp.StatusCode, raw)
	}
	_, c32, _, err := server.DecodeResponse(resp.Body, p.h.M, p.h.N, false)
	if err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return c32
}

// TestJournalCaptureAndVerify drives the full capture path: requests flow
// through a journaling server, /healthz exposes durability and provenance,
// and after a graceful shutdown the journal verifies and holds an admit,
// a result (with the response's exact hash) and a flush per request.
func TestJournalCaptureAndVerify(t *testing.T) {
	resetChaosState()
	defer resetChaosState()
	direct := libshalom.New(libshalom.WithThreads(1))
	defer direct.Close()

	e := newJournaledEnv(t, server.Config{Window: time.Millisecond})
	const n = 5
	var wants [][]float32
	for i := 0; i < n; i++ {
		p := newProblem(t, direct, uint64(100+i), 8+i, 8, 8, 0)
		got := e.postOK(t, p)
		wants = append(wants, got)
	}

	// /healthz carries the provenance satellite: config hash + journal
	// durability while the server is live.
	resp, err := http.Get(e.ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	var hz struct {
		ConfigHash string          `json:"config_hash"`
		Journal    *journal.Status `json:"journal"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatalf("decoding /healthz: %v", err)
	}
	resp.Body.Close()
	if hz.ConfigHash == "" {
		t.Error("/healthz has no config_hash")
	}
	if hz.Journal == nil {
		t.Fatal("/healthz has no journal section while journaling")
	}
	if hz.Journal.Dir != e.dir || hz.Journal.ChainHead == "" || hz.Journal.Fsync != "anchor" {
		t.Errorf("/healthz journal section %+v", hz.Journal)
	}

	e.shutdown(t)

	rep, err := journal.VerifyDir(e.dir)
	if err != nil {
		t.Fatalf("VerifyDir: %v", err)
	}
	if !rep.OK {
		t.Fatalf("captured journal fails verification: %v", rep.Errs)
	}
	events, err := journal.ReadDir(e.dir)
	if err != nil {
		t.Fatal(err)
	}
	var admits, results, flushes int
	resultBySeq := map[uint64]journal.Event{}
	var admitSeqs []uint64
	for _, ev := range events {
		switch ev.Kind {
		case journal.KindAdmit:
			admits++
			admitSeqs = append(admitSeqs, ev.Seq)
			if !ev.HasPayload {
				t.Error("admit captured without payload despite CapturePayloads")
			}
		case journal.KindResult:
			results++
			resultBySeq[ev.AdmitSeq] = ev
		case journal.KindFlush:
			flushes++
		}
	}
	if admits != n || results != n || flushes == 0 {
		t.Fatalf("journal holds %d admits, %d results, %d flushes; want %d of each plus flushes", admits, results, flushes, n)
	}
	// Sequential posts journal admits in order; each result hash must equal
	// the hash of the bytes the client actually received.
	for i, seq := range admitSeqs {
		rv, ok := resultBySeq[seq]
		if !ok {
			t.Fatalf("admit seq %d has no result event", seq)
		}
		if rv.Status != http.StatusOK {
			t.Errorf("result for admit %d is %d, want 200", seq, rv.Status)
		}
		if rv.ResultHash != journal.HashF32s(wants[i]) {
			t.Errorf("journaled result hash for admit %d does not match the response payload", seq)
		}
	}
}

// TestJournalReplayDeterminism is the acceptance gate for replay: capture a
// run that trips a breaker via an injected fault, then re-issue the
// journaled traffic against a fresh server under the same fault schedule —
// every completed request must reproduce bitwise-identical results, and the
// replay's journal must record the same degradation sequence.
func TestJournalReplayDeterminism(t *testing.T) {
	resetChaosState()
	defer resetChaosState()

	type breakerEvent struct{ platform, kernel, reason, from, to string }
	breakerSeq := func(dir string) []breakerEvent {
		events, err := journal.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		var out []breakerEvent
		for _, ev := range events {
			if ev.Kind == journal.KindBreaker {
				out = append(out, breakerEvent{ev.Platform, ev.Kernel, ev.Reason, ev.From, ev.To})
			}
		}
		return out
	}

	// Capture run: the first flush's fast path is poisoned with a NaN, so
	// the numeric guard trips the f32 breaker and the run degrades to the
	// reference path — the kind of episode replay exists to reproduce.
	capture := newJournaledEnv(t, server.Config{Window: time.Millisecond})
	direct := libshalom.New(libshalom.WithThreads(1))
	defer direct.Close()
	faults.Arm(faults.SpuriousNaN, 1)
	const n = 4
	for i := 0; i < n; i++ {
		p := newProblem(t, direct, uint64(200+i), 12, 12, 12, 0)
		capture.postOK(t, p)
	}
	capture.shutdown(t)
	capBreakers := breakerSeq(capture.dir)
	if len(capBreakers) == 0 {
		t.Fatal("capture run recorded no breaker transition despite the injected fault")
	}

	// Replay run: fresh guard state, fresh server, identical fault schedule.
	resetChaosState()
	rep := newJournaledEnv(t, server.Config{Window: time.Millisecond})
	faults.Arm(faults.SpuriousNaN, 1)
	events, err := journal.ReadDir(capture.dir)
	if err != nil {
		t.Fatal(err)
	}
	resultBySeq := map[uint64]journal.Event{}
	for _, ev := range events {
		if ev.Kind == journal.KindResult {
			resultBySeq[ev.AdmitSeq] = ev
		}
	}
	replayed := 0
	for _, ev := range events {
		if ev.Kind != journal.KindAdmit {
			continue
		}
		rv, ok := resultBySeq[ev.Seq]
		if !ok || rv.Status != http.StatusOK {
			continue
		}
		var h server.Header
		if err := json.Unmarshal(ev.Header, &h); err != nil {
			t.Fatalf("admit %d: malformed journaled header: %v", ev.Seq, err)
		}
		body := append(append(append([]byte{}, ev.Header...), '\n'), ev.Payload...)
		got := rep.postOK(t, &problem{h: h, body: body})
		if journal.HashF32s(got) != rv.ResultHash {
			t.Errorf("replay of admit %d is not bitwise identical to the journaled result", ev.Seq)
		}
		replayed++
	}
	if replayed != n {
		t.Fatalf("replayed %d requests, want %d", replayed, n)
	}
	rep.shutdown(t)

	repBreakers := breakerSeq(rep.dir)
	if len(repBreakers) != len(capBreakers) {
		t.Fatalf("degradation sequences diverge: capture %v, replay %v", capBreakers, repBreakers)
	}
	for i := range capBreakers {
		if capBreakers[i] != repBreakers[i] {
			t.Fatalf("degradation event %d diverges: capture %+v, replay %+v", i, capBreakers[i], repBreakers[i])
		}
	}
}
