package server

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"libshalom"
	"libshalom/internal/journal"
	"libshalom/internal/telemetry"
)

// result is the coalescer's answer to one request.
type result struct {
	status int    // http.StatusOK, 500, 504
	msg    string // error text for non-200 statuses
	// batchSize is how many requests shared the flush (200 only);
	// queueWait how long the request sat in the coalescing queue.
	batchSize int
	queueWait time.Duration
}

// pending is one admitted request waiting in a coalescing queue.
type pending struct {
	req      *Request
	enq      time.Time
	deadline time.Time // zero: no deadline
	waited   bool      // queue-wait telemetry recorded (once, at first flush)
	wait     time.Duration
	done     chan result // buffered; the flusher never blocks on it
}

// classKey is the coalescing unit: requests of one precision, one
// transposition mode and one telemetry shape class share a queue, so one
// flush maps onto one batch call.
type classKey struct {
	f64   bool
	mode  libshalom.Mode
	class libshalom.ShapeClass
}

func (k classKey) String() string {
	prec := "f32"
	if k.f64 {
		prec = "f64"
	}
	return fmt.Sprintf("%s/%v/%s", prec, k.mode, k.class)
}

// classQueue is one per-class coalescing queue. gen increments on every
// flush so a window timer armed for an earlier batch never flushes a later
// one early.
type classQueue struct {
	key   classKey
	mu    sync.Mutex
	gen   uint64
	queue []*pending
	flops float64
}

// coalescer runs the micro-batching core: admitted requests queue per
// class, and a batch flushes when the coalescing window expires, the batch
// size limit fills, or the queued flops budget fills — whichever comes
// first. Each flush is one SGEMMBatchCtx/DGEMMBatchCtx call on the shared
// Context.
type coalescer struct {
	lib  *libshalom.Context
	cfg  Config
	tel  *telemetry.Recorder
	jw   *journal.Writer
	base context.Context // parent of every flush's batch context

	mu      sync.Mutex
	classes map[classKey]*classQueue

	// inFlight is the flops of every admitted-but-unanswered request — the
	// backpressure signal admission control sheds on.
	inFlight atomic.Int64
	flushes  sync.WaitGroup
}

func newCoalescer(lib *libshalom.Context, cfg Config) *coalescer {
	base := cfg.BaseContext
	if base == nil {
		base = context.Background() //shalom:allow ctxflow — documented default when the caller sets no BaseContext
	}
	return &coalescer{
		lib:     lib,
		cfg:     cfg,
		tel:     lib.TelemetryRecorder(),
		jw:      cfg.Journal,
		base:    base,
		classes: make(map[classKey]*classQueue),
	}
}

func (co *coalescer) class(key classKey) *classQueue {
	co.mu.Lock()
	defer co.mu.Unlock()
	q := co.classes[key]
	if q == nil {
		q = &classQueue{key: key}
		co.classes[key] = q
	}
	return q
}

// submit admits p into its class queue, or refuses it (the caller sheds
// with 429) when the queue is full or the in-flight flops budget is
// exhausted. The first request of an empty queue arms the window timer; a
// request that fills the batch-size or flops budget flushes immediately.
func (co *coalescer) submit(p *pending) bool {
	key := classKey{
		f64:   p.req.F64,
		mode:  p.req.Mode,
		class: libshalom.ClassifyShape(p.req.M, p.req.N, p.req.K),
	}
	flops := p.req.Flops()
	q := co.class(key)
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.queue) >= co.cfg.MaxQueue {
		return false
	}
	if co.inFlight.Load()+int64(flops) > co.cfg.MaxInFlightFlops {
		return false
	}
	co.inFlight.Add(int64(flops))
	q.queue = append(q.queue, p)
	q.flops += flops
	if len(q.queue) == 1 {
		gen := q.gen
		time.AfterFunc(co.cfg.Window, func() { co.flushGen(q, gen) })
	}
	if len(q.queue) >= co.cfg.MaxBatch || q.flops >= co.cfg.MaxBatchFlops {
		co.flushLocked(q)
	}
	return true
}

// flushGen is the window-expiry flush: it only fires if the batch the timer
// was armed for is still resident.
func (co *coalescer) flushGen(q *classQueue, gen uint64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.gen != gen || len(q.queue) == 0 {
		return
	}
	co.flushLocked(q)
}

// flushLocked detaches the resident batch (caller holds q.mu) and runs it
// on a flush goroutine.
func (co *coalescer) flushLocked(q *classQueue) {
	batch := q.queue
	q.queue = nil
	q.flops = 0
	q.gen++
	co.flushes.Add(1)
	go co.runFlush(q.key, batch)
}

// flushAll force-flushes every resident batch — the drain path.
func (co *coalescer) flushAll() {
	co.mu.Lock()
	queues := make([]*classQueue, 0, len(co.classes))
	for _, q := range co.classes {
		queues = append(queues, q)
	}
	co.mu.Unlock()
	for _, q := range queues {
		q.mu.Lock()
		if len(q.queue) > 0 {
			co.flushLocked(q)
		}
		q.mu.Unlock()
	}
}

// runFlush executes one detached batch: expired requests are answered 504
// before any compute, the rest run as one batch call. A deadline that fires
// mid-batch splits the outcome per entry — completed entries answer 200
// with their results, expired entries 504, and entries cancelled with time
// remaining re-flush until each completes or expires.
func (co *coalescer) runFlush(key classKey, batch []*pending) {
	defer co.flushes.Done()
	// Anchor after the flush's events land (LIFO: before flushes.Done), so
	// every flush closes a journal batch under one merkle root.
	defer co.jw.Anchor()
	now := time.Now()
	live := batch[:0:0]
	for _, p := range batch {
		co.recordWait(p, now)
		if !p.deadline.IsZero() && now.After(p.deadline) {
			co.tel.ServerExpired()
			co.finish(p, result{status: http.StatusGatewayTimeout, msg: "deadline expired before flush"})
			continue
		}
		live = append(live, p)
	}
	if len(live) == 0 {
		return
	}
	size := len(live)
	co.tel.ServerFlush(size)
	if co.jw.Enabled() {
		var flops float64
		for _, p := range live {
			flops += p.req.Flops()
		}
		co.jw.Flush(key.String(), size, flops)
	}
	remaining := live
	for len(remaining) > 0 {
		err := co.dispatch(key, remaining)
		if err == nil {
			for _, p := range remaining {
				co.finish(p, result{status: http.StatusOK, batchSize: size, queueWait: p.wait})
			}
			return
		}
		done, ok := libshalom.BatchCompleted(err)
		if !ok {
			// A whole-batch failure — kernel panic with retries disabled, a
			// stuck worker, pool misuse. Only this batch's requests see it.
			for _, p := range remaining {
				co.finish(p, result{status: http.StatusInternalServerError, msg: err.Error()})
			}
			return
		}
		// The batch deadline (the earliest member's) fired: split per entry.
		now = time.Now()
		next := remaining[:0:0]
		for i, p := range remaining {
			switch {
			case i < len(done) && done[i]:
				co.finish(p, result{status: http.StatusOK, batchSize: size, queueWait: p.wait})
			case !p.deadline.IsZero() && now.After(p.deadline):
				co.tel.ServerExpired()
				co.finish(p, result{status: http.StatusGatewayTimeout, msg: "deadline exceeded before completion"})
			default:
				next = append(next, p)
			}
		}
		if len(next) == len(remaining) {
			// No entry completed or expired — cancellation without progress
			// (a razor-thin deadline). Answer 504 rather than spinning.
			for _, p := range next {
				co.finish(p, result{status: http.StatusGatewayTimeout, msg: "deadline exceeded before completion"})
			}
			return
		}
		remaining = next
	}
}

// dispatch runs one batch call over the remaining requests, bounded by the
// earliest member deadline.
func (co *coalescer) dispatch(key classKey, remaining []*pending) error {
	ctx := co.base
	if min, ok := minDeadline(remaining); ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, min)
		defer cancel()
	}
	if key.f64 {
		entries := make([]libshalom.DBatchEntry, len(remaining))
		for i, p := range remaining {
			r := p.req
			_, aCols, _, bCols := storedDims(r.Mode, r.M, r.N, r.K)
			entries[i] = libshalom.DBatchEntry{
				M: r.M, N: r.N, K: r.K,
				Alpha: r.Alpha, A: r.A64, LDA: aCols,
				B: r.B64, LDB: bCols,
				Beta: r.Beta, C: r.C64, LDC: r.N,
			}
		}
		return co.lib.DGEMMBatchCtx(ctx, key.mode, entries)
	}
	entries := make([]libshalom.SBatchEntry, len(remaining))
	for i, p := range remaining {
		r := p.req
		_, aCols, _, bCols := storedDims(r.Mode, r.M, r.N, r.K)
		entries[i] = libshalom.SBatchEntry{
			M: r.M, N: r.N, K: r.K,
			Alpha: float32(r.Alpha), A: r.A32, LDA: aCols,
			B: r.B32, LDB: bCols,
			Beta: float32(r.Beta), C: r.C32, LDC: r.N,
		}
	}
	return co.lib.SGEMMBatchCtx(ctx, key.mode, entries)
}

func minDeadline(remaining []*pending) (time.Time, bool) {
	var min time.Time
	for _, p := range remaining {
		if p.deadline.IsZero() {
			continue
		}
		if min.IsZero() || p.deadline.Before(min) {
			min = p.deadline
		}
	}
	return min, !min.IsZero()
}

// recordWait records the request's queue wait once, at its first flush.
//
//shalom:hotpath noalloc
func (co *coalescer) recordWait(p *pending, now time.Time) {
	if p.waited {
		return
	}
	p.waited = true
	p.wait = now.Sub(p.enq)
	co.tel.ServerQueueWait(int64(p.wait))
}

// finish releases the request's in-flight flops reservation and delivers
// its result.
//
//shalom:hotpath noalloc
func (co *coalescer) finish(p *pending, res result) {
	co.inFlight.Add(-int64(p.req.Flops()))
	p.done <- res
}
