package server_test

import (
	"bytes"
	"context"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"libshalom"
	"libshalom/internal/faults"
	"libshalom/internal/server"
)

func resetChaosState() {
	faults.Reset()
	libshalom.ResetDegradations()
}

// coalescedWave fires n concurrent same-class requests and returns their
// statuses plus the first non-200 body seen.
func coalescedWave(t *testing.T, e *env, probs []*problem) ([]int, string) {
	t.Helper()
	statuses := make([]int, len(probs))
	bodies := make([]string, len(probs))
	var wg sync.WaitGroup
	for i := range probs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, raw := e.post(t, probs[i].body)
			statuses[i] = resp.StatusCode
			bodies[i] = string(raw)
		}(i)
	}
	wg.Wait()
	for i, st := range statuses {
		if st != http.StatusOK {
			return statuses, bodies[i]
		}
	}
	return statuses, ""
}

// A kernel panic mid-flush on a no-retry Context fails exactly that batch:
// its requests see 500 carrying the panic error, the server and its pool
// survive, the next wave is answered normally, and the injected fault is
// counted once. With the transient retry disabled a raw panic must not trip
// the breaker (that is the single-call contract, preserved through the
// batch path).
func TestServeKernelPanicFailsOnlyThatBatch(t *testing.T) {
	resetChaosState()
	defer resetChaosState()

	direct := libshalom.New(libshalom.WithThreads(1))
	defer direct.Close()
	const n = 4
	probs := make([]*problem, n)
	for i := range probs {
		probs[i] = newProblem(t, direct, uint64(300+i), 24, 24, 24, 0)
	}
	e := newEnv(t, server.Config{
		Window:        400 * time.Millisecond,
		MaxBatch:      n,
		MaxBatchFlops: 1e18,
	}, libshalom.WithThreads(1), libshalom.WithoutTransientRetry())

	faults.Arm(faults.PanicInKernel, 1)
	statuses, body := coalescedWave(t, e, probs)
	for i, st := range statuses {
		if st != http.StatusInternalServerError {
			t.Fatalf("request %d of the panicking batch = HTTP %d, want 500 (statuses %v)", i, st, statuses)
		}
	}
	if !strings.Contains(body, "panic") {
		t.Fatalf("500 body does not carry the kernel panic: %q", body)
	}
	if got := len(libshalom.Degradations()); got != 0 {
		t.Fatalf("raw panic tripped %d breakers with retry disabled", got)
	}
	snap := e.lib.Snapshot()
	var injected uint64
	for _, f := range snap.Faults {
		if f.Name == "panic-in-kernel" {
			injected = f.Count
		}
	}
	if injected != 1 {
		t.Fatalf("fault injections = %d, want exactly 1", injected)
	}

	// Only that batch: the next wave (fault disarmed) is served normally by
	// the same process and pool.
	faults.Reset()
	next := make([]*problem, n)
	for i := range next {
		next[i] = newProblem(t, direct, uint64(400+i), 24, 24, 24, 0)
	}
	statuses, body = coalescedWave(t, e, next)
	for i, st := range statuses {
		if st != http.StatusOK {
			t.Fatalf("post-panic request %d = HTTP %d (%s), want 200", i, st, body)
		}
	}
	if s := e.lib.Snapshot().Server; s.Accepted != 2*n {
		t.Fatalf("accepted = %d, want %d", s.Accepted, 2*n)
	}
}

// With the default transient retry, the same panic heals instead: every
// request of the batch still answers 200, the breaker opens exactly once,
// and /healthz flips to 503 — the degradation is observable, not fatal.
func TestServeKernelPanicHealsUnderDefaultRetry(t *testing.T) {
	resetChaosState()
	defer resetChaosState()

	direct := libshalom.New(libshalom.WithThreads(1))
	defer direct.Close()
	const n = 4
	probs := make([]*problem, n)
	for i := range probs {
		probs[i] = newProblem(t, direct, uint64(500+i), 24, 24, 24, 0)
	}
	e := newEnv(t, server.Config{
		Window:        400 * time.Millisecond,
		MaxBatch:      n,
		MaxBatchFlops: 1e18,
	}, libshalom.WithThreads(1))

	faults.Arm(faults.PanicInKernel, 1)
	statuses, body := coalescedWave(t, e, probs)
	for i, st := range statuses {
		if st != http.StatusOK {
			t.Fatalf("request %d = HTTP %d (%s), want 200 under transient retry", i, st, body)
		}
	}
	snap := e.lib.Snapshot()
	if snap.HealCount("breaker-open") != 1 {
		t.Fatalf("breaker-open events = %d, want exactly 1 (heal = %+v)", snap.HealCount("breaker-open"), snap.Heal)
	}
	if snap.HealCount("transient-retry") != 1 {
		t.Fatalf("transient-retry events = %d, want exactly 1", snap.HealCount("transient-retry"))
	}
	degr := libshalom.Degradations()
	if len(degr) != 1 || degr[0].State != libshalom.BreakerOpen {
		t.Fatalf("degradations = %+v, want one open breaker", degr)
	}

	resp, err := http.Get(e.ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz after trip = HTTP %d, want 503", resp.StatusCode)
	}
}

// A request racing the drain is either admitted (and then answered) or
// refused with 503 — never lost. Run a small storm against a draining
// server and account for every response.
func TestServeDrainUnderConcurrentLoad(t *testing.T) {
	direct := libshalom.New(libshalom.WithThreads(1))
	defer direct.Close()
	e := newEnv(t, server.Config{
		Window:   2 * time.Millisecond,
		MaxBatch: 8,
	}, libshalom.WithThreads(2))
	p := newProblem(t, direct, 600, 16, 16, 16, 0)

	const clients = 8
	var wg sync.WaitGroup
	var mu sync.Mutex
	counts := map[int]int{}
	stop := make(chan struct{})
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Post(e.ts.URL+"/v1/gemm", "application/octet-stream", bytes.NewReader(p.body))
				if err != nil {
					mu.Lock()
					counts[-1]++
					mu.Unlock()
					continue
				}
				resp.Body.Close()
				mu.Lock()
				counts[resp.StatusCode]++
				mu.Unlock()
			}
		}()
	}
	time.Sleep(20 * time.Millisecond)
	dctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := e.srv.Drain(dctx); err != nil {
		t.Fatalf("drain under load: %v", err)
	}
	close(stop)
	wg.Wait()

	for code := range counts {
		switch code {
		case http.StatusOK, http.StatusServiceUnavailable, http.StatusTooManyRequests:
		default:
			t.Fatalf("unexpected outcome HTTP %d under drain: %v", code, counts)
		}
	}
	if counts[http.StatusOK] == 0 {
		t.Fatalf("no request completed before the drain: %v", counts)
	}
	s := e.lib.Snapshot().Server
	if s.Expired != 0 {
		t.Fatalf("drain dropped %d admitted requests", s.Expired)
	}
	t.Logf("drain storm outcomes: %v (accepted %d, shed %d)", counts, s.Accepted, s.Shed)
}
