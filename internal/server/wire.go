// Package server is LibShalom's GEMM serving subsystem: an HTTP front door
// that accepts small and irregular GEMM requests, classifies each by its
// telemetry shape class, and coalesces concurrent requests of one
// (precision, mode, shape class) into a single batch dispatch on the shared
// Context — so N concurrent 16×16 GEMMs cost one pool dispatch instead of
// N. This is the paper's premise applied to serving: when small problems
// arrive in huge numbers, per-call overhead dominates, and the fix is to
// amortize it across many problems (§7.4's batch parallelization model, the
// CP2K pattern), here at the request level rather than the call level.
//
// Around the coalescing core the server provides bounded admission with
// load shedding (HTTP 429 + Retry-After), per-request deadlines that drop
// expired work before it is computed, graceful drain (stop accepting, flush
// resident batches, answer every admitted request), and the library's
// observability surface (/metrics, /healthz, /snapshot) extended with
// serving-layer counters.
package server

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"time"

	"libshalom"
)

// Wire format of one GEMM request (POST /v1/gemm):
//
//	JSON header, terminated by '\n', at most MaxHeaderBytes long
//	little-endian binary payload: op(A) as stored, op(B) as stored,
//	then C — present if and only if beta ≠ 0
//
// Operands are packed row-major exactly as the GEMM call stores them: a
// TransA request ships A as the K×M matrix it is stored as, and leading
// dimensions are implied (the stored row length). The response mirrors the
// shape: a JSON header line followed by the m×n C payload.

// MaxHeaderBytes bounds the JSON header line of a request.
const MaxHeaderBytes = 4096

// Default decode limits; Config overrides them.
const (
	DefaultMaxDim          = 4096
	DefaultMaxPayloadBytes = 64 << 20
)

// Header is the JSON request header. Alpha and Beta are float64 on the wire
// for both precisions; f32 requests narrow them.
type Header struct {
	Precision string  `json:"precision"` // "f32" or "f64"
	Mode      string  `json:"mode"`      // "NN", "NT", "TN", "TT"
	M         int     `json:"m"`
	N         int     `json:"n"`
	K         int     `json:"k"`
	Alpha     float64 `json:"alpha"`
	Beta      float64 `json:"beta"`
	// TimeoutMS is the request deadline in milliseconds from arrival; 0
	// selects the server's default, negative is rejected. A request whose
	// deadline passes before its batch flushes is dropped unrun (HTTP 504).
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// ResponseHeader is the JSON line preceding the C payload of a 200 response.
type ResponseHeader struct {
	Status string `json:"status"` // "ok"
	// BatchSize is how many requests shared this request's flush — the
	// coalescing win observable per response (sizes > 1 amortized dispatch).
	BatchSize int `json:"batch_size"`
	// QueueWaitUS is how long the request sat in the coalescing queue.
	QueueWaitUS int64 `json:"queue_wait_us"`
}

// Request is one decoded GEMM request.
type Request struct {
	F64     bool
	Mode    libshalom.Mode
	M, N, K int
	Alpha   float64
	Beta    float64
	Timeout time.Duration // 0: none specified

	// Operands; the precision selects which triple is populated. Leading
	// dimensions are implied packed (stored row length).
	A32, B32, C32 []float32
	A64, B64, C64 []float64
}

// Flops returns the request's 2·M·N·K operation count.
func (r *Request) Flops() float64 { return 2 * float64(r.M) * float64(r.N) * float64(r.K) }

// storedDims returns the stored row-major dimensions of the operands for a
// mode: op(A) is m×k but a TransA request stores A as k×m, and so on.
func storedDims(mode libshalom.Mode, m, n, k int) (aRows, aCols, bRows, bCols int) {
	aRows, aCols = m, k
	if mode.TransA() {
		aRows, aCols = k, m
	}
	bRows, bCols = k, n
	if mode.TransB() {
		bRows, bCols = n, k
	}
	return
}

// DecodeRequest reads and validates one request from r. Every validation —
// header shape, dimension bounds, finite scalars, exact payload length —
// happens before the corresponding allocation, so a hostile or truncated
// request is rejected without panicking and without allocating more than
// the declared (and bounded) payload. maxDim caps each of m, n, k; maxPayload
// caps the total operand bytes; zero values select the defaults.
func DecodeRequest(r io.Reader, maxDim int, maxPayload int64) (*Request, error) {
	if maxDim <= 0 {
		maxDim = DefaultMaxDim
	}
	if maxPayload <= 0 {
		maxPayload = DefaultMaxPayloadBytes
	}
	br := bufio.NewReaderSize(r, MaxHeaderBytes)
	line, err := br.ReadSlice('\n')
	if err == bufio.ErrBufferFull {
		return nil, fmt.Errorf("server: request header exceeds %d bytes", MaxHeaderBytes)
	}
	if err != nil {
		return nil, fmt.Errorf("server: reading request header: %w", err)
	}
	var h Header
	if err := json.Unmarshal(line, &h); err != nil {
		return nil, fmt.Errorf("server: malformed request header: %w", err)
	}
	var f64 bool
	switch h.Precision {
	case "f32":
	case "f64":
		f64 = true
	default:
		return nil, fmt.Errorf("server: unknown precision %q (want f32 or f64)", h.Precision)
	}
	mode, err := libshalom.ParseMode(h.Mode)
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	if h.M <= 0 || h.N <= 0 || h.K <= 0 {
		return nil, fmt.Errorf("server: non-positive dimensions %dx%dx%d", h.M, h.N, h.K)
	}
	if h.M > maxDim || h.N > maxDim || h.K > maxDim {
		return nil, fmt.Errorf("server: dimensions %dx%dx%d exceed the per-dimension limit %d", h.M, h.N, h.K, maxDim)
	}
	if badScalar(h.Alpha) || badScalar(h.Beta) {
		return nil, fmt.Errorf("server: non-finite alpha/beta (%v, %v)", h.Alpha, h.Beta)
	}
	if h.TimeoutMS < 0 {
		return nil, fmt.Errorf("server: negative timeout_ms %d", h.TimeoutMS)
	}
	elem := int64(4)
	if f64 {
		elem = 8
	}
	aRows, aCols, bRows, bCols := storedDims(mode, h.M, h.N, h.K)
	nA := int64(aRows) * int64(aCols)
	nB := int64(bRows) * int64(bCols)
	nC := int64(h.M) * int64(h.N)
	payload := nA + nB
	if h.Beta != 0 {
		payload += nC
	}
	if payload*elem > maxPayload {
		return nil, fmt.Errorf("server: payload %d bytes exceeds the limit %d", payload*elem, maxPayload)
	}
	req := &Request{
		F64: f64, Mode: mode, M: h.M, N: h.N, K: h.K,
		Alpha: h.Alpha, Beta: h.Beta,
		Timeout: time.Duration(h.TimeoutMS) * time.Millisecond,
	}
	if f64 {
		if req.A64, err = readF64s(br, int(nA)); err != nil {
			return nil, fmt.Errorf("server: A payload: %w", err)
		}
		if req.B64, err = readF64s(br, int(nB)); err != nil {
			return nil, fmt.Errorf("server: B payload: %w", err)
		}
		if h.Beta != 0 {
			if req.C64, err = readF64s(br, int(nC)); err != nil {
				return nil, fmt.Errorf("server: C payload: %w", err)
			}
		} else {
			req.C64 = make([]float64, nC)
		}
	} else {
		if req.A32, err = readF32s(br, int(nA)); err != nil {
			return nil, fmt.Errorf("server: A payload: %w", err)
		}
		if req.B32, err = readF32s(br, int(nB)); err != nil {
			return nil, fmt.Errorf("server: B payload: %w", err)
		}
		if h.Beta != 0 {
			if req.C32, err = readF32s(br, int(nC)); err != nil {
				return nil, fmt.Errorf("server: C payload: %w", err)
			}
		} else {
			req.C32 = make([]float32, nC)
		}
	}
	// The payload must end exactly where the dimensions say it does: a
	// trailing byte means the header and payload disagree.
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("server: payload longer than the header's dimensions imply")
	}
	return req, nil
}

// badScalar rejects NaN and ±Inf wire scalars: a non-finite alpha/beta
// poisons every element of C, and no legitimate client sends one.
func badScalar(v float64) bool { return math.IsNaN(v) || math.IsInf(v, 0) }

func readF32s(r io.Reader, n int) ([]float32, error) {
	buf := make([]byte, 4*n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("payload shorter than the header's dimensions imply: %w", err)
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
	}
	return out, nil
}

func readF64s(r io.Reader, n int) ([]float64, error) {
	buf := make([]byte, 8*n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("payload shorter than the header's dimensions imply: %w", err)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return out, nil
}

// EncodeRequest writes the wire form of a request: the header line followed
// by the operand payload. The client side of DecodeRequest, used by
// shalom-load and the tests.
func EncodeRequest(w io.Writer, h Header, a32, b32, c32 []float32, a64, b64, c64 []float64) error {
	line, err := json.Marshal(h)
	if err != nil {
		return err
	}
	if _, err := w.Write(append(line, '\n')); err != nil {
		return err
	}
	if h.Precision == "f64" {
		if err := writeF64s(w, a64); err != nil {
			return err
		}
		if err := writeF64s(w, b64); err != nil {
			return err
		}
		if h.Beta != 0 {
			return writeF64s(w, c64)
		}
		return nil
	}
	if err := writeF32s(w, a32); err != nil {
		return err
	}
	if err := writeF32s(w, b32); err != nil {
		return err
	}
	if h.Beta != 0 {
		return writeF32s(w, c32)
	}
	return nil
}

func writeF32s(w io.Writer, v []float32) error {
	buf := make([]byte, 4*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(x))
	}
	_, err := w.Write(buf)
	return err
}

func writeF64s(w io.Writer, v []float64) error {
	buf := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(x))
	}
	_, err := w.Write(buf)
	return err
}

// DecodeResponse reads a 200 response: the header line and the m×n C
// payload in the request's precision.
func DecodeResponse(r io.Reader, m, n int, f64 bool) (ResponseHeader, []float32, []float64, error) {
	var rh ResponseHeader
	br := bufio.NewReaderSize(r, MaxHeaderBytes)
	line, err := br.ReadSlice('\n')
	if err != nil {
		return rh, nil, nil, fmt.Errorf("server: reading response header: %w", err)
	}
	if err := json.Unmarshal(line, &rh); err != nil {
		return rh, nil, nil, fmt.Errorf("server: malformed response header: %w", err)
	}
	if f64 {
		c, err := readF64s(br, m*n)
		return rh, nil, c, err
	}
	c, err := readF32s(br, m*n)
	return rh, c, nil, err
}
