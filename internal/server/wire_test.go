package server

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"libshalom"
	"libshalom/internal/mat"
)

// encodeValid builds the wire bytes of a well-formed request.
func encodeValid(t *testing.T, h Header, a32, b32, c32 []float32, a64, b64, c64 []float64) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := EncodeRequest(&buf, h, a32, b32, c32, a64, b64, c64); err != nil {
		t.Fatalf("EncodeRequest: %v", err)
	}
	return buf.Bytes()
}

func TestWireRoundTripF32(t *testing.T) {
	rng := mat.NewRNG(1)
	m, n, k := 5, 7, 3
	a := mat.RandomF32(m, k, rng).Data
	b := mat.RandomF32(k, n, rng).Data
	c := mat.RandomF32(m, n, rng).Data
	h := Header{Precision: "f32", Mode: "NN", M: m, N: n, K: k, Alpha: 1.5, Beta: -0.5, TimeoutMS: 250}
	req, err := DecodeRequest(bytes.NewReader(encodeValid(t, h, a, b, c, nil, nil, nil)), 0, 0)
	if err != nil {
		t.Fatalf("DecodeRequest: %v", err)
	}
	if req.F64 || req.Mode != libshalom.NN || req.M != m || req.N != n || req.K != k {
		t.Fatalf("decoded shape = %+v", req)
	}
	if req.Alpha != 1.5 || req.Beta != -0.5 || req.Timeout.Milliseconds() != 250 {
		t.Fatalf("decoded scalars = %+v", req)
	}
	for i := range a {
		if math.Float32bits(req.A32[i]) != math.Float32bits(a[i]) {
			t.Fatalf("A[%d] not bitwise-identical", i)
		}
	}
	for i := range b {
		if math.Float32bits(req.B32[i]) != math.Float32bits(b[i]) {
			t.Fatalf("B[%d] not bitwise-identical", i)
		}
	}
	for i := range c {
		if math.Float32bits(req.C32[i]) != math.Float32bits(c[i]) {
			t.Fatalf("C[%d] not bitwise-identical", i)
		}
	}
}

// A TransA request ships A as stored (k×m); the decoder must size it from
// the stored dims, not the logical ones.
func TestWireRoundTripF64Transposed(t *testing.T) {
	rng := mat.NewRNG(2)
	m, n, k := 6, 4, 9
	a := mat.RandomF64(k, m, rng).Data // stored k×m under TN
	b := mat.RandomF64(k, n, rng).Data
	h := Header{Precision: "f64", Mode: "TN", M: m, N: n, K: k, Alpha: 2, Beta: 0}
	req, err := DecodeRequest(bytes.NewReader(encodeValid(t, h, nil, nil, nil, a, b, nil)), 0, 0)
	if err != nil {
		t.Fatalf("DecodeRequest: %v", err)
	}
	if !req.F64 || req.Mode != libshalom.TN {
		t.Fatalf("decoded = %+v", req)
	}
	if len(req.A64) != k*m || len(req.B64) != k*n {
		t.Fatalf("operand lengths %d, %d; want %d, %d", len(req.A64), len(req.B64), k*m, k*n)
	}
	// beta == 0: no C on the wire, but the decoder provides a zeroed one.
	if len(req.C64) != m*n {
		t.Fatalf("len(C) = %d, want %d", len(req.C64), m*n)
	}
	for i, v := range req.C64 {
		if v != 0 {
			t.Fatalf("C[%d] = %v, want 0", i, v)
		}
	}
}

// truncateAfterHeader cuts a valid wire body a few bytes into its payload.
func truncateAfterHeader(b []byte) []byte {
	return b[:bytes.IndexByte(b, '\n')+5]
}

func TestDecodeRequestRejects(t *testing.T) {
	rng := mat.NewRNG(3)
	a := mat.RandomF32(4, 4, rng).Data
	b := mat.RandomF32(4, 4, rng).Data
	valid := func(mut func(*Header)) []byte {
		h := Header{Precision: "f32", Mode: "NN", M: 4, N: 4, K: 4, Alpha: 1}
		mut(&h)
		return encodeValid(t, h, a, b, nil, nil, nil, nil)
	}
	cases := []struct {
		name string
		in   []byte
		want string
	}{
		{"empty", nil, "reading request header"},
		{"no newline", []byte(`{"precision":"f32"}`), "reading request header"},
		{"malformed json", []byte("{nope}\n"), "malformed request header"},
		{"header too long", append(bytes.Repeat([]byte{' '}, MaxHeaderBytes+1), '\n'), "exceeds"},
		{"bad precision", valid(func(h *Header) { h.Precision = "f16" }), "unknown precision"},
		{"bad mode", valid(func(h *Header) { h.Mode = "XX" }), "mode"},
		{"zero dim", valid(func(h *Header) { h.M = 0 }), "non-positive"},
		{"negative dim", valid(func(h *Header) { h.K = -3 }), "non-positive"},
		{"oversize dim", valid(func(h *Header) { h.N = 1 << 20 }), "exceed"},
		{"negative timeout", valid(func(h *Header) { h.TimeoutMS = -1 }), "timeout_ms"},
		{"truncated payload", truncateAfterHeader(valid(func(h *Header) {})), "shorter"},
		{"trailing bytes", append(valid(func(h *Header) {}), 0xFF), "longer"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := DecodeRequest(bytes.NewReader(tc.in), 4096, 1<<20)
			if err == nil {
				t.Fatalf("accepted %q: %+v", tc.name, req)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// NaN/Inf scalars are wire-level rejections: json.Marshal cannot emit them,
// so hand-build the header line.
func TestDecodeRequestRejectsNonFiniteScalars(t *testing.T) {
	for _, hdr := range []string{
		`{"precision":"f32","mode":"NN","m":2,"n":2,"k":2,"alpha":NaN,"beta":0}`,
		`{"precision":"f32","mode":"NN","m":2,"n":2,"k":2,"alpha":1,"beta":1e999}`,
		`{"precision":"f32","mode":"NN","m":2,"n":2,"k":2,"alpha":-1e999,"beta":0}`,
	} {
		_, err := DecodeRequest(strings.NewReader(hdr+"\n"), 0, 0)
		if err == nil {
			t.Fatalf("accepted non-finite scalars in %s", hdr)
		}
	}
}

// The payload bound must be enforced from the header alone, before any
// operand allocation: a 3×3×3 request under an 8-byte budget is refused
// even though its payload bytes never arrive.
func TestDecodeRequestBoundsPayloadBeforeAllocating(t *testing.T) {
	hdr := `{"precision":"f64","mode":"NN","m":3,"n":3,"k":3,"alpha":1,"beta":0}` + "\n"
	_, err := DecodeRequest(strings.NewReader(hdr), 4096, 8)
	if err == nil || !strings.Contains(err.Error(), "exceeds the limit") {
		t.Fatalf("err = %v, want payload-limit rejection", err)
	}
}

func TestStoredDims(t *testing.T) {
	for _, tc := range []struct {
		mode           libshalom.Mode
		aR, aC, bR, bC int
	}{
		{libshalom.NN, 2, 4, 4, 3},
		{libshalom.NT, 2, 4, 3, 4},
		{libshalom.TN, 4, 2, 4, 3},
		{libshalom.TT, 4, 2, 3, 4},
	} {
		aR, aC, bR, bC := storedDims(tc.mode, 2, 3, 4)
		if aR != tc.aR || aC != tc.aC || bR != tc.bR || bC != tc.bC {
			t.Fatalf("%v: stored dims (%d,%d,%d,%d), want (%d,%d,%d,%d)",
				tc.mode, aR, aC, bR, bC, tc.aR, tc.aC, tc.bR, tc.bC)
		}
	}
}

func TestDecodeResponseRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	line := []byte(`{"status":"ok","batch_size":3,"queue_wait_us":17}` + "\n")
	buf.Write(line)
	c := []float32{1, -2, 3.5, 0}
	if err := writeF32s(&buf, c); err != nil {
		t.Fatal(err)
	}
	rh, got, _, err := DecodeResponse(&buf, 2, 2, false)
	if err != nil {
		t.Fatalf("DecodeResponse: %v", err)
	}
	if rh.BatchSize != 3 || rh.QueueWaitUS != 17 || rh.Status != "ok" {
		t.Fatalf("header = %+v", rh)
	}
	for i := range c {
		if math.Float32bits(got[i]) != math.Float32bits(c[i]) {
			t.Fatalf("C[%d] mismatch", i)
		}
	}
}
