package server

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync/atomic"
	"time"

	"libshalom"
	"libshalom/internal/attrib"
	"libshalom/internal/autotune"
	"libshalom/internal/guard"
	"libshalom/internal/heal"
	"libshalom/internal/journal"
	"libshalom/internal/telemetry"
)

// Config is the serving policy. Zero fields select the documented defaults.
type Config struct {
	// Window is the coalescing window: how long the first request of an
	// empty class queue waits for company before its batch flushes.
	// Default 200µs.
	Window time.Duration
	// MaxBatch flushes a class queue as soon as this many requests are
	// resident, without waiting out the window. Default 64.
	MaxBatch int
	// MaxBatchFlops flushes a class queue as soon as its queued work
	// exceeds this many flops — large requests should not wait for company
	// they do not need. Default 32e6.
	MaxBatchFlops float64
	// MaxQueue bounds each class queue; requests beyond it are shed with
	// HTTP 429. Default 1024.
	MaxQueue int
	// MaxInFlightFlops bounds the total flops of admitted-but-unanswered
	// requests across all classes — the backpressure signal. Requests
	// beyond it are shed with HTTP 429. Default 4e9.
	MaxInFlightFlops int64
	// DefaultTimeout applies to requests that do not carry a timeout_ms;
	// zero means no deadline.
	DefaultTimeout time.Duration
	// RetryAfter is the Retry-After hint on shed responses, in seconds.
	// Default 1.
	RetryAfter int
	// RetryAfterJitter widens the hint: each shed response advertises
	// RetryAfter plus a uniform whole number of seconds in [0, jitter], so
	// a synchronized storm of shed clients is desynchronized instead of
	// re-arriving in one wave and being shed again. Default 1; negative
	// disables the jitter.
	RetryAfterJitter int
	// MaxDim caps each of m, n, k at decode time. Default 4096.
	MaxDim int
	// MaxPayloadBytes caps a request's operand payload. Default 64 MiB.
	MaxPayloadBytes int64
	// BaseContext is the parent of every flush's batch context. Deadlines
	// layer on top of it, and cancelling it aborts in-flight batches
	// between entries — it should be the server's lifecycle context (one
	// that outlives a drain-triggering signal, not the signal context
	// itself, or the drain's final flushes are cancelled too). Nil selects
	// context.Background().
	BaseContext context.Context
	// Journal, when non-nil, records every admitted request, flush, and
	// result into the tamper-evident journal. Nil (the default) disables
	// journaling at zero cost — the nil-receiver off path.
	Journal *journal.Writer
	// Attrib, when non-nil, is the live performance-attribution engine:
	// the server mounts its /attrib report, appends its gauge family to
	// /metrics, and summarises it in /healthz. Nil (the default) disables
	// attribution at zero cost — /attrib answers 404 and the hot path
	// carries only the recorder's sketch counters.
	Attrib *attrib.Engine
	// Autotune, when non-nil, is the traffic-adaptive kernel tuning loop:
	// the server mounts its /tune state-machine report, appends its gauge
	// family to /metrics, and summarises it in /healthz. The caller owns
	// the engine's lifecycle (Start before serving, Close on shutdown).
	// Nil (the default) disables autotuning — /tune answers 404 and no
	// tuning goroutine exists.
	Autotune *autotune.Engine
	// Pprof mounts net/http/pprof's profiling handlers under
	// /debug/pprof/ on the server mux. Off by default: the profiling
	// surface is a debugging aid, not part of the serving contract.
	Pprof bool
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = 200 * time.Microsecond
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.MaxBatchFlops <= 0 {
		c.MaxBatchFlops = 32e6
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 1024
	}
	if c.MaxInFlightFlops <= 0 {
		c.MaxInFlightFlops = 4e9
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 1
	}
	if c.RetryAfterJitter == 0 {
		c.RetryAfterJitter = 1
	} else if c.RetryAfterJitter < 0 {
		c.RetryAfterJitter = 0
	}
	if c.MaxDim <= 0 {
		c.MaxDim = DefaultMaxDim
	}
	if c.MaxPayloadBytes <= 0 {
		c.MaxPayloadBytes = DefaultMaxPayloadBytes
	}
	return c
}

// Server is the GEMM serving front end. It implements http.Handler:
//
//	POST /v1/gemm   one GEMM request (wire format in wire.go)
//	GET  /healthz   200 healthy / 503 while any breaker is open on the
//	                serving platform's kernel paths
//	GET  /metrics   Prometheus exposition (when the Context has telemetry),
//	                with the attribution gauge family appended when an
//	                Engine is configured
//	GET  /snapshot  telemetry snapshot as JSON
//	GET  /trace     Chrome trace_event JSON
//	GET  /attrib    attribution report: efficiency accounts, drift events,
//	                ranked tuning candidates (404 when attribution is off)
//	GET  /tune      autotuner report: per-class tuning state machine and
//	                lifetime counters (404 when autotuning is off)
//
// Build it over a Context the caller owns; the caller closes that Context
// after Drain.
type Server struct {
	lib      *libshalom.Context
	cfg      Config
	tel      *telemetry.Recorder
	jw       *journal.Writer
	cfgHash  string
	co       *coalescer
	mux      *http.ServeMux
	draining atomic.Bool
}

// New builds a Server over lib. The Context's options shape the serving
// behaviour: WithTelemetry feeds /metrics, WithDeadline arms the
// stuck-worker watchdog under every flush, WithoutTransientRetry surfaces
// kernel panics as batch failures instead of degraded successes.
func New(lib *libshalom.Context, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		lib:     lib,
		cfg:     cfg,
		tel:     lib.TelemetryRecorder(),
		jw:      cfg.Journal,
		cfgHash: configHash(lib, cfg),
		co:      newCoalescer(lib, cfg),
		mux:     http.NewServeMux(),
	}
	s.mux.HandleFunc("/v1/gemm", s.handleGEMM)
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/readyz", s.handleReady)
	if h, ok := lib.TelemetryHandler(); ok {
		// /metrics concatenates the recorder's exposition (driver counters,
		// the attribution sketch, runtime gauges) with the engine's gauge
		// family; the series names are disjoint by construction, so the
		// combined page never duplicates a series.
		s.mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			h.ServeHTTP(w, r)
			_ = cfg.Attrib.WritePrometheus(w)   // nil-safe: writes nothing when attribution is off
			_ = cfg.Autotune.WritePrometheus(w) // nil-safe: writes nothing when autotuning is off
		})
		s.mux.Handle("/snapshot", h)
		s.mux.Handle("/trace", h)
	}
	s.mux.Handle("/attrib", cfg.Attrib.Handler())
	s.mux.Handle("/tune", cfg.Autotune.Handler())
	if cfg.Pprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s
}

// ServeHTTP dispatches to the server's endpoints.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// configHash digests the serving policy and platform into the provenance
// hash /healthz and load-test artifacts report: two BENCH_serve.json rows
// with the same config_hash ran the same serving configuration on the same
// platform model.
func configHash(lib *libshalom.Context, cfg Config) string {
	h := sha256.New()
	fmt.Fprintf(h, "platform=%s window=%s max_batch=%d max_batch_flops=%g max_queue=%d max_inflight_flops=%d default_timeout=%s retry_after=%d+%d max_dim=%d max_payload=%d journal=%t autotune=%t",
		lib.Platform().Name, cfg.Window, cfg.MaxBatch, cfg.MaxBatchFlops,
		cfg.MaxQueue, cfg.MaxInFlightFlops, cfg.DefaultTimeout, cfg.RetryAfter,
		cfg.RetryAfterJitter, cfg.MaxDim, cfg.MaxPayloadBytes, cfg.Journal.Enabled(),
		cfg.Autotune != nil)
	return hex.EncodeToString(h.Sum(nil))
}

// ConfigHash is the provenance hash of the server's effective configuration.
func (s *Server) ConfigHash() string { return s.cfgHash }

// wireParts re-encodes a decoded request into its canonical wire form, split
// into the header line (no newline) and the operand payload — what the
// journal's admit record carries. Encoding happens before submit: the flush
// goroutine overwrites req's C in place, so the bytes must be captured while
// the handler still owns them.
func wireParts(req *Request) (header, payload []byte, err error) {
	h := Header{
		Precision: "f32", Mode: req.Mode.String(),
		M: req.M, N: req.N, K: req.K,
		Alpha: req.Alpha, Beta: req.Beta,
		TimeoutMS: int(req.Timeout / time.Millisecond),
	}
	if req.F64 {
		h.Precision = "f64"
	}
	header, err = json.Marshal(h)
	if err != nil {
		return nil, nil, err
	}
	var buf bytes.Buffer
	if req.F64 {
		_ = writeF64s(&buf, req.A64)
		_ = writeF64s(&buf, req.B64)
		if req.Beta != 0 {
			_ = writeF64s(&buf, req.C64)
		}
	} else {
		_ = writeF32s(&buf, req.A32)
		_ = writeF32s(&buf, req.B32)
		if req.Beta != 0 {
			_ = writeF32s(&buf, req.C32)
		}
	}
	return header, buf.Bytes(), nil
}

// handleGEMM is the request path: decode, admit, wait for the coalesced
// flush, answer.
func (s *Server) handleGEMM(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "server: POST only", http.StatusMethodNotAllowed)
		return
	}
	if s.draining.Load() {
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfter()))
		http.Error(w, "server: draining", http.StatusServiceUnavailable)
		return
	}
	body := http.MaxBytesReader(w, r.Body, int64(MaxHeaderBytes)+s.cfg.MaxPayloadBytes)
	req, err := DecodeRequest(body, s.cfg.MaxDim, s.cfg.MaxPayloadBytes)
	if err != nil {
		s.tel.ServerRejected()
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	now := time.Now()
	p := &pending{
		req:  req,
		enq:  now,
		done: make(chan result, 1),
	}
	timeout := req.Timeout
	if timeout == 0 {
		timeout = s.cfg.DefaultTimeout
	}
	if timeout > 0 {
		p.deadline = now.Add(timeout)
	}
	// Capture the canonical wire bytes before submit: once the request is in
	// a queue, the flush goroutine owns (and overwrites) its C operand.
	var jHdr, jPayload []byte
	if s.jw.Enabled() {
		jHdr, jPayload, _ = wireParts(req)
	}
	if !s.co.submit(p) {
		s.tel.ServerShed()
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfter()))
		http.Error(w, "server: overloaded, request shed", http.StatusTooManyRequests)
		return
	}
	s.tel.ServerAccepted()
	jid := s.jw.Admit(now, jHdr, jPayload)
	res := <-p.done
	if s.jw.Enabled() {
		var rh [32]byte
		if res.status == http.StatusOK {
			if req.F64 {
				rh = journal.HashF64s(req.C64)
			} else {
				rh = journal.HashF32s(req.C32)
			}
		}
		s.jw.Result(jid, res.status, res.batchSize, rh)
	}
	if res.status != http.StatusOK {
		http.Error(w, res.msg, res.status)
		return
	}
	s.writeResult(w, req, res)
}

// writeResult streams a 200 response: the JSON header line, then the m×n C
// payload.
func (s *Server) writeResult(w http.ResponseWriter, req *Request, res result) {
	w.Header().Set("Content-Type", "application/octet-stream")
	rh := ResponseHeader{
		Status:      "ok",
		BatchSize:   res.batchSize,
		QueueWaitUS: res.queueWait.Microseconds(),
	}
	line, err := json.Marshal(rh)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if _, err := w.Write(append(line, '\n')); err != nil {
		return
	}
	if req.F64 {
		_ = writeF64s(w, req.C64)
		return
	}
	_ = writeF32s(w, req.C32)
}

// healthzBody is the /healthz response.
type healthzBody struct {
	Status   string `json:"status"` // "ok", "probing" or "degraded"
	Platform string `json:"platform"`
	Draining bool   `json:"draining"`
	// ConfigHash is the provenance digest of the effective serving policy;
	// load-test artifacts embed it so a result row names the exact
	// configuration it measured.
	ConfigHash string              `json:"config_hash"`
	Breakers   []guard.Degradation `json:"breakers,omitempty"`
	// Journal is the durability view of the request journal — active
	// segment, chain head, fsync lag — present only when journaling is on.
	Journal *journal.Status `json:"journal,omitempty"`
	// Attribution summarises the performance-attribution engine — closed
	// windows, drift totals, calibration, and the current top tuning
	// candidate — present only when attribution is on.
	Attribution *attribHealth `json:"attribution,omitempty"`
	// Autotune summarises the tuning loop — lifetime counters and any
	// class currently canarying or promoted — present only when the loop
	// is on.
	Autotune *tuneHealth `json:"autotune,omitempty"`
}

// tuneHealth is the /healthz autotuner section.
type tuneHealth struct {
	Searched uint64 `json:"searched"`
	Promoted uint64 `json:"promoted"`
	Reverted uint64 `json:"reverted"`
	// Canary names the class currently canarying a candidate, as
	// "precision/class kernel", empty when none is in flight.
	Canary string `json:"canary,omitempty"`
}

// attribHealth is the /healthz attribution section.
type attribHealth struct {
	Windows      uint64  `json:"windows"`
	DriftEvents  uint64  `json:"drift_events"`
	Calibration  float64 `json:"calibration"`
	TopCandidate string  `json:"top_candidate,omitempty"`
	TopScore     float64 `json:"top_score,omitempty"`
}

// handleHealth reports the self-healing state of the serving platform's
// kernel paths: 503 while any breaker is open (the fast path is demoted and
// not yet probing its way back), 200 otherwise — a probing breaker still
// answers every request, so it degrades the status without failing the
// check.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	plat := s.lib.Platform().Name
	body := healthzBody{Status: "ok", Platform: plat, Draining: s.draining.Load(), ConfigHash: s.cfgHash}
	if s.jw.Enabled() {
		js := s.jw.Status()
		body.Journal = &js
	}
	if s.cfg.Attrib != nil {
		rep := s.cfg.Attrib.Report()
		ah := &attribHealth{Windows: rep.Windows, DriftEvents: rep.DriftTotal, Calibration: rep.Calibration}
		if len(rep.Candidates) > 0 {
			top := rep.Candidates[0]
			ah.TopCandidate = fmt.Sprintf("%s/%s/%s/%s", top.Precision, top.Mode, top.ShapeClass, top.Kernel)
			ah.TopScore = top.Score
		}
		body.Attribution = ah
	}
	if s.cfg.Autotune != nil {
		rep := s.cfg.Autotune.Report()
		th := &tuneHealth{Searched: rep.Searched, Promoted: rep.Promoted, Reverted: rep.Reverted}
		for _, c := range rep.Classes {
			if c.State == "canary" {
				th.Canary = fmt.Sprintf("%s/%s %s", c.Precision, c.ShapeClass, c.Kernel)
			}
		}
		body.Autotune = th
	}
	for _, path := range []string{guard.PathF32, guard.PathF64} {
		switch guard.StateOf(plat, path) {
		case guard.StateOpen:
			body.Status = "degraded"
		case guard.StateProbing:
			if body.Status == "ok" {
				body.Status = "probing"
			}
		}
	}
	for _, b := range heal.Snapshot().Breakers {
		if b.Platform == plat && (b.Kernel == guard.PathF32 || b.Kernel == guard.PathF64) {
			body.Breakers = append(body.Breakers, b)
		}
	}
	w.Header().Set("Content-Type", "application/json")
	if body.Status == "degraded" {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	_ = json.NewEncoder(w).Encode(body)
}

// retryAfter is the jittered Retry-After value for one shed response:
// RetryAfter plus a uniform draw from [0, RetryAfterJitter] seconds.
func (s *Server) retryAfter() int {
	v := s.cfg.RetryAfter
	if s.cfg.RetryAfterJitter > 0 {
		v += rand.IntN(s.cfg.RetryAfterJitter + 1)
	}
	return v
}

// handleReady is the readiness endpoint — distinct from /healthz liveness.
// It answers 503 the moment a drain starts, before the drain finishes, so a
// router or balancer probing readiness stops sending new work while the
// server is still answering its admitted backlog. /healthz keeps reporting
// breaker health throughout: a draining server is not-ready but alive.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	draining := s.draining.Load()
	w.Header().Set("Content-Type", "application/json")
	if draining {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	_ = json.NewEncoder(w).Encode(map[string]bool{"ready": !draining, "draining": draining})
}

// Drain is the graceful-shutdown protocol: stop admitting (new requests see
// 503), force-flush every resident batch, and wait until every admitted
// request has been answered. After Drain returns the caller shuts the HTTP
// listener down (handlers are only writing responses at that point) and
// closes the Context. ctx bounds the wait.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	for {
		s.co.flushAll()
		done := make(chan struct{})
		go func() {
			s.co.flushes.Wait()
			close(done)
		}()
		select {
		case <-done:
		case <-ctx.Done():
			return fmt.Errorf("server: drain interrupted with %d flops in flight: %w",
				s.co.inFlight.Load(), ctx.Err())
		}
		// A submit that raced the draining flag may have queued after the
		// sweep; loop until the in-flight reservation reaches zero.
		if s.co.inFlight.Load() == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("server: drain interrupted with %d flops in flight: %w",
				s.co.inFlight.Load(), ctx.Err())
		case <-time.After(time.Millisecond):
		}
	}
}

// Draining reports whether the server has stopped admitting requests.
func (s *Server) Draining() bool { return s.draining.Load() }
