package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"libshalom"
	"libshalom/internal/guard"
	"libshalom/internal/heal"
	"libshalom/internal/mat"
	"libshalom/internal/server"
)

// env is one serving stack under test: a telemetry-enabled Context, the
// Server over it, and an httptest listener.
type env struct {
	lib *libshalom.Context
	srv *server.Server
	ts  *httptest.Server
}

func newEnv(t *testing.T, cfg server.Config, opts ...libshalom.Option) *env {
	t.Helper()
	opts = append([]libshalom.Option{libshalom.WithTelemetry()}, opts...)
	e := &env{lib: libshalom.New(opts...)}
	e.srv = server.New(e.lib, cfg)
	e.ts = httptest.NewServer(e.srv)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := e.srv.Drain(ctx); err != nil {
			t.Errorf("cleanup drain: %v", err)
		}
		e.ts.Close()
		e.lib.Close()
	})
	return e
}

// post sends one encoded request and fully reads the response.
func (e *env) post(t *testing.T, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(e.ts.URL+"/v1/gemm", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("reading response: %v", err)
	}
	return resp, raw
}

// problem is one f32 GEMM request together with its direct-call reference.
type problem struct {
	h    server.Header
	body []byte
	want []float32 // from a threads=1 direct SGEMM
}

// newProblem builds an m×n×k NN f32 request and computes its reference on a
// single-threaded direct Context — the bitwise baseline the serving path
// must reproduce.
func newProblem(t *testing.T, direct *libshalom.Context, seed uint64, m, n, k int, timeoutMS int) *problem {
	t.Helper()
	rng := mat.NewRNG(seed)
	a := mat.RandomF32(m, k, rng)
	b := mat.RandomF32(k, n, rng)
	want := mat.NewF32(m, n)
	if err := direct.SGEMM(libshalom.NN, m, n, k, 1, a.Data, a.Stride, b.Data, b.Stride, 0, want.Data, want.Stride); err != nil {
		t.Fatalf("direct SGEMM: %v", err)
	}
	h := server.Header{Precision: "f32", Mode: "NN", M: m, N: n, K: k, Alpha: 1, TimeoutMS: timeoutMS}
	var buf bytes.Buffer
	if err := server.EncodeRequest(&buf, h, a.Data, b.Data, nil, nil, nil, nil); err != nil {
		t.Fatal(err)
	}
	return &problem{h: h, body: buf.Bytes(), want: want.Data}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// The tentpole invariant: concurrent same-class requests coalesce into one
// batch dispatch, and every coalesced result is bitwise-identical to a
// direct single-threaded SGEMM of the same problem.
func TestServeCoalescesBitwiseIdentical(t *testing.T) {
	direct := libshalom.New(libshalom.WithThreads(1))
	defer direct.Close()
	const n = 8
	probs := make([]*problem, n)
	for i := range probs {
		probs[i] = newProblem(t, direct, uint64(100+i), 24, 20, 16, 0)
	}
	e := newEnv(t, server.Config{
		Window:        300 * time.Millisecond,
		MaxBatch:      n,
		MaxBatchFlops: 1e18,
	}, libshalom.WithThreads(4))

	type outcome struct {
		rh  server.ResponseHeader
		c   []float32
		err error
	}
	outs := make([]outcome, n)
	var wg sync.WaitGroup
	for i := range probs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, raw := e.post(t, probs[i].body)
			if resp.StatusCode != http.StatusOK {
				outs[i].err = fmt.Errorf("HTTP %d: %s", resp.StatusCode, raw)
				return
			}
			rh, c, _, err := server.DecodeResponse(bytes.NewReader(raw), probs[i].h.M, probs[i].h.N, false)
			outs[i] = outcome{rh: rh, c: c, err: err}
		}(i)
	}
	wg.Wait()

	maxBatch := 0
	for i, out := range outs {
		if out.err != nil {
			t.Fatalf("request %d: %v", i, out.err)
		}
		for j := range out.c {
			if math.Float32bits(out.c[j]) != math.Float32bits(probs[i].want[j]) {
				t.Fatalf("request %d: C[%d] = %v, want %v (not bitwise-identical to direct SGEMM)",
					i, j, out.c[j], probs[i].want[j])
			}
		}
		if out.rh.BatchSize > maxBatch {
			maxBatch = out.rh.BatchSize
		}
	}
	if maxBatch < 2 {
		t.Fatalf("no coalescing observed: max batch size %d", maxBatch)
	}
	s := e.lib.Snapshot().Server
	if s.Accepted != n || s.Coalesced == 0 || s.Flushes == 0 {
		t.Fatalf("server stats = %+v", s)
	}

	// The same stats must be visible on the Prometheus surface.
	resp, err := http.Get(e.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	expo, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, metric := range []string{
		"libshalom_server_requests_accepted_total 8",
		"libshalom_server_coalesced_requests_total",
		"libshalom_server_batch_size_bucket",
	} {
		if !strings.Contains(string(expo), metric) {
			t.Fatalf("/metrics missing %q", metric)
		}
	}
}

// The f64 path end to end, including a beta != 0 C upload.
func TestServeF64WithCUpload(t *testing.T) {
	rng := mat.NewRNG(42)
	m, n, k := 13, 9, 17
	a := mat.RandomF64(m, k, rng)
	b := mat.RandomF64(k, n, rng)
	c := mat.RandomF64(m, n, rng)
	direct := libshalom.New(libshalom.WithThreads(1))
	defer direct.Close()
	want := c.Clone()
	if err := direct.DGEMM(libshalom.NN, m, n, k, 1.5, a.Data, a.Stride, b.Data, b.Stride, -0.5, want.Data, want.Stride); err != nil {
		t.Fatal(err)
	}

	e := newEnv(t, server.Config{Window: time.Millisecond})
	h := server.Header{Precision: "f64", Mode: "NN", M: m, N: n, K: k, Alpha: 1.5, Beta: -0.5}
	var buf bytes.Buffer
	if err := server.EncodeRequest(&buf, h, nil, nil, nil, a.Data, b.Data, c.Data); err != nil {
		t.Fatal(err)
	}
	resp, raw := e.post(t, buf.Bytes())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d: %s", resp.StatusCode, raw)
	}
	_, _, got, err := server.DecodeResponse(bytes.NewReader(raw), m, n, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want.Data[i]) {
			t.Fatalf("C[%d] = %v, want %v", i, got[i], want.Data[i])
		}
	}
}

// A request whose deadline passes while it waits in the coalescing queue is
// answered 504 and never computed: no flush runs for it.
func TestServeDeadlineExpiresBeforeFlush(t *testing.T) {
	direct := libshalom.New(libshalom.WithThreads(1))
	defer direct.Close()
	e := newEnv(t, server.Config{Window: 200 * time.Millisecond, MaxBatch: 64})
	p := newProblem(t, direct, 7, 16, 16, 16, 1) // 1ms deadline, 200ms window
	resp, raw := e.post(t, p.body)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("HTTP %d: %s, want 504", resp.StatusCode, raw)
	}
	s := e.lib.Snapshot().Server
	if s.Expired != 1 {
		t.Fatalf("expired = %d, want 1", s.Expired)
	}
	if s.Flushes != 0 {
		t.Fatalf("flushes = %d: an expired request was computed", s.Flushes)
	}
}

// Admission control: a full class queue sheds with 429 + Retry-After, and a
// zero in-flight flops budget sheds everything.
func TestServeShedsWhenOverloaded(t *testing.T) {
	direct := libshalom.New(libshalom.WithThreads(1))
	defer direct.Close()
	e := newEnv(t, server.Config{
		Window:           10 * time.Second, // nothing flushes on its own
		MaxBatch:         64,
		MaxQueue:         1,
		RetryAfter:       3,
		RetryAfterJitter: -1, // exact hint, so the header is assertable
	})
	p1 := newProblem(t, direct, 8, 16, 16, 16, 0)
	p2 := newProblem(t, direct, 9, 16, 16, 16, 0)

	first := make(chan *http.Response, 1)
	go func() {
		resp, _ := http.Post(e.ts.URL+"/v1/gemm", "application/octet-stream", bytes.NewReader(p1.body))
		first <- resp
	}()
	waitFor(t, "first request admitted", func() bool { return e.lib.Snapshot().Server.Accepted == 1 })

	resp, raw := e.post(t, p2.body)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("HTTP %d: %s, want 429", resp.StatusCode, raw)
	}
	if got := resp.Header.Get("Retry-After"); got != "3" {
		t.Fatalf("Retry-After = %q, want \"3\"", got)
	}
	if s := e.lib.Snapshot().Server; s.Shed != 1 {
		t.Fatalf("shed = %d, want 1", s.Shed)
	}

	// Drain answers the parked request — shedding never drops admitted work.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := e.srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	select {
	case r := <-first:
		if r.StatusCode != http.StatusOK {
			t.Fatalf("admitted request answered HTTP %d after drain", r.StatusCode)
		}
		r.Body.Close()
	case <-time.After(5 * time.Second):
		t.Fatal("admitted request unanswered after drain")
	}
}

func TestServeShedsOnInFlightFlops(t *testing.T) {
	direct := libshalom.New(libshalom.WithThreads(1))
	defer direct.Close()
	e := newEnv(t, server.Config{MaxInFlightFlops: 1})
	p := newProblem(t, direct, 10, 16, 16, 16, 0)
	resp, _ := e.post(t, p.body)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("HTTP %d, want 429 under a zero flops budget", resp.StatusCode)
	}
}

// The full-class-queue 429 storm: with one queue slot, a burst of same-class
// requests is shed down to the admitted one, and every shed response carries
// a Retry-After hint inside the configured jitter band — the desynchronized
// backoff signal that prevents the storm from re-arriving as one wave.
func TestServe429StormEveryShedHasRetryAfter(t *testing.T) {
	direct := libshalom.New(libshalom.WithThreads(1))
	defer direct.Close()
	const base, jitter = 2, 3
	e := newEnv(t, server.Config{
		Window:           10 * time.Second, // nothing flushes until drain
		MaxQueue:         1,
		RetryAfter:       base,
		RetryAfterJitter: jitter,
	})
	p := newProblem(t, direct, 21, 16, 16, 16, 0)

	const storm = 24
	type verdict struct {
		code       int
		retryAfter string
	}
	verdicts := make(chan verdict, storm)
	var wg sync.WaitGroup
	for i := 0; i < storm; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(e.ts.URL+"/v1/gemm", "application/octet-stream", bytes.NewReader(p.body))
			if err != nil {
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			verdicts <- verdict{resp.StatusCode, resp.Header.Get("Retry-After")}
		}()
	}
	// The parked admitted requests answer at drain; the cleanup drain would
	// do it too, but doing it here bounds the storm goroutines' lifetime.
	waitFor(t, "storm settled", func() bool {
		s := e.lib.Snapshot().Server
		return s.Accepted+s.Shed == storm
	})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := e.srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	wg.Wait()
	close(verdicts)
	shed := 0
	for v := range verdicts {
		if v.code != http.StatusTooManyRequests {
			continue
		}
		shed++
		sec, err := strconv.Atoi(v.retryAfter)
		if err != nil {
			t.Fatalf("shed response Retry-After = %q, want an integer", v.retryAfter)
		}
		if sec < base || sec > base+jitter {
			t.Fatalf("Retry-After = %d, want in [%d, %d]", sec, base, base+jitter)
		}
	}
	if shed == 0 {
		t.Fatal("storm shed nothing — queue bound not exercised")
	}
	if got := e.lib.Snapshot().Server.Shed; got != uint64(shed) {
		t.Fatalf("telemetry shed = %d, clients saw %d", got, shed)
	}
}

// Drain racing an in-flight coalescer flush: requests are still being
// admitted and flushed when the drain lands. Every admitted request must be
// answered correctly, every refusal must be an explicit 503 with a
// Retry-After hint, and readiness must read 503 from the moment the drain
// starts.
func TestServeDrainRacesCoalescerFlush(t *testing.T) {
	direct := libshalom.New(libshalom.WithThreads(1))
	defer direct.Close()
	e := newEnv(t, server.Config{Window: 500 * time.Microsecond, MaxBatch: 4})
	p := newProblem(t, direct, 22, 24, 24, 24, 0)

	const clients = 16
	type verdict struct {
		code       int
		retryAfter string
		body       []byte
	}
	verdicts := make(chan verdict, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(e.ts.URL+"/v1/gemm", "application/octet-stream", bytes.NewReader(p.body))
			if err != nil {
				return
			}
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			verdicts <- verdict{resp.StatusCode, resp.Header.Get("Retry-After"), raw}
		}()
	}
	// Land the drain while the batch windows are still flushing.
	waitFor(t, "some requests admitted", func() bool { return e.lib.Snapshot().Server.Accepted >= 2 })
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := e.srv.Drain(ctx); err != nil {
		t.Fatalf("drain racing flush: %v", err)
	}
	// Readiness flipped with the drain; liveness did not.
	rr, err := http.Get(e.ts.URL + "/readyz")
	if err != nil {
		t.Fatalf("readyz: %v", err)
	}
	io.Copy(io.Discard, rr.Body)
	rr.Body.Close()
	if rr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz after drain start = %d, want 503", rr.StatusCode)
	}
	wg.Wait()
	close(verdicts)
	answered := uint64(0)
	for v := range verdicts {
		switch v.code {
		case http.StatusOK:
			answered++
			_, got, _, err := server.DecodeResponse(bytes.NewReader(v.body), p.h.M, p.h.N, false)
			if err != nil {
				t.Fatalf("decoding answered payload: %v", err)
			}
			for j := range got {
				if got[j] != p.want[j] {
					t.Fatalf("drained result differs at %d: %v != %v", j, got[j], p.want[j])
				}
			}
		case http.StatusServiceUnavailable:
			if v.retryAfter == "" {
				t.Fatal("drain refusal missing Retry-After")
			}
		default:
			t.Fatalf("unexpected verdict %d during drain race", v.code)
		}
	}
	if acc := e.lib.Snapshot().Server.Accepted; answered != acc {
		t.Fatalf("%d requests admitted but %d answered 200 — drain dropped admitted work", acc, answered)
	}
}

// Readiness is a distinct signal from liveness: /readyz goes 503 the moment
// a drain starts while /healthz keeps answering 200 for a healthy runtime.
func TestServeReadyzSplitsFromHealthz(t *testing.T) {
	e := newEnv(t, server.Config{})
	get := func(path string) int {
		resp, err := http.Get(e.ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get("/readyz"); code != http.StatusOK {
		t.Fatalf("readyz before drain = %d, want 200", code)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := e.srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if code := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz after drain = %d, want 503", code)
	}
	if code := get("/healthz"); code != http.StatusOK {
		t.Fatalf("healthz after drain = %d, want 200 — drain must not fail liveness", code)
	}
}

// Drain answers every admitted request, then the server refuses new work
// with 503.
func TestServeDrainCompletesAdmitted(t *testing.T) {
	direct := libshalom.New(libshalom.WithThreads(1))
	defer direct.Close()
	const n = 12
	e := newEnv(t, server.Config{
		Window:        10 * time.Second,
		MaxBatch:      1024,
		MaxBatchFlops: 1e18,
	}, libshalom.WithThreads(2))
	probs := make([]*problem, n)
	for i := range probs {
		// Three shape classes, so the drain sweeps several queues.
		dim := []int{8, 24, 72}[i%3]
		probs[i] = newProblem(t, direct, uint64(200+i), dim, dim, dim, 0)
	}
	statuses := make([]int, n)
	var wg sync.WaitGroup
	for i := range probs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, _ := e.post(t, probs[i].body)
			statuses[i] = resp.StatusCode
		}(i)
	}
	waitFor(t, "all requests admitted", func() bool { return e.lib.Snapshot().Server.Accepted == n })

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := e.srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	wg.Wait()
	for i, st := range statuses {
		if st != http.StatusOK {
			t.Fatalf("admitted request %d answered HTTP %d during drain, want 200", i, st)
		}
	}
	s := e.lib.Snapshot().Server
	if s.Expired != 0 || s.Accepted != n {
		t.Fatalf("drain dropped admitted work: %+v", s)
	}

	resp, _ := e.post(t, probs[0].body)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain HTTP %d, want 503", resp.StatusCode)
	}
}

// /healthz follows the breaker: 200 while healthy, 503 with the breaker
// record while the serving platform's kernel path is open.
func TestServeHealthzFollowsBreaker(t *testing.T) {
	defer libshalom.ResetDegradations()
	e := newEnv(t, server.Config{})

	get := func() (int, map[string]any) {
		resp, err := http.Get(e.ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body
	}
	code, body := get()
	if code != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("healthy healthz = %d %v", code, body)
	}

	heal.Trip(e.lib.Platform().Name, guard.PathF32, guard.ReasonPanic, "injected for test", "NN 8x8x8")
	code, body = get()
	if code != http.StatusServiceUnavailable || body["status"] != "degraded" {
		t.Fatalf("tripped healthz = %d %v", code, body)
	}
	if body["breakers"] == nil {
		t.Fatalf("tripped healthz carries no breaker records: %v", body)
	}

	libshalom.ResetDegradations()
	code, body = get()
	if code != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("reset healthz = %d %v", code, body)
	}
}

// Malformed requests are 400 (and counted), wrong methods 405.
func TestServeRejectsMalformed(t *testing.T) {
	e := newEnv(t, server.Config{})
	resp, raw := e.post(t, []byte("{not json}\n"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("HTTP %d: %s, want 400", resp.StatusCode, raw)
	}
	if s := e.lib.Snapshot().Server; s.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", s.Rejected)
	}
	get, err := http.Get(e.ts.URL + "/v1/gemm")
	if err != nil {
		t.Fatal(err)
	}
	get.Body.Close()
	if get.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/gemm = HTTP %d, want 405", get.StatusCode)
	}
}

// The serving stats ride the ordinary snapshot, so a nil-telemetry Context
// simply reports zeros and the endpoints stay absent.
func TestServeWithoutTelemetry(t *testing.T) {
	lib := libshalom.New()
	defer lib.Close()
	srv := server.New(lib, server.Config{Window: time.Millisecond})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	direct := libshalom.New(libshalom.WithThreads(1))
	defer direct.Close()
	p := newProblem(t, direct, 11, 8, 8, 8, 0)
	resp, err := http.Post(ts.URL+"/v1/gemm", "application/octet-stream", bytes.NewReader(p.body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d, want 200 without telemetry", resp.StatusCode)
	}
	m, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	m.Body.Close()
	if m.StatusCode != http.StatusNotFound {
		t.Fatalf("/metrics without telemetry = HTTP %d, want 404", m.StatusCode)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}
