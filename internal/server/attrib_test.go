package server_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"libshalom"
	"libshalom/internal/attrib"
	"libshalom/internal/journal"
	"libshalom/internal/server"
)

// attribEnv is a serving stack with the performance-attribution engine
// attached. The engine is never Started: tests close windows with Step()
// so every assertion is deterministic.
type attribEnv struct {
	lib *libshalom.Context
	eng *attrib.Engine
	srv *server.Server
	ts  *httptest.Server
}

// newAttribEnv builds the stack; journalDir, when non-empty, additionally
// attaches a telemetry-fed journal writer so its metric families populate.
func newAttribEnv(t *testing.T, cfg server.Config, journalDir string) *attribEnv {
	t.Helper()
	lib := libshalom.New(libshalom.WithTelemetry(), libshalom.WithThreads(1))
	eng := attrib.New(attrib.Config{
		Recorder:       lib.TelemetryRecorder(),
		Window:         50 * time.Millisecond,
		MinWindowCalls: 1,
	})
	if eng == nil {
		t.Fatal("attrib.New returned nil with a live recorder")
	}
	cfg.Attrib = eng
	var jw *journal.Writer
	if journalDir != "" {
		var err error
		jw, err = journal.Open(journal.Options{Dir: journalDir, Telemetry: lib.TelemetryRecorder()})
		if err != nil {
			t.Fatalf("journal.Open: %v", err)
		}
		cfg.Journal = jw
	}
	e := &attribEnv{lib: lib, eng: eng, srv: server.New(lib, cfg)}
	e.ts = httptest.NewServer(e.srv)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := e.srv.Drain(ctx); err != nil {
			t.Errorf("cleanup drain: %v", err)
		}
		e.ts.Close()
		e.lib.Close()
		if jw != nil {
			if err := jw.Close(); err != nil {
				t.Errorf("journal close: %v", err)
			}
		}
	})
	return e
}

// get fetches one endpoint and returns status and body.
func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", url, err)
	}
	return resp.StatusCode, string(raw)
}

// The /attrib endpoint serves the engine's report, /healthz grows an
// attribution section, and /metrics appends the engine's gauge family to
// the recorder's exposition.
func TestServeAttribReportHealthzAndMetrics(t *testing.T) {
	e := newAttribEnv(t, server.Config{}, "")
	direct := libshalom.New(libshalom.WithThreads(1))
	defer direct.Close()
	for i := 0; i < 4; i++ {
		p := newProblem(t, direct, uint64(100+i), 32, 32, 32, 0)
		resp, raw := postEnv(t, e.ts.URL, p.body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST %d: HTTP %d: %s", i, resp.StatusCode, raw)
		}
	}
	e.eng.Step()

	status, body := get(t, e.ts.URL+"/attrib")
	if status != http.StatusOK {
		t.Fatalf("/attrib: HTTP %d: %s", status, body)
	}
	var rep attrib.Report
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatalf("/attrib body does not decode: %v\n%s", err, body)
	}
	if rep.Windows < 1 || len(rep.Candidates) == 0 || rep.Platform == "" {
		t.Fatalf("/attrib report incomplete: %+v", rep)
	}
	if c := rep.Candidates[0]; c.Calls == 0 || c.MeasuredGFLOPS <= 0 || c.PredictedGFLOPS <= 0 {
		t.Fatalf("/attrib top candidate has no account: %+v", c)
	}

	status, body = get(t, e.ts.URL+"/healthz")
	if status != http.StatusOK {
		t.Fatalf("/healthz: HTTP %d", status)
	}
	var hz struct {
		Attribution *struct {
			Windows      uint64  `json:"windows"`
			DriftEvents  uint64  `json:"drift_events"`
			Calibration  float64 `json:"calibration"`
			TopCandidate string  `json:"top_candidate"`
		} `json:"attribution"`
	}
	if err := json.Unmarshal([]byte(body), &hz); err != nil {
		t.Fatalf("/healthz body does not decode: %v", err)
	}
	if hz.Attribution == nil {
		t.Fatalf("/healthz has no attribution section:\n%s", body)
	}
	if hz.Attribution.Windows < 1 || hz.Attribution.TopCandidate == "" {
		t.Fatalf("/healthz attribution section incomplete: %+v", hz.Attribution)
	}

	status, body = get(t, e.ts.URL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("/metrics: HTTP %d", status)
	}
	for _, want := range []string{
		"libshalom_attrib_calls_total",    // the recorder's sketch counters
		"libshalom_attrib_rel_efficiency", // the engine's gauge family
		"libshalom_attrib_candidate_score",
		"libshalom_go_goroutines", // runtime essentials, sampled on scrape
		"libshalom_go_heap_objects_bytes",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}

// Without an engine, /attrib answers 404; without -pprof, the profiling
// surface stays unmounted.
func TestServeAttribAndPprofOffByDefault(t *testing.T) {
	e := newEnv(t, server.Config{})
	if status, _ := get(t, e.ts.URL+"/attrib"); status != http.StatusNotFound {
		t.Fatalf("/attrib without an engine: HTTP %d, want 404", status)
	}
	if status, _ := get(t, e.ts.URL+"/debug/pprof/"); status != http.StatusNotFound {
		t.Fatalf("/debug/pprof/ without Pprof: HTTP %d, want 404", status)
	}
}

// Pprof mounts the stdlib profiling handlers on the serving mux.
func TestServePprofOptIn(t *testing.T) {
	e := newEnv(t, server.Config{Pprof: true})
	status, body := get(t, e.ts.URL+"/debug/pprof/")
	if status != http.StatusOK {
		t.Fatalf("/debug/pprof/: HTTP %d", status)
	}
	if !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ index does not list profiles:\n%s", body)
	}
	if status, _ := get(t, e.ts.URL+"/debug/pprof/cmdline"); status != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline: HTTP %d", status)
	}
}

// postEnv posts one encoded request to an arbitrary base URL.
func postEnv(t *testing.T, base string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(base+"/v1/gemm", "application/octet-stream", strings.NewReader(string(body)))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("reading response: %v", err)
	}
	return resp, raw
}

// TestMetricsExpositionWellFormed is the exposition-contract test: it
// drives a fully-populated stack (journal on, attribution on, accepted and
// rejected traffic, closed windows) and validates every line /metrics
// emits against the Prometheus text format — HELP/TYPE pairing, metric
// and label name syntax, label escaping, float-parseable values, and no
// duplicate series across the combined recorder + runtime + engine page.
func TestMetricsExpositionWellFormed(t *testing.T) {
	e := newAttribEnv(t, server.Config{Pprof: true}, t.TempDir())
	direct := libshalom.New(libshalom.WithThreads(1))
	defer direct.Close()
	// Accepted traffic on two shape classes, one rejected request, and a
	// closed attribution window: every conditional family has samples.
	for i, dims := range [][3]int{{12, 12, 12}, {48, 48, 48}, {64, 96, 32}} {
		p := newProblem(t, direct, uint64(300+i), dims[0], dims[1], dims[2], 0)
		resp, raw := postEnv(t, e.ts.URL, p.body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST %v: HTTP %d: %s", dims, resp.StatusCode, raw)
		}
	}
	if resp, _ := postEnv(t, e.ts.URL, []byte("not a request\n")); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed request: HTTP %d, want 400", resp.StatusCode)
	}
	e.eng.Step()

	status, body := get(t, e.ts.URL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("/metrics: HTTP %d", status)
	}
	samples := validatePrometheus(t, body)
	if samples < 50 {
		t.Fatalf("suspiciously small exposition: %d samples", samples)
	}
	for _, want := range []string{"libshalom_journal_records_total", "libshalom_server_requests_rejected_total", "libshalom_attrib_rel_efficiency"} {
		if !strings.Contains(body, want) {
			t.Errorf("populated exposition missing %s", want)
		}
	}
}

// validatePrometheus parses a text-format (0.0.4) exposition with the
// stdlib alone and fails the test on any malformed line. It returns the
// number of sample lines seen.
func validatePrometheus(t *testing.T, text string) int {
	t.Helper()
	type family struct {
		help bool
		typ  string
	}
	families := map[string]*family{}
	series := map[string]int{} // canonical series key -> first line number
	samples := 0

	validName := func(s string) bool {
		for i, r := range s {
			switch {
			case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			case r >= '0' && r <= '9':
				if i == 0 {
					return false
				}
			default:
				return false
			}
		}
		return s != ""
	}
	validLabelName := func(s string) bool {
		for i, r := range s {
			switch {
			case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
			case r >= '0' && r <= '9':
				if i == 0 {
					return false
				}
			default:
				return false
			}
		}
		return s != ""
	}
	// familyOf resolves a sample name to its declared family, honouring
	// the histogram suffixes.
	familyOf := func(name string) (string, *family) {
		if f := families[name]; f != nil {
			return name, f
		}
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suf)
			if base != name {
				if f := families[base]; f != nil && f.typ == "histogram" {
					return base, f
				}
			}
		}
		return name, nil
	}

	for ln, line := range strings.Split(text, "\n") {
		ln++ // 1-indexed for messages
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, help, ok := strings.Cut(rest, " ")
			if !ok || help == "" || !validName(name) {
				t.Errorf("line %d: malformed HELP: %q", ln, line)
				continue
			}
			if families[name] != nil {
				t.Errorf("line %d: duplicate HELP for %s", ln, name)
				continue
			}
			families[name] = &family{help: true}
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, typ, ok := strings.Cut(rest, " ")
			if !ok || !validName(name) {
				t.Errorf("line %d: malformed TYPE: %q", ln, line)
				continue
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Errorf("line %d: invalid TYPE %q for %s", ln, typ, name)
			}
			f := families[name]
			if f == nil || !f.help {
				t.Errorf("line %d: TYPE for %s has no preceding HELP", ln, name)
				continue
			}
			if f.typ != "" {
				t.Errorf("line %d: duplicate TYPE for %s", ln, name)
			}
			f.typ = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // free-form comment
		}

		// Sample line: name[{labels}] value
		samples++
		nameEnd := strings.IndexAny(line, "{ ")
		if nameEnd < 0 {
			t.Errorf("line %d: no value: %q", ln, line)
			continue
		}
		name := line[:nameEnd]
		if !validName(name) {
			t.Errorf("line %d: invalid metric name %q", ln, name)
			continue
		}
		famName, fam := familyOf(name)
		if fam == nil || fam.typ == "" || !fam.help {
			t.Errorf("line %d: sample %s has no HELP/TYPE pair (family %s)", ln, name, famName)
		}
		rest := line[nameEnd:]
		var labels []string
		if rest[0] == '{' {
			i := 1
			for {
				if i < len(rest) && rest[i] == '}' {
					i++
					break
				}
				eq := strings.IndexByte(rest[i:], '=')
				if eq < 0 {
					t.Errorf("line %d: unterminated label set", ln)
					break
				}
				lname := rest[i : i+eq]
				if !validLabelName(lname) {
					t.Errorf("line %d: invalid label name %q", ln, lname)
				}
				i += eq + 1
				if i >= len(rest) || rest[i] != '"' {
					t.Errorf("line %d: label %s value is not quoted", ln, lname)
					break
				}
				i++
				var val strings.Builder
				closed := false
				for i < len(rest) {
					c := rest[i]
					if c == '\\' {
						if i+1 >= len(rest) {
							break
						}
						switch rest[i+1] {
						case '\\', '"', 'n':
							val.WriteByte(rest[i+1])
						default:
							t.Errorf("line %d: invalid escape \\%c in label %s", ln, rest[i+1], lname)
						}
						i += 2
						continue
					}
					if c == '"' {
						closed = true
						i++
						break
					}
					val.WriteByte(c)
					i++
				}
				if !closed {
					t.Errorf("line %d: unterminated label value for %s", ln, lname)
					break
				}
				labels = append(labels, lname+"="+val.String())
				if i < len(rest) && rest[i] == ',' {
					i++
				}
			}
			rest = rest[i:]
		}
		valueStr := strings.TrimSpace(rest)
		if fields := strings.Fields(valueStr); len(fields) > 0 {
			valueStr = fields[0] // a timestamp may follow; we never emit one
		}
		if _, err := strconv.ParseFloat(valueStr, 64); err != nil {
			t.Errorf("line %d: value %q does not parse: %v", ln, valueStr, err)
		}
		sort.Strings(labels)
		key := fmt.Sprintf("%s{%s}", name, strings.Join(labels, ","))
		if first, dup := series[key]; dup {
			t.Errorf("line %d: duplicate series %s (first at line %d)", ln, key, first)
		} else {
			series[key] = ln
		}
	}
	for name, f := range families {
		if !f.help || f.typ == "" {
			t.Errorf("family %s missing its HELP/TYPE pair", name)
		}
	}
	return samples
}
