package server

import (
	"net/http"
	"testing"
	"time"

	"libshalom"
	"libshalom/internal/journal"
)

// TestFlushPathAllocFree is the runtime twin of the //shalom:hotpath
// noalloc annotations on the coalescer's per-request flush work: answering
// an admitted request — queue-wait telemetry, flops release, result
// delivery — must not allocate. The static analyzer proves the property on
// the source; this pins it against the compiler's escape analysis.
func TestFlushPathAllocFree(t *testing.T) {
	lib := libshalom.New(libshalom.WithTelemetry())
	defer lib.Close()
	co := newCoalescer(lib, Config{}.withDefaults())

	p := &pending{
		req:  &Request{M: 8, N: 8, K: 8},
		enq:  time.Now(),
		done: make(chan result, 1),
	}
	flops := int64(p.req.Flops())

	allocs := testing.AllocsPerRun(200, func() {
		co.inFlight.Add(flops) // stand in for submit's admission
		p.waited = false
		co.recordWait(p, time.Now())
		co.finish(p, result{status: 200, batchSize: 1, queueWait: p.wait})
		<-p.done
	})
	if allocs != 0 {
		t.Errorf("flush answer path allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestAdmissionJournalDisabledAllocFree pins the journal's zero-cost-when-off
// contract on the admission path: the exact sequence of journal calls
// handleGEMM makes — Enabled gate, wire capture branch, Admit, Result — must
// be allocation-free on a nil *journal.Writer. Turning journaling off must
// cost the hot path nothing.
func TestAdmissionJournalDisabledAllocFree(t *testing.T) {
	var jw *journal.Writer
	req := &Request{M: 8, N: 8, K: 8, C32: make([]float32, 64)}
	now := time.Now()

	allocs := testing.AllocsPerRun(200, func() {
		var jHdr, jPayload []byte
		if jw.Enabled() {
			jHdr, jPayload, _ = wireParts(req)
		}
		jid := jw.Admit(now, jHdr, jPayload)
		if jw.Enabled() {
			rh := journal.HashF32s(req.C32)
			jw.Result(jid, http.StatusOK, 1, rh)
		}
	})
	if allocs != 0 {
		t.Errorf("disabled journal adds %.1f allocs/op on the admission path, want 0", allocs)
	}
}
