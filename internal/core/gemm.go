package core

import (
	"errors"
	"fmt"
	"time"

	"libshalom/internal/analytic"
	"libshalom/internal/faults"
	"libshalom/internal/guard"
	"libshalom/internal/heal"
	"libshalom/internal/kernels"
	"libshalom/internal/pack"
	"libshalom/internal/parallel"
	"libshalom/internal/platform"
	"libshalom/internal/telemetry"
)

// Config carries the per-call execution parameters of the driver.
type Config struct {
	// Plat selects the platform model whose cache capacities drive the
	// packing decision (§4.2) and blocking parameters. Defaults to
	// Kunpeng 920 when nil.
	Plat *platform.Platform
	// Threads is the parallel width; values < 2 run single-threaded.
	// The paper parallelizes only irregular-shaped GEMM (§6); callers are
	// expected to pass 1 for small inputs, and the public API does so.
	Threads int
	// Pool optionally supplies a shared worker pool. When nil and
	// Threads > 1 a transient pool is created for the call.
	Pool *parallel.Pool
	// NumericGuard enables the runtime numeric guard: operand and result
	// blocks are scanned for NaN/Inf, and a fast path that panics or
	// manufactures non-finite values from finite inputs is demoted to the
	// portable reference path (the call still succeeds, degraded).
	NumericGuard bool
	// CheckAlias makes batch calls validate up front that no two entries
	// write overlapping C storage, returning ErrAliasedBatch instead of
	// racing.
	CheckAlias bool
	// Deadline, when positive, bounds the call: parallel runs arm the
	// stuck-worker watchdog with it as the per-block budget (a block
	// exceeding it converts the call into a *guard.StuckWorkerError instead
	// of a hang), and batch calls additionally wrap their context with it so
	// unstarted entries are abandoned once it expires.
	Deadline time.Duration
	// RetryTransient retries a transiently failed block once on the
	// reference path instead of surfacing the failure: a fast path that
	// panics trips the breaker and the block is recomputed transparently —
	// the call succeeds, degraded. NumericGuard implies the same recovery
	// plus the NaN/Inf scan.
	RetryTransient bool
	// Tel is the optional telemetry recorder the call reports into: per-
	// shape metrics, phase trace spans, pool gauges. nil disables the layer;
	// the disabled hot path performs zero atomic writes and zero
	// allocations (probe-verified, see internal/telemetry).
	Tel *telemetry.Recorder
}

// poolObserver adapts cfg.Tel into the pool's Observer hook without handing
// the pool a typed-nil interface when telemetry is off.
func (c Config) poolObserver() parallel.Observer {
	if c.Tel == nil {
		return nil
	}
	return c.Tel
}

func (c Config) platform() *platform.Platform {
	if c.Plat != nil {
		return c.Plat
	}
	return platform.KP920()
}

// Float constrains the generic driver to the two GEMM precisions.
type Float interface {
	~float32 | ~float64
}

// kernelSet wires the generic driver to the precision-specific micro-kernels.
type kernelSet[T Float] struct {
	elemBytes int
	micro     func(mr, nr, kc int, alpha T, a []T, lda int, b []T, ldb int, beta T, c []T, ldc int)
	packB     func(mr, nr, kc int, alpha T, a []T, lda int, b []T, ldb int, beta T, c []T, ldc int, bc []T, nrTotal, jOff int)
	nt        func(mr, nr, kc int, alpha T, a []T, lda int, bT []T, ldbT int, beta T, c []T, ldc int)
	ntPack    func(mr, nr, kc int, alpha T, a []T, lda int, bT []T, ldbT int, beta T, c []T, ldc int, bc []T, nrTotal, jOff int)
	scale     func(mr, nr int, beta T, c []T, ldc int)
	packAT    func(dst []T, at []T, ldat, i0, k0, mc, kc int)
	// ref is the portable reference GEMM the guard demotes to when the
	// fast-path kernel family misbehaves (internal/guard fallback chain).
	ref func(transA, transB bool, m, n, k int, alpha T, a []T, lda int, b []T, ldb int, beta T, c []T, ldc int)
}

func f32Kernels() kernelSet[float32] {
	return kernelSet[float32]{
		elemBytes: 4,
		micro:     kernels.SGEMMMicro,
		packB:     kernels.SGEMMMicroPackB,
		nt:        kernels.SGEMMMicroNT,
		ntPack:    kernels.SGEMMMicroNTPack,
		scale:     kernels.SScaleRows,
		packAT:    pack.PackATransposedF32,
		ref:       kernels.SGEMMRef,
	}
}

func f64Kernels() kernelSet[float64] {
	return kernelSet[float64]{
		elemBytes: 8,
		micro:     kernels.DGEMMMicro,
		packB:     kernels.DGEMMMicroPackB,
		nt:        kernels.DGEMMMicroNT,
		ntPack:    kernels.DGEMMMicroNTPack,
		scale:     kernels.DScaleRows,
		packAT:    pack.PackATransposedF64,
		ref:       kernels.DGEMMRef,
	}
}

// SGEMM computes C = α·op(A)·op(B) + β·C in single precision with
// LibShalom's driver. op(A) is m×k and op(B) is k×n; lda/ldb/ldc are the
// row strides of the operands as stored.
func SGEMM(cfg Config, mode Mode, m, n, k int, alpha float32, a []float32, lda int, b []float32, ldb int, beta float32, c []float32, ldc int) error {
	return gemm[float32](cfg, f32Kernels(), mode, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
}

// DGEMM is the double-precision counterpart of SGEMM.
func DGEMM(cfg Config, mode Mode, m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) error {
	return gemm[float64](cfg, f64Kernels(), mode, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
}

func checkArgs[T Float](mode Mode, m, n, k int, a []T, lda int, b []T, ldb int, c []T, ldc int) error {
	if m < 0 || n < 0 || k < 0 {
		return fmt.Errorf("core: negative dimension m=%d n=%d k=%d", m, n, k)
	}
	arows, acols := m, k
	if mode.TransA() {
		arows, acols = k, m
	}
	brows, bcols := k, n
	if mode.TransB() {
		brows, bcols = n, k
	}
	if lda < max(1, acols) || ldb < max(1, bcols) || ldc < max(1, n) {
		return fmt.Errorf("core: leading dimension too small (lda=%d ldb=%d ldc=%d)", lda, ldb, ldc)
	}
	if need := sliceNeed(arows, acols, lda); len(a) < need {
		return fmt.Errorf("core: A has %d elements, needs %d", len(a), need)
	}
	if need := sliceNeed(brows, bcols, ldb); len(b) < need {
		return fmt.Errorf("core: B has %d elements, needs %d", len(b), need)
	}
	if need := sliceNeed(m, n, ldc); len(c) < need {
		return fmt.Errorf("core: C has %d elements, needs %d", len(c), need)
	}
	return nil
}

func sliceNeed(rows, cols, ld int) int {
	if rows == 0 || cols == 0 {
		return 0
	}
	return (rows-1)*ld + cols
}

func gemm[T Float](cfg Config, ks kernelSet[T], mode Mode, m, n, k int, alpha T, a []T, lda int, b []T, ldb int, beta T, c []T, ldc int) error {
	if err := checkArgs(mode, m, n, k, a, lda, b, ldb, c, ldc); err != nil {
		return err
	}
	tel := cfg.Tel
	prec := telemetry.PrecFor(ks.elemBytes)
	class := uint8(telemetry.ClassifyShape(m, n, k))
	flops := 2 * float64(m) * float64(n) * float64(k)
	callStart := tel.Now()
	callTid := tel.CallTid()
	if d := faults.SlowClassFire(class); d > 0 {
		// Chaos: a kernel that regressed on this workload regime. Timing
		// only — the delay lands inside the call's measured duration so the
		// attribution engine sees the class underperform its model.
		tel.FaultInjected(faults.SlowShapeClass)
		time.Sleep(d)
	}
	finish := func(kernel, outcome uint8, err error) error {
		tel.CallDone(prec, uint8(mode), class, kernel, outcome, callStart, flops)
		tel.Span(telemetry.PhaseCall, callTid, callStart, uint8(mode), prec, m, n, k)
		return err
	}
	if m == 0 || n == 0 {
		return finish(telemetry.KernelFast, telemetry.OutcomeOK, nil)
	}
	if alpha == 0 || k == 0 {
		scaleAll(ks, m, n, beta, c, ldc)
		return finish(telemetry.KernelFast, telemetry.OutcomeOK, nil)
	}
	plat := cfg.platform()
	// The plan phase: contract verification (memoised per platform — the
	// registration-time leg of the fallback chain, tripping the breaker of
	// any kernel family that fails), the breaker routing decision, the tile
	// solve and the blocking derivation.
	planStart := tel.Now()
	guard.VerifyContracts(plat)
	route, beganProbe := heal.RouteFor(plat.Name, guard.PathFor(ks.elemBytes))
	if beganProbe {
		tel.HealEvent(telemetry.HealBreakerProbe)
		tel.BreakerTransition(telemetry.BreakerOpen, telemetry.BreakerProbing)
	}
	if route == heal.RouteRef {
		tel.Span(telemetry.PhasePlan, callTid, planStart, uint8(mode), prec, m, n, k)
		ks.ref(mode.TransA(), mode.TransB(), m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
		return finish(telemetry.KernelRef, telemetry.OutcomeOK, nil)
	}
	tile := analytic.SolveForElem(ks.elemBytes)
	blk := analytic.BlockingFor(plat, ks.elemBytes)
	famPath := guard.PathFor(ks.elemBytes)
	tel.Span(telemetry.PhasePlan, callTid, planStart, uint8(mode), prec, m, n, k)

	if route == heal.RouteCanary {
		// Probing breaker: fast path shadowed by the reference, compared.
		// Canaries run single-threaded — the shadow doubles the work anyway,
		// and the probing window is short.
		if runCanary(cfg, ks, plat, tile, blk, mode, famPath, false, callTid, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc) {
			return finish(telemetry.KernelRef, telemetry.OutcomeDegraded, nil)
		}
		return finish(telemetry.KernelFast, telemetry.OutcomeOK, nil)
	}

	// Tuned dispatch override: when the autotuner has installed a candidate
	// tile for this (precision, shape class), route through the candidate's
	// private breaker. Probing runs canary-shadowed (the caller always gets
	// the reference-checked result); healthy serves the tuned tile directly;
	// an open tuned breaker — possible only in the instant before Trip evicts
	// the override — falls back to the incumbent tile, never the reference.
	// resolveOverride keeps every resulting variable single-assignment: the
	// threaded-task closures below escape, and reassigning a captured
	// variable would heap-box it on the zero-alloc single-threaded path too.
	effTile, effBlk, path, kern, ovCanary := resolveOverride(plat, ks.elemBytes, class, tile, blk, famPath)
	if ovCanary {
		if runCanary(cfg, ks, plat, effTile, effBlk, mode, path, true, callTid, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc) {
			return finish(telemetry.KernelRef, telemetry.OutcomeDegraded, nil)
		}
		return finish(telemetry.KernelTuned, telemetry.OutcomeOK, nil)
	}

	report := func(degraded bool, err error) error {
		switch {
		case err != nil:
			var stuck *guard.StuckWorkerError
			if errors.As(err, &stuck) {
				tel.HealEvent(telemetry.HealStuckWorker)
				return finish(kern, telemetry.OutcomeStuck, err)
			}
			if _, ok := err.(*guard.KernelPanicError); ok {
				return finish(kern, telemetry.OutcomePanic, err)
			}
			// Pool misuse (ErrClosed): the work never ran.
			return finish(kern, telemetry.OutcomeCancelled, err)
		case degraded:
			return finish(telemetry.KernelRef, telemetry.OutcomeDegraded, nil)
		default:
			return finish(kern, telemetry.OutcomeOK, nil)
		}
	}

	if cfg.Threads > 1 {
		part := analytic.PartitionFor(m, n, cfg.Threads)
		blocks := parallel.Blocks(m, n, part, effTile.MR, effTile.NR)
		if len(blocks) > 1 {
			pool := cfg.Pool
			if pool == nil {
				pool = parallel.NewPoolObserved(cfg.Threads, cfg.poolObserver())
				defer pool.Close()
			}
			// Each task owns a disjoint C sub-block, so per-task error and
			// degradation slots need no synchronization beyond the pool's
			// join.
			errs := make([]error, len(blocks))
			degr := make([]bool, len(blocks))
			tasks := make([]func(int), len(blocks))
			for bi, blkC := range blocks {
				bi, blkC := bi, blkC
				tasks[bi] = func(worker int) {
					degr[bi], errs[bi] = runGemmBlock(cfg, ks, plat, effTile, effBlk, mode, path,
						blkC, worker, callTid, k, alpha, a, lda, b, ldb, beta, c, ldc)
				}
			}
			barrierStart := tel.Now()
			poolErr := pool.RunWorkerCfg(parallel.RunConfig{TaskBudget: cfg.Deadline}, tasks)
			tel.Span(telemetry.PhaseBarrier, callTid, barrierStart, uint8(mode), prec, m, n, k)
			if poolErr != nil {
				// On a watchdog early return stragglers may still be writing
				// their errs/degr slots; the pool error must win before those
				// slices are read.
				return report(false, poolErr)
			}
			degraded := false
			for bi, err := range errs {
				if err != nil {
					return report(false, err)
				}
				degraded = degraded || degr[bi]
			}
			return report(degraded, nil)
		}
	}
	return report(runGemmBlock(cfg, ks, plat, effTile, effBlk, mode, path,
		parallel.Block{I0: 0, J0: 0, M: m, N: n}, -1, callTid,
		k, alpha, a, lda, b, ldb, beta, c, ldc))
}

// resolveOverride resolves the effective tile, blocking, breaker path and
// kernel label for one call: the tuned dispatch override's when one is
// installed for the (element size, shape class) key and its breaker is
// serving (canary true while it is probing), the incumbent's otherwise —
// including when the tuned breaker is open, which falls back to the
// incumbent tile on the fast path, never the reference. Returning fresh
// single-assignment values (instead of mutating the caller's) keeps the
// caller's closure captures by-value, preserving the zero-alloc hot path.
func resolveOverride(plat *platform.Platform, elemBytes int, class uint8, tile analytic.Tile, blk analytic.Blocking, famPath string) (analytic.Tile, analytic.Blocking, string, uint8, bool) {
	ov, ok := guard.OverrideFor(elemBytes, class)
	if !ok {
		return tile, blk, famPath, telemetry.KernelFast, false
	}
	ovTile := analytic.Tile{MR: ov.MR, NR: ov.NR}
	ovBlk := blk
	if ov.KC > 0 {
		ovBlk.KC = ov.KC
	}
	switch route, _ := heal.RouteFor(plat.Name, ov.Path); route {
	case heal.RouteCanary:
		return ovTile, ovBlk, ov.Path, telemetry.KernelTuned, true
	case heal.RouteFast:
		return ovTile, ovBlk, ov.Path, telemetry.KernelTuned, false
	}
	return tile, blk, famPath, telemetry.KernelFast, false
}

// runGemmBlock executes one C sub-block of a non-batch call through the
// hardened block runner; operand origins shift per block and mode. worker <
// 0 is the calling goroutine (single-threaded path). A plain function
// rather than a shared closure: the threaded tasks above would make such a
// closure escape, and that heap allocation would tax the single-threaded
// hot path too.
func runGemmBlock[T Float](cfg Config, ks kernelSet[T], plat *platform.Platform, tile analytic.Tile, blk analytic.Blocking, mode Mode, path string, bl parallel.Block, worker int, callTid int32, k int, alpha T, a []T, lda int, b []T, ldb int, beta T, c []T, ldc int) (bool, error) {
	aOff, ldaEff := threadAOffset(mode, bl.I0, lda)
	bOff := threadBOffset(mode, bl.J0, ldb)
	return runBlock(cfg, ks, plat, tile, blk, mode, path, bl, -1,
		telemetry.WorkerTid(worker, callTid), k,
		alpha, a[aOff:], ldaEff, b[bOff:], ldb,
		beta, c[bl.I0*ldc+bl.J0:], ldc)
}

// threadAOffset returns the element offset into A for a thread whose C block
// starts at row i0, plus the effective leading dimension (unchanged).
func threadAOffset(mode Mode, i0, lda int) (int, int) {
	if mode.TransA() {
		return i0, lda // A stored K×M: advancing M means advancing columns
	}
	return i0 * lda, lda
}

// threadBOffset returns the element offset into B for a thread whose C block
// starts at column j0.
func threadBOffset(mode Mode, j0, ldb int) int {
	if mode.TransB() {
		return j0 * ldb // B stored N×K: advancing N means advancing rows
	}
	return j0
}

func scaleAll[T Float](ks kernelSet[T], m, n int, beta T, c []T, ldc int) {
	if beta == 1 {
		return
	}
	ks.scale(m, n, beta, c, ldc)
}

// gemmST is the single-threaded Algorithm 1 loop nest for one C block. tel
// and tid carry the telemetry recorder (nil when disabled) and the trace
// lane of the executing worker; spans are recorded per kc-block — pack
// spans around the explicit A gather, kernel-batch spans around the
// micro-tile sweep (which includes the §5.3 fused B packing) — coarse
// enough to stay off the micro-tile critical path.
func gemmST[T Float](tel *telemetry.Recorder, tid int32, ks kernelSet[T], plat *platform.Platform, tile analytic.Tile, blk analytic.Blocking, mode Mode, m, n, k int, alpha T, a []T, lda int, b []T, ldb int, beta T, c []T, ldc int) {
	mr, nr := tile.MR, tile.NR
	mc, kc, nc := blk.MC, blk.KC, blk.NC
	prec := telemetry.PrecFor(ks.elemBytes)

	// §4.2 packing decision for B (NN/TN); NT/TT always pack (§4.3).
	sizeB := n * k * ks.elemBytes
	var bStrategy pack.Strategy
	if mode.TransB() {
		bStrategy = pack.ShouldPackBNT()
	} else {
		bStrategy = pack.ShouldPackBNN(sizeB, plat.L1.SizeBytes)
	}

	var bc []T
	if bStrategy != pack.NoPack {
		bc = make([]T, kc*nr)
	}
	var aBuf []T
	if mode.TransA() {
		aBuf = make([]T, mc*kc)
	}

	for jj := 0; jj < n; jj += nc {
		ncb := min(nc, n-jj)
		for ii := 0; ii < m; ii += mc {
			mcb := min(mc, m-ii)
			// Loop interchange (§3.3): kk runs inside ii so each A block's
			// rows are walked contiguously across the whole K extent.
			for kk := 0; kk < k; kk += kc {
				kcb := min(kc, k-kk)
				betaEff := alphaBeta(kk == 0, beta)
				// Effective A block accessor for this (ii, kk).
				var aBlk []T
				var ldaEff int
				if mode.TransA() {
					// §4.3: TN/TT gather the transposed A block into a
					// row-major buffer (the NT-style packing of A).
					packStart := tel.Now()
					ks.packAT(aBuf, a, lda, ii, kk, mcb, kcb)
					tel.Span(telemetry.PhasePack, tid, packStart, uint8(mode), prec, mcb, 0, kcb)
					aBlk, ldaEff = aBuf, kcb
				} else {
					aBlk, ldaEff = a[ii*lda+kk:], lda
				}
				kernStart := tel.Now()
				for j := 0; j < ncb; j += nr {
					nrb := min(nr, ncb-j)
					jAbs := jj + j
					cTile := c[ii*ldc+jAbs:]
					switch {
					case mode.TransB():
						// NT/TT: first micro-tile runs the inner-product
						// packing kernel (Fig 5/Alg 3), the rest consume Bc
						// with the 7×12 outer-product kernel.
						bT := b[jAbs*ldb+kk:]
						mrb := min(mr, mcb)
						ks.ntPack(mrb, nrb, kcb, alpha, aBlk, ldaEff, bT, ldb, betaEff, cTile, ldc, bc, nrb, 0)
						for i := mrb; i < mcb; i += mr {
							mrb2 := min(mr, mcb-i)
							ks.micro(mrb2, nrb, kcb, alpha, aBlk[i*ldaEff:], ldaEff, bc, nrb, betaEff, cTile[i*ldc:], ldc)
						}
					case bStrategy == pack.PackOverlap:
						// NN/TN with large B: pack the sliver inside the
						// first micro-tile (Alg 1 lines 6–8), overlapping
						// the copies with its FMAs; remaining tiles reuse
						// the L1-resident Bc (lines 9–11). The §5.3.2
						// lookahead depth t changes when elements are
						// packed, not what is computed; this portable
						// driver always packs the current sliver and the
						// timing model prices the t=1 variant.
						bBlk := b[kk*ldb+jAbs:]
						mrb := min(mr, mcb)
						ks.packB(mrb, nrb, kcb, alpha, aBlk, ldaEff, bBlk, ldb, betaEff, cTile, ldc, bc, nrb, 0)
						for i := mrb; i < mcb; i += mr {
							mrb2 := min(mr, mcb-i)
							ks.micro(mrb2, nrb, kcb, alpha, aBlk[i*ldaEff:], ldaEff, bc, nrb, betaEff, cTile[i*ldc:], ldc)
						}
					default:
						// Small B (fits L1): no packing at all (Alg 1
						// lines 12–15) — every tile streams B in place.
						bBlk := b[kk*ldb+jAbs:]
						for i := 0; i < mcb; i += mr {
							mrb2 := min(mr, mcb-i)
							ks.micro(mrb2, nrb, kcb, alpha, aBlk[i*ldaEff:], ldaEff, bBlk, ldb, betaEff, cTile[i*ldc:], ldc)
						}
					}
				}
				tel.Span(telemetry.PhaseKernelBatch, tid, kernStart, uint8(mode), prec, mcb, ncb, kcb)
			}
		}
	}
}

func alphaBeta[T Float](first bool, beta T) T {
	if first {
		return beta
	}
	return 1
}
