package core

import (
	"errors"
	"testing"
	"testing/quick"

	"libshalom/internal/mat"
	"libshalom/internal/parallel"
)

func makeBatch(t *testing.T, rng *mat.RNG, count int, mode Mode) ([]BatchEntry[float32], []*mat.F32) {
	t.Helper()
	batch := make([]BatchEntry[float32], count)
	wants := make([]*mat.F32, count)
	for i := range batch {
		m, n, k := rng.Intn(30)+1, rng.Intn(30)+1, rng.Intn(30)+1
		la := mat.RandomF32(m, k, rng)
		lb := mat.RandomF32(k, n, rng)
		a, b := la, lb
		ta, tb := mat.NoTrans, mat.NoTrans
		if mode.TransA() {
			a, ta = la.Transpose(), mat.Transpose
		}
		if mode.TransB() {
			b, tb = lb.Transpose(), mat.Transpose
		}
		c := mat.RandomF32(m, n, rng)
		want := c.Clone()
		mat.RefGEMMF32(ta, tb, 1.5, a, b, 0.5, want)
		wants[i] = want
		batch[i] = BatchEntry[float32]{
			M: m, N: n, K: k, Alpha: 1.5,
			A: a.Data, LDA: a.Stride, B: b.Data, LDB: b.Stride,
			Beta: 0.5, C: c.Data, LDC: c.Stride,
		}
	}
	return batch, wants
}

func checkBatch(t *testing.T, batch []BatchEntry[float32], wants []*mat.F32) {
	t.Helper()
	for i, e := range batch {
		got := &mat.F32{Rows: e.M, Cols: e.N, Stride: e.LDC, Data: e.C}
		if !got.Equal(wants[i], 1e-3) {
			t.Fatalf("batch entry %d wrong (max diff %g)", i, got.MaxDiff(wants[i]))
		}
	}
}

func TestBatchSerial(t *testing.T) {
	rng := mat.NewRNG(1)
	for _, mode := range Modes() {
		batch, wants := makeBatch(t, rng, 17, mode)
		if err := SGEMMBatch(Config{Threads: 1}, mode, batch); err != nil {
			t.Fatal(err)
		}
		checkBatch(t, batch, wants)
	}
}

func TestBatchParallelMatchesSerial(t *testing.T) {
	rng := mat.NewRNG(2)
	pool := parallel.NewPool(8)
	defer pool.Close()
	batch, wants := makeBatch(t, rng, 64, NN)
	if err := SGEMMBatch(Config{Threads: 8, Pool: pool}, NN, batch); err != nil {
		t.Fatal(err)
	}
	checkBatch(t, batch, wants)
}

func TestBatchProperty(t *testing.T) {
	f := func(seed uint16) bool {
		rng := mat.NewRNG(uint64(seed) + 31)
		mode := Modes()[rng.Intn(4)]
		threads := []int{1, 2, 5}[rng.Intn(3)]
		count := rng.Intn(12) + 1
		batch := make([]BatchEntry[float32], count)
		wants := make([]*mat.F32, count)
		for i := range batch {
			m, n, k := rng.Intn(20)+1, rng.Intn(20)+1, rng.Intn(20)+1
			la := mat.RandomF32(m, k, rng)
			lb := mat.RandomF32(k, n, rng)
			a, b := la, lb
			ta, tb := mat.NoTrans, mat.NoTrans
			if mode.TransA() {
				a, ta = la.Transpose(), mat.Transpose
			}
			if mode.TransB() {
				b, tb = lb.Transpose(), mat.Transpose
			}
			c := mat.RandomF32(m, n, rng)
			want := c.Clone()
			mat.RefGEMMF32(ta, tb, 2, a, b, -1, want)
			wants[i] = want
			batch[i] = BatchEntry[float32]{M: m, N: n, K: k, Alpha: 2,
				A: a.Data, LDA: a.Stride, B: b.Data, LDB: b.Stride, Beta: -1, C: c.Data, LDC: c.Stride}
		}
		if err := SGEMMBatch(Config{Threads: threads}, mode, batch); err != nil {
			return false
		}
		for i, e := range batch {
			got := &mat.F32{Rows: e.M, Cols: e.N, Stride: e.LDC, Data: e.C}
			if !got.Equal(wants[i], 1e-2) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBatchDGEMM(t *testing.T) {
	rng := mat.NewRNG(3)
	count := 9
	batch := make([]BatchEntry[float64], count)
	wants := make([]*mat.F64, count)
	for i := range batch {
		m := rng.Intn(23) + 1
		a := mat.RandomF64(m, m, rng)
		b := mat.RandomF64(m, m, rng)
		c := mat.NewF64(m, m)
		want := mat.NewF64(m, m)
		mat.RefGEMMF64(mat.NoTrans, mat.NoTrans, 1, a, b, 0, want)
		wants[i] = want
		batch[i] = BatchEntry[float64]{M: m, N: m, K: m, Alpha: 1,
			A: a.Data, LDA: a.Stride, B: b.Data, LDB: b.Stride, Beta: 0, C: c.Data, LDC: c.Stride}
	}
	if err := DGEMMBatch(Config{Threads: 4}, NN, batch); err != nil {
		t.Fatal(err)
	}
	for i, e := range batch {
		got := &mat.F64{Rows: e.M, Cols: e.N, Stride: e.LDC, Data: e.C}
		if !got.Equal(wants[i], 1e-10) {
			t.Fatalf("FP64 batch entry %d wrong", i)
		}
	}
}

func TestBatchValidationAtomic(t *testing.T) {
	rng := mat.NewRNG(4)
	good, _ := makeBatch(t, rng, 3, NN)
	before := append([]float32(nil), good[0].C...)
	bad := append(good, BatchEntry[float32]{M: 2, N: 2, K: 2, Alpha: 1, A: []float32{1}, LDA: 2, B: make([]float32, 4), LDB: 2, C: make([]float32, 4), LDC: 2})
	if err := SGEMMBatch(Config{Threads: 1}, NN, bad); err == nil {
		t.Fatal("malformed entry accepted")
	}
	for i := range before {
		if good[0].C[i] != before[i] {
			t.Fatal("validation failure must not run any entry")
		}
	}
}

func TestBatchEmptyAndDegenerate(t *testing.T) {
	if err := SGEMMBatch(Config{Threads: 4}, NN, nil); err != nil {
		t.Fatal(err)
	}
	// alpha=0 and k=0 entries scale C.
	c := []float32{2, 2, 2, 2}
	batch := []BatchEntry[float32]{
		{M: 2, N: 2, K: 0, Alpha: 1, A: nil, LDA: 1, B: nil, LDB: 2, Beta: 0.5, C: c, LDC: 2},
	}
	if err := SGEMMBatch(Config{Threads: 1}, NN, batch); err != nil {
		t.Fatal(err)
	}
	if c[0] != 1 {
		t.Fatal("k=0 entry not scaled")
	}
}

func TestCheckBatchAliasing(t *testing.T) {
	shared := make([]float32, 16)
	batch := []BatchEntry[float32]{
		{C: shared[:8]},
		{C: shared[4:12]},
	}
	if err := CheckBatchAliasing(batch); !errors.Is(err, ErrAliasedBatch) {
		t.Fatal("overlapping C extents not detected")
	}
	ok := []BatchEntry[float32]{
		{C: shared[:8]},
		{C: shared[8:]},
		{C: nil},
	}
	if err := CheckBatchAliasing(ok); err != nil {
		t.Fatalf("disjoint extents flagged: %v", err)
	}
}
