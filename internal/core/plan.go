package core

import (
	"fmt"
	"strings"

	"libshalom/internal/analytic"
	"libshalom/internal/pack"
	"libshalom/internal/parallel"
	"libshalom/internal/telemetry"
)

// Plan describes every decision the driver will take for a GEMM call,
// before any arithmetic happens: the micro-kernel tile, the blocking, the
// §4 packing strategy, the §5.3.2 lookahead depth, and the §6 parallel
// partition. It exists for introspection (tools, tests, documentation);
// the driver derives the same quantities internally.
//
// For parallel calls the packing decision is re-evaluated per thread on the
// thread's sub-block; Plan reports the decision for the whole problem and
// for one representative thread block.
type Plan struct {
	Mode      Mode
	ElemBytes int
	Tile      analytic.Tile
	Blocking  analytic.Blocking
	// ShapeClass is the telemetry workload regime of the problem — the
	// shape_class label its metrics are keyed by.
	ShapeClass telemetry.ShapeClass

	// BStrategy is the §4 decision for the whole problem's B footprint.
	BStrategy pack.Strategy
	// Depth is the §5.3.2 packing lookahead (0 = current sliver only).
	Depth pack.Depth
	// PackA reports whether the transposed A operand is gathered into a
	// row-major block buffer (TN/TT, §4.3).
	PackA bool

	Threads   int
	Partition analytic.Partition
	// ThreadBlockM/N is the representative per-thread C block.
	ThreadBlockM, ThreadBlockN int
	// ThreadBStrategy is the §4 decision one thread makes for its block.
	ThreadBStrategy pack.Strategy
}

// PlanFor computes the execution plan the driver would follow.
func PlanFor(cfg Config, mode Mode, m, n, k, elemBytes int) Plan {
	plat := cfg.platform()
	p := Plan{
		Mode:       mode,
		ElemBytes:  elemBytes,
		Tile:       analytic.SolveForElem(elemBytes),
		Blocking:   analytic.BlockingFor(plat, elemBytes),
		ShapeClass: telemetry.ClassifyShape(m, n, k),
		PackA:      mode.TransA(),
		Threads:    1,
	}
	decide := func(nn, kk int) pack.Strategy {
		if mode.TransB() {
			return pack.ShouldPackBNT()
		}
		return pack.ShouldPackBNN(nn*kk*elemBytes, plat.L1.SizeBytes)
	}
	p.BStrategy = decide(n, k)
	p.Depth = pack.DepthFor(n*k*elemBytes, plat.LLC().SizeBytes)
	p.ThreadBlockM, p.ThreadBlockN = m, n
	p.ThreadBStrategy = p.BStrategy
	p.Partition = analytic.Partition{TM: 1, TN: 1}

	if cfg.Threads > 1 && m > 0 && n > 0 {
		part := analytic.PartitionFor(m, n, cfg.Threads)
		blocks := parallel.Blocks(m, n, part, p.Tile.MR, p.Tile.NR)
		if len(blocks) > 1 {
			p.Threads = cfg.Threads
			p.Partition = part
			worst := blocks[0]
			for _, b := range blocks {
				if b.M*b.N > worst.M*worst.N {
					worst = b
				}
			}
			p.ThreadBlockM, p.ThreadBlockN = worst.M, worst.N
			p.ThreadBStrategy = decide(worst.N, k)
		}
	}
	return p
}

// String renders the plan for humans.
func (p Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "mode %s, %d-byte elements, shape class %s\n", p.Mode, p.ElemBytes, p.ShapeClass)
	fmt.Fprintf(&b, "micro-kernel tile: %dx%d (CMR %.2f, %d registers)\n", p.Tile.MR, p.Tile.NR, p.Tile.CMR, p.Tile.Regs)
	fmt.Fprintf(&b, "blocking: mc=%d kc=%d nc=%d\n", p.Blocking.MC, p.Blocking.KC, p.Blocking.NC)
	fmt.Fprintf(&b, "B packing: %s (lookahead t=%d)", p.BStrategy, int(p.Depth))
	if p.PackA {
		b.WriteString("; A gathered from transposed storage")
	}
	b.WriteByte('\n')
	if p.Threads > 1 {
		fmt.Fprintf(&b, "parallel: %d threads as Tm=%d x Tn=%d; per-thread block %dx%d (B packing there: %s)\n",
			p.Threads, p.Partition.TM, p.Partition.TN, p.ThreadBlockM, p.ThreadBlockN, p.ThreadBStrategy)
	} else {
		b.WriteString("single-threaded\n")
	}
	return b.String()
}
