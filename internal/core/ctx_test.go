package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"libshalom/internal/mat"
)

// pollLimitCtx is a deterministic cancellation source: Err returns nil for
// the first polls calls and context.Canceled afterwards. The batch runtime
// polls ctx exactly once before each entry on the serial path, so arming
// polls = p cancels the batch after exactly p completed entries.
type pollLimitCtx struct {
	polls int
	seen  int
}

func (c *pollLimitCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *pollLimitCtx) Done() <-chan struct{}       { return nil }
func (c *pollLimitCtx) Value(any) any               { return nil }
func (c *pollLimitCtx) Err() error {
	c.seen++
	if c.seen > c.polls {
		return context.Canceled
	}
	return nil
}

func sBatchFor(t *testing.T, entries int, seed uint64) ([]BatchEntry[float32], []*mat.F32) {
	t.Helper()
	rng := mat.NewRNG(seed)
	batch := make([]BatchEntry[float32], entries)
	var cs []*mat.F32
	for i := range batch {
		m, n, k := 9+i%5, 7+i%7, 11+i%3
		a := mat.RandomF32(m, k, rng)
		b := mat.RandomF32(k, n, rng)
		c := mat.RandomF32(m, n, rng)
		cs = append(cs, c)
		batch[i] = BatchEntry[float32]{M: m, N: n, K: k, Alpha: 1.5,
			A: a.Data, LDA: a.Stride, B: b.Data, LDB: b.Stride,
			Beta: 0.5, C: c.Data, LDC: c.Stride}
	}
	return batch, cs
}

// A batch cancelled mid-way must stop before the remaining entries and
// leave every completed entry's result bitwise identical to the
// uncancelled run's.
func TestBatchCtxCancelMidwayBitwiseIdentical(t *testing.T) {
	const entries = 10
	const stopAfter = 4

	// Uncancelled run: the reference results.
	full, fullC := sBatchFor(t, entries, 42)
	if err := SGEMMBatch(Config{Threads: 1}, NN, full); err != nil {
		t.Fatalf("uncancelled batch: %v", err)
	}

	// Identical inputs, cancelled after stopAfter entries.
	cancelled, cancelledC := sBatchFor(t, entries, 42)
	before := make([]*mat.F32, entries)
	for i, c := range cancelledC {
		before[i] = c.Clone()
	}
	ctx := &pollLimitCtx{polls: stopAfter}
	err := SGEMMBatchCtx(ctx, Config{Threads: 1}, NN, cancelled)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled through the chain", err)
	}
	var bce *BatchCancelError
	if !errors.As(err, &bce) {
		t.Fatalf("err = %T, want *BatchCancelError", err)
	}
	if bce.Completed != stopAfter || bce.Total != entries {
		t.Fatalf("accounting = %d/%d, want %d/%d", bce.Completed, bce.Total, stopAfter, entries)
	}
	for i := 0; i < entries; i++ {
		got, want := cancelledC[i], fullC[i]
		if i < stopAfter {
			for j := range got.Data {
				if got.Data[j] != want.Data[j] { // bitwise
					t.Fatalf("completed entry %d differs from uncancelled run at %d: %v vs %v",
						i, j, got.Data[j], want.Data[j])
				}
			}
			continue
		}
		for j := range got.Data {
			if got.Data[j] != before[i].Data[j] {
				t.Fatalf("entry %d ran after cancellation (element %d changed)", i, j)
			}
		}
	}
}

// A context cancelled before the call must prevent every entry from
// running, on both the serial and the pooled path.
func TestBatchCtxPreCancelled(t *testing.T) {
	for _, threads := range []int{1, 4} {
		batch, cs := sBatchFor(t, 8, 7)
		before := make([]*mat.F32, len(cs))
		for i, c := range cs {
			before[i] = c.Clone()
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		err := SGEMMBatchCtx(ctx, Config{Threads: threads}, NN, batch)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("threads=%d: err = %v, want context.Canceled", threads, err)
		}
		var bce *BatchCancelError
		if !errors.As(err, &bce) || bce.Completed != 0 {
			t.Fatalf("threads=%d: accounting = %+v, want 0 completed", threads, err)
		}
		for i, c := range cs {
			for j := range c.Data {
				if c.Data[j] != before[i].Data[j] {
					t.Fatalf("threads=%d: entry %d ran under a pre-cancelled ctx", threads, i)
				}
			}
		}
	}
}

// On the pooled path the completion accounting must agree exactly with the
// set of entries whose C changed: entries run whole or not at all.
func TestBatchCtxPooledAccountingMatchesWrites(t *testing.T) {
	const entries = 64
	batch, cs := sBatchFor(t, entries, 99)
	before := make([]*mat.F32, entries)
	for i, c := range cs {
		before[i] = c.Clone()
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	err := SGEMMBatchCtx(ctx, Config{Threads: 4}, NN, batch)
	touched := 0
	for i, c := range cs {
		for j := range c.Data {
			if c.Data[j] != before[i].Data[j] {
				touched++
				break
			}
		}
	}
	if err == nil {
		// The batch won the race; every entry must have run. (Entries with
		// beta=0.5 and random operands always change C.)
		if touched != entries {
			t.Fatalf("nil error but only %d/%d entries ran", touched, entries)
		}
		return
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	var bce *BatchCancelError
	if !errors.As(err, &bce) {
		t.Fatalf("err = %T, want *BatchCancelError", err)
	}
	if bce.Completed != touched {
		t.Fatalf("accounting says %d completed, but %d entries were written", bce.Completed, touched)
	}
}

// Batch validation rejects aliased C storage when CheckAlias is set, and
// accepts adjacent-but-disjoint views of one backing array.
func TestBatchAliasCheck(t *testing.T) {
	rng := mat.NewRNG(5)
	a := mat.RandomF32(4, 4, rng)
	backing := make([]float32, 64)
	mk := func(c []float32) BatchEntry[float32] {
		return BatchEntry[float32]{M: 4, N: 4, K: 4, Alpha: 1,
			A: a.Data, LDA: 4, B: a.Data, LDB: 4, Beta: 0, C: c, LDC: 4}
	}
	disjoint := []BatchEntry[float32]{mk(backing[0:16]), mk(backing[16:32])}
	if err := SGEMMBatch(Config{Threads: 1, CheckAlias: true}, NN, disjoint); err != nil {
		t.Fatalf("adjacent-but-disjoint views rejected: %v", err)
	}
	overlap := []BatchEntry[float32]{mk(backing[0:16]), mk(backing[8:24])}
	if err := SGEMMBatch(Config{Threads: 1, CheckAlias: true}, NN, overlap); !errors.Is(err, ErrAliasedBatch) {
		t.Fatalf("overlapping C: err = %v, want ErrAliasedBatch", err)
	}
	// Without the option the (racy) call is the caller's responsibility;
	// serial execution stays well-defined, so just assert it is accepted.
	if err := SGEMMBatch(Config{Threads: 1}, NN, overlap); err != nil {
		t.Fatalf("unchecked overlap rejected: %v", err)
	}
}
