package core

import (
	"testing"
)

// FuzzCheckArgs proves the driver's argument validation never panics and
// accepts exactly the calls the driver can execute in-bounds: whenever
// checkArgs accepts, the maximal element indices the loop nest can touch
// are inside the supplied slices, and whenever the independent validity
// predicate holds, checkArgs must not reject (no spurious errors).
func FuzzCheckArgs(f *testing.F) {
	f.Add(uint8(0), 7, 12, 8, 8, 12, 12, 56, 96, 84)
	f.Add(uint8(1), 0, 0, 0, 1, 1, 1, 0, 0, 0)
	f.Add(uint8(2), -1, 5, 5, 5, 5, 5, 25, 25, 25)
	f.Add(uint8(3), 5, 5, 5, 0, 5, 5, 25, 25, 25)
	f.Add(uint8(0), 3, 3, 3, 3, 3, 2, 9, 9, 9) // ldc too small
	f.Add(uint8(0), 3, 3, 3, 3, 3, 3, 8, 9, 9) // A short one element
	f.Fuzz(func(t *testing.T, modeRaw uint8, m, n, k, lda, ldb, ldc, lenA, lenB, lenC int) {
		mode := Mode(modeRaw % 4)
		// Bound allocations; dimensional validity is unrestricted.
		clampLen := func(l int) int {
			if l < 0 {
				return 0
			}
			return l % (1 << 16)
		}
		a := make([]float32, clampLen(lenA))
		b := make([]float32, clampLen(lenB))
		c := make([]float32, clampLen(lenC))

		err := checkArgs(mode, m, n, k, a, lda, b, ldb, c, ldc) // must never panic

		arows, acols := m, k
		if mode.TransA() {
			arows, acols = k, m
		}
		brows, bcols := k, n
		if mode.TransB() {
			brows, bcols = n, k
		}
		valid := m >= 0 && n >= 0 && k >= 0 &&
			lda >= max(1, acols) && ldb >= max(1, bcols) && ldc >= max(1, n) &&
			len(a) >= sliceNeed(arows, acols, lda) &&
			len(b) >= sliceNeed(brows, bcols, ldb) &&
			len(c) >= sliceNeed(m, n, ldc)
		if valid && err != nil {
			t.Fatalf("checkArgs rejected a valid call: mode=%v m=%d n=%d k=%d lda=%d ldb=%d ldc=%d lens=%d/%d/%d: %v",
				mode, m, n, k, lda, ldb, ldc, len(a), len(b), len(c), err)
		}
		if !valid && err == nil {
			t.Fatalf("checkArgs accepted an invalid call: mode=%v m=%d n=%d k=%d lda=%d ldb=%d ldc=%d lens=%d/%d/%d",
				mode, m, n, k, lda, ldb, ldc, len(a), len(b), len(c))
		}
		if err != nil {
			return
		}
		// Acceptance implies in-bounds access for the extreme indices of
		// every operand rectangle.
		if arows > 0 && acols > 0 && (arows-1)*lda+acols > len(a) {
			t.Fatalf("accepted A access out of bounds")
		}
		if brows > 0 && bcols > 0 && (brows-1)*ldb+bcols > len(b) {
			t.Fatalf("accepted B access out of bounds")
		}
		if m > 0 && n > 0 && (m-1)*ldc+n > len(c) {
			t.Fatalf("accepted C access out of bounds")
		}
		// And the driver itself must run the accepted call without
		// panicking (small problems only, to keep the fuzz fast).
		if m <= 32 && n <= 32 && k <= 32 {
			if err := SGEMM(Config{Threads: 1}, mode, m, n, k, 1.5, a, lda, b, ldb, 0.5, c, ldc); err != nil {
				t.Fatalf("driver rejected a validated call: %v", err)
			}
		}
	})
}
