package core

import (
	"fmt"
	"math"

	"libshalom/internal/analytic"
	"libshalom/internal/faults"
	"libshalom/internal/heal"
	"libshalom/internal/parallel"
	"libshalom/internal/platform"
	"libshalom/internal/telemetry"
)

// runCanary executes one call while its breaker is probing: the reference
// path runs first into a cloned shadow of the C rectangle, then the fast
// path runs into the real C (single-threaded, under panic isolation), and
// the two results are compared element-wise under the precision's tolerance.
//
// path names the breaker under probation — the kernel family's path
// (guard.PathFor) for healing canaries, or a tuned override's private path
// when the autotuner is proving a candidate tile on live traffic (tuned
// true; tile and blk then carry the candidate's parameters).
//
// On agreement the canary counts toward closing the breaker. On any
// disagreement — a fast-path panic, an element outside tolerance, or the
// CanaryMismatch/TunerBadCandidate injection points firing — the shadow
// (the correct reference result) is copied into C, so the caller always
// receives a correct answer, and the breaker re-opens with a doubled
// cooldown (for a tuned path, the trip also evicts the dispatch override,
// restoring the incumbent tile). The returned degraded flag reports whether
// the call fell back to the reference result.
func runCanary[T Float](cfg Config, ks kernelSet[T], plat *platform.Platform, tile analytic.Tile, blk analytic.Blocking, mode Mode, path string, tuned bool, tid int32, m, n, k int, alpha T, a []T, lda int, b []T, ldb int, beta T, c []T, ldc int) (degraded bool) {
	tel := cfg.Tel
	tel.HealEvent(telemetry.HealCanaryRun)

	// The shadow starts as a clone of C (dense, leading dimension n) so the
	// reference path sees the same beta·C term the fast path does.
	shadow := snapshotC(c, m, n, ldc)
	ks.ref(mode.TransA(), mode.TransB(), m, n, k, alpha, a, lda, b, ldb, beta, shadow, n)

	bl := parallel.Block{I0: 0, J0: 0, M: m, N: n}
	panicErr := protect(plat, mode, ks.elemBytes, bl, -1, func() {
		if faults.Fire(faults.PanicInKernel) {
			tel.FaultInjected(faults.PanicInKernel)
			panic(faults.InjectedPanicMsg)
		}
		gemmST(tel, tid, ks, plat, tile, blk, mode, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
	})
	if tuned && panicErr == nil && m > 0 && n > 0 && faults.Fire(faults.TunerBadCandidate) {
		// Chaos: a candidate that cleared every static proof yet computes a
		// wrong answer on live traffic. The corruption lands in the fast-path
		// result only — the comparison below must catch it and the shadow
		// must rescue the caller.
		tel.FaultInjected(faults.TunerBadCandidate)
		c[0] = T(math.NaN())
	}

	mismatch := ""
	switch {
	case panicErr != nil:
		mismatch = panicErr.Error()
	case !heal.Agrees(c, ldc, shadow, n, m, n, heal.Tolerance(ks.elemBytes)):
		mismatch = "canary disagreed with reference shadow"
	case faults.Fire(faults.CanaryMismatch):
		tel.FaultInjected(faults.CanaryMismatch)
		mismatch = "injected canary mismatch"
	}
	if mismatch != "" {
		// The reference shadow is the correct result; the call still succeeds.
		restoreC(c, shadow, m, n, ldc)
		shape := fmt.Sprintf("%s %dx%dx%d", mode, m, n, k)
		if heal.ReportMismatch(plat.Name, path, mismatch, shape) {
			tel.HealEvent(telemetry.HealBreakerOpen)
			tel.BreakerTransition(telemetry.BreakerProbing, telemetry.BreakerOpen)
		}
		tel.HealEvent(telemetry.HealCanaryMismatch)
		tel.DegradationEvent(telemetry.DegrCanary)
		return true
	}
	tel.HealEvent(telemetry.HealCanaryAgree)
	if heal.ReportAgree(plat.Name, path) {
		tel.HealEvent(telemetry.HealBreakerClose)
		tel.BreakerTransition(telemetry.BreakerProbing, telemetry.BreakerHealthy)
	}
	return false
}
