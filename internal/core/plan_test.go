package core

import (
	"strings"
	"testing"

	"libshalom/internal/pack"
	"libshalom/internal/platform"
)

func TestPlanSmallNNSkipsPacking(t *testing.T) {
	p := PlanFor(Config{Plat: platform.Phytium2000()}, NN, 32, 32, 32, 4)
	if p.BStrategy != pack.NoPack {
		t.Fatalf("small NN plan packs B: %v", p.BStrategy)
	}
	if p.Tile.MR != 7 || p.Tile.NR != 12 {
		t.Fatal("plan tile wrong")
	}
	if p.Threads != 1 {
		t.Fatal("small plan must be single-threaded")
	}
	if p.Depth != pack.DepthCurrent {
		t.Fatal("LLC-resident B must use t=0")
	}
}

func TestPlanNTAlwaysPacks(t *testing.T) {
	p := PlanFor(Config{}, NT, 8, 8, 8, 4)
	if p.BStrategy != pack.PackOverlap {
		t.Fatal("NT must always pack B (§4.3)")
	}
}

func TestPlanLargeNNPacksWithOverlap(t *testing.T) {
	p := PlanFor(Config{Plat: platform.Phytium2000()}, NN, 64, 4096, 4096, 4)
	if p.BStrategy != pack.PackOverlap {
		t.Fatal("beyond-L1 B must overlap-pack")
	}
	// 4096×4096 FP32 = 64 MB > Phytium LLC (2MB shared L2) → lookahead.
	if p.Depth != pack.DepthAhead {
		t.Fatal("beyond-LLC B must use t=1 (§5.3.2)")
	}
}

func TestPlanTransAGathers(t *testing.T) {
	if !PlanFor(Config{}, TN, 16, 16, 16, 4).PackA {
		t.Fatal("TN plan must gather A")
	}
	if PlanFor(Config{}, NT, 16, 16, 16, 4).PackA {
		t.Fatal("NT plan must not gather A")
	}
}

func TestPlanParallelPartition(t *testing.T) {
	p := PlanFor(Config{Threads: 64}, NT, 32, 10240, 5000, 4)
	if p.Threads != 64 {
		t.Fatalf("parallel plan reports %d threads", p.Threads)
	}
	if p.Partition.TN < p.Partition.TM {
		t.Fatalf("N-dominant shape partitioned %dx%d", p.Partition.TM, p.Partition.TN)
	}
	if p.ThreadBlockM != 32 || p.ThreadBlockN >= 10240 {
		t.Fatalf("thread block %dx%d implausible", p.ThreadBlockM, p.ThreadBlockN)
	}
	// A thread's B slice can fall under the L1 threshold even when the
	// whole B does not — the per-thread decision is re-evaluated.
	if p.ThreadBStrategy != pack.ShouldPackBNT() {
		t.Fatal("NT per-thread strategy must still pack")
	}
}

func TestPlanPerThreadDecisionDiffers(t *testing.T) {
	// NN with a B that exceeds L1 globally but fits per thread.
	plat := platform.KP920() // 64KB L1
	// B = 256×64 FP32 = 64KB > L1? exactly 64KB → NoPack (≤). Use 128 cols.
	p := PlanFor(Config{Plat: plat, Threads: 16}, NN, 256, 128, 256, 4)
	if p.BStrategy == pack.NoPack {
		t.Skip("global B unexpectedly fits L1")
	}
	if p.ThreadBlockN >= 128 {
		t.Fatalf("partition did not split N: %+v", p.Partition)
	}
	if p.ThreadBStrategy != pack.NoPack {
		t.Fatalf("per-thread B slice (%dx256) should fit L1", p.ThreadBlockN)
	}
}

func TestPlanString(t *testing.T) {
	s := PlanFor(Config{Threads: 64}, NT, 64, 50176, 576, 4).String()
	for _, frag := range []string{"7x12", "overlap", "Tn=", "per-thread block"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("plan rendering missing %q:\n%s", frag, s)
		}
	}
	s1 := PlanFor(Config{}, TN, 8, 8, 8, 8).String()
	if !strings.Contains(s1, "single-threaded") || !strings.Contains(s1, "A gathered") {
		t.Fatalf("TN plan rendering wrong:\n%s", s1)
	}
}
