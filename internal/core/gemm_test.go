package core

import (
	"testing"
	"testing/quick"

	"libshalom/internal/mat"
	"libshalom/internal/parallel"
	"libshalom/internal/platform"
)

// buildOperands creates random logical M×K A and K×N B stored according to
// mode, plus a random C. Returns stored matrices.
func buildOperands32(mode Mode, m, n, k int, rng *mat.RNG) (a, b, c *mat.F32) {
	la := mat.RandomF32(m, k, rng)
	lb := mat.RandomF32(k, n, rng)
	if mode.TransA() {
		la = la.Transpose()
	}
	if mode.TransB() {
		lb = lb.Transpose()
	}
	return la, lb, mat.RandomF32(m, n, rng)
}

func refWant32(mode Mode, alpha float32, a, b *mat.F32, beta float32, c *mat.F32) *mat.F32 {
	want := c.Clone()
	ta, tb := mat.NoTrans, mat.NoTrans
	if mode.TransA() {
		ta = mat.Transpose
	}
	if mode.TransB() {
		tb = mat.Transpose
	}
	mat.RefGEMMF32(ta, tb, alpha, a, b, beta, want)
	return want
}

func TestSGEMMAllModesSmall(t *testing.T) {
	rng := mat.NewRNG(11)
	for _, mode := range Modes() {
		for _, dims := range [][3]int{{1, 1, 1}, {7, 12, 4}, {8, 8, 8}, {13, 9, 21}, {23, 23, 23}, {50, 40, 30}, {64, 3, 100}} {
			m, n, k := dims[0], dims[1], dims[2]
			a, b, c := buildOperands32(mode, m, n, k, rng)
			want := refWant32(mode, 1.5, a, b, -0.5, c)
			got := c.Clone()
			if err := SGEMM(Config{}, mode, m, n, k, 1.5, a.Data, a.Stride, b.Data, b.Stride, -0.5, got.Data, got.Stride); err != nil {
				t.Fatalf("%v %v: %v", mode, dims, err)
			}
			if !got.Equal(want, 1e-3) {
				t.Fatalf("%v %v: max diff %g", mode, dims, got.MaxDiff(want))
			}
		}
	}
}

// TestSGEMMProperty drives random shapes, strides, scalars, modes, platforms
// and thread counts against the reference.
func TestSGEMMProperty(t *testing.T) {
	plats := platform.All()
	f := func(seed uint32) bool {
		rng := mat.NewRNG(uint64(seed) + 101)
		m, n, k := rng.Intn(96)+1, rng.Intn(96)+1, rng.Intn(64)+1
		mode := Modes()[rng.Intn(4)]
		alpha := float32(rng.Float64()*4 - 2)
		beta := float32(rng.Float64()*4 - 2)
		if rng.Intn(4) == 0 {
			beta = 0
		}
		if rng.Intn(8) == 0 {
			alpha = 0
		}
		threads := []int{1, 1, 2, 4, 7}[rng.Intn(5)]
		plat := plats[rng.Intn(len(plats))]
		a, b, c := buildOperands32(mode, m, n, k, rng)
		// Random extra stride on C to exercise non-compact views.
		cWide := mat.NewF32(m, n+rng.Intn(5))
		cv := cWide.View(0, 0, m, n)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				cv.Set(i, j, c.At(i, j))
			}
		}
		want := refWant32(mode, alpha, a, b, beta, c)
		if err := SGEMM(Config{Plat: plat, Threads: threads}, mode, m, n, k, alpha, a.Data, a.Stride, b.Data, b.Stride, beta, cv.Data, cv.Stride); err != nil {
			return false
		}
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				d := float64(cv.At(i, j)) - float64(want.At(i, j))
				if d > 1e-2 || d < -1e-2 {
					t.Logf("mode %v m%d n%d k%d t%d: C(%d,%d)=%v want %v", mode, m, n, k, threads, i, j, cv.At(i, j), want.At(i, j))
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestDGEMMAllModes(t *testing.T) {
	rng := mat.NewRNG(77)
	for _, mode := range Modes() {
		m, n, k := 23, 29, 17
		la := mat.RandomF64(m, k, rng)
		lb := mat.RandomF64(k, n, rng)
		a, b := la, lb
		if mode.TransA() {
			a = la.Transpose()
		}
		if mode.TransB() {
			b = lb.Transpose()
		}
		c := mat.RandomF64(m, n, rng)
		want := c.Clone()
		ta, tb := mat.NoTrans, mat.NoTrans
		if mode.TransA() {
			ta = mat.Transpose
		}
		if mode.TransB() {
			tb = mat.Transpose
		}
		mat.RefGEMMF64(ta, tb, 2, a, b, 0.25, want)
		if err := DGEMM(Config{}, mode, m, n, k, 2, a.Data, a.Stride, b.Data, b.Stride, 0.25, c.Data, c.Stride); err != nil {
			t.Fatal(err)
		}
		if !c.Equal(want, 1e-10) {
			t.Fatalf("%v: max diff %g", mode, c.MaxDiff(want))
		}
	}
}

func TestDGEMMProperty(t *testing.T) {
	f := func(seed uint32) bool {
		rng := mat.NewRNG(uint64(seed)*3 + 7)
		m, n, k := rng.Intn(48)+1, rng.Intn(48)+1, rng.Intn(48)+1
		mode := Modes()[rng.Intn(4)]
		threads := []int{1, 3}[rng.Intn(2)]
		la := mat.RandomF64(m, k, rng)
		lb := mat.RandomF64(k, n, rng)
		a, b := la, lb
		if mode.TransA() {
			a = la.Transpose()
		}
		if mode.TransB() {
			b = lb.Transpose()
		}
		c := mat.RandomF64(m, n, rng)
		want := c.Clone()
		ta, tb := mat.NoTrans, mat.NoTrans
		if mode.TransA() {
			ta = mat.Transpose
		}
		if mode.TransB() {
			tb = mat.Transpose
		}
		mat.RefGEMMF64(ta, tb, -1.25, a, b, 0.5, want)
		if err := DGEMM(Config{Threads: threads}, mode, m, n, k, -1.25, a.Data, a.Stride, b.Data, b.Stride, 0.5, c.Data, c.Stride); err != nil {
			return false
		}
		return c.Equal(want, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestLargeKMultipleBlocks forces several kc blocks so the beta-once logic
// and Bc reuse across kk are exercised.
func TestLargeKMultipleBlocks(t *testing.T) {
	rng := mat.NewRNG(5)
	m, n, k := 30, 40, 700 // k > kc for every platform
	for _, mode := range []Mode{NN, NT} {
		a, b, c := buildOperands32(mode, m, n, k, rng)
		want := refWant32(mode, 1, a, b, 1, c)
		got := c.Clone()
		if err := SGEMM(Config{Plat: platform.Phytium2000()}, mode, m, n, k, 1, a.Data, a.Stride, b.Data, b.Stride, 1, got.Data, got.Stride); err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want, 1e-2) {
			t.Fatalf("%v: max diff %g", mode, got.MaxDiff(want))
		}
	}
}

// TestIrregularParallelMatchesSerial checks the §6 parallel path bit-for-bit
// against the single-threaded path on an irregular shape.
func TestIrregularParallelMatchesSerial(t *testing.T) {
	rng := mat.NewRNG(6)
	m, n, k := 32, 1536, 96
	for _, mode := range []Mode{NN, NT} {
		a, b, c := buildOperands32(mode, m, n, k, rng)
		serial := c.Clone()
		parallelC := c.Clone()
		if err := SGEMM(Config{Threads: 1}, mode, m, n, k, 1, a.Data, a.Stride, b.Data, b.Stride, 0, serial.Data, serial.Stride); err != nil {
			t.Fatal(err)
		}
		pool := parallel.NewPool(8)
		defer pool.Close()
		if err := SGEMM(Config{Threads: 8, Pool: pool}, mode, m, n, k, 1, a.Data, a.Stride, b.Data, b.Stride, 0, parallelC.Data, parallelC.Stride); err != nil {
			t.Fatal(err)
		}
		if !parallelC.Equal(serial, 0) {
			t.Fatalf("%v: parallel result differs from serial (max %g)", mode, parallelC.MaxDiff(serial))
		}
	}
}

func TestAlphaZeroScalesOnly(t *testing.T) {
	c := mat.NewF32(3, 3)
	c.Fill(2)
	a := mat.NewF32(3, 3)
	b := mat.NewF32(3, 3)
	a.Fill(999)
	b.Fill(999)
	if err := SGEMM(Config{}, NN, 3, 3, 3, 0, a.Data, 3, b.Data, 3, 0.5, c.Data, 3); err != nil {
		t.Fatal(err)
	}
	if c.At(1, 1) != 1 {
		t.Fatalf("alpha=0 path wrong: %v", c.At(1, 1))
	}
}

func TestKZeroScalesOnly(t *testing.T) {
	c := mat.NewF64(2, 2)
	c.Fill(4)
	if err := DGEMM(Config{}, NN, 2, 2, 0, 3, []float64{0}, 1, []float64{0}, 2, 0.25, c.Data, 2); err != nil {
		t.Fatal(err)
	}
	if c.At(0, 0) != 1 {
		t.Fatal("k=0 path wrong")
	}
}

func TestZeroSizeNoop(t *testing.T) {
	if err := SGEMM(Config{}, NN, 0, 5, 3, 1, nil, 3, make([]float32, 15), 5, 0, nil, 5); err != nil {
		t.Fatalf("m=0 call errored: %v", err)
	}
	if err := SGEMM(Config{}, NN, 5, 0, 3, 1, make([]float32, 15), 3, nil, 1, 0, nil, 1); err != nil {
		t.Fatalf("n=0 call errored: %v", err)
	}
}

func TestArgValidation(t *testing.T) {
	c := make([]float32, 4)
	if err := SGEMM(Config{}, NN, -1, 2, 2, 1, c, 2, c, 2, 0, c, 2); err == nil {
		t.Fatal("negative m accepted")
	}
	if err := SGEMM(Config{}, NN, 2, 2, 2, 1, c, 1, c, 2, 0, c, 2); err == nil {
		t.Fatal("lda < k accepted")
	}
	if err := SGEMM(Config{}, NN, 2, 2, 2, 1, make([]float32, 3), 2, c, 2, 0, c, 2); err == nil {
		t.Fatal("short A accepted")
	}
	if err := SGEMM(Config{}, NN, 2, 2, 2, 1, c, 2, make([]float32, 3), 2, 0, c, 2); err == nil {
		t.Fatal("short B accepted")
	}
	if err := SGEMM(Config{}, NN, 2, 2, 2, 1, c, 2, c, 2, 0, make([]float32, 3), 2); err == nil {
		t.Fatal("short C accepted")
	}
	// Transposed shapes: lda must cover M for TN.
	if err := SGEMM(Config{}, TN, 4, 2, 2, 1, make([]float32, 8), 2, c, 2, 0, make([]float32, 8), 2); err == nil {
		t.Fatal("TN lda < m accepted")
	}
}

func TestModeHelpers(t *testing.T) {
	if NN.TransA() || NN.TransB() || !TT.TransA() || !TT.TransB() || NT.TransA() || !NT.TransB() || !TN.TransA() || TN.TransB() {
		t.Fatal("mode trans flags wrong")
	}
	for _, m := range Modes() {
		got, err := ParseMode(m.String())
		if err != nil || got != m {
			t.Fatalf("ParseMode round trip failed for %v", m)
		}
	}
	if _, err := ParseMode("XX"); err == nil {
		t.Fatal("bad mode accepted")
	}
	if Mode(9).String() == "" {
		t.Fatal("unknown mode String empty")
	}
}

func TestConfigDefaults(t *testing.T) {
	if (Config{}).platform().Name != "Kunpeng 920" {
		t.Fatal("default platform wrong")
	}
	ph := platform.Phytium2000()
	if (Config{Plat: ph}).platform() != ph {
		t.Fatal("explicit platform ignored")
	}
}
