package core

import (
	"fmt"
	"math"
	"runtime/debug"

	"libshalom/internal/analytic"
	"libshalom/internal/faults"
	"libshalom/internal/guard"
	"libshalom/internal/heal"
	"libshalom/internal/parallel"
	"libshalom/internal/platform"
	"libshalom/internal/telemetry"
)

// This file is the dynamic-hardening layer of the driver: every block
// computation (a thread's C sub-block, or one batch entry) runs through
// runBlock, which provides
//
//   - panic isolation, always on: a panicking fast path is recovered and
//     surfaced as a *guard.KernelPanicError instead of crashing the process
//     or killing a pool worker;
//   - the numeric guard, when Config.NumericGuard is set: if the fast path
//     panics or introduces NaN/Inf into a C block whose inputs were all
//     finite, the (platform, precision) kernel family is demoted, the block
//     is restored from a snapshot and recomputed on the portable reference
//     path, and the call still succeeds — degraded, recorded, correct.
//
// The faults package's injection points live here (and only fire when a
// test armed them), so the chaos suite exercises exactly the machinery
// production calls use.

// runBlock executes the fast path for one C block with panic isolation and
// (optionally) the numeric guard. a, b and c are the block-relative operand
// views the caller derived (the same views gemmST consumes); bl carries the
// absolute block coordinates for error reporting, entry the batch entry
// index (-1 outside batch calls), and tid the trace lane of the executing
// worker. path names the breaker a demotion trips: the kernel family's path
// for incumbent executions, or a tuned override's private path — tripping
// the latter evicts only that override (guard.Trip), leaving the family
// serving on the incumbent tile. The first return value reports whether the
// block was recomputed on the reference path after a demotion (the call
// degraded but succeeded).
func runBlock[T Float](cfg Config, ks kernelSet[T], plat *platform.Platform, tile analytic.Tile, blk analytic.Blocking, mode Mode, path string, bl parallel.Block, entry int, tid int32, k int, alpha T, a []T, lda int, b []T, ldb int, beta T, c []T, ldc int) (degraded bool, err error) {
	tel := cfg.Tel
	m, n := bl.M, bl.N
	blockStart := tel.Now()
	defer func() {
		tel.Span(telemetry.PhaseBlock, tid, blockStart, uint8(mode), telemetry.PrecFor(ks.elemBytes), m, n, k)
	}()
	ksEff := ks
	var inputsFinite bool
	var snap []T
	// The snapshot exists to undo a partial fast-path write before the
	// reference recompute. RetryTransient alone only needs it when beta != 0:
	// with beta == 0 the reference path overwrites C without reading it, so
	// no restore is required.
	if cfg.NumericGuard {
		if faults.Armed(faults.CorruptPack) {
			ksEff = corruptPackKernels(ks, tel)
		}
		inputsFinite = finiteOperands(mode, m, n, k, a, lda, b, ldb, beta, c, ldc)
		snap = snapshotC(c, m, n, ldc)
	} else if cfg.RetryTransient && beta != 0 {
		snap = snapshotC(c, m, n, ldc)
	}
	panicErr := protect(plat, mode, ks.elemBytes, bl, entry, func() {
		if faults.Fire(faults.PanicInKernel) {
			tel.FaultInjected(faults.PanicInKernel)
			panic(faults.InjectedPanicMsg)
		}
		gemmST(tel, tid, ksEff, plat, tile, blk, mode, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
		if cfg.NumericGuard && faults.Fire(faults.SpuriousNaN) {
			tel.FaultInjected(faults.SpuriousNaN)
			c[0] = T(math.NaN())
		}
	})
	if !cfg.NumericGuard && !cfg.RetryTransient {
		return false, panicErr
	}
	// shape is only rendered on the demotion paths; the healthy path stays
	// allocation-free beyond the guard's own snapshot.
	shape := func() string { return fmt.Sprintf("%s %dx%dx%d", mode, m, n, k) }
	// trip opens the breaker and emits the open events exactly once even
	// when several blocks of one call fail concurrently (Trip reports
	// whether this call recorded the trip).
	trip := func(reason guard.Reason, detail string, degr uint8) {
		if heal.Trip(plat.Name, path, reason, detail, shape()) {
			tel.HealEvent(telemetry.HealBreakerOpen)
			tel.BreakerTransition(telemetry.BreakerHealthy, telemetry.BreakerOpen)
		}
		tel.DegradationEvent(degr)
	}
	switch {
	case panicErr != nil:
		trip(guard.ReasonPanic, panicErr.Error(), telemetry.DegrPanic)
	case cfg.NumericGuard && inputsFinite && !finiteRect(c, m, n, ldc):
		trip(guard.ReasonNumeric, "fast path produced NaN/Inf from all-finite inputs",
			telemetry.DegrNumeric)
	default:
		return false, nil
	}
	// Tripped: restore the block and recompute once on the reference path —
	// the transient retry. The degraded call succeeds; the registry records
	// why, and the breaker keeps later calls off the fast path.
	tel.HealEvent(telemetry.HealRetry)
	if snap != nil {
		restoreC(c, snap, m, n, ldc)
	}
	ks.ref(mode.TransA(), mode.TransB(), m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
	return true, nil
}

// protect runs f, converting a panic into a structured KernelPanicError.
func protect(plat *platform.Platform, mode Mode, elemBytes int, bl parallel.Block, entry int, f func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &guard.KernelPanicError{
				Platform: plat.Name,
				Mode:     mode.String(),
				Kernel:   guard.PathFor(elemBytes),
				I0:       bl.I0, J0: bl.J0, M: bl.M, N: bl.N,
				Entry: entry,
				Value: r,
				Stack: debug.Stack(),
			}
		}
	}()
	f()
	return nil
}

// corruptPackKernels wraps the packing micro-kernels so the CorruptPack
// injection point can poison the packed-B panel right after it is filled;
// each fire is reported to tel (nil-safe) so the chaos suite can assert a
// one-to-one fault-to-event mapping.
func corruptPackKernels[T Float](ks kernelSet[T], tel *telemetry.Recorder) kernelSet[T] {
	packB, ntPack := ks.packB, ks.ntPack
	ks.packB = func(mr, nr, kc int, alpha T, a []T, lda int, b []T, ldb int, beta T, c []T, ldc int, bc []T, nrTotal, jOff int) {
		packB(mr, nr, kc, alpha, a, lda, b, ldb, beta, c, ldc, bc, nrTotal, jOff)
		if len(bc) > 0 && faults.Fire(faults.CorruptPack) {
			tel.FaultInjected(faults.CorruptPack)
			bc[0] = T(math.NaN())
		}
	}
	ks.ntPack = func(mr, nr, kc int, alpha T, a []T, lda int, bT []T, ldbT int, beta T, c []T, ldc int, bc []T, nrTotal, jOff int) {
		ntPack(mr, nr, kc, alpha, a, lda, bT, ldbT, beta, c, ldc, bc, nrTotal, jOff)
		if len(bc) > 0 && faults.Fire(faults.CorruptPack) {
			tel.FaultInjected(faults.CorruptPack)
			bc[0] = T(math.NaN())
		}
	}
	return ks
}

// finiteOperands scans the operand views of one block for NaN/Inf. The scan
// covers the rectangle each effective operand occupies (rows × cols through
// its leading dimension); C is scanned only when beta != 0, since beta == 0
// overwrites C without reading it.
func finiteOperands[T Float](mode Mode, m, n, k int, a []T, lda int, b []T, ldb int, beta T, c []T, ldc int) bool {
	arows, acols := m, k
	if mode.TransA() {
		arows, acols = k, m
	}
	brows, bcols := k, n
	if mode.TransB() {
		brows, bcols = n, k
	}
	if !finiteRect(a, arows, acols, lda) || !finiteRect(b, brows, bcols, ldb) {
		return false
	}
	if beta != 0 && !finiteRect(c, m, n, ldc) {
		return false
	}
	return true
}

// finiteRect reports whether every element of the rows×cols rectangle with
// leading dimension ld is finite.
func finiteRect[T Float](s []T, rows, cols, ld int) bool {
	for i := 0; i < rows; i++ {
		row := s[i*ld : i*ld+cols]
		for _, v := range row {
			f := float64(v)
			if math.IsNaN(f) || math.IsInf(f, 0) {
				return false
			}
		}
	}
	return true
}

// snapshotC copies the m×n C block out of its strided storage.
func snapshotC[T Float](c []T, m, n, ld int) []T {
	snap := make([]T, m*n)
	for i := 0; i < m; i++ {
		copy(snap[i*n:(i+1)*n], c[i*ld:i*ld+n])
	}
	return snap
}

// restoreC writes a snapshot back into the strided C block.
func restoreC[T Float](c, snap []T, m, n, ld int) {
	for i := 0; i < m; i++ {
		copy(c[i*ld:i*ld+n], snap[i*n:(i+1)*n])
	}
}
