// Package core implements LibShalom's GEMM driver — the paper's primary
// contribution. It follows Algorithm 1: the Goto loop nest with the L2/L3
// loops interchanged (the kc loop runs inside the mc loop, yielding
// contiguous walks over A and letting one packed B sliver serve a whole
// column of micro-tiles), a runtime packing decision instead of
// unconditional packing (§4), packing performed at the micro-kernel level
// overlapped with computation (§5.3), tile-aligned edge handling (§5.4) and
// the shape-aware two-level parallel partition (§6).
package core

import "fmt"

// Mode selects the GEMM transposition mode, following BLAS naming (§3.3):
// the first letter describes A, the second B; T means the operand is
// supplied transposed (A stored K×M, B stored N×K, both row-major).
type Mode uint8

const (
	// NN: C = α·A·B + β·C with A stored M×K and B stored K×N.
	NN Mode = iota
	// NT: B is supplied transposed (stored N×K).
	NT
	// TN: A is supplied transposed (stored K×M).
	TN
	// TT: both operands are supplied transposed.
	TT
)

// TransA reports whether A is supplied transposed.
func (m Mode) TransA() bool { return m == TN || m == TT }

// TransB reports whether B is supplied transposed.
func (m Mode) TransB() bool { return m == NT || m == TT }

// String returns "NN", "NT", "TN" or "TT".
func (m Mode) String() string {
	switch m {
	case NN:
		return "NN"
	case NT:
		return "NT"
	case TN:
		return "TN"
	case TT:
		return "TT"
	}
	return fmt.Sprintf("Mode(%d)", uint8(m))
}

// ParseMode converts "NN"/"NT"/"TN"/"TT" to a Mode.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "NN", "nn":
		return NN, nil
	case "NT", "nt":
		return NT, nil
	case "TN", "tn":
		return TN, nil
	case "TT", "tt":
		return TT, nil
	}
	return NN, fmt.Errorf("core: unknown GEMM mode %q", s)
}

// Modes lists all four modes in the paper's order.
func Modes() []Mode { return []Mode{NN, NT, TN, TT} }
