package core

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"
	"unsafe"

	"libshalom/internal/analytic"
	"libshalom/internal/faults"
	"libshalom/internal/guard"
	"libshalom/internal/heal"
	"libshalom/internal/parallel"
	"libshalom/internal/telemetry"
)

// BatchEntry is one independent GEMM of a batch. The paper's small-GEMM
// methodology (§7.4) parallelizes across independent problems rather than
// inside one small problem; Batch implements exactly that: every entry runs
// the single-threaded LibShalom driver, and the batch is spread over the
// worker pool.
type BatchEntry[T Float] struct {
	M, N, K int
	Alpha   T
	A       []T
	LDA     int
	B       []T
	LDB     int
	Beta    T
	C       []T
	LDC     int
}

// BatchCancelError reports a batch call abandoned because its context was
// cancelled: Completed entries ran to completion (their results are exactly
// what the uncancelled run would have produced — entries never run
// partially), the remaining Total-Completed entries were not started.
// Unwrap returns the context's error, so errors.Is(err, context.Canceled)
// and errors.Is(err, context.DeadlineExceeded) work as expected.
type BatchCancelError struct {
	Completed, Total int
	// Done[i] reports whether entry i ran to completion; len(Done) == Total.
	// Entries run whole or not at all, so a Done entry's C holds exactly the
	// uncancelled result and an un-Done entry's C is untouched — the per-entry
	// accounting a serving layer needs to answer each request individually.
	Done  []bool
	Cause error
}

func (e *BatchCancelError) Error() string {
	return fmt.Sprintf("core: batch cancelled after %d/%d entries: %v", e.Completed, e.Total, e.Cause)
}

// Unwrap returns the context error that caused the cancellation.
func (e *BatchCancelError) Unwrap() error { return e.Cause }

// SGEMMBatch executes a batch of independent FP32 GEMMs, all under the same
// transposition mode. Entries are validated up front; execution is
// all-or-nothing with respect to validation (no entry runs if any is
// malformed), and per-entry results are independent.
func SGEMMBatch(cfg Config, mode Mode, batch []BatchEntry[float32]) error {
	//shalom:allow ctxflow — the no-context convenience API is itself the root
	return gemmBatch(context.Background(), cfg, f32Kernels(), mode, batch)
}

// DGEMMBatch is the FP64 counterpart of SGEMMBatch.
func DGEMMBatch(cfg Config, mode Mode, batch []BatchEntry[float64]) error {
	//shalom:allow ctxflow — the no-context convenience API is itself the root
	return gemmBatch(context.Background(), cfg, f64Kernels(), mode, batch)
}

// SGEMMBatchCtx is SGEMMBatch with cooperative cancellation: the runtime
// polls ctx between entries (never inside one), and a cancelled context
// aborts the remaining entries with a *BatchCancelError carrying
// partial-completion accounting.
func SGEMMBatchCtx(ctx context.Context, cfg Config, mode Mode, batch []BatchEntry[float32]) error {
	return gemmBatch(ctx, cfg, f32Kernels(), mode, batch)
}

// DGEMMBatchCtx is the FP64 counterpart of SGEMMBatchCtx.
func DGEMMBatchCtx(ctx context.Context, cfg Config, mode Mode, batch []BatchEntry[float64]) error {
	return gemmBatch(ctx, cfg, f64Kernels(), mode, batch)
}

func gemmBatch[T Float](ctx context.Context, cfg Config, ks kernelSet[T], mode Mode, batch []BatchEntry[T]) error {
	if ctx == nil {
		ctx = context.Background() //shalom:allow ctxflow — nil-ctx callers opted out of cancellation
	}
	for i, e := range batch {
		if err := checkArgs(mode, e.M, e.N, e.K, e.A, e.LDA, e.B, e.LDB, e.C, e.LDC); err != nil {
			return fmt.Errorf("core: batch entry %d: %w", i, err)
		}
	}
	if cfg.CheckAlias {
		if err := CheckBatchAliasing(batch); err != nil {
			return err
		}
	}
	if len(batch) == 0 {
		return nil
	}
	if cfg.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Deadline)
		defer cancel()
	}
	plat := cfg.platform()
	guard.VerifyContracts(plat)
	path := guard.PathFor(ks.elemBytes)
	tile := analytic.SolveForElem(ks.elemBytes)
	blk := analytic.BlockingFor(plat, ks.elemBytes)

	tel := cfg.Tel
	prec := telemetry.PrecFor(ks.elemBytes)
	callTid := tel.CallTid()

	// completed counts entries that ran to the end; entries run whole or
	// not at all, so completed-entry results are identical to an
	// uncancelled run's. ran marks which entries those are (slots are
	// written by exactly one task each and read only after the join), so
	// cancellation telemetry can label the abandoned entries precisely and
	// BatchCancelError can carry per-entry accounting.
	var completed atomic.Int64
	ran := make([]bool, len(batch))

	execOne := func(worker, i int, e BatchEntry[T], class uint8) (bool, uint8, error) {
		if e.M == 0 || e.N == 0 {
			return false, telemetry.KernelFast, nil
		}
		if e.Alpha == 0 || e.K == 0 {
			scaleAll(ks, e.M, e.N, e.Beta, e.C, e.LDC)
			return false, telemetry.KernelFast, nil
		}
		// Routing is per entry, not per batch: a breaker that heals (or
		// trips) mid-batch takes effect from the next entry on.
		route, beganProbe := heal.RouteFor(plat.Name, path)
		if beganProbe {
			tel.HealEvent(telemetry.HealBreakerProbe)
			tel.BreakerTransition(telemetry.BreakerOpen, telemetry.BreakerProbing)
		}
		switch route {
		case heal.RouteRef:
			ks.ref(mode.TransA(), mode.TransB(), e.M, e.N, e.K, e.Alpha, e.A, e.LDA, e.B, e.LDB, e.Beta, e.C, e.LDC)
			return false, telemetry.KernelRef, nil
		case heal.RouteCanary:
			degraded := runCanary(cfg, ks, plat, tile, blk, mode, path, false,
				telemetry.WorkerTid(worker, callTid),
				e.M, e.N, e.K, e.Alpha, e.A, e.LDA, e.B, e.LDB, e.Beta, e.C, e.LDC)
			return degraded, telemetry.KernelFast, nil
		}
		// Tuned dispatch override for this entry's shape class — same
		// three-way routing as the non-batch driver (see resolveOverride):
		// probing runs canary-shadowed, healthy serves the tuned tile, open
		// falls back to the incumbent tile.
		effTile, effBlk, effPath, kern, ovCanary := resolveOverride(plat, ks.elemBytes, class, tile, blk, path)
		if ovCanary {
			degraded := runCanary(cfg, ks, plat, effTile, effBlk, mode, effPath, true,
				telemetry.WorkerTid(worker, callTid),
				e.M, e.N, e.K, e.Alpha, e.A, e.LDA, e.B, e.LDB, e.Beta, e.C, e.LDC)
			return degraded, telemetry.KernelTuned, nil
		}
		bl := parallel.Block{I0: 0, J0: 0, M: e.M, N: e.N}
		degraded, err := runBlock(cfg, ks, plat, effTile, effBlk, mode, effPath, bl, i,
			telemetry.WorkerTid(worker, callTid), e.K,
			e.Alpha, e.A, e.LDA, e.B, e.LDB, e.Beta, e.C, e.LDC)
		return degraded, kern, err
	}
	runOne := func(worker, i int, e BatchEntry[T]) error {
		start := tel.Now()
		class := uint8(telemetry.ClassifyShape(e.M, e.N, e.K))
		if d := faults.SlowClassFire(class); d > 0 {
			// Chaos: the batch (serving) path's copy of the slow-class
			// delay — inside the timed region, so the attribution engine
			// sees the seeded class underperform (scripts/attrib-smoke.sh).
			tel.FaultInjected(faults.SlowShapeClass)
			time.Sleep(d)
		}
		degraded, kernel, err := execOne(worker, i, e, class)
		if tel != nil {
			flops := 2 * float64(e.M) * float64(e.N) * float64(e.K)
			outcome := telemetry.OutcomeOK
			switch {
			case err != nil:
				outcome = telemetry.OutcomePanic
			case degraded:
				outcome, kernel = telemetry.OutcomeDegraded, telemetry.KernelRef
			}
			tel.CallDone(prec, uint8(mode), class, kernel, outcome, start, flops)
		}
		if err != nil {
			return err
		}
		ran[i] = true
		completed.Add(1)
		return nil
	}
	cancelErr := func() error {
		// Entries the cancellation abandoned are counted with outcome
		// "cancelled" so snapshot call totals always match entries issued.
		for i := range ran {
			if !ran[i] {
				e := batch[i]
				tel.CallEvent(prec, uint8(mode),
					uint8(telemetry.ClassifyShape(e.M, e.N, e.K)),
					telemetry.KernelFast, telemetry.OutcomeCancelled)
			}
		}
		return &BatchCancelError{Completed: int(completed.Load()), Total: len(batch), Done: ran, Cause: ctx.Err()}
	}

	threads := cfg.Threads
	if threads <= 1 || len(batch) == 1 {
		for i, e := range batch {
			if ctx.Err() != nil {
				return cancelErr()
			}
			if err := runOne(-1, i, e); err != nil {
				return err
			}
		}
		return nil
	}
	pool := cfg.Pool
	if pool == nil {
		pool = parallel.NewPoolObserved(threads, cfg.poolObserver())
		defer pool.Close()
	}
	// Chunk entries so tiny problems do not drown in task dispatch.
	chunk := (len(batch) + threads*4 - 1) / (threads * 4)
	if chunk < 1 {
		chunk = 1
	}
	var tasks []func(int)
	var errSlots []error
	for lo := 0; lo < len(batch); lo += chunk {
		hi := lo + chunk
		if hi > len(batch) {
			hi = len(batch)
		}
		lo, hi := lo, hi
		slot := len(errSlots)
		errSlots = append(errSlots, nil)
		tasks = append(tasks, func(worker int) {
			for i := lo; i < hi; i++ {
				if ctx.Err() != nil {
					return
				}
				if err := runOne(worker, i, batch[i]); err != nil {
					errSlots[slot] = err
					return
				}
			}
		})
	}
	barrierStart := tel.Now()
	poolErr := pool.RunWorkerCfg(parallel.RunConfig{Ctx: ctx, TaskBudget: cfg.Deadline}, tasks)
	tel.Span(telemetry.PhaseBarrier, callTid, barrierStart, uint8(mode), prec, len(batch), 0, 0)
	var stuck *guard.StuckWorkerError
	if errors.As(poolErr, &stuck) {
		// Watchdog early return: stragglers may still be writing errSlots
		// and the ran/completed accounting, so none of it may be read —
		// surface the typed error immediately.
		tel.HealEvent(telemetry.HealStuckWorker)
		return poolErr
	}
	for _, err := range errSlots {
		if err != nil {
			return err
		}
	}
	if poolErr != nil {
		if cause := ctx.Err(); cause != nil && errors.Is(poolErr, cause) {
			return cancelErr()
		}
		return poolErr
	}
	if ctx.Err() != nil {
		return cancelErr()
	}
	return nil
}

// ErrAliasedBatch is returned by CheckBatchAliasing when two entries write
// overlapping C storage.
var ErrAliasedBatch = errors.New("core: batch entries write overlapping C storage")

// CheckBatchAliasing detects entries whose C slices share underlying
// storage regions. The batch runner does not synchronize between entries,
// so aliased outputs race; callers can run this check in tests or debug
// builds, and batch calls run it up front when Config.CheckAlias is set.
// Detection compares the address extents of the C slices, so
// adjacent-but-disjoint views of one backing array pass.
func CheckBatchAliasing[T Float](batch []BatchEntry[T]) error {
	type extent struct{ lo, hi uintptr }
	var elem T
	size := uintptr(unsafe.Sizeof(elem))
	extents := make([]extent, 0, len(batch))
	for _, e := range batch {
		if len(e.C) == 0 {
			continue
		}
		lo := uintptr(unsafe.Pointer(unsafe.SliceData(e.C)))
		hi := lo + uintptr(len(e.C))*size
		for _, x := range extents {
			if lo < x.hi && x.lo < hi {
				return ErrAliasedBatch
			}
		}
		extents = append(extents, extent{lo, hi})
	}
	return nil
}
