package core

import (
	"errors"
	"fmt"
	"unsafe"

	"libshalom/internal/analytic"
	"libshalom/internal/parallel"
)

// BatchEntry is one independent GEMM of a batch. The paper's small-GEMM
// methodology (§7.4) parallelizes across independent problems rather than
// inside one small problem; Batch implements exactly that: every entry runs
// the single-threaded LibShalom driver, and the batch is spread over the
// worker pool.
type BatchEntry[T Float] struct {
	M, N, K int
	Alpha   T
	A       []T
	LDA     int
	B       []T
	LDB     int
	Beta    T
	C       []T
	LDC     int
}

// SGEMMBatch executes a batch of independent FP32 GEMMs, all under the same
// transposition mode. Entries are validated up front; execution is
// all-or-nothing with respect to validation (no entry runs if any is
// malformed), and per-entry results are independent.
func SGEMMBatch(cfg Config, mode Mode, batch []BatchEntry[float32]) error {
	return gemmBatch(cfg, f32Kernels(), mode, batch)
}

// DGEMMBatch is the FP64 counterpart of SGEMMBatch.
func DGEMMBatch(cfg Config, mode Mode, batch []BatchEntry[float64]) error {
	return gemmBatch(cfg, f64Kernels(), mode, batch)
}

func gemmBatch[T Float](cfg Config, ks kernelSet[T], mode Mode, batch []BatchEntry[T]) error {
	for i, e := range batch {
		if err := checkArgs(mode, e.M, e.N, e.K, e.A, e.LDA, e.B, e.LDB, e.C, e.LDC); err != nil {
			return fmt.Errorf("core: batch entry %d: %w", i, err)
		}
	}
	if len(batch) == 0 {
		return nil
	}
	plat := cfg.platform()
	tile := analytic.SolveForElem(ks.elemBytes)
	blk := analytic.BlockingFor(plat, ks.elemBytes)

	runOne := func(e BatchEntry[T]) {
		if e.M == 0 || e.N == 0 {
			return
		}
		if e.Alpha == 0 || e.K == 0 {
			scaleAll(ks, e.M, e.N, e.Beta, e.C, e.LDC)
			return
		}
		gemmST(ks, plat, tile, blk, mode, e.M, e.N, e.K, e.Alpha, e.A, e.LDA, e.B, e.LDB, e.Beta, e.C, e.LDC)
	}

	threads := cfg.Threads
	if threads <= 1 || len(batch) == 1 {
		for _, e := range batch {
			runOne(e)
		}
		return nil
	}
	pool := cfg.Pool
	if pool == nil {
		pool = parallel.NewPool(threads)
		defer pool.Close()
	}
	// Chunk entries so tiny problems do not drown in task dispatch.
	chunk := (len(batch) + threads*4 - 1) / (threads * 4)
	if chunk < 1 {
		chunk = 1
	}
	var tasks []func()
	for lo := 0; lo < len(batch); lo += chunk {
		hi := lo + chunk
		if hi > len(batch) {
			hi = len(batch)
		}
		sub := batch[lo:hi]
		tasks = append(tasks, func() {
			for _, e := range sub {
				runOne(e)
			}
		})
	}
	pool.Run(tasks)
	return nil
}

// ErrAliasedBatch is returned by CheckBatchAliasing when two entries write
// overlapping C storage.
var ErrAliasedBatch = errors.New("core: batch entries write overlapping C storage")

// CheckBatchAliasing detects entries whose C slices share underlying
// storage regions. The batch runner does not synchronize between entries,
// so aliased outputs race; callers can run this check in tests or debug
// builds. Detection compares the address extents of the C slices.
func CheckBatchAliasing[T Float](batch []BatchEntry[T]) error {
	type extent struct{ lo, hi uintptr }
	var elem T
	size := uintptr(unsafe.Sizeof(elem))
	extents := make([]extent, 0, len(batch))
	for _, e := range batch {
		if len(e.C) == 0 {
			continue
		}
		lo := uintptr(unsafe.Pointer(unsafe.SliceData(e.C)))
		hi := lo + uintptr(len(e.C))*size
		for _, x := range extents {
			if lo < x.hi && x.lo < hi {
				return ErrAliasedBatch
			}
		}
		extents = append(extents, extent{lo, hi})
	}
	return nil
}
