package mat

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewShapes(t *testing.T) {
	m := NewF32(3, 5)
	if m.Rows != 3 || m.Cols != 5 || m.Stride != 5 || len(m.Data) != 15 {
		t.Fatalf("unexpected F32 shape: %+v", m)
	}
	d := NewF64(4, 2)
	if d.Rows != 4 || d.Cols != 2 || d.Stride != 2 || len(d.Data) != 8 {
		t.Fatalf("unexpected F64 shape: %+v", d)
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewF32 with negative rows did not panic")
		}
	}()
	NewF32(-1, 3)
}

func TestAtSet(t *testing.T) {
	m := NewF32(2, 3)
	m.Set(1, 2, 7.5)
	if m.At(1, 2) != 7.5 {
		t.Fatalf("At(1,2) = %v, want 7.5", m.At(1, 2))
	}
	if m.Data[1*3+2] != 7.5 {
		t.Fatal("Set wrote to wrong linear location")
	}
}

func TestViewAliases(t *testing.T) {
	m := NewF64(4, 6)
	for i := 0; i < 4; i++ {
		for j := 0; j < 6; j++ {
			m.Set(i, j, float64(10*i+j))
		}
	}
	v := m.View(1, 2, 2, 3)
	if v.Rows != 2 || v.Cols != 3 || v.Stride != 6 {
		t.Fatalf("view shape wrong: %+v", v)
	}
	if v.At(0, 0) != 12 || v.At(1, 2) != 24 {
		t.Fatalf("view content wrong: %v %v", v.At(0, 0), v.At(1, 2))
	}
	v.Set(0, 0, -1)
	if m.At(1, 2) != -1 {
		t.Fatal("view does not alias parent storage")
	}
}

func TestViewBoundsPanic(t *testing.T) {
	m := NewF32(3, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-bounds view did not panic")
		}
	}()
	m.View(2, 2, 2, 2)
}

func TestViewZeroSize(t *testing.T) {
	m := NewF32(3, 3)
	v := m.View(1, 1, 0, 0)
	if v.Rows != 0 || v.Cols != 0 {
		t.Fatalf("zero view shape: %+v", v)
	}
}

func TestCloneIndependent(t *testing.T) {
	m := NewF32(5, 7)
	m.FillRandom(NewRNG(1))
	v := m.View(1, 1, 3, 4)
	c := v.Clone()
	if c.Stride != c.Cols {
		t.Fatalf("clone not compact: stride %d cols %d", c.Stride, c.Cols)
	}
	if !c.Equal(v, 0) {
		t.Fatal("clone differs from source")
	}
	c.Set(0, 0, 99)
	if v.At(0, 0) == 99 {
		t.Fatal("clone aliases source")
	}
}

func TestTransposeInvolution(t *testing.T) {
	check := func(rows, cols uint8) bool {
		r, c := int(rows%16)+1, int(cols%16)+1
		m := RandomF64(r, c, NewRNG(uint64(rows)*251+uint64(cols)+3))
		return m.Transpose().Transpose().Equal(m, 0)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTransposeElements(t *testing.T) {
	m := NewF32(2, 3)
	m.Set(0, 1, 5)
	m.Set(1, 2, 9)
	tr := m.Transpose()
	if tr.Rows != 3 || tr.Cols != 2 || tr.At(1, 0) != 5 || tr.At(2, 1) != 9 {
		t.Fatalf("transpose wrong: %v", tr)
	}
}

func TestFill(t *testing.T) {
	m := NewF64(3, 3)
	v := m.View(0, 0, 2, 2)
	v.Fill(4)
	if m.At(0, 0) != 4 || m.At(1, 1) != 4 {
		t.Fatal("fill missed view elements")
	}
	if m.At(2, 2) != 0 || m.At(0, 2) != 0 {
		t.Fatal("fill escaped the view")
	}
}

func TestEqualTolerance(t *testing.T) {
	a := NewF64(1, 1)
	b := NewF64(1, 1)
	a.Set(0, 0, 1.0)
	b.Set(0, 0, 1.0+1e-9)
	if !a.Equal(b, 1e-8) {
		t.Fatal("values within tolerance reported unequal")
	}
	if a.Equal(b, 1e-12) {
		t.Fatal("values outside tolerance reported equal")
	}
	c := NewF64(2, 1)
	if a.Equal(c, 1) {
		t.Fatal("shape mismatch reported equal")
	}
}

func TestEqualRelative(t *testing.T) {
	a := NewF64(1, 1)
	b := NewF64(1, 1)
	a.Set(0, 0, 1e12)
	b.Set(0, 0, 1e12*(1+1e-10))
	if !a.Equal(b, 1e-8) {
		t.Fatal("relatively-close large values reported unequal")
	}
}

func TestMaxDiff(t *testing.T) {
	a := NewF32(2, 2)
	b := NewF32(2, 2)
	b.Set(1, 0, 3)
	if d := a.MaxDiff(b); d != 3 {
		t.Fatalf("MaxDiff = %v, want 3", d)
	}
}

func TestFrobNorm(t *testing.T) {
	m := NewF64(1, 2)
	m.Set(0, 0, 3)
	m.Set(0, 1, 4)
	if n := m.FrobNorm(); math.Abs(n-5) > 1e-12 {
		t.Fatalf("FrobNorm = %v, want 5", n)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero-seeded RNG stuck at zero")
	}
}

func TestRNGRanges(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 1000; i++ {
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		if f := r.Float32(); f < 0 || f >= 1 {
			t.Fatalf("Float32 out of range: %v", f)
		}
		if n := r.Intn(10); n < 0 || n >= 10 {
			t.Fatalf("Intn out of range: %v", n)
		}
	}
}

func TestFillRandomRange(t *testing.T) {
	m := RandomF32(20, 20, NewRNG(3))
	var sum float64
	for _, v := range m.Data {
		if v < 0 || v >= 1 {
			t.Fatalf("random element out of (0,1): %v", v)
		}
		sum += float64(v)
	}
	mean := sum / float64(len(m.Data))
	if mean < 0.3 || mean > 0.7 {
		t.Fatalf("random fill mean implausible: %v", mean)
	}
}

func TestRefGEMMKnownValues(t *testing.T) {
	// [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
	a := NewF64(2, 2)
	copy(a.Data, []float64{1, 2, 3, 4})
	b := NewF64(2, 2)
	copy(b.Data, []float64{5, 6, 7, 8})
	c := NewF64(2, 2)
	RefGEMMF64(NoTrans, NoTrans, 1, a, b, 0, c)
	want := []float64{19, 22, 43, 50}
	for i, w := range want {
		if c.Data[i] != w {
			t.Fatalf("C[%d] = %v, want %v", i, c.Data[i], w)
		}
	}
}

func TestRefGEMMAlphaBeta(t *testing.T) {
	a := NewF32(1, 1)
	a.Set(0, 0, 2)
	b := NewF32(1, 1)
	b.Set(0, 0, 3)
	c := NewF32(1, 1)
	c.Set(0, 0, 10)
	RefGEMMF32(NoTrans, NoTrans, 2, a, b, 0.5, c)
	if got := c.At(0, 0); got != 17 { // 2*6 + 0.5*10
		t.Fatalf("alpha/beta result = %v, want 17", got)
	}
}

func TestRefGEMMTransModesAgree(t *testing.T) {
	// For every mode, computing with explicit pre-transposed operands under
	// NN must equal computing with the T flags set.
	rng := NewRNG(11)
	m, n, k := 4, 5, 3
	a := RandomF64(m, k, rng)
	b := RandomF64(k, n, rng)
	for _, ta := range []Trans{NoTrans, Transpose} {
		for _, tb := range []Trans{NoTrans, Transpose} {
			aOp, bOp := a, b
			if ta == Transpose {
				aOp = a.Transpose() // stored K×M, flag restores M×K
			}
			if tb == Transpose {
				bOp = b.Transpose()
			}
			want := NewF64(m, n)
			RefGEMMF64(NoTrans, NoTrans, 1, a, b, 0, want)
			got := NewF64(m, n)
			RefGEMMF64(ta, tb, 1, aOp, bOp, 0, got)
			if !got.Equal(want, 1e-12) {
				t.Fatalf("mode %v%v disagrees with NN", ta, tb)
			}
		}
	}
}

func TestRefGEMMShapePanic(t *testing.T) {
	a := NewF64(2, 3)
	b := NewF64(4, 2) // K mismatch: 3 vs 4
	c := NewF64(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch did not panic")
		}
	}()
	RefGEMMF64(NoTrans, NoTrans, 1, a, b, 0, c)
}

func TestTransString(t *testing.T) {
	if NoTrans.String() != "N" || Transpose.String() != "T" {
		t.Fatal("Trans.String mismatch")
	}
}

func TestViewOfViewComposes(t *testing.T) {
	m := RandomF64(8, 8, NewRNG(5))
	v := m.View(2, 2, 5, 5).View(1, 1, 3, 3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if v.At(i, j) != m.At(3+i, 3+j) {
				t.Fatal("nested view misaligned")
			}
		}
	}
}
