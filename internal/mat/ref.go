package mat

// Reference GEMM implementations. These are the correctness oracle for every
// optimized code path in the repository: a plain triple loop computing
// C = alpha*op(A)*op(B) + beta*C with op in {N, T} per operand, exactly the
// operation the paper's GEMM kernels implement (footnote 1 of the paper).

// Trans selects whether an operand is used as-is or transposed.
type Trans bool

const (
	// NoTrans uses the operand as stored.
	NoTrans Trans = false
	// Transpose uses the operand transposed.
	Transpose Trans = true
)

// String returns "N" or "T", following BLAS naming.
func (t Trans) String() string {
	if t == Transpose {
		return "T"
	}
	return "N"
}

// RefGEMMF32 computes C = alpha*op(A)*op(B) + beta*C in single precision.
// op(A) is M×K and op(B) is K×N; C is M×N. Dimensions are validated.
func RefGEMMF32(transA, transB Trans, alpha float32, a *F32, b *F32, beta float32, c *F32) {
	m, n := c.Rows, c.Cols
	k := opCols(transA, a.Rows, a.Cols)
	checkOp("A", transA, a.Rows, a.Cols, m, k)
	checkOp("B", transB, b.Rows, b.Cols, k, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var acc float64
			for p := 0; p < k; p++ {
				acc += float64(opAtF32(a, transA, i, p)) * float64(opAtF32(b, transB, p, j))
			}
			c.Set(i, j, alpha*float32(acc)+beta*c.At(i, j))
		}
	}
}

// RefGEMMF64 computes C = alpha*op(A)*op(B) + beta*C in double precision.
func RefGEMMF64(transA, transB Trans, alpha float64, a *F64, b *F64, beta float64, c *F64) {
	m, n := c.Rows, c.Cols
	k := opCols(transA, a.Rows, a.Cols)
	checkOp("A", transA, a.Rows, a.Cols, m, k)
	checkOp("B", transB, b.Rows, b.Cols, k, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var acc float64
			for p := 0; p < k; p++ {
				acc += opAtF64(a, transA, i, p) * opAtF64(b, transB, p, j)
			}
			c.Set(i, j, alpha*acc+beta*c.At(i, j))
		}
	}
}

func opCols(t Trans, rows, cols int) int {
	if t == Transpose {
		return rows
	}
	return cols
}

func checkOp(name string, t Trans, rows, cols, wantRows, wantCols int) {
	r, c := rows, cols
	if t == Transpose {
		r, c = cols, rows
	}
	if r != wantRows || c != wantCols {
		panic("mat: operand " + name + " has wrong shape for GEMM")
	}
}

func opAtF32(m *F32, t Trans, i, j int) float32 {
	if t == Transpose {
		return m.At(j, i)
	}
	return m.At(i, j)
}

func opAtF64(m *F64, t Trans, i, j int) float64 {
	if t == Transpose {
		return m.At(j, i)
	}
	return m.At(i, j)
}
