package mat

// This file provides a small deterministic PRNG (xorshift64*) so tests and
// benchmarks are reproducible without importing math/rand, and helpers to
// fill matrices with the random (0,1) values the paper uses (§7.2).

// RNG is a deterministic xorshift64* pseudo-random generator.
type RNG struct{ state uint64 }

// NewRNG returns a generator seeded with seed (zero is remapped to a fixed
// non-zero constant, since xorshift cannot leave the all-zero state).
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next raw 64-bit value.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Float64 returns a value uniformly distributed in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Float32 returns a value uniformly distributed in [0, 1).
func (r *RNG) Float32() float32 {
	return float32(r.Uint64()>>40) / float32(1<<24)
}

// Intn returns a value uniformly distributed in [0, n).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("mat: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// FillRandom populates m with uniform (0,1) values, mirroring the paper's
// matrix initialization (§7.2).
func (m *F32) FillRandom(rng *RNG) {
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Stride : i*m.Stride+m.Cols]
		for j := range row {
			row[j] = rng.Float32()
		}
	}
}

// FillRandom populates m with uniform (0,1) values.
func (m *F64) FillRandom(rng *RNG) {
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Stride : i*m.Stride+m.Cols]
		for j := range row {
			row[j] = rng.Float64()
		}
	}
}

// RandomF32 allocates a rows×cols matrix filled with uniform (0,1) values.
func RandomF32(rows, cols int, rng *RNG) *F32 {
	m := NewF32(rows, cols)
	m.FillRandom(rng)
	return m
}

// RandomF64 allocates a rows×cols matrix filled with uniform (0,1) values.
func RandomF64(rows, cols int, rng *RNG) *F64 {
	m := NewF64(rows, cols)
	m.FillRandom(rng)
	return m
}
