// Package mat provides the dense-matrix substrate used throughout the
// LibShalom reproduction: row-major FP32 and FP64 matrices with explicit
// leading dimensions, strided views, transposition helpers, deterministic
// random fills, tolerant comparison, and a naive reference GEMM that serves
// as the correctness oracle for every optimized code path.
package mat

import (
	"fmt"
	"math"
)

// F32 is a row-major single-precision matrix. Element (i,j) lives at
// Data[i*Stride+j]. Stride >= Cols; a larger stride describes a view into a
// wider parent matrix, exactly as BLAS leading dimensions do for row-major
// storage.
type F32 struct {
	Rows, Cols int
	Stride     int
	Data       []float32
}

// F64 is the double-precision counterpart of F32.
type F64 struct {
	Rows, Cols int
	Stride     int
	Data       []float64
}

// NewF32 allocates a dense rows×cols FP32 matrix with Stride == cols.
func NewF32(rows, cols int) *F32 {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: negative dimensions %dx%d", rows, cols))
	}
	return &F32{Rows: rows, Cols: cols, Stride: cols, Data: make([]float32, rows*cols)}
}

// NewF64 allocates a dense rows×cols FP64 matrix with Stride == cols.
func NewF64(rows, cols int) *F64 {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: negative dimensions %dx%d", rows, cols))
	}
	return &F64{Rows: rows, Cols: cols, Stride: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *F32) At(i, j int) float32 { return m.Data[i*m.Stride+j] }

// Set assigns element (i, j).
func (m *F32) Set(i, j int, v float32) { m.Data[i*m.Stride+j] = v }

// At returns element (i, j).
func (m *F64) At(i, j int) float64 { return m.Data[i*m.Stride+j] }

// Set assigns element (i, j).
func (m *F64) Set(i, j int, v float64) { m.Data[i*m.Stride+j] = v }

// View returns a rows×cols sub-matrix starting at (i, j) that aliases the
// receiver's storage.
func (m *F32) View(i, j, rows, cols int) *F32 {
	if i < 0 || j < 0 || rows < 0 || cols < 0 || i+rows > m.Rows || j+cols > m.Cols {
		panic(fmt.Sprintf("mat: view (%d,%d)+%dx%d out of %dx%d", i, j, rows, cols, m.Rows, m.Cols))
	}
	off := i*m.Stride + j
	end := off
	if rows > 0 && cols > 0 {
		end = off + (rows-1)*m.Stride + cols
	}
	return &F32{Rows: rows, Cols: cols, Stride: m.Stride, Data: m.Data[off:end:end]}
}

// View returns a rows×cols sub-matrix starting at (i, j) that aliases the
// receiver's storage.
func (m *F64) View(i, j, rows, cols int) *F64 {
	if i < 0 || j < 0 || rows < 0 || cols < 0 || i+rows > m.Rows || j+cols > m.Cols {
		panic(fmt.Sprintf("mat: view (%d,%d)+%dx%d out of %dx%d", i, j, rows, cols, m.Rows, m.Cols))
	}
	off := i*m.Stride + j
	end := off
	if rows > 0 && cols > 0 {
		end = off + (rows-1)*m.Stride + cols
	}
	return &F64{Rows: rows, Cols: cols, Stride: m.Stride, Data: m.Data[off:end:end]}
}

// Clone returns a compact deep copy (Stride == Cols).
func (m *F32) Clone() *F32 {
	c := NewF32(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		copy(c.Data[i*c.Stride:i*c.Stride+m.Cols], m.Data[i*m.Stride:i*m.Stride+m.Cols])
	}
	return c
}

// Clone returns a compact deep copy (Stride == Cols).
func (m *F64) Clone() *F64 {
	c := NewF64(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		copy(c.Data[i*c.Stride:i*c.Stride+m.Cols], m.Data[i*m.Stride:i*m.Stride+m.Cols])
	}
	return c
}

// Transpose returns a new compact matrix holding the transpose of m.
func (m *F32) Transpose() *F32 {
	t := NewF32(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Data[j*t.Stride+i] = m.Data[i*m.Stride+j]
		}
	}
	return t
}

// Transpose returns a new compact matrix holding the transpose of m.
func (m *F64) Transpose() *F64 {
	t := NewF64(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Data[j*t.Stride+i] = m.Data[i*m.Stride+j]
		}
	}
	return t
}

// Fill sets every element of m to v.
func (m *F32) Fill(v float32) {
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Stride : i*m.Stride+m.Cols]
		for j := range row {
			row[j] = v
		}
	}
}

// Fill sets every element of m to v.
func (m *F64) Fill(v float64) {
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Stride : i*m.Stride+m.Cols]
		for j := range row {
			row[j] = v
		}
	}
}

// Equal reports whether a and b have identical shape and all elements are
// within tol of one another (absolute-or-relative, whichever is looser).
func (a *F32) Equal(b *F32, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			if !close64(float64(a.At(i, j)), float64(b.At(i, j)), tol) {
				return false
			}
		}
	}
	return true
}

// Equal reports whether a and b have identical shape and all elements are
// within tol of one another (absolute-or-relative, whichever is looser).
func (a *F64) Equal(b *F64, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			if !close64(a.At(i, j), b.At(i, j), tol) {
				return false
			}
		}
	}
	return true
}

// MaxDiff returns the largest absolute element-wise difference between a and
// b, which must have identical shape.
func (a *F32) MaxDiff(b *F32) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("mat: MaxDiff shape mismatch")
	}
	var d float64
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			if v := math.Abs(float64(a.At(i, j)) - float64(b.At(i, j))); v > d {
				d = v
			}
		}
	}
	return d
}

// MaxDiff returns the largest absolute element-wise difference between a and
// b, which must have identical shape.
func (a *F64) MaxDiff(b *F64) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("mat: MaxDiff shape mismatch")
	}
	var d float64
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			if v := math.Abs(a.At(i, j) - b.At(i, j)); v > d {
				d = v
			}
		}
	}
	return d
}

func close64(a, b, tol float64) bool {
	d := math.Abs(a - b)
	if d <= tol {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return d <= tol*scale
}

// FrobNorm returns the Frobenius norm of m.
func (m *F64) FrobNorm() float64 {
	var s float64
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			v := m.At(i, j)
			s += v * v
		}
	}
	return math.Sqrt(s)
}

// FrobNorm returns the Frobenius norm of m.
func (m *F32) FrobNorm() float64 {
	var s float64
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			v := float64(m.At(i, j))
			s += v * v
		}
	}
	return math.Sqrt(s)
}

// String renders small matrices for debugging; large ones are summarized.
func (m *F32) String() string {
	if m.Rows*m.Cols > 64 {
		return fmt.Sprintf("F32{%dx%d stride=%d}", m.Rows, m.Cols, m.Stride)
	}
	s := ""
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			s += fmt.Sprintf("%8.3f ", m.At(i, j))
		}
		s += "\n"
	}
	return s
}
