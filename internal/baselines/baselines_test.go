package baselines

import (
	"testing"
	"testing/quick"

	"libshalom/internal/core"
	"libshalom/internal/mat"
	"libshalom/internal/platform"
)

func TestAllLibsAllModesSmall(t *testing.T) {
	rng := mat.NewRNG(42)
	for _, lib := range All() {
		for _, mode := range core.Modes() {
			for _, dims := range [][3]int{{5, 5, 5}, {8, 8, 8}, {13, 9, 21}, {23, 23, 23}, {40, 50, 60}} {
				m, n, k := dims[0], dims[1], dims[2]
				la := mat.RandomF32(m, k, rng)
				lb := mat.RandomF32(k, n, rng)
				a, b := la, lb
				if mode.TransA() {
					a = la.Transpose()
				}
				if mode.TransB() {
					b = lb.Transpose()
				}
				c := mat.RandomF32(m, n, rng)
				want := c.Clone()
				ta, tb := mat.NoTrans, mat.NoTrans
				if mode.TransA() {
					ta = mat.Transpose
				}
				if mode.TransB() {
					tb = mat.Transpose
				}
				mat.RefGEMMF32(ta, tb, 1.5, a, b, 0.5, want)
				if err := SGEMM(lib, nil, 1, mode, m, n, k, 1.5, a.Data, a.Stride, b.Data, b.Stride, 0.5, c.Data, c.Stride); err != nil {
					t.Fatalf("%v %v %v: %v", lib, mode, dims, err)
				}
				if !c.Equal(want, 1e-3) {
					t.Fatalf("%v %v %v: max diff %g", lib, mode, dims, c.MaxDiff(want))
				}
			}
		}
	}
}

func TestBaselineProperty(t *testing.T) {
	libs := All()
	plats := platform.All()
	f := func(seed uint32) bool {
		rng := mat.NewRNG(uint64(seed) + 999)
		lib := libs[rng.Intn(len(libs))]
		mode := core.Modes()[rng.Intn(4)]
		plat := plats[rng.Intn(3)]
		m, n, k := rng.Intn(70)+1, rng.Intn(70)+1, rng.Intn(50)+1
		threads := []int{1, 2, 4}[rng.Intn(3)]
		alpha := float32(rng.Float64()*2 - 1)
		beta := float32(rng.Float64()*2 - 1)
		la := mat.RandomF32(m, k, rng)
		lb := mat.RandomF32(k, n, rng)
		a, b := la, lb
		if mode.TransA() {
			a = la.Transpose()
		}
		if mode.TransB() {
			b = lb.Transpose()
		}
		c := mat.RandomF32(m, n, rng)
		want := c.Clone()
		ta, tb := mat.NoTrans, mat.NoTrans
		if mode.TransA() {
			ta = mat.Transpose
		}
		if mode.TransB() {
			tb = mat.Transpose
		}
		mat.RefGEMMF32(ta, tb, alpha, a, b, beta, want)
		if err := SGEMM(lib, plat, threads, mode, m, n, k, alpha, a.Data, a.Stride, b.Data, b.Stride, beta, c.Data, c.Stride); err != nil {
			return false
		}
		return c.Equal(want, 1e-2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDGEMMBaselines(t *testing.T) {
	rng := mat.NewRNG(50)
	m, n, k := 23, 23, 23 // CP2K-style FP64 shape
	la := mat.RandomF64(m, k, rng)
	lb := mat.RandomF64(k, n, rng)
	for _, lib := range All() {
		c := mat.RandomF64(m, n, rng)
		want := c.Clone()
		mat.RefGEMMF64(mat.NoTrans, mat.NoTrans, 1, la, lb, 0, want)
		if err := DGEMM(lib, nil, 1, core.NN, m, n, k, 1, la.Data, la.Stride, lb.Data, lb.Stride, 0, c.Data, c.Stride); err != nil {
			t.Fatal(err)
		}
		if !c.Equal(want, 1e-10) {
			t.Fatalf("%v FP64: max diff %g", lib, c.MaxDiff(want))
		}
	}
}

func TestParallelSchemesMatchSerial(t *testing.T) {
	rng := mat.NewRNG(51)
	m, n, k := 64, 512, 80
	la := mat.RandomF32(m, k, rng)
	lb := mat.RandomF32(k, n, rng)
	for _, lib := range []Lib{OpenBLAS, BLIS, ARMPL} {
		serial := mat.NewF32(m, n)
		par := mat.NewF32(m, n)
		if err := SGEMM(lib, nil, 1, core.NN, m, n, k, 1, la.Data, la.Stride, lb.Data, lb.Stride, 0, serial.Data, serial.Stride); err != nil {
			t.Fatal(err)
		}
		if err := SGEMM(lib, nil, 8, core.NN, m, n, k, 1, la.Data, la.Stride, lb.Data, lb.Stride, 0, par.Data, par.Stride); err != nil {
			t.Fatal(err)
		}
		if !par.Equal(serial, 0) {
			t.Fatalf("%v: parallel differs from serial", lib)
		}
	}
}

func TestBLASFEOAndLIBXSMMIgnoreThreads(t *testing.T) {
	// §7.4: BLASFEO has no multi-threaded mode; LIBXSMM's small path is
	// single-threaded. Requesting threads must still give correct results.
	rng := mat.NewRNG(52)
	m, n, k := 16, 16, 16
	la := mat.RandomF32(m, k, rng)
	lb := mat.RandomF32(k, n, rng)
	for _, lib := range []Lib{BLASFEO, LIBXSMM} {
		c := mat.NewF32(m, n)
		want := mat.NewF32(m, n)
		mat.RefGEMMF32(mat.NoTrans, mat.NoTrans, 1, la, lb, 0, want)
		if err := SGEMM(lib, nil, 64, core.NN, m, n, k, 1, la.Data, la.Stride, lb.Data, lb.Stride, 0, c.Data, c.Stride); err != nil {
			t.Fatal(err)
		}
		if !c.Equal(want, 1e-3) {
			t.Fatalf("%v with threads: wrong result", lib)
		}
	}
}

func TestLIBXSMMDirectPathBoundary(t *testing.T) {
	// 64^3 is within the JIT scope; 128^3 falls back to the packed path.
	// Both must be correct.
	rng := mat.NewRNG(53)
	for _, size := range []int{64, 128} {
		la := mat.RandomF32(size, size, rng)
		lb := mat.RandomF32(size, size, rng)
		c := mat.NewF32(size, size)
		want := mat.NewF32(size, size)
		mat.RefGEMMF32(mat.NoTrans, mat.NoTrans, 1, la, lb, 0, want)
		if err := SGEMM(LIBXSMM, nil, 1, core.NN, size, size, size, 1, la.Data, la.Stride, lb.Data, lb.Stride, 0, c.Data, c.Stride); err != nil {
			t.Fatal(err)
		}
		if !c.Equal(want, 1e-2) {
			t.Fatalf("LIBXSMM size %d: max diff %g", size, c.MaxDiff(want))
		}
	}
}

func TestSpecs(t *testing.T) {
	ob := SpecFor(OpenBLAS)
	if ob.MR != 8 || ob.NR != 4 || ob.Parallel != SchemeMSplit {
		t.Fatal("OpenBLAS spec wrong (paper: 8x4 edge kernel, Fig 6)")
	}
	if SpecFor(BLIS).Edge != EdgePad {
		t.Fatal("BLIS must pad edges (§2.2)")
	}
	if SpecFor(BLASFEO).Parallel != SchemeNone {
		t.Fatal("BLASFEO must be single-threaded (§7.4)")
	}
	if SpecFor(LIBXSMM).SmallDirectCube != 64 {
		t.Fatal("LIBXSMM design scope is (MNK)^(1/3) <= 64 (§9)")
	}
	if OpenBLAS.String() != "OpenBLAS" || len(All()) != 5 {
		t.Fatal("library listing wrong")
	}
}

func TestSplitForShapes(t *testing.T) {
	mBlocks := splitFor(SchemeMSplit, 640, 100, 4, 8, 4)
	for _, b := range mBlocks {
		if b.N != 100 {
			t.Fatal("M-split must not divide N")
		}
	}
	nBlocks := splitFor(SchemeNSplit, 100, 640, 4, 8, 4)
	for _, b := range nBlocks {
		if b.M != 100 {
			t.Fatal("N-split must not divide M")
		}
	}
	grid := splitFor(SchemeGrid, 1000, 1000, 16, 8, 4)
	if len(grid) != 16 {
		t.Fatalf("grid split produced %d blocks, want 16", len(grid))
	}
	if len(splitFor(SchemeNone, 10, 10, 8, 8, 4)) != 1 {
		t.Fatal("SchemeNone must not split")
	}
}

func TestEdgeArgValidation(t *testing.T) {
	c := make([]float32, 4)
	if err := SGEMM(OpenBLAS, nil, 1, core.NN, 2, 2, 2, 1, c, 1, c, 2, 0, c, 2); err == nil {
		t.Fatal("bad lda accepted")
	}
	if err := SGEMM(OpenBLAS, nil, 1, core.NN, -2, 2, 2, 1, c, 2, c, 2, 0, c, 2); err == nil {
		t.Fatal("negative m accepted")
	}
	if err := SGEMM(OpenBLAS, nil, 1, core.NN, 0, 2, 2, 1, nil, 2, c, 2, 0, c, 2); err != nil {
		t.Fatalf("m=0 rejected: %v", err)
	}
	cc := []float32{7}
	if err := SGEMM(OpenBLAS, nil, 1, core.NN, 1, 1, 0, 2, nil, 1, nil, 1, 0.5, cc, 1); err != nil {
		t.Fatal(err)
	}
	if cc[0] != 3.5 {
		t.Fatal("k=0 beta scaling wrong")
	}
}
