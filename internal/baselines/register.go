package baselines

import (
	"libshalom/internal/isa"
	"libshalom/internal/isacheck"
	"libshalom/internal/kernels"
)

// Baseline kernels register alongside the LibShalom catalogue so shalom-lint
// verifies them with the same footprint/tiling rigor. Their contracts do not
// claim the §5.4 pipelined discipline — the batch schedule is these
// libraries' documented behaviour (Fig 6a), not a defect in reproducing
// them — so the depdist thresholds stay unset and only the honest structural
// invariants are enforced.
func init() {
	// OpenBLAS's ARMv8 8×4 edge kernel: batch-scheduled ldp/ldr loads
	// ahead of each iteration's FMA block (Fig 6a).
	isacheck.Register(isacheck.Entry{
		Name:      "baseline/openblas-edge-8x4-batch-f32",
		Family:    "baseline",
		SymFamily: "edge-batch-f32",
		SymShape:  isacheck.Shape{MR: 8, NR: 4, KC: 16},
		Contract: isacheck.Contract{
			Kind: isacheck.KindEdge, Elem: 4,
			MR: 8, NR: 4, KC: 16,
			LDA: 8, LDB: 4, LDC: 4,
		},
		Build: func() *isa.Program {
			return kernels.BuildEdge8x4(kernels.EdgeSpec{Elem: 4, KC: 16,
				LDAp: 8, LDB: 4, LDC: 4, Schedule: kernels.Batch})
		},
	})
	// OpenBLAS's 8×4 main kernel shape in the batch schedule.
	isacheck.Register(isacheck.Entry{
		Name:      "baseline/openblas-main-8x4-f32",
		Family:    "baseline",
		SymFamily: "main-batch-f32",
		SymShape:  isacheck.Shape{MR: 8, NR: 4, KC: 8},
		Contract: isacheck.Contract{
			Kind: isacheck.KindMain, Elem: 4,
			MR: 8, NR: 4, KC: 8,
			LDA: 8, LDB: 4, LDC: 4,
			Accumulate: true,
		},
		Build: func() *isa.Program {
			return kernels.BuildMain(kernels.MainSpec{Elem: 4, MR: 8, NR: 4, KC: 8,
				LDA: 8, LDB: 4, LDC: 4, Accumulate: true, Schedule: kernels.Batch})
		},
	})
	// ARMPL's 8×8 main kernel shape (26 registers under Eq. 1).
	isacheck.Register(isacheck.Entry{
		Name:      "baseline/armpl-main-8x8-f32",
		Family:    "baseline",
		SymFamily: "main-batch-f32",
		SymShape:  isacheck.Shape{MR: 8, NR: 8, KC: 8},
		Contract: isacheck.Contract{
			Kind: isacheck.KindMain, Elem: 4,
			MR: 8, NR: 8, KC: 8,
			LDA: 8, LDB: 8, LDC: 8,
			Accumulate: true,
		},
		Build: func() *isa.Program {
			return kernels.BuildMain(kernels.MainSpec{Elem: 4, MR: 8, NR: 8, KC: 8,
				LDA: 8, LDB: 8, LDC: 8, Accumulate: true, Schedule: kernels.Batch})
		},
	})
}
