// Package baselines implements strategy-faithful stand-ins for the five
// libraries the paper compares against (§7.3): OpenBLAS, BLIS, ARMPL,
// BLASFEO and LIBXSMM. Each is a real, runnable GEMM built on the classic
// Goto loop nest (Fig 1) with that library's published packing, edge-case
// and parallelization strategy:
//
//   - OpenBLAS: always packs both operands in separate sequential passes,
//     8×4 ARMv8 micro-kernel with batch-scheduled loads (Fig 6a), dedicated
//     (smaller-tile) edge routines, one-dimensional M-split parallelism.
//   - BLIS: always packs both operands, 8×12 micro-kernel, pads edge tiles
//     with zeros up to the kernel size (§2.2), one-dimensional N-split
//     parallelism.
//   - ARMPL: OpenBLAS-like data flow with an 8×8 kernel and a fixed
//     near-square thread grid that ignores the matrix shape.
//   - BLASFEO: converts the whole operands to its packed (panel-major)
//     format up front, 8×8 kernel, single-threaded only (§7.4 excludes it
//     from parallel experiments).
//   - LIBXSMM: for (M·N·K)^(1/3) ≤ 64 JIT-generates a direct kernel that
//     consumes the operands without packing; larger inputs fall back to the
//     OpenBLAS-style path (§9: it is ineffective outside its design scope).
//
// These implementations are functionally exact GEMMs (property-tested
// against the reference); their performance characters — what the paper's
// figures measure — are reproduced by the matching personas in
// internal/perfsim, driven by the same strategy descriptors.
package baselines

import (
	"fmt"
	"math"

	"libshalom/internal/analytic"
	"libshalom/internal/core"
	"libshalom/internal/kernels"
	"libshalom/internal/pack"
	"libshalom/internal/parallel"
	"libshalom/internal/platform"
)

// Lib identifies one baseline library persona.
type Lib int

const (
	// OpenBLAS models the OpenBLAS ARMv8 back-end.
	OpenBLAS Lib = iota
	// BLIS models the BLIS framework's ARMv8 configuration.
	BLIS
	// ARMPL models the ARM Performance Libraries.
	ARMPL
	// BLASFEO models BLASFEO's panel-major small-matrix path.
	BLASFEO
	// LIBXSMM models LIBXSMM's JIT small-GEMM path.
	LIBXSMM
)

// All returns every baseline in the paper's listing order.
func All() []Lib { return []Lib{BLIS, OpenBLAS, ARMPL, LIBXSMM, BLASFEO} }

// ParallelScheme describes how a library distributes GEMM across threads.
type ParallelScheme int

const (
	// SchemeNone: no multi-threading (BLASFEO, §7.4).
	SchemeNone ParallelScheme = iota
	// SchemeMSplit: one-dimensional split of the M dimension.
	SchemeMSplit
	// SchemeNSplit: one-dimensional split of the N dimension.
	SchemeNSplit
	// SchemeGrid: fixed near-square two-dimensional grid, shape-oblivious.
	SchemeGrid
	// SchemeGridM: a shape-oblivious grid that leans toward the M
	// dimension (BLIS's auto-factorization strongly favors the ic loop),
	// roughly TM = 2·√T. §3.2's criticism — the partition ignores the
	// workload shape and manufactures edge cases — applies at full force
	// for small-M irregular inputs.
	SchemeGridM
)

// EdgePolicy describes how a library processes partial tiles (§2.2).
type EdgePolicy int

const (
	// EdgeDedicated uses separate smaller-tile routines (OpenBLAS style).
	EdgeDedicated EdgePolicy = iota
	// EdgePad zero-pads partial tiles up to the full kernel size (BLIS
	// style), spending full-tile flops on partial results.
	EdgePad
)

// Spec is the strategy descriptor of one baseline; internal/perfsim reads
// the same descriptor to build the library's timing persona.
type Spec struct {
	Name     string
	MR, NR   int
	Edge     EdgePolicy
	Parallel ParallelScheme
	// SmallDirectCube is LIBXSMM's design limit: inputs with
	// (M·N·K)^(1/3) ≤ SmallDirectCube bypass packing entirely via a JIT
	// kernel. Zero disables the direct path.
	SmallDirectCube int
	// PanelMajorUpfront marks BLASFEO's one-shot conversion of whole
	// operands to the packed format before any compute.
	PanelMajorUpfront bool
	// KernelEfficiency scales the persona's steady-state kernel quality in
	// the timing model (ARMPL's hand tuning vs generic kernels); the
	// functional path ignores it.
	KernelEfficiency float64
}

// SpecFor returns the strategy descriptor of a library.
func SpecFor(lib Lib) Spec {
	switch lib {
	case OpenBLAS:
		return Spec{Name: "OpenBLAS", MR: 8, NR: 4, Edge: EdgeDedicated, Parallel: SchemeMSplit, KernelEfficiency: 0.88}
	case BLIS:
		return Spec{Name: "BLIS", MR: 8, NR: 12, Edge: EdgePad, Parallel: SchemeGrid, KernelEfficiency: 0.88}
	case ARMPL:
		return Spec{Name: "ARMPL", MR: 8, NR: 8, Edge: EdgeDedicated, Parallel: SchemeGridM, KernelEfficiency: 0.90}
	case BLASFEO:
		return Spec{Name: "BLASFEO", MR: 8, NR: 8, Edge: EdgeDedicated, Parallel: SchemeNone, PanelMajorUpfront: true, KernelEfficiency: 1.0}
	case LIBXSMM:
		return Spec{Name: "LIBXSMM", MR: 8, NR: 4, Edge: EdgeDedicated, Parallel: SchemeNone, SmallDirectCube: 64, KernelEfficiency: 1.0}
	}
	panic("baselines: unknown library")
}

// String returns the library name.
func (l Lib) String() string { return SpecFor(l).Name }

// SGEMM runs the baseline's FP32 GEMM: C = α·op(A)·op(B) + β·C.
func SGEMM(lib Lib, plat *platform.Platform, threads int, mode core.Mode, m, n, k int, alpha float32, a []float32, lda int, b []float32, ldb int, beta float32, c []float32, ldc int) error {
	return blGemm[float32](lib, plat, threads, mode, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc, f32ops())
}

// DGEMM runs the baseline's FP64 GEMM.
func DGEMM(lib Lib, plat *platform.Platform, threads int, mode core.Mode, m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) error {
	return blGemm[float64](lib, plat, threads, mode, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc, f64ops())
}

type ops[T core.Float] struct {
	elemBytes int
	micro     func(mr, nr, kc int, alpha T, a []T, lda int, b []T, ldb int, beta T, c []T, ldc int)
	scale     func(mr, nr int, beta T, c []T, ldc int)
	packB     func(dst []T, b []T, ldb, k0, j0, kc, nc int)
	packBT    func(dst []T, bt []T, ldbt, k0, j0, kc, nc int)
	packA     func(dst []T, a []T, lda, i0, k0, mc, kc int)
	packAT    func(dst []T, at []T, ldat, i0, k0, mc, kc int)
}

func f32ops() ops[float32] {
	return ops[float32]{
		elemBytes: 4,
		micro:     kernels.SGEMMMicro,
		scale:     kernels.SScaleRows,
		packB:     pack.PackBF32,
		packBT:    pack.PackBTransposedF32,
		packA:     pack.PackAF32,
		packAT:    pack.PackATransposedF32,
	}
}

func f64ops() ops[float64] {
	return ops[float64]{
		elemBytes: 8,
		micro:     kernels.DGEMMMicro,
		scale:     kernels.DScaleRows,
		packB:     pack.PackBF64,
		packBT:    pack.PackBTransposedF64,
		packA:     pack.PackAF64,
		packAT:    pack.PackATransposedF64,
	}
}

func blGemm[T core.Float](lib Lib, plat *platform.Platform, threads int, mode core.Mode, m, n, k int, alpha T, a []T, lda int, b []T, ldb int, beta T, c []T, ldc int, o ops[T]) error {
	if err := checkDims(mode, m, n, k, len(a), lda, len(b), ldb, len(c), ldc); err != nil {
		return err
	}
	if m == 0 || n == 0 {
		return nil
	}
	if alpha == 0 || k == 0 {
		if beta != 1 {
			o.scale(m, n, beta, c, ldc)
		}
		return nil
	}
	if plat == nil {
		plat = platform.KP920()
	}
	spec := SpecFor(lib)
	if spec.Parallel == SchemeNone {
		threads = 1
	}
	if threads > 1 {
		blocks := splitFor(spec.Parallel, m, n, threads, spec.MR, spec.NR)
		if len(blocks) > 1 {
			pool := parallel.NewPool(threads)
			defer pool.Close()
			tasks := make([]func(), len(blocks))
			for i, blk := range blocks {
				blk := blk
				tasks[i] = func() {
					aOff := blk.I0 * lda
					if mode.TransA() {
						aOff = blk.I0
					}
					bOff := blk.J0
					if mode.TransB() {
						bOff = blk.J0 * ldb
					}
					gotoGemm(spec, plat, mode, blk.M, blk.N, k, alpha, a[aOff:], lda, b[bOff:], ldb, beta, c[blk.I0*ldc+blk.J0:], ldc, o)
				}
			}
			return pool.Run(tasks)
		}
	}
	gotoGemm(spec, plat, mode, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc, o)
	return nil
}

// splitFor produces the library's thread decomposition of C.
func splitFor(s ParallelScheme, m, n, threads, mr, nr int) []parallel.Block {
	switch s {
	case SchemeMSplit:
		return parallel.Blocks(m, n, analytic.Partition{TM: threads, TN: 1}, mr, nr)
	case SchemeNSplit:
		return parallel.Blocks(m, n, analytic.Partition{TM: 1, TN: threads}, mr, nr)
	case SchemeGrid:
		// Near-square factorization of the thread count, oblivious to the
		// C shape (the behaviour §3.2 criticizes).
		tm := int(math.Sqrt(float64(threads)))
		for threads%tm != 0 {
			tm--
		}
		return parallel.Blocks(m, n, analytic.Partition{TM: tm, TN: threads / tm}, mr, nr)
	case SchemeGridM:
		p := GridMPartition(threads)
		return parallel.Blocks(m, n, p, mr, nr)
	default:
		return []parallel.Block{{I0: 0, J0: 0, M: m, N: n}}
	}
}

// gotoGemm is the conventional Goto loop nest (Fig 1): jj → kk → [pack Bc]
// → ii → [pack Ac] → GEBP, with both operands always packed sequentially.
// LIBXSMM's small-cube direct path bypasses it entirely.
func gotoGemm[T core.Float](spec Spec, plat *platform.Platform, mode core.Mode, m, n, k int, alpha T, a []T, lda int, b []T, ldb int, beta T, c []T, ldc int, o ops[T]) {
	if spec.SmallDirectCube > 0 && cubeRoot(m, n, k) <= spec.SmallDirectCube && !mode.TransA() && !mode.TransB() {
		directGemm(spec, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc, o)
		return
	}
	blk := analytic.BlockingFor(plat, o.elemBytes)
	mc, kc, nc := blk.MC, blk.KC, blk.NC

	bc := make([]T, kc*nc)
	ac := make([]T, mc*kc)
	var padC []T
	if spec.Edge == EdgePad {
		padC = make([]T, spec.MR*spec.NR)
	}

	for jj := 0; jj < n; jj += nc {
		ncb := minI(nc, n-jj)
		for kk := 0; kk < k; kk += kc {
			kcb := minI(kc, k-kk)
			betaEff := T(1)
			if kk == 0 {
				betaEff = beta
			}
			// Sequential pack of the kc×nc B panel (always; §3.2's first
			// missed opportunity).
			if mode.TransB() {
				o.packBT(bc, b, ldb, kk, jj, kcb, ncb)
			} else {
				o.packB(bc, b, ldb, kk, jj, kcb, ncb)
			}
			for ii := 0; ii < m; ii += mc {
				mcb := minI(mc, m-ii)
				// Sequential pack of the mc×kc A block.
				if mode.TransA() {
					o.packAT(ac, a, lda, ii, kk, mcb, kcb)
				} else {
					o.packA(ac, a, lda, ii, kk, mcb, kcb)
				}
				gebp(spec, mcb, ncb, kcb, alpha, ac, kcb, bc, ncb, betaEff, c[ii*ldc+jj:], ldc, padC, o)
			}
		}
	}
}

// gebp runs the block-times-panel kernel over packed operands.
func gebp[T core.Float](spec Spec, mc, nc, kc int, alpha T, ac []T, ldac int, bc []T, ldbc int, beta T, c []T, ldc int, padC []T, o ops[T]) {
	mr, nr := spec.MR, spec.NR
	for j := 0; j < nc; j += nr {
		nrb := minI(nr, nc-j)
		for i := 0; i < mc; i += mr {
			mrb := minI(mr, mc-i)
			if spec.Edge == EdgePad && (mrb < mr || nrb < nr) {
				// BLIS-style: run the full-size kernel into a scratch tile
				// (the packed operands' tails read as zeros is emulated by
				// computing only the valid extent into scratch, then
				// copying) — the cost model charges full-tile flops.
				for x := range padC {
					padC[x] = 0
				}
				o.micro(mrb, nrb, kc, alpha, ac[i*ldac:], ldac, bc[j:], ldbc, 0, padC, nr)
				for bi := 0; bi < mrb; bi++ {
					for bj := 0; bj < nrb; bj++ {
						if beta == 0 {
							c[(i+bi)*ldc+j+bj] = padC[bi*nr+bj]
						} else {
							c[(i+bi)*ldc+j+bj] = padC[bi*nr+bj] + beta*c[(i+bi)*ldc+j+bj]
						}
					}
				}
				continue
			}
			o.micro(mrb, nrb, kc, alpha, ac[i*ldac:], ldac, bc[j:], ldbc, beta, c[i*ldc+j:], ldc)
		}
	}
}

// directGemm is LIBXSMM's JIT path: a single pass of unpacked micro-tiles.
func directGemm[T core.Float](spec Spec, m, n, k int, alpha T, a []T, lda int, b []T, ldb int, beta T, c []T, ldc int, o ops[T]) {
	mr, nr := spec.MR, spec.NR
	for i := 0; i < m; i += mr {
		mrb := minI(mr, m-i)
		for j := 0; j < n; j += nr {
			nrb := minI(nr, n-j)
			o.micro(mrb, nrb, k, alpha, a[i*lda:], lda, b[j:], ldb, beta, c[i*ldc+j:], ldc)
		}
	}
}

// GridMPartition returns BLIS's M-leaning shape-oblivious factorization:
// TM is the divisor of T closest to 2·√T from below.
func GridMPartition(threads int) analytic.Partition {
	tm := int(2 * math.Sqrt(float64(threads)))
	if tm > threads {
		tm = threads
	}
	if tm < 1 {
		tm = 1
	}
	for threads%tm != 0 {
		tm--
	}
	return analytic.Partition{TM: tm, TN: threads / tm}
}

func cubeRoot(m, n, k int) int {
	return int(math.Cbrt(float64(m) * float64(n) * float64(k)))
}

func checkDims(mode core.Mode, m, n, k, lenA, lda, lenB, ldb, lenC, ldc int) error {
	if m < 0 || n < 0 || k < 0 {
		return fmt.Errorf("baselines: negative dimension m=%d n=%d k=%d", m, n, k)
	}
	arows, acols := m, k
	if mode.TransA() {
		arows, acols = k, m
	}
	brows, bcols := k, n
	if mode.TransB() {
		brows, bcols = n, k
	}
	if lda < maxI(1, acols) || ldb < maxI(1, bcols) || ldc < maxI(1, n) {
		return fmt.Errorf("baselines: leading dimension too small (lda=%d ldb=%d ldc=%d)", lda, ldb, ldc)
	}
	if need := need(arows, acols, lda); lenA < need {
		return fmt.Errorf("baselines: A has %d elements, needs %d", lenA, need)
	}
	if need := need(brows, bcols, ldb); lenB < need {
		return fmt.Errorf("baselines: B has %d elements, needs %d", lenB, need)
	}
	if need := need(m, n, ldc); lenC < need {
		return fmt.Errorf("baselines: C has %d elements, needs %d", lenC, need)
	}
	return nil
}

func need(rows, cols, ld int) int {
	if rows == 0 || cols == 0 {
		return 0
	}
	return (rows-1)*ld + cols
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}
