// Package parallel implements LibShalom's parallel runtime (§6): a static
// two-level partition of C into a TM×TN grid of per-thread sub-blocks whose
// boundaries are aligned to the micro-kernel tile — the property that lets
// the partition avoid manufacturing edge cases — and a fork-join worker pool
// that mirrors the paper's use of fork-join OS primitives over the two outer
// GEMM loops (L1 and L3 of Fig 1).
package parallel

import (
	"sync"
	"sync/atomic"

	"libshalom/internal/analytic"
)

// Block is one thread's sub-block of C.
type Block struct {
	I0, J0 int // top-left corner
	M, N   int // extent
}

// Blocks partitions an m×n C into the grid given by part, aligning interior
// boundaries to multiples of mr (rows) and nr (columns). Work is distributed
// in whole micro-tiles: with U = ⌈m/mr⌉ row-tiles split across TM threads,
// every thread gets ⌊U/TM⌋ or ⌈U/TM⌉ tiles, so at most the final row and
// column of the grid contain partial tiles. Threads left without tiles
// produce no block. The returned blocks exactly tile C (property-tested).
func Blocks(m, n int, part analytic.Partition, mr, nr int) []Block {
	if m <= 0 || n <= 0 {
		return nil
	}
	rows := splitAligned(m, part.TM, mr)
	cols := splitAligned(n, part.TN, nr)
	blocks := make([]Block, 0, len(rows)*len(cols))
	for _, r := range rows {
		for _, c := range cols {
			blocks = append(blocks, Block{I0: r.off, J0: c.off, M: r.len, N: c.len})
		}
	}
	return blocks
}

type span struct{ off, len int }

// splitAligned divides extent into at most parts chunks, each a multiple of
// unit except possibly the last nonempty chunk.
func splitAligned(extent, parts, unit int) []span {
	if unit < 1 {
		unit = 1
	}
	tiles := (extent + unit - 1) / unit
	if parts > tiles {
		parts = tiles
	}
	if parts < 1 {
		parts = 1
	}
	base := tiles / parts
	extra := tiles % parts
	spans := make([]span, 0, parts)
	off := 0
	for p := 0; p < parts; p++ {
		t := base
		if p < extra {
			t++
		}
		if t == 0 {
			continue
		}
		l := t * unit
		if off+l > extent {
			l = extent - off
		}
		if l <= 0 {
			continue
		}
		spans = append(spans, span{off: off, len: l})
		off += l
	}
	return spans
}

// Pool is a fork-join worker pool with persistent goroutines, standing in
// for the fork-join threading primitive the paper's runtime uses. A Pool is
// safe for concurrent Run calls (each call joins only its own tasks), which
// is how a shared Context serves simultaneous GEMMs.
type Pool struct {
	workers int
	tasks   chan func()
	closed  atomic.Bool
}

// NewPool starts a pool with the given number of worker goroutines
// (minimum 1).
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{workers: workers, tasks: make(chan func())}
	for i := 0; i < workers; i++ {
		go func() {
			for f := range p.tasks {
				f()
			}
		}()
	}
	return p
}

// Workers returns the pool size.
func (p *Pool) Workers() int { return p.workers }

// Run executes all tasks on the pool and blocks until every one has
// completed (the join of fork-join). Each call owns its own join state, so
// concurrent Run calls on one pool are independent.
func (p *Pool) Run(tasks []func()) {
	if len(tasks) == 0 {
		return
	}
	if p.closed.Load() {
		panic("parallel: Run on closed pool")
	}
	var wg sync.WaitGroup
	wg.Add(len(tasks))
	go func() {
		for _, t := range tasks {
			t := t
			p.tasks <- func() {
				t()
				wg.Done()
			}
		}
	}()
	wg.Wait()
}

// Close terminates the worker goroutines. The pool must be idle.
func (p *Pool) Close() {
	if p.closed.CompareAndSwap(false, true) {
		close(p.tasks)
	}
}
