// Package parallel implements LibShalom's parallel runtime (§6): a static
// two-level partition of C into a TM×TN grid of per-thread sub-blocks whose
// boundaries are aligned to the micro-kernel tile — the property that lets
// the partition avoid manufacturing edge cases — and a fork-join worker pool
// that mirrors the paper's use of fork-join OS primitives over the two outer
// GEMM loops (L1 and L3 of Fig 1).
package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"libshalom/internal/analytic"
	"libshalom/internal/faults"
	"libshalom/internal/guard"
)

// Block is one thread's sub-block of C.
type Block struct {
	I0, J0 int // top-left corner
	M, N   int // extent
}

// Blocks partitions an m×n C into the grid given by part, aligning interior
// boundaries to multiples of mr (rows) and nr (columns). Work is distributed
// in whole micro-tiles: with U = ⌈m/mr⌉ row-tiles split across TM threads,
// every thread gets ⌊U/TM⌋ or ⌈U/TM⌉ tiles, so at most the final row and
// column of the grid contain partial tiles. Threads left without tiles
// produce no block. The returned blocks exactly tile C (property-tested).
func Blocks(m, n int, part analytic.Partition, mr, nr int) []Block {
	if m <= 0 || n <= 0 {
		return nil
	}
	rows := splitAligned(m, part.TM, mr)
	cols := splitAligned(n, part.TN, nr)
	blocks := make([]Block, 0, len(rows)*len(cols))
	for _, r := range rows {
		for _, c := range cols {
			blocks = append(blocks, Block{I0: r.off, J0: c.off, M: r.len, N: c.len})
		}
	}
	return blocks
}

type span struct{ off, len int }

// splitAligned divides extent into at most parts chunks, each a multiple of
// unit except possibly the last nonempty chunk.
func splitAligned(extent, parts, unit int) []span {
	if unit < 1 {
		unit = 1
	}
	tiles := (extent + unit - 1) / unit
	if parts > tiles {
		parts = tiles
	}
	if parts < 1 {
		parts = 1
	}
	base := tiles / parts
	extra := tiles % parts
	spans := make([]span, 0, parts)
	off := 0
	for p := 0; p < parts; p++ {
		t := base
		if p < extra {
			t++
		}
		if t == 0 {
			continue
		}
		l := t * unit
		if off+l > extent {
			l = extent - off
		}
		if l <= 0 {
			continue
		}
		spans = append(spans, span{off: off, len: l})
		off += l
	}
	return spans
}

// Observer receives the pool's scheduling events — the hook the telemetry
// layer plugs into. Implementations must be safe for concurrent use from
// every worker; all methods are called on hot scheduling paths, so they
// should be a handful of atomic operations at most. telemetry.Recorder
// implements Observer.
type Observer interface {
	// TaskQueued reports n tasks submitted to the pool by one Run call.
	TaskQueued(n int)
	// TaskStart reports a task beginning execution after queueWaitNs in
	// the run queue.
	TaskStart(queueWaitNs int64)
	// TaskDone reports a task finishing after busyNs of execution.
	TaskDone(busyNs int64)
	// FaultInjected reports a fired fault-injection point inside the pool
	// (the SlowWorker chaos point).
	FaultInjected(p faults.Point)
}

// Pool is a fork-join worker pool with persistent goroutines, standing in
// for the fork-join threading primitive the paper's runtime uses. A Pool is
// safe for concurrent Run calls (each call joins only its own tasks), which
// is how a shared Context serves simultaneous GEMMs.
type Pool struct {
	workers int
	tasks   chan func(worker int)
	closed  atomic.Bool
	obs     Observer // nil: scheduling is not instrumented
}

// NewPool starts a pool with the given number of worker goroutines
// (minimum 1).
func NewPool(workers int) *Pool { return NewPoolObserved(workers, nil) }

// NewPoolObserved starts a pool whose scheduling events feed obs; a nil
// observer leaves the pool exactly as cheap as NewPool's.
func NewPoolObserved(workers int, obs Observer) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{workers: workers, tasks: make(chan func(worker int)), obs: obs}
	for i := 0; i < workers; i++ {
		i := i
		go func() {
			for f := range p.tasks {
				f(i)
			}
		}()
	}
	return p
}

// Workers returns the pool size.
func (p *Pool) Workers() int { return p.workers }

// ErrClosed is returned by Run on a pool whose Close has been called.
var ErrClosed = errors.New("parallel: Run on closed pool")

// PanicError is returned by Run when a task panics: the worker goroutine
// recovers (the pool stays usable), tasks of the same Run call that have
// not started yet are cancelled, and the first panic is reported with the
// goroutine stack captured at the point of recovery.
type PanicError struct {
	Task  int // index into the Run call's task slice
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("parallel: task %d panicked: %v", e.Task, e.Value)
}

// Run executes all tasks on the pool and blocks until every one has
// completed or been cancelled (the join of fork-join). Each call owns its
// own join state, so concurrent Run calls on one pool are independent.
//
// A panicking task does not kill its worker or the process: the panic is
// recovered, remaining unstarted tasks of this Run call are skipped, and
// Run returns a *PanicError describing the first panic. Run on a closed
// pool returns ErrClosed.
func (p *Pool) Run(tasks []func()) error {
	wrapped := make([]func(worker int), len(tasks))
	for i, t := range tasks {
		t := t
		wrapped[i] = func(int) { t() }
	}
	return p.RunWorker(wrapped)
}

// RunConfig carries the optional deadline machinery of one Run call.
type RunConfig struct {
	// Ctx, when non-nil, cancels cooperatively: tasks not yet handed to a
	// worker are skipped once the context is done, started tasks still run
	// to completion (the join is preserved), and the run fails with the
	// context's error. This is how per-call deadlines propagate into the
	// pool without abandoning in-flight writers.
	Ctx context.Context
	// TaskBudget, when positive, arms the stuck-worker watchdog: a task
	// running longer than the budget fails the run with a typed
	// *guard.StuckWorkerError and releases the join immediately — the one
	// case where Run returns before every task has finished, because a
	// stuck goroutine cannot be killed. The caller must then treat the
	// tasks' output as undefined (the straggler may still write).
	TaskBudget time.Duration
}

// RunWorker is Run for tasks that want to know which worker executes them
// (the GEMM driver uses the index for trace-lane attribution). Worker
// indices are 0..Workers()-1.
func (p *Pool) RunWorker(tasks []func(worker int)) error {
	return p.RunWorkerCfg(RunConfig{}, tasks)
}

// RunWorkerCfg is RunWorker with cooperative cancellation and the
// stuck-worker watchdog; see RunConfig.
func (p *Pool) RunWorkerCfg(rc RunConfig, tasks []func(worker int)) error {
	if len(tasks) == 0 {
		return nil
	}
	if p.closed.Load() {
		return ErrClosed
	}
	if rc.Ctx != nil {
		if err := rc.Ctx.Err(); err != nil {
			return err
		}
	}
	if p.obs != nil {
		p.obs.TaskQueued(len(tasks))
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		failed   atomic.Bool
	)
	// fail records the first failure and raises the cancellation flag; the
	// flag is stored after the error under the same lock, so any goroutine
	// observing failed==true also observes firstErr through the mutex.
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		failed.Store(true)
		mu.Unlock()
	}
	firstError := func() error {
		mu.Lock()
		defer mu.Unlock()
		return firstErr
	}
	// starts[i] is the UnixNano at which task i began executing, 0 before,
	// -1 after — the watchdog's view of who is in flight and for how long.
	watched := rc.TaskBudget > 0
	var starts []atomic.Int64
	if watched {
		starts = make([]atomic.Int64, len(tasks))
	}
	wg.Add(len(tasks))
	go func() {
		handed := 0
		// A Close racing an in-flight Run (a documented misuse) panics the
		// send below; convert that into ErrClosed and release the join
		// instead of crashing the process or deadlocking the caller.
		defer func() {
			if r := recover(); r != nil {
				fail(ErrClosed)
				for i := handed; i < len(tasks); i++ {
					wg.Done()
				}
			}
		}()
		for i, t := range tasks {
			if rc.Ctx != nil && !failed.Load() {
				select {
				case <-rc.Ctx.Done():
					fail(rc.Ctx.Err())
				default:
				}
			}
			if failed.Load() {
				wg.Done()
				handed++
				continue
			}
			i, t := i, t
			var enqueued time.Time
			if p.obs != nil {
				enqueued = time.Now()
			}
			p.tasks <- func(worker int) {
				defer wg.Done()
				defer func() {
					if r := recover(); r != nil {
						fail(&PanicError{Task: i, Value: r, Stack: debug.Stack()})
					}
				}()
				if watched {
					starts[i].Store(time.Now().UnixNano())
					defer starts[i].Store(-1)
				}
				var began time.Time
				if p.obs != nil {
					began = time.Now()
					p.obs.TaskStart(began.Sub(enqueued).Nanoseconds())
					defer func() { p.obs.TaskDone(time.Since(began).Nanoseconds()) }()
				}
				if failed.Load() {
					return // cancelled after an earlier task failed
				}
				if faults.Fire(faults.SlowWorker) {
					if p.obs != nil {
						p.obs.FaultInjected(faults.SlowWorker)
					}
					time.Sleep(time.Millisecond)
				}
				if faults.Fire(faults.StuckWorker) {
					if p.obs != nil {
						p.obs.FaultInjected(faults.StuckWorker)
					}
					time.Sleep(faults.StuckSleep)
				}
				t(worker)
			}
			handed++
		}
	}()
	if !watched {
		wg.Wait()
		return firstError()
	}
	// Watchdog join: wait for completion, but scan in-flight tasks every
	// quarter budget; the first task over budget converts the run into a
	// typed StuckWorkerError without waiting for the stuck goroutine.
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	tick := rc.TaskBudget / 4
	if tick < 100*time.Microsecond {
		tick = 100 * time.Microsecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	for {
		select {
		case <-done:
			return firstError()
		case <-ticker.C:
			now := time.Now().UnixNano()
			for i := range starts {
				s := starts[i].Load()
				if s <= 0 || now-s <= int64(rc.TaskBudget) {
					continue
				}
				fail(&guard.StuckWorkerError{
					Task:    i,
					Budget:  rc.TaskBudget,
					Elapsed: time.Duration(now - s),
				})
				return firstError()
			}
		}
	}
}

// Close terminates the worker goroutines. The pool must be idle; closing a
// pool twice is a no-op.
func (p *Pool) Close() {
	if p.closed.CompareAndSwap(false, true) {
		close(p.tasks)
	}
}

// Closed reports whether Close has been called.
func (p *Pool) Closed() bool { return p.closed.Load() }
