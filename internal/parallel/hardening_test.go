package parallel

import (
	"errors"
	"sync/atomic"
	"testing"
)

// Regression: Run on a closed pool used to panic (parallel.go:121 of the
// seed); the hardened pool reports ErrClosed instead.
func TestRunOnClosedPoolReturnsError(t *testing.T) {
	p := NewPool(2)
	p.Close()
	var ran atomic.Bool
	err := p.Run([]func(){func() { ran.Store(true) }})
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("Run on closed pool: err = %v, want ErrClosed", err)
	}
	if ran.Load() {
		t.Fatal("task ran on a closed pool")
	}
	if !p.Closed() {
		t.Fatal("Closed() = false after Close")
	}
}

func TestDoubleCloseStaysNoop(t *testing.T) {
	p := NewPool(2)
	p.Close()
	p.Close() // must not panic
	if err := p.Run([]func(){func() {}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Run after double close: err = %v, want ErrClosed", err)
	}
}

// A panicking task must not kill its worker or the process: Run returns a
// typed *PanicError and the pool remains fully usable.
func TestTaskPanicIsolated(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	err := p.Run([]func(){
		func() {},
		func() { panic("kernel exploded") },
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v (%T), want *PanicError", err, err)
	}
	if pe.Task != 1 {
		t.Fatalf("PanicError.Task = %d, want 1", pe.Task)
	}
	if pe.Value != "kernel exploded" {
		t.Fatalf("PanicError.Value = %v", pe.Value)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("PanicError.Stack empty")
	}
	// Pool stays usable after the panic.
	var count atomic.Int64
	if err := p.Run([]func(){func() { count.Add(1) }, func() { count.Add(1) }}); err != nil {
		t.Fatalf("Run after panic: %v", err)
	}
	if count.Load() != 2 {
		t.Fatalf("pool ran %d of 2 tasks after a panic", count.Load())
	}
}

// After the first panic, tasks of the same Run call that have not started
// are cancelled. With one worker the schedule is deterministic: the panic
// in task 0 lands before tasks 1..n are picked up.
func TestRunCancelsRemainingAfterPanic(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	var ran atomic.Int64
	tasks := []func(){
		func() { panic("first") },
		func() { ran.Add(1) },
		func() { ran.Add(1) },
		func() { ran.Add(1) },
	}
	err := p.Run(tasks)
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Task != 0 {
		t.Fatalf("err = %v, want *PanicError for task 0", err)
	}
	if ran.Load() != 0 {
		t.Fatalf("%d tasks ran after the panic; want 0 (cancelled)", ran.Load())
	}
}

// Concurrent Run calls stay independent: a panic in one call must not
// cancel or fail the other.
func TestPanicDoesNotLeakAcrossRuns(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	done := make(chan error, 1)
	var count atomic.Int64
	go func() {
		tasks := make([]func(), 50)
		for i := range tasks {
			tasks[i] = func() { count.Add(1) }
		}
		done <- p.Run(tasks)
	}()
	_ = p.Run([]func(){func() { panic("boom") }})
	if err := <-done; err != nil {
		t.Fatalf("healthy Run failed: %v", err)
	}
	if count.Load() != 50 {
		t.Fatalf("healthy Run completed %d of 50 tasks", count.Load())
	}
}
