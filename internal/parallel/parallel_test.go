package parallel

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"libshalom/internal/analytic"
)

// TestBlocksCoverExactly property-tests that the partition tiles C exactly:
// every cell covered once, no overlap, no spill.
func TestBlocksCoverExactly(t *testing.T) {
	f := func(mRaw, nRaw, tRaw, seed uint16) bool {
		m := int(mRaw%300) + 1
		n := int(nRaw%300) + 1
		threads := []int{1, 2, 4, 8, 16, 32, 64}[tRaw%7]
		part := analytic.PartitionFor(m, n, threads)
		blocks := Blocks(m, n, part, 7, 12)
		cover := make([]int, m*n)
		for _, b := range blocks {
			if b.M <= 0 || b.N <= 0 {
				return false
			}
			for i := b.I0; i < b.I0+b.M; i++ {
				for j := b.J0; j < b.J0+b.N; j++ {
					if i >= m || j >= n {
						return false
					}
					cover[i*n+j]++
				}
			}
		}
		for _, c := range cover {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestBlocksAlignment checks the §6 property: interior block boundaries fall
// on micro-tile multiples, so only the final row/column of the grid can
// contain partial tiles.
func TestBlocksAlignment(t *testing.T) {
	m, n, mr, nr := 1000, 5000, 7, 12
	part := analytic.PartitionFor(m, n, 64)
	blocks := Blocks(m, n, part, mr, nr)
	for _, b := range blocks {
		if b.I0%mr != 0 || b.J0%nr != 0 {
			t.Fatalf("block origin (%d,%d) not tile-aligned", b.I0, b.J0)
		}
		if b.I0+b.M < m && b.M%mr != 0 {
			t.Fatalf("interior block height %d not multiple of mr", b.M)
		}
		if b.J0+b.N < n && b.N%nr != 0 {
			t.Fatalf("interior block width %d not multiple of nr", b.N)
		}
	}
}

func TestBlocksSmallMatrixFewerThreads(t *testing.T) {
	// M=7 rows = 1 row-tile: a 64-thread partition must not produce empty
	// or out-of-range blocks.
	part := analytic.PartitionFor(7, 10000, 64)
	blocks := Blocks(7, 10000, part, 7, 12)
	if len(blocks) == 0 {
		t.Fatal("no blocks produced")
	}
	for _, b := range blocks {
		if b.M != 7 {
			t.Fatalf("single row-tile split: %+v", b)
		}
	}
}

func TestBlocksDegenerate(t *testing.T) {
	if Blocks(0, 10, analytic.Partition{TM: 1, TN: 1}, 7, 12) != nil {
		t.Fatal("zero-row C must produce no blocks")
	}
	if Blocks(10, 0, analytic.Partition{TM: 1, TN: 1}, 7, 12) != nil {
		t.Fatal("zero-col C must produce no blocks")
	}
}

func TestSplitAlignedLoadBalance(t *testing.T) {
	spans := splitAligned(1001, 8, 7) // 143 tiles + 1 remainder row
	total := 0
	for _, s := range spans {
		total += s.len
	}
	if total != 1001 {
		t.Fatalf("split covers %d of 1001", total)
	}
	// Max/min chunk sizes must differ by at most one tile (7 rows) plus
	// the final remainder.
	maxLen, minLen := 0, 1<<30
	for _, s := range spans {
		if s.len > maxLen {
			maxLen = s.len
		}
		if s.len < minLen {
			minLen = s.len
		}
	}
	if maxLen-minLen > 7+6 {
		t.Fatalf("imbalance: max %d min %d", maxLen, minLen)
	}
}

func TestPoolRunsAllTasks(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var count atomic.Int64
	tasks := make([]func(), 100)
	for i := range tasks {
		tasks[i] = func() { count.Add(1) }
	}
	p.Run(tasks)
	if count.Load() != 100 {
		t.Fatalf("ran %d of 100 tasks", count.Load())
	}
	// The pool must be reusable.
	p.Run(tasks[:10])
	if count.Load() != 110 {
		t.Fatal("pool not reusable")
	}
}

func TestPoolParallelism(t *testing.T) {
	p := NewPool(8)
	defer p.Close()
	var concurrent, peak atomic.Int64
	gate := make(chan struct{})
	tasks := make([]func(), 8)
	for i := range tasks {
		tasks[i] = func() {
			c := concurrent.Add(1)
			for {
				old := peak.Load()
				if c <= old || peak.CompareAndSwap(old, c) {
					break
				}
			}
			<-gate
			concurrent.Add(-1)
		}
	}
	done := make(chan struct{})
	go func() { p.Run(tasks); close(done) }()
	// Wait until several tasks are genuinely parked on the gate before
	// releasing any, so observed concurrency is deterministic.
	for concurrent.Load() < 4 {
	}
	for i := 0; i < 8; i++ {
		gate <- struct{}{}
	}
	<-done
	if peak.Load() < 4 {
		t.Fatalf("peak concurrency %d, want ≥ 4", peak.Load())
	}
}

func TestPoolEmptyRun(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	p.Run(nil) // must not deadlock
}

func TestPoolMinimumWorkers(t *testing.T) {
	p := NewPool(0)
	defer p.Close()
	if p.Workers() != 1 {
		t.Fatal("worker floor not applied")
	}
	var ran atomic.Bool
	p.Run([]func(){func() { ran.Store(true) }})
	if !ran.Load() {
		t.Fatal("task did not run")
	}
}

func TestPoolCloseIdempotent(t *testing.T) {
	p := NewPool(2)
	p.Close()
	p.Close() // second close must not panic
}

// TestConcurrentRuns: a shared pool must serve simultaneous Run calls with
// each call joining exactly its own tasks.
func TestConcurrentRuns(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var wg sync.WaitGroup
	for r := 0; r < 16; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var count atomic.Int64
			tasks := make([]func(), 25)
			for i := range tasks {
				tasks[i] = func() { count.Add(1) }
			}
			p.Run(tasks)
			if count.Load() != 25 {
				t.Errorf("Run joined with %d of 25 tasks done", count.Load())
			}
		}()
	}
	wg.Wait()
}
