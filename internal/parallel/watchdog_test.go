package parallel

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"libshalom/internal/guard"
)

// The watchdog converts a task exceeding its budget into a typed
// *guard.StuckWorkerError and releases the join early — well before the
// stuck task drains.
func TestWatchdogConvertsStuckTask(t *testing.T) {
	p := NewPool(2)
	defer func() {
		time.Sleep(250 * time.Millisecond) // let the straggler drain before Close
		p.Close()
	}()
	const budget = 20 * time.Millisecond
	var fastRan atomic.Int32
	tasks := []func(int){
		func(int) { time.Sleep(200 * time.Millisecond) }, // stuck
		func(int) { fastRan.Add(1) },
	}
	start := time.Now()
	err := p.RunWorkerCfg(RunConfig{TaskBudget: budget}, tasks)
	elapsed := time.Since(start)
	var swe *guard.StuckWorkerError
	if !errors.As(err, &swe) {
		t.Fatalf("err = %v (%T), want *guard.StuckWorkerError", err, err)
	}
	if swe.Task != 0 {
		t.Fatalf("stuck task = %d, want 0", swe.Task)
	}
	if swe.Elapsed < budget {
		t.Fatalf("reported elapsed %v below the %v budget", swe.Elapsed, budget)
	}
	if !swe.Timeout() {
		t.Fatal("Timeout() = false")
	}
	if elapsed >= 150*time.Millisecond {
		t.Fatalf("join waited %v — the watchdog did not return early", elapsed)
	}
}

// Without a budget, RunWorkerCfg behaves exactly like RunWorker: slow tasks
// are not failures.
func TestNoBudgetMeansNoWatchdog(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	var ran atomic.Int32
	tasks := []func(int){
		func(int) { time.Sleep(20 * time.Millisecond); ran.Add(1) },
		func(int) { ran.Add(1) },
	}
	if err := p.RunWorkerCfg(RunConfig{}, tasks); err != nil {
		t.Fatalf("unbudgeted run failed: %v", err)
	}
	if ran.Load() != 2 {
		t.Fatalf("ran %d tasks, want 2", ran.Load())
	}
}

// Tasks comfortably inside their budget never trip the watchdog.
func TestWatchdogQuietUnderBudget(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var ran atomic.Int32
	tasks := make([]func(int), 32)
	for i := range tasks {
		tasks[i] = func(int) {
			time.Sleep(time.Millisecond)
			ran.Add(1)
		}
	}
	if err := p.RunWorkerCfg(RunConfig{TaskBudget: 2 * time.Second}, tasks); err != nil {
		t.Fatalf("budgeted run failed: %v", err)
	}
	if ran.Load() != 32 {
		t.Fatalf("ran %d tasks, want 32", ran.Load())
	}
}

// A cancelled context stops dispatching, fails the run with the context's
// error, and still performs the full join: every started task finishes
// before RunWorkerCfg returns, so the caller may safely read task outputs.
func TestContextCancelStopsDispatchAfterFullJoin(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	var started, finished atomic.Int32
	tasks := make([]func(int), 64)
	for i := range tasks {
		tasks[i] = func(int) {
			started.Add(1)
			time.Sleep(2 * time.Millisecond)
			finished.Add(1)
		}
	}
	time.AfterFunc(5*time.Millisecond, cancel)
	err := p.RunWorkerCfg(RunConfig{Ctx: ctx}, tasks)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if started.Load() == int32(len(tasks)) {
		t.Fatal("cancellation did not stop dispatch")
	}
	if started.Load() != finished.Load() {
		t.Fatalf("join returned with %d started but %d finished", started.Load(), finished.Load())
	}
}

// An already-expired context fails fast without dispatching anything.
func TestExpiredContextFailsFast(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int32
	err := p.RunWorkerCfg(RunConfig{Ctx: ctx}, []func(int){func(int) { ran.Add(1) }})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Fatal("task dispatched on an expired context")
	}
}
