// Package router is LibShalom's fleet front door: an HTTP tier that shards
// GEMM requests across N shalom-serve backends by shape class and keeps the
// fleet serving through node failure.
//
// Sharding is class-affine: the (precision, mode, shape class) key each
// backend's coalescer batches on is rendezvous-hashed over the backend set,
// so every class has one owning backend (whose coalescer sees the densest
// possible stream of that class, raising mean batch size) plus a stable
// failover order. Routing consumes live health from two sources — periodic
// /readyz probes and passive per-request outcomes — feeding an
// outlier-ejection state machine: consecutive 5xx/connect failures eject a
// backend from rotation, exponential-backoff readiness probes readmit it.
// Failed or shed attempts are retried ("hedged") on the next-preferred
// backend under a per-request retry budget, with the request's timeout_ms
// rewritten to the remaining deadline on every attempt; an optional hedge
// delay additionally races a slow preferred backend against its failover
// before any failure is observed. Draining backends (readiness 503) are
// routed around without penalty, and the router itself drains the same way
// shalom-serve does: stop admitting, answer every in-flight request, exit.
package router

import (
	"bufio"
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"libshalom"
	"libshalom/internal/faults"
	"libshalom/internal/server"
	"libshalom/internal/telemetry"
)

// Config is the routing policy. Zero fields select the documented defaults.
type Config struct {
	// Backends are the shalom-serve base URLs the router shards over.
	Backends []string
	// ProbeInterval is the active readiness-probe period. Default 250ms.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one readiness probe. Default 1s.
	ProbeTimeout time.Duration
	// EjectThreshold is how many consecutive 5xx/connect failures eject a
	// backend. Default 3.
	EjectThreshold int
	// ReadmitBase is the first readmission-probe cooldown after an
	// ejection; each further trip doubles it up to ReadmitBase<<6.
	// Default 500ms.
	ReadmitBase time.Duration
	// RetryBudget is how many additional backends a request may be hedged
	// onto after its first attempt. Default 2.
	RetryBudget int
	// HedgeDelay, when positive, launches a concurrent attempt on the
	// next-preferred backend if the current one has not answered within
	// the delay — the latency hedge. Zero (default) disables it; failures
	// and sheds still retry immediately.
	HedgeDelay time.Duration
	// DefaultTimeout is the overall deadline for requests that carry no
	// timeout_ms; zero means no deadline.
	DefaultTimeout time.Duration
	// RetryAfter and RetryAfterJitter shape the Retry-After hint on
	// router-shed responses: the value is RetryAfter plus a uniform whole
	// number of seconds in [0, RetryAfterJitter], desynchronizing client
	// retry storms. Defaults 1 and 1.
	RetryAfter       int
	RetryAfterJitter int
	// MaxPayloadBytes caps a request's operand payload at the router.
	// Default 64 MiB (the serving default).
	MaxPayloadBytes int64
	// BaseContext parents the prober and every forward attempt; it should
	// be the router's lifecycle context. Nil selects context.Background().
	BaseContext context.Context
	// Telemetry, when non-nil, records the router counter/gauge families
	// and serves /metrics, /snapshot and /trace. Nil disables telemetry at
	// zero cost — the nil-receiver off path.
	Telemetry *telemetry.Recorder
	// Transport overrides the forward/probe transport (tests inject
	// failure shims). Nil selects http.DefaultTransport.
	Transport http.RoundTripper
	// Logf, when non-nil, receives one line per fleet event (ejection,
	// readmission, drain detection).
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 250 * time.Millisecond
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = time.Second
	}
	if c.EjectThreshold <= 0 {
		c.EjectThreshold = 3
	}
	if c.ReadmitBase <= 0 {
		c.ReadmitBase = 500 * time.Millisecond
	}
	if c.RetryBudget <= 0 {
		c.RetryBudget = 2
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 1
	}
	if c.RetryAfterJitter < 0 {
		c.RetryAfterJitter = 0
	} else if c.RetryAfterJitter == 0 {
		c.RetryAfterJitter = 1
	}
	if c.MaxPayloadBytes <= 0 {
		c.MaxPayloadBytes = server.DefaultMaxPayloadBytes
	}
	return c
}

// readmitCooldown is the exponential backoff before an ejected backend's
// next readmission probe: base<<min(trips-1, 6), the guard breakers'
// schedule applied fleet-wide.
func (c Config) readmitCooldown(trips int) time.Duration {
	shift := trips - 1
	if shift < 0 {
		shift = 0
	}
	if shift > 6 {
		shift = 6
	}
	return c.ReadmitBase << shift
}

// Router is the sharded front door. It implements http.Handler:
//
//	POST /v1/gemm   one GEMM request, forwarded to its class's backend
//	GET  /healthz   router liveness + the per-backend fleet table
//	GET  /readyz    200 while the router admits traffic and at least one
//	                backend is eligible; 503 otherwise
//	GET  /metrics   Prometheus exposition (router families + per-backend
//	                series), /snapshot and /trace as usual
type Router struct {
	cfg      Config
	tel      *telemetry.Recorder
	cfgHash  string
	backends []*backend
	client   *http.Client
	mux      *http.ServeMux
	base     context.Context

	draining atomic.Bool
	inFlight atomic.Int64

	probeStop context.CancelFunc
	probeDone chan struct{}
	startOnce sync.Once
	closeOnce sync.Once
}

// New builds a Router over the configured backend set.
func New(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("router: no backends configured")
	}
	base := cfg.BaseContext
	if base == nil {
		base = context.Background() //shalom:allow ctxflow — documented default when the caller sets no BaseContext
	}
	transport := cfg.Transport
	if transport == nil {
		transport = http.DefaultTransport
	}
	rt := &Router{
		cfg:    cfg,
		tel:    cfg.Telemetry,
		client: &http.Client{Transport: transport},
		mux:    http.NewServeMux(),
		base:   base,
	}
	for i, raw := range cfg.Backends {
		u := strings.TrimSuffix(strings.TrimSpace(raw), "/")
		if u == "" {
			return nil, fmt.Errorf("router: empty backend URL at index %d", i)
		}
		if !strings.Contains(u, "://") {
			u = "http://" + u
		}
		// Backends start healthy and ready: the fleet serves from the first
		// request, and the first probe tick corrects any that are not.
		rt.backends = append(rt.backends, &backend{index: i, id: u, state: StateHealthy, ready: true})
	}
	rt.cfgHash = configHash(rt.cfg, rt.backends)
	rt.mux.HandleFunc("/v1/gemm", rt.handleGEMM)
	rt.mux.HandleFunc("/healthz", rt.handleHealth)
	rt.mux.HandleFunc("/readyz", rt.handleReady)
	if rt.tel.Enabled() {
		h := rt.tel.Handler()
		rt.mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			h.ServeHTTP(w, r)
			rt.writeBackendMetrics(w)
		})
		rt.mux.Handle("/snapshot", h)
		rt.mux.Handle("/trace", h)
	}
	return rt, nil
}

// configHash digests the routing policy and backend set into the
// provenance hash /healthz reports, mirroring the server's: two router
// benchmark rows with the same hash routed the same fleet the same way.
func configHash(cfg Config, backends []*backend) string {
	h := sha256.New()
	fmt.Fprintf(h, "probe=%s probe_timeout=%s eject=%d readmit=%s retries=%d hedge=%s timeout=%s retry_after=%d+%d max_payload=%d",
		cfg.ProbeInterval, cfg.ProbeTimeout, cfg.EjectThreshold, cfg.ReadmitBase,
		cfg.RetryBudget, cfg.HedgeDelay, cfg.DefaultTimeout,
		cfg.RetryAfter, cfg.RetryAfterJitter, cfg.MaxPayloadBytes)
	for _, b := range backends {
		fmt.Fprintf(h, " backend=%s", b.id)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// ConfigHash is the provenance hash of the router's effective configuration.
func (rt *Router) ConfigHash() string { return rt.cfgHash }

// ServeHTTP dispatches to the router's endpoints.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) { rt.mux.ServeHTTP(w, r) }

// Start launches the active readiness prober. Idempotent.
func (rt *Router) Start() {
	rt.startOnce.Do(func() {
		ctx, cancel := context.WithCancel(rt.base)
		rt.probeStop = cancel
		rt.probeDone = make(chan struct{})
		go rt.probeLoop(ctx)
	})
}

// Close stops the prober. Idempotent; safe without Start.
func (rt *Router) Close() {
	rt.closeOnce.Do(func() {
		if rt.probeStop != nil {
			rt.probeStop()
			<-rt.probeDone
		}
	})
}

// Drain stops admitting requests (readiness goes 503 immediately) and
// waits until every in-flight request has been answered; ctx bounds the
// wait. After Drain the caller shuts the listener down.
func (rt *Router) Drain(ctx context.Context) error {
	rt.draining.Store(true)
	// Polling an atomic count (the server's drain pattern) rather than a
	// WaitGroup: admissions race the draining flag, and WaitGroup forbids
	// Add concurrent with Wait. Two consecutive zero reads one tick apart
	// close the flag-check/increment window.
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	zeros := 0
	for zeros < 2 {
		if rt.inFlight.Load() == 0 {
			zeros++
		} else {
			zeros = 0
		}
		select {
		case <-tick.C:
		case <-ctx.Done():
			if rt.inFlight.Load() == 0 {
				return nil
			}
			return fmt.Errorf("router: drain interrupted with %d requests in flight: %w",
				rt.inFlight.Load(), ctx.Err())
		}
	}
	return nil
}

// Draining reports whether the router has stopped admitting requests.
func (rt *Router) Draining() bool { return rt.draining.Load() }

func (rt *Router) logf(format string, args ...any) {
	if rt.cfg.Logf != nil {
		rt.cfg.Logf(format, args...)
	}
}

// eligibleCounts returns the fleet gauges.
func (rt *Router) eligibleCounts() (eligible, ejected int) {
	for _, b := range rt.backends {
		if b.eligible() {
			eligible++
		}
		if b.isEjected() {
			ejected++
		}
	}
	return
}

func (rt *Router) updateGauges() {
	el, ej := rt.eligibleCounts()
	rt.tel.RouterBackends(el, ej)
}

// probeLoop is the active health scanner: every tick it probes each
// healthy backend's readiness and each ejected backend whose readmission
// cooldown has expired, then refreshes the fleet gauges.
func (rt *Router) probeLoop(ctx context.Context) {
	defer close(rt.probeDone)
	tick := time.NewTicker(rt.cfg.ProbeInterval)
	defer tick.Stop()
	rt.probeSweep(ctx)
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			rt.probeSweep(ctx)
		}
	}
}

// probeSweep probes every due backend concurrently and waits for the
// verdicts, so one blackholed node cannot stall the others' probes.
func (rt *Router) probeSweep(ctx context.Context) {
	now := time.Now()
	var wg sync.WaitGroup
	for _, b := range rt.backends {
		if !b.probeDue(now) {
			continue
		}
		wg.Add(1)
		go func(b *backend) {
			defer wg.Done()
			rt.probe(ctx, b)
		}(b)
	}
	wg.Wait()
	rt.updateGauges()
}

// probe issues one readiness probe and applies its verdict to the state
// machine.
func (rt *Router) probe(ctx context.Context, b *backend) {
	pctx, cancel := context.WithTimeout(ctx, rt.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, b.id+"/readyz", nil)
	if err != nil {
		return
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		rt.tel.RouterProbe(false)
		if ctx.Err() != nil {
			return // prober shutting down, not a backend verdict
		}
		if b.probeFail(err.Error(), rt.cfg, time.Now(), rt.tel) {
			rt.logf("router: backend %s EJECTED (probe: %v)", b.id, err)
		}
		return
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		rt.tel.RouterProbe(true)
		if b.probeOK() {
			rt.tel.RouterReadmission()
			rt.logf("router: backend %s READMITTED", b.id)
		}
	case http.StatusServiceUnavailable:
		// Alive but not ready — a draining node. Routed around, never
		// penalized: drain is deliberate, not an outlier.
		rt.tel.RouterProbe(false)
		b.probeNotReady(time.Now())
	default:
		rt.tel.RouterProbe(false)
		if b.probeFail(fmt.Sprintf("probe status %d", resp.StatusCode), rt.cfg, time.Now(), rt.tel) {
			rt.logf("router: backend %s EJECTED (probe status %d)", b.id, resp.StatusCode)
		}
	}
}

// attemptOutcome classifies one forward attempt.
type attemptOutcome int

const (
	outcomeOK       attemptOutcome = iota // 200: relay and finish
	outcomeShed                           // 429: backend loaded, try the next
	outcomeNotReady                       // 503: backend draining, try the next
	outcomeFail                           // 5xx/connect failure: counts toward ejection, try the next
	outcomeTerminal                       // 400/404/504…: the backend answered about the request itself — relay verbatim
)

// attemptResult is one attempt's verdict, delivered on the attempt channel.
type attemptResult struct {
	be          *backend
	outcome     attemptOutcome
	status      int
	body        []byte
	contentType string
	err         error
}

// handleGEMM is the routed request path: classify, order by rendezvous
// preference, and walk the order with hedged retries until one backend
// answers or the budget/deadline runs out.
func (rt *Router) handleGEMM(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "router: POST only", http.StatusMethodNotAllowed)
		return
	}
	if rt.draining.Load() {
		rt.shedResponse(w, "router: draining")
		return
	}
	rt.inFlight.Add(1)
	defer rt.inFlight.Add(-1)

	body := http.MaxBytesReader(w, r.Body, int64(server.MaxHeaderBytes)+rt.cfg.MaxPayloadBytes)
	hdr, payload, err := readRequest(body)
	if err != nil {
		rt.tel.RouterRejected()
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	classKey := fmt.Sprintf("%s/%s/%s", hdr.Precision, hdr.Mode,
		telemetry.ClassifyShape(hdr.M, hdr.N, hdr.K))
	order := preference(classKey, rt.backends)

	// The overall deadline: the request's own timeout_ms, else the router
	// default. Attempts rewrite timeout_ms to what remains, so a retry
	// never grants the fleet more time than the client asked for.
	ctx := r.Context()
	var deadline time.Time
	timeout := time.Duration(hdr.TimeoutMS) * time.Millisecond
	if timeout == 0 {
		timeout = rt.cfg.DefaultTimeout
	}
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, deadline)
		defer cancel()
	}

	maxAttempts := 1 + rt.cfg.RetryBudget
	if maxAttempts > len(order) {
		maxAttempts = len(order)
	}
	results := make(chan attemptResult, len(order))
	var cancels []context.CancelFunc
	defer func() {
		for _, c := range cancels {
			c()
		}
	}()
	tried := make(map[*backend]bool, len(order))
	launched := 0

	// launch starts an attempt on the next-preferred untried backend,
	// preferring eligible ones and falling back to any untried backend when
	// the whole fleet looks ineligible (a stale probe beats giving up).
	launch := func(hedge, retry bool) bool {
		var pick *backend
		for _, b := range order {
			if !tried[b] && b.eligible() {
				pick = b
				break
			}
		}
		if pick == nil {
			for _, b := range order {
				if !tried[b] {
					pick = b
					break
				}
			}
		}
		if pick == nil {
			return false
		}
		tried[pick] = true
		launched++
		rt.tel.RouterAttempt()
		if retry {
			rt.tel.RouterRetry()
		}
		if hedge {
			rt.tel.RouterHedge()
		}
		actx, cancel := context.WithCancel(ctx)
		cancels = append(cancels, cancel)
		go rt.attempt(actx, pick, hdr, payload, deadline, results)
		return true
	}

	if !launch(false, false) {
		rt.shedResponse(w, "router: no backends available")
		return
	}
	var hedgeC <-chan time.Time
	if rt.cfg.HedgeDelay > 0 {
		t := time.NewTimer(rt.cfg.HedgeDelay)
		defer t.Stop()
		hedgeC = t.C
	}

	outstanding := 1
	lastOutcome := outcomeFail
	lastErr := "no attempt completed"
	for outstanding > 0 {
		select {
		case res := <-results:
			outstanding--
			switch res.outcome {
			case outcomeOK:
				rt.tel.RouterForwarded()
				rt.relay(w, res, launched)
				return
			case outcomeTerminal:
				rt.relay(w, res, launched)
				return
			default:
				lastOutcome = res.outcome
				if res.err != nil {
					lastErr = res.err.Error()
				} else {
					lastErr = fmt.Sprintf("backend %s answered %d", res.be.id, res.status)
				}
				if launched < maxAttempts && launch(false, true) {
					outstanding++
				}
			}
		case <-hedgeC:
			hedgeC = nil
			if launched < maxAttempts && launch(true, false) {
				outstanding++
			}
		case <-ctx.Done():
			rt.tel.RouterError()
			http.Error(w, "router: deadline exceeded before any backend answered", http.StatusGatewayTimeout)
			return
		}
	}
	// Every attempt the budget allowed has failed or been shed.
	switch lastOutcome {
	case outcomeShed, outcomeNotReady:
		rt.shedResponse(w, "router: all preferred backends shed the request")
	default:
		rt.tel.RouterError()
		http.Error(w, "router: all attempts failed: "+lastErr, http.StatusBadGateway)
	}
}

// attempt forwards the request to one backend, classifies the outcome, and
// applies the passive health verdict before reporting back.
func (rt *Router) attempt(ctx context.Context, b *backend, hdr server.Header, payload []byte, deadline time.Time, results chan<- attemptResult) {
	res := rt.forward(ctx, b, hdr, payload, deadline)
	switch res.outcome {
	case outcomeOK:
		b.recordSuccess()
	case outcomeShed:
		b.recordShed()
	case outcomeNotReady:
		b.recordNotReady()
		rt.logf("router: backend %s draining — routing around it", b.id)
	case outcomeTerminal:
		b.recordResponsive()
	case outcomeFail:
		if ctx.Err() == context.Canceled {
			// Cancelled by a winning sibling attempt (or a departing
			// client), not a backend verdict: no failure accrues.
			break
		}
		errStr := fmt.Sprintf("status %d", res.status)
		if res.err != nil {
			errStr = res.err.Error()
		}
		if b.recordFailure(errStr, rt.cfg, time.Now(), rt.tel) {
			rt.logf("router: backend %s EJECTED (%s)", b.id, errStr)
			rt.updateGauges()
		}
	}
	results <- res
}

// forward performs the HTTP exchange for one attempt. The request's
// timeout_ms is rewritten to the time remaining before the overall
// deadline, so the backend's admission control and the router agree on how
// long the request has left.
func (rt *Router) forward(ctx context.Context, b *backend, hdr server.Header, payload []byte, deadline time.Time) attemptResult {
	res := attemptResult{be: b}

	// Fault points, in injection order: a slow backend delays, a reset
	// fails fast, a blackhole swallows the attempt until its context dies.
	if d := faults.RouterSlowFire(b.index); d > 0 {
		rt.tel.FaultInjected(faults.RouterSlowBackend)
		select {
		case <-time.After(d):
		case <-ctx.Done():
			res.outcome, res.err = outcomeFail, ctx.Err()
			return res
		}
	}
	if faults.RouterFire(faults.RouterConnReset, b.index) {
		rt.tel.FaultInjected(faults.RouterConnReset)
		res.outcome, res.err = outcomeFail, fmt.Errorf("injected connection reset by %s", b.id)
		return res
	}
	if faults.RouterFire(faults.RouterBackendBlackhole, b.index) {
		rt.tel.FaultInjected(faults.RouterBackendBlackhole)
		<-ctx.Done()
		res.outcome, res.err = outcomeFail, fmt.Errorf("blackholed attempt to %s: %w", b.id, ctx.Err())
		return res
	}

	if !deadline.IsZero() {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			res.outcome, res.err = outcomeFail, context.DeadlineExceeded
			return res
		}
		ms := int(remaining / time.Millisecond)
		if ms < 1 {
			ms = 1
		}
		hdr.TimeoutMS = ms
	}
	line, err := json.Marshal(hdr)
	if err != nil {
		res.outcome, res.err = outcomeFail, err
		return res
	}
	wire := make([]byte, 0, len(line)+1+len(payload))
	wire = append(wire, line...)
	wire = append(wire, '\n')
	wire = append(wire, payload...)

	req, err := http.NewRequestWithContext(ctx, http.MethodPost, b.id+"/v1/gemm", bytes.NewReader(wire))
	if err != nil {
		res.outcome, res.err = outcomeFail, err
		return res
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := rt.client.Do(req)
	if err != nil {
		res.outcome, res.err = outcomeFail, err
		return res
	}
	defer resp.Body.Close()
	// Buffer the whole response before relaying: a backend killed
	// mid-response must surface as a retryable failure, not a torn client
	// stream. The bound is the response C panel plus header slack.
	elem := int64(4)
	if hdr.Precision == "f64" {
		elem = 8
	}
	maxResp := int64(hdr.M)*int64(hdr.N)*elem + server.MaxHeaderBytes + 1024
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxResp))
	if err != nil {
		res.outcome, res.err = outcomeFail, fmt.Errorf("reading backend response: %w", err)
		return res
	}
	res.status = resp.StatusCode
	res.body = body
	res.contentType = resp.Header.Get("Content-Type")
	switch resp.StatusCode {
	case http.StatusOK:
		res.outcome = outcomeOK
	case http.StatusTooManyRequests:
		res.outcome = outcomeShed
	case http.StatusServiceUnavailable:
		res.outcome = outcomeNotReady
	case http.StatusInternalServerError, http.StatusBadGateway:
		res.outcome = outcomeFail
	default:
		// 400s and 504s are verdicts about the request (malformed, or its
		// own deadline expired) — relaying them is the correct answer.
		res.outcome = outcomeTerminal
	}
	return res
}

// relay writes a buffered backend response to the client, annotated with
// which backend answered and how many attempts it took.
func (rt *Router) relay(w http.ResponseWriter, res attemptResult, attempts int) {
	if res.contentType != "" {
		w.Header().Set("Content-Type", res.contentType)
	}
	w.Header().Set("X-Shalom-Backend", res.be.id)
	w.Header().Set("X-Shalom-Attempts", strconv.Itoa(attempts))
	w.WriteHeader(res.status)
	_, _ = w.Write(res.body)
}

// shedResponse answers 503 with a jittered Retry-After: the router-level
// shed signal, desynchronized so a storm of shed clients does not re-arrive
// in one synchronized wave.
func (rt *Router) shedResponse(w http.ResponseWriter, msg string) {
	rt.tel.RouterShed()
	w.Header().Set("Retry-After", strconv.Itoa(rt.retryAfter()))
	http.Error(w, msg, http.StatusServiceUnavailable)
}

func (rt *Router) retryAfter() int {
	v := rt.cfg.RetryAfter
	if rt.cfg.RetryAfterJitter > 0 {
		v += rand.IntN(rt.cfg.RetryAfterJitter + 1)
	}
	return v
}

// readRequest splits one wire request into its parsed header and raw
// payload bytes. Validation is the minimum routing needs — the owning
// backend re-validates everything at decode time.
func readRequest(r io.Reader) (server.Header, []byte, error) {
	var h server.Header
	br := bufio.NewReaderSize(r, server.MaxHeaderBytes)
	line, err := br.ReadSlice('\n')
	if err == bufio.ErrBufferFull {
		return h, nil, fmt.Errorf("router: request header exceeds %d bytes", server.MaxHeaderBytes)
	}
	if err != nil {
		return h, nil, fmt.Errorf("router: reading request header: %w", err)
	}
	if err := json.Unmarshal(line, &h); err != nil {
		return h, nil, fmt.Errorf("router: malformed request header: %w", err)
	}
	if h.Precision != "f32" && h.Precision != "f64" {
		return h, nil, fmt.Errorf("router: unknown precision %q (want f32 or f64)", h.Precision)
	}
	mode, err := libshalom.ParseMode(h.Mode)
	if err != nil {
		return h, nil, fmt.Errorf("router: %w", err)
	}
	h.Mode = mode.String()
	if h.M <= 0 || h.N <= 0 || h.K <= 0 {
		return h, nil, fmt.Errorf("router: non-positive dimensions %dx%dx%d", h.M, h.N, h.K)
	}
	if h.TimeoutMS < 0 {
		return h, nil, fmt.Errorf("router: negative timeout_ms %d", h.TimeoutMS)
	}
	payload, err := io.ReadAll(br)
	if err != nil {
		return h, nil, fmt.Errorf("router: reading request payload: %w", err)
	}
	return h, payload, nil
}

// healthBody is the router's /healthz response.
type healthBody struct {
	// Status is "ok" with the whole fleet eligible, "degraded" with some
	// backends out, "unavailable" with none eligible (also HTTP 503).
	Status     string          `json:"status"`
	Draining   bool            `json:"draining"`
	ConfigHash string          `json:"config_hash"`
	Eligible   int             `json:"eligible"`
	Ejected    int             `json:"ejected"`
	Backends   []BackendHealth `json:"backends"`
}

func (rt *Router) handleHealth(w http.ResponseWriter, r *http.Request) {
	el, ej := rt.eligibleCounts()
	body := healthBody{
		Status:     "ok",
		Draining:   rt.draining.Load(),
		ConfigHash: rt.cfgHash,
		Eligible:   el,
		Ejected:    ej,
	}
	for _, b := range rt.backends {
		body.Backends = append(body.Backends, b.health())
	}
	switch {
	case el == 0:
		body.Status = "unavailable"
	case el < len(rt.backends):
		body.Status = "degraded"
	}
	w.Header().Set("Content-Type", "application/json")
	if body.Status == "unavailable" {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	_ = json.NewEncoder(w).Encode(body)
}

// handleReady is the router's own readiness: 503 the moment a drain starts
// or the fleet has no eligible backend, 200 otherwise — what an upstream
// balancer or rolling-restart controller watches.
func (rt *Router) handleReady(w http.ResponseWriter, r *http.Request) {
	el, _ := rt.eligibleCounts()
	ready := !rt.draining.Load() && el > 0
	w.Header().Set("Content-Type", "application/json")
	if !ready {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	_ = json.NewEncoder(w).Encode(map[string]any{
		"ready": ready, "draining": rt.draining.Load(), "eligible": el,
	})
}

// writeBackendMetrics appends the per-backend series to /metrics — the
// labeled view the aggregate router families summarize. Series names are
// disjoint from the Recorder's by construction.
func (rt *Router) writeBackendMetrics(w io.Writer) {
	fmt.Fprintf(w, "# HELP libshalom_router_backend_up Backend eligibility: 1 routed-to, 0 out of rotation.\n")
	fmt.Fprintf(w, "# TYPE libshalom_router_backend_up gauge\n")
	for _, b := range rt.backends {
		h := b.health()
		up := 0
		if h.State == "healthy" && h.Ready {
			up = 1
		}
		fmt.Fprintf(w, "libshalom_router_backend_up{backend=%q,state=%q} %d\n", h.URL, h.State, up)
	}
	fmt.Fprintf(w, "# HELP libshalom_router_backend_requests_total Per-backend request outcomes observed by the router.\n")
	fmt.Fprintf(w, "# TYPE libshalom_router_backend_requests_total counter\n")
	for _, b := range rt.backends {
		h := b.health()
		fmt.Fprintf(w, "libshalom_router_backend_requests_total{backend=%q,outcome=\"ok\"} %d\n", h.URL, h.Routed)
		fmt.Fprintf(w, "libshalom_router_backend_requests_total{backend=%q,outcome=\"failure\"} %d\n", h.URL, h.Failures)
		fmt.Fprintf(w, "libshalom_router_backend_requests_total{backend=%q,outcome=\"shed\"} %d\n", h.URL, h.Sheds)
	}
	fmt.Fprintf(w, "# HELP libshalom_router_backend_trips_total Ejection trips per backend.\n")
	fmt.Fprintf(w, "# TYPE libshalom_router_backend_trips_total counter\n")
	for _, b := range rt.backends {
		h := b.health()
		fmt.Fprintf(w, "libshalom_router_backend_trips_total{backend=%q} %d\n", h.URL, h.Trips)
	}
}
