package router

import (
	"sync"
	"time"

	"libshalom/internal/telemetry"
)

// Backend states of the outlier-ejection state machine — the fleet-level
// twin of the per-kernel circuit breakers in internal/guard: consecutive
// forward/probe failures eject a backend from routing, and exponential-
// backoff readiness probes readmit it once it answers again. Ready is an
// orthogonal flag: a draining backend (readiness 503) is alive but
// deliberately out of rotation, so it is routed around without being
// ejected or penalized.
type backendState int

const (
	// StateHealthy: the backend receives traffic when its readiness flag is
	// up.
	StateHealthy backendState = iota
	// StateEjected: consecutive failures crossed the threshold; the backend
	// receives no traffic until a backoff readiness probe succeeds.
	StateEjected
)

func (s backendState) String() string {
	if s == StateEjected {
		return "ejected"
	}
	return "healthy"
}

// backend is one shalom-serve node in the fleet. Every mutable field lives
// behind mu; the request path takes the lock briefly per outcome, far off
// any proven hot path.
type backend struct {
	index int
	id    string // base URL, the rendezvous identity

	mu          sync.Mutex
	state       backendState
	ready       bool
	consecFails int
	trips       int       // ejections so far: the backoff exponent
	readmitAt   time.Time // earliest readmission probe while ejected
	lastErr     string

	routed   uint64 // 200s served
	failures uint64 // 5xx/connect failures observed
	sheds    uint64 // 429s observed
}

// BackendHealth is one backend's row in the router's /healthz body.
type BackendHealth struct {
	URL         string `json:"url"`
	State       string `json:"state"`
	Ready       bool   `json:"ready"`
	ConsecFails int    `json:"consec_fails"`
	Trips       int    `json:"trips"`
	Routed      uint64 `json:"routed"`
	Failures    uint64 `json:"failures"`
	Sheds       uint64 `json:"sheds"`
	LastErr     string `json:"last_err,omitempty"`
}

func (b *backend) health() BackendHealth {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BackendHealth{
		URL: b.id, State: b.state.String(), Ready: b.ready,
		ConsecFails: b.consecFails, Trips: b.trips,
		Routed: b.routed, Failures: b.failures, Sheds: b.sheds,
		LastErr: b.lastErr,
	}
}

// eligible reports whether the backend may receive traffic right now.
func (b *backend) eligible() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state == StateHealthy && b.ready
}

// ejected reports the state for the fleet gauges.
func (b *backend) isEjected() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state == StateEjected
}

// recordSuccess clears the failure streak: the backend answered a request.
// A passive success also restores readiness — a node that serves 200s is
// accepting traffic whatever the last probe said.
func (b *backend) recordSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.routed++
	b.consecFails = 0
	if b.state == StateHealthy {
		b.ready = true
	}
}

// recordShed notes a 429: the backend is alive and talking, just loaded —
// it clears the failure streak without counting as a success.
func (b *backend) recordShed() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.sheds++
	b.consecFails = 0
}

// recordResponsive notes a terminal 4xx/504 verdict: the backend answered
// about the request itself, so it is alive and the failure streak clears,
// but nothing was routed, failed or shed.
func (b *backend) recordResponsive() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecFails = 0
}

// recordNotReady notes a 503 on the request path — passive drain
// detection. The backend is routed around until a probe sees it ready
// again; deliberate drain is not an outlier, so no failure accrues.
func (b *backend) recordNotReady() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.ready = false
}

// recordFailure counts one 5xx/connect failure toward ejection, returning
// true when this failure tripped the ejection threshold.
func (b *backend) recordFailure(errStr string, cfg Config, now time.Time, tel *telemetry.Recorder) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures++
	b.lastErr = errStr
	if b.state != StateHealthy {
		return false
	}
	b.consecFails++
	if b.consecFails < cfg.EjectThreshold {
		return false
	}
	b.ejectLocked(cfg, now)
	tel.RouterEjection()
	return true
}

// ejectLocked moves the backend to StateEjected and schedules its first
// readmission probe with the per-trip exponential cooldown (the same
// base<<min(trips-1, 6) schedule the guard breakers use).
func (b *backend) ejectLocked(cfg Config, now time.Time) {
	b.state = StateEjected
	b.ready = false
	b.trips++
	b.readmitAt = now.Add(cfg.readmitCooldown(b.trips))
}

// probeDue reports whether the prober should probe this backend now: a
// healthy backend is probed every tick, an ejected one only once its
// cooldown expired.
func (b *backend) probeDue(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state == StateHealthy || !now.Before(b.readmitAt)
}

// probeOK applies a 200 readiness verdict, returning true when it
// readmitted an ejected backend.
func (b *backend) probeOK() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	readmitted := b.state == StateEjected
	b.state = StateHealthy
	b.ready = true
	b.consecFails = 0
	b.lastErr = ""
	return readmitted
}

// probeNotReady applies a 503 readiness verdict: the backend is alive but
// draining. Healthy backends just lose readiness; an ejected backend stays
// ejected but is re-probed next tick (it is responsive, so no extra
// backoff accrues).
func (b *backend) probeNotReady(now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.ready = false
	if b.state == StateEjected {
		b.readmitAt = now
	}
}

// probeFail applies a failed probe (connect error or unexpected status):
// it counts toward ejection on a healthy backend, and doubles the
// readmission cooldown on an ejected one. Returns true when the failure
// ejected a healthy backend.
func (b *backend) probeFail(errStr string, cfg Config, now time.Time, tel *telemetry.Recorder) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.lastErr = errStr
	if b.state == StateEjected {
		b.trips++
		b.readmitAt = now.Add(cfg.readmitCooldown(b.trips))
		return false
	}
	b.ready = false
	b.consecFails++
	if b.consecFails < cfg.EjectThreshold {
		return false
	}
	b.ejectLocked(cfg, now)
	tel.RouterEjection()
	return true
}
