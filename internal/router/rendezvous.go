package router

import "sort"

// Class-affine sharding. The coalescer on each backend gets denser the
// fewer backends a shape class is spread over: N concurrent 16×16 requests
// landing on one node share one flush, the same N sprayed round-robin over
// three nodes flush three thinner batches. Rendezvous (highest-random-
// weight) hashing gives every class a stable full preference order over the
// backends: the top-scoring backend owns the class, the second is the hedge
// and failover target, and removing a node only remaps the classes it
// owned — every other class keeps its coalescing stream intact.

// fnv64a is FNV-1a over s; inlined rather than imported so the scoring loop
// allocates nothing.
func fnv64a(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// score is one (class, backend) rendezvous weight.
func score(classKey, backendID string) uint64 {
	return fnv64a(classKey + "|" + backendID)
}

// preference returns the backends ordered by descending rendezvous score
// for the class key — the routing preference order. Ties (practically
// impossible with 64-bit scores, but the sort must stay deterministic)
// break on backend index.
func preference(classKey string, backends []*backend) []*backend {
	out := make([]*backend, len(backends))
	copy(out, backends)
	sort.SliceStable(out, func(i, j int) bool {
		si, sj := score(classKey, out[i].id), score(classKey, out[j].id)
		if si != sj {
			return si > sj
		}
		return out[i].index < out[j].index
	})
	return out
}
