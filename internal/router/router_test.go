package router

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"libshalom/internal/server"
	"libshalom/internal/telemetry"
)

// stubBackend is a scriptable shalom-serve stand-in: it counts /v1/gemm
// hits, records the header each forward carried, and answers with a
// programmable status. Its /readyz answers 200 or 503 off a flag.
type stubBackend struct {
	srv *httptest.Server

	mu      sync.Mutex
	hits    int
	headers []server.Header

	status atomic.Int32 // /v1/gemm answer; 200 default
	ready  atomic.Bool  // /readyz verdict
}

func newStub(t *testing.T) *stubBackend {
	t.Helper()
	s := &stubBackend{}
	s.status.Store(http.StatusOK)
	s.ready.Store(true)
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/gemm", func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		var h server.Header
		if line, _, ok := strings.Cut(string(body), "\n"); ok {
			json.Unmarshal([]byte(line), &h)
		}
		s.mu.Lock()
		s.hits++
		s.headers = append(s.headers, h)
		s.mu.Unlock()
		code := int(s.status.Load())
		if code == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", "1")
		}
		w.WriteHeader(code)
		fmt.Fprintf(w, "stub %d", code)
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if !s.ready.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		fmt.Fprint(w, "{}")
	})
	s.srv = httptest.NewServer(mux)
	t.Cleanup(s.srv.Close)
	return s
}

func (s *stubBackend) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits
}

func (s *stubBackend) lastHeader() server.Header {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.headers) == 0 {
		return server.Header{}
	}
	return s.headers[len(s.headers)-1]
}

func newTestRouter(t *testing.T, cfg Config, stubs ...*stubBackend) *Router {
	t.Helper()
	for _, s := range stubs {
		cfg.Backends = append(cfg.Backends, s.srv.URL)
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(rt.Close)
	return rt
}

func gemmRequest(classHeader string) *http.Request {
	body := strings.NewReader(classHeader + "\npayload-bytes")
	return httptest.NewRequest(http.MethodPost, "/v1/gemm", body)
}

const tinyHeader = `{"precision":"f32","mode":"NN","m":4,"n":4,"k":4,"alpha":1}`

func do(rt *Router, req *http.Request) *httptest.ResponseRecorder {
	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, req)
	return rec
}

// Rendezvous preference must be a permutation, deterministic, and stable
// under node removal: dropping one backend leaves every other class's owner
// unchanged.
func TestRendezvousStableUnderRemoval(t *testing.T) {
	mk := func(ids ...string) []*backend {
		var out []*backend
		for i, id := range ids {
			out = append(out, &backend{index: i, id: id})
		}
		return out
	}
	full := mk("http://a", "http://b", "http://c")
	classes := []string{"f32/NN/tiny", "f32/NN/small", "f64/NT/skinny-k", "f32/TT/large", "f64/NN/tall"}
	owner := map[string]string{}
	for _, c := range classes {
		order := preference(c, full)
		if len(order) != 3 {
			t.Fatalf("%s: preference returned %d backends", c, len(order))
		}
		if preference(c, full)[0] != order[0] {
			t.Fatalf("%s: preference not deterministic", c)
		}
		owner[c] = order[0].id
	}
	// Remove backend b: classes b did not own must keep their owner.
	reduced := mk("http://a", "http://c")
	for _, c := range classes {
		if owner[c] == "http://b" {
			continue
		}
		if got := preference(c, reduced)[0].id; got != owner[c] {
			t.Fatalf("%s: owner changed %s -> %s after removing an unrelated node", c, owner[c], got)
		}
	}
}

// Every request of one class must land on the same backend — the class
// affinity that keeps that backend's coalescer stream dense.
func TestClassAffinity(t *testing.T) {
	s1, s2, s3 := newStub(t), newStub(t), newStub(t)
	rt := newTestRouter(t, Config{}, s1, s2, s3)
	for i := 0; i < 8; i++ {
		if rec := do(rt, gemmRequest(tinyHeader)); rec.Code != http.StatusOK {
			t.Fatalf("request %d: status %d", i, rec.Code)
		}
	}
	counts := []int{s1.count(), s2.count(), s3.count()}
	hot := 0
	for _, c := range counts {
		if c > 0 {
			hot++
		}
	}
	if hot != 1 {
		t.Fatalf("one class spread over %d backends (%v), want exactly 1", hot, counts)
	}
}

// A failing preferred backend retries onto the next in preference order and
// the client still gets its 200, annotated with the attempt count.
func TestHedgedRetryOnFailure(t *testing.T) {
	s1, s2, s3 := newStub(t), newStub(t), newStub(t)
	stubs := []*stubBackend{s1, s2, s3}
	rt := newTestRouter(t, Config{}, s1, s2, s3)
	// Find the class owner and make it fail.
	do(rt, gemmRequest(tinyHeader))
	var ownerIdx int
	for i, s := range stubs {
		if s.count() > 0 {
			ownerIdx = i
		}
	}
	stubs[ownerIdx].status.Store(http.StatusInternalServerError)
	rec := do(rt, gemmRequest(tinyHeader))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200 via failover", rec.Code)
	}
	if got := rec.Header().Get("X-Shalom-Attempts"); got != "2" {
		t.Fatalf("X-Shalom-Attempts = %q, want 2", got)
	}
	if be := rec.Header().Get("X-Shalom-Backend"); be == stubs[ownerIdx].srv.URL {
		t.Fatalf("winning backend is the failing owner %s", be)
	}
}

// A shedding (429) owner also fails over — and clears, not grows, the
// owner's failure streak: load is not an outlier.
func TestShedFailsOverWithoutPenalty(t *testing.T) {
	s1, s2 := newStub(t), newStub(t)
	stubs := []*stubBackend{s1, s2}
	rt := newTestRouter(t, Config{EjectThreshold: 2}, s1, s2)
	do(rt, gemmRequest(tinyHeader))
	var owner *stubBackend
	for _, s := range stubs {
		if s.count() > 0 {
			owner = s
		}
	}
	owner.status.Store(http.StatusTooManyRequests)
	for i := 0; i < 4; i++ {
		if rec := do(rt, gemmRequest(tinyHeader)); rec.Code != http.StatusOK {
			t.Fatalf("request %d: status %d, want 200 via failover", i, rec.Code)
		}
	}
	for _, b := range rt.backends {
		if b.isEjected() {
			t.Fatalf("backend %s ejected by 429s — shedding must not count toward ejection", b.id)
		}
	}
}

// EjectThreshold consecutive failures eject the backend; once ejected it
// receives no traffic, and a recovered /readyz probe readmits it.
func TestEjectionAndReadmission(t *testing.T) {
	s1, s2 := newStub(t), newStub(t)
	stubs := []*stubBackend{s1, s2}
	tel := telemetry.New(telemetry.Options{})
	rt := newTestRouter(t, Config{
		EjectThreshold: 2,
		ProbeInterval:  20 * time.Millisecond,
		ReadmitBase:    20 * time.Millisecond,
		Telemetry:      tel,
	}, s1, s2)
	do(rt, gemmRequest(tinyHeader))
	var owner *stubBackend
	for _, s := range stubs {
		if s.count() > 0 {
			owner = s
		}
	}
	owner.status.Store(http.StatusInternalServerError)
	owner.ready.Store(false)
	for i := 0; i < 2; i++ {
		if rec := do(rt, gemmRequest(tinyHeader)); rec.Code != http.StatusOK {
			t.Fatalf("request %d: status %d, want 200 via failover", i, rec.Code)
		}
	}
	var ownerBE *backend
	for _, b := range rt.backends {
		if b.id == owner.srv.URL {
			ownerBE = b
		}
	}
	if !ownerBE.isEjected() {
		t.Fatalf("owner not ejected after %d consecutive failures", 2)
	}
	// Ejected: traffic flows without touching the owner at all.
	before := owner.count()
	for i := 0; i < 3; i++ {
		if rec := do(rt, gemmRequest(tinyHeader)); rec.Code != http.StatusOK {
			t.Fatalf("post-ejection request %d: status %d", i, rec.Code)
		}
	}
	if owner.count() != before {
		t.Fatal("ejected backend still received traffic")
	}
	// Recover the owner and let the prober readmit it.
	owner.status.Store(http.StatusOK)
	owner.ready.Store(true)
	rt.Start()
	deadline := time.Now().Add(3 * time.Second)
	for ownerBE.isEjected() {
		if time.Now().After(deadline) {
			t.Fatal("owner never readmitted after recovery")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if rec := do(rt, gemmRequest(tinyHeader)); rec.Code != http.StatusOK {
		t.Fatalf("post-readmission request: status %d", rec.Code)
	}
	snap := tel.Snapshot()
	if snap.Router.Ejections == 0 || snap.Router.Readmissions == 0 {
		t.Fatalf("telemetry ejections=%d readmissions=%d, want both > 0",
			snap.Router.Ejections, snap.Router.Readmissions)
	}
}

// A draining backend (503) is routed around without ejection or penalty —
// deliberate drain is not an outlier.
func TestDrainingBackendRoutedAroundWithoutPenalty(t *testing.T) {
	s1, s2 := newStub(t), newStub(t)
	stubs := []*stubBackend{s1, s2}
	rt := newTestRouter(t, Config{EjectThreshold: 2}, s1, s2)
	do(rt, gemmRequest(tinyHeader))
	var owner *stubBackend
	for _, s := range stubs {
		if s.count() > 0 {
			owner = s
		}
	}
	owner.status.Store(http.StatusServiceUnavailable)
	for i := 0; i < 4; i++ {
		if rec := do(rt, gemmRequest(tinyHeader)); rec.Code != http.StatusOK {
			t.Fatalf("request %d during backend drain: status %d", i, rec.Code)
		}
	}
	for _, b := range rt.backends {
		if b.isEjected() {
			t.Fatal("draining backend was ejected")
		}
	}
	// The first 503 marked the owner not-ready: later requests skip it.
	if owner.count() > 2 {
		t.Fatalf("draining owner saw %d forwards, want at most 2 (probe + detection)", owner.count())
	}
}

// Attempts rewrite timeout_ms to the remaining overall deadline, so a
// retried request never grants more time than the client asked for.
func TestTimeoutRewrittenPerAttempt(t *testing.T) {
	s1 := newStub(t)
	rt := newTestRouter(t, Config{}, s1)
	hdr := `{"precision":"f32","mode":"NN","m":4,"n":4,"k":4,"alpha":1,"timeout_ms":5000}`
	if rec := do(rt, gemmRequest(hdr)); rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	got := s1.lastHeader().TimeoutMS
	if got <= 0 || got > 5000 {
		t.Fatalf("forwarded timeout_ms = %d, want in (0, 5000]", got)
	}
}

// With the whole fleet failing, the router answers 502 after exhausting the
// retry budget — and a fleet that sheds answers 503 with Retry-After.
func TestExhaustedBudgetVerdicts(t *testing.T) {
	s1, s2 := newStub(t), newStub(t)
	rt := newTestRouter(t, Config{}, s1, s2)
	s1.status.Store(http.StatusInternalServerError)
	s2.status.Store(http.StatusInternalServerError)
	if rec := do(rt, gemmRequest(tinyHeader)); rec.Code != http.StatusBadGateway {
		t.Fatalf("all-failing fleet: status %d, want 502", rec.Code)
	}
	s1.status.Store(http.StatusTooManyRequests)
	s2.status.Store(http.StatusTooManyRequests)
	rec := do(rt, gemmRequest(tinyHeader))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("all-shedding fleet: status %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("router shed response missing Retry-After")
	}
}

// Malformed requests are rejected at the router, 400, without consuming a
// backend attempt.
func TestMalformedRejectedAtRouter(t *testing.T) {
	s1 := newStub(t)
	rt := newTestRouter(t, Config{}, s1)
	for _, hdr := range []string{
		`{"precision":"f16","mode":"NN","m":4,"n":4,"k":4}`,
		`{"precision":"f32","mode":"XX","m":4,"n":4,"k":4}`,
		`{"precision":"f32","mode":"NN","m":0,"n":4,"k":4}`,
		`{"precision":"f32","mode":"NN","m":4,"n":4,"k":4,"timeout_ms":-1}`,
		`not json at all`,
	} {
		if rec := do(rt, gemmRequest(hdr)); rec.Code != http.StatusBadRequest {
			t.Fatalf("header %q: status %d, want 400", hdr, rec.Code)
		}
	}
	if s1.count() != 0 {
		t.Fatalf("malformed requests reached the backend %d times", s1.count())
	}
}

// The router's own rolling drain: readiness flips 503 the moment Drain
// starts, new requests are refused with Retry-After, and Drain returns only
// after in-flight requests are answered.
func TestRouterDrain(t *testing.T) {
	s1 := newStub(t)
	release := make(chan struct{})
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		<-release
		w.Write([]byte("slow ok"))
	}))
	defer slow.Close()
	rt, err := New(Config{Backends: []string{slow.URL, s1.srv.URL}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer rt.Close()

	// Park one request in flight against the slow backend — whichever class
	// it owns; probe classes until the slow stub gets the request.
	inflight := make(chan int, 1)
	started := false
	for m := 4; m <= 64 && !started; m *= 2 {
		hdr := fmt.Sprintf(`{"precision":"f32","mode":"NN","m":%d,"n":4,"k":4,"alpha":1}`, m)
		order := preference(fmt.Sprintf("f32/NN/%s", telemetry.ClassifyShape(m, 4, 4)), rt.backends)
		if order[0].id != slow.URL {
			continue
		}
		started = true
		go func() {
			rec := do(rt, gemmRequest(hdr))
			inflight <- rec.Code
		}()
	}
	if !started {
		t.Skip("no probed class owned by the slow backend (hash landed all on the fast stub)")
	}
	time.Sleep(50 * time.Millisecond) // let the request reach the backend

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		drained <- rt.Drain(ctx)
	}()
	time.Sleep(20 * time.Millisecond)

	// Readiness must be down and new work refused while the drain waits.
	if rec := do(rt, httptest.NewRequest(http.MethodGet, "/readyz", nil)); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain: %d, want 503", rec.Code)
	}
	rec := do(rt, gemmRequest(tinyHeader))
	if rec.Code != http.StatusServiceUnavailable || rec.Header().Get("Retry-After") == "" {
		t.Fatalf("request during drain: %d (Retry-After %q), want 503 with Retry-After", rec.Code, rec.Header().Get("Retry-After"))
	}
	select {
	case err := <-drained:
		t.Fatalf("Drain returned %v with a request still in flight", err)
	default:
	}

	close(release)
	if err := <-drained; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if code := <-inflight; code != http.StatusOK {
		t.Fatalf("in-flight request during drain answered %d, want 200", code)
	}
}

// /healthz reports the fleet table and degrades its status with the fleet.
func TestHealthzFleetTable(t *testing.T) {
	s1, s2 := newStub(t), newStub(t)
	rt := newTestRouter(t, Config{EjectThreshold: 1}, s1, s2)
	rec := do(rt, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz: %d", rec.Code)
	}
	var body struct {
		Status     string          `json:"status"`
		ConfigHash string          `json:"config_hash"`
		Eligible   int             `json:"eligible"`
		Backends   []BackendHealth `json:"backends"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("healthz body: %v", err)
	}
	if body.Status != "ok" || body.Eligible != 2 || len(body.Backends) != 2 || body.ConfigHash == "" {
		t.Fatalf("healthz = %+v", body)
	}
	// Eject one: status degrades.
	s1.status.Store(http.StatusInternalServerError)
	s2.status.Store(http.StatusInternalServerError)
	do(rt, gemmRequest(tinyHeader))
	rec = do(rt, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	json.Unmarshal(rec.Body.Bytes(), &body)
	if body.Status == "ok" {
		t.Fatalf("healthz status %q after fleet-wide failures, want degraded/unavailable", body.Status)
	}
}

// /metrics exposes the router families plus per-backend series.
func TestMetricsExposition(t *testing.T) {
	s1 := newStub(t)
	tel := telemetry.New(telemetry.Options{})
	rt := newTestRouter(t, Config{Telemetry: tel}, s1)
	do(rt, gemmRequest(tinyHeader))
	rec := do(rt, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	out := rec.Body.String()
	for _, want := range []string{
		"libshalom_router_requests_forwarded_total 1",
		"libshalom_router_attempts_total 1",
		"libshalom_router_backend_up{",
		"libshalom_router_backend_requests_total{",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, out)
		}
	}
}

// The latency hedge: when the owner stalls past HedgeDelay, a concurrent
// attempt on the failover backend answers the request.
func TestLatencyHedge(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		select {
		case <-block:
		case <-r.Context().Done():
		}
	}))
	defer slow.Close()
	fast := newStub(t)
	// Order the backends so the slow one can own some class; find a class it
	// owns and hedge off it.
	rt, err := New(Config{Backends: []string{slow.URL, fast.srv.URL}, HedgeDelay: 30 * time.Millisecond})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer rt.Close()
	var hdr string
	for m := 4; m <= 512; m *= 2 {
		ck := fmt.Sprintf("f32/NN/%s", telemetry.ClassifyShape(m, 4, 4))
		if preference(ck, rt.backends)[0].id == slow.URL {
			hdr = fmt.Sprintf(`{"precision":"f32","mode":"NN","m":%d,"n":4,"k":4,"alpha":1}`, m)
			break
		}
	}
	if hdr == "" {
		t.Skip("no probed class owned by the slow backend")
	}
	start := time.Now()
	rec := do(rt, gemmRequest(hdr))
	if rec.Code != http.StatusOK {
		t.Fatalf("hedged request: status %d", rec.Code)
	}
	if be := rec.Header().Get("X-Shalom-Backend"); be != fast.srv.URL {
		t.Fatalf("winner = %s, want the fast hedge target", be)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("hedged answer took %v", elapsed)
	}
}
