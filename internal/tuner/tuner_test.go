package tuner

import (
	"testing"

	"libshalom/internal/analytic"
	"libshalom/internal/platform"
)

// TestAnalyticTileIsSearchOptimal: the paper's implicit claim — the
// closed-form Eq. 1–2 answer should be at (or within 1% of) the optimum an
// exhaustive search finds on every modeled platform.
func TestAnalyticTileIsSearchOptimal(t *testing.T) {
	for _, p := range platform.All() {
		for _, eb := range []int{4, 8} {
			r := SearchTile(p, eb)
			if r.Analytic.GFLOPS < r.Best.GFLOPS*0.99 {
				t.Errorf("%s elem %d: analytic %dx%d (%.1f GF) trails searched %dx%d (%.1f GF)",
					p.Name, eb, r.Analytic.MR, r.Analytic.NR, r.Analytic.GFLOPS,
					r.Best.MR, r.Best.NR, r.Best.GFLOPS)
			}
		}
	}
}

// TestSearchReachesPipePeak: the best tile must sustain the FMA pipes on
// every platform (this is what the 7×12 design is for).
func TestSearchReachesPipePeak(t *testing.T) {
	for _, p := range platform.All() {
		r := SearchTile(p, 4)
		peak := p.PeakCoreGFLOPS(4)
		if r.Best.GFLOPS < 0.95*peak {
			t.Errorf("%s: best tile only %.1f of %.1f GF", p.Name, r.Best.GFLOPS, peak)
		}
		if r.Best.GFLOPS > peak*1.0001 {
			t.Errorf("%s: best tile exceeds peak (%.2f > %.2f)", p.Name, r.Best.GFLOPS, peak)
		}
	}
}

// TestTinyTilesLoseOnLatencyBoundPlatforms: a 1×lanes tile has a single
// accumulator chain and cannot cover the FMA latency — the search must rank
// it clearly below the analytic tile.
func TestTinyTilesLose(t *testing.T) {
	r := SearchTile(platform.Phytium2000(), 4) // FMA latency 7, 1 pipe
	var tiny *Candidate
	for i := range r.Candidates {
		c := &r.Candidates[i]
		if c.MR == 1 && c.NR == 4 {
			tiny = c
		}
	}
	if tiny == nil {
		t.Fatal("1x4 tile missing from search space")
	}
	if tiny.GFLOPS >= r.Analytic.GFLOPS*0.8 {
		t.Fatalf("1x4 tile (%.1f GF) not clearly below 7x12 (%.1f GF)", tiny.GFLOPS, r.Analytic.GFLOPS)
	}
}

func TestSearchSpaceMatchesConstraint(t *testing.T) {
	r := SearchTile(platform.KP920(), 8)
	for _, c := range r.Candidates {
		if !analytic.Feasible(c.MR, c.NR, 2, analytic.RegisterBudget) {
			t.Fatalf("infeasible tile %dx%d in search space", c.MR, c.NR)
		}
	}
	if len(r.Candidates) < 20 {
		t.Fatalf("search space suspiciously small: %d", len(r.Candidates))
	}
	// Sorted descending.
	for i := 1; i < len(r.Candidates); i++ {
		if r.Candidates[i].GFLOPS > r.Candidates[i-1].GFLOPS+1e-9 {
			t.Fatal("candidates not sorted by throughput")
		}
	}
}
