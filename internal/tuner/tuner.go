// Package tuner implements the paper's §10 future-work direction: opening
// the kernel parameters to a search instead of fixing the closed-form
// analytic optimum. The search space is every register tile feasible under
// Eq. 1, evaluated through the instruction-level scoreboard model on the
// target platform; the result can be compared against the Eq. 1–2 answer
// (tests assert the analytic tile is at or within noise of the searched
// optimum on every modeled platform, which is the paper's implicit claim).
package tuner

import (
	"sort"

	"libshalom/internal/analytic"
	"libshalom/internal/isa"
	"libshalom/internal/kernels"
	"libshalom/internal/platform"
	"libshalom/internal/uarch"
)

// Candidate is one evaluated register tile.
type Candidate struct {
	MR, NR int
	// GFLOPS is the modeled steady-state throughput of the main micro-
	// kernel on the target platform with L1-resident operands.
	GFLOPS float64
	// CMR is the analytic objective of Eq. 2 for comparison.
	CMR float64
}

// Result is a completed search.
type Result struct {
	Best       Candidate
	Analytic   Candidate // the Eq. 1–2 tile evaluated the same way
	Candidates []Candidate
}

// SearchTile evaluates every feasible register tile for the platform and
// element size and returns the candidates sorted by modeled throughput
// (descending), with ties broken toward the higher-CMR tile — the analytic
// objective acts as the secondary criterion exactly as §5.2 motivates.
func SearchTile(p *platform.Platform, elemBytes int) Result {
	lanes := 16 / elemBytes
	cfg := uarch.FromPlatform(p)
	eval := func(mr, nr int) float64 {
		build := func(kc int) *isa.Program {
			if kc%lanes != 0 {
				kc += lanes - kc%lanes
			}
			return kernels.BuildMain(kernels.MainSpec{
				Elem: elemBytes, MR: mr, NR: nr, KC: kc,
				LDA: kc, LDB: nr, LDC: nr, Schedule: kernels.Pipelined,
			})
		}
		cpi := uarch.SteadyStateCPI(build, cfg, 32, 64) // cycles per K step
		return 2 * float64(mr) * float64(nr) / cpi * p.FreqGHz
	}

	var r Result
	for mr := 1; mr <= 16; mr++ {
		for nr := lanes; nr <= 16*lanes; nr += lanes {
			if !analytic.Feasible(mr, nr, lanes, analytic.RegisterBudget) {
				continue
			}
			r.Candidates = append(r.Candidates, Candidate{
				MR: mr, NR: nr, GFLOPS: eval(mr, nr), CMR: analytic.CMR(mr, nr),
			})
		}
	}
	sort.Slice(r.Candidates, func(i, j int) bool {
		a, b := r.Candidates[i], r.Candidates[j]
		if a.GFLOPS != b.GFLOPS {
			return a.GFLOPS > b.GFLOPS
		}
		if a.CMR != b.CMR {
			return a.CMR > b.CMR
		}
		if a.NR != b.NR {
			return a.NR > b.NR
		}
		return a.MR > b.MR
	})
	r.Best = r.Candidates[0]

	at := analytic.SolveForElem(elemBytes)
	r.Analytic = Candidate{MR: at.MR, NR: at.NR, GFLOPS: eval(at.MR, at.NR), CMR: at.CMR}
	return r
}
