package trace

import (
	"testing"

	"libshalom/internal/analytic"
	"libshalom/internal/cachemodel"
	"libshalom/internal/platform"
)

func setupF32(p *platform.Platform) (analytic.Tile, analytic.Blocking) {
	return analytic.SolveForElem(4), analytic.BlockingFor(p, 4)
}

func TestReplayProducesAccesses(t *testing.T) {
	p := platform.KP920()
	tile, blk := setupF32(p)
	sh := cachemodel.Shape{M: 64, N: 64, K: 64, ElemBytes: 4}
	s := Replay(p, cachemodel.Strategy{NoPackB: true}, sh, tile, blk)
	if s.L1.Accesses == 0 || s.L1.Misses == 0 {
		t.Fatalf("replay produced no traffic: %+v", s)
	}
	if s.L2.Misses > s.L1.Misses {
		t.Fatal("L2 misses cannot exceed L1 misses (inclusive chain)")
	}
}

// TestOrderingMatchesAnalyticModel is the cross-validation: on a reduced
// irregular shape, the trace simulator and the analytic model must agree
// that the conventional always-pack plan misses more in L2 than LibShalom's
// plan.
func TestOrderingMatchesAnalyticModel(t *testing.T) {
	for _, p := range platform.All() {
		tile, blk := setupF32(p)
		// Reduced analogue of the Fig 12 shape: the same N >> M character.
		sh := cachemodel.Shape{M: 32, N: 1536, K: 512, ElemBytes: 4}
		conv := cachemodel.ConventionalStrategy(false)
		ls := cachemodel.LibShalomStrategy(false, sh.N*sh.K*4, p.L1.SizeBytes)

		simConv := Replay(p, conv, sh, tile, blk)
		simLS := Replay(p, ls, sh, tile, blk)
		if simLS.L2.Misses >= simConv.L2.Misses {
			t.Errorf("%s: trace sim says LibShalom misses more (%d vs %d)", p.Name, simLS.L2.Misses, simConv.L2.Misses)
		}

		anaConv := cachemodel.Estimate(conv, p, sh, blk, false)
		anaLS := cachemodel.Estimate(ls, p, sh, blk, false)
		if anaLS.L2MissLines >= anaConv.L2MissLines {
			t.Errorf("%s: analytic model says LibShalom misses more", p.Name)
		}
	}
}

// TestMagnitudeWithinBand: the analytic model's L1 miss count must land
// within a small factor of the trace simulation on shapes where both are
// exact-ish (compulsory-dominated traffic).
func TestMagnitudeWithinBand(t *testing.T) {
	p := platform.KP920()
	tile, blk := setupF32(p)
	for _, sh := range []cachemodel.Shape{
		{M: 48, N: 48, K: 48, ElemBytes: 4},
		{M: 32, N: 768, K: 256, ElemBytes: 4},
	} {
		strat := cachemodel.LibShalomStrategy(false, sh.N*sh.K*4, p.L1.SizeBytes)
		sim := Replay(p, strat, sh, tile, blk)
		ana := cachemodel.Estimate(strat, p, sh, blk, false)
		ratio := ana.L1MissLines / float64(sim.L1.Misses)
		if ratio < 0.3 || ratio > 3.0 {
			t.Errorf("shape %dx%dx%d: analytic L1 misses %.0f vs simulated %d (ratio %.2f)",
				sh.M, sh.N, sh.K, ana.L1MissLines, sim.L1.Misses, ratio)
		}
	}
}

// TestPackingTrafficVisibleInTrace: the conventional plan's Ac/Bc buffers
// must add real L1 traffic in the simulation, as the analytic model claims.
func TestPackingTrafficVisibleInTrace(t *testing.T) {
	p := platform.Phytium2000()
	tile, blk := setupF32(p)
	sh := cachemodel.Shape{M: 64, N: 512, K: 256, ElemBytes: 4}
	noPack := Replay(p, cachemodel.Strategy{NoPackB: true}, sh, tile, blk)
	conv := Replay(p, cachemodel.ConventionalStrategy(false), sh, tile, blk)
	if conv.L1.Accesses <= noPack.L1.Accesses {
		t.Fatal("packing plan must generate more L1 accesses")
	}
}

// TestTransBWalk: the NT layout must replay without panicking and touch B
// along the stored rows.
func TestTransBWalk(t *testing.T) {
	p := platform.ThunderX2()
	tile, blk := setupF32(p)
	sh := cachemodel.Shape{M: 21, N: 384, K: 128, ElemBytes: 4}
	s := Replay(p, cachemodel.LibShalomStrategy(true, sh.N*sh.K*4, p.L1.SizeBytes), sh, tile, blk)
	if s.L1.Accesses == 0 {
		t.Fatal("NT replay produced no traffic")
	}
}

// TestNoL3PlatformLLC: on Phytium the LLC stats must equal the L2 stats.
func TestNoL3PlatformLLC(t *testing.T) {
	p := platform.Phytium2000()
	tile, blk := setupF32(p)
	sh := cachemodel.Shape{M: 16, N: 64, K: 32, ElemBytes: 4}
	s := Replay(p, cachemodel.Strategy{NoPackB: true}, sh, tile, blk)
	if s.LLC != s.L2 {
		t.Fatal("Phytium LLC stats must mirror L2")
	}
}

// TestTLBNTGatherCostly: §5.3.2 motivates lookahead packing with TLB
// behaviour — walking the stored-transposed B across many rows touches far
// more pages per reuse than streaming the packed sliver. The conventional
// NT plan (whole-panel transpose gather) must show a higher TLB miss rate
// than LibShalom's plan on the same shape.
func TestTLBNTGatherCostly(t *testing.T) {
	p := platform.KP920()
	tile, blk := setupF32(p)
	sh := cachemodel.Shape{M: 32, N: 2048, K: 512, ElemBytes: 4}
	conv := Replay(p, cachemodel.ConventionalStrategy(true), sh, tile, blk)
	ls := Replay(p, cachemodel.LibShalomStrategy(true, sh.N*sh.K*4, p.L1.SizeBytes), sh, tile, blk)
	if conv.TLB.Misses <= ls.TLB.Misses {
		t.Fatalf("conventional NT TLB misses (%d) not above LibShalom (%d)", conv.TLB.Misses, ls.TLB.Misses)
	}
}
