// Package trace generates the memory-access trace of a blocked GEMM at
// cache-line granularity and replays it through the trace-driven cache
// simulator (internal/cache). It exists to cross-validate the analytic
// blocking-level model (internal/cachemodel) on reduced shapes: the
// analytic model is what large experiments use (a per-access simulation of
// N=50176 operands is infeasible), and this package checks that its miss
// ordering and rough magnitudes agree with a faithful simulation where one
// is affordable.
package trace

import (
	"libshalom/internal/analytic"
	"libshalom/internal/cache"
	"libshalom/internal/cachemodel"
	"libshalom/internal/platform"
)

// Address-space bases keep the operands disjoint; offsets within each are
// element indices scaled by the element size.
const (
	baseA  uint64 = 0x0000_0000_0000
	baseB  uint64 = 0x0100_0000_0000
	baseC  uint64 = 0x0200_0000_0000
	baseBc uint64 = 0x0300_0000_0000
	baseAc uint64 = 0x0400_0000_0000
)

// Stats reports the replayed misses per level.
type Stats struct {
	L1, L2, LLC cache.Stats
	TLB         cache.Stats
}

// Replay walks the GEMM loop nest of the given strategy over an m×n×k
// problem and feeds every operand touch (at row-segment granularity)
// through the platform's cache hierarchy. The tile is the micro-kernel
// shape; blocking supplies (mc, kc, nc). It returns per-level statistics.
//
// The walk mirrors the structures in internal/core (LibShalom: jj→ii→kk→j
// with per-sliver overlap packing) and internal/baselines (conventional:
// jj→kk→pack Bc→ii→pack Ac→GEBP).
func Replay(plat *platform.Platform, strat cachemodel.Strategy, sh cachemodel.Shape, tile analytic.Tile, blk analytic.Blocking) Stats {
	h := cache.NewHierarchy(plat)
	eb := uint64(sh.ElemBytes)
	m, n, k := sh.M, sh.N, sh.K
	mc, kc, nc := blk.MC, blk.KC, blk.NC
	mr, nr := tile.MR, tile.NR

	// Row-segment touch helpers. Leading dimensions: A is m×k, B is k×n
	// (or n×k stored for TransB — for line-touch purposes only the segment
	// lengths differ; we model the logical K×N walk with the stored
	// layout's contiguity).
	touch := func(base uint64, off, elems int) {
		addr := base + uint64(off)*eb
		h.TLB.Access(addr) // one translation per segment start
		h.L1.AccessRange(addr, elems*int(eb))
	}
	touchA := func(i, kk, rows, cols int) {
		for r := 0; r < rows; r++ {
			touch(baseA, (i+r)*k+kk, cols)
		}
	}
	touchB := func(kk, j, rows, cols int) {
		if strat.TransB {
			// stored n×k: logical B(kk..,j..) is rows of the stored matrix
			for c := 0; c < cols; c++ {
				touch(baseB, (j+c)*k+kk, rows)
			}
			return
		}
		for r := 0; r < rows; r++ {
			touch(baseB, (kk+r)*n+j, cols)
		}
	}
	touchC := func(i, j, rows, cols int) {
		for r := 0; r < rows; r++ {
			touch(baseC, (i+r)*n+j, cols)
		}
	}
	touchBc := func(kk, j, rows, cols, width int) {
		for r := 0; r < rows; r++ {
			touch(baseBc, (kk+r)*width+j, cols)
		}
	}
	touchAc := func(i, kk, rows, cols, width int) {
		for r := 0; r < rows; r++ {
			touch(baseAc, (i+r)*width+kk, cols)
		}
	}

	conventional := strat.PackBSeq || strat.PackASeq

	for jj := 0; jj < n; jj += nc {
		ncb := min(nc, n-jj)
		if conventional {
			// jj → kk → pack Bc → ii → pack Ac → GEBP (Fig 1).
			for kk := 0; kk < k; kk += kc {
				kcb := min(kc, k-kk)
				if strat.PackBSeq {
					touchB(kk, jj, kcb, ncb)
					touchBc(0, 0, kcb, ncb, ncb) // write the panel
				}
				for ii := 0; ii < m; ii += mc {
					mcb := min(mc, m-ii)
					if strat.PackASeq {
						touchA(ii, kk, mcb, kcb)
						touchAc(0, 0, mcb, kcb, kcb)
					}
					for j := 0; j < ncb; j += nr {
						nrb := min(nr, ncb-j)
						for i := 0; i < mcb; i += mr {
							mrb := min(mr, mcb-i)
							touchAc(i, 0, mrb, kcb, kcb)
							touchBc(0, j, kcb, nrb, ncb)
							touchC(ii+i, jj+j, mrb, nrb)
						}
					}
				}
			}
			continue
		}
		// LibShalom: jj → ii → kk → j; the first tile of each j sliver
		// packs B into a kc×nr sliver buffer, later tiles reuse it.
		for ii := 0; ii < m; ii += mc {
			mcb := min(mc, m-ii)
			for kk := 0; kk < k; kk += kc {
				kcb := min(kc, k-kk)
				for j := 0; j < ncb; j += nr {
					nrb := min(nr, ncb-j)
					packSliver := strat.PackBOverlapSliver
					for i := 0; i < mcb; i += mr {
						mrb := min(mr, mcb-i)
						touchA(ii+i, kk, mrb, kcb)
						if i == 0 || !packSliver {
							// First tile (or no-pack mode) reads B itself.
							touchB(kk, jj+j, kcb, nrb)
							if packSliver {
								touchBc(0, 0, kcb, nrb, nrb) // sliver buffer write
							}
						} else {
							touchBc(0, 0, kcb, nrb, nrb) // reuse the sliver
						}
						touchC(ii+i, jj+j, mrb, nrb)
					}
				}
			}
		}
	}

	s := Stats{L1: h.L1.Stats(), L2: h.L2.Stats(), TLB: h.TLB.Stats()}
	if h.L3 != nil {
		s.LLC = h.L3.Stats()
	} else {
		s.LLC = s.L2
	}
	return s
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
