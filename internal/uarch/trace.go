package uarch

import (
	"fmt"
	"strings"

	"libshalom/internal/isa"
)

// IssueEvent records one instruction's issue in a traced simulation.
type IssueEvent struct {
	Cycle int
	Index int // instruction index in the program
	Done  int // completion cycle
}

// TraceResult bundles the timing result with the issue schedule.
type TraceResult struct {
	Result
	Events []IssueEvent
}

// SimulateTrace runs the scoreboard like Simulate but additionally records
// the issue cycle of every instruction, so tests and tools can inspect the
// schedule the bounded OoO window actually achieved (e.g. how far apart a
// load and its consumer landed — the §5.4 "instruction distance").
func SimulateTrace(p *isa.Program, cfg Config) TraceResult {
	n := len(p.Code)
	tr := TraceResult{Result: Result{Instructions: n}}
	if n == 0 {
		return tr
	}
	if cfg.Window < 1 {
		cfg.Window = 1
	}
	if cfg.IssueWidth < 1 {
		cfg.IssueWidth = 1
	}
	issued := make([]bool, n)
	doneAt := make([]int, n)
	lastWriterBefore := make([][]int, n)
	{
		cur := make([]int, 32)
		for r := range cur {
			cur[r] = -1
		}
		for i, in := range p.Code {
			var deps []int
			for _, r := range in.Uses() {
				if w := cur[r]; w >= 0 {
					deps = append(deps, w)
				}
			}
			lastWriterBefore[i] = deps
			for _, r := range in.Defs() {
				cur[r] = i
			}
		}
	}
	head := 0
	cycle := 0
	maxDone := 0
	pipes := [4]int{cfg.FMAPipes, cfg.LoadPipes, cfg.StorePipes, cfg.IssueWidth}
	for head < n {
		var used [4]int
		slots := cfg.IssueWidth
		fma, ld, st := false, false, false
		limit := head + cfg.Window
		if limit > n {
			limit = n
		}
		for i := head; i < limit && slots > 0; i++ {
			if issued[i] {
				continue
			}
			in := p.Code[i]
			cls := pipeClass(in.Op)
			if used[cls] >= pipes[cls] {
				continue
			}
			ready := true
			for _, w := range lastWriterBefore[i] {
				if !issued[w] || doneAt[w] > cycle {
					ready = false
					break
				}
			}
			if !ready {
				continue
			}
			issued[i] = true
			d := cycle + cfg.latency(in.Op)
			doneAt[i] = d
			if d > maxDone {
				maxDone = d
			}
			tr.Events = append(tr.Events, IssueEvent{Cycle: cycle, Index: i, Done: d})
			used[cls]++
			slots--
			switch cls {
			case 0:
				fma = true
			case 1:
				ld = true
			case 2:
				st = true
			}
		}
		if fma {
			tr.FMABusyCycles++
		}
		if ld {
			tr.LoadBusy++
		}
		if st {
			tr.StoreBusy++
		}
		for head < n && issued[head] {
			head++
		}
		cycle++
		if cycle > 64*n+1024 {
			panic("uarch: traced scheduler failed to make progress")
		}
	}
	tr.Cycles = maxDone
	if tr.Cycles < cycle {
		tr.Cycles = cycle
	}
	return tr
}

// IssueDistance returns, for every consumer of a load, the cycle distance
// between the load's issue and the consumer's issue — §5.4's "instruction
// distance between two dependent instructions" as realized by the core.
func (tr TraceResult) IssueDistance(p *isa.Program) map[int]int {
	issueCycle := make(map[int]int, len(tr.Events))
	for _, e := range tr.Events {
		issueCycle[e.Index] = e.Cycle
	}
	out := map[int]int{}
	lastWriter := make([]int, 32)
	for i := range lastWriter {
		lastWriter[i] = -1
	}
	for i, in := range p.Code {
		for _, u := range in.Uses() {
			if w := lastWriter[u]; w >= 0 && p.Code[w].Op.IsLoad() {
				out[i] = issueCycle[i] - issueCycle[w]
			}
		}
		for _, d := range in.Defs() {
			lastWriter[d] = i
		}
	}
	return out
}

// FormatSchedule renders the first maxCycles cycles of the schedule as a
// readable table (one line per cycle, instructions that issued that cycle).
func (tr TraceResult) FormatSchedule(p *isa.Program, maxCycles int) string {
	byCycle := map[int][]int{}
	last := 0
	for _, e := range tr.Events {
		byCycle[e.Cycle] = append(byCycle[e.Cycle], e.Index)
		if e.Cycle > last {
			last = e.Cycle
		}
	}
	if maxCycles > 0 && last > maxCycles {
		last = maxCycles
	}
	var b strings.Builder
	for cy := 0; cy <= last; cy++ {
		fmt.Fprintf(&b, "cy%4d:", cy)
		if idxs, ok := byCycle[cy]; ok {
			for _, i := range idxs {
				fmt.Fprintf(&b, "  [%d]%s", i, p.Code[i].Op)
			}
		} else {
			b.WriteString("  (stall)")
		}
		b.WriteByte('\n')
	}
	return b.String()
}
