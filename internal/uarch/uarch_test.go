package uarch

import (
	"testing"

	"libshalom/internal/isa"
	"libshalom/internal/platform"
)

func cfg1() Config {
	return Config{
		IssueWidth: 4, FMAPipes: 1, LoadPipes: 2, StorePipes: 1,
		Window: 16, FMALatency: 4, LoadLatency: 4, StoreLatency: 1, MiscLatency: 3,
	}
}

func TestEmptyProgram(t *testing.T) {
	p := isa.NewBuilder("empty", 4).MustBuild()
	r := Simulate(p, cfg1())
	if r.Cycles != 0 || r.Instructions != 0 {
		t.Fatalf("empty program result %+v", r)
	}
	if r.IPC() != 0 || r.FMAUtilization() != 0 {
		t.Fatal("empty program rates must be 0")
	}
}

func TestSingleInstructionLatency(t *testing.T) {
	b := isa.NewBuilder("one", 4)
	s := b.Stream("A", isa.StreamA, 4, true)
	b.LdVec(0, s, 0)
	r := Simulate(b.MustBuild(), cfg1())
	if r.Cycles != 4 {
		t.Fatalf("single load cycles = %d, want load latency 4", r.Cycles)
	}
}

func TestDependentChainSerializes(t *testing.T) {
	// v0 -> v1 -> v2 chain of FMAs: 3 × FMALatency.
	b := isa.NewBuilder("chain", 4)
	b.Zero(0)
	b.FmlaVec(1, 0, 0)
	b.FmlaVec(2, 1, 1)
	b.FmlaVec(3, 2, 2)
	c := cfg1()
	c.MiscLatency = 1
	r := Simulate(b.MustBuild(), c)
	// zero at cy0 done cy1; fmla1 at cy1 done cy5; fmla2 at cy5 done cy9;
	// fmla3 at cy9 done cy13.
	if r.Cycles != 13 {
		t.Fatalf("chain cycles = %d, want 13", r.Cycles)
	}
}

func TestIndependentFMAsPipelineOnOnePipe(t *testing.T) {
	// 8 independent FMAs on 1 pipe: issue 1/cycle -> last issues at cy7,
	// completes at 7+4=11.
	b := isa.NewBuilder("indep", 4)
	for i := 0; i < 8; i++ {
		b.Zero(i)
	}
	for i := 0; i < 8; i++ {
		b.FmlaVec(i, i, i)
	}
	c := cfg1()
	c.MiscLatency = 1
	c.Window = 32
	r := Simulate(b.MustBuild(), c)
	// zeros: 1 FMA pipe → zeros issue 1/cycle too (they use the FP pipe).
	// 8 zeros finish issuing at cy7; fmla_i needs zero_i done (cy i+1).
	// fmla0 at cy8? No: window lets fmlas interleave — but pipe is shared.
	// Total issue slots on FP pipe = 16 instrs → ≥16 cycles; last completes
	// at 15+4 = 19.
	if r.Cycles != 19 {
		t.Fatalf("cycles = %d, want 19", r.Cycles)
	}
	if r.FMABusyCycles != 16 {
		t.Fatalf("FMA busy cycles = %d, want 16", r.FMABusyCycles)
	}
}

func TestTwoFMAPipesDoubleThroughput(t *testing.T) {
	build := func() *isa.Program {
		b := isa.NewBuilder("p", 4)
		for i := 0; i < 16; i++ {
			b.Zero(i % 32)
		}
		return b.MustBuild()
	}
	c1 := cfg1()
	c1.MiscLatency = 1
	c2 := c1
	c2.FMAPipes = 2
	r1 := Simulate(build(), c1)
	r2 := Simulate(build(), c2)
	if r2.Cycles >= r1.Cycles {
		t.Fatalf("2 pipes (%d cy) not faster than 1 pipe (%d cy)", r2.Cycles, r1.Cycles)
	}
}

func TestLoadPipeStructuralHazard(t *testing.T) {
	// 6 independent loads, 2 load pipes: issue over 3 cycles, last done at
	// 2+4 = 6.
	b := isa.NewBuilder("loads", 4)
	s := b.Stream("A", isa.StreamA, 64, true)
	for i := 0; i < 6; i++ {
		b.LdVec(i, s, i*4)
	}
	r := Simulate(b.MustBuild(), cfg1())
	if r.Cycles != 6 {
		t.Fatalf("cycles = %d, want 6", r.Cycles)
	}
}

func TestIssueWidthLimits(t *testing.T) {
	// 8 independent loads with 8 load pipes but issue width 2: 4 cycles of
	// issue, last completes at 3+4=7.
	b := isa.NewBuilder("iw", 4)
	s := b.Stream("A", isa.StreamA, 64, true)
	for i := 0; i < 8; i++ {
		b.LdVec(i, s, i*4)
	}
	c := cfg1()
	c.LoadPipes = 8
	c.IssueWidth = 2
	r := Simulate(b.MustBuild(), c)
	if r.Cycles != 7 {
		t.Fatalf("cycles = %d, want 7", r.Cycles)
	}
}

func TestRAWThroughMemoryOpsRespected(t *testing.T) {
	// Store must wait for the FMA producing its source.
	b := isa.NewBuilder("st", 4)
	s := b.Stream("C", isa.StreamC, 4, true)
	b.Zero(0)
	b.FmlaVec(0, 0, 0)
	b.StVec(0, s, 0)
	c := cfg1()
	c.MiscLatency = 1
	r := Simulate(b.MustBuild(), c)
	// zero done cy1, fmla issues cy1 done cy5, store issues cy5 done cy6.
	if r.Cycles != 6 {
		t.Fatalf("cycles = %d, want 6", r.Cycles)
	}
}

// TestWindowEffectBatchVsInterleaved reproduces the Fig 6 phenomenon at the
// model level: with a bounded window, a batch of loads followed by all their
// dependent FMAs runs slower than the same work with loads interleaved
// between FMAs of the previous iteration.
func TestWindowEffectBatchVsInterleaved(t *testing.T) {
	const iters = 16
	// Batch: per iteration, 4 loads then 8 FMAs all depending on them.
	batch := func() *isa.Program {
		b := isa.NewBuilder("batch", 4)
		s := b.Stream("A", isa.StreamA, 16*iters, true)
		for it := 0; it < iters; it++ {
			off := it * 16
			for l := 0; l < 4; l++ {
				b.LdVec(l, s, off+l*4)
			}
			for f := 0; f < 8; f++ {
				b.FmlaElem(8+f, f%4, f%4, 0)
			}
		}
		return b.MustBuild()
	}
	// Interleaved: loads spread between FMAs (LibShalom's Fig 6b shape).
	inter := func() *isa.Program {
		b := isa.NewBuilder("inter", 4)
		s := b.Stream("A", isa.StreamA, 16*iters, true)
		// Software-pipelined: load for iteration it+1 interleaved with
		// FMAs of iteration it. Registers double-buffered (0-3 / 4-7).
		for l := 0; l < 4; l++ {
			b.LdVec(l, s, l*4)
		}
		for it := 0; it < iters; it++ {
			cur := (it % 2) * 4
			nxt := ((it + 1) % 2) * 4
			off := (it + 1) * 16
			for f := 0; f < 8; f++ {
				b.FmlaElem(8+f, cur+f%4, cur+f%4, 0)
				if f < 4 && it+1 < iters {
					b.LdVec(nxt+f, s, off+f*4)
				}
			}
		}
		return b.MustBuild()
	}
	c := cfg1()
	c.Window = 10      // narrow window makes batching hurt
	c.LoadLatency = 14 // edge-kernel loads are rarely L1 hits (strided B, C tile)
	rb := Simulate(batch(), c)
	ri := Simulate(inter(), c)
	if ri.Cycles >= rb.Cycles {
		t.Fatalf("interleaved (%d cy) not faster than batch (%d cy)", ri.Cycles, rb.Cycles)
	}
}

func TestSteadyStateCPI(t *testing.T) {
	build := func(iters int) *isa.Program {
		b := isa.NewBuilder("ss", 4)
		s := b.Stream("A", isa.StreamA, 4*iters, true)
		for i := 0; i < iters; i++ {
			b.LdVec(i%8, s, i*4)
			b.FmlaElem(8+(i%8), i%8, i%8, 0)
		}
		return b.MustBuild()
	}
	cpi := SteadyStateCPI(build, cfg1(), 32, 64)
	// One FMA per iteration on one pipe → at least 1 cycle/iter; with
	// 2 load pipes the load is free. Expect close to 1.
	if cpi < 0.9 || cpi > 2.0 {
		t.Fatalf("steady-state CPI = %v, want ≈1", cpi)
	}
}

func TestFromPlatformMatchesSpec(t *testing.T) {
	p := platform.KP920()
	c := FromPlatform(p)
	if c.FMAPipes != 2 || c.IssueWidth != 4 || c.FMALatency != 4 || c.Window != 24 {
		t.Fatalf("FromPlatform mismatch: %+v", c)
	}
}

func TestAllPlatformConfigsSimulate(t *testing.T) {
	b := isa.NewBuilder("x", 4)
	s := b.Stream("A", isa.StreamA, 8, true)
	b.LdVec(0, s, 0).LdVec(1, s, 4).FmlaVec(2, 0, 1)
	p := b.MustBuild()
	for _, pl := range platform.All() {
		r := Simulate(p, FromPlatform(pl))
		if r.Cycles <= 0 {
			t.Fatalf("%s produced %d cycles", pl.Name, r.Cycles)
		}
	}
}

func TestDegenerateConfigClamped(t *testing.T) {
	b := isa.NewBuilder("d", 4)
	b.Zero(0).Zero(1)
	p := b.MustBuild()
	r := Simulate(p, Config{FMAPipes: 1, LoadPipes: 1, StorePipes: 1}) // zero width/window
	if r.Cycles <= 0 {
		t.Fatal("degenerate config did not clamp")
	}
}

func TestIPC(t *testing.T) {
	r := Result{Cycles: 10, Instructions: 20}
	if r.IPC() != 2 {
		t.Fatal("IPC wrong")
	}
}
