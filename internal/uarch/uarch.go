// Package uarch is the micro-architecture timing model of the reproduction:
// a scoreboard simulator that schedules a virtual-NEON program (internal/isa)
// onto a parameterized ARMv8-like core — bounded out-of-order window,
// limited issue width, a fixed number of FMA/load/store pipes, and
// per-class result latencies.
//
// The model deliberately captures the two mechanisms §5.4 of the paper builds
// on: (1) a batch of loads ahead of dependent FMAs leaves the FMA pipes idle
// while the bounded window is clogged with waiting instructions, and (2)
// placing enough independent instructions between a producer and its consumer
// hides the producer's latency. Register renaming is assumed (only RAW
// dependencies stall, as on real ARMv8 cores); memory disambiguation is not
// modeled because no micro-kernel in this repository reads a location it
// previously stored within the same program.
package uarch

import (
	"libshalom/internal/isa"
	"libshalom/internal/platform"
)

// Config holds the core parameters the scheduler uses.
type Config struct {
	IssueWidth   int
	FMAPipes     int
	LoadPipes    int
	StorePipes   int
	Window       int // how many in-flight-or-waiting instructions the core can look past
	FMALatency   int // FMA and other FP ops, result latency
	LoadLatency  int // L1-hit load-to-use latency
	StoreLatency int // cycles a store occupies before retiring (no consumers)
	MiscLatency  int // dup/zero/reduce and friends
}

// FromPlatform derives a core Config from a platform model.
func FromPlatform(p *platform.Platform) Config {
	return Config{
		IssueWidth:   p.IssueWidth,
		FMAPipes:     p.FMAPipes,
		LoadPipes:    p.LoadPipes,
		StorePipes:   p.StorePipes,
		Window:       p.OoOWindow,
		FMALatency:   p.FMALatency,
		LoadLatency:  p.LoadLatL1,
		StoreLatency: 1,
		MiscLatency:  3,
	}
}

// Result reports what the simulation observed.
type Result struct {
	Cycles        int // total cycles from first issue to last completion
	Instructions  int
	FMABusyCycles int // cycles with at least one FMA pipe issuing
	LoadBusy      int
	StoreBusy     int
}

// IPC returns retired instructions per cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}

// FMAUtilization returns the fraction of cycles in which an FMA issued.
func (r Result) FMAUtilization() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.FMABusyCycles) / float64(r.Cycles)
}

func (c Config) latency(op isa.Op) int {
	switch {
	case op.IsLoad():
		return c.LoadLatency
	case op.IsStore():
		return c.StoreLatency
	case op == isa.FmlaElem || op == isa.FmlaVec || op == isa.FmulElem ||
		op == isa.FaddVec || op == isa.FmulVec || op == isa.FmulScalarAll:
		return c.FMALatency
	default:
		return c.MiscLatency
	}
}

func pipeClass(op isa.Op) int {
	switch {
	case op.IsLoad():
		return 1
	case op.IsStore():
		return 2
	case op == isa.Nop:
		return 3
	default:
		return 0 // FMA/FP pipe
	}
}

// Simulate schedules the whole program and returns cycle statistics.
// Instructions issue out of order within a sliding window of cfg.Window
// entries anchored at the oldest unissued instruction; at most
// cfg.IssueWidth instructions issue per cycle subject to pipe availability
// and RAW readiness.
func Simulate(p *isa.Program, cfg Config) Result {
	n := len(p.Code)
	res := Result{Instructions: n}
	if n == 0 {
		return res
	}
	if cfg.Window < 1 {
		cfg.Window = 1
	}
	if cfg.IssueWidth < 1 {
		cfg.IssueWidth = 1
	}

	// readyAt[i]: earliest cycle instruction i's sources are all available.
	// Computed incrementally from register completion times as producers
	// issue. regReady[r] is the completion cycle of the youngest issued
	// writer of r; pendingWriter[r] is the index of the youngest unissued
	// writer (an instruction cannot issue before writers of its sources
	// that precede it in program order have issued — enforced by tracking
	// the producing instruction per register in program order).
	issued := make([]bool, n)
	doneAt := make([]int, n) // completion cycle of issued instructions

	// lastWriter[r] = instruction index of the most recent writer of r in
	// program order, computed on the fly while scanning the window.
	lastWriterBefore := make([][]int, n) // per instruction: producer indices of its sources
	{
		cur := make([]int, 32)
		for r := range cur {
			cur[r] = -1
		}
		for i, in := range p.Code {
			var deps []int
			for _, r := range in.Uses() {
				if w := cur[r]; w >= 0 {
					deps = append(deps, w)
				}
			}
			lastWriterBefore[i] = deps
			for _, r := range in.Defs() {
				cur[r] = i
			}
		}
	}

	head := 0 // oldest unissued instruction
	cycle := 0
	maxDone := 0
	pipes := [4]int{cfg.FMAPipes, cfg.LoadPipes, cfg.StorePipes, cfg.IssueWidth}

	for head < n {
		var used [4]int
		slots := cfg.IssueWidth
		fmaIssued, loadIssued, storeIssued := false, false, false
		limit := head + cfg.Window
		if limit > n {
			limit = n
		}
		for i := head; i < limit && slots > 0; i++ {
			if issued[i] {
				continue
			}
			in := p.Code[i]
			cls := pipeClass(in.Op)
			if used[cls] >= pipes[cls] {
				continue
			}
			ready := true
			for _, w := range lastWriterBefore[i] {
				if !issued[w] || doneAt[w] > cycle {
					ready = false
					break
				}
			}
			if !ready {
				continue
			}
			// Issue.
			issued[i] = true
			d := cycle + cfg.latency(in.Op)
			doneAt[i] = d
			if d > maxDone {
				maxDone = d
			}
			used[cls]++
			slots--
			switch cls {
			case 0:
				fmaIssued = true
			case 1:
				loadIssued = true
			case 2:
				storeIssued = true
			}
		}
		if fmaIssued {
			res.FMABusyCycles++
		}
		if loadIssued {
			res.LoadBusy++
		}
		if storeIssued {
			res.StoreBusy++
		}
		for head < n && issued[head] {
			head++
		}
		cycle++
		// Safety valve: a cycle must always make progress eventually; the
		// dependence graph is acyclic so the oldest unissued instruction
		// becomes ready once its producers complete.
		if cycle > 64*n+1024 {
			panic("uarch: scheduler failed to make progress")
		}
	}
	res.Cycles = maxDone
	if res.Cycles < cycle {
		res.Cycles = cycle
	}
	return res
}

// SteadyStateCPI estimates the steady-state cycles per iteration of a kernel
// by simulating programs built at two unroll depths and differencing, which
// cancels prologue/epilogue cost. build(iters) must return the kernel
// unrolled iters times; n1 < n2.
func SteadyStateCPI(build func(iters int) *isa.Program, cfg Config, n1, n2 int) float64 {
	c1 := Simulate(build(n1), cfg).Cycles
	c2 := Simulate(build(n2), cfg).Cycles
	if n2 <= n1 {
		panic("uarch: SteadyStateCPI needs n2 > n1")
	}
	return float64(c2-c1) / float64(n2-n1)
}
