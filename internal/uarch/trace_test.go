package uarch

import (
	"strings"
	"testing"

	"libshalom/internal/isa"
)

func traceProg(t *testing.T) *isa.Program {
	t.Helper()
	b := isa.NewBuilder("trace", 4)
	s := b.Stream("A", isa.StreamA, 16, true)
	b.LdVec(0, s, 0)
	b.FmlaVec(1, 0, 0) // depends on the load
	b.LdVec(2, s, 4)   // independent
	b.FmlaVec(3, 2, 2)
	return b.MustBuild()
}

func TestSimulateTraceMatchesSimulate(t *testing.T) {
	p := traceProg(t)
	cfg := cfg1()
	plain := Simulate(p, cfg)
	traced := SimulateTrace(p, cfg)
	if traced.Cycles != plain.Cycles || traced.FMABusyCycles != plain.FMABusyCycles {
		t.Fatalf("traced result %+v differs from plain %+v", traced.Result, plain)
	}
	if len(traced.Events) != len(p.Code) {
		t.Fatalf("trace has %d events for %d instructions", len(traced.Events), len(p.Code))
	}
}

func TestTraceEmptyProgram(t *testing.T) {
	p := isa.NewBuilder("e", 4).MustBuild()
	tr := SimulateTrace(p, cfg1())
	if tr.Cycles != 0 || len(tr.Events) != 0 {
		t.Fatal("empty trace wrong")
	}
}

func TestIssueOrderRespectsDependencies(t *testing.T) {
	p := traceProg(t)
	tr := SimulateTrace(p, cfg1())
	issue := map[int]int{}
	done := map[int]int{}
	for _, e := range tr.Events {
		issue[e.Index] = e.Cycle
		done[e.Index] = e.Done
	}
	// FMA (instr 1) must not issue before its load (instr 0) completes.
	if issue[1] < done[0] {
		t.Fatalf("dependent FMA issued at cy%d before load done at cy%d", issue[1], done[0])
	}
	// The independent load (instr 2) should issue early (OoO), not wait for
	// the dependent FMA.
	if issue[2] > issue[1] {
		t.Fatalf("independent load waited for dependent FMA (cy%d vs cy%d)", issue[2], issue[1])
	}
}

func TestIssueDistanceReflectsSchedule(t *testing.T) {
	p := traceProg(t)
	tr := SimulateTrace(p, cfg1())
	dist := tr.IssueDistance(p)
	// Instruction 1 consumes instruction 0's load: distance must be at
	// least the load latency.
	if dist[1] < cfg1().LoadLatency {
		t.Fatalf("load→consumer distance %d below load latency", dist[1])
	}
	if _, ok := dist[3]; !ok {
		t.Fatal("second consumer missing from distance map")
	}
}

func TestFormatSchedule(t *testing.T) {
	p := traceProg(t)
	tr := SimulateTrace(p, cfg1())
	out := tr.FormatSchedule(p, 32)
	if !strings.Contains(out, "cy   0:") || !strings.Contains(out, "ldr.q") {
		t.Fatalf("schedule rendering wrong:\n%s", out)
	}
	if !strings.Contains(out, "stall") {
		t.Fatalf("stall cycles not rendered:\n%s", out)
	}
}

// TestTraceShowsFig6Distance: the pipelined edge schedule must realize a
// larger average load→consumer distance than the batch schedule — the §5.4
// mechanism made directly observable.
func TestTraceShowsFig6Distance(t *testing.T) {
	// Construct batch and interleaved variants inline (mirrors Fig 6).
	mk := func(interleave bool) *isa.Program {
		b := isa.NewBuilder("f6", 4)
		s := b.Stream("A", isa.StreamA, 64, true)
		if interleave {
			b.LdVec(0, s, 0)
			b.LdVec(1, s, 4)
			for it := 0; it < 4; it++ {
				cur := (it % 2)
				nxt := 1 - cur
				b.FmlaElem(8+it, cur, cur, 0)
				if it < 3 {
					b.LdVec(nxt, s, (it+1)*8)
				}
				b.FmlaElem(12+it, cur, cur, 1)
			}
		} else {
			for it := 0; it < 4; it++ {
				b.LdVec(it%2, s, it*8)
				b.FmlaElem(8+it, it%2, it%2, 0)
				b.FmlaElem(12+it, it%2, it%2, 1)
			}
		}
		return b.MustBuild()
	}
	cfg := cfg1()
	cfg.Window = 4
	cfg.LoadLatency = 10
	ti := SimulateTrace(mk(true), cfg)
	tb := SimulateTrace(mk(false), cfg)
	if ti.Cycles > tb.Cycles {
		t.Fatalf("interleaved schedule (%d cy) slower than batch (%d cy)", ti.Cycles, tb.Cycles)
	}
	// Every realized load→consumer issue distance must be at least the
	// load latency (the scoreboard never issues a consumer early); the
	// interleaved variant achieves that distance without stalling, which
	// is what the cycle counts above show.
	d := ti.IssueDistance(mk(true))
	if len(d) == 0 {
		t.Fatal("no dependent pairs recorded")
	}
	for i, v := range d {
		if v < cfg.LoadLatency {
			t.Fatalf("consumer %d issued %d cycles after its load (< latency %d)", i, v, cfg.LoadLatency)
		}
	}
}
