package vexec

import (
	"math"
	"testing"

	"libshalom/internal/isa"
)

func TestLdStRoundTripF32(t *testing.T) {
	b := isa.NewBuilder("ldst", 4)
	sa := b.Stream("in", isa.StreamA, 4, true)
	sc := b.Stream("out", isa.StreamC, 4, true)
	b.LdVec(3, sa, 0).StVec(3, sc, 0)
	p := b.MustBuild()
	in := []float32{1, 2, 3, 4}
	out := make([]float32, 4)
	if err := RunF32(p, in, out); err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("out = %v", out)
		}
	}
}

func TestLdStRoundTripF64(t *testing.T) {
	b := isa.NewBuilder("ldst64", 8)
	sa := b.Stream("in", isa.StreamA, 2, true)
	sc := b.Stream("out", isa.StreamC, 2, true)
	b.LdVec(0, sa, 0).StVec(0, sc, 0)
	p := b.MustBuild()
	out := make([]float64, 2)
	if err := RunF64(p, []float64{-1.5, 2.5}, out); err != nil {
		t.Fatal(err)
	}
	if out[0] != -1.5 || out[1] != 2.5 {
		t.Fatalf("out = %v", out)
	}
}

func TestFmlaElemOuterProduct(t *testing.T) {
	// C[0:4] += A[0:4] * B[lane] — the scalar-vector multiply of Alg 2.
	b := isa.NewBuilder("fmla", 4)
	sa := b.Stream("A", isa.StreamA, 4, true)
	sb := b.Stream("B", isa.StreamB, 4, true)
	sc := b.Stream("C", isa.StreamC, 4, true)
	b.LdVec(0, sa, 0).LdVec(1, sb, 0).LdVec(2, sc, 0)
	b.FmlaElem(2, 0, 1, 2) // C += A * B[2]
	b.StVec(2, sc, 0)
	p := b.MustBuild()
	a := []float32{1, 2, 3, 4}
	bv := []float32{10, 20, 30, 40}
	c := []float32{100, 100, 100, 100}
	if err := RunF32(p, a, bv, c); err != nil {
		t.Fatal(err)
	}
	want := []float32{130, 160, 190, 220}
	for i := range want {
		if c[i] != want[i] {
			t.Fatalf("c = %v, want %v", c, want)
		}
	}
}

func TestFmlaVecInnerProductWithReduce(t *testing.T) {
	// Dot product via vector-vector FMA then reduce — Alg 3's formulation.
	b := isa.NewBuilder("dot", 4)
	sa := b.Stream("A", isa.StreamA, 4, true)
	sb := b.Stream("B", isa.StreamB, 4, true)
	sc := b.Stream("C", isa.StreamC, 1, true)
	b.LdVec(0, sa, 0).LdVec(1, sb, 0).Zero(2)
	b.FmlaVec(2, 0, 1)
	b.Reduce(3, 2)
	b.StLane(3, 0, sc, 0)
	p := b.MustBuild()
	a := []float32{1, 2, 3, 4}
	bv := []float32{5, 6, 7, 8}
	c := make([]float32, 1)
	if err := RunF32(p, a, bv, c); err != nil {
		t.Fatal(err)
	}
	if c[0] != 70 { // 5+12+21+32
		t.Fatalf("dot = %v, want 70", c[0])
	}
}

func TestScalarLoadsAndPair(t *testing.T) {
	b := isa.NewBuilder("scalars", 4)
	s := b.Stream("in", isa.StreamB, 4, true)
	o := b.Stream("out", isa.StreamC, 3, true)
	b.LdScalar(0, s, 2)
	b.LdScalarPair(1, 2, s, 0)
	b.StLane(0, 0, o, 0).StLane(1, 0, o, 1).StLane(2, 0, o, 2)
	p := b.MustBuild()
	out := make([]float32, 3)
	if err := RunF32(p, []float32{7, 8, 9, 10}, out); err != nil {
		t.Fatal(err)
	}
	if out[0] != 9 || out[1] != 7 || out[2] != 8 {
		t.Fatalf("out = %v", out)
	}
}

func TestLdScalarZeroesHighLanes(t *testing.T) {
	// Preload the register with non-zero lanes, then check LdScalar clears
	// lanes 1..3 like `ldr s` does.
	b2 := isa.NewBuilder("zlanes", 4)
	s2 := b2.Stream("in", isa.StreamB, 4, true)
	o2 := b2.Stream("out", isa.StreamC, 4, true)
	b2.LdVec(0, s2, 0) // v0 = garbage-ish (1,2,3,4)
	b2.LdScalar(0, s2, 1)
	b2.StVec(0, o2, 0)
	p := b2.MustBuild()
	out := make([]float32, 4)
	if err := RunF32(p, []float32{1, 2, 3, 4}, out); err != nil {
		t.Fatal(err)
	}
	if out[0] != 2 || out[1] != 0 || out[2] != 0 || out[3] != 0 {
		t.Fatalf("ldr s must zero high lanes: %v", out)
	}
}

func TestDupBroadcast(t *testing.T) {
	b := isa.NewBuilder("dup", 8)
	s := b.Stream("in", isa.StreamB, 2, true)
	o := b.Stream("out", isa.StreamC, 2, true)
	b.LdVec(0, s, 0).Dup(1, 0, 1).StVec(1, o, 0)
	p := b.MustBuild()
	out := make([]float64, 2)
	if err := RunF64(p, []float64{3, 9}, out); err != nil {
		t.Fatal(err)
	}
	if out[0] != 9 || out[1] != 9 {
		t.Fatalf("dup result %v", out)
	}
}

func TestFaddFmulVec(t *testing.T) {
	b := isa.NewBuilder("arith", 4)
	s := b.Stream("in", isa.StreamB, 8, true)
	o := b.Stream("out", isa.StreamC, 8, true)
	b.LdVec(0, s, 0).LdVec(1, s, 4)
	b.FaddVec(2, 0, 1).FmulVec(3, 0, 1)
	b.StVec(2, o, 0).StVec(3, o, 4)
	p := b.MustBuild()
	out := make([]float32, 8)
	if err := RunF32(p, []float32{1, 2, 3, 4, 10, 20, 30, 40}, out); err != nil {
		t.Fatal(err)
	}
	if out[0] != 11 || out[3] != 44 || out[4] != 10 || out[7] != 160 {
		t.Fatalf("out = %v", out)
	}
}

func TestFmulElemAndScalarAll(t *testing.T) {
	b := isa.NewBuilder("scale", 4)
	s := b.Stream("in", isa.StreamB, 8, true)
	o := b.Stream("out", isa.StreamC, 4, true)
	b.LdVec(0, s, 0).LdVec(1, s, 4)
	b.FmulElem(2, 0, 1, 3)  // v2 = v0 * v1[3] = {1,2,3,4} * 8
	b.FmulScalarAll(2, 0.5) // v2 *= 0.5
	b.StVec(2, o, 0)
	p := b.MustBuild()
	out := make([]float32, 4)
	if err := RunF32(p, []float32{1, 2, 3, 4, 5, 6, 7, 8}, out); err != nil {
		t.Fatal(err)
	}
	if out[0] != 4 || out[1] != 8 || out[2] != 12 || out[3] != 16 {
		t.Fatalf("out = %v", out)
	}
}

func TestReduceF64(t *testing.T) {
	b := isa.NewBuilder("red64", 8)
	s := b.Stream("in", isa.StreamB, 2, true)
	o := b.Stream("out", isa.StreamC, 1, true)
	b.LdVec(0, s, 0).Reduce(1, 0).StLane(1, 0, o, 0)
	p := b.MustBuild()
	out := make([]float64, 1)
	if err := RunF64(p, []float64{1.25, 2.75}, out); err != nil {
		t.Fatal(err)
	}
	if math.Abs(out[0]-4) > 1e-15 {
		t.Fatalf("reduce = %v", out[0])
	}
}

func TestBindingValidation(t *testing.T) {
	b := isa.NewBuilder("v", 4)
	b.Stream("A", isa.StreamA, 4, true)
	b.Zero(0)
	p := b.MustBuild()
	if _, err := NewMachine(p, nil, [][]float64{{1}}); err == nil {
		t.Fatal("FP64 bindings accepted for FP32 program")
	}
	if _, err := NewMachine(p, [][]float32{}, nil); err == nil {
		t.Fatal("missing stream binding accepted")
	}
	if _, err := NewMachine(p, [][]float32{{1, 2}}, nil); err == nil {
		t.Fatal("too-short stream binding accepted")
	}
	if _, err := NewMachine(p, [][]float32{{1, 2, 3, 4}}, nil); err != nil {
		t.Fatalf("valid binding rejected: %v", err)
	}
}

func TestTouchedTracking(t *testing.T) {
	b := isa.NewBuilder("touch", 4)
	b.Zero(5)
	p := b.MustBuild()
	m, err := NewMachine(p, [][]float32{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.Run()
	if !m.Touched[5] || m.Touched[4] {
		t.Fatal("touched tracking wrong")
	}
}

func TestUnhandledOpPanics(t *testing.T) {
	m := &Machine{prog: &isa.Program{ElemBytes: 4}, lanes: 4}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown op did not panic")
		}
	}()
	m.step(isa.Instr{Op: isa.Op(250)})
}
