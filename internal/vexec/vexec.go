// Package vexec executes virtual-NEON programs (internal/isa) functionally:
// real FP32/FP64 arithmetic on real slices. It exists to prove that every
// micro-kernel emitted by internal/kernels computes exactly what its portable
// Go counterpart computes — the reproduction's substitute for running the
// paper's hand-written assembly on hardware.
package vexec

import (
	"fmt"

	"libshalom/internal/isa"
)

// VReg is one 128-bit vector register's functional state. Only the side
// matching the executing program's element size is meaningful.
type VReg struct {
	F32 [4]float32
	F64 [2]float64
}

// Machine holds the architectural state for one program execution.
type Machine struct {
	V       [32]VReg
	prog    *isa.Program
	mem32   [][]float32
	mem64   [][]float64
	lanes   int
	Touched [32]bool // registers written at least once (debug aid for tests)
}

// NewMachine prepares execution of p with the given stream bindings. For an
// FP32 program pass one slice per declared stream in mem32 (mem64 must be
// nil) and vice versa for FP64.
func NewMachine(p *isa.Program, mem32 [][]float32, mem64 [][]float64) (*Machine, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	m := &Machine{prog: p, lanes: p.Lanes()}
	switch p.ElemBytes {
	case 4:
		if mem64 != nil {
			return nil, fmt.Errorf("vexec: FP32 program %s given FP64 bindings", p.Name)
		}
		if len(mem32) != len(p.Streams) {
			return nil, fmt.Errorf("vexec: %s needs %d stream bindings, got %d", p.Name, len(p.Streams), len(mem32))
		}
		for i, s := range p.Streams {
			if len(mem32[i]) < s.MinLen {
				return nil, fmt.Errorf("vexec: %s stream %s bound to %d elements, needs %d", p.Name, s.Name, len(mem32[i]), s.MinLen)
			}
		}
		m.mem32 = mem32
	case 8:
		if mem32 != nil {
			return nil, fmt.Errorf("vexec: FP64 program %s given FP32 bindings", p.Name)
		}
		if len(mem64) != len(p.Streams) {
			return nil, fmt.Errorf("vexec: %s needs %d stream bindings, got %d", p.Name, len(p.Streams), len(mem64))
		}
		for i, s := range p.Streams {
			if len(mem64[i]) < s.MinLen {
				return nil, fmt.Errorf("vexec: %s stream %s bound to %d elements, needs %d", p.Name, s.Name, len(mem64[i]), s.MinLen)
			}
		}
		m.mem64 = mem64
	}
	return m, nil
}

// Run executes the whole program once.
func (m *Machine) Run() {
	for _, in := range m.prog.Code {
		m.step(in)
	}
}

func (m *Machine) step(in isa.Instr) {
	mark := func(r int) {
		if r >= 0 {
			m.Touched[r] = true
		}
	}
	switch in.Op {
	case isa.Nop:
	case isa.LdVec:
		mark(in.Dst)
		if m.lanes == 4 {
			src := m.mem32[in.Mem.Stream][in.Mem.Off:]
			copy(m.V[in.Dst].F32[:], src[:4])
		} else {
			src := m.mem64[in.Mem.Stream][in.Mem.Off:]
			copy(m.V[in.Dst].F64[:], src[:2])
		}
	case isa.LdScalar:
		mark(in.Dst)
		if m.lanes == 4 {
			m.V[in.Dst].F32 = [4]float32{m.mem32[in.Mem.Stream][in.Mem.Off], 0, 0, 0}
		} else {
			m.V[in.Dst].F64 = [2]float64{m.mem64[in.Mem.Stream][in.Mem.Off], 0}
		}
	case isa.LdScalarPair:
		mark(in.Dst)
		mark(in.Dst2)
		if m.lanes == 4 {
			m.V[in.Dst].F32 = [4]float32{m.mem32[in.Mem.Stream][in.Mem.Off], 0, 0, 0}
			m.V[in.Dst2].F32 = [4]float32{m.mem32[in.Mem.Stream][in.Mem.Off+1], 0, 0, 0}
		} else {
			m.V[in.Dst].F64 = [2]float64{m.mem64[in.Mem.Stream][in.Mem.Off], 0}
			m.V[in.Dst2].F64 = [2]float64{m.mem64[in.Mem.Stream][in.Mem.Off+1], 0}
		}
	case isa.StVec:
		if m.lanes == 4 {
			copy(m.mem32[in.Mem.Stream][in.Mem.Off:in.Mem.Off+4], m.V[in.Src1].F32[:])
		} else {
			copy(m.mem64[in.Mem.Stream][in.Mem.Off:in.Mem.Off+2], m.V[in.Src1].F64[:])
		}
	case isa.StLane:
		if m.lanes == 4 {
			m.mem32[in.Mem.Stream][in.Mem.Off] = m.V[in.Src1].F32[in.SrcLane]
		} else {
			m.mem64[in.Mem.Stream][in.Mem.Off] = m.V[in.Src1].F64[in.SrcLane]
		}
	case isa.FmlaElem:
		mark(in.Dst)
		if m.lanes == 4 {
			s := m.V[in.Src2].F32[in.SrcLane]
			for l := 0; l < 4; l++ {
				m.V[in.Dst].F32[l] += m.V[in.Src1].F32[l] * s
			}
		} else {
			s := m.V[in.Src2].F64[in.SrcLane]
			for l := 0; l < 2; l++ {
				m.V[in.Dst].F64[l] += m.V[in.Src1].F64[l] * s
			}
		}
	case isa.FmlaVec:
		mark(in.Dst)
		if m.lanes == 4 {
			for l := 0; l < 4; l++ {
				m.V[in.Dst].F32[l] += m.V[in.Src1].F32[l] * m.V[in.Src2].F32[l]
			}
		} else {
			for l := 0; l < 2; l++ {
				m.V[in.Dst].F64[l] += m.V[in.Src1].F64[l] * m.V[in.Src2].F64[l]
			}
		}
	case isa.FmulElem:
		mark(in.Dst)
		if m.lanes == 4 {
			s := m.V[in.Src2].F32[in.SrcLane]
			for l := 0; l < 4; l++ {
				m.V[in.Dst].F32[l] = m.V[in.Src1].F32[l] * s
			}
		} else {
			s := m.V[in.Src2].F64[in.SrcLane]
			for l := 0; l < 2; l++ {
				m.V[in.Dst].F64[l] = m.V[in.Src1].F64[l] * s
			}
		}
	case isa.FaddVec:
		mark(in.Dst)
		if m.lanes == 4 {
			for l := 0; l < 4; l++ {
				m.V[in.Dst].F32[l] = m.V[in.Src1].F32[l] + m.V[in.Src2].F32[l]
			}
		} else {
			for l := 0; l < 2; l++ {
				m.V[in.Dst].F64[l] = m.V[in.Src1].F64[l] + m.V[in.Src2].F64[l]
			}
		}
	case isa.FmulVec:
		mark(in.Dst)
		if m.lanes == 4 {
			for l := 0; l < 4; l++ {
				m.V[in.Dst].F32[l] = m.V[in.Src1].F32[l] * m.V[in.Src2].F32[l]
			}
		} else {
			for l := 0; l < 2; l++ {
				m.V[in.Dst].F64[l] = m.V[in.Src1].F64[l] * m.V[in.Src2].F64[l]
			}
		}
	case isa.Reduce:
		mark(in.Dst)
		if m.lanes == 4 {
			s := m.V[in.Src1].F32
			m.V[in.Dst].F32 = [4]float32{s[0] + s[1] + s[2] + s[3], 0, 0, 0}
		} else {
			s := m.V[in.Src1].F64
			m.V[in.Dst].F64 = [2]float64{s[0] + s[1], 0}
		}
	case isa.Dup:
		mark(in.Dst)
		if m.lanes == 4 {
			v := m.V[in.Src1].F32[in.SrcLane]
			m.V[in.Dst].F32 = [4]float32{v, v, v, v}
		} else {
			v := m.V[in.Src1].F64[in.SrcLane]
			m.V[in.Dst].F64 = [2]float64{v, v}
		}
	case isa.Zero:
		mark(in.Dst)
		m.V[in.Dst] = VReg{}
	case isa.FmulScalarAll:
		mark(in.Dst)
		if m.lanes == 4 {
			s := float32(in.Imm)
			for l := 0; l < 4; l++ {
				m.V[in.Dst].F32[l] *= s
			}
		} else {
			for l := 0; l < 2; l++ {
				m.V[in.Dst].F64[l] *= in.Imm
			}
		}
	default:
		panic(fmt.Sprintf("vexec: unhandled op %v", in.Op))
	}
}

// RunF32 is a convenience wrapper: bind, run, return error.
func RunF32(p *isa.Program, streams ...[]float32) error {
	m, err := NewMachine(p, streams, nil)
	if err != nil {
		return err
	}
	m.Run()
	return nil
}

// RunF64 is a convenience wrapper for FP64 programs.
func RunF64(p *isa.Program, streams ...[]float64) error {
	m, err := NewMachine(p, nil, streams)
	if err != nil {
		return err
	}
	m.Run()
	return nil
}
