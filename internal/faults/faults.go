// Package faults is the reproduction's fault-injection registry: a set of
// named injection points compiled into the execution runtime whose disarmed
// cost is a single atomic load. Tests arm a point with a fire budget, run a
// workload through the public API, and assert the hardened runtime turns
// the fault into a typed error or a correct degraded result — never a
// process crash, never a silently wrong answer. Production code never arms
// a point; the package has no build tags because the disarmed fast path is
// cheap enough to live in the hot loop.
package faults

import (
	"sync"
	"sync/atomic"
	"time"
)

// Point names one injection site in the execution runtime.
type Point uint8

const (
	// PanicInKernel panics inside the fast-path block computation, standing
	// in for a generated kernel violating memory safety or asserting.
	PanicInKernel Point = iota
	// CorruptPack overwrites the first element of the packed-B panel with
	// NaN right after a packing micro-kernel fills it, standing in for a
	// packing kernel writing garbage.
	CorruptPack
	// SlowWorker delays a worker task by ~1ms, standing in for a stalled
	// core or a noisy neighbour; it perturbs scheduling, never results.
	SlowWorker
	// SpuriousNaN pokes NaN into the C block after the fast path completes,
	// standing in for a kernel computing a wrong non-finite value.
	SpuriousNaN
	// CanaryMismatch forces a canary comparison to disagree while a circuit
	// breaker is probing, standing in for a fast path that is still wrong
	// after its cooldown; the shadow reference result rescues the call and
	// the breaker re-opens with a doubled cooldown.
	CanaryMismatch
	// StuckWorker stalls a worker task for StuckSleep (hundreds of
	// milliseconds — far past any per-block budget), standing in for a hung
	// core; with a deadline configured the watchdog converts it into a
	// typed guard.StuckWorkerError instead of hanging the caller.
	StuckWorker
	// JournalTornWrite makes the journal writer emit only a prefix of the
	// next record frame and then go sticky-failed, standing in for a power
	// cut mid-write; reopen must truncate the torn tail and resume the
	// chain (the crash-recovery contract of internal/journal).
	JournalTornWrite
	// SlowShapeClass delays every call whose shape class matches the
	// SetSlowClass target, standing in for a kernel that regressed on one
	// workload regime (a bad tile choice, a mistuned blocking). It perturbs
	// timing, never results — the chaos coverage for the attribution
	// engine's drift detector, and the seed the attrib-smoke script uses to
	// prove a slow class surfaces as a drift event and tuning candidate.
	SlowShapeClass
	// RouterBackendBlackhole makes the router's forward to the targeted
	// backend hang until the attempt context expires, standing in for a
	// backend whose packets vanish (dead NIC, partitioned rack). The router
	// must hedge the request onto the next-preferred backend instead of
	// stalling the client.
	RouterBackendBlackhole
	// RouterSlowBackend delays the router's forward to the targeted backend
	// by the SetRouterSlow duration, standing in for a congested or
	// GC-pausing node; it perturbs timing, never results — the latency-hedge
	// trigger's chaos coverage.
	RouterSlowBackend
	// RouterConnReset fails the router's forward to the targeted backend
	// with an immediate connection-reset error, standing in for a backend
	// process killed mid-request (the rolling-restart crash case). The
	// request is idempotent, so the router retries it on a survivor.
	RouterConnReset
	// TunerBadCandidate corrupts the tuned fast path's output during a
	// canary-shadowed call on a tuned-override breaker path, standing in for
	// an autotuner candidate that passed every static proof yet computes a
	// wrong answer on live traffic (a modeling gap the proofs cannot see).
	// The canary must catch the disagreement, the shadow reference result
	// must rescue the call (zero wrong answers to clients), and the trip
	// must evict the override, restoring the incumbent tile.
	TunerBadCandidate

	numPoints
)

// String names the point for logs and test failures.
func (p Point) String() string {
	switch p {
	case PanicInKernel:
		return "panic-in-kernel"
	case CorruptPack:
		return "corrupt-pack"
	case SlowWorker:
		return "slow-worker"
	case SpuriousNaN:
		return "spurious-nan"
	case CanaryMismatch:
		return "canary-mismatch"
	case StuckWorker:
		return "stuck-worker"
	case JournalTornWrite:
		return "journal-torn-write"
	case SlowShapeClass:
		return "slow-shape-class"
	case RouterBackendBlackhole:
		return "router-backend-blackhole"
	case RouterSlowBackend:
		return "router-slow-backend"
	case RouterConnReset:
		return "router-conn-reset"
	case TunerBadCandidate:
		return "tuner-bad-candidate"
	}
	return "unknown-fault"
}

// NumPoints is the number of registered injection points, for packages
// (telemetry) that keep a counter per point.
const NumPoints = int(numPoints)

// Points lists every injection point, for suites that iterate the registry.
func Points() []Point {
	return []Point{PanicInKernel, CorruptPack, SlowWorker, SpuriousNaN, CanaryMismatch, StuckWorker, JournalTornWrite, SlowShapeClass, RouterBackendBlackhole, RouterSlowBackend, RouterConnReset, TunerBadCandidate}
}

// InjectedPanicMsg is the panic value used by the PanicInKernel point, so
// tests can recognise their own injection in a KernelPanicError.
const InjectedPanicMsg = "faults: injected kernel panic"

// StuckSleep is how long the StuckWorker point stalls a task: long enough
// that any realistic per-block budget expires first, short enough that a
// test without a watchdog still terminates.
const StuckSleep = 400 * time.Millisecond

// Unlimited arms a point with no fire budget.
const Unlimited = -1

var (
	// armMu serialises every mutation of the registry (Arm/Disarm/Reset and
	// the post-exhaustion refresh), so a refresh scan can never clobber a
	// concurrent Arm's anyArmed.Store(true). Fire and Armed stay lock-free:
	// they only load, and the one Fire that exhausts a budget takes the lock
	// exactly once, off the disarmed fast path.
	armMu sync.Mutex
	// anyArmed short-circuits every hook while the registry is idle.
	anyArmed atomic.Bool
	// counts[p]: 0 disarmed, n>0 fires remaining, Unlimited always fires.
	counts [numPoints]atomic.Int64
)

// Arm enables a point for the given number of fires; times <= 0 arms it
// without a budget (every Fire succeeds until Disarm/Reset).
func Arm(p Point, times int) {
	armMu.Lock()
	defer armMu.Unlock()
	if times <= 0 {
		counts[p].Store(Unlimited)
	} else {
		counts[p].Store(int64(times))
	}
	anyArmed.Store(true)
}

// Disarm disables one point.
func Disarm(p Point) {
	armMu.Lock()
	defer armMu.Unlock()
	counts[p].Store(0)
	refreshAnyArmedLocked()
}

// Reset disarms every point and clears the slow-class target.
func Reset() {
	armMu.Lock()
	defer armMu.Unlock()
	for i := range counts {
		counts[i].Store(0)
	}
	slowClassTarget.Store(0)
	slowClassDelay.Store(0)
	routerTarget.Store(0)
	routerSlowDelay.Store(0)
	anyArmed.Store(false)
}

// refreshAnyArmedLocked recomputes the registry-idle short-circuit under
// armMu, so the scan-then-store cannot race an Arm.
func refreshAnyArmedLocked() {
	for i := range counts {
		if counts[i].Load() != 0 {
			anyArmed.Store(true)
			return
		}
	}
	anyArmed.Store(false)
}

// Armed reports whether the point would fire, without consuming a fire.
func Armed(p Point) bool {
	return anyArmed.Load() && counts[p].Load() != 0
}

// Fire consumes one fire from the point's budget and reports whether the
// fault should trigger. The disarmed cost is one atomic load.
func Fire(p Point) bool {
	if !anyArmed.Load() {
		return false
	}
	c := &counts[p]
	for {
		v := c.Load()
		if v == 0 {
			return false
		}
		if v == Unlimited {
			return true
		}
		if c.CompareAndSwap(v, v-1) {
			if v == 1 {
				armMu.Lock()
				refreshAnyArmedLocked()
				armMu.Unlock()
			}
			return true
		}
	}
}

// SleepIfArmed implements the SlowWorker point: a short delay when armed.
func SleepIfArmed(p Point) {
	if Fire(p) {
		time.Sleep(time.Millisecond)
	}
}

// SlowShapeClass target configuration. The class index mirrors
// telemetry.ShapeClass (faults cannot import telemetry — telemetry imports
// faults); the driver passes its already-computed class byte.
var (
	slowClassTarget atomic.Uint32
	slowClassDelay  atomic.Int64
)

// SetSlowClass configures the SlowShapeClass point to delay calls of the
// given shape class by d. The point still needs Arm(SlowShapeClass, n) to
// fire; Reset clears the target along with the budgets.
func SetSlowClass(class uint8, d time.Duration) {
	slowClassTarget.Store(uint32(class))
	slowClassDelay.Store(int64(d))
}

// SlowClassFire consumes one SlowShapeClass fire if the point is armed and
// the call's shape class matches the configured target, returning the delay
// the caller should sleep (0 = no fire). Disarmed cost: one atomic load.
func SlowClassFire(class uint8) time.Duration {
	if !anyArmed.Load() {
		return 0
	}
	d := time.Duration(slowClassDelay.Load())
	if d <= 0 || uint32(class) != slowClassTarget.Load() {
		return 0
	}
	if !Fire(SlowShapeClass) {
		return 0
	}
	return d
}

// Router point target configuration. The router's three points (blackhole,
// slow backend, connection reset) fire on one targeted backend so chaos
// tests can break a specific node while the survivors stay clean; routerTarget
// stores index+1 so the zero value (after Reset) matches any backend.
var (
	routerTarget    atomic.Int32
	routerSlowDelay atomic.Int64
)

// SetRouterTarget aims the router points at one backend index; a negative
// index makes them fire on any backend. Reset restores any-backend.
func SetRouterTarget(index int) {
	if index < 0 {
		routerTarget.Store(0)
		return
	}
	routerTarget.Store(int32(index) + 1)
}

// SetRouterSlow configures the RouterSlowBackend delay; the point still
// needs Arm(RouterSlowBackend, n) to fire.
func SetRouterSlow(d time.Duration) {
	routerSlowDelay.Store(int64(d))
}

// RouterFire consumes one fire from p's budget if p is armed and the attempt
// targets the configured backend (or no target is set). Disarmed cost: one
// atomic load.
func RouterFire(p Point, backendIndex int) bool {
	if !anyArmed.Load() {
		return false
	}
	if t := routerTarget.Load(); t != 0 && int32(backendIndex)+1 != t {
		return false
	}
	return Fire(p)
}

// RouterSlowFire consumes one RouterSlowBackend fire for the given backend,
// returning the configured delay (0 = no fire; a fire with no configured
// delay defaults to 1ms so an armed point is never silently inert).
func RouterSlowFire(backendIndex int) time.Duration {
	if !RouterFire(RouterSlowBackend, backendIndex) {
		return 0
	}
	d := time.Duration(routerSlowDelay.Load())
	if d <= 0 {
		d = time.Millisecond
	}
	return d
}
