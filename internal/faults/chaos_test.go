// The chaos suite: every injection point in the registry is armed against
// real driver calls, and the hardened runtime must turn each fault into a
// typed error or a correct degraded result — never a process crash, never a
// silently wrong answer. The suite runs under -race via `make test-chaos`.
package faults_test

import (
	"context"
	"errors"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"libshalom/internal/core"
	"libshalom/internal/faults"
	"libshalom/internal/guard"
	"libshalom/internal/heal"
	"libshalom/internal/journal"
	"libshalom/internal/mat"
	"libshalom/internal/platform"
	"libshalom/internal/router"
	"libshalom/internal/telemetry"
)

type problem struct {
	m, n, k     int
	mode        core.Mode
	alpha, beta float32
	a, b, c     *mat.F32
	want        *mat.F32
}

// newProblem builds a random GEMM problem and its oracle result.
func newProblem(seed uint64, mode core.Mode, m, n, k int) *problem {
	rng := mat.NewRNG(seed)
	p := &problem{m: m, n: n, k: k, mode: mode, alpha: 1.25, beta: 0.5}
	arows, acols := m, k
	if mode.TransA() {
		arows, acols = k, m
	}
	brows, bcols := k, n
	if mode.TransB() {
		brows, bcols = n, k
	}
	p.a = mat.RandomF32(arows, acols, rng)
	p.b = mat.RandomF32(brows, bcols, rng)
	p.c = mat.RandomF32(m, n, rng)
	p.want = p.c.Clone()
	mat.RefGEMMF32(mat.Trans(mode.TransA()), mat.Trans(mode.TransB()),
		p.alpha, p.a, p.b, p.beta, p.want)
	return p
}

func (p *problem) run(cfg core.Config) error {
	return core.SGEMM(cfg, p.mode, p.m, p.n, p.k, p.alpha,
		p.a.Data, p.a.Stride, p.b.Data, p.b.Stride, p.beta, p.c.Data, p.c.Stride)
}

func (p *problem) assertCorrect(t *testing.T, what string) {
	t.Helper()
	for i := 0; i < p.m; i++ {
		for j := 0; j < p.n; j++ {
			got, want := p.c.At(i, j), p.want.At(i, j)
			if math.Abs(float64(got-want)) > 1e-3*(1+math.Abs(float64(want))) {
				t.Fatalf("%s: C(%d,%d) = %v, want %v", what, i, j, got, want)
			}
		}
	}
}

func resetAll() {
	faults.Reset()
	guard.Reset()
}

// A kernel panic without the numeric guard surfaces as a typed
// *guard.KernelPanicError — on the pooled path and the single-threaded
// path — and the runtime stays fully usable afterwards.
func TestChaosPanicYieldsTypedError(t *testing.T) {
	resetAll()
	defer resetAll()
	for _, threads := range []int{1, 4} {
		faults.Arm(faults.PanicInKernel, 1)
		p := newProblem(1, core.NN, 128, 128, 32)
		err := p.run(core.Config{Plat: platform.KP920(), Threads: threads})
		var kpe *guard.KernelPanicError
		if !errors.As(err, &kpe) {
			t.Fatalf("threads=%d: err = %v (%T), want *guard.KernelPanicError", threads, err, err)
		}
		if kpe.Value != faults.InjectedPanicMsg {
			t.Fatalf("threads=%d: panic value = %v", threads, kpe.Value)
		}
		if kpe.Platform != platform.KP920().Name || kpe.Kernel != guard.PathF32 || kpe.Mode != "NN" {
			t.Fatalf("threads=%d: error context = %+v", threads, kpe)
		}
		if len(kpe.Stack) == 0 {
			t.Fatalf("threads=%d: no stack captured", threads)
		}
		if len(guard.List("")) != 0 {
			t.Fatalf("threads=%d: demotion recorded without the guard", threads)
		}
		// The fault is spent; the same runtime must answer correctly now.
		p2 := newProblem(2, core.NN, 128, 128, 32)
		if err := p2.run(core.Config{Plat: platform.KP920(), Threads: threads}); err != nil {
			t.Fatalf("threads=%d: call after recovered panic failed: %v", threads, err)
		}
		p2.assertCorrect(t, "call after recovered panic")
	}
}

// With the numeric guard, a kernel panic demotes the kernel family and the
// call still answers correctly through the reference path.
func TestChaosPanicDegradesUnderGuard(t *testing.T) {
	resetAll()
	defer resetAll()
	faults.Arm(faults.PanicInKernel, 1)
	p := newProblem(3, core.NN, 64, 48, 24)
	cfg := core.Config{Plat: platform.KP920(), Threads: 1, NumericGuard: true}
	if err := p.run(cfg); err != nil {
		t.Fatalf("guarded call returned error: %v", err)
	}
	p.assertCorrect(t, "degraded result after panic")
	d, ok := guard.Demotion(platform.KP920().Name, guard.PathF32)
	if !ok || d.Reason != guard.ReasonPanic {
		t.Fatalf("demotion = %+v, %v; want ReasonPanic", d, ok)
	}
	// Demoted: later calls keep answering (reference path), still correct.
	p2 := newProblem(4, core.TN, 33, 29, 17)
	if err := p2.run(cfg); err != nil {
		t.Fatalf("post-demotion call failed: %v", err)
	}
	p2.assertCorrect(t, "post-demotion call")
}

// A corrupted packed-B panel (NaN written into Bc after the packing kernel
// fills it) must be caught by the numeric guard: demote + correct recompute.
func TestChaosCorruptPackDegrades(t *testing.T) {
	resetAll()
	defer resetAll()
	faults.Arm(faults.CorruptPack, 1)
	// NT mode always packs B, and m > mr guarantees the poisoned panel is
	// consumed by later micro-tiles.
	p := newProblem(5, core.NT, 32, 24, 16)
	cfg := core.Config{Plat: platform.KP920(), Threads: 1, NumericGuard: true}
	if err := p.run(cfg); err != nil {
		t.Fatalf("guarded call returned error: %v", err)
	}
	p.assertCorrect(t, "degraded result after pack corruption")
	if d, ok := guard.Demotion(platform.KP920().Name, guard.PathF32); !ok || d.Reason != guard.ReasonNumeric {
		t.Fatalf("demotion = %+v, %v; want ReasonNumeric", d, ok)
	}
}

// A spurious NaN poked into C after the fast path completes must likewise
// demote and be recomputed away.
func TestChaosSpuriousNaNDegrades(t *testing.T) {
	resetAll()
	defer resetAll()
	faults.Arm(faults.SpuriousNaN, 1)
	p := newProblem(6, core.NN, 21, 25, 30)
	cfg := core.Config{Plat: platform.KP920(), Threads: 1, NumericGuard: true}
	if err := p.run(cfg); err != nil {
		t.Fatalf("guarded call returned error: %v", err)
	}
	p.assertCorrect(t, "degraded result after spurious NaN")
	if d, ok := guard.Demotion(platform.KP920().Name, guard.PathF32); !ok || d.Reason != guard.ReasonNumeric {
		t.Fatalf("demotion = %+v, %v; want ReasonNumeric", d, ok)
	}
}

// Legitimate NaN inputs must pass through untouched: IEEE propagation is
// the contract, not a fault — no demotion, no recompute.
func TestChaosNaNInputIsNotAFault(t *testing.T) {
	resetAll()
	defer resetAll()
	p := newProblem(7, core.NN, 14, 12, 9)
	p.a.Set(3, 2, float32(math.NaN()))
	cfg := core.Config{Plat: platform.KP920(), Threads: 1, NumericGuard: true}
	if err := p.run(cfg); err != nil {
		t.Fatalf("call with NaN input failed: %v", err)
	}
	if !math.IsNaN(float64(p.c.At(3, 0))) {
		t.Fatal("NaN input did not propagate to C")
	}
	if len(guard.List("")) != 0 {
		t.Fatalf("NaN input caused a demotion: %+v", guard.List(""))
	}
}

// Slow workers perturb scheduling only: the batch must still produce
// correct results for every entry.
func TestChaosSlowWorkerStaysCorrect(t *testing.T) {
	resetAll()
	defer resetAll()
	faults.Arm(faults.SlowWorker, 8)
	rng := mat.NewRNG(8)
	const entries = 32
	batch := make([]core.BatchEntry[float32], entries)
	cs := make([]*mat.F32, entries)
	wants := make([]*mat.F32, entries)
	for i := range batch {
		m, n, k := 8+i%5, 9+i%4, 7+i%6
		a := mat.RandomF32(m, k, rng)
		b := mat.RandomF32(k, n, rng)
		c := mat.RandomF32(m, n, rng)
		w := c.Clone()
		mat.RefGEMMF32(mat.NoTrans, mat.NoTrans, 1, a, b, 0.25, w)
		cs[i], wants[i] = c, w
		batch[i] = core.BatchEntry[float32]{M: m, N: n, K: k, Alpha: 1,
			A: a.Data, LDA: a.Stride, B: b.Data, LDB: b.Stride,
			Beta: 0.25, C: c.Data, LDC: c.Stride}
	}
	if err := core.SGEMMBatch(core.Config{Plat: platform.KP920(), Threads: 4}, core.NN, batch); err != nil {
		t.Fatalf("batch with slow workers failed: %v", err)
	}
	for i := range cs {
		for j := range cs[i].Data {
			got, want := cs[i].Data[j], wants[i].Data[j]
			if math.Abs(float64(got-want)) > 1e-4*(1+math.Abs(float64(want))) {
				t.Fatalf("entry %d element %d = %v, want %v", i, j, got, want)
			}
		}
	}
}

// Slow workers plus cancellation: the batch either finishes or reports
// context.Canceled with accounting that exactly matches the entries whose
// output was written — no partial entries, no lost updates.
func TestChaosSlowWorkerWithCancellation(t *testing.T) {
	resetAll()
	defer resetAll()
	faults.Arm(faults.SlowWorker, faults.Unlimited)
	rng := mat.NewRNG(9)
	const entries = 48
	batch := make([]core.BatchEntry[float32], entries)
	cs := make([]*mat.F32, entries)
	before := make([]*mat.F32, entries)
	for i := range batch {
		m, n, k := 10, 10, 10
		a := mat.RandomF32(m, k, rng)
		b := mat.RandomF32(k, n, rng)
		c := mat.RandomF32(m, n, rng)
		cs[i], before[i] = c, c.Clone()
		batch[i] = core.BatchEntry[float32]{M: m, N: n, K: k, Alpha: 1,
			A: a.Data, LDA: a.Stride, B: b.Data, LDB: b.Stride,
			Beta: 0.5, C: c.Data, LDC: c.Stride}
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(3 * time.Millisecond)
		cancel()
	}()
	err := core.SGEMMBatchCtx(ctx, core.Config{Plat: platform.KP920(), Threads: 4}, core.NN, batch)
	touched := 0
	for i := range cs {
		for j := range cs[i].Data {
			if cs[i].Data[j] != before[i].Data[j] {
				touched++
				break
			}
		}
	}
	if err == nil {
		if touched != entries {
			t.Fatalf("nil error but %d/%d entries ran", touched, entries)
		}
		return
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	var bce *core.BatchCancelError
	if !errors.As(err, &bce) {
		t.Fatalf("err = %T, want *BatchCancelError", err)
	}
	if bce.Completed != touched {
		t.Fatalf("accounting says %d, but %d entries were written", bce.Completed, touched)
	}
}

// Telemetry contract of the chaos machinery: every injection point, fired
// exactly once against a telemetry-enabled guarded call, must emit exactly
// one fault event under its own name, and the call must land in the
// snapshot under the outcome label the fault implies — no double counting,
// no lost events, no mislabelled outcomes. Every registered point must have
// a scenario here; adding a point without one fails the suite.
func TestChaosTelemetryOneEventPerInjection(t *testing.T) {
	type scenario struct {
		outcome string
		// setup prepares runtime state the point needs to fire (e.g. a
		// probing breaker for CanaryMismatch) and returns its cleanup.
		setup func() func()
		// run replaces the default guarded GEMM call for points that fire
		// off the compute path; it must fire the armed point exactly once
		// against tel. The generic call/degradation assertions are skipped —
		// only the one-fault-event contract is checked.
		run func(t *testing.T, tel *telemetry.Recorder)
	}
	scenarios := map[faults.Point]scenario{
		faults.PanicInKernel: {outcome: "degraded"}, // guard trips the breaker and recomputes
		faults.CorruptPack:   {outcome: "degraded"},
		faults.SpuriousNaN:   {outcome: "degraded"},
		faults.SlowWorker:    {outcome: "ok"}, // scheduling perturbation only
		// A stuck worker without a configured deadline is a delay, not a
		// failure: the call completes, slowly but correctly.
		faults.StuckWorker: {outcome: "ok"},
		// CanaryMismatch fires only inside a canary comparison, so the
		// breaker must be probing when the call runs: trip it with a
		// microscopic cooldown and wait the cooldown out.
		faults.CanaryMismatch: {outcome: "degraded", setup: func() func() {
			prev := heal.Configure(heal.Config{Cooldown: time.Millisecond, CanaryStride: 1})
			heal.Trip(platform.KP920().Name, guard.PathF32, guard.ReasonPanic, "chaos setup", "")
			time.Sleep(5 * time.Millisecond)
			return func() { heal.Configure(prev) }
		}},
		// SlowShapeClass is the attribution drift detector's chaos seed: it
		// stretches the matching class's calls (the default guarded problem
		// classifies as "small") without touching results, so the outcome
		// stays ok and exactly one fault event must surface.
		faults.SlowShapeClass: {outcome: "ok", setup: func() func() {
			faults.SetSlowClass(uint8(telemetry.ShapeSmall), time.Millisecond)
			return func() { faults.SetSlowClass(0, 0) }
		}},
		// TunerBadCandidate fires only while a tuned dispatch override is
		// serving its canary, and its trip lands on the candidate's private
		// breaker path rather than the kernel family's — so it runs as its
		// own scenario: install a candidate tile for the guarded problem's
		// shape class behind a probing breaker (stride 1 so the first call
		// canaries), then assert the injected wrong result was caught by the
		// reference shadow and the incident recorded against the tuned path.
		// TestChaosTunerBadCandidateRevertsToIncumbent covers the rest of
		// the revert contract.
		faults.TunerBadCandidate: {run: func(t *testing.T, tel *telemetry.Recorder) {
			prev := heal.Configure(heal.Config{CanaryStride: 1})
			defer heal.Configure(prev)
			class := uint8(telemetry.ClassifyShape(64, 36, 16))
			path := guard.MintOverridePath(4, telemetry.ShapeClass(class).String())
			guard.SetOverride(4, class, guard.TileOverride{
				MR: 4, NR: 8, KC: 8, Kernel: "chaos-bad-candidate", Path: path,
			})
			heal.BeginProbation(platform.KP920().Name, path)
			p := newProblem(uint64(30+faults.TunerBadCandidate), core.NT, 64, 36, 16)
			cfg := core.Config{Plat: platform.KP920(), Threads: 4, NumericGuard: true, Tel: tel}
			if err := p.run(cfg); err != nil {
				t.Fatalf("canaried call errored: %v", err)
			}
			p.assertCorrect(t, "canaried call with injected bad candidate")
			if d, ok := guard.Demotion(platform.KP920().Name, path); !ok || d.Seq == 0 || d.Shape == "" {
				t.Fatalf("tuned-path registry entry = %+v, %v; want shape and seq recorded", d, ok)
			}
		}},
		// JournalTornWrite fires on the journal's append path, not the
		// compute path: a telemetry-enabled writer tears its next record
		// mid-frame and goes sticky-failed — the crash the recovery test
		// then repairs by reopening.
		faults.JournalTornWrite: {run: func(t *testing.T, tel *telemetry.Recorder) {
			w, err := journal.Open(journal.Options{Dir: t.TempDir(), Telemetry: tel})
			if err != nil {
				t.Fatalf("journal.Open: %v", err)
			}
			w.Flush("f32/NN/tiny", 1, 1)
			if err := w.Close(); err == nil {
				t.Fatal("writer survived an injected torn write without a sticky error")
			}
		}},
		// The router points fire on the forward path of internal/router, not
		// the compute path. Each scenario drives one routed request through a
		// single-backend router; the single fire must surface as exactly one
		// fault event and a coherent HTTP verdict.
		faults.RouterConnReset: {run: func(t *testing.T, tel *telemetry.Recorder) {
			// The reset consumes the only attempt the one-backend budget
			// allows, so the request fails over to nothing: 502.
			if code := routerChaosRequest(t, tel, 0); code != http.StatusBadGateway {
				t.Fatalf("status = %d, want 502 after injected reset", code)
			}
		}},
		faults.RouterSlowBackend: {run: func(t *testing.T, tel *telemetry.Recorder) {
			// A slow backend is a delay, not a failure: the forward still
			// lands and the request answers 200.
			if code := routerChaosRequest(t, tel, 0); code != http.StatusOK {
				t.Fatalf("status = %d, want 200 through injected slowness", code)
			}
		}},
		faults.RouterBackendBlackhole: {run: func(t *testing.T, tel *telemetry.Recorder) {
			// A blackholed attempt never answers; the request's deadline must
			// cut it loose as 504 instead of hanging the client.
			if code := routerChaosRequest(t, tel, 80*time.Millisecond); code != http.StatusGatewayTimeout {
				t.Fatalf("status = %d, want 504 from a blackholed backend", code)
			}
		}},
	}
	for _, pt := range faults.Points() {
		sc, ok := scenarios[pt]
		if !ok {
			t.Fatalf("injection point %v has no chaos telemetry scenario", pt)
		}
		t.Run(pt.String(), func(t *testing.T) {
			resetAll()
			defer resetAll()
			if sc.setup != nil {
				defer sc.setup()()
			}
			faults.Arm(pt, 1)
			tel := telemetry.New(telemetry.Options{})
			if sc.run != nil {
				sc.run(t, tel)
				snap := tel.Snapshot()
				if len(snap.Faults) != 1 || snap.Faults[0].Name != pt.String() || snap.Faults[0].Count != 1 {
					t.Fatalf("%v: fault events = %+v, want exactly one %q event", pt, snap.Faults, pt.String())
				}
				return
			}
			// NT with m > mr so a corrupted packed panel is consumed; threads 4
			// so the pool injection sites are on the path.
			p := newProblem(uint64(30+pt), core.NT, 64, 36, 16)
			cfg := core.Config{Plat: platform.KP920(), Threads: 4, NumericGuard: true, Tel: tel}
			if err := p.run(cfg); err != nil {
				t.Fatalf("%v: guarded call errored: %v", pt, err)
			}
			p.assertCorrect(t, pt.String()+": guarded call")
			snap := tel.Snapshot()
			if len(snap.Faults) != 1 || snap.Faults[0].Name != pt.String() || snap.Faults[0].Count != 1 {
				t.Fatalf("%v: fault events = %+v, want exactly one %q event", pt, snap.Faults, pt.String())
			}
			if got := snap.CallsTotal(""); got != 1 {
				t.Fatalf("%v: snapshot records %d calls, want 1", pt, got)
			}
			if outcome := snap.Calls[0].Outcome; outcome != sc.outcome {
				t.Fatalf("%v: call outcome = %q, want %q", pt, outcome, sc.outcome)
			}
			if sc.outcome == "degraded" {
				if snap.Calls[0].Kernel != "ref" {
					t.Fatalf("%v: degraded call labelled kernel %q, want \"ref\"", pt, snap.Calls[0].Kernel)
				}
				if len(snap.Degradations) != 1 || snap.Degradations[0].Count != 1 {
					t.Fatalf("%v: degradation events = %+v, want exactly one", pt, snap.Degradations)
				}
				// The guard registry must carry the triggering shape and a
				// non-zero sequence number for the same incident.
				d, ok := guard.Demotion(platform.KP920().Name, guard.PathF32)
				if !ok || d.Seq == 0 || d.Shape == "" {
					t.Fatalf("%v: registry entry = %+v, %v; want shape and seq recorded", pt, d, ok)
				}
			} else if len(snap.Degradations) != 0 {
				t.Fatalf("%v: unexpected degradation events %+v", pt, snap.Degradations)
			}
		})
	}
}

// routerChaosRequest drives one well-formed GEMM request through a router
// over a single stub backend and returns the router's HTTP verdict. timeout
// sets the router's default deadline (zero: none).
func routerChaosRequest(t *testing.T, tel *telemetry.Recorder, timeout time.Duration) int {
	t.Helper()
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		w.Write([]byte("ok"))
	}))
	defer stub.Close()
	rt, err := router.New(router.Config{
		Backends:       []string{stub.URL},
		Telemetry:      tel,
		DefaultTimeout: timeout,
	})
	if err != nil {
		t.Fatalf("router.New: %v", err)
	}
	body := strings.NewReader(`{"precision":"f32","mode":"NN","m":4,"n":4,"k":4,"alpha":1}` + "\npayload")
	req := httptest.NewRequest(http.MethodPost, "/v1/gemm", body)
	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, req)
	return rec.Code
}

// The stuck-worker watchdog acceptance: with a configured deadline, a
// stalled worker (StuckSleep = 400ms against a 100ms budget) converts the
// call into a typed *guard.StuckWorkerError well before the stall drains —
// within 2× the budget — instead of hanging the caller.
func TestChaosStuckWorkerConvertsToTypedError(t *testing.T) {
	resetAll()
	defer resetAll()
	faults.Arm(faults.StuckWorker, 1)
	const budget = 100 * time.Millisecond
	p := newProblem(50, core.NN, 256, 256, 32)
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		done <- p.run(core.Config{Plat: platform.KP920(), Threads: 4, Deadline: budget})
	}()
	select {
	case err := <-done:
		elapsed := time.Since(start)
		var swe *guard.StuckWorkerError
		if !errors.As(err, &swe) {
			t.Fatalf("err = %v (%T), want *guard.StuckWorkerError", err, err)
		}
		if !swe.Timeout() {
			t.Fatal("StuckWorkerError.Timeout() = false")
		}
		if swe.Budget != budget || swe.Elapsed < budget {
			t.Fatalf("error reports budget %v elapsed %v, want budget %v and elapsed >= budget", swe.Budget, swe.Elapsed, budget)
		}
		if elapsed >= 2*budget {
			t.Fatalf("watchdog took %v, want < 2x the %v budget", elapsed, budget)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("stuck worker hung the call past the test cap")
	}
	// Let the stalled straggler drain before the registry reset races it.
	time.Sleep(faults.StuckSleep)
}

// Per-call deadlines propagate into batch execution: entries not started
// when the deadline expires are abandoned with a *BatchCancelError that
// unwraps to context.DeadlineExceeded, and accounting matches the entries
// actually written.
func TestChaosBatchDeadlineExpires(t *testing.T) {
	resetAll()
	defer resetAll()
	faults.Arm(faults.SlowWorker, faults.Unlimited)
	rng := mat.NewRNG(51)
	const entries = 64
	batch := make([]core.BatchEntry[float32], entries)
	cs := make([]*mat.F32, entries)
	before := make([]*mat.F32, entries)
	for i := range batch {
		m, n, k := 10, 10, 10
		a := mat.RandomF32(m, k, rng)
		b := mat.RandomF32(k, n, rng)
		c := mat.RandomF32(m, n, rng)
		cs[i], before[i] = c, c.Clone()
		batch[i] = core.BatchEntry[float32]{M: m, N: n, K: k, Alpha: 1,
			A: a.Data, LDA: a.Stride, B: b.Data, LDB: b.Stride,
			Beta: 0.5, C: c.Data, LDC: c.Stride}
	}
	cfg := core.Config{Plat: platform.KP920(), Threads: 4, Deadline: 3 * time.Millisecond}
	err := core.SGEMMBatch(cfg, core.NN, batch)
	if err == nil {
		return // the machine outran the deadline: legitimate
	}
	var swe *guard.StuckWorkerError
	if errors.As(err, &swe) {
		// The deadline doubles as the per-block watchdog budget, so a chunk
		// that the slow-worker fault stretches past it converts to the
		// typed stuck error instead — also a prompt, typed termination. The
		// straggler may still be writing, so the buffers are not inspected.
		return
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded through the chain", err)
	}
	var bce *core.BatchCancelError
	if !errors.As(err, &bce) {
		t.Fatalf("err = %T, want *BatchCancelError", err)
	}
	touched := 0
	for i := range cs {
		for j := range cs[i].Data {
			if cs[i].Data[j] != before[i].Data[j] {
				touched++
				break
			}
		}
	}
	if bce.Completed != touched {
		t.Fatalf("accounting says %d, but %d entries were written", bce.Completed, touched)
	}
}

// An unguarded injected panic must be labelled outcome "panic" — the error
// path and the metric label tell the same story.
func TestChaosTelemetryPanicOutcome(t *testing.T) {
	resetAll()
	defer resetAll()
	faults.Arm(faults.PanicInKernel, 1)
	tel := telemetry.New(telemetry.Options{})
	p := newProblem(40, core.NN, 64, 48, 24)
	err := p.run(core.Config{Plat: platform.KP920(), Threads: 1, Tel: tel})
	var kpe *guard.KernelPanicError
	if !errors.As(err, &kpe) {
		t.Fatalf("err = %v, want *guard.KernelPanicError", err)
	}
	snap := tel.Snapshot()
	if len(snap.Faults) != 1 || snap.Faults[0].Name != faults.PanicInKernel.String() || snap.Faults[0].Count != 1 {
		t.Fatalf("fault events = %+v, want exactly one panic-in-kernel", snap.Faults)
	}
	if got := snap.CallsTotal(""); got != 1 || snap.Calls[0].Outcome != "panic" {
		t.Fatalf("calls = %+v, want one call with outcome \"panic\"", snap.Calls)
	}
	if len(snap.Degradations) != 0 {
		t.Fatalf("unguarded panic recorded degradations: %+v", snap.Degradations)
	}
}

// Sweep: every registered fault point, armed against a guarded threaded
// call, must end in a usable runtime and a correct answer on the very next
// call — the blanket no-crash/no-silent-corruption property.
func TestChaosEveryPointLeavesRuntimeUsable(t *testing.T) {
	for _, pt := range faults.Points() {
		resetAll()
		faults.Arm(pt, 1)
		p := newProblem(uint64(10+pt), core.NT, 64, 36, 16)
		cfg := core.Config{Plat: platform.KP920(), Threads: 4, NumericGuard: true}
		if err := p.run(cfg); err != nil {
			t.Fatalf("%v: guarded call errored: %v", pt, err)
		}
		p.assertCorrect(t, pt.String()+": guarded call")
		faults.Reset()
		p2 := newProblem(uint64(20+pt), core.NT, 64, 36, 16)
		if err := p2.run(cfg); err != nil {
			t.Fatalf("%v: follow-up call errored: %v", pt, err)
		}
		p2.assertCorrect(t, pt.String()+": follow-up call")
	}
	resetAll()
}

// TestChaosTunerBadCandidateRevertsToIncumbent is the autotuner's end-to-end
// chaos property: a numerically wrong candidate that reached the canary gate
// must (1) never hand a wrong result to any caller, (2) trip its private
// breaker — which evicts the dispatch override and restores the incumbent
// tile — and (3) surface exactly one fault event per injection while every
// other kernel path keeps serving fast.
func TestChaosTunerBadCandidateRevertsToIncumbent(t *testing.T) {
	resetAll()
	defer resetAll()
	prevHeal := heal.Configure(heal.Config{CanaryStride: 1})
	defer heal.Configure(prevHeal)

	plat := platform.KP920()
	class := uint8(telemetry.ClassifyShape(64, 36, 16))
	path := guard.MintOverridePath(4, telemetry.ShapeClass(class).String())
	if !guard.SetOverride(4, class, guard.TileOverride{
		MR: 4, NR: 8, KC: 8, Kernel: "chaos-bad-candidate", Path: path,
	}) {
		t.Fatal("SetOverride refused a valid override")
	}
	if !heal.BeginProbation(plat.Name, path) {
		t.Fatal("BeginProbation refused the tuned path")
	}

	tel := telemetry.New(telemetry.Options{})
	faults.Arm(faults.TunerBadCandidate, 1)
	p := newProblem(77, core.NT, 64, 36, 16)
	cfg := core.Config{Plat: plat, Threads: 4, NumericGuard: true, Tel: tel}
	if err := p.run(cfg); err != nil {
		t.Fatalf("canaried call errored: %v", err)
	}
	// (1) The caller got the reference-shadow result, not the corruption.
	p.assertCorrect(t, "canaried call with injected bad candidate")

	// (2) The trip evicted the override and opened the candidate's breaker;
	// the demotion history names the tuned kernel identity.
	if ovs := guard.Overrides(); len(ovs) != 0 {
		t.Fatalf("override still installed after trip: %+v", ovs)
	}
	if st := guard.StateOf(plat.Name, path); st != guard.StateOpen {
		t.Fatalf("tuned breaker state = %q, want open", st)
	}
	if st := guard.StateOf(plat.Name, guard.PathF32); st != guard.StateHealthy {
		t.Fatalf("family breaker state = %q, want healthy (only the candidate reverts)", st)
	}
	var evicted bool
	for _, d := range guard.History() {
		if d.Kernel == path && strings.Contains(d.Detail, "chaos-bad-candidate") {
			evicted = true
		}
	}
	if !evicted {
		t.Fatalf("demotion history does not name the evicted candidate: %+v", guard.History())
	}

	// (3) Exactly one fault event per injection, and the incumbent tile is
	// back: the follow-up call serves on the fast family path.
	snap := tel.Snapshot()
	if len(snap.Faults) != 1 || snap.Faults[0].Name != faults.TunerBadCandidate.String() || snap.Faults[0].Count != 1 {
		t.Fatalf("fault events = %+v, want exactly one %q", snap.Faults, faults.TunerBadCandidate.String())
	}
	p2 := newProblem(78, core.NT, 64, 36, 16)
	if err := p2.run(cfg); err != nil {
		t.Fatalf("follow-up call errored: %v", err)
	}
	p2.assertCorrect(t, "follow-up call on the restored incumbent")
	snap = tel.Snapshot()
	if got := snap.KernelCalls("fast"); got != 1 {
		t.Fatalf("follow-up served %d fast calls, want 1 (incumbent restored)", got)
	}
	if got := snap.KernelCalls("tuned"); got != 0 {
		t.Fatalf("tuned kernel served %d calls after eviction, want 0", got)
	}
}
