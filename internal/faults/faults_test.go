package faults

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestDisarmedByDefault(t *testing.T) {
	Reset()
	for _, p := range Points() {
		if Armed(p) {
			t.Fatalf("%v armed with a fresh registry", p)
		}
		if Fire(p) {
			t.Fatalf("%v fired while disarmed", p)
		}
	}
}

func TestArmBudgetIsConsumedExactly(t *testing.T) {
	Reset()
	defer Reset()
	Arm(PanicInKernel, 3)
	fires := 0
	for i := 0; i < 10; i++ {
		if Fire(PanicInKernel) {
			fires++
		}
	}
	if fires != 3 {
		t.Fatalf("fired %d times with a budget of 3", fires)
	}
	if Armed(PanicInKernel) {
		t.Fatal("point still armed after its budget drained")
	}
}

func TestUnlimitedArm(t *testing.T) {
	Reset()
	defer Reset()
	Arm(SpuriousNaN, Unlimited)
	for i := 0; i < 100; i++ {
		if !Fire(SpuriousNaN) {
			t.Fatal("unlimited arm stopped firing")
		}
	}
	Disarm(SpuriousNaN)
	if Fire(SpuriousNaN) {
		t.Fatal("fired after Disarm")
	}
	if Armed(SpuriousNaN) {
		t.Fatal("armed after Disarm")
	}
}

func TestPointsAreIndependent(t *testing.T) {
	Reset()
	defer Reset()
	Arm(CorruptPack, 1)
	if Fire(SlowWorker) {
		t.Fatal("arming CorruptPack fired SlowWorker")
	}
	if !Fire(CorruptPack) {
		t.Fatal("armed point did not fire")
	}
}

// The budget must hold under concurrent Fire calls (the pool's workers all
// pass through the hooks); run with -race in the chaos target.
func TestConcurrentFiresRespectBudget(t *testing.T) {
	Reset()
	defer Reset()
	const budget = 100
	Arm(SlowWorker, budget)
	var fires atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if Fire(SlowWorker) {
					fires.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if fires.Load() != budget {
		t.Fatalf("concurrent fires = %d, want exactly %d", fires.Load(), budget)
	}
}

func TestPointNames(t *testing.T) {
	for _, p := range Points() {
		if p.String() == "unknown-fault" {
			t.Fatalf("point %d has no name", p)
		}
	}
}
