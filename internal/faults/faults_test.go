package faults

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestDisarmedByDefault(t *testing.T) {
	Reset()
	for _, p := range Points() {
		if Armed(p) {
			t.Fatalf("%v armed with a fresh registry", p)
		}
		if Fire(p) {
			t.Fatalf("%v fired while disarmed", p)
		}
	}
}

func TestArmBudgetIsConsumedExactly(t *testing.T) {
	Reset()
	defer Reset()
	Arm(PanicInKernel, 3)
	fires := 0
	for i := 0; i < 10; i++ {
		if Fire(PanicInKernel) {
			fires++
		}
	}
	if fires != 3 {
		t.Fatalf("fired %d times with a budget of 3", fires)
	}
	if Armed(PanicInKernel) {
		t.Fatal("point still armed after its budget drained")
	}
}

func TestUnlimitedArm(t *testing.T) {
	Reset()
	defer Reset()
	Arm(SpuriousNaN, Unlimited)
	for i := 0; i < 100; i++ {
		if !Fire(SpuriousNaN) {
			t.Fatal("unlimited arm stopped firing")
		}
	}
	Disarm(SpuriousNaN)
	if Fire(SpuriousNaN) {
		t.Fatal("fired after Disarm")
	}
	if Armed(SpuriousNaN) {
		t.Fatal("armed after Disarm")
	}
}

func TestPointsAreIndependent(t *testing.T) {
	Reset()
	defer Reset()
	Arm(CorruptPack, 1)
	if Fire(SlowWorker) {
		t.Fatal("arming CorruptPack fired SlowWorker")
	}
	if !Fire(CorruptPack) {
		t.Fatal("armed point did not fire")
	}
}

// The budget must hold under concurrent Fire calls (the pool's workers all
// pass through the hooks); run with -race in the chaos target.
func TestConcurrentFiresRespectBudget(t *testing.T) {
	Reset()
	defer Reset()
	const budget = 100
	Arm(SlowWorker, budget)
	var fires atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if Fire(SlowWorker) {
					fires.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if fires.Load() != budget {
		t.Fatalf("concurrent fires = %d, want exactly %d", fires.Load(), budget)
	}
}

func TestPointNames(t *testing.T) {
	for _, p := range Points() {
		if p.String() == "unknown-fault" {
			t.Fatalf("point %d has no name", p)
		}
	}
}

// The arm/disarm race fixed in the registry rewrite: refreshing the
// anyArmed short-circuit used to scan-then-store without a lock, so a
// concurrent Arm could be clobbered into an armed-but-invisible state.
// Under the mutex, a point armed with an unlimited budget must keep firing
// no matter how much concurrent arm/disarm churn hits other points. Run
// with -race via make race / make test-chaos.
func TestArmDisarmRaceKeepsArmedPointVisible(t *testing.T) {
	Reset()
	defer Reset()
	Arm(PanicInKernel, Unlimited)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	churn := []Point{SpuriousNaN, CorruptPack, SlowWorker, StuckWorker, CanaryMismatch}
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				p := churn[(g+i)%len(churn)]
				switch i % 3 {
				case 0:
					Arm(p, i%5+1)
				case 1:
					Disarm(p)
				case 2:
					Fire(p)
				}
			}
		}(g)
	}
	for i := 0; i < 5000; i++ {
		if !Fire(PanicInKernel) {
			close(stop)
			wg.Wait()
			t.Fatalf("unlimited-armed point stopped firing after %d fires amid arm/disarm churn", i)
		}
	}
	close(stop)
	wg.Wait()
}

// Reset during concurrent fires must also be race-free and leave every
// point disarmed.
func TestResetRaceLeavesAllDisarmed(t *testing.T) {
	Reset()
	defer Reset()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				Arm(SlowWorker, 2)
				Fire(SlowWorker)
				Reset()
			}
		}()
	}
	wg.Wait()
	for _, p := range Points() {
		if Armed(p) || Fire(p) {
			t.Fatalf("%v armed after the final Reset", p)
		}
	}
}

// SlowClassFire must gate on three independent conditions: the point armed,
// a non-zero delay configured, and the call's class matching the target —
// and Reset must clear the target so a later test cannot inherit it.
func TestSlowClassFireTargeting(t *testing.T) {
	Reset()
	defer Reset()
	const slow, fast = 2, 1 // telemetry.ShapeSmall / ShapeTiny indices
	if d := SlowClassFire(slow); d != 0 {
		t.Fatalf("fired with a fresh registry: %v", d)
	}
	SetSlowClass(slow, 3*time.Millisecond)
	if d := SlowClassFire(slow); d != 0 {
		t.Fatalf("fired with a target but no arm: %v", d)
	}
	Arm(SlowShapeClass, 2)
	if d := SlowClassFire(fast); d != 0 {
		t.Fatalf("fired for a non-target class: %v", d)
	}
	if d := SlowClassFire(slow); d != 3*time.Millisecond {
		t.Fatalf("armed target fire = %v, want 3ms", d)
	}
	if d := SlowClassFire(slow); d != 3*time.Millisecond {
		t.Fatalf("second budgeted fire = %v, want 3ms", d)
	}
	if d := SlowClassFire(slow); d != 0 {
		t.Fatalf("fired past its budget: %v", d)
	}
	SetSlowClass(slow, time.Millisecond)
	Arm(SlowShapeClass, 1)
	Reset()
	if d := SlowClassFire(slow); d != 0 {
		t.Fatalf("fired after Reset: %v", d)
	}
}

func TestNewPointsRegistered(t *testing.T) {
	found := map[string]bool{}
	for _, p := range Points() {
		found[p.String()] = true
	}
	for _, want := range []string{"canary-mismatch", "stuck-worker", "slow-shape-class"} {
		if !found[want] {
			t.Fatalf("point %q missing from Points(): %v", want, Points())
		}
	}
	if NumPoints != len(Points()) {
		t.Fatalf("NumPoints = %d, Points() has %d", NumPoints, len(Points()))
	}
}
