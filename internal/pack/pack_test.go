package pack

import (
	"testing"
	"testing/quick"

	"libshalom/internal/mat"
)

func TestDecisionNN(t *testing.T) {
	l1 := 32 << 10
	if ShouldPackBNN(l1, l1) != NoPack {
		t.Fatal("B exactly at L1 capacity must not be packed (§4.2)")
	}
	if ShouldPackBNN(l1+1, l1) != PackOverlap {
		t.Fatal("B over L1 capacity must be packed with overlap")
	}
	if ShouldPackANN() != NoPack {
		t.Fatal("A must never be packed under NN (§4.2)")
	}
}

func TestDecisionNT(t *testing.T) {
	if ShouldPackBNT() != PackOverlap {
		t.Fatal("NT must always pack B (§4.3)")
	}
}

func TestDepthFor(t *testing.T) {
	llc := 2 << 20
	if DepthFor(llc, llc) != DepthCurrent {
		t.Fatal("LLC-resident B must use t=0")
	}
	if DepthFor(llc+1, llc) != DepthAhead {
		t.Fatal("beyond-LLC B must use t=1 (§5.3.2)")
	}
}

func TestStrategyString(t *testing.T) {
	if NoPack.String() != "none" || PackOverlap.String() != "overlap" || PackSequential.String() != "sequential" {
		t.Fatal("strategy names wrong")
	}
}

func TestPackBF32(t *testing.T) {
	rng := mat.NewRNG(1)
	b := mat.RandomF32(10, 8, rng)
	dst := make([]float32, 3*4)
	PackBF32(dst, b.Data, b.Stride, 2, 3, 3, 4)
	for k := 0; k < 3; k++ {
		for j := 0; j < 4; j++ {
			if dst[k*4+j] != b.At(2+k, 3+j) {
				t.Fatalf("dst(%d,%d) wrong", k, j)
			}
		}
	}
}

func TestPackBTransposedRoundTrip(t *testing.T) {
	f := func(seed uint16) bool {
		rng := mat.NewRNG(uint64(seed) + 5)
		n, k := rng.Intn(12)+1, rng.Intn(12)+1
		bt := mat.RandomF32(n, k, rng) // stored N×K
		dst := make([]float32, k*n)
		PackBTransposedF32(dst, bt.Data, bt.Stride, 0, 0, k, n)
		// dst must equal bt transposed.
		for kk := 0; kk < k; kk++ {
			for j := 0; j < n; j++ {
				if dst[kk*n+j] != bt.At(j, kk) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPackAF32SubBlock(t *testing.T) {
	rng := mat.NewRNG(2)
	a := mat.RandomF32(9, 11, rng)
	dst := make([]float32, 4*5)
	PackAF32(dst, a.Data, a.Stride, 3, 2, 4, 5)
	for i := 0; i < 4; i++ {
		for k := 0; k < 5; k++ {
			if dst[i*5+k] != a.At(3+i, 2+k) {
				t.Fatalf("A pack (%d,%d) wrong", i, k)
			}
		}
	}
}

func TestPackATransposed(t *testing.T) {
	rng := mat.NewRNG(3)
	at := mat.RandomF32(7, 9, rng) // stored K×M (K=7, M=9)
	dst := make([]float32, 4*3)    // mc=4, kc=3
	PackATransposedF32(dst, at.Data, at.Stride, 2, 1, 4, 3)
	for i := 0; i < 4; i++ {
		for k := 0; k < 3; k++ {
			if dst[i*3+k] != at.At(1+k, 2+i) {
				t.Fatalf("A^T pack (%d,%d) wrong", i, k)
			}
		}
	}
}

func TestPackAColMajor(t *testing.T) {
	rng := mat.NewRNG(4)
	a := mat.RandomF32(10, 6, rng)
	dst := make([]float32, 8*4)
	PackAColMajorF32(dst, a.Data, a.Stride, 1, 2, 8, 4)
	for k := 0; k < 4; k++ {
		for i := 0; i < 8; i++ {
			if dst[k*8+i] != a.At(1+i, 2+k) {
				t.Fatalf("col-major pack (%d,%d) wrong", i, k)
			}
		}
	}
}

func TestPackF64Variants(t *testing.T) {
	rng := mat.NewRNG(5)
	b := mat.RandomF64(6, 7, rng)
	dst := make([]float64, 2*3)
	PackBF64(dst, b.Data, b.Stride, 1, 2, 2, 3)
	if dst[0] != b.At(1, 2) || dst[5] != b.At(2, 4) {
		t.Fatal("PackBF64 wrong")
	}
	bt := mat.RandomF64(5, 6, rng)
	dstT := make([]float64, 4*2)
	PackBTransposedF64(dstT, bt.Data, bt.Stride, 1, 2, 4, 2)
	if dstT[0*2+0] != bt.At(2, 1) || dstT[3*2+1] != bt.At(3, 4) {
		t.Fatal("PackBTransposedF64 wrong")
	}
	a := mat.RandomF64(6, 8, rng)
	dstA := make([]float64, 3*4)
	PackAF64(dstA, a.Data, a.Stride, 2, 3, 3, 4)
	if dstA[0] != a.At(2, 3) || dstA[11] != a.At(4, 6) {
		t.Fatal("PackAF64 wrong")
	}
	at := mat.RandomF64(5, 7, rng)
	dstAT := make([]float64, 2*3)
	PackATransposedF64(dstAT, at.Data, at.Stride, 1, 0, 2, 3)
	if dstAT[0*3+0] != at.At(0, 1) || dstAT[1*3+2] != at.At(2, 2) {
		t.Fatal("PackATransposedF64 wrong")
	}
}
