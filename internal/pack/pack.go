// Package pack provides the data-packing substrate: the linear-buffer
// packing routines every GEMM driver uses and the runtime packing decision
// rules of §4. LibShalom's drivers (internal/core) call the predicates to
// decide whether to pack at all and, when packing, do it inside the
// micro-kernel (internal/kernels Pack* kernels); the baseline drivers
// (internal/baselines) use the sequential whole-panel routines here, which is
// exactly the behaviour the paper contrasts against.
package pack

// Strategy describes what a driver decided to do about one operand.
type Strategy int

const (
	// NoPack: the operand is consumed in place (cache-friendly access).
	NoPack Strategy = iota
	// PackOverlap: the operand is packed inside the micro-kernel,
	// overlapped with FMA computation (§5.3, LibShalom only).
	PackOverlap
	// PackSequential: the operand is packed in a separate pass before the
	// kernel runs (conventional BLAS behaviour, §2.2).
	PackSequential
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case NoPack:
		return "none"
	case PackOverlap:
		return "overlap"
	default:
		return "sequential"
	}
}

// Depth is the packing lookahead t of §5.3.2: how many nr-slivers ahead of
// the current micro-kernel iteration get packed. The paper sets t=0 for
// small GEMMs (pack only what the current iteration needs; the prefetcher
// covers the rest once B is LLC-resident, §5.3.1) and t=1 for irregular-
// shaped GEMMs whose B exceeds the LLC.
type Depth int

const (
	// DepthCurrent packs only the current sliver (t = 0).
	DepthCurrent Depth = 0
	// DepthAhead additionally packs the next iteration's sliver (t = 1).
	DepthAhead Depth = 1
)

// ShouldPackBNN is the NN-mode decision of §4.2: pack B only when it exceeds
// the L1 data cache; otherwise every operand is consumed in place. sizeB is
// the operand footprint in bytes.
func ShouldPackBNN(sizeBBytes, l1Bytes int) Strategy {
	if sizeBBytes <= l1Bytes {
		return NoPack
	}
	return PackOverlap
}

// ShouldPackBNT is the NT-mode decision of §4.3: B is always packed because
// its elements cannot be walked along N with aligned vector loads; the
// packing is overlapped with computation.
func ShouldPackBNT() Strategy { return PackOverlap }

// ShouldPackANN is §4.2's A decision: never pack A under NN — its rows are
// walked contiguously, so hardware prefetch hides the latency even when A is
// the only operand exceeding L1.
func ShouldPackANN() Strategy { return NoPack }

// DepthFor implements §5.3.2's t selection: lookahead packing only pays off
// when B cannot live in the LLC (irregular-shaped inputs).
func DepthFor(sizeBBytes, llcBytes int) Depth {
	if sizeBBytes > llcBytes {
		return DepthAhead
	}
	return DepthCurrent
}

// PackBF32 copies the kc×nc block of B starting at (k0, j0) into dst as a
// dense row-major kc×nc buffer (ldb is B's stride). This is the sequential
// whole-panel packing conventional libraries always run (Fig 1 step L2).
//
//shalom:hotpath noalloc,nolock,noblock,notime
func PackBF32(dst []float32, b []float32, ldb, k0, j0, kc, nc int) {
	for k := 0; k < kc; k++ {
		src := b[(k0+k)*ldb+j0 : (k0+k)*ldb+j0+nc]
		copy(dst[k*nc:k*nc+nc], src)
	}
}

// PackBF64 is the FP64 counterpart of PackBF32.
//
//shalom:hotpath noalloc,nolock,noblock,notime
func PackBF64(dst []float64, b []float64, ldb, k0, j0, kc, nc int) {
	for k := 0; k < kc; k++ {
		src := b[(k0+k)*ldb+j0 : (k0+k)*ldb+j0+nc]
		copy(dst[k*nc:k*nc+nc], src)
	}
}

// PackBTransposedF32 packs a kc×nc block of the logical operand B = Bt^T,
// where bt is stored N×K row-major (the NT-mode input): dst[k*nc+j] =
// bt[(j0+j)*ldbt + k0+k]. This is the transpose gather the NT packing
// micro-kernel performs with vector loads plus scatter stores (Fig 5);
// baselines run it as a standalone pass.
//
//shalom:hotpath noalloc,nolock,noblock,notime
func PackBTransposedF32(dst []float32, bt []float32, ldbt, k0, j0, kc, nc int) {
	for j := 0; j < nc; j++ {
		src := bt[(j0+j)*ldbt+k0:]
		for k := 0; k < kc; k++ {
			dst[k*nc+j] = src[k]
		}
	}
}

// PackBTransposedF64 is the FP64 counterpart of PackBTransposedF32.
//
//shalom:hotpath noalloc,nolock,noblock,notime
func PackBTransposedF64(dst []float64, bt []float64, ldbt, k0, j0, kc, nc int) {
	for j := 0; j < nc; j++ {
		src := bt[(j0+j)*ldbt+k0:]
		for k := 0; k < kc; k++ {
			dst[k*nc+j] = src[k]
		}
	}
}

// PackAF32 packs the mc×kc block of A starting at (i0, k0) into dst as a
// dense row-major mc×kc buffer (lda is A's stride). The packed layout keeps
// each row's K elements contiguous, which is what the 7×12 main kernel's
// A-vector loads require (Fig 3).
//
//shalom:hotpath noalloc,nolock,noblock,notime
func PackAF32(dst []float32, a []float32, lda, i0, k0, mc, kc int) {
	for i := 0; i < mc; i++ {
		src := a[(i0+i)*lda+k0 : (i0+i)*lda+k0+kc]
		copy(dst[i*kc:i*kc+kc], src)
	}
}

// PackAF64 is the FP64 counterpart of PackAF32.
//
//shalom:hotpath noalloc,nolock,noblock,notime
func PackAF64(dst []float64, a []float64, lda, i0, k0, mc, kc int) {
	for i := 0; i < mc; i++ {
		src := a[(i0+i)*lda+k0 : (i0+i)*lda+k0+kc]
		copy(dst[i*kc:i*kc+kc], src)
	}
}

// PackATransposedF32 packs an mc×kc block of the logical operand A = At^T
// (at stored K×M row-major, the TN-mode input) into dense row-major mc×kc:
// dst[i*kc+k] = at[(k0+k)*ldat + i0+i]. §4.3: TN packs A with the NT-mode
// strategy.
//
//shalom:hotpath noalloc,nolock,noblock,notime
func PackATransposedF32(dst []float32, at []float32, ldat, i0, k0, mc, kc int) {
	for k := 0; k < kc; k++ {
		src := at[(k0+k)*ldat+i0:]
		for i := 0; i < mc; i++ {
			dst[i*kc+k] = src[i]
		}
	}
}

// PackATransposedF64 is the FP64 counterpart of PackATransposedF32.
//
//shalom:hotpath noalloc,nolock,noblock,notime
func PackATransposedF64(dst []float64, at []float64, ldat, i0, k0, mc, kc int) {
	for k := 0; k < kc; k++ {
		src := at[(k0+k)*ldat+i0:]
		for i := 0; i < mc; i++ {
			dst[i*kc+k] = src[i]
		}
	}
}

// PackAColMajorF32 packs an mb×kc block of A into the column-major (M-
// direction) sliver layout the 8×4 edge kernels of Fig 6 consume:
// dst[k*mb + i] = a[(i0+i)*lda + k0+k].
//
//shalom:hotpath noalloc,nolock,noblock,notime
func PackAColMajorF32(dst []float32, a []float32, lda, i0, k0, mb, kc int) {
	for k := 0; k < kc; k++ {
		for i := 0; i < mb; i++ {
			dst[k*mb+i] = a[(i0+i)*lda+k0+k]
		}
	}
}
