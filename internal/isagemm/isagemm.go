// Package isagemm executes a complete small GEMM entirely through the
// virtual-NEON ISA: the driver tiles the problem exactly like
// internal/core, but every floating-point operation — the β·C pre-scaling,
// the α folding and all the rank-1 updates — happens inside ISA programs
// run by the functional executor. It is the reproduction's end-to-end
// "assembly path": where internal/kernels validates each micro-kernel in
// isolation, this package validates that they compose across tiles and
// K-blocks with the accumulate semantics the real library relies on.
//
// The package targets the small-GEMM regime (that is what the paper
// executes per-call in assembly); the portable Go driver in internal/core
// remains the production path.
package isagemm

import (
	"fmt"

	"libshalom/internal/analytic"
	"libshalom/internal/isa"
	"libshalom/internal/kernels"
	"libshalom/internal/vexec"
)

// SGEMM computes C = alpha·A·B + beta·C (NN layout, FP32) through ISA
// programs only. Operands are row-major with explicit leading dimensions.
func SGEMM(m, n, k int, alpha float32, a []float32, lda int, b []float32, ldb int, beta float32, c []float32, ldc int) error {
	if m < 0 || n < 0 || k < 0 {
		return fmt.Errorf("isagemm: negative dimension")
	}
	if m == 0 || n == 0 {
		return nil
	}
	if lda < max(1, k) || ldb < max(1, n) || ldc < max(1, n) {
		return fmt.Errorf("isagemm: leading dimension too small")
	}
	const lanes = 4
	tile := analytic.SolveForElem(4)
	mr, nr := tile.MR, tile.NR

	// β·C through the ISA scale program, one row-tile at a time.
	if beta != 1 {
		if err := scaleRows(m, n, beta, c, ldc); err != nil {
			return err
		}
	}
	if alpha == 0 || k == 0 {
		return nil
	}

	// Fold α into a scaled copy of A (again through the ISA).
	aEff, ldaEff := a, lda
	if alpha != 1 {
		scaled := make([]float32, m*k)
		for i := 0; i < m; i++ {
			copy(scaled[i*k:(i+1)*k], a[i*lda:i*lda+k])
		}
		if err := scaleRows(m, k, alpha, scaled, k); err != nil {
			return err
		}
		aEff, ldaEff = scaled, k
	}

	// One K block covering the whole (padded) K extent: zero padding adds
	// zero to every accumulator, so the padded program computes the exact
	// sum.
	kcp := roundUp(k, lanes)

	for i := 0; i < m; i += mr {
		mrb := min(mr, m-i)
		// Padded A sliver: mrb × kcp, row-major.
		aPad := make([]float32, mrb*kcp)
		for r := 0; r < mrb; r++ {
			copy(aPad[r*kcp:r*kcp+k], aEff[(i+r)*ldaEff:(i+r)*ldaEff+k])
		}
		for j := 0; j < n; j += nr {
			nrb := min(nr, n-j)
			nrp := roundUp(nrb, lanes)
			// Padded B sliver: kcp × nrp.
			bPad := make([]float32, kcp*nrp)
			for r := 0; r < k; r++ {
				copy(bPad[r*nrp:r*nrp+nrb], b[r*ldb+j:r*ldb+j+nrb])
			}
			// Padded C tile, loaded with the (β-scaled) current values.
			cPad := make([]float32, mrb*nrp)
			for r := 0; r < mrb; r++ {
				copy(cPad[r*nrp:r*nrp+nrb], c[(i+r)*ldc+j:(i+r)*ldc+j+nrb])
			}
			prog := kernels.BuildMain(kernels.MainSpec{
				Elem: 4, MR: mrb, NR: nrp, KC: kcp,
				LDA: kcp, LDB: nrp, LDC: nrp,
				Accumulate: true, Schedule: kernels.Pipelined,
			})
			if err := vexec.RunF32(prog, aPad, bPad, cPad); err != nil {
				return fmt.Errorf("isagemm: tile (%d,%d): %w", i, j, err)
			}
			for r := 0; r < mrb; r++ {
				copy(c[(i+r)*ldc+j:(i+r)*ldc+j+nrb], cPad[r*nrp:r*nrp+nrb])
			}
		}
	}
	return nil
}

// scaleRows multiplies the m×n block of c by s using ISA programs: each
// row segment is loaded into vector registers, scaled by the immediate and
// stored back. Tail elements shorter than a vector go through a padded
// scratch row.
func scaleRows(m, n int, s float32, c []float32, ldc int) error {
	const lanes = 4
	np := roundUp(n, lanes)
	b := isa.NewBuilder(fmt.Sprintf("scale_row_n%d", np), 4)
	row := b.Stream("row", isa.StreamC, np, true)
	for off := 0; off < np; off += lanes {
		reg := (off / lanes) % 30
		b.LdVec(reg, row, off)
		b.FmulScalarAll(reg, float64(s))
		b.StVec(reg, row, off)
	}
	prog := b.MustBuild()
	scratch := make([]float32, np)
	for i := 0; i < m; i++ {
		seg := c[i*ldc : i*ldc+n]
		if n == np {
			if err := vexec.RunF32(prog, seg); err != nil {
				return err
			}
			continue
		}
		copy(scratch, seg)
		if err := vexec.RunF32(prog, scratch); err != nil {
			return err
		}
		copy(seg, scratch[:n])
	}
	return nil
}

func roundUp(a, b int) int {
	if a == 0 {
		return b
	}
	return (a + b - 1) / b * b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
