package isagemm

import (
	"testing"
	"testing/quick"

	"libshalom/internal/core"
	"libshalom/internal/mat"
)

func TestISAGEMMKnown(t *testing.T) {
	a := []float32{1, 2, 3, 4}
	b := []float32{5, 6, 7, 8}
	c := []float32{1, 1, 1, 1}
	// C = 2·A·B + 3·C
	if err := SGEMM(2, 2, 2, 2, a, 2, b, 2, 3, c, 2); err != nil {
		t.Fatal(err)
	}
	want := []float32{2*19 + 3, 2*22 + 3, 2*43 + 3, 2*50 + 3}
	for i := range want {
		if c[i] != want[i] {
			t.Fatalf("c = %v, want %v", c, want)
		}
	}
}

// TestISAGEMMProperty: the all-ISA execution must match the reference on
// random small shapes, strides and scalars — the end-to-end proof that the
// emitted micro-kernels compose.
func TestISAGEMMProperty(t *testing.T) {
	f := func(seed uint32) bool {
		rng := mat.NewRNG(uint64(seed) + 5000)
		m, n, k := rng.Intn(30)+1, rng.Intn(30)+1, rng.Intn(25)+1
		alpha := float32(rng.Float64()*3 - 1.5)
		beta := float32(rng.Float64()*3 - 1.5)
		switch rng.Intn(4) {
		case 0:
			alpha = 1
		case 1:
			beta = 0
		}
		a := mat.RandomF32(m, k, rng)
		bm := mat.RandomF32(k, n, rng)
		cw := mat.NewF32(m, n+rng.Intn(4)) // wider stride
		c := cw.View(0, 0, m, n)
		c.FillRandom(rng)
		want := c.Clone()
		mat.RefGEMMF32(mat.NoTrans, mat.NoTrans, alpha, a, bm, beta, want)
		if err := SGEMM(m, n, k, alpha, a.Data, a.Stride, bm.Data, bm.Stride, beta, c.Data, c.Stride); err != nil {
			t.Logf("m%d n%d k%d: %v", m, n, k, err)
			return false
		}
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				d := float64(c.At(i, j)) - float64(want.At(i, j))
				if d > 2e-2 || d < -2e-2 {
					t.Logf("m%d n%d k%d α%v β%v: C(%d,%d)=%v want %v", m, n, k, alpha, beta, i, j, c.At(i, j), want.At(i, j))
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestISAGEMMMatchesProductionDriver: the ISA path and the Go driver must
// agree on the same call (within FP32 reassociation noise).
func TestISAGEMMMatchesProductionDriver(t *testing.T) {
	rng := mat.NewRNG(6000)
	m, n, k := 23, 29, 17
	a := mat.RandomF32(m, k, rng)
	b := mat.RandomF32(k, n, rng)
	cISA := mat.RandomF32(m, n, rng)
	cGo := cISA.Clone()
	if err := SGEMM(m, n, k, 1.5, a.Data, a.Stride, b.Data, b.Stride, 0.5, cISA.Data, cISA.Stride); err != nil {
		t.Fatal(err)
	}
	if err := core.SGEMM(core.Config{}, core.NN, m, n, k, 1.5, a.Data, a.Stride, b.Data, b.Stride, 0.5, cGo.Data, cGo.Stride); err != nil {
		t.Fatal(err)
	}
	if !cISA.Equal(cGo, 1e-3) {
		t.Fatalf("ISA path diverges from production driver: max diff %g", cISA.MaxDiff(cGo))
	}
}

func TestISAGEMMDegenerate(t *testing.T) {
	if err := SGEMM(0, 4, 4, 1, nil, 4, make([]float32, 16), 4, 0, nil, 4); err != nil {
		t.Fatal(err)
	}
	c := []float32{2, 2}
	if err := SGEMM(1, 2, 0, 1, nil, 1, nil, 2, 0.5, c, 2); err != nil {
		t.Fatal(err)
	}
	if c[0] != 1 || c[1] != 1 {
		t.Fatalf("k=0 scaling wrong: %v", c)
	}
	if err := SGEMM(-1, 2, 2, 1, nil, 2, nil, 2, 0, nil, 2); err == nil {
		t.Fatal("negative dimension accepted")
	}
	if err := SGEMM(2, 2, 2, 1, make([]float32, 4), 1, make([]float32, 4), 2, 0, make([]float32, 4), 2); err == nil {
		t.Fatal("bad lda accepted")
	}
}

func TestScaleRowsTail(t *testing.T) {
	// n not a multiple of the vector width exercises the scratch path.
	c := []float32{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if err := scaleRows(2, 3, 2, c, 5); err != nil {
		t.Fatal(err)
	}
	want := []float32{2, 4, 6, 4, 5, 12, 14, 16, 9, 10}
	for i := range want {
		if c[i] != want[i] {
			t.Fatalf("c = %v, want %v", c, want)
		}
	}
}

// BenchmarkISAGEMM measures the functional ISA interpreter end-to-end on a
// small GEMM (the interpreter is a correctness tool, not a speed path; the
// number contextualizes how much slower interpretation is than the Go
// kernels).
func BenchmarkISAGEMM(b *testing.B) {
	rng := mat.NewRNG(1)
	m := 24
	a := mat.RandomF32(m, m, rng)
	bm := mat.RandomF32(m, m, rng)
	c := mat.NewF32(m, m)
	b.SetBytes(int64(2 * m * m * m))
	for i := 0; i < b.N; i++ {
		if err := SGEMM(m, m, m, 1, a.Data, a.Stride, bm.Data, bm.Stride, 0, c.Data, c.Stride); err != nil {
			b.Fatal(err)
		}
	}
}
