// Package cache implements trace-driven set-associative cache and TLB
// simulators. They are the micro-level substrate of the memory-system model:
// the analytic blocking-level model in internal/cachemodel produces the miss
// counts used for large experiments (simulating 50176-column matrices
// access-by-access is infeasible), and this package cross-validates that
// model on reduced shapes plus provides the L1/L2/TLB behaviour unit tests
// need.
package cache

import (
	"fmt"

	"libshalom/internal/platform"
)

// Stats counts accesses and misses for one cache level.
type Stats struct {
	Accesses uint64
	Misses   uint64
}

// MissRate returns misses/accesses (0 when idle).
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Cache is one level of set-associative cache with true-LRU replacement.
type Cache struct {
	lineBytes  int
	sets       int
	ways       int
	lineShift  uint
	setMask    uint64
	tags       []uint64 // sets × ways
	valid      []bool
	lastUse    []uint64 // LRU timestamps
	tick       uint64
	stat       Stats
	next       *Cache // next level (nil = memory)
	writeAlloc bool
}

// New builds a cache with the given geometry. lineBytes and sets must be
// powers of two.
func New(sizeBytes, lineBytes, ways int) *Cache {
	if sizeBytes <= 0 || lineBytes <= 0 || ways <= 0 {
		panic("cache: non-positive geometry")
	}
	sets := sizeBytes / (lineBytes * ways)
	if sets == 0 {
		sets = 1
		ways = sizeBytes / lineBytes
		if ways == 0 {
			ways = 1
		}
	}
	if lineBytes&(lineBytes-1) != 0 {
		panic("cache: line size must be a power of two")
	}
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache: set count %d must be a power of two", sets))
	}
	shift := uint(0)
	for 1<<shift < lineBytes {
		shift++
	}
	return &Cache{
		lineBytes:  lineBytes,
		sets:       sets,
		ways:       ways,
		lineShift:  shift,
		setMask:    uint64(sets - 1),
		tags:       make([]uint64, sets*ways),
		valid:      make([]bool, sets*ways),
		lastUse:    make([]uint64, sets*ways),
		writeAlloc: true,
	}
}

// FromConfig builds a cache from a platform cache configuration.
func FromConfig(c platform.CacheConfig) *Cache {
	return New(c.SizeBytes, c.LineBytes, c.Ways)
}

// Chain links c to a next level; misses in c propagate to next.
func (c *Cache) Chain(next *Cache) *Cache {
	c.next = next
	return c
}

// Stats returns the accumulated counters.
func (c *Cache) Stats() Stats { return c.stat }

// Reset clears contents and counters.
func (c *Cache) Reset() {
	for i := range c.valid {
		c.valid[i] = false
	}
	c.stat = Stats{}
	c.tick = 0
	if c.next != nil {
		c.next.Reset()
	}
}

// LineBytes returns the line size.
func (c *Cache) LineBytes() int { return c.lineBytes }

// Access touches the byte address addr (load or store; the model is
// write-allocate so both behave identically for residency). It returns true
// on hit. Misses recurse into the next level.
func (c *Cache) Access(addr uint64) bool {
	c.tick++
	c.stat.Accesses++
	line := addr >> c.lineShift
	set := int(line & c.setMask)
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		if c.valid[base+w] && c.tags[base+w] == line {
			c.lastUse[base+w] = c.tick
			return true
		}
	}
	c.stat.Misses++
	if c.next != nil {
		c.next.Access(addr)
	}
	// Install with LRU replacement.
	victim := base
	for w := 1; w < c.ways; w++ {
		if !c.valid[base+w] {
			victim = base + w
			break
		}
		if c.lastUse[base+w] < c.lastUse[victim] {
			victim = base + w
		}
	}
	c.tags[victim] = line
	c.valid[victim] = true
	c.lastUse[victim] = c.tick
	return false
}

// AccessRange touches every line in [addr, addr+bytes).
func (c *Cache) AccessRange(addr uint64, bytes int) {
	if bytes <= 0 {
		return
	}
	first := addr >> c.lineShift
	last := (addr + uint64(bytes) - 1) >> c.lineShift
	for line := first; line <= last; line++ {
		c.Access(line << c.lineShift)
	}
}

// Contains reports whether addr's line is resident (no state change).
func (c *Cache) Contains(addr uint64) bool {
	line := addr >> c.lineShift
	base := int(line&c.setMask) * c.ways
	for w := 0; w < c.ways; w++ {
		if c.valid[base+w] && c.tags[base+w] == line {
			return true
		}
	}
	return false
}

// TLB is a fully-associative LRU translation buffer.
type TLB struct {
	pageShift uint
	entries   int
	pages     []uint64
	valid     []bool
	lastUse   []uint64
	tick      uint64
	stat      Stats
}

// NewTLB builds a TLB with the given entry count and page size (power of 2).
func NewTLB(entries, pageBytes int) *TLB {
	if entries <= 0 || pageBytes <= 0 || pageBytes&(pageBytes-1) != 0 {
		panic("cache: bad TLB geometry")
	}
	shift := uint(0)
	for 1<<shift < pageBytes {
		shift++
	}
	return &TLB{
		pageShift: shift,
		entries:   entries,
		pages:     make([]uint64, entries),
		valid:     make([]bool, entries),
		lastUse:   make([]uint64, entries),
	}
}

// Stats returns the accumulated counters.
func (t *TLB) Stats() Stats { return t.stat }

// Access translates addr, returning true on TLB hit.
func (t *TLB) Access(addr uint64) bool {
	t.tick++
	t.stat.Accesses++
	page := addr >> t.pageShift
	victim := 0
	for i := 0; i < t.entries; i++ {
		if t.valid[i] && t.pages[i] == page {
			t.lastUse[i] = t.tick
			return true
		}
		if !t.valid[i] {
			victim = i
		} else if t.valid[victim] && t.lastUse[i] < t.lastUse[victim] {
			victim = i
		}
	}
	t.stat.Misses++
	t.pages[victim] = page
	t.valid[victim] = true
	t.lastUse[victim] = t.tick
	return false
}

// Hierarchy bundles the data-cache levels of one platform core.
type Hierarchy struct {
	L1, L2, L3 *Cache // L3 may be nil
	TLB        *TLB
}

// NewHierarchy builds a private view of a platform's cache hierarchy.
// Shared caches are still instantiated per-hierarchy; contention between
// cores is handled by the analytic model, not by this trace simulator.
func NewHierarchy(p *platform.Platform) *Hierarchy {
	h := &Hierarchy{
		L1:  FromConfig(p.L1),
		L2:  FromConfig(p.L2),
		TLB: NewTLB(p.TLBEntrs, p.PageBytes),
	}
	if p.L3.SizeBytes > 0 {
		h.L3 = FromConfig(p.L3)
		h.L2.Chain(h.L3)
	}
	h.L1.Chain(h.L2)
	return h
}

// Access touches addr through the whole hierarchy (and the TLB).
func (h *Hierarchy) Access(addr uint64) {
	h.TLB.Access(addr)
	h.L1.Access(addr)
}

// Reset clears all levels.
func (h *Hierarchy) Reset() {
	h.L1.Reset() // chains into L2/L3
	h.TLB = NewTLB(h.TLB.entries, 1<<h.TLB.pageShift)
}
