package cache

import (
	"testing"
	"testing/quick"

	"libshalom/internal/platform"
)

func TestColdMissThenHit(t *testing.T) {
	c := New(1024, 64, 2)
	if c.Access(0) {
		t.Fatal("cold access hit")
	}
	if !c.Access(0) {
		t.Fatal("second access missed")
	}
	if !c.Access(63) {
		t.Fatal("same-line access missed")
	}
	if c.Access(64) {
		t.Fatal("next-line cold access hit")
	}
	s := c.Stats()
	if s.Accesses != 4 || s.Misses != 2 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestLRUReplacement(t *testing.T) {
	// 2-way, 1 set of interest: lines 0, S, 2S map to set 0 where
	// S = sets*lineBytes.
	c := New(2*64*4, 64, 2) // 4 sets, 2 ways
	stride := uint64(4 * 64)
	c.Access(0 * stride)
	c.Access(1 * stride)
	c.Access(0 * stride) // refresh line 0 → line S is LRU
	c.Access(2 * stride) // evicts line S
	if !c.Contains(0) {
		t.Fatal("MRU line evicted")
	}
	if c.Contains(stride) {
		t.Fatal("LRU line not evicted")
	}
	if !c.Contains(2 * stride) {
		t.Fatal("new line not installed")
	}
}

func TestCapacityEviction(t *testing.T) {
	c := New(1024, 64, 2) // 16 lines total
	for i := 0; i < 32; i++ {
		c.Access(uint64(i * 64))
	}
	// Re-walk: everything was evicted by the second half.
	misses0 := c.Stats().Misses
	for i := 0; i < 8; i++ {
		c.Access(uint64(i * 64))
	}
	if c.Stats().Misses != misses0+8 {
		t.Fatal("lines expected evicted were still resident")
	}
}

func TestWorkingSetFitsNoCapacityMisses(t *testing.T) {
	c := New(32<<10, 64, 4)
	// Touch 16KB twice: second pass must be all hits.
	for pass := 0; pass < 2; pass++ {
		for a := 0; a < 16<<10; a += 64 {
			c.Access(uint64(a))
		}
	}
	s := c.Stats()
	if s.Misses != 256 { // only the cold pass
		t.Fatalf("misses = %d, want 256", s.Misses)
	}
}

func TestChainPropagation(t *testing.T) {
	l2 := New(4096, 64, 4)
	l1 := New(512, 64, 2).Chain(l2)
	for a := 0; a < 2048; a += 64 {
		l1.Access(uint64(a))
	}
	// All 32 lines miss L1 (cold) and miss L2 (cold).
	if l1.Stats().Misses != 32 || l2.Stats().Misses != 32 {
		t.Fatalf("l1 %d l2 %d misses", l1.Stats().Misses, l2.Stats().Misses)
	}
	// Second pass: L1 holds only 8 lines → 24+ L1 misses, but L2 holds all
	// 32 → zero new L2 misses.
	l2m := l2.Stats().Misses
	for a := 0; a < 2048; a += 64 {
		l1.Access(uint64(a))
	}
	if l2.Stats().Misses != l2m {
		t.Fatalf("L2 missed on L2-resident data: %d new", l2.Stats().Misses-l2m)
	}
}

func TestAccessRange(t *testing.T) {
	c := New(4096, 64, 4)
	c.AccessRange(10, 120) // spans lines 0 and 1 (bytes 10..129)
	if c.Stats().Accesses != 3 || c.Stats().Misses != 3 {
		t.Fatalf("stats = %+v, want 3 line touches", c.Stats())
	}
	c.AccessRange(0, 0)
	if c.Stats().Accesses != 3 {
		t.Fatal("zero-length range touched lines")
	}
}

func TestReset(t *testing.T) {
	c := New(1024, 64, 2)
	c.Access(0)
	c.Reset()
	if c.Stats().Accesses != 0 || c.Contains(0) {
		t.Fatal("reset incomplete")
	}
}

func TestSingleSetFallback(t *testing.T) {
	// size < line*ways collapses to one set with reduced ways.
	c := New(128, 64, 4)
	c.Access(0)
	c.Access(64)
	if !c.Contains(0) || !c.Contains(64) {
		t.Fatal("tiny cache lost both lines")
	}
	c.Access(128)
	if c.Contains(0) {
		t.Fatal("tiny cache failed to evict LRU")
	}
}

func TestMissRate(t *testing.T) {
	if (Stats{}).MissRate() != 0 {
		t.Fatal("idle miss rate must be 0")
	}
	if (Stats{Accesses: 4, Misses: 1}).MissRate() != 0.25 {
		t.Fatal("miss rate arithmetic wrong")
	}
}

func TestTLBBasic(t *testing.T) {
	tlb := NewTLB(2, 4096)
	if tlb.Access(0) {
		t.Fatal("cold TLB hit")
	}
	if !tlb.Access(100) {
		t.Fatal("same-page TLB miss")
	}
	tlb.Access(4096)
	tlb.Access(8192) // evicts page 0 (LRU)
	if tlb.Access(0) {
		t.Fatal("evicted page still hit")
	}
}

func TestTLBLRUOrder(t *testing.T) {
	tlb := NewTLB(2, 4096)
	tlb.Access(0)
	tlb.Access(4096)
	tlb.Access(0)    // page 0 MRU
	tlb.Access(8192) // must evict page 1
	if !tlb.Access(0) {
		t.Fatal("MRU page evicted")
	}
	if tlb.Access(4096) {
		t.Fatal("LRU page survived")
	}
}

func TestHierarchyFromPlatform(t *testing.T) {
	for _, p := range platform.All() {
		h := NewHierarchy(p)
		h.Access(0)
		h.Access(0)
		if h.L1.Stats().Accesses != 2 || h.L1.Stats().Misses != 1 {
			t.Fatalf("%s L1 stats %+v", p.Name, h.L1.Stats())
		}
		if p.L3.SizeBytes > 0 && h.L3 == nil {
			t.Fatalf("%s should have L3", p.Name)
		}
		if p.L3.SizeBytes == 0 && h.L3 != nil {
			t.Fatalf("%s should not have L3", p.Name)
		}
	}
}

// Property: miss count never exceeds access count, and a second identical
// pass over a small working set never increases misses in a big cache.
func TestPropertyMissesBounded(t *testing.T) {
	f := func(seed uint16) bool {
		c := New(8192, 64, 4)
		addrs := make([]uint64, 50)
		s := uint64(seed) + 1
		for i := range addrs {
			s = s*2862933555777941757 + 3037000493
			addrs[i] = s % 4096 // fits in cache
		}
		for _, a := range addrs {
			c.Access(a)
		}
		m1 := c.Stats().Misses
		for _, a := range addrs {
			if !c.Access(a) {
				return false // must all hit
			}
		}
		return c.Stats().Misses == m1 && m1 <= 50
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBadGeometryPanics(t *testing.T) {
	for _, f := range []func(){
		func() { New(0, 64, 2) },
		func() { New(1024, 63, 2) },
		func() { NewTLB(0, 4096) },
		func() { NewTLB(4, 1000) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad geometry accepted")
				}
			}()
			f()
		}()
	}
}

// refLRU is a brute-force fully-associative LRU used as an oracle: a
// single-set cache must behave identically to it.
type refLRU struct {
	cap   int
	lines []uint64
}

func (r *refLRU) access(line uint64) bool {
	for i, l := range r.lines {
		if l == line {
			r.lines = append(append(append([]uint64{}, r.lines[:i]...), r.lines[i+1:]...), line)
			return true
		}
	}
	r.lines = append(r.lines, line)
	if len(r.lines) > r.cap {
		r.lines = r.lines[1:]
	}
	return false
}

// TestSingleSetMatchesBruteForceLRU: property test — a one-set cache's
// hit/miss sequence must match the reference LRU exactly on random traces.
func TestSingleSetMatchesBruteForceLRU(t *testing.T) {
	f := func(seed uint16) bool {
		ways := int(seed%7) + 1
		c := New(64*ways, 64, ways) // one set of `ways` lines
		ref := &refLRU{cap: ways}
		s := uint64(seed)*2654435761 + 1
		for i := 0; i < 300; i++ {
			s = s*6364136223846793005 + 1442695040888963407
			line := s % 16
			addr := line * 64
			if c.Access(addr) != ref.access(line) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
