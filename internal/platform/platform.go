// Package platform models the three ARMv8 multi-core processors the paper
// evaluates on (Table 1): Phytium 2000+, Kunpeng 920 and ThunderX2. A
// Platform combines the published specification (cores, frequency, cache
// sizes) with the micro-architectural parameters the timing model needs
// (pipe counts, latencies, out-of-order window, memory system). The
// micro-architectural numbers are modeling choices calibrated so that the
// derived peak FLOPS matches Table 1 exactly and so the behaviours the paper
// reports (FMA density needs, scheduling sensitivity, cluster-shared L2 on
// Phytium) are expressible; DESIGN.md §1 records this substitution.
package platform

import "fmt"

// CacheConfig describes one level of the data-cache hierarchy.
type CacheConfig struct {
	SizeBytes int  // total capacity
	LineBytes int  // cache line size
	Ways      int  // associativity
	LatencyCy int  // load-to-use latency in cycles
	Shared    bool // true when shared between cores of a cluster (or chip)
	SharedBy  int  // number of cores sharing one instance (1 when private)
}

// Sets returns the number of sets implied by the configuration.
func (c CacheConfig) Sets() int {
	if c.SizeBytes == 0 {
		return 0
	}
	return c.SizeBytes / (c.LineBytes * c.Ways)
}

// Platform is a full processor model.
type Platform struct {
	Name      string
	Cores     int
	FreqGHz   float64
	L1        CacheConfig
	L2        CacheConfig
	L3        CacheConfig // SizeBytes == 0 means the level is absent (Phytium 2000+)
	RAMBytes  int64
	TLBEntrs  int // data-TLB entries (4KiB pages)
	PageBytes int

	// Core pipeline model.
	IssueWidth int // instructions issued per cycle
	FMAPipes   int // 128-bit FMA-capable vector pipes
	LoadPipes  int // load pipes
	StorePipes int // store pipes
	OoOWindow  int // bounded lookahead window for the scoreboard scheduler
	FMALatency int // FP FMA result latency, cycles
	LoadLatL1  int // L1-hit load-to-use latency, cycles

	// Memory system beyond the caches.
	DRAMLatencyCy   int     // cycles for a DRAM access from one core
	DRAMBandwidthGB float64 // sustainable chip-wide DRAM bandwidth, GB/s

	// Parallel runtime cost: cycles for a fork-join of T threads is
	// ForkJoinBaseCy + ForkJoinPerThreadCy*T.
	ForkJoinBaseCy      int
	ForkJoinPerThreadCy int

	// SIMDBits is the SIMD register width in bits; zero means the 128-bit
	// NEON of the paper's evaluation platforms. SVE platforms (§5.5) set
	// 256–2048.
	SIMDBits int

	// StragglerFrac models parallel-region friction (NUMA placement,
	// shared-cache contention, barrier stragglers): the critical-path
	// thread runs (1 + StragglerFrac·log2(T)) slower than the mean. The
	// values are calibrated against the paper's Fig 11 scalability curves
	// (49×/82×/35× maximum speedups): Phytium's cluster-shared L2 and
	// ThunderX2's ring-interconnect contention cost far more than
	// Kunpeng 920's flat mesh.
	StragglerFrac float64
}

// VectorBits is the SIMD register width of the modeled ARMv8 NEON cores.
// SVE platforms (§5.5) override it per Platform via SIMDBits.
const VectorBits = 128

// VectorLanes returns the number of elements of elemBytes each held in one
// 128-bit vector register (the paper's j: 4 for FP32, 2 for FP64).
func VectorLanes(elemBytes int) int { return VectorBits / 8 / elemBytes }

// Lanes returns the platform's vector lane count for an element size,
// honoring SIMDBits for SVE platforms.
func (p *Platform) Lanes(elemBytes int) int {
	bits := p.SIMDBits
	if bits == 0 {
		bits = VectorBits
	}
	return bits / 8 / elemBytes
}

// PeakGFLOPS returns the theoretical chip peak in GFLOPS for the element
// size: cores × freq × FMApipes × lanes × 2 (multiply + add).
func (p *Platform) PeakGFLOPS(elemBytes int) float64 {
	return float64(p.Cores) * p.FreqGHz * float64(p.FMAPipes) * float64(p.Lanes(elemBytes)) * 2
}

// PeakCoreGFLOPS is the single-core peak in GFLOPS.
func (p *Platform) PeakCoreGFLOPS(elemBytes int) float64 {
	return p.PeakGFLOPS(elemBytes) / float64(p.Cores)
}

// FlopsPerCycleCore is the per-core FLOP/cycle peak for the element size.
func (p *Platform) FlopsPerCycleCore(elemBytes int) float64 {
	return float64(p.FMAPipes) * float64(VectorLanes(elemBytes)) * 2
}

// LLC returns the configuration of the last-level data cache: L3 when
// present, otherwise L2 (Phytium 2000+ has no L3; see Table 1).
func (p *Platform) LLC() CacheConfig {
	if p.L3.SizeBytes > 0 {
		return p.L3
	}
	return p.L2
}

// String implements fmt.Stringer.
func (p *Platform) String() string {
	return fmt.Sprintf("%s (%d cores @ %.1f GHz)", p.Name, p.Cores, p.FreqGHz)
}

// Phytium2000 models the Phytium 2000+ (FTC662 cores). Its L2 is shared by
// clusters of four cores and it has no L3 (Table 1 and §7.1). One FMA pipe
// per core: 64 cores × 2.2 GHz × 1 pipe × 4 lanes × 2 = 1126.4 GFLOPS FP32,
// matching Table 1.
func Phytium2000() *Platform {
	return &Platform{
		Name:      "Phytium 2000+",
		Cores:     64,
		FreqGHz:   2.2,
		L1:        CacheConfig{SizeBytes: 32 << 10, LineBytes: 64, Ways: 4, LatencyCy: 4, SharedBy: 1},
		L2:        CacheConfig{SizeBytes: 2 << 20, LineBytes: 64, Ways: 16, LatencyCy: 25, Shared: true, SharedBy: 4},
		L3:        CacheConfig{},
		RAMBytes:  64 << 30,
		TLBEntrs:  64,
		PageBytes: 4 << 10,

		IssueWidth: 4,
		FMAPipes:   1,
		LoadPipes:  2,
		StorePipes: 1,
		OoOWindow:  16,
		FMALatency: 7,
		LoadLatL1:  4,

		DRAMLatencyCy:   180,
		DRAMBandwidthGB: 80,

		ForkJoinBaseCy:      9000,
		ForkJoinPerThreadCy: 260,
		StragglerFrac:       0.068,
	}
}

// KP920 models the Kunpeng 920 (TaiShan v110 cores): private 512 KiB L2,
// large shared L3. Two FMA pipes: 64 × 2.6 × 2 × 4 × 2 = 2662.4 GFLOPS FP32,
// matching Table 1.
func KP920() *Platform {
	return &Platform{
		Name:      "Kunpeng 920",
		Cores:     64,
		FreqGHz:   2.6,
		L1:        CacheConfig{SizeBytes: 64 << 10, LineBytes: 64, Ways: 4, LatencyCy: 4, SharedBy: 1},
		L2:        CacheConfig{SizeBytes: 512 << 10, LineBytes: 64, Ways: 8, LatencyCy: 14, SharedBy: 1},
		L3:        CacheConfig{SizeBytes: 64 << 20, LineBytes: 64, Ways: 16, LatencyCy: 45, Shared: true, SharedBy: 64},
		RAMBytes:  64 << 30,
		TLBEntrs:  64,
		PageBytes: 4 << 10,

		IssueWidth: 4,
		FMAPipes:   2,
		LoadPipes:  2,
		StorePipes: 1,
		OoOWindow:  24,
		FMALatency: 4,
		LoadLatL1:  4,

		DRAMLatencyCy:   200,
		DRAMBandwidthGB: 170,

		ForkJoinBaseCy:      8000,
		ForkJoinPerThreadCy: 220,
		StragglerFrac:       0.004,
	}
}

// ThunderX2 models the Marvell ThunderX2 (Vulcan cores): private 256 KiB L2,
// 32 MiB shared L3. Two FMA pipes: 32 × 2.5 × 2 × 4 × 2 = 1280 GFLOPS FP32,
// matching Table 1.
func ThunderX2() *Platform {
	return &Platform{
		Name:      "ThunderX2",
		Cores:     32,
		FreqGHz:   2.5,
		L1:        CacheConfig{SizeBytes: 32 << 10, LineBytes: 64, Ways: 8, LatencyCy: 4, SharedBy: 1},
		L2:        CacheConfig{SizeBytes: 256 << 10, LineBytes: 64, Ways: 8, LatencyCy: 12, SharedBy: 1},
		L3:        CacheConfig{SizeBytes: 32 << 20, LineBytes: 64, Ways: 16, LatencyCy: 40, Shared: true, SharedBy: 32},
		RAMBytes:  64 << 30,
		TLBEntrs:  64,
		PageBytes: 4 << 10,

		IssueWidth: 4,
		FMAPipes:   2,
		LoadPipes:  2,
		StorePipes: 1,
		OoOWindow:  28,
		FMALatency: 6,
		LoadLatL1:  4,

		DRAMLatencyCy:   190,
		DRAMBandwidthGB: 120,

		ForkJoinBaseCy:      8500,
		ForkJoinPerThreadCy: 240,
		StragglerFrac:       0.115,
	}
}

// A64FX models the Fujitsu A64FX, the SVE-512 many-core the paper's §5.5
// names as a porting target: 48 compute cores at 2.2 GHz with two 512-bit
// FMA pipes (48 × 2.2 × 2 × 16 × 2 ≈ 6.76 FP32 TFLOPS), 64 KiB L1, a
// 8 MiB L2 shared per 12-core CMG, no L3, and HBM2 at ~1 TB/s. It is not
// part of the paper's evaluation; this reproduction uses it to demonstrate
// the vector-length generalization of the analytic models.
func A64FX() *Platform {
	return &Platform{
		Name:      "A64FX",
		Cores:     48,
		FreqGHz:   2.2,
		SIMDBits:  512,
		L1:        CacheConfig{SizeBytes: 64 << 10, LineBytes: 256, Ways: 4, LatencyCy: 5, SharedBy: 1},
		L2:        CacheConfig{SizeBytes: 8 << 20, LineBytes: 256, Ways: 16, LatencyCy: 37, Shared: true, SharedBy: 12},
		L3:        CacheConfig{},
		RAMBytes:  32 << 30,
		TLBEntrs:  64,
		PageBytes: 64 << 10,

		IssueWidth: 4,
		FMAPipes:   2,
		LoadPipes:  2,
		StorePipes: 1,
		OoOWindow:  32,
		FMALatency: 9,
		LoadLatL1:  5,

		DRAMLatencyCy:   260,
		DRAMBandwidthGB: 1000,

		ForkJoinBaseCy:      9000,
		ForkJoinPerThreadCy: 250,
		StragglerFrac:       0.05,
	}
}

// All returns the three evaluation platforms in the paper's order.
func All() []*Platform {
	return []*Platform{Phytium2000(), KP920(), ThunderX2()}
}

// ByName returns the platform whose name contains the given substring
// (case-sensitive), or nil when none matches.
func ByName(name string) *Platform {
	for _, p := range All() {
		if p.Name == name {
			return p
		}
	}
	switch name {
	case "phytium", "ft2000", "phytium2000":
		return Phytium2000()
	case "kp920", "kunpeng", "kunpeng920":
		return KP920()
	case "thunderx2", "tx2":
		return ThunderX2()
	}
	return nil
}
