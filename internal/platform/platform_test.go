package platform

import (
	"math"
	"testing"
)

// TestTable1Peaks pins the derived FP32 peaks to the values published in
// Table 1 of the paper.
func TestTable1Peaks(t *testing.T) {
	cases := []struct {
		p    *Platform
		peak float64
	}{
		{Phytium2000(), 1126.4},
		{KP920(), 2662.4},
		{ThunderX2(), 1280.0},
	}
	for _, c := range cases {
		if got := c.p.PeakGFLOPS(4); math.Abs(got-c.peak) > 1e-9 {
			t.Errorf("%s FP32 peak = %v, want %v", c.p.Name, got, c.peak)
		}
		// FP64 peak is exactly half the FP32 peak (half the lanes).
		if got := c.p.PeakGFLOPS(8); math.Abs(got-c.peak/2) > 1e-9 {
			t.Errorf("%s FP64 peak = %v, want %v", c.p.Name, got, c.peak/2)
		}
	}
}

func TestTable1CacheSizes(t *testing.T) {
	ph, kp, tx := Phytium2000(), KP920(), ThunderX2()
	if ph.L1.SizeBytes != 32<<10 || kp.L1.SizeBytes != 64<<10 || tx.L1.SizeBytes != 32<<10 {
		t.Fatal("L1 sizes disagree with Table 1")
	}
	if ph.L2.SizeBytes != 2<<20 || kp.L2.SizeBytes != 512<<10 || tx.L2.SizeBytes != 256<<10 {
		t.Fatal("L2 sizes disagree with Table 1")
	}
	if ph.L3.SizeBytes != 0 || kp.L3.SizeBytes != 64<<20 || tx.L3.SizeBytes != 32<<20 {
		t.Fatal("L3 sizes disagree with Table 1")
	}
	if ph.Cores != 64 || kp.Cores != 64 || tx.Cores != 32 {
		t.Fatal("core counts disagree with Table 1")
	}
	if ph.FreqGHz != 2.2 || kp.FreqGHz != 2.6 || tx.FreqGHz != 2.5 {
		t.Fatal("frequencies disagree with Table 1")
	}
}

func TestPhytiumSharedL2NoL3(t *testing.T) {
	ph := Phytium2000()
	if !ph.L2.Shared || ph.L2.SharedBy != 4 {
		t.Fatal("Phytium L2 must be shared by clusters of four cores (§7.1)")
	}
	if ph.LLC().SizeBytes != ph.L2.SizeBytes {
		t.Fatal("Phytium LLC must be the L2 (no L3)")
	}
	if KP920().LLC().SizeBytes != 64<<20 {
		t.Fatal("KP920 LLC must be the 64MB L3")
	}
}

func TestVectorLanes(t *testing.T) {
	if VectorLanes(4) != 4 || VectorLanes(8) != 2 {
		t.Fatal("128-bit NEON lane counts wrong")
	}
}

func TestSets(t *testing.T) {
	c := CacheConfig{SizeBytes: 32 << 10, LineBytes: 64, Ways: 4}
	if c.Sets() != 128 {
		t.Fatalf("Sets = %d, want 128", c.Sets())
	}
	if (CacheConfig{}).Sets() != 0 {
		t.Fatal("empty cache must have zero sets")
	}
}

func TestPerCorePeaks(t *testing.T) {
	// Per-core FP32 peaks used when normalizing figures: 17.6, 41.6, 40.
	want := map[string]float64{"Phytium 2000+": 17.6, "Kunpeng 920": 41.6, "ThunderX2": 40}
	for _, p := range All() {
		if got := p.PeakCoreGFLOPS(4); math.Abs(got-want[p.Name]) > 1e-9 {
			t.Errorf("%s per-core peak = %v, want %v", p.Name, got, want[p.Name])
		}
	}
}

func TestFlopsPerCycle(t *testing.T) {
	if Phytium2000().FlopsPerCycleCore(4) != 8 {
		t.Fatal("Phytium FP32 flops/cycle/core must be 8")
	}
	if KP920().FlopsPerCycleCore(4) != 16 || ThunderX2().FlopsPerCycleCore(4) != 16 {
		t.Fatal("KP920/TX2 FP32 flops/cycle/core must be 16")
	}
}

func TestByName(t *testing.T) {
	if ByName("kp920") == nil || ByName("phytium") == nil || ByName("tx2") == nil {
		t.Fatal("aliases not resolved")
	}
	if ByName("Kunpeng 920") == nil {
		t.Fatal("exact name not resolved")
	}
	if ByName("nonexistent") != nil {
		t.Fatal("unknown name should return nil")
	}
}

func TestAllOrder(t *testing.T) {
	all := All()
	if len(all) != 3 || all[0].Name != "Phytium 2000+" || all[1].Name != "Kunpeng 920" || all[2].Name != "ThunderX2" {
		t.Fatal("All() must return the paper's platform order")
	}
}

func TestStringer(t *testing.T) {
	if s := KP920().String(); s != "Kunpeng 920 (64 cores @ 2.6 GHz)" {
		t.Fatalf("String() = %q", s)
	}
}
