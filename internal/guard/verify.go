package guard

import (
	"fmt"

	"libshalom/internal/isacheck"
	"libshalom/internal/platform"
)

// VerifyContracts runs the full static isacheck verification for every
// registered libshalom kernel on plat and demotes the runtime path of any
// kernel that fails its declared contract — the registration-time leg of
// the fallback chain. The check runs once per platform per process (the
// catalogue is fixed after init); Reset clears the memo.
//
// The caller is expected to have the kernel catalogue registered, which any
// binary importing internal/kernels has.
func VerifyContracts(plat *platform.Platform) {
	mu.Lock()
	done := verified[plat.Name]
	verified[plat.Name] = true
	mu.Unlock()
	if done {
		return
	}
	for _, e := range isacheck.Registered() {
		if e.Family != "libshalom" {
			continue
		}
		kr := isacheck.Run(e, plat)
		if kr.OK {
			continue
		}
		detail := fmt.Sprintf("%s failed static verification", e.Name)
		if fs := kr.Findings(); len(fs) > 0 {
			detail = fmt.Sprintf("%s: [%s] %s", e.Name, fs[0].Pass, fs[0].Msg)
		}
		Demote(plat.Name, PathFor(e.Contract.Elem), ReasonContract, detail)
	}
}
