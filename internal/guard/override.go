// Tuned dispatch overrides: the autotuner's hot-swap mechanism. A promoted
// candidate is not a new code path — the portable micro-kernels accept any
// (mr, nr, kc) — so an override is just a tile the driver substitutes for
// the analytic solution on one (element size, shape class) key, behind its
// own circuit breaker. The override table is an immutable value swapped
// through an atomic pointer, so the per-call lookup on the GEMM hot path is
// one atomic load and two array indexes: no lock, no allocation, no map.
//
// Every override carries its own breaker path (distinct from the kernel
// family's PathF32/PathF64), minted per installation, so a misbehaving
// candidate trips and reverts alone: the family path — and with it every
// other class — keeps serving on the fast path. A trip on a tuned path
// atomically removes the override, restoring the incumbent tile, and the
// recorded Degradation names the tuned kernel identity and tile so the
// demotion history says exactly which candidate was evicted and why.
package guard

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// TileOverride is one tuned dispatch override: the register tile and panel
// depth to substitute for the analytic solution on its (element, class) key.
type TileOverride struct {
	// MR, NR are the register tile; KC overrides the analytic panel depth
	// when positive (zero keeps the platform blocking solution's KC).
	MR, NR, KC int
	// Kernel is the tuned kernel identity (e.g. "tuned-5x16-kc8-pipelined"),
	// recorded in the demotion history when the candidate is evicted.
	Kernel string
	// Path is the override's private breaker path, minted at install time
	// (e.g. "gemm-f32/tuned/small#3") so the hot path never formats strings
	// and a re-tried class gets a fresh breaker with no inherited backoff.
	Path string
}

// overrideElems and overrideClasses bound the override table: element index
// 0 is FP32, 1 is FP64; class indexes mirror telemetry.ShapeClass (6 classes
// today, capacity 8 so a new class is not a resize).
const (
	overrideElems   = 2
	overrideClasses = 8
)

// overrideTable is the immutable value behind the atomic pointer.
type overrideTable struct {
	present [overrideElems][overrideClasses]bool
	ov      [overrideElems][overrideClasses]TileOverride
}

var (
	// ovMu serializes writers (install/clear/trip-evict); readers never
	// take it.
	ovMu      sync.Mutex
	overrides atomic.Pointer[overrideTable]
	// overrideGen mints unique breaker paths across installations.
	overrideGen atomic.Uint64
)

// elemIndex maps an element size in bytes to its table row, or -1.
func elemIndex(elemBytes int) int {
	switch elemBytes {
	case 4:
		return 0
	case 8:
		return 1
	}
	return -1
}

// OverrideFor returns the tuned dispatch override for an (element size,
// shape class) key, if one is installed. This is the hot-path lookup: one
// atomic load and two array indexes.
//
//shalom:hotpath noalloc,nolock,noblock
func OverrideFor(elemBytes int, class uint8) (TileOverride, bool) {
	t := overrides.Load()
	if t == nil {
		return TileOverride{}, false
	}
	e := elemIndex(elemBytes)
	if e < 0 || int(class) >= overrideClasses || !t.present[e][class] {
		return TileOverride{}, false
	}
	return t.ov[e][class], true
}

// MintOverridePath builds a fresh breaker path for a tuned candidate on an
// (element size, shape class) key. Each call returns a new path, so every
// installation probes a clean breaker with no inherited trip backoff.
func MintOverridePath(elemBytes int, class string) string {
	return fmt.Sprintf("%s/tuned/%s#%d", PathFor(elemBytes), class, overrideGen.Add(1))
}

// SetOverride installs (or replaces) the tuned override for an (element
// size, shape class) key. The override's Path must be non-empty — it is the
// breaker identity trips revert through. Returns false for an out-of-range
// key.
func SetOverride(elemBytes int, class uint8, ov TileOverride) bool {
	e := elemIndex(elemBytes)
	if e < 0 || int(class) >= overrideClasses || ov.Path == "" {
		return false
	}
	ovMu.Lock()
	defer ovMu.Unlock()
	next := cloneOverrides()
	next.present[e][class] = true
	next.ov[e][class] = ov
	overrides.Store(next)
	return true
}

// ClearOverride removes the override for an (element size, shape class)
// key, returning the evicted override when one was installed.
func ClearOverride(elemBytes int, class uint8) (TileOverride, bool) {
	e := elemIndex(elemBytes)
	if e < 0 || int(class) >= overrideClasses {
		return TileOverride{}, false
	}
	ovMu.Lock()
	defer ovMu.Unlock()
	t := overrides.Load()
	if t == nil || !t.present[e][class] {
		return TileOverride{}, false
	}
	old := t.ov[e][class]
	next := cloneOverrides()
	next.present[e][class] = false
	next.ov[e][class] = TileOverride{}
	overrides.Store(next)
	return old, true
}

// Overrides returns the installed overrides (a snapshot copy).
func Overrides() []TileOverride {
	t := overrides.Load()
	if t == nil {
		return nil
	}
	var out []TileOverride
	for e := 0; e < overrideElems; e++ {
		for c := 0; c < overrideClasses; c++ {
			if t.present[e][c] {
				out = append(out, t.ov[e][c])
			}
		}
	}
	return out
}

// ResetOverrides clears the whole override table (tests and operator reset).
func ResetOverrides() {
	ovMu.Lock()
	overrides.Store(nil)
	ovMu.Unlock()
}

// cloneOverrides copies the current table for a copy-on-write update.
// Callers hold ovMu.
func cloneOverrides() *overrideTable {
	next := &overrideTable{}
	if t := overrides.Load(); t != nil {
		*next = *t
	}
	return next
}

// takeOverrideByPath removes and returns the override whose breaker path is
// path. Called by Trip before recording, so a tripped candidate stops
// serving the moment the breaker opens and the Degradation can carry the
// tuned kernel identity. The table holds at most 16 entries; the scan is
// cheaper than a parallel index.
func takeOverrideByPath(path string) (TileOverride, bool) {
	ovMu.Lock()
	defer ovMu.Unlock()
	t := overrides.Load()
	if t == nil {
		return TileOverride{}, false
	}
	for e := 0; e < overrideElems; e++ {
		for c := 0; c < overrideClasses; c++ {
			if t.present[e][c] && t.ov[e][c].Path == path {
				old := t.ov[e][c]
				next := cloneOverrides()
				next.present[e][c] = false
				next.ov[e][c] = TileOverride{}
				overrides.Store(next)
				return old, true
			}
		}
	}
	return TileOverride{}, false
}

// BeginProbation creates (or re-arms) the breaker for a (platform, kernel)
// pair directly in the probing state without recording a trip: the canary
// gate for a freshly installed tuned candidate, which must prove itself on
// live shadowed traffic before the breaker closes. Returns false when the
// pair is pinned open by a contract demotion (static failures need a code
// change, not a probation).
func BeginProbation(platform, kernel string) bool {
	mu.Lock()
	k := key(platform, kernel)
	br := breakers[k]
	if br == nil {
		br = &breaker{d: Degradation{Platform: platform, Kernel: kernel}}
		breakers[k] = br
	}
	if br.d.State == StateOpen && br.noProbe {
		mu.Unlock()
		return false
	}
	br.d.State = StateProbing
	br.agree, br.probeTick = 0, 0
	mu.Unlock()
	return true
}

// Forget drops the breaker record for a (platform, kernel) pair. Only the
// autotuner uses it, to retire the private breaker of an evicted or
// superseded candidate — generation-counted paths are never reused, so the
// record (and its backoff state) has no future. The trip history is
// untouched.
func Forget(platform, kernel string) {
	mu.Lock()
	delete(breakers, key(platform, kernel))
	mu.Unlock()
}
