package guard

import (
	"strings"
	"testing"

	"libshalom/internal/isa"
	"libshalom/internal/isacheck"
	"libshalom/internal/kernels"
	"libshalom/internal/platform"
)

func TestPathFor(t *testing.T) {
	if PathFor(4) != PathF32 || PathFor(8) != PathF64 {
		t.Fatalf("PathFor: %q / %q", PathFor(4), PathFor(8))
	}
}

func TestDemoteRegistry(t *testing.T) {
	Reset()
	defer Reset()
	if IsDemoted("KP920", PathF32) {
		t.Fatal("fresh registry reports a demotion")
	}
	Demote("KP920", PathF32, ReasonNumeric, "NaN out of finite inputs")
	Demote("Phytium 2000+", PathF64, ReasonPanic, "index out of range")
	if !IsDemoted("KP920", PathF32) || IsDemoted("KP920", PathF64) {
		t.Fatal("demotion keyed wrong")
	}
	d, ok := Demotion("KP920", PathF32)
	if !ok || d.Reason != ReasonNumeric {
		t.Fatalf("Demotion = %+v, %v", d, ok)
	}
	// First demotion wins: a later symptom must not mask the root cause.
	Demote("KP920", PathF32, ReasonPanic, "later symptom")
	if d, _ := Demotion("KP920", PathF32); d.Reason != ReasonNumeric {
		t.Fatalf("second Demote overwrote the root cause: %+v", d)
	}
	all := List("")
	if len(all) != 2 {
		t.Fatalf("List(\"\") = %d entries, want 2", len(all))
	}
	if all[0].Platform > all[1].Platform {
		t.Fatal("List not sorted")
	}
	one := List("KP920")
	if len(one) != 1 || one[0].Kernel != PathF32 {
		t.Fatalf("List(KP920) = %+v", one)
	}
	Reset()
	if len(List("")) != 0 {
		t.Fatal("Reset left demotions behind")
	}
}

func TestKernelPanicErrorMessage(t *testing.T) {
	e := &KernelPanicError{
		Platform: "KP920", Mode: "NT", Kernel: PathF32,
		I0: 14, J0: 24, M: 7, N: 12, Entry: -1,
		Value: "index out of range",
	}
	msg := e.Error()
	for _, want := range []string{"KP920", "NT", PathF32, "(14,24)", "7x12", "index out of range"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("error %q missing %q", msg, want)
		}
	}
	e.Entry = 3
	if !strings.Contains(e.Error(), "batch entry 3") {
		t.Fatalf("batch entry index missing from %q", e.Error())
	}
}

// A kernel whose emitted program does not match its declared contract must
// demote its runtime path at verification. The broken entry claims a
// non-accumulating main kernel but builds the accumulating one, which the
// footprint pass catches.
func TestVerifyContractsDemotesBrokenKernel(t *testing.T) {
	isacheck.Register(isacheck.Entry{
		Name:   "libshalom/zz-broken-main-7x12-f32",
		Family: "libshalom",
		Contract: isacheck.Contract{
			Kind: isacheck.KindMain, Elem: 4,
			MR: 7, NR: 12, KC: 8,
			LDA: 8, LDB: 12, LDC: 12,
			Accumulate: false,
		},
		Build: func() *isa.Program {
			return kernels.BuildMain(kernels.MainSpec{Elem: 4, MR: 7, NR: 12, KC: 8,
				LDA: 8, LDB: 12, LDC: 12, Accumulate: true, Schedule: kernels.Pipelined})
		},
	})
	Reset()
	defer Reset()
	plat := platform.Phytium2000()
	VerifyContracts(plat)
	d, ok := Demotion(plat.Name, PathF32)
	if !ok {
		t.Fatal("contract-violating kernel did not demote its path")
	}
	if d.Reason != ReasonContract {
		t.Fatalf("reason = %s, want %s", d.Reason, ReasonContract)
	}
	if !strings.Contains(d.Detail, "zz-broken") {
		t.Fatalf("detail %q does not name the failing kernel", d.Detail)
	}
	// Memoised: a second call is a no-op (would re-demote if it re-ran,
	// which the first-wins rule hides; instead check the memo directly by
	// verifying a clean reset re-verifies).
	VerifyContracts(plat)
	if got := List(plat.Name); len(got) != 1 {
		t.Fatalf("re-verification changed the registry: %+v", got)
	}
}
