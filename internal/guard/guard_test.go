package guard

import (
	"strings"
	"sync"
	"testing"
	"time"

	"libshalom/internal/isa"
	"libshalom/internal/isacheck"
	"libshalom/internal/kernels"
	"libshalom/internal/platform"
)

func TestPathFor(t *testing.T) {
	if PathFor(4) != PathF32 || PathFor(8) != PathF64 {
		t.Fatalf("PathFor: %q / %q", PathFor(4), PathFor(8))
	}
}

func TestDemoteRegistry(t *testing.T) {
	Reset()
	defer Reset()
	if IsDemoted("KP920", PathF32) {
		t.Fatal("fresh registry reports a demotion")
	}
	Demote("KP920", PathF32, ReasonNumeric, "NaN out of finite inputs")
	Demote("Phytium 2000+", PathF64, ReasonPanic, "index out of range")
	if !IsDemoted("KP920", PathF32) || IsDemoted("KP920", PathF64) {
		t.Fatal("demotion keyed wrong")
	}
	d, ok := Demotion("KP920", PathF32)
	if !ok || d.Reason != ReasonNumeric {
		t.Fatalf("Demotion = %+v, %v", d, ok)
	}
	// First demotion wins: a later symptom must not mask the root cause.
	Demote("KP920", PathF32, ReasonPanic, "later symptom")
	if d, _ := Demotion("KP920", PathF32); d.Reason != ReasonNumeric {
		t.Fatalf("second Demote overwrote the root cause: %+v", d)
	}
	all := List("")
	if len(all) != 2 {
		t.Fatalf("List(\"\") = %d entries, want 2", len(all))
	}
	if all[0].Platform > all[1].Platform {
		t.Fatal("List not sorted")
	}
	one := List("KP920")
	if len(one) != 1 || one[0].Kernel != PathF32 {
		t.Fatalf("List(KP920) = %+v", one)
	}
	Reset()
	if len(List("")) != 0 {
		t.Fatal("Reset left demotions behind")
	}
}

func TestKernelPanicErrorMessage(t *testing.T) {
	e := &KernelPanicError{
		Platform: "KP920", Mode: "NT", Kernel: PathF32,
		I0: 14, J0: 24, M: 7, N: 12, Entry: -1,
		Value: "index out of range",
	}
	msg := e.Error()
	for _, want := range []string{"KP920", "NT", PathF32, "(14,24)", "7x12", "index out of range"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("error %q missing %q", msg, want)
		}
	}
	e.Entry = 3
	if !strings.Contains(e.Error(), "batch entry 3") {
		t.Fatalf("batch entry index missing from %q", e.Error())
	}
}

// A kernel whose emitted program does not match its declared contract must
// demote its runtime path at verification. The broken entry claims a
// non-accumulating main kernel but builds the accumulating one, which the
// footprint pass catches.
func TestVerifyContractsDemotesBrokenKernel(t *testing.T) {
	isacheck.Register(isacheck.Entry{
		Name:   "libshalom/zz-broken-main-7x12-f32",
		Family: "libshalom",
		Contract: isacheck.Contract{
			Kind: isacheck.KindMain, Elem: 4,
			MR: 7, NR: 12, KC: 8,
			LDA: 8, LDB: 12, LDC: 12,
			Accumulate: false,
		},
		Build: func() *isa.Program {
			return kernels.BuildMain(kernels.MainSpec{Elem: 4, MR: 7, NR: 12, KC: 8,
				LDA: 8, LDB: 12, LDC: 12, Accumulate: true, Schedule: kernels.Pipelined})
		},
	})
	Reset()
	defer Reset()
	plat := platform.Phytium2000()
	VerifyContracts(plat)
	d, ok := Demotion(plat.Name, PathF32)
	if !ok {
		t.Fatal("contract-violating kernel did not demote its path")
	}
	if d.Reason != ReasonContract {
		t.Fatalf("reason = %s, want %s", d.Reason, ReasonContract)
	}
	if !strings.Contains(d.Detail, "zz-broken") {
		t.Fatalf("detail %q does not name the failing kernel", d.Detail)
	}
	// Memoised: a second call is a no-op (would re-demote if it re-ran,
	// which the first-wins rule hides; instead check the memo directly by
	// verifying a clean reset re-verifies).
	VerifyContracts(plat)
	if got := List(plat.Name); len(got) != 1 {
		t.Fatalf("re-verification changed the registry: %+v", got)
	}
}

// The breaker lifecycle: a trip opens the pair and routes to the reference
// path; the cooldown expiry moves it to probing (reported exactly once);
// canary sampling honours the stride; enough consecutive agreements close
// it; and the healed record survives with its trip count.
func TestBreakerLifecycle(t *testing.T) {
	Reset()
	defer Reset()
	const plat, kern = "test-plat", PathF32
	if d, began := Dispatch(plat, kern, 2); d != DispatchFast || began {
		t.Fatalf("healthy dispatch = %v, %v", d, began)
	}
	if !Trip(plat, kern, ReasonPanic, "boom", "NN 8x8x8", time.Millisecond) {
		t.Fatal("first Trip not recorded")
	}
	if StateOf(plat, kern) != StateOpen || !IsDemoted(plat, kern) {
		t.Fatalf("state after trip = %v", StateOf(plat, kern))
	}
	// A second trip while open is a no-op keeping the root cause.
	if Trip(plat, kern, ReasonNumeric, "later symptom", "", time.Millisecond) {
		t.Fatal("Trip while open recorded a second trip")
	}
	if d, _ := Demotion(plat, kern); d.Reason != ReasonPanic || d.Trips != 1 {
		t.Fatalf("open record = %+v", d)
	}
	if _, ok := CooldownUntil(plat, kern); !ok {
		t.Fatal("open breaker reports no cooldown")
	}
	time.Sleep(3 * time.Millisecond)
	d, began := Dispatch(plat, kern, 2)
	if d != DispatchCanary || !began {
		t.Fatalf("post-cooldown dispatch = %v, beganProbe=%v; want canary, true", d, began)
	}
	if StateOf(plat, kern) != StateProbing {
		t.Fatalf("state = %v, want probing", StateOf(plat, kern))
	}
	// Stride 2: the transition call was tick 0 (canary); tick 1 is ref,
	// tick 2 canary again — and beganProbe never repeats.
	if d, began := Dispatch(plat, kern, 2); d != DispatchRef || began {
		t.Fatalf("probing tick 1 = %v, %v; want ref, false", d, began)
	}
	if d, began := Dispatch(plat, kern, 2); d != DispatchCanary || began {
		t.Fatalf("probing tick 2 = %v, %v; want canary, false", d, began)
	}
	// Close after 3 consecutive agreements.
	for i := 0; i < 2; i++ {
		if CanaryAgree(plat, kern, 3) {
			t.Fatalf("breaker closed after %d agreements, target 3", i+1)
		}
	}
	if !CanaryAgree(plat, kern, 3) {
		t.Fatal("breaker did not close at the agreement target")
	}
	if StateOf(plat, kern) != StateHealthy || IsDemoted(plat, kern) {
		t.Fatalf("healed state = %v", StateOf(plat, kern))
	}
	if d, began := Dispatch(plat, kern, 2); d != DispatchFast || began {
		t.Fatalf("healed dispatch = %v, %v", d, began)
	}
	// Healed pairs leave List but stay in Breakers with their trip count.
	if len(List("")) != 0 {
		t.Fatalf("healed pair still listed: %+v", List(""))
	}
	all := Breakers()
	if len(all) != 1 || all[0].Trips != 1 || all[0].State != StateHealthy {
		t.Fatalf("Breakers() = %+v", all)
	}
	if len(History()) != 1 {
		t.Fatalf("history = %+v, want the one trip", History())
	}
}

// Re-trips double the effective cooldown (exponential backoff, capped).
func TestTripBackoffDoubles(t *testing.T) {
	Reset()
	defer Reset()
	const plat, kern = "test-plat", PathF64
	base := 100 * time.Millisecond
	Trip(plat, kern, ReasonPanic, "first", "", base)
	u1, _ := CooldownUntil(plat, kern)
	d1 := time.Until(u1)
	// Probe, mismatch, re-trip: force the state machine through probing.
	mustProbe(t, plat, kern)
	if !Trip(plat, kern, ReasonCanary, "mismatch", "", base) {
		t.Fatal("re-trip from probing not recorded")
	}
	u2, _ := CooldownUntil(plat, kern)
	d2 := time.Until(u2)
	if d2 < d1+base/2 {
		t.Fatalf("second cooldown %v not ~doubled from %v", d2, d1)
	}
	if d, _ := Demotion(plat, kern); d.Trips != 2 {
		t.Fatalf("trips = %d, want 2", d.Trips)
	}
	// The cap: trips beyond maxBackoffShift+1 stop growing the window.
	for i := 0; i < 10; i++ {
		mustProbe(t, plat, kern)
		Trip(plat, kern, ReasonCanary, "again", "", base)
	}
	uN, _ := CooldownUntil(plat, kern)
	if time.Until(uN) > base<<maxBackoffShift+base {
		t.Fatalf("cooldown %v exceeds the backoff cap", time.Until(uN))
	}
}

// mustProbe forces an open test breaker into the probing state by expiring
// its cooldown directly (test-only manipulation under the registry lock).
func mustProbe(t *testing.T, plat, kern string) {
	t.Helper()
	mu.Lock()
	br := breakers[key(plat, kern)]
	if br == nil || br.d.State != StateOpen {
		mu.Unlock()
		t.Fatalf("breaker not open: %+v", br)
	}
	br.cooldownUntil = time.Now().Add(-time.Millisecond)
	mu.Unlock()
	if d, _ := Dispatch(plat, kern, 1); d != DispatchCanary {
		t.Fatalf("expired breaker dispatched %v, want canary", d)
	}
}

// Contract demotions never auto-probe: only an operator Reset re-arms them.
func TestContractTripNeverProbes(t *testing.T) {
	Reset()
	defer Reset()
	const plat, kern = "test-plat", PathF32
	Trip(plat, kern, ReasonContract, "bad kernel", "", time.Nanosecond)
	time.Sleep(2 * time.Millisecond)
	for i := 0; i < 3; i++ {
		if d, began := Dispatch(plat, kern, 1); d != DispatchRef || began {
			t.Fatalf("contract breaker dispatched %v, beganProbe=%v", d, began)
		}
	}
	if _, ok := CooldownUntil(plat, kern); ok {
		t.Fatal("contract breaker reports a cooldown")
	}
}

// Seq is monotonic for the process lifetime: Reset clears the registry but
// never the counter, so post-reset trips continue the global ordering.
func TestSeqMonotonicAcrossReset(t *testing.T) {
	Reset()
	Trip("seq-plat", PathF32, ReasonPanic, "one", "", time.Second)
	d1, _ := Demotion("seq-plat", PathF32)
	Reset()
	if len(List("")) != 0 || len(History()) != 0 {
		t.Fatal("Reset left records behind")
	}
	Trip("seq-plat", PathF32, ReasonPanic, "two", "", time.Second)
	d2, _ := Demotion("seq-plat", PathF32)
	Reset()
	if d2.Seq <= d1.Seq {
		t.Fatalf("seq went %d -> %d across Reset; must stay monotonic", d1.Seq, d2.Seq)
	}
}

// The registry under concurrency: trips, dispatches, canary verdicts, reads
// and resets from many goroutines must stay race-free (run under -race via
// make race) and never deadlock. Probing->healthy and probing->open both
// race hot-path dispatch here.
func TestBreakerConcurrentAccess(t *testing.T) {
	Reset()
	defer Reset()
	plats := []string{"c-p0", "c-p1", "c-p2"}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	time.AfterFunc(100*time.Millisecond, func() { close(stop) })
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				p := plats[(g+i)%len(plats)]
				switch i % 7 {
				case 0:
					Trip(p, PathF32, ReasonPanic, "race", "NN 4x4x4", time.Microsecond)
				case 1:
					Dispatch(p, PathF32, 2)
				case 2:
					CanaryAgree(p, PathF32, 2)
				case 3:
					IsDemoted(p, PathF32)
				case 4:
					List("")
					Breakers()
				case 5:
					StateOf(p, PathF32)
					History()
				case 6:
					if i%97 == 0 {
						Reset()
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestStuckWorkerErrorMessage(t *testing.T) {
	e := &StuckWorkerError{Task: 3, Budget: 20 * time.Millisecond, Elapsed: 45 * time.Millisecond}
	msg := e.Error()
	for _, want := range []string{"task 3", "45ms", "20ms"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("error %q missing %q", msg, want)
		}
	}
	if !e.Timeout() {
		t.Fatal("StuckWorkerError.Timeout() = false")
	}
}
