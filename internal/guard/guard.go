// Package guard is the dynamic counterpart of internal/isacheck: where
// isacheck proves kernel properties statically, guard defends the execution
// path at runtime. It maintains the per-(platform, kernel-path) circuit
// breaker registry behind LibShalom's fallback chain — a kernel that fails
// its static contract, panics at runtime, trips the numeric guard or loses
// a canary comparison is demoted to the portable reference path and the
// library keeps answering — and it defines the structured error types the
// hardened runtime surfaces instead of crashing the process.
//
// Demotion is no longer sticky: each (platform, kernel) pair carries an
// explicit state machine
//
//	healthy → open (demoted) → probing → healthy
//	                 ↑            |
//	                 └── mismatch ┘   (re-open, doubled cooldown)
//
// An open breaker routes every call to the reference path until its
// cooldown expires; it then moves to probing, where internal/heal shadows a
// bounded fraction of real calls with the reference path and compares the
// results. Enough consecutive agreeing canaries close the breaker (the fast
// path is re-promoted); any disagreement re-opens it with an exponentially
// longer cooldown. Contract demotions are the exception: a kernel that
// fails static verification never auto-probes — only an operator Reset
// re-arms it.
package guard

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Reason classifies why a kernel path was demoted to the reference path.
type Reason string

const (
	// ReasonContract: the kernel failed one of the five isacheck passes for
	// the platform at (lazy) registration verification.
	ReasonContract Reason = "contract-violation"
	// ReasonPanic: the fast path panicked at runtime under the guard.
	ReasonPanic Reason = "runtime-panic"
	// ReasonNumeric: the fast path produced NaN/Inf from all-finite inputs.
	ReasonNumeric Reason = "numeric-guard"
	// ReasonCanary: while the breaker was probing, a shadowed canary call
	// disagreed with the reference path.
	ReasonCanary Reason = "canary-mismatch"
)

// State is a circuit breaker's position in the self-healing state machine.
type State string

const (
	// StateHealthy: the fast path is in use (breaker closed).
	StateHealthy State = "healthy"
	// StateOpen: the fast path is demoted; every call runs the reference
	// path until the cooldown expires.
	StateOpen State = "open"
	// StateProbing: the cooldown expired; a bounded fraction of calls run
	// the fast path shadowed by the reference path to prove recovery.
	StateProbing State = "probing"
)

// Kernel-path identifiers: the unit of demotion. The driver's fast path is
// a coupled family of micro-kernels (main, packing, edge) per precision, so
// demotion is per precision per platform — one misbehaving member retires
// the whole generated family in favour of the reference path.
const (
	PathF32 = "gemm-f32"
	PathF64 = "gemm-f64"
)

// PathFor maps an element size in bytes to its kernel-path identifier.
func PathFor(elemBytes int) string {
	if elemBytes == 8 {
		return PathF64
	}
	return PathF32
}

// Degradation records one demotion: which kernel path on which platform,
// why, a human-readable detail (first finding, panic message, …), and the
// breaker's self-healing state. Shape and Seq were added for incident
// triage; State, Trips and ReopenedAt for the circuit-breaker model. The
// original fields keep their meaning, so existing consumers are unaffected.
type Degradation struct {
	Platform string `json:"platform"`
	Kernel   string `json:"kernel"`
	Reason   Reason `json:"reason"`
	Detail   string `json:"detail,omitempty"`
	// Shape is the call that triggered this trip, as "MODE MxNxK"
	// (e.g. "NT 64x48x24"); empty for registration-time contract demotions,
	// which no call provoked.
	Shape string `json:"shape,omitempty"`
	// Seq is a process-wide monotonic sequence number: demotion n happened
	// before demotion n+1, whatever platform or kernel they hit — the
	// ordering an operator needs to find the first domino. Seq survives
	// Reset, so post-reset trips never reuse numbers.
	Seq uint64 `json:"seq"`
	// State is the breaker's current position in the healing state machine.
	State State `json:"state,omitempty"`
	// Trips counts how many times this (platform, kernel) pair has tripped
	// over the process lifetime; the re-open cooldown doubles per trip.
	Trips int `json:"trips,omitempty"`
	// ReopenedAt is when the breaker last entered the open state.
	ReopenedAt time.Time `json:"reopened_at,omitempty"`
}

func (d Degradation) String() string {
	s := fmt.Sprintf("#%d %s/%s: %s (%s)", d.Seq, d.Platform, d.Kernel, d.Reason, d.Detail)
	if d.Shape != "" {
		s += fmt.Sprintf(" triggered by %s", d.Shape)
	}
	if d.State != "" && d.State != StateOpen {
		s += fmt.Sprintf(" [%s]", d.State)
	}
	if d.Trips > 1 {
		s += fmt.Sprintf(" (trip %d)", d.Trips)
	}
	return s
}

// DefaultCooldown is the base open→probing cooldown used by the
// compatibility Demote/DemoteShape entry points; internal/heal passes its
// configured cooldown explicitly. The effective cooldown doubles per trip,
// capped at DefaultCooldown << maxBackoffShift.
const DefaultCooldown = 5 * time.Second

// maxBackoffShift caps the exponential re-open backoff at base << shift.
const maxBackoffShift = 6

var (
	mu sync.Mutex
	// seq is the process-lifetime monotonic trip counter. Reset deliberately
	// does NOT zero it: an operator re-promotion must not make later trips
	// reuse sequence numbers and scramble first-domino ordering.
	seq uint64
	// breakers is keyed by a composite value type (not a concatenated
	// string) so the per-call Dispatch lookup on the GEMM hot path
	// allocates nothing. Records persist after a breaker closes (state
	// healthy) so repeat offenders keep their trip count and backoff.
	breakers = map[pathKey]*breaker{}
	// history is every trip ever recorded, in Seq order — the full domino
	// chain, not just the first.
	history  []Degradation
	verified = map[string]bool{} // platforms whose contracts were checked
)

type pathKey struct{ platform, kernel string }

func key(platform, kernel string) pathKey { return pathKey{platform, kernel} }

var (
	// observerMu guards observer separately from mu so installing or reading
	// the hook never contends with the hot-path Dispatch lock.
	observerMu sync.Mutex
	observer   func(d Degradation, from, to State)
)

// SetTransitionObserver installs a hook invoked after every breaker trip
// (→ open) and every canary-driven close (probing → healthy), outside the
// registry lock — the journal's event feed. The open → probing transition
// is deliberately not observed: it happens inside the hot-path Dispatch,
// which must not call through a func value (see //shalom:hotpath). A nil fn
// clears the hook. Not intended for concurrent use with in-flight GEMMs;
// install once at process start.
func SetTransitionObserver(fn func(d Degradation, from, to State)) {
	observerMu.Lock()
	observer = fn
	observerMu.Unlock()
}

// notifyTransition invokes the observer, if any. Callers must NOT hold mu:
// the hook may itself query the registry or block on I/O.
func notifyTransition(d Degradation, from, to State) {
	observerMu.Lock()
	fn := observer
	observerMu.Unlock()
	if fn != nil {
		fn(d, from, to)
	}
}

// breaker is the per-(platform, kernel) state machine record, under mu.
type breaker struct {
	d             Degradation
	cooldownUntil time.Time
	noProbe       bool   // contract demotions never auto-probe
	agree         int    // consecutive agreeing canaries while probing
	probeTick     uint64 // canary sampling counter while probing
}

// Demote records a degradation with no triggering-call context (the
// registration-time contract leg), opening the breaker with the default
// cooldown.
func Demote(platform, kernel string, reason Reason, detail string) {
	Trip(platform, kernel, reason, detail, "", DefaultCooldown)
}

// DemoteShape is Demote carrying the mode and dimensions of the call that
// tripped the guard.
func DemoteShape(platform, kernel string, reason Reason, detail, shape string) {
	Trip(platform, kernel, reason, detail, shape, DefaultCooldown)
}

// Trip opens (or re-opens) the breaker for a (platform, kernel) pair and
// reports whether a new trip was recorded. A Trip while the breaker is
// already open is a no-op returning false — concurrent blocks of one call
// demoting the same pair record one trip, and the first reason of each trip
// is the root cause the registry reports. The effective cooldown is
// cooldown << (trips-1), capped at << maxBackoffShift; contract trips never
// cool down (static failures need a code change, not a retry).
func Trip(platform, kernel string, reason Reason, detail, shape string, cooldown time.Duration) bool {
	// A trip on a tuned-override path evicts the override first, so the
	// candidate stops serving the instant its breaker opens and the recorded
	// Degradation names the tuned kernel identity it demoted.
	if ov, tuned := takeOverrideByPath(kernel); tuned {
		detail = fmt.Sprintf("tuned kernel %s (tile %dx%d kc %d) reverted: %s",
			ov.Kernel, ov.MR, ov.NR, ov.KC, detail)
	}
	mu.Lock()
	k := key(platform, kernel)
	br := breakers[k]
	if br == nil {
		br = &breaker{d: Degradation{Platform: platform, Kernel: kernel}}
		breakers[k] = br
	}
	if br.d.State == StateOpen {
		mu.Unlock()
		return false
	}
	from := br.d.State
	if from == "" {
		from = StateHealthy
	}
	seq++
	br.d.Reason, br.d.Detail, br.d.Shape = reason, detail, shape
	br.d.Seq = seq
	br.d.State = StateOpen
	br.d.Trips++
	br.d.ReopenedAt = time.Now()
	br.noProbe = reason == ReasonContract
	shift := br.d.Trips - 1
	if shift > maxBackoffShift {
		shift = maxBackoffShift
	}
	if cooldown <= 0 {
		cooldown = DefaultCooldown
	}
	br.cooldownUntil = br.d.ReopenedAt.Add(cooldown << shift)
	br.agree, br.probeTick = 0, 0
	history = append(history, br.d)
	d := br.d
	mu.Unlock()
	notifyTransition(d, from, StateOpen)
	return true
}

// Disposition is the routing decision Dispatch takes for one call.
type Disposition uint8

const (
	// DispatchFast: breaker closed — run the generated fast path.
	DispatchFast Disposition = iota
	// DispatchRef: breaker open (or probing off-sample) — run the portable
	// reference path.
	DispatchRef
	// DispatchCanary: breaker probing — run the fast path shadowed by the
	// reference path and compare.
	DispatchCanary
)

// Dispatch is the hot-path routing decision for a (platform, kernel) pair:
// healthy pairs go fast; open pairs go to the reference path until their
// cooldown expires, at which point the breaker moves to probing (reported
// via beganProbe, exactly once per transition); probing pairs send one of
// every stride calls through the canary shadow and the rest to the
// reference path. The healthy-path cost is one mutex acquisition and a map
// lookup, the same as the pre-breaker IsDemoted check, with no allocation.
//
//shalom:hotpath noalloc
func Dispatch(platform, kernel string, stride int) (d Disposition, beganProbe bool) {
	mu.Lock()
	defer mu.Unlock()
	br := breakers[key(platform, kernel)]
	if br == nil || br.d.State == StateHealthy {
		return DispatchFast, false
	}
	if br.d.State == StateOpen {
		if br.noProbe || time.Now().Before(br.cooldownUntil) {
			return DispatchRef, false
		}
		br.d.State = StateProbing
		br.agree, br.probeTick = 0, 0
		beganProbe = true
	}
	if stride < 1 {
		stride = 1
	}
	tick := br.probeTick
	br.probeTick++
	if tick%uint64(stride) == 0 {
		return DispatchCanary, beganProbe
	}
	return DispatchRef, beganProbe
}

// CanaryAgree records one agreeing canary for a probing breaker and closes
// it (returning true) once target consecutive canaries have agreed. The
// record survives closure with its trip count, so a repeat offense resumes
// the exponential backoff where it left off.
func CanaryAgree(platform, kernel string, target int) (closed bool) {
	mu.Lock()
	br := breakers[key(platform, kernel)]
	if br == nil || br.d.State != StateProbing {
		mu.Unlock()
		return false
	}
	br.agree++
	if br.agree >= target {
		br.d.State = StateHealthy
		br.agree, br.probeTick = 0, 0
		d := br.d
		mu.Unlock()
		notifyTransition(d, StateProbing, StateHealthy)
		return true
	}
	mu.Unlock()
	return false
}

// StateOf reports the breaker state of a (platform, kernel) pair; pairs
// that never tripped are healthy.
func StateOf(platform, kernel string) State {
	mu.Lock()
	defer mu.Unlock()
	br := breakers[key(platform, kernel)]
	if br == nil {
		return StateHealthy
	}
	return br.d.State
}

// IsDemoted reports whether the kernel path is currently degraded (breaker
// open or probing) on the platform.
func IsDemoted(platform, kernel string) bool {
	mu.Lock()
	defer mu.Unlock()
	br, ok := breakers[key(platform, kernel)]
	return ok && br.d.State != StateHealthy
}

// Demotion returns the current degradation for a (platform, kernel) pair;
// ok is false for pairs that are healthy (including healed pairs).
func Demotion(platform, kernel string) (Degradation, bool) {
	mu.Lock()
	defer mu.Unlock()
	br, ok := breakers[key(platform, kernel)]
	if !ok || br.d.State == StateHealthy {
		return Degradation{}, false
	}
	return br.d, true
}

// List returns the currently degraded (open or probing) pairs for one
// platform, or for every platform when platform is empty, sorted by
// (platform, kernel).
func List(platform string) []Degradation {
	mu.Lock()
	defer mu.Unlock()
	out := make([]Degradation, 0, len(breakers))
	for _, br := range breakers {
		if br.d.State == StateHealthy {
			continue
		}
		if platform == "" || br.d.Platform == platform {
			out = append(out, br.d)
		}
	}
	sortByPair(out)
	return out
}

// Breakers returns every breaker record — including healed pairs, whose
// trip count still drives backoff — sorted by (platform, kernel). This is
// the health report's view; List remains the "what is degraded right now"
// view.
func Breakers() []Degradation {
	mu.Lock()
	defer mu.Unlock()
	out := make([]Degradation, 0, len(breakers))
	for _, br := range breakers {
		out = append(out, br.d)
	}
	sortByPair(out)
	return out
}

// History returns every trip ever recorded, in Seq order — the full domino
// chain across re-opens and operator resets.
func History() []Degradation {
	mu.Lock()
	defer mu.Unlock()
	out := make([]Degradation, len(history))
	copy(out, history)
	return out
}

// CooldownUntil reports when an open breaker becomes eligible to probe;
// ok is false when the pair is not open (or never cools down).
func CooldownUntil(platform, kernel string) (t time.Time, ok bool) {
	mu.Lock()
	defer mu.Unlock()
	br, found := breakers[key(platform, kernel)]
	if !found || br.d.State != StateOpen || br.noProbe {
		return time.Time{}, false
	}
	return br.cooldownUntil, true
}

func sortByPair(out []Degradation) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].Platform != out[j].Platform {
			return out[i].Platform < out[j].Platform
		}
		return out[i].Kernel < out[j].Kernel
	})
}

// Reset clears every breaker, the trip history and the per-platform
// verification memo, so the next dispatch re-verifies contracts. The seq
// counter is NOT reset: it is monotonic for the process lifetime, so trips
// recorded after an operator re-promotion continue the global ordering.
// Intended for tests and for operators re-promoting kernels after an
// investigated incident.
func Reset() {
	// Overrides go first, outside mu: takeOverrideByPath acquires ovMu
	// before mu, so the registry lock must never be held across ovMu.
	ResetOverrides()
	mu.Lock()
	defer mu.Unlock()
	breakers = map[pathKey]*breaker{}
	history = nil
	verified = map[string]bool{}
}

// KernelPanicError is the structured error the hardened runtime returns
// when a fast-path block computation panics: the pool worker recovers, the
// remaining blocks are cancelled, and the caller receives this instead of a
// process crash.
type KernelPanicError struct {
	Platform string // platform model name
	Mode     string // GEMM mode ("NN", "NT", …)
	Kernel   string // kernel-path identifier (PathF32/PathF64)
	// I0, J0, M, N locate the C sub-block whose computation panicked.
	I0, J0, M, N int
	// Entry is the batch entry index, or -1 for a non-batch call.
	Entry int
	// Value is the recovered panic value; Stack the goroutine stack at the
	// point of recovery.
	Value any
	Stack []byte
}

func (e *KernelPanicError) Error() string {
	where := fmt.Sprintf("block (%d,%d) %dx%d", e.I0, e.J0, e.M, e.N)
	if e.Entry >= 0 {
		where = fmt.Sprintf("batch entry %d, %s", e.Entry, where)
	}
	return fmt.Sprintf("guard: kernel panic on %s/%s mode %s at %s: %v",
		e.Platform, e.Kernel, e.Mode, where, e.Value)
}

// StuckWorkerError is returned when the parallel runtime's watchdog finds a
// worker exceeding its per-block budget (a stalled core, a hung kernel):
// remaining blocks are cancelled and the caller gets this typed error
// instead of hanging. The output buffer must be treated as undefined — the
// stuck goroutine cannot be killed and may still write to it after the
// call returns.
type StuckWorkerError struct {
	// Task is the index of the stuck task in the run's task slice.
	Task int
	// Budget is the configured per-block deadline; Elapsed how long the
	// task had been running when the watchdog fired.
	Budget, Elapsed time.Duration
}

func (e *StuckWorkerError) Error() string {
	return fmt.Sprintf("guard: worker stuck on task %d: %v elapsed against a %v budget",
		e.Task, e.Elapsed, e.Budget)
}

// Timeout marks the error as a timeout for net.Error-style checks.
func (e *StuckWorkerError) Timeout() bool { return true }
