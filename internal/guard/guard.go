// Package guard is the dynamic counterpart of internal/isacheck: where
// isacheck proves kernel properties statically, guard defends the execution
// path at runtime. It maintains the per-(platform, kernel-path) degradation
// registry behind LibShalom's fallback chain — a kernel that fails its
// static contract, panics at runtime, or trips the numeric guard is demoted
// to the portable reference path and the library keeps answering — and it
// defines the structured error types the hardened runtime surfaces instead
// of crashing the process.
package guard

import (
	"fmt"
	"sort"
	"sync"
)

// Reason classifies why a kernel path was demoted to the reference path.
type Reason string

const (
	// ReasonContract: the kernel failed one of the five isacheck passes for
	// the platform at (lazy) registration verification.
	ReasonContract Reason = "contract-violation"
	// ReasonPanic: the fast path panicked at runtime under the guard.
	ReasonPanic Reason = "runtime-panic"
	// ReasonNumeric: the fast path produced NaN/Inf from all-finite inputs.
	ReasonNumeric Reason = "numeric-guard"
)

// Kernel-path identifiers: the unit of demotion. The driver's fast path is
// a coupled family of micro-kernels (main, packing, edge) per precision, so
// demotion is per precision per platform — one misbehaving member retires
// the whole generated family in favour of the reference path.
const (
	PathF32 = "gemm-f32"
	PathF64 = "gemm-f64"
)

// PathFor maps an element size in bytes to its kernel-path identifier.
func PathFor(elemBytes int) string {
	if elemBytes == 8 {
		return PathF64
	}
	return PathF32
}

// Degradation records one demotion: which kernel path on which platform,
// why, and a human-readable detail (first finding, panic message, …).
type Degradation struct {
	Platform string `json:"platform"`
	Kernel   string `json:"kernel"`
	Reason   Reason `json:"reason"`
	Detail   string `json:"detail,omitempty"`
}

func (d Degradation) String() string {
	return fmt.Sprintf("%s/%s: %s (%s)", d.Platform, d.Kernel, d.Reason, d.Detail)
}

var (
	mu       sync.Mutex
	demoted  = map[string]Degradation{} // key: platform + "\x00" + kernel
	verified = map[string]bool{}        // platforms whose contracts were checked
)

func key(platform, kernel string) string { return platform + "\x00" + kernel }

// Demote records a degradation. The first demotion of a (platform, kernel)
// pair wins; later demotions of the same pair keep the original reason, so
// the registry reports the root cause rather than the latest symptom.
func Demote(platform, kernel string, reason Reason, detail string) {
	mu.Lock()
	defer mu.Unlock()
	k := key(platform, kernel)
	if _, dup := demoted[k]; dup {
		return
	}
	demoted[k] = Degradation{Platform: platform, Kernel: kernel, Reason: reason, Detail: detail}
}

// IsDemoted reports whether the kernel path is degraded on the platform.
func IsDemoted(platform, kernel string) bool {
	mu.Lock()
	defer mu.Unlock()
	_, ok := demoted[key(platform, kernel)]
	return ok
}

// Demotion returns the recorded degradation for a (platform, kernel) pair.
func Demotion(platform, kernel string) (Degradation, bool) {
	mu.Lock()
	defer mu.Unlock()
	d, ok := demoted[key(platform, kernel)]
	return d, ok
}

// List returns the degradations for one platform, or for every platform
// when platform is empty, sorted by (platform, kernel).
func List(platform string) []Degradation {
	mu.Lock()
	defer mu.Unlock()
	out := make([]Degradation, 0, len(demoted))
	for _, d := range demoted {
		if platform == "" || d.Platform == platform {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Platform != out[j].Platform {
			return out[i].Platform < out[j].Platform
		}
		return out[i].Kernel < out[j].Kernel
	})
	return out
}

// Reset clears every demotion and the per-platform verification memo, so
// the next dispatch re-verifies contracts. Intended for tests and for
// operators re-promoting kernels after an investigated incident.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	demoted = map[string]Degradation{}
	verified = map[string]bool{}
}

// KernelPanicError is the structured error the hardened runtime returns
// when a fast-path block computation panics: the pool worker recovers, the
// remaining blocks are cancelled, and the caller receives this instead of a
// process crash.
type KernelPanicError struct {
	Platform string // platform model name
	Mode     string // GEMM mode ("NN", "NT", …)
	Kernel   string // kernel-path identifier (PathF32/PathF64)
	// I0, J0, M, N locate the C sub-block whose computation panicked.
	I0, J0, M, N int
	// Entry is the batch entry index, or -1 for a non-batch call.
	Entry int
	// Value is the recovered panic value; Stack the goroutine stack at the
	// point of recovery.
	Value any
	Stack []byte
}

func (e *KernelPanicError) Error() string {
	where := fmt.Sprintf("block (%d,%d) %dx%d", e.I0, e.J0, e.M, e.N)
	if e.Entry >= 0 {
		where = fmt.Sprintf("batch entry %d, %s", e.Entry, where)
	}
	return fmt.Sprintf("guard: kernel panic on %s/%s mode %s at %s: %v",
		e.Platform, e.Kernel, e.Mode, where, e.Value)
}
