// Package guard is the dynamic counterpart of internal/isacheck: where
// isacheck proves kernel properties statically, guard defends the execution
// path at runtime. It maintains the per-(platform, kernel-path) degradation
// registry behind LibShalom's fallback chain — a kernel that fails its
// static contract, panics at runtime, or trips the numeric guard is demoted
// to the portable reference path and the library keeps answering — and it
// defines the structured error types the hardened runtime surfaces instead
// of crashing the process.
package guard

import (
	"fmt"
	"sort"
	"sync"
)

// Reason classifies why a kernel path was demoted to the reference path.
type Reason string

const (
	// ReasonContract: the kernel failed one of the five isacheck passes for
	// the platform at (lazy) registration verification.
	ReasonContract Reason = "contract-violation"
	// ReasonPanic: the fast path panicked at runtime under the guard.
	ReasonPanic Reason = "runtime-panic"
	// ReasonNumeric: the fast path produced NaN/Inf from all-finite inputs.
	ReasonNumeric Reason = "numeric-guard"
)

// Kernel-path identifiers: the unit of demotion. The driver's fast path is
// a coupled family of micro-kernels (main, packing, edge) per precision, so
// demotion is per precision per platform — one misbehaving member retires
// the whole generated family in favour of the reference path.
const (
	PathF32 = "gemm-f32"
	PathF64 = "gemm-f64"
)

// PathFor maps an element size in bytes to its kernel-path identifier.
func PathFor(elemBytes int) string {
	if elemBytes == 8 {
		return PathF64
	}
	return PathF32
}

// Degradation records one demotion: which kernel path on which platform,
// why, and a human-readable detail (first finding, panic message, …).
// Shape and Seq were added for incident triage; the original fields keep
// their meaning, so existing consumers are unaffected.
type Degradation struct {
	Platform string `json:"platform"`
	Kernel   string `json:"kernel"`
	Reason   Reason `json:"reason"`
	Detail   string `json:"detail,omitempty"`
	// Shape is the call that first triggered the demotion, as "MODE MxNxK"
	// (e.g. "NT 64x48x24"); empty for registration-time contract demotions,
	// which no call provoked.
	Shape string `json:"shape,omitempty"`
	// Seq is a process-wide monotonic sequence number: demotion n happened
	// before demotion n+1, whatever platform or kernel they hit — the
	// ordering an operator needs to find the first domino.
	Seq uint64 `json:"seq"`
}

func (d Degradation) String() string {
	s := fmt.Sprintf("#%d %s/%s: %s (%s)", d.Seq, d.Platform, d.Kernel, d.Reason, d.Detail)
	if d.Shape != "" {
		s += fmt.Sprintf(" first triggered by %s", d.Shape)
	}
	return s
}

var (
	mu  sync.Mutex
	seq uint64 // monotonic demotion counter, under mu
	// demoted is keyed by a composite value type (not a concatenated
	// string) so the per-call IsDemoted lookup on the GEMM hot path
	// allocates nothing.
	demoted  = map[pathKey]Degradation{}
	verified = map[string]bool{} // platforms whose contracts were checked
)

type pathKey struct{ platform, kernel string }

func key(platform, kernel string) pathKey { return pathKey{platform, kernel} }

// Demote records a degradation with no triggering-call context (the
// registration-time contract leg). The first demotion of a (platform,
// kernel) pair wins; later demotions of the same pair keep the original
// reason, so the registry reports the root cause rather than the latest
// symptom.
func Demote(platform, kernel string, reason Reason, detail string) {
	DemoteShape(platform, kernel, reason, detail, "")
}

// DemoteShape is Demote carrying the mode and dimensions of the call that
// tripped the guard, recorded on the first demotion of the pair.
func DemoteShape(platform, kernel string, reason Reason, detail, shape string) {
	mu.Lock()
	defer mu.Unlock()
	k := key(platform, kernel)
	if _, dup := demoted[k]; dup {
		return
	}
	seq++
	demoted[k] = Degradation{
		Platform: platform, Kernel: kernel, Reason: reason, Detail: detail,
		Shape: shape, Seq: seq,
	}
}

// IsDemoted reports whether the kernel path is degraded on the platform.
func IsDemoted(platform, kernel string) bool {
	mu.Lock()
	defer mu.Unlock()
	_, ok := demoted[key(platform, kernel)]
	return ok
}

// Demotion returns the recorded degradation for a (platform, kernel) pair.
func Demotion(platform, kernel string) (Degradation, bool) {
	mu.Lock()
	defer mu.Unlock()
	d, ok := demoted[key(platform, kernel)]
	return d, ok
}

// List returns the degradations for one platform, or for every platform
// when platform is empty, sorted by (platform, kernel).
func List(platform string) []Degradation {
	mu.Lock()
	defer mu.Unlock()
	out := make([]Degradation, 0, len(demoted))
	for _, d := range demoted {
		if platform == "" || d.Platform == platform {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Platform != out[j].Platform {
			return out[i].Platform < out[j].Platform
		}
		return out[i].Kernel < out[j].Kernel
	})
	return out
}

// Reset clears every demotion and the per-platform verification memo, so
// the next dispatch re-verifies contracts. Intended for tests and for
// operators re-promoting kernels after an investigated incident.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	demoted = map[pathKey]Degradation{}
	verified = map[string]bool{}
	seq = 0
}

// KernelPanicError is the structured error the hardened runtime returns
// when a fast-path block computation panics: the pool worker recovers, the
// remaining blocks are cancelled, and the caller receives this instead of a
// process crash.
type KernelPanicError struct {
	Platform string // platform model name
	Mode     string // GEMM mode ("NN", "NT", …)
	Kernel   string // kernel-path identifier (PathF32/PathF64)
	// I0, J0, M, N locate the C sub-block whose computation panicked.
	I0, J0, M, N int
	// Entry is the batch entry index, or -1 for a non-batch call.
	Entry int
	// Value is the recovered panic value; Stack the goroutine stack at the
	// point of recovery.
	Value any
	Stack []byte
}

func (e *KernelPanicError) Error() string {
	where := fmt.Sprintf("block (%d,%d) %dx%d", e.I0, e.J0, e.M, e.N)
	if e.Entry >= 0 {
		where = fmt.Sprintf("batch entry %d, %s", e.Entry, where)
	}
	return fmt.Sprintf("guard: kernel panic on %s/%s mode %s at %s: %v",
		e.Platform, e.Kernel, e.Mode, where, e.Value)
}
