package guard

import (
	"strings"
	"testing"
	"time"

	"libshalom/internal/telemetry"
)

// A set override is visible on the hot-path lookup, replaceable in place,
// and clearable, and out-of-range keys are rejected on every operation.
func TestOverrideSetGetClear(t *testing.T) {
	Reset()
	t.Cleanup(Reset)

	small := uint8(telemetry.ShapeSmall)
	ov := TileOverride{MR: 5, NR: 8, KC: 16, Kernel: "tuned-5x8-kc16", Path: MintOverridePath(4, "small")}
	if !SetOverride(4, small, ov) {
		t.Fatal("SetOverride rejected a valid override")
	}
	got, ok := OverrideFor(4, small)
	if !ok || got != ov {
		t.Fatalf("OverrideFor = %+v, %v; want %+v, true", got, ok, ov)
	}
	// A different key on the same element row stays empty.
	if _, ok := OverrideFor(4, uint8(telemetry.ShapeLarge)); ok {
		t.Error("unrelated class reports an override")
	}
	// The f64 row is independent of the f32 row.
	if _, ok := OverrideFor(8, small); ok {
		t.Error("f64 row inherited the f32 override")
	}

	// Replacement swaps the tile in place.
	ov2 := TileOverride{MR: 7, NR: 12, KC: 16, Kernel: "tuned-7x12-kc16", Path: MintOverridePath(4, "small")}
	if !SetOverride(4, small, ov2) {
		t.Fatal("SetOverride rejected a replacement")
	}
	if got, _ := OverrideFor(4, small); got != ov2 {
		t.Fatalf("after replace, OverrideFor = %+v, want %+v", got, ov2)
	}
	if n := len(Overrides()); n != 1 {
		t.Fatalf("Overrides() has %d entries after replace, want 1", n)
	}

	old, ok := ClearOverride(4, small)
	if !ok || old != ov2 {
		t.Fatalf("ClearOverride = %+v, %v; want the evicted override", old, ok)
	}
	if _, ok := OverrideFor(4, small); ok {
		t.Error("override survived ClearOverride")
	}
	if _, ok := ClearOverride(4, small); ok {
		t.Error("second ClearOverride reported an eviction")
	}

	// Out-of-range keys and empty paths are rejected.
	if SetOverride(2, small, ov) {
		t.Error("SetOverride accepted elem size 2")
	}
	if SetOverride(4, 200, ov) {
		t.Error("SetOverride accepted class 200")
	}
	if SetOverride(4, small, TileOverride{MR: 1, NR: 4}) {
		t.Error("SetOverride accepted an override with no breaker path")
	}
	if _, ok := OverrideFor(2, small); ok {
		t.Error("OverrideFor accepted elem size 2")
	}
	if _, ok := ClearOverride(4, 200); ok {
		t.Error("ClearOverride accepted class 200")
	}
}

// Minted paths are unique per call and name the family path and class, so
// every installation probes a clean breaker.
func TestMintOverridePathUnique(t *testing.T) {
	a := MintOverridePath(4, "small")
	b := MintOverridePath(4, "small")
	if a == b {
		t.Fatalf("two mints returned the same path %q", a)
	}
	if !strings.HasPrefix(a, PathFor(4)+"/tuned/small#") {
		t.Fatalf("minted path %q does not carry the family path and class", a)
	}
	if !strings.HasPrefix(MintOverridePath(8, "large"), PathFor(8)+"/tuned/large#") {
		t.Error("f64 mint does not carry the f64 family path")
	}
}

// A trip on a tuned path evicts the override before recording, and the
// Degradation detail names the evicted tuned kernel and tile.
func TestTripEvictsTunedOverride(t *testing.T) {
	Reset()
	t.Cleanup(Reset)

	small := uint8(telemetry.ShapeSmall)
	path := MintOverridePath(4, "small")
	ov := TileOverride{MR: 3, NR: 8, KC: 12, Kernel: "tuned-3x8-kc12", Path: path}
	if !SetOverride(4, small, ov) {
		t.Fatal("SetOverride failed")
	}

	if !Trip("kp920", path, ReasonCanary, "injected mismatch", "NN 64x64x64", time.Minute) {
		t.Fatal("Trip on the tuned path was a no-op")
	}
	if _, ok := OverrideFor(4, small); ok {
		t.Error("override still installed after its breaker tripped")
	}
	d, ok := Demotion("kp920", path)
	if !ok {
		t.Fatal("no demotion recorded for the tuned path")
	}
	for _, want := range []string{"tuned-3x8-kc12", "3x8", "kc 12", "injected mismatch"} {
		if !strings.Contains(d.Detail, want) {
			t.Errorf("demotion detail missing %q: %q", want, d.Detail)
		}
	}

	// A trip on a path with no override records the plain detail.
	if !Trip("kp920", "gemm-f32", ReasonCanary, "plain", "", time.Minute) {
		t.Fatal("plain Trip was a no-op")
	}
	if d, _ := Demotion("kp920", "gemm-f32"); strings.Contains(d.Detail, "tuned kernel") {
		t.Errorf("plain trip detail mentions a tuned kernel: %q", d.Detail)
	}
}

// BeginProbation arms a fresh breaker directly in the probing state, refuses
// pairs pinned open by contract demotions, and Forget retires the record.
func TestBeginProbationAndForget(t *testing.T) {
	Reset()
	t.Cleanup(Reset)

	path := MintOverridePath(4, "small")
	if !BeginProbation("kp920", path) {
		t.Fatal("BeginProbation refused a fresh pair")
	}
	if s := StateOf("kp920", path); s != StateProbing {
		t.Fatalf("StateOf after BeginProbation = %v, want probing", s)
	}

	// Forget drops the breaker record: the pair reads healthy again.
	Forget("kp920", path)
	if s := StateOf("kp920", path); s != StateHealthy {
		t.Fatalf("StateOf after Forget = %v, want healthy", s)
	}

	// A contract demotion pins the pair open; probation is refused.
	Trip("kp920", path, ReasonContract, "static failure", "", time.Minute)
	if BeginProbation("kp920", path) {
		t.Error("BeginProbation re-armed a contract-pinned breaker")
	}
	if s := StateOf("kp920", path); s != StateOpen {
		t.Fatalf("contract-pinned breaker left %v, want open", s)
	}
}

// ResetOverrides empties the table without touching breaker state.
func TestResetOverrides(t *testing.T) {
	Reset()
	t.Cleanup(Reset)

	if !SetOverride(4, uint8(telemetry.ShapeSmall), TileOverride{MR: 2, NR: 4, Kernel: "x", Path: MintOverridePath(4, "small")}) {
		t.Fatal("SetOverride failed")
	}
	if !SetOverride(8, uint8(telemetry.ShapeLarge), TileOverride{MR: 2, NR: 2, Kernel: "y", Path: MintOverridePath(8, "large")}) {
		t.Fatal("SetOverride failed")
	}
	if n := len(Overrides()); n != 2 {
		t.Fatalf("Overrides() has %d entries, want 2", n)
	}
	ResetOverrides()
	if ovs := Overrides(); ovs != nil {
		t.Fatalf("Overrides() after reset = %v, want nil", ovs)
	}
}
