package isa

import (
	"sort"
	"testing"
)

// scratch returns a builder with one generously-sized scratch stream, for
// programs whose memory behaviour is not the point.
func scratchBuilder(name string) (*Builder, int) {
	b := NewBuilder(name, 4)
	s := b.Stream("buf", StreamScratch, 256, false)
	return b, s
}

// TestUndefinedReadEveryOpKind drives the read-before-write detector through
// every op kind that reads a register: each program's single defect must be
// reported exactly once, at the right instruction.
func TestUndefinedReadEveryOpKind(t *testing.T) {
	cases := []struct {
		name string
		emit func(b *Builder, s int)
	}{
		{"StVec", func(b *Builder, s int) { b.StVec(3, s, 0) }},
		{"StLane", func(b *Builder, s int) { b.StLane(3, 0, s, 0) }},
		{"FmlaElem-src1", func(b *Builder, s int) { b.Zero(0).Zero(2).FmlaElem(0, 3, 2, 0) }},
		{"FmlaElem-src2", func(b *Builder, s int) { b.Zero(0).Zero(1).FmlaElem(0, 1, 3, 0) }},
		{"FmlaElem-dst", func(b *Builder, s int) { b.Zero(1).Zero(2).FmlaElem(3, 1, 2, 0) }},
		{"FmlaVec", func(b *Builder, s int) { b.Zero(0).Zero(1).FmlaVec(0, 1, 3) }},
		{"FmulElem", func(b *Builder, s int) { b.Zero(1).FmulElem(0, 1, 3, 0) }},
		{"FaddVec", func(b *Builder, s int) { b.Zero(1).FaddVec(0, 3, 1) }},
		{"FmulVec", func(b *Builder, s int) { b.Zero(1).FmulVec(0, 1, 3) }},
		{"Reduce", func(b *Builder, s int) { b.Reduce(0, 3) }},
		{"Dup", func(b *Builder, s int) { b.Dup(0, 3, 0) }},
		{"FmulScalarAll", func(b *Builder, s int) { b.FmulScalarAll(3, 2.0) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b, s := scratchBuilder("undef_" + tc.name)
			tc.emit(b, s)
			// Keep every register read afterwards irrelevant: the defect
			// is the read of V3, which nothing ever wrote.
			p := b.MustBuild()
			rep, err := Analyze(p)
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.UndefinedReads) != 1 {
				t.Fatalf("UndefinedReads = %v, want exactly one entry", rep.UndefinedReads)
			}
			if got, want := rep.UndefinedReads[0], len(p.Code)-1; got != want {
				t.Errorf("undefined read reported at instr %d, want %d", got, want)
			}
		})
	}
}

// TestUndefinedReadReportedOncePerInstr: an FMA reading two unwritten
// registers is one defective instruction, not two report entries.
func TestUndefinedReadReportedOncePerInstr(t *testing.T) {
	b, _ := scratchBuilder("undef_double")
	b.Zero(0)
	b.FmlaVec(0, 1, 2) // both sources unwritten
	rep, err := Analyze(b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.UndefinedReads) != 1 || rep.UndefinedReads[0] != 1 {
		t.Errorf("UndefinedReads = %v, want [1]", rep.UndefinedReads)
	}
}

// TestAllRegistersLive: a program keeping all 32 registers simultaneously
// live must report PeakLive exactly 32 and stay within the invariant check.
func TestAllRegistersLive(t *testing.T) {
	b, s := scratchBuilder("all32")
	for r := 0; r < 32; r++ {
		b.LdVec(r, s, 4*r)
	}
	// Read them all after every write, so all 32 are live at once.
	for r := 0; r < 32; r++ {
		b.StVec(r, s, 4*r)
	}
	rep, err := Analyze(b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	if rep.PeakLive != 32 {
		t.Errorf("PeakLive = %d, want 32", rep.PeakLive)
	}
	if err := rep.CheckKernelInvariants(0); err != nil {
		t.Errorf("CheckKernelInvariants: %v", err)
	}
}

// TestEmptyProgram: the analyzer must handle a program with no instructions
// (and an untouched stream) without inventing findings.
func TestEmptyProgram(t *testing.T) {
	b := NewBuilder("empty", 8)
	b.Stream("buf", StreamScratch, 16, false)
	rep, err := Analyze(b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	if rep.PeakLive != 0 || len(rep.UndefinedReads) != 0 || len(rep.DeadWrites) != 0 {
		t.Errorf("empty program: PeakLive=%d undef=%v dead=%v, want all zero",
			rep.PeakLive, rep.UndefinedReads, rep.DeadWrites)
	}
	if sr := rep.Streams[0]; sr.MinOff != -1 || sr.Loads != 0 || sr.Stores != 0 {
		t.Errorf("untouched stream reported %+v", sr)
	}
}

// TestDeadWritesSortedAndDeduped covers the accounting contract: the
// end-of-program sweep never re-reports an index the in-loop overwrite
// detection already found, including the self-overwrite of an LdScalarPair
// whose two destinations are the same register, and the result is sorted.
func TestDeadWritesSortedAndDeduped(t *testing.T) {
	b, s := scratchBuilder("dead_dedup")
	b.LdScalarPair(5, 5, s, 0) // instr 0: lane write 0 dies into lane write 1, never read
	b.Zero(9)                  // instr 1: overwritten by instr 3 unread
	b.LdVec(7, s, 0)           // instr 2: never read
	b.Zero(9)                  // instr 3: never read
	rep, err := Analyze(b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 3}
	if len(rep.DeadWrites) != len(want) {
		t.Fatalf("DeadWrites = %v, want %v", rep.DeadWrites, want)
	}
	for i, w := range want {
		if rep.DeadWrites[i] != w {
			t.Fatalf("DeadWrites = %v, want %v", rep.DeadWrites, want)
		}
	}
	if !sort.IntsAreSorted(rep.DeadWrites) {
		t.Errorf("DeadWrites not sorted: %v", rep.DeadWrites)
	}
}

// TestCoverageReportsGapsAndOverlaps pins the per-stream coverage contract
// the footprint pass depends on: missing elements and double-stores are
// reported by exact offset.
func TestCoverageReportsGapsAndOverlaps(t *testing.T) {
	b := NewBuilder("cover", 4)
	s := b.Stream("C", StreamC, 16, false)
	b.Zero(0)
	b.StVec(0, s, 0)     // covers 0–3
	b.StVec(0, s, 8)     // covers 8–11, leaving a 4–7 gap
	b.StLane(0, 0, s, 9) // overlaps offset 9
	rep, err := Analyze(b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	sr := rep.Streams[0]
	gaps := sr.StoreCover.Missing(0, 12)
	if want := []int{4, 5, 6, 7}; len(gaps) != 4 || gaps[0] != 4 || gaps[3] != 7 {
		t.Errorf("Missing(0,12) = %v, want %v", gaps, want)
	}
	if len(sr.OverlapStores) != 1 || sr.OverlapStores[0] != 9 {
		t.Errorf("OverlapStores = %v, want [9]", sr.OverlapStores)
	}
	if got := sr.StoreCover.Count(); got != 8 {
		t.Errorf("StoreCover.Count() = %d, want 8", got)
	}
	if extra := sr.StoreCover.Extra(0, 4); len(extra) != 4 || extra[0] != 8 {
		t.Errorf("Extra(0,4) = %v, want the 8–11 block", extra)
	}
}

// FuzzAnalyze feeds randomly generated but valid-by-construction programs to
// the analyzer: whatever the instruction mix, Analyze must neither panic nor
// return an error, and its reports must respect their ordering contracts.
func FuzzAnalyze(f *testing.F) {
	f.Add([]byte{0x01, 0x42, 0x10, 0xff, 0x03}, uint8(0))
	f.Add([]byte{}, uint8(1))
	f.Add([]byte{0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff, 0x00, 0x11, 0x22}, uint8(2))
	f.Fuzz(func(t *testing.T, data []byte, seed uint8) {
		elem := 4
		if seed%2 == 1 {
			elem = 8
		}
		b := NewBuilder("fuzz", elem)
		streams := []int{
			b.Stream("A", StreamA, 64, true),
			b.Stream("C", StreamC, 64, false),
			b.Stream("Bc", StreamBc, 64, true),
		}
		lanes := 16 / elem
		// Decode each byte into one valid instruction; the decode clamps
		// every operand into range, so Validate always accepts.
		for i, raw := range data {
			if i >= 512 {
				break
			}
			op := int(raw) % 12
			r1 := int(raw>>2) % 32
			r2 := (int(raw>>4) + i) % 32
			r3 := (i * 7) % 32
			lane := int(raw) % lanes
			s := streams[int(raw)%len(streams)]
			off := (int(raw) * 3) % (64 - 2*lanes)
			switch op {
			case 0:
				b.LdVec(r1, s, off)
			case 1:
				b.LdScalar(r1, s, off)
			case 2:
				b.LdScalarPair(r1, r2, s, off)
			case 3:
				b.StVec(r1, s, off)
			case 4:
				b.StLane(r1, lane, s, off)
			case 5:
				b.FmlaElem(r1, r2, r3, lane)
			case 6:
				b.FmlaVec(r1, r2, r3)
			case 7:
				b.FmulElem(r1, r2, r3, lane)
			case 8:
				b.FaddVec(r1, r2, r3)
			case 9:
				b.Reduce(r1, r2)
			case 10:
				b.Dup(r1, r2, lane)
			case 11:
				b.Zero(r1)
			}
		}
		p, err := b.Build()
		if err != nil {
			t.Fatalf("valid-by-construction program rejected: %v", err)
		}
		rep, err := Analyze(p)
		if err != nil {
			t.Fatalf("Analyze: %v", err)
		}
		if !sort.IntsAreSorted(rep.DeadWrites) {
			t.Errorf("DeadWrites not sorted: %v", rep.DeadWrites)
		}
		if !sort.IntsAreSorted(rep.UndefinedReads) {
			t.Errorf("UndefinedReads not sorted: %v", rep.UndefinedReads)
		}
		for i := 1; i < len(rep.DeadWrites); i++ {
			if rep.DeadWrites[i] == rep.DeadWrites[i-1] {
				t.Errorf("DeadWrites has duplicate %d", rep.DeadWrites[i])
			}
		}
		if rep.PeakLive < 0 || rep.PeakLive > 32 {
			t.Errorf("PeakLive %d out of range", rep.PeakLive)
		}
	})
}
