// Package isa defines the virtual ARMv8 NEON instruction set in which every
// LibShalom micro-kernel in this reproduction is expressed. A micro-kernel is
// a Program: a straight-line sequence of instructions over the 32 128-bit
// vector registers V0–V31 plus a set of declared memory streams (the A sliver,
// the B sliver, the packing buffer Bc, the C tile). Programs are produced by
// builders in internal/kernels, executed functionally by internal/vexec (real
// FP32/FP64 arithmetic, validated against the portable Go kernels), and timed
// by the scoreboard model in internal/uarch.
//
// The instruction selection mirrors the subset of NEON the paper's listings
// use: ldr q / ldp s loads, st1 stores (including single-lane scatter stores,
// Fig 5), fmla by-element (scalar–vector outer product, Alg 2), fmla
// vector–vector (inner product, Alg 3), dup, and faddp-style lane reductions.
package isa

import (
	"fmt"
	"strings"
)

// Op enumerates the virtual NEON operations.
type Op uint8

const (
	// Nop does nothing; used only as a scheduling placeholder in tests.
	Nop Op = iota
	// LdVec loads a full 128-bit vector (4×FP32 or 2×FP64) from Mem into Dst.
	// Models `ldr qN, [ptr]`.
	LdVec
	// LdScalar loads a single element from Mem into lane 0 of Dst, zeroing
	// the remaining lanes. Models `ldr sN / ldr dN`.
	LdScalar
	// LdScalarPair loads two consecutive elements from Mem into lane 0 of
	// Dst and lane 0 of Dst2. Models `ldp s12, s13, [ptr]` from the
	// OpenBLAS edge kernel (Fig 6a). Occupies one load-pipe slot.
	LdScalarPair
	// StVec stores the full vector Src1 to Mem. Models `str qN / st1`.
	StVec
	// StLane stores lane SrcLane of Src1 to Mem (one element). Models the
	// single-lane `st1 {vN.s}[lane]` scatter stores of the NT packing
	// micro-kernel (Fig 5, Alg 3 line 6).
	StLane
	// FmlaElem performs Dst += Src1 * Src2[SrcLane] on every lane: the
	// by-element FMA that implements the outer-product formulation (Alg 2).
	FmlaElem
	// FmlaVec performs Dst += Src1 * Src2 lane-wise: the vector–vector FMA
	// of the inner-product formulation (Alg 3).
	FmlaVec
	// FmulElem performs Dst = Src1 * Src2[SrcLane].
	FmulElem
	// FaddVec performs Dst = Src1 + Src2 lane-wise.
	FaddVec
	// FmulVec performs Dst = Src1 * Src2 lane-wise.
	FmulVec
	// Reduce sums all lanes of Src1 into lane 0 of Dst, zeroing other
	// lanes. Models the faddp reduction tree ending Alg 3 (line 7).
	Reduce
	// Dup broadcasts lane SrcLane of Src1 into every lane of Dst.
	Dup
	// Zero clears Dst. Models `movi vN.4s, #0`.
	Zero
	// FmulScalarAll multiplies every lane of Dst by the scalar immediate
	// Imm. Used to apply alpha/beta without dedicating a register stream.
	FmulScalarAll
)

var opNames = map[Op]string{
	Nop: "nop", LdVec: "ldr.q", LdScalar: "ldr.s", LdScalarPair: "ldp.s",
	StVec: "str.q", StLane: "st1.lane", FmlaElem: "fmla.elem", FmlaVec: "fmla.vec",
	FmulElem: "fmul.elem", FaddVec: "fadd.vec", FmulVec: "fmul.vec",
	Reduce: "faddp.reduce", Dup: "dup", Zero: "movi.0", FmulScalarAll: "fmul.imm",
}

// String returns the mnemonic.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// IsLoad reports whether the op consumes a load pipe.
func (o Op) IsLoad() bool { return o == LdVec || o == LdScalar || o == LdScalarPair }

// IsStore reports whether the op consumes a store pipe.
func (o Op) IsStore() bool { return o == StVec || o == StLane }

// IsFMA reports whether the op consumes an FMA/FP pipe.
func (o Op) IsFMA() bool {
	switch o {
	case FmlaElem, FmlaVec, FmulElem, FaddVec, FmulVec, Reduce, Dup, Zero, FmulScalarAll:
		return true
	}
	return false
}

// NoReg marks an unused register operand.
const NoReg = -1

// MemRef addresses one access: element offset Off into stream Stream.
// Offsets are in elements of the program's element size.
type MemRef struct {
	Stream int
	Off    int
}

// Instr is one virtual instruction. Register fields hold V-register indices
// 0–31 or NoReg. SrcLane selects the by-element lane for FmlaElem/FmulElem/
// Dup and the stored lane for StLane.
type Instr struct {
	Op      Op
	Dst     int
	Dst2    int // second destination of LdScalarPair
	Src1    int
	Src2    int
	SrcLane int
	Mem     MemRef
	Imm     float64 // immediate for FmulScalarAll
}

// StreamKind tags what a memory stream holds, for the cache/traffic model.
type StreamKind uint8

const (
	// StreamA is a sliver of matrix A.
	StreamA StreamKind = iota
	// StreamB is a sliver of matrix B.
	StreamB
	// StreamBc is the linear packing buffer.
	StreamBc
	// StreamC is the C tile.
	StreamC
	// StreamScratch is any other buffer.
	StreamScratch
)

var streamKindNames = [...]string{"A", "B", "Bc", "C", "scratch"}

// String returns the stream tag name.
func (k StreamKind) String() string { return streamKindNames[k] }

// Stream declares one memory operand of a program.
type Stream struct {
	Name string
	Kind StreamKind
	// MinLen is the number of elements the program may touch; execution
	// validates the bound slice is at least this long.
	MinLen int
	// Contiguous reports whether successive accesses walk consecutive
	// memory (used by the analytic cache model for prefetch-friendliness).
	Contiguous bool
}

// Program is a straight-line virtual-NEON routine.
type Program struct {
	Name      string
	ElemBytes int // 4 for FP32, 8 for FP64
	Streams   []Stream
	Code      []Instr
}

// Lanes returns the vector lane count for the program's element size.
func (p *Program) Lanes() int { return 16 / p.ElemBytes }

// Counts tallies instruction classes, used for CMR computation and tests.
type Counts struct {
	Loads, Stores, FMAs, Other int
}

// Count classifies every instruction in the program.
func (p *Program) Count() Counts {
	var c Counts
	for _, in := range p.Code {
		switch {
		case in.Op.IsLoad():
			c.Loads++
		case in.Op.IsStore():
			c.Stores++
		case in.Op == FmlaElem || in.Op == FmlaVec:
			c.FMAs++
		default:
			c.Other++
		}
	}
	return c
}

// CMR returns the computation-to-memory ratio of the program as defined in
// §3.3 of the paper: arithmetic instructions over load+store instructions
// (each FMA counts once as an instruction; Eq. 2 separately counts the two
// flops it performs when expressed per element).
func (p *Program) CMR() float64 {
	c := p.Count()
	mem := c.Loads + c.Stores
	if mem == 0 {
		return 0
	}
	return float64(c.FMAs) / float64(mem)
}

// FlopCount returns the number of scalar floating-point operations the
// program performs (each FMA lane is a multiply and an add).
func (p *Program) FlopCount() int {
	lanes := p.Lanes()
	flops := 0
	for _, in := range p.Code {
		switch in.Op {
		case FmlaElem, FmlaVec:
			flops += 2 * lanes
		case FmulElem, FmulVec, FaddVec, FmulScalarAll:
			flops += lanes
		case Reduce:
			flops += lanes - 1
		}
	}
	return flops
}

// Validate checks static well-formedness: register indices in range, memory
// references into declared streams, stream bounds respected. It returns the
// first problem found, or nil.
func (p *Program) Validate() error {
	if p.ElemBytes != 4 && p.ElemBytes != 8 {
		return fmt.Errorf("isa: %s: elem bytes %d not 4 or 8", p.Name, p.ElemBytes)
	}
	lanes := p.Lanes()
	checkReg := func(i int, what string, r int, optional bool) error {
		if optional && r == NoReg {
			return nil
		}
		if r < 0 || r > 31 {
			return fmt.Errorf("isa: %s: instr %d: %s register %d out of range", p.Name, i, what, r)
		}
		return nil
	}
	for i, in := range p.Code {
		needsMem := in.Op.IsLoad() || in.Op.IsStore()
		if needsMem {
			if in.Mem.Stream < 0 || in.Mem.Stream >= len(p.Streams) {
				return fmt.Errorf("isa: %s: instr %d: stream %d undeclared", p.Name, i, in.Mem.Stream)
			}
			n := in.AccessWidth(lanes)
			st := p.Streams[in.Mem.Stream]
			if in.Mem.Off < 0 || in.Mem.Off+n > st.MinLen {
				return fmt.Errorf("isa: %s: instr %d: access [%d,%d) exceeds stream %s length %d",
					p.Name, i, in.Mem.Off, in.Mem.Off+n, st.Name, st.MinLen)
			}
		}
		var err error
		switch in.Op {
		case Nop:
		case LdVec, LdScalar:
			err = checkReg(i, "dst", in.Dst, false)
		case LdScalarPair:
			if err = checkReg(i, "dst", in.Dst, false); err == nil {
				err = checkReg(i, "dst2", in.Dst2, false)
			}
		case StVec, StLane:
			err = checkReg(i, "src1", in.Src1, false)
			if err == nil && in.Op == StLane && (in.SrcLane < 0 || in.SrcLane >= lanes) {
				err = fmt.Errorf("isa: %s: instr %d: lane %d out of range", p.Name, i, in.SrcLane)
			}
		case FmlaElem, FmulElem:
			err = firstErr(
				checkReg(i, "dst", in.Dst, false),
				checkReg(i, "src1", in.Src1, false),
				checkReg(i, "src2", in.Src2, false),
			)
			if err == nil && (in.SrcLane < 0 || in.SrcLane >= lanes) {
				err = fmt.Errorf("isa: %s: instr %d: lane %d out of range", p.Name, i, in.SrcLane)
			}
		case FmlaVec, FaddVec, FmulVec:
			err = firstErr(
				checkReg(i, "dst", in.Dst, false),
				checkReg(i, "src1", in.Src1, false),
				checkReg(i, "src2", in.Src2, false),
			)
		case Reduce, Dup:
			err = firstErr(checkReg(i, "dst", in.Dst, false), checkReg(i, "src1", in.Src1, false))
			if err == nil && in.Op == Dup && (in.SrcLane < 0 || in.SrcLane >= lanes) {
				err = fmt.Errorf("isa: %s: instr %d: lane %d out of range", p.Name, i, in.SrcLane)
			}
		case Zero, FmulScalarAll:
			err = checkReg(i, "dst", in.Dst, false)
		default:
			err = fmt.Errorf("isa: %s: instr %d: unknown op %d", p.Name, i, in.Op)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// Disassemble renders the program as readable pseudo-assembly.
func (p *Program) Disassemble() string {
	var b strings.Builder
	fmt.Fprintf(&b, "; %s (elem=%dB, %d instrs)\n", p.Name, p.ElemBytes, len(p.Code))
	for i, s := range p.Streams {
		fmt.Fprintf(&b, "; stream %d: %s kind=%s len=%d contiguous=%v\n", i, s.Name, s.Kind, s.MinLen, s.Contiguous)
	}
	for i, in := range p.Code {
		fmt.Fprintf(&b, "%4d: %s\n", i, p.format(in))
	}
	return b.String()
}

func (p *Program) format(in Instr) string {
	mem := func() string {
		return fmt.Sprintf("[%s+%d]", p.Streams[in.Mem.Stream].Name, in.Mem.Off)
	}
	switch in.Op {
	case Nop:
		return "nop"
	case LdVec:
		return fmt.Sprintf("ldr   q%d, %s", in.Dst, mem())
	case LdScalar:
		return fmt.Sprintf("ldr   s%d, %s", in.Dst, mem())
	case LdScalarPair:
		return fmt.Sprintf("ldp   s%d, s%d, %s", in.Dst, in.Dst2, mem())
	case StVec:
		return fmt.Sprintf("str   q%d, %s", in.Src1, mem())
	case StLane:
		return fmt.Sprintf("st1   {v%d}[%d], %s", in.Src1, in.SrcLane, mem())
	case FmlaElem:
		return fmt.Sprintf("fmla  v%d, v%d, v%d[%d]", in.Dst, in.Src1, in.Src2, in.SrcLane)
	case FmlaVec:
		return fmt.Sprintf("fmla  v%d, v%d, v%d", in.Dst, in.Src1, in.Src2)
	case FmulElem:
		return fmt.Sprintf("fmul  v%d, v%d, v%d[%d]", in.Dst, in.Src1, in.Src2, in.SrcLane)
	case FaddVec:
		return fmt.Sprintf("fadd  v%d, v%d, v%d", in.Dst, in.Src1, in.Src2)
	case FmulVec:
		return fmt.Sprintf("fmul  v%d, v%d, v%d", in.Dst, in.Src1, in.Src2)
	case Reduce:
		return fmt.Sprintf("faddp v%d, v%d (reduce)", in.Dst, in.Src1)
	case Dup:
		return fmt.Sprintf("dup   v%d, v%d[%d]", in.Dst, in.Src1, in.SrcLane)
	case Zero:
		return fmt.Sprintf("movi  v%d, #0", in.Dst)
	case FmulScalarAll:
		return fmt.Sprintf("fmul  v%d, v%d, #%g", in.Dst, in.Dst, in.Imm)
	}
	return in.Op.String()
}
