package isa

import (
	"strings"
	"testing"
)

func buildTiny(t *testing.T) *Program {
	t.Helper()
	b := NewBuilder("tiny", 4)
	sa := b.Stream("A", StreamA, 8, true)
	sb := b.Stream("B", StreamB, 4, true)
	sc := b.Stream("C", StreamC, 4, true)
	b.LdVec(0, sa, 0).LdVec(1, sb, 0).Zero(2).FmlaElem(2, 1, 0, 0).StVec(2, sc, 0)
	return b.MustBuild()
}

func TestBuilderProducesValidProgram(t *testing.T) {
	p := buildTiny(t)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(p.Code) != 5 || len(p.Streams) != 3 {
		t.Fatalf("unexpected shape: %d instrs, %d streams", len(p.Code), len(p.Streams))
	}
}

func TestCounts(t *testing.T) {
	p := buildTiny(t)
	c := p.Count()
	if c.Loads != 2 || c.Stores != 1 || c.FMAs != 1 || c.Other != 1 {
		t.Fatalf("counts = %+v", c)
	}
}

func TestCMR(t *testing.T) {
	b := NewBuilder("cmr", 4)
	sa := b.Stream("A", StreamA, 4, true)
	b.LdVec(0, sa, 0)
	for i := 1; i <= 6; i++ {
		b.FmlaElem(i, 0, 0, 0)
	}
	p := b.MustBuild()
	if got := p.CMR(); got != 6 {
		t.Fatalf("CMR = %v, want 6", got)
	}
	empty := &Program{Name: "none", ElemBytes: 4}
	if empty.CMR() != 0 {
		t.Fatal("empty program CMR must be 0")
	}
}

func TestFlopCount(t *testing.T) {
	b := NewBuilder("flops", 4)
	b.Zero(0).FmlaVec(0, 0, 0).FmlaElem(0, 0, 0, 1).FaddVec(0, 0, 0).Reduce(1, 0)
	p := b.MustBuild()
	// FmlaVec: 8, FmlaElem: 8, FaddVec: 4, Reduce: 3.
	if got := p.FlopCount(); got != 23 {
		t.Fatalf("FlopCount = %d, want 23", got)
	}
	b8 := NewBuilder("flops64", 8)
	b8.FmlaVec(0, 1, 2)
	if got := b8.MustBuild().FlopCount(); got != 4 {
		t.Fatalf("FP64 FmlaVec FlopCount = %d, want 4", got)
	}
}

func TestValidateRejectsBadRegister(t *testing.T) {
	p := &Program{Name: "bad", ElemBytes: 4, Code: []Instr{{Op: Zero, Dst: 32}}}
	if err := p.Validate(); err == nil {
		t.Fatal("register 32 accepted")
	}
}

func TestValidateRejectsBadStream(t *testing.T) {
	p := &Program{Name: "bad", ElemBytes: 4, Code: []Instr{{Op: LdVec, Dst: 0, Mem: MemRef{Stream: 0, Off: 0}}}}
	if err := p.Validate(); err == nil {
		t.Fatal("undeclared stream accepted")
	}
}

func TestValidateRejectsOutOfBoundsAccess(t *testing.T) {
	p := &Program{
		Name: "bad", ElemBytes: 4,
		Streams: []Stream{{Name: "A", MinLen: 3}},
		Code:    []Instr{{Op: LdVec, Dst: 0, Mem: MemRef{0, 0}}}, // needs 4 elements
	}
	if err := p.Validate(); err == nil {
		t.Fatal("out-of-bounds vector load accepted")
	}
}

func TestValidateRejectsBadLane(t *testing.T) {
	p := &Program{Name: "bad", ElemBytes: 8, Code: []Instr{{Op: FmlaElem, Dst: 0, Src1: 1, Src2: 2, SrcLane: 2}}}
	if err := p.Validate(); err == nil {
		t.Fatal("lane 2 accepted for FP64 (only 2 lanes)")
	}
}

func TestValidateRejectsBadElemBytes(t *testing.T) {
	p := &Program{Name: "bad", ElemBytes: 3}
	if err := p.Validate(); err == nil {
		t.Fatal("elem bytes 3 accepted")
	}
}

func TestLanes(t *testing.T) {
	if (&Program{ElemBytes: 4}).Lanes() != 4 || (&Program{ElemBytes: 8}).Lanes() != 2 {
		t.Fatal("lane counts wrong")
	}
}

func TestOpClassification(t *testing.T) {
	if !LdVec.IsLoad() || !LdScalarPair.IsLoad() || LdVec.IsStore() || LdVec.IsFMA() {
		t.Fatal("load classification wrong")
	}
	if !StVec.IsStore() || !StLane.IsStore() || StVec.IsLoad() {
		t.Fatal("store classification wrong")
	}
	if !FmlaElem.IsFMA() || !Reduce.IsFMA() || FmlaElem.IsLoad() {
		t.Fatal("FMA classification wrong")
	}
}

func TestDefsUses(t *testing.T) {
	in := Instr{Op: FmlaElem, Dst: 10, Src1: 1, Src2: 2, SrcLane: 0}
	if d := in.Defs(); len(d) != 1 || d[0] != 10 {
		t.Fatalf("FmlaElem defs = %v", d)
	}
	u := in.Uses()
	if len(u) != 3 || u[0] != 10 || u[1] != 1 || u[2] != 2 {
		t.Fatalf("FmlaElem uses = %v (accumulator must be read)", u)
	}
	pair := Instr{Op: LdScalarPair, Dst: 4, Dst2: 5}
	if d := pair.Defs(); len(d) != 2 || d[1] != 5 {
		t.Fatalf("LdScalarPair defs = %v", d)
	}
	st := Instr{Op: StVec, Src1: 7}
	if u := st.Uses(); len(u) != 1 || u[0] != 7 {
		t.Fatalf("StVec uses = %v", u)
	}
	if (Instr{Op: Nop}).Defs() != nil || (Instr{Op: Nop}).Uses() != nil {
		t.Fatal("Nop must have no defs/uses")
	}
}

func TestDisassembleMentionsEveryInstr(t *testing.T) {
	p := buildTiny(t)
	dis := p.Disassemble()
	for _, frag := range []string{"ldr   q0", "ldr   q1", "movi  v2", "fmla  v2, v1, v0[0]", "str   q2", "stream 0: A"} {
		if !strings.Contains(dis, frag) {
			t.Fatalf("disassembly missing %q:\n%s", frag, dis)
		}
	}
}

func TestGrowStream(t *testing.T) {
	b := NewBuilder("grow", 4)
	s := b.Stream("A", StreamA, 2, true)
	b.GrowStream(s, 8)
	b.LdVec(0, s, 4)
	if _, err := b.Build(); err != nil {
		t.Fatalf("grown stream rejected: %v", err)
	}
	b.GrowStream(s, 4) // must not shrink
	if _, err := b.Build(); err != nil {
		t.Fatalf("GrowStream shrank the stream: %v", err)
	}
}

func TestOpString(t *testing.T) {
	if LdVec.String() != "ldr.q" || FmlaElem.String() != "fmla.elem" {
		t.Fatal("mnemonics wrong")
	}
	if Op(200).String() == "" {
		t.Fatal("unknown op must still render")
	}
}

func TestMustBuildPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustBuild did not panic on invalid program")
		}
	}()
	b := NewBuilder("bad", 4)
	b.emit(Instr{Op: Zero, Dst: 99})
	b.MustBuild()
}
