package isa

import "testing"

func TestAnalyzeCleanProgram(t *testing.T) {
	b := NewBuilder("clean", 4)
	sa := b.Stream("A", StreamA, 8, true)
	sc := b.Stream("C", StreamC, 4, true)
	b.Zero(2)
	b.LdVec(0, sa, 0).LdVec(1, sa, 4)
	b.FmlaVec(2, 0, 1)
	b.StVec(2, sc, 0)
	p := b.MustBuild()
	r, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.UndefinedReads) != 0 {
		t.Fatalf("clean program flagged: %v", r.UndefinedReads)
	}
	if len(r.DeadWrites) != 0 {
		t.Fatalf("clean program has dead writes: %v", r.DeadWrites)
	}
	if r.PeakLive != 3 { // v0, v1, v2 live simultaneously at the FMA
		t.Fatalf("peak live = %d, want 3", r.PeakLive)
	}
	if err := r.CheckKernelInvariants(0); err != nil {
		t.Fatal(err)
	}
}

func TestAnalyzeUndefinedRead(t *testing.T) {
	b := NewBuilder("undef", 4)
	sc := b.Stream("C", StreamC, 4, true)
	b.StVec(9, sc, 0) // v9 never written
	r, err := Analyze(b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.UndefinedReads) != 1 || r.UndefinedReads[0] != 0 {
		t.Fatalf("undefined read not detected: %+v", r)
	}
	if err := r.CheckKernelInvariants(0); err == nil {
		t.Fatal("invariant check passed a broken program")
	}
}

func TestAnalyzeDeadWrite(t *testing.T) {
	b := NewBuilder("dead", 4)
	sa := b.Stream("A", StreamA, 8, true)
	b.LdVec(0, sa, 0) // dead: overwritten below without a read
	b.LdVec(0, sa, 4) // dead: never read at all
	r, err := Analyze(b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.DeadWrites) != 2 {
		t.Fatalf("dead writes = %v, want 2 entries", r.DeadWrites)
	}
}

func TestAnalyzeFMAReadsAccumulator(t *testing.T) {
	// dst of an FMA is a read; back-to-back FMAs on one accumulator must
	// not be flagged as dead writes.
	b := NewBuilder("acc", 4)
	sa := b.Stream("A", StreamA, 4, true)
	sc := b.Stream("C", StreamC, 4, true)
	b.LdVec(0, sa, 0)
	b.Zero(1)
	b.FmlaVec(1, 0, 0)
	b.FmlaVec(1, 0, 0)
	b.StVec(1, sc, 0)
	r, err := Analyze(b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.DeadWrites) != 0 {
		t.Fatalf("accumulator chain flagged dead: %v", r.DeadWrites)
	}
}

func TestAnalyzeStreamReport(t *testing.T) {
	b := NewBuilder("streams", 4)
	sb := b.Stream("B", StreamB, 12, true)
	sbc := b.Stream("Bc", StreamBc, 12, true)
	b.LdVec(0, sb, 4)
	b.StVec(0, sbc, 0)
	b.LdVec(1, sbc, 0)
	b.FmlaVec(1, 1, 1)
	b.StVec(1, sbc, 8)
	r, err := Analyze(b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	bRep := r.Streams[0]
	if !bRep.ReadBefore || bRep.Loads != 1 || bRep.Stores != 0 || bRep.MinOff != 4 || bRep.MaxOff != 8 {
		t.Fatalf("B stream report wrong: %+v", bRep)
	}
	bcRep := r.Streams[1]
	if !bcRep.WriteFirst || bcRep.Stores != 2 || bcRep.Loads != 1 || bcRep.MaxOff != 12 {
		t.Fatalf("Bc stream report wrong: %+v", bcRep)
	}
	if err := r.CheckKernelInvariants(0); err != nil {
		t.Fatal(err)
	}
}

func TestInvariantRejectsStoredInput(t *testing.T) {
	b := NewBuilder("badstream", 4)
	sa := b.Stream("A", StreamA, 4, true)
	b.LdVec(0, sa, 0)
	b.FmlaVec(0, 0, 0)
	b.StVec(0, sa, 0) // writing to an input stream
	r, err := Analyze(b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	if err := r.CheckKernelInvariants(1); err == nil {
		t.Fatal("stored-to input stream accepted")
	}
}

func TestInvariantRejectsPackBufferReadFirst(t *testing.T) {
	b := NewBuilder("badbc", 4)
	sbc := b.Stream("Bc", StreamBc, 4, true)
	sc := b.Stream("C", StreamC, 4, true)
	b.LdVec(0, sbc, 0) // reading the pack buffer before any write
	b.FmlaVec(0, 0, 0)
	b.StVec(0, sc, 0)
	r, err := Analyze(b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	if err := r.CheckKernelInvariants(1); err == nil {
		t.Fatal("read-before-write pack buffer accepted")
	}
}

func TestAnalyzeRejectsInvalidProgram(t *testing.T) {
	p := &Program{Name: "bad", ElemBytes: 4, Code: []Instr{{Op: Zero, Dst: 40}}}
	if _, err := Analyze(p); err == nil {
		t.Fatal("invalid program analyzed")
	}
}
