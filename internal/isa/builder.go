package isa

import "fmt"

// Builder accumulates a Program with a fluent API. Kernel generators in
// internal/kernels use it to emit micro-kernels programmatically, which is
// this reproduction's analogue of writing the assembly by hand.
type Builder struct {
	p Program
}

// NewBuilder starts a program with the given name and element size.
func NewBuilder(name string, elemBytes int) *Builder {
	return &Builder{p: Program{Name: name, ElemBytes: elemBytes}}
}

// Stream declares a memory stream and returns its index.
func (b *Builder) Stream(name string, kind StreamKind, minLen int, contiguous bool) int {
	b.p.Streams = append(b.p.Streams, Stream{Name: name, Kind: kind, MinLen: minLen, Contiguous: contiguous})
	return len(b.p.Streams) - 1
}

// GrowStream raises a stream's MinLen if needed (builders often discover the
// true extent while emitting).
func (b *Builder) GrowStream(idx, minLen int) {
	if b.p.Streams[idx].MinLen < minLen {
		b.p.Streams[idx].MinLen = minLen
	}
}

func (b *Builder) emit(in Instr) *Builder {
	b.p.Code = append(b.p.Code, in)
	return b
}

// LdVec emits a 128-bit vector load.
func (b *Builder) LdVec(dst, stream, off int) *Builder {
	return b.emit(Instr{Op: LdVec, Dst: dst, Src1: NoReg, Src2: NoReg, Mem: MemRef{stream, off}})
}

// LdScalar emits a scalar load into lane 0 of dst.
func (b *Builder) LdScalar(dst, stream, off int) *Builder {
	return b.emit(Instr{Op: LdScalar, Dst: dst, Src1: NoReg, Src2: NoReg, Mem: MemRef{stream, off}})
}

// LdScalarPair emits a paired scalar load into lanes 0 of dst and dst2.
func (b *Builder) LdScalarPair(dst, dst2, stream, off int) *Builder {
	return b.emit(Instr{Op: LdScalarPair, Dst: dst, Dst2: dst2, Src1: NoReg, Src2: NoReg, Mem: MemRef{stream, off}})
}

// StVec emits a 128-bit vector store.
func (b *Builder) StVec(src, stream, off int) *Builder {
	return b.emit(Instr{Op: StVec, Dst: NoReg, Src1: src, Src2: NoReg, Mem: MemRef{stream, off}})
}

// StLane emits a single-lane scatter store.
func (b *Builder) StLane(src, lane, stream, off int) *Builder {
	return b.emit(Instr{Op: StLane, Dst: NoReg, Src1: src, Src2: NoReg, SrcLane: lane, Mem: MemRef{stream, off}})
}

// FmlaElem emits dst += src1 * src2[lane].
func (b *Builder) FmlaElem(dst, src1, src2, lane int) *Builder {
	return b.emit(Instr{Op: FmlaElem, Dst: dst, Src1: src1, Src2: src2, SrcLane: lane})
}

// FmlaVec emits dst += src1 * src2 (lane-wise).
func (b *Builder) FmlaVec(dst, src1, src2 int) *Builder {
	return b.emit(Instr{Op: FmlaVec, Dst: dst, Src1: src1, Src2: src2})
}

// FmulElem emits dst = src1 * src2[lane].
func (b *Builder) FmulElem(dst, src1, src2, lane int) *Builder {
	return b.emit(Instr{Op: FmulElem, Dst: dst, Src1: src1, Src2: src2, SrcLane: lane})
}

// FaddVec emits dst = src1 + src2.
func (b *Builder) FaddVec(dst, src1, src2 int) *Builder {
	return b.emit(Instr{Op: FaddVec, Dst: dst, Src1: src1, Src2: src2})
}

// FmulVec emits dst = src1 * src2.
func (b *Builder) FmulVec(dst, src1, src2 int) *Builder {
	return b.emit(Instr{Op: FmulVec, Dst: dst, Src1: src1, Src2: src2})
}

// Reduce emits dst = horizontal-sum(src1) into lane 0.
func (b *Builder) Reduce(dst, src1 int) *Builder {
	return b.emit(Instr{Op: Reduce, Dst: dst, Src1: src1, Src2: NoReg})
}

// Dup emits dst = broadcast(src1[lane]).
func (b *Builder) Dup(dst, src1, lane int) *Builder {
	return b.emit(Instr{Op: Dup, Dst: dst, Src1: src1, Src2: NoReg, SrcLane: lane})
}

// Zero emits dst = 0.
func (b *Builder) Zero(dst int) *Builder {
	return b.emit(Instr{Op: Zero, Dst: dst, Src1: NoReg, Src2: NoReg})
}

// FmulScalarAll emits dst *= imm on all lanes.
func (b *Builder) FmulScalarAll(dst int, imm float64) *Builder {
	return b.emit(Instr{Op: FmulScalarAll, Dst: dst, Src1: NoReg, Src2: NoReg, Imm: imm})
}

// Build validates and returns the finished program.
func (b *Builder) Build() (*Program, error) {
	p := b.p
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// MustBuild is Build that panics on validation failure; kernel generators use
// it because an invalid emission is a programming error, not an input error.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(fmt.Sprintf("isa: invalid program: %v", err))
	}
	return p
}

// Defs returns the registers an instruction writes.
func (in Instr) Defs() []int {
	switch in.Op {
	case LdVec, LdScalar, FmlaElem, FmlaVec, FmulElem, FaddVec, FmulVec, Reduce, Dup, Zero, FmulScalarAll:
		return []int{in.Dst}
	case LdScalarPair:
		return []int{in.Dst, in.Dst2}
	}
	return nil
}

// Uses returns the registers an instruction reads. FMA-accumulate reads its
// destination as well.
func (in Instr) Uses() []int {
	switch in.Op {
	case StVec, StLane:
		return []int{in.Src1}
	case FmlaElem, FmlaVec:
		return []int{in.Dst, in.Src1, in.Src2}
	case FmulElem, FaddVec, FmulVec:
		return []int{in.Src1, in.Src2}
	case Reduce, Dup:
		return []int{in.Src1}
	case FmulScalarAll:
		return []int{in.Dst}
	}
	return nil
}
