package isa

import (
	"fmt"
	"sort"
)

// Report is the result of static analysis of a program: register dataflow
// health, peak register pressure, and per-stream access summaries. Kernel
// generators are validated against it in tests — the analyzer catches the
// classes of bugs hand-written assembly suffers from (reading a register
// before any write, dead stores, exceeding the architectural register
// file).
type Report struct {
	// UndefinedReads lists instruction indices that read a register no
	// earlier instruction wrote. (Accumulator-style kernels zero or load
	// their registers first; a read-before-write is a generator bug.)
	// Sorted ascending; an instruction reading several unwritten registers
	// appears once.
	UndefinedReads []int
	// DeadWrites lists instruction indices whose written register is
	// overwritten before any read. A small number is legal (e.g. the
	// final reload emitted by a software-pipelined loop body), but large
	// counts indicate mis-scheduled emission.
	//
	// The list is sorted ascending and duplicate-free: the end-of-program
	// sweep (writes never read before the program ends) never re-reports
	// an index the in-loop overwrite detection already found — including
	// the self-overwrite of an LdScalarPair whose two destinations are the
	// same register — so deterministic tests can compare it directly.
	DeadWrites []int
	// PeakLive is the maximum number of simultaneously live registers.
	PeakLive int
	// Streams summarizes per-stream behaviour.
	Streams []StreamReport
}

// StreamReport summarizes one memory stream's accesses.
type StreamReport struct {
	Name       string
	Kind       StreamKind
	Loads      int
	Stores     int
	MinOff     int  // lowest element offset touched (-1 if untouched)
	MaxOff     int  // highest element offset touched (exclusive)
	ReadBefore bool // stream is loaded at least once before any store
	WriteFirst bool // first access is a store (pure output / pack buffer)
	// LoadCover and StoreCover are per-element coverage bitmaps over the
	// offsets the program actually touched, so a footprint checker can
	// report exactly which elements a kernel missed (or touched outside
	// its contract), not just the [MinOff, MaxOff) extent.
	LoadCover  Coverage
	StoreCover Coverage
	// OverlapStores lists element offsets stored more than once, sorted
	// ascending. Output tiles and pack buffers must store each element
	// exactly once; an overlap is a generator bug (or a deliberately
	// re-accumulating scratch stream).
	OverlapStores []int
}

// Coverage is a per-element access bitmap over stream offsets [0, Len()).
type Coverage struct {
	bits []uint64
	n    int
}

func newCoverage(n int) Coverage {
	return Coverage{bits: make([]uint64, (n+63)/64), n: n}
}

func (c *Coverage) add(off int) {
	if off >= 0 && off < c.n {
		c.bits[off/64] |= 1 << uint(off%64)
	}
}

// Len returns the tracked extent (the highest touched offset bound).
func (c Coverage) Len() int { return c.n }

// Has reports whether offset off was accessed.
func (c Coverage) Has(off int) bool {
	if off < 0 || off >= c.n {
		return false
	}
	return c.bits[off/64]&(1<<uint(off%64)) != 0
}

// Count returns the number of distinct offsets accessed.
func (c Coverage) Count() int {
	total := 0
	for _, w := range c.bits {
		for ; w != 0; w &= w - 1 {
			total++
		}
	}
	return total
}

// Missing returns the sorted offsets in [lo, hi) that were never accessed —
// the gap list a footprint checker reports.
func (c Coverage) Missing(lo, hi int) []int {
	var out []int
	for off := lo; off < hi; off++ {
		if !c.Has(off) {
			out = append(out, off)
		}
	}
	return out
}

// Extra returns the sorted accessed offsets that fall outside [lo, hi) —
// accesses beyond the declared contract extent.
func (c Coverage) Extra(lo, hi int) []int {
	var out []int
	for off := 0; off < c.n; off++ {
		if c.Has(off) && (off < lo || off >= hi) {
			out = append(out, off)
		}
	}
	return out
}

// AccessWidth returns how many consecutive elements the instruction touches
// at its memory reference, given the program's lane count (0 for non-memory
// operations).
func (in Instr) AccessWidth(lanes int) int {
	switch in.Op {
	case LdVec, StVec:
		return lanes
	case LdScalarPair:
		return 2
	case LdScalar, StLane:
		return 1
	}
	return 0
}

// Analyze runs the static passes over a validated program.
func Analyze(p *Program) (*Report, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	r := &Report{}
	lanes := p.Lanes()

	// --- register dataflow ---
	written := make([]bool, 32)
	lastWrite := make([]int, 32) // instruction index of the pending write
	readSince := make([]bool, 32)
	for i := range lastWrite {
		lastWrite[i] = -1
	}
	deadSet := map[int]bool{}
	undefSet := map[int]bool{}
	for i, in := range p.Code {
		for _, r2 := range in.Uses() {
			if !written[r2] {
				undefSet[i] = true
			}
			readSince[r2] = true
		}
		for _, d := range in.Defs() {
			if written[d] && !readSince[d] && lastWrite[d] >= 0 {
				// FMA-style ops read their destination, so they never land
				// here; a pure overwrite of an unread value is a dead write.
				// (An LdScalarPair with Dst == Dst2 lands here for its own
				// first lane write: the set keeps the report duplicate-free.)
				deadSet[lastWrite[d]] = true
			}
			written[d] = true
			lastWrite[d] = i
			readSince[d] = false
		}
	}
	// Writes never read by the end of the program are dead unless they are
	// the natural tail of a pipelined loop body (the caller decides what
	// count is acceptable). The set guarantees an index the in-loop pass
	// already reported is not double-counted.
	for reg := 0; reg < 32; reg++ {
		if lastWrite[reg] >= 0 && !readSince[reg] {
			deadSet[lastWrite[reg]] = true
		}
	}
	r.DeadWrites = sortedKeys(deadSet)
	r.UndefinedReads = sortedKeys(undefSet)

	// --- liveness (backward) for peak pressure ---
	live := make([]bool, 32)
	liveCount := 0
	for i := len(p.Code) - 1; i >= 0; i-- {
		in := p.Code[i]
		for _, d := range in.Defs() {
			if live[d] {
				live[d] = false
				liveCount--
			}
		}
		for _, u := range in.Uses() {
			if !live[u] {
				live[u] = true
				liveCount++
			}
		}
		if liveCount > r.PeakLive {
			r.PeakLive = liveCount
		}
	}

	// --- streams ---
	r.Streams = make([]StreamReport, len(p.Streams))
	// First sweep: the touched extent per stream, so the coverage bitmaps
	// are sized by what the code actually accesses (bounded by the code
	// length), not by the declared MinLen, which callers may inflate.
	extent := make([]int, len(p.Streams))
	for _, in := range p.Code {
		if n := in.AccessWidth(lanes); n > 0 {
			if end := in.Mem.Off + n; end > extent[in.Mem.Stream] {
				extent[in.Mem.Stream] = end
			}
		}
	}
	overlaps := make([]map[int]bool, len(p.Streams))
	for i, s := range p.Streams {
		r.Streams[i] = StreamReport{
			Name: s.Name, Kind: s.Kind, MinOff: -1,
			LoadCover:  newCoverage(extent[i]),
			StoreCover: newCoverage(extent[i]),
		}
	}
	for _, in := range p.Code {
		isLoad := in.Op.IsLoad()
		isStore := in.Op.IsStore()
		if !isLoad && !isStore {
			continue
		}
		sr := &r.Streams[in.Mem.Stream]
		n := in.AccessWidth(lanes)
		if sr.MinOff < 0 || in.Mem.Off < sr.MinOff {
			sr.MinOff = in.Mem.Off
		}
		if end := in.Mem.Off + n; end > sr.MaxOff {
			sr.MaxOff = end
		}
		if isLoad {
			if sr.Loads == 0 && sr.Stores == 0 {
				sr.ReadBefore = true
			}
			sr.Loads++
			for off := in.Mem.Off; off < in.Mem.Off+n; off++ {
				sr.LoadCover.add(off)
			}
		} else {
			if sr.Loads == 0 && sr.Stores == 0 {
				sr.WriteFirst = true
			}
			sr.Stores++
			for off := in.Mem.Off; off < in.Mem.Off+n; off++ {
				if sr.StoreCover.Has(off) {
					if overlaps[in.Mem.Stream] == nil {
						overlaps[in.Mem.Stream] = map[int]bool{}
					}
					overlaps[in.Mem.Stream][off] = true
				}
				sr.StoreCover.add(off)
			}
		}
	}
	for i := range r.Streams {
		r.Streams[i].OverlapStores = sortedKeys(overlaps[i])
	}
	return r, nil
}

func sortedKeys(set map[int]bool) []int {
	if len(set) == 0 {
		return nil
	}
	out := make([]int, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// CheckKernelInvariants applies the invariants every LibShalom-style
// micro-kernel must satisfy; kernel-generator tests call it for each
// emitted program. maxDeadWrites tolerates the pipelined tail reloads.
func (r *Report) CheckKernelInvariants(maxDeadWrites int) error {
	if len(r.UndefinedReads) > 0 {
		return fmt.Errorf("isa: %d undefined register reads (first at instr %d)", len(r.UndefinedReads), r.UndefinedReads[0])
	}
	if len(r.DeadWrites) > maxDeadWrites {
		return fmt.Errorf("isa: %d dead writes exceed budget %d", len(r.DeadWrites), maxDeadWrites)
	}
	if r.PeakLive > 32 {
		return fmt.Errorf("isa: peak live registers %d exceeds the register file", r.PeakLive)
	}
	for _, s := range r.Streams {
		switch s.Kind {
		case StreamA, StreamB:
			if s.Stores > 0 {
				return fmt.Errorf("isa: input stream %s is stored to", s.Name)
			}
		case StreamBc:
			if !s.WriteFirst && s.Loads > 0 {
				return fmt.Errorf("isa: pack buffer %s read before written", s.Name)
			}
		}
	}
	return nil
}
