package isa

import "fmt"

// Report is the result of static analysis of a program: register dataflow
// health, peak register pressure, and per-stream access summaries. Kernel
// generators are validated against it in tests — the analyzer catches the
// classes of bugs hand-written assembly suffers from (reading a register
// before any write, dead stores, exceeding the architectural register
// file).
type Report struct {
	// UndefinedReads lists instruction indices that read a register no
	// earlier instruction wrote. (Accumulator-style kernels zero or load
	// their registers first; a read-before-write is a generator bug.)
	UndefinedReads []int
	// DeadWrites lists instruction indices whose written register is
	// overwritten before any read. A small number is legal (e.g. the
	// final reload emitted by a software-pipelined loop body), but large
	// counts indicate mis-scheduled emission.
	DeadWrites []int
	// PeakLive is the maximum number of simultaneously live registers.
	PeakLive int
	// Streams summarizes per-stream behaviour.
	Streams []StreamReport
}

// StreamReport summarizes one memory stream's accesses.
type StreamReport struct {
	Name       string
	Kind       StreamKind
	Loads      int
	Stores     int
	MinOff     int  // lowest element offset touched (-1 if untouched)
	MaxOff     int  // highest element offset touched (exclusive)
	ReadBefore bool // stream is loaded at least once before any store
	WriteFirst bool // first access is a store (pure output / pack buffer)
}

// Analyze runs the static passes over a validated program.
func Analyze(p *Program) (*Report, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	r := &Report{}
	lanes := p.Lanes()

	// --- register dataflow ---
	written := make([]bool, 32)
	lastWrite := make([]int, 32) // instruction index of the pending write
	readSince := make([]bool, 32)
	for i := range lastWrite {
		lastWrite[i] = -1
	}
	for i, in := range p.Code {
		for _, r2 := range in.Uses() {
			if !written[r2] {
				r.UndefinedReads = append(r.UndefinedReads, i)
			}
			readSince[r2] = true
		}
		for _, d := range in.Defs() {
			if written[d] && !readSince[d] && lastWrite[d] >= 0 {
				// FMA-style ops read their destination, so they never land
				// here; a pure overwrite of an unread value is a dead write.
				r.DeadWrites = append(r.DeadWrites, lastWrite[d])
			}
			written[d] = true
			lastWrite[d] = i
			readSince[d] = false
		}
	}
	// Writes never read by the end of the program are dead unless they are
	// the natural tail of a pipelined loop body (the caller decides what
	// count is acceptable).
	for reg := 0; reg < 32; reg++ {
		if lastWrite[reg] >= 0 && !readSince[reg] {
			r.DeadWrites = append(r.DeadWrites, lastWrite[reg])
		}
	}

	// --- liveness (backward) for peak pressure ---
	live := make([]bool, 32)
	liveCount := 0
	for i := len(p.Code) - 1; i >= 0; i-- {
		in := p.Code[i]
		for _, d := range in.Defs() {
			if live[d] {
				live[d] = false
				liveCount--
			}
		}
		for _, u := range in.Uses() {
			if !live[u] {
				live[u] = true
				liveCount++
			}
		}
		if liveCount > r.PeakLive {
			r.PeakLive = liveCount
		}
	}

	// --- streams ---
	r.Streams = make([]StreamReport, len(p.Streams))
	for i, s := range p.Streams {
		r.Streams[i] = StreamReport{Name: s.Name, Kind: s.Kind, MinOff: -1}
	}
	for _, in := range p.Code {
		isLoad := in.Op.IsLoad()
		isStore := in.Op.IsStore()
		if !isLoad && !isStore {
			continue
		}
		sr := &r.Streams[in.Mem.Stream]
		n := 1
		if in.Op == LdVec || in.Op == StVec {
			n = lanes
		}
		if in.Op == LdScalarPair {
			n = 2
		}
		if sr.MinOff < 0 || in.Mem.Off < sr.MinOff {
			sr.MinOff = in.Mem.Off
		}
		if end := in.Mem.Off + n; end > sr.MaxOff {
			sr.MaxOff = end
		}
		if isLoad {
			if sr.Loads == 0 && sr.Stores == 0 {
				sr.ReadBefore = true
			}
			sr.Loads++
		} else {
			if sr.Loads == 0 && sr.Stores == 0 {
				sr.WriteFirst = true
			}
			sr.Stores++
		}
	}
	return r, nil
}

// CheckKernelInvariants applies the invariants every LibShalom-style
// micro-kernel must satisfy; kernel-generator tests call it for each
// emitted program. maxDeadWrites tolerates the pipelined tail reloads.
func (r *Report) CheckKernelInvariants(maxDeadWrites int) error {
	if len(r.UndefinedReads) > 0 {
		return fmt.Errorf("isa: %d undefined register reads (first at instr %d)", len(r.UndefinedReads), r.UndefinedReads[0])
	}
	if len(r.DeadWrites) > maxDeadWrites {
		return fmt.Errorf("isa: %d dead writes exceed budget %d", len(r.DeadWrites), maxDeadWrites)
	}
	if r.PeakLive > 32 {
		return fmt.Errorf("isa: peak live registers %d exceeds the register file", r.PeakLive)
	}
	for _, s := range r.Streams {
		switch s.Kind {
		case StreamA, StreamB:
			if s.Stores > 0 {
				return fmt.Errorf("isa: input stream %s is stored to", s.Name)
			}
		case StreamBc:
			if !s.WriteFirst && s.Loads > 0 {
				return fmt.Errorf("isa: pack buffer %s read before written", s.Name)
			}
		}
	}
	return nil
}
