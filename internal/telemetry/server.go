package telemetry

import "sync/atomic"

// Serving-layer metrics. The GEMM server (internal/server) coalesces
// concurrent small requests into batch flushes; these counters make that
// front-end observable next to the driver metrics it feeds: how many
// requests were admitted, shed or expired, how large the flushed batches
// were (the coalescing win is batch sizes > 1), and how long requests waited
// in the coalescing queue. They live on the Recorder so one /metrics scrape
// exposes the whole pipeline, and follow the same contract as every other
// site: nil-receiver no-op, probeAtomicWrite at each atomic write.

// NumBatchSizeBuckets is the log2 batch-size histogram depth: bucket i
// counts flushes of size [2^(i-1), 2^i), so boundaries run 1 … 2048.
const NumBatchSizeBuckets = 12

// serverStats is the Recorder's serving-layer section.
type serverStats struct {
	accepted  atomic.Uint64
	shed      atomic.Uint64
	expired   atomic.Uint64
	rejected  atomic.Uint64
	flushes   atomic.Uint64
	coalesced atomic.Uint64

	batchHist  [NumBatchSizeBuckets]atomic.Uint64
	waitNs     atomic.Uint64
	waitedReqs atomic.Uint64
	waitHist   [NumLatencyBuckets]atomic.Uint64
}

// ServerAccepted counts one request admitted into a coalescing queue.
//
//shalom:hotpath noalloc,nolock,noblock
func (r *Recorder) ServerAccepted() {
	if r == nil {
		return
	}
	probeAtomicWrite()
	r.server.accepted.Add(1)
}

// ServerShed counts one request refused by admission control (queue depth or
// in-flight flops over the limit — the HTTP 429 path).
//
//shalom:hotpath noalloc,nolock,noblock
func (r *Recorder) ServerShed() {
	if r == nil {
		return
	}
	probeAtomicWrite()
	r.server.shed.Add(1)
}

// ServerExpired counts one admitted request dropped before its flush because
// its deadline had already passed — work shed before it was computed.
//
//shalom:hotpath noalloc,nolock,noblock
func (r *Recorder) ServerExpired() {
	if r == nil {
		return
	}
	probeAtomicWrite()
	r.server.expired.Add(1)
}

// ServerRejected counts one request refused at decode time (malformed
// header, dimension bounds, payload length mismatch — the HTTP 400 path).
//
//shalom:hotpath noalloc,nolock,noblock
func (r *Recorder) ServerRejected() {
	if r == nil {
		return
	}
	probeAtomicWrite()
	r.server.rejected.Add(1)
}

// ServerFlush records one coalescer flush of size requests: the batch-size
// histogram, and — for flushes that actually coalesced (size > 1) — size
// requests counted as coalesced.
//
//shalom:hotpath noalloc,nolock,noblock
func (r *Recorder) ServerFlush(size int) {
	if r == nil || size <= 0 {
		return
	}
	probeAtomicWrite()
	r.server.flushes.Add(1)
	probeAtomicWrite()
	r.server.batchHist[bucketLog2(uint64(size), NumBatchSizeBuckets)].Add(1)
	if size > 1 {
		probeAtomicWrite()
		r.server.coalesced.Add(uint64(size))
	}
}

// ServerQueueWait records how long one request sat in its coalescing queue
// between admission and flush dispatch.
//
//shalom:hotpath noalloc,nolock,noblock
func (r *Recorder) ServerQueueWait(ns int64) {
	if r == nil {
		return
	}
	if ns < 1 {
		ns = 1
	}
	probeAtomicWrite()
	r.server.waitedReqs.Add(1)
	probeAtomicWrite()
	r.server.waitNs.Add(uint64(ns))
	probeAtomicWrite()
	r.server.waitHist[bucketLog2(uint64(ns), NumLatencyBuckets)].Add(1)
}

// ServerStats is the aggregated serving-layer section of a Snapshot.
type ServerStats struct {
	// Accepted counts requests admitted into a coalescing queue; Shed those
	// refused by admission control (429); Expired admitted requests dropped
	// before flush on an already-passed deadline; Rejected malformed
	// requests refused at decode time (400).
	Accepted uint64 `json:"accepted"`
	Shed     uint64 `json:"shed"`
	Expired  uint64 `json:"expired"`
	Rejected uint64 `json:"rejected"`
	// Flushes counts coalescer flushes; Coalesced sums the requests that
	// shared a flush with at least one other (the per-dispatch overhead they
	// amortized).
	Flushes   uint64 `json:"flushes"`
	Coalesced uint64 `json:"coalesced"`
	// BatchSizeBuckets[i] counts flushes of size [2^(i-1), 2^i).
	BatchSizeBuckets [NumBatchSizeBuckets]uint64 `json:"batch_size_buckets"`
	// QueueWaitNs sums request time in the coalescing queue over WaitedReqs
	// requests; QueueWaitBuckets is the log2-on-nanoseconds histogram.
	QueueWaitNs      uint64                    `json:"queue_wait_ns"`
	WaitedReqs       uint64                    `json:"waited_reqs"`
	QueueWaitBuckets [NumLatencyBuckets]uint64 `json:"queue_wait_buckets"`
}

// Active reports whether any serving-layer event was ever recorded, so
// non-server snapshots keep their exposition unchanged.
func (s ServerStats) Active() bool {
	return s.Accepted != 0 || s.Shed != 0 || s.Expired != 0 || s.Rejected != 0 || s.Flushes != 0
}

// serverSnapshot reads the serving-layer section.
func (r *Recorder) serverSnapshot() ServerStats {
	s := ServerStats{
		Accepted:    r.server.accepted.Load(),
		Shed:        r.server.shed.Load(),
		Expired:     r.server.expired.Load(),
		Rejected:    r.server.rejected.Load(),
		Flushes:     r.server.flushes.Load(),
		Coalesced:   r.server.coalesced.Load(),
		QueueWaitNs: r.server.waitNs.Load(),
		WaitedReqs:  r.server.waitedReqs.Load(),
	}
	for b := range s.BatchSizeBuckets {
		s.BatchSizeBuckets[b] = r.server.batchHist[b].Load()
	}
	for b := range s.QueueWaitBuckets {
		s.QueueWaitBuckets[b] = r.server.waitHist[b].Load()
	}
	return s
}
