//go:build telemetryprobe

package telemetry

import "sync/atomic"

// The telemetryprobe build: every telemetry atomic-write site calls
// probeAtomicWrite, so `go test -tags telemetryprobe` can assert the
// telemetry-off hot path performs zero atomic writes (and, with
// testing.AllocsPerRun, zero allocations) — the overhead budget enforced as
// an exact count instead of a flaky wall-clock ratio.

var probeWrites atomic.Uint64

func probeAtomicWrite() { probeWrites.Add(1) }

// ProbeAtomicWrites returns the number of telemetry atomic writes since the
// last ProbeReset. Only exists under the telemetryprobe tag.
func ProbeAtomicWrites() uint64 { return probeWrites.Load() }

// ProbeReset zeroes the probe counter.
func ProbeReset() { probeWrites.Store(0) }
