package telemetry

import (
	"io"
	"runtime/metrics"
)

// Go runtime gauges for the Prometheus exposition: the handful a serving
// dashboard actually needs (heap footprint, GC pause tail, goroutine count,
// GOMAXPROCS). Sampled only when a scrape happens — runtime/metrics reads
// are cheap but not free, and nothing here may touch the GEMM hot path.

// runtimeSamples is the fixed sample set, allocated once; metrics.Read
// fills values in place.
var runtimeSamples = []metrics.Sample{
	{Name: "/memory/classes/heap/objects:bytes"},
	{Name: "/memory/classes/total:bytes"},
	{Name: "/gc/pauses:seconds"},
	{Name: "/sched/goroutines:goroutines"},
	{Name: "/sched/gomaxprocs:threads"},
}

// WriteRuntimeMetrics renders the Go runtime gauges in Prometheus text
// format. It samples runtime/metrics at call time, so the cost is paid per
// scrape, never per GEMM.
func WriteRuntimeMetrics(w io.Writer) error {
	samples := make([]metrics.Sample, len(runtimeSamples))
	copy(samples, runtimeSamples)
	metrics.Read(samples)

	bw := &errWriter{w: w}
	gauge := func(name, help string, v float64) {
		bw.printf("# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	for _, s := range samples {
		switch s.Name {
		case "/memory/classes/heap/objects:bytes":
			gauge("libshalom_go_heap_objects_bytes", "Bytes of live heap objects (runtime/metrics).", sampleFloat(s))
		case "/memory/classes/total:bytes":
			gauge("libshalom_go_memory_total_bytes", "Total bytes of memory mapped by the Go runtime.", sampleFloat(s))
		case "/gc/pauses:seconds":
			gauge("libshalom_go_gc_pause_p99_seconds", "p99 stop-the-world GC pause (runtime/metrics histogram).", histQuantile(s, 0.99))
		case "/sched/goroutines:goroutines":
			gauge("libshalom_go_goroutines", "Live goroutine count.", sampleFloat(s))
		case "/sched/gomaxprocs:threads":
			gauge("libshalom_go_gomaxprocs", "GOMAXPROCS at scrape time.", sampleFloat(s))
		}
	}
	return bw.err
}

// sampleFloat converts a scalar runtime/metrics sample to float64; unknown
// kinds (a metric removed in a future Go release) read as 0 rather than
// breaking the exposition.
func sampleFloat(s metrics.Sample) float64 {
	switch s.Value.Kind() {
	case metrics.KindUint64:
		return float64(s.Value.Uint64())
	case metrics.KindFloat64:
		return s.Value.Float64()
	default:
		return 0
	}
}

// histQuantile estimates a quantile of a runtime/metrics histogram sample.
func histQuantile(s metrics.Sample, q float64) float64 {
	if s.Value.Kind() != metrics.KindFloat64Histogram {
		return 0
	}
	h := s.Value.Float64Histogram()
	if h == nil {
		return 0
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	idx := len(h.Counts) - 1
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum > rank {
			idx = i
			break
		}
	}
	// Bucket idx spans Buckets[idx] .. Buckets[idx+1]; report the upper
	// edge (pessimistic for a pause gauge), guarding ±Inf edges.
	hi := h.Buckets[idx+1]
	if hi > 1e9 || hi != hi { // +Inf or NaN sentinel
		hi = h.Buckets[idx]
	}
	return hi
}
