package telemetry

import "libshalom/internal/faults"

// CallStat is the aggregated record of one (precision, mode, shape class,
// kernel, outcome) key with at least one observed call.
type CallStat struct {
	Precision  string `json:"precision"`
	Mode       string `json:"mode"`
	ShapeClass string `json:"shape_class"`
	Kernel     string `json:"kernel"`
	Outcome    string `json:"outcome"`

	Count uint64 `json:"count"`
	// DurNs and Flops are sums over the counted calls; Count>0 calls that
	// never ran (cancelled entries) contribute zero to both.
	DurNs uint64 `json:"dur_ns"`
	Flops uint64 `json:"flops"`
	// LatencyBuckets[i] counts calls with duration in [2^(i-1), 2^i) ns;
	// GFLOPSBuckets[i] counts calls achieving [2^(i-1)/4, 2^i/4) GFLOPS.
	LatencyBuckets [NumLatencyBuckets]uint64 `json:"latency_buckets"`
	GFLOPSBuckets  [NumGFLOPSBuckets]uint64  `json:"gflops_buckets"`
}

// MeanGFLOPS returns the time-weighted mean achieved rate of the key.
func (s CallStat) MeanGFLOPS() float64 {
	if s.DurNs == 0 {
		return 0
	}
	return float64(s.Flops) / float64(s.DurNs)
}

// PoolStats aggregates the worker-pool scheduling gauges.
type PoolStats struct {
	TasksQueued  uint64 `json:"tasks_queued"`
	TasksStarted uint64 `json:"tasks_started"`
	TasksDone    uint64 `json:"tasks_done"`
	// InFlight is a point-in-time gauge: tasks started but not finished.
	InFlight int64 `json:"in_flight"`
	// QueueWaitNs sums the time tasks spent between submission and start;
	// BusyNs sums task execution time (worker utilization = BusyNs over
	// workers × wall time).
	QueueWaitNs uint64 `json:"queue_wait_ns"`
	BusyNs      uint64 `json:"busy_ns"`
}

// ThreadStats exposes the §7.4 thread-policy decisions: how many calls went
// through the policy, the summed requested and chosen widths, and how many
// calls the small-GEMM rule clamped below their request.
type ThreadStats struct {
	Calls        uint64 `json:"calls"`
	RequestedSum uint64 `json:"requested_sum"`
	ChosenSum    uint64 `json:"chosen_sum"`
	ClampedCalls uint64 `json:"clamped_calls"`
}

// EventCount is one named event counter (fault point or degradation reason).
type EventCount struct {
	Name  string `json:"name"`
	Count uint64 `json:"count"`
}

// Snapshot is a consistent-enough copy of a Recorder's state: counters are
// read atomically, so concurrent calls may be torn across keys but never
// within one, and every completed call is visible to a later snapshot.
type Snapshot struct {
	Calls   []CallStat   `json:"calls"`
	Pool    PoolStats    `json:"pool"`
	Threads ThreadStats  `json:"threads"`
	Faults  []EventCount `json:"faults,omitempty"`
	// Degradations counts demotion events the runtime observed (by reason);
	// the guard registry remains the source of truth for current state.
	Degradations []EventCount `json:"degradations,omitempty"`
	// Heal counts self-healing events: breaker opens/probes/closes, canary
	// runs and verdicts, watchdog conversions and transient retries.
	Heal []EventCount `json:"heal,omitempty"`
	// BreakersOpen/BreakersProbing are the breaker state gauges as observed
	// through this recorder's transitions.
	BreakersOpen    int64 `json:"breakers_open"`
	BreakersProbing int64 `json:"breakers_probing"`
	// TraceSpans/TraceDropped report ring-buffer occupancy: spans ever
	// recorded and spans overwritten by newer ones.
	TraceSpans   uint64 `json:"trace_spans"`
	TraceDropped uint64 `json:"trace_dropped"`
	// Attrib summarises the fine attribution sketch per (precision, mode,
	// shape class, kernel); AttribDrift counts drift events per shape class
	// and AttribWindows the completed attribution windows (both fed back by
	// internal/attrib, zero when no engine is attached).
	Attrib        []AttribStat `json:"attrib,omitempty"`
	AttribDrift   []EventCount `json:"attrib_drift,omitempty"`
	AttribWindows uint64       `json:"attrib_windows"`
	// Server is the serving-layer section (admission, shedding, coalescing);
	// zero outside a serving process.
	Server ServerStats `json:"server"`
	// Router is the router-tier section (forwarding, hedged retries,
	// outlier ejection); zero outside a router process.
	Router RouterStats `json:"router"`
	// Journal is the request-journal section (appends, anchors, fsyncs);
	// zero when journaling is disabled.
	Journal JournalStats `json:"journal"`
	// Autotune is the autotuner section (searches, proofs, promotions,
	// reverts, installed overrides); zero when the tuning loop is off.
	Autotune AutotuneStats `json:"autotune"`
}

// Snapshot aggregates the recorder into an exposition-ready value. A nil
// recorder yields the zero Snapshot.
func (r *Recorder) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	for idx := 0; idx < numKeys; idx++ {
		var count uint64
		for sh := range r.shards {
			count += r.shards[sh].calls[idx].Load()
		}
		if count == 0 {
			continue
		}
		prec, mode, class, kernel, outcome := unpackKey(idx)
		st := CallStat{
			Precision:  precNames[prec],
			Mode:       modeNames[mode],
			ShapeClass: ShapeClass(class).String(),
			Kernel:     kernelNames[kernel],
			Outcome:    outcomeNames[outcome],
			Count:      count,
			DurNs:      r.durNs[idx].Load(),
			Flops:      r.flops[idx].Load(),
		}
		for b := range st.LatencyBuckets {
			st.LatencyBuckets[b] = r.latHist[idx][b].Load()
		}
		for b := range st.GFLOPSBuckets {
			st.GFLOPSBuckets[b] = r.gfHist[idx][b].Load()
		}
		s.Calls = append(s.Calls, st)
	}
	s.Pool = PoolStats{
		TasksQueued:  r.tasksQueued.Load(),
		TasksStarted: r.tasksStarted.Load(),
		TasksDone:    r.tasksDone.Load(),
		InFlight:     r.inFlight.Load(),
		QueueWaitNs:  r.queueWaitNs.Load(),
		BusyNs:       r.busyNs.Load(),
	}
	s.Threads = ThreadStats{
		Calls:        r.threadCalls.Load(),
		RequestedSum: r.threadsReq.Load(),
		ChosenSum:    r.threadsChose.Load(),
		ClampedCalls: r.clampedCalls.Load(),
	}
	for p := 0; p < faults.NumPoints; p++ {
		if c := r.faultEvents[p].Load(); c > 0 {
			s.Faults = append(s.Faults, EventCount{Name: faults.Point(p).String(), Count: c})
		}
	}
	for d := uint8(0); d < numDegrReasons; d++ {
		if c := r.degrEvents[d].Load(); c > 0 {
			s.Degradations = append(s.Degradations, EventCount{Name: degrNames[d], Count: c})
		}
	}
	for h := uint8(0); h < numHealEvents; h++ {
		if c := r.healEvents[h].Load(); c > 0 {
			s.Heal = append(s.Heal, EventCount{Name: healNames[h], Count: c})
		}
	}
	s.BreakersOpen = r.breakersOpen.Load()
	s.BreakersProbing = r.breakersProbing.Load()
	s.Attrib, s.AttribDrift, s.AttribWindows = r.attribSnapshot()
	s.Server = r.serverSnapshot()
	s.Router = r.routerSnapshot()
	s.Journal = r.journalSnapshot()
	s.Autotune = r.autotuneSnapshot()
	if r.trace != nil {
		r.trace.mu.Lock()
		s.TraceSpans = r.trace.written
		if over := r.trace.written - uint64(len(r.trace.buf)); over > 0 {
			s.TraceDropped = over
		}
		r.trace.mu.Unlock()
	}
	return s
}

func unpackKey(idx int) (prec, mode, class, kernel, outcome uint8) {
	outcome = uint8(idx % int(numOutcome))
	idx /= int(numOutcome)
	kernel = uint8(idx % int(numKernel))
	idx /= int(numKernel)
	class = uint8(idx % int(numShapeClasses))
	idx /= int(numShapeClasses)
	mode = uint8(idx % numMode)
	idx /= numMode
	prec = uint8(idx)
	return
}

// HealCount returns the count of one named self-healing event (zero when
// the event never fired).
func (s Snapshot) HealCount(name string) uint64 {
	for _, e := range s.Heal {
		if e.Name == name {
			return e.Count
		}
	}
	return 0
}

// KernelCalls sums call counts for one kernel-path label ("fast" or "ref"),
// the counter pair the healing acceptance tests read to prove the fast path
// is measurably back in use after a breaker closes.
func (s Snapshot) KernelCalls(kernel string) uint64 {
	var total uint64
	for _, c := range s.Calls {
		if c.Kernel == kernel {
			total += c.Count
		}
	}
	return total
}

// CallsTotal sums call counts across every key, optionally filtered by
// shape class name ("" matches all).
func (s Snapshot) CallsTotal(shapeClass string) uint64 {
	var total uint64
	for _, c := range s.Calls {
		if shapeClass == "" || c.ShapeClass == shapeClass {
			total += c.Count
		}
	}
	return total
}
