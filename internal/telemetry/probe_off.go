//go:build !telemetryprobe

package telemetry

// probeAtomicWrite is compiled out in normal builds; under the
// telemetryprobe build tag it counts every atomic write the telemetry layer
// performs, letting a test assert the disabled hot path performs exactly
// zero of them (the <2% overhead budget of DESIGN.md §8, enforced without
// wall-clock flakiness).
func probeAtomicWrite() {}
