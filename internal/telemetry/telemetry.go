// Package telemetry is LibShalom's runtime observability layer: an
// always-compiled instrumentation surface the execution path (public API →
// core driver → parallel pool → micro-kernel loop) reports into, costing
// near zero when disabled.
//
// The layer has three parts:
//
//   - Metrics: sharded atomic counters and log-bucketed latency/GFLOPS
//     histograms keyed by (precision, mode, shape class, kernel path,
//     outcome), pool scheduling gauges (queue wait, tasks in flight, worker
//     busy time), thread-policy accounting (requested vs. chosen width,
//     §7.4 clamping), and degradation/fault-injection event counters.
//   - Tracing: per-call phase spans (plan → pack → block loop →
//     micro-kernel batches → barrier, with worker attribution) recorded
//     into a fixed-size ring buffer, exportable as Chrome trace_event JSON
//     loadable in chrome://tracing or Perfetto.
//   - Exposition: Snapshot aggregation, Prometheus text format, expvar
//     publication, and an HTTP handler (see snapshot.go, prometheus.go,
//     http.go).
//
// The disabled contract: every recording method is a method on *Recorder
// with a nil-receiver fast path, so a driver configured without telemetry
// performs zero atomic writes and zero allocations on the hot path. The
// telemetryprobe build tag compiles a probe counter into every atomic-write
// site so a test can verify that contract directly instead of relying on
// flaky wall-clock comparisons (see probe_on.go).
package telemetry

import (
	"sync/atomic"
	"time"
	"unsafe"

	"libshalom/internal/faults"
)

// Key dimensions. Values are dense indices into the counter arrays; the
// *Names tables give the label values used in exposition.

// Precisions.
const (
	PrecF32 uint8 = iota
	PrecF64
	numPrec
)

// Kernel paths: the generated fast path, the portable reference path the
// guard demotes to, and the autotuner's per-class tuned-tile path.
const (
	KernelFast uint8 = iota
	KernelRef
	// KernelTuned: the call ran with a promoted autotuner tile override in
	// place of the analytic solution (internal/guard TileOverride).
	KernelTuned
	numKernel
)

// Outcomes of one GEMM call (or one batch entry).
const (
	OutcomeOK uint8 = iota
	OutcomeDegraded
	OutcomePanic
	OutcomeCancelled
	// OutcomeStuck: the watchdog converted a worker exceeding its per-block
	// budget into a guard.StuckWorkerError.
	OutcomeStuck
	numOutcome
)

// numMode mirrors core.Mode's four values (NN/NT/TN/TT); telemetry cannot
// import core (core imports telemetry), so the driver passes uint8(mode).
const numMode = 4

var (
	precNames    = [numPrec]string{"f32", "f64"}
	modeNames    = [numMode]string{"NN", "NT", "TN", "TT"}
	kernelNames  = [numKernel]string{"fast", "ref", "tuned"}
	outcomeNames = [numOutcome]string{"ok", "degraded", "panic", "cancelled", "stuck"}
)

// PrecFor maps an element size in bytes to a precision index.
func PrecFor(elemBytes int) uint8 {
	if elemBytes == 8 {
		return PrecF64
	}
	return PrecF32
}

// numKeys is the size of the dense (precision, mode, class, kernel,
// outcome) key space.
const numKeys = int(numPrec) * numMode * int(numShapeClasses) * int(numKernel) * int(numOutcome)

func keyIndex(prec, mode, class, kernel, outcome uint8) int {
	return ((((int(prec)*numMode+int(mode))*int(numShapeClasses))+int(class))*int(numKernel)+int(kernel))*int(numOutcome) + int(outcome)
}

// Histogram geometry. Latency buckets are log2 on nanoseconds: bucket i
// counts durations in [2^(i-1), 2^i) ns, so le boundaries run 1ns … ~8.8s.
// GFLOPS buckets are log2 on quarter-GFLOPS: bucket i counts rates in
// [2^(i-1)/4, 2^i/4) GFLOPS, so le boundaries run 0.25 … 2048 GFLOPS.
const (
	NumLatencyBuckets = 34
	NumGFLOPSBuckets  = 14
)

// bucketLog2 returns the log-bucket index of v (bits.Len64 without the
// import): the number of bits needed to represent v, clamped to [0, n).
func bucketLog2(v uint64, n int) int {
	b := 0
	for v != 0 {
		v >>= 1
		b++
	}
	if b >= n {
		b = n - 1
	}
	return b
}

// numShards spreads the per-key call counters across independent cache
// lines so concurrent GEMM callers do not serialize on one counter word.
// Must be a power of two.
const numShards = 8

// shard is one slice of the sharded counter space, padded to keep shards on
// distinct cache lines.
type shard struct {
	calls [numKeys]atomic.Uint64
	_     [64]byte
}

// Recorder accumulates metrics and trace spans for one Context. The zero
// value is not useful; call New. A nil *Recorder is the disabled layer:
// every method no-ops without touching memory.
type Recorder struct {
	epoch time.Time // monotonic base for Now()

	shards [numShards]shard

	// Unsharded per-key aggregates: one atomic add per completed call, far
	// below contention concern.
	durNs   [numKeys]atomic.Uint64
	flops   [numKeys]atomic.Uint64
	latHist [numKeys][NumLatencyBuckets]atomic.Uint64
	gfHist  [numKeys][NumGFLOPSBuckets]atomic.Uint64

	// Pool scheduling gauges (fed through the parallel.Observer interface).
	tasksQueued  atomic.Uint64
	tasksStarted atomic.Uint64
	tasksDone    atomic.Uint64
	inFlight     atomic.Int64
	queueWaitNs  atomic.Uint64
	busyNs       atomic.Uint64

	// Thread-policy accounting (§7.4 clamping visibility).
	threadCalls  atomic.Uint64
	threadsReq   atomic.Uint64
	threadsChose atomic.Uint64
	clampedCalls atomic.Uint64

	// Event counters: fault injections by point, degradations by reason,
	// self-healing events by kind.
	faultEvents [faults.NumPoints]atomic.Uint64
	degrEvents  [numDegrReasons]atomic.Uint64
	healEvents  [numHealEvents]atomic.Uint64

	// Breaker state gauges: how many (platform, kernel) breakers this
	// recorder has observed transitioning into the open/probing states and
	// not yet out. The guard registry is the source of truth for current
	// state; these gauges track what flowed through contexts sharing this
	// recorder, for exposition next to the event counters.
	breakersOpen    atomic.Int64
	breakersProbing atomic.Int64

	// Attribution sketch and drift counters (read by internal/attrib; see
	// attrib.go).
	attrib attribStats

	// Serving-layer counters (fed by internal/server; see server.go).
	server serverStats

	// Router-tier counters (fed by internal/router; see router.go).
	router routerStats

	// Journal counters (fed by internal/journal; see journal.go).
	journal journalStats

	// Autotuner counters (fed by internal/autotune; see autotune.go).
	autotune autotuneStats

	callSeq atomic.Uint64 // caller trace-lane allocator

	trace *ring // nil when tracing is disabled
}

// Options configures a Recorder.
type Options struct {
	// TraceEvents is the span ring-buffer capacity; 0 selects the default
	// (8192 spans), negative disables tracing entirely.
	TraceEvents int
}

// New builds an enabled Recorder.
func New(o Options) *Recorder {
	r := &Recorder{epoch: time.Now()}
	n := o.TraceEvents
	if n == 0 {
		n = 8192
	}
	if n > 0 {
		r.trace = newRing(n)
	}
	return r
}

// Enabled reports whether the recorder is live.
func (r *Recorder) Enabled() bool { return r != nil }

// Now returns nanoseconds since the recorder's epoch, or 0 when disabled.
// The driver brackets phases with Now()/Span() pairs; the disabled path
// never reads the clock.
func (r *Recorder) Now() int64 {
	if r == nil {
		return 0
	}
	return int64(time.Since(r.epoch))
}

// CallTid allocates a trace lane for one public GEMM call. Caller lanes
// start at 1000 so they render apart from worker lanes (1..N); concurrent
// calls rotate over 64 lanes.
//
//shalom:hotpath noalloc,nolock,noblock
func (r *Recorder) CallTid() int32 {
	if r == nil {
		return 0
	}
	probeAtomicWrite()
	s := r.callSeq.Add(1)
	return int32(1000 + (s-1)%64)
}

// WorkerTid maps a pool worker index to its trace lane; callers pass the
// enclosing call's lane for worker < 0 (the single-threaded path).
func WorkerTid(worker int, callTid int32) int32 {
	if worker < 0 {
		return callTid
	}
	return int32(worker + 1)
}

// shardFor picks a shard from the address of a caller stack slot — distinct
// goroutines get distinct stacks, so concurrent callers spread across
// shards without any goroutine-local storage.
func shardFor() int {
	var probe byte
	return int(uintptr(unsafe.Pointer(&probe))>>6) & (numShards - 1)
}

// CallDone records one completed GEMM call (or batch entry): counter,
// latency histogram, achieved-GFLOPS histogram, and the duration/flop sums
// behind average-rate exposition. start is the Now() taken at call entry;
// flops the 2·M·N·K operation count.
//
//shalom:hotpath noalloc,nolock,noblock
func (r *Recorder) CallDone(prec, mode, class, kernel, outcome uint8, start int64, flops float64) {
	if r == nil {
		return
	}
	dur := r.Now() - start
	if dur < 1 {
		dur = 1
	}
	idx := keyIndex(prec, mode, class, kernel, outcome)
	probeAtomicWrite()
	r.shards[shardFor()].calls[idx].Add(1)
	probeAtomicWrite()
	r.durNs[idx].Add(uint64(dur))
	probeAtomicWrite()
	r.flops[idx].Add(uint64(flops))
	probeAtomicWrite()
	r.latHist[idx][bucketLog2(uint64(dur), NumLatencyBuckets)].Add(1)
	gf := flops / float64(dur) // flops per ns == GFLOPS
	probeAtomicWrite()
	r.gfHist[idx][bucketLog2(uint64(gf*4), NumGFLOPSBuckets)].Add(1)
	if outcome == OutcomeOK {
		// Attribution sketch: clean completions only — degraded/panicked
		// calls measure the failure path, not the kernel the attribution
		// engine scores against its model prediction.
		ai := AttribKeyIndex(prec, mode, class, kernel)
		probeAtomicWrite()
		r.attrib.count[ai].Add(1)
		probeAtomicWrite()
		r.attrib.durNs[ai].Add(uint64(dur))
		probeAtomicWrite()
		r.attrib.flops[ai].Add(uint64(flops))
		probeAtomicWrite()
		r.attrib.hist[ai][attribBucket(gf)].Add(1)
	}
}

// CallEvent records a call that never ran (e.g. a batch entry abandoned on
// cancellation): counter only, no timing.
//
//shalom:hotpath noalloc,nolock,noblock
func (r *Recorder) CallEvent(prec, mode, class, kernel, outcome uint8) {
	if r == nil {
		return
	}
	probeAtomicWrite()
	r.shards[shardFor()].calls[keyIndex(prec, mode, class, kernel, outcome)].Add(1)
}

// ThreadChoice records the §7.4 thread policy's decision for one call:
// requested is the width the caller asked for (WithThreads, or GOMAXPROCS
// under the automatic policy), chosen what the policy granted.
//
//shalom:hotpath noalloc,nolock,noblock
func (r *Recorder) ThreadChoice(requested, chosen int) {
	if r == nil {
		return
	}
	probeAtomicWrite()
	r.threadCalls.Add(1)
	probeAtomicWrite()
	r.threadsReq.Add(uint64(requested))
	probeAtomicWrite()
	r.threadsChose.Add(uint64(chosen))
	if chosen < requested {
		probeAtomicWrite()
		r.clampedCalls.Add(1)
	}
}

// Degradation reasons, mirroring guard.Reason (telemetry cannot import
// guard without dragging the static verifier into every binary).
const (
	DegrContract uint8 = iota
	DegrPanic
	DegrNumeric
	DegrCanary
	numDegrReasons
)

var degrNames = [numDegrReasons]string{"contract-violation", "runtime-panic", "numeric-guard", "canary-mismatch"}

// Self-healing event kinds: the circuit-breaker lifecycle and the canary
// protocol, counted per event so the healing loop is observable end to end.
const (
	// HealBreakerOpen: a breaker tripped (healthy→open or probing→open).
	HealBreakerOpen uint8 = iota
	// HealBreakerProbe: an open breaker's cooldown expired (open→probing).
	HealBreakerProbe
	// HealBreakerClose: enough canaries agreed; fast path re-promoted.
	HealBreakerClose
	// HealCanaryRun: one probing call ran the fast path shadowed by the
	// reference path.
	HealCanaryRun
	// HealCanaryAgree / HealCanaryMismatch: the comparison verdicts.
	HealCanaryAgree
	HealCanaryMismatch
	// HealStuckWorker: the watchdog converted a stalled worker into a
	// typed StuckWorkerError.
	HealStuckWorker
	// HealRetry: a transient fault was retried transparently on the
	// reference path (outside the numeric guard's demote-and-recompute).
	HealRetry
	numHealEvents
)

var healNames = [numHealEvents]string{
	"breaker-open", "breaker-probe", "breaker-close",
	"canary-run", "canary-agree", "canary-mismatch",
	"stuck-worker", "transient-retry",
}

// HealEvent counts one self-healing event.
//
//shalom:hotpath noalloc,nolock,noblock
func (r *Recorder) HealEvent(kind uint8) {
	if r == nil || kind >= numHealEvents {
		return
	}
	probeAtomicWrite()
	r.healEvents[kind].Add(1)
}

// Breaker states for BreakerTransition, mirroring guard.State.
const (
	BreakerHealthy uint8 = iota
	BreakerOpen
	BreakerProbing
)

// BreakerTransition moves the breaker state gauges: one breaker left the
// from state and entered the to state.
func (r *Recorder) BreakerTransition(from, to uint8) {
	if r == nil {
		return
	}
	adj := func(state uint8, delta int64) {
		switch state {
		case BreakerOpen:
			probeAtomicWrite()
			r.breakersOpen.Add(delta)
		case BreakerProbing:
			probeAtomicWrite()
			r.breakersProbing.Add(delta)
		}
	}
	adj(from, -1)
	adj(to, 1)
}

// DegradationEvent counts one kernel-path demotion observed by the runtime.
//
//shalom:hotpath noalloc,nolock,noblock
func (r *Recorder) DegradationEvent(reason uint8) {
	if r == nil || reason >= numDegrReasons {
		return
	}
	probeAtomicWrite()
	r.degrEvents[reason].Add(1)
}

// FaultInjected counts one fired fault-injection point. Together with
// TaskQueued/TaskStart/TaskDone it satisfies parallel.Observer, so a
// Recorder plugs directly into the worker pool.
//
//shalom:hotpath noalloc,nolock,noblock
func (r *Recorder) FaultInjected(p faults.Point) {
	if r == nil || int(p) >= faults.NumPoints {
		return
	}
	probeAtomicWrite()
	r.faultEvents[p].Add(1)
}

// TaskQueued records n tasks submitted to the pool.
//
//shalom:hotpath noalloc,nolock,noblock
func (r *Recorder) TaskQueued(n int) {
	if r == nil {
		return
	}
	probeAtomicWrite()
	r.tasksQueued.Add(uint64(n))
}

// TaskStart records a pool task beginning execution after waiting
// queueWaitNs in the run queue.
//
//shalom:hotpath noalloc,nolock,noblock
func (r *Recorder) TaskStart(queueWaitNs int64) {
	if r == nil {
		return
	}
	probeAtomicWrite()
	r.tasksStarted.Add(1)
	probeAtomicWrite()
	r.inFlight.Add(1)
	probeAtomicWrite()
	r.queueWaitNs.Add(uint64(queueWaitNs))
}

// TaskDone records a pool task finishing after busyNs of execution.
//
//shalom:hotpath noalloc,nolock,noblock
func (r *Recorder) TaskDone(busyNs int64) {
	if r == nil {
		return
	}
	probeAtomicWrite()
	r.tasksDone.Add(1)
	probeAtomicWrite()
	r.inFlight.Add(-1)
	probeAtomicWrite()
	r.busyNs.Add(uint64(busyNs))
}

// Span records one completed phase span into the trace ring: phase on lane
// tid, begun at the Now() value start, covering an m×n×k extent. No-op when
// the recorder or tracing is disabled.
func (r *Recorder) Span(phase uint8, tid int32, start int64, mode, prec uint8, m, n, k int) {
	if r == nil || r.trace == nil {
		return
	}
	dur := r.Now() - start
	if dur < 1 {
		dur = 1 // clock granularity: keep every span's E strictly after its B
	}
	r.trace.add(event{
		start: start, dur: dur,
		m: int32(m), n: int32(n), k: int32(k),
		tid: tid, phase: phase, mode: mode, prec: prec,
	})
}
